// Package drtmr is a Go reproduction of DrTM+R — "Fast and General
// Distributed Transactions using RDMA and HTM" (EuroSys'16) — as a library.
//
// DrTM+R runs strictly serializable distributed transactions over a cluster
// by combining hardware transactional memory (HTM) for local concurrency
// control with one-sided RDMA for remote access, adding primary-backup
// replication with an optimistic "seqlock" commit scheme. Since neither
// Intel RTM nor RDMA verbs are reachable from Go, this library ships with
// faithful simulations of both (see internal/htm and internal/rdma and the
// substitution table in DESIGN.md); the protocol code is the real thing.
//
// Quick start:
//
//	db, _ := drtmr.Open(drtmr.Options{Nodes: 3, Replicas: 3})
//	defer db.Close()
//	db.CreateTable(1, drtmr.TableSpec{Name: "accounts", ValueSize: 16, ExpectedRows: 1024})
//	db.MustLoad(1, 42, balance(100))
//
//	s := db.Session(0) // a worker session homed on machine 0
//	err := s.Update(func(tx *drtmr.Tx) error {
//		v, err := tx.Read(1, 42)
//		if err != nil {
//			return err
//		}
//		return tx.Write(1, 42, bump(v))
//	})
//
// Sessions are single-goroutine handles; open one per worker. Reads and
// writes inside Update/View run the full DrTM+R protocol: HTM-protected OCC
// locally, RDMA versioned reads + CAS locking remotely, replication before
// full commit when Replicas > 1.
package drtmr

import (
	"fmt"
	"sync"
	"sync/atomic"

	"drtmr/internal/cluster"
	"drtmr/internal/htm"
	"drtmr/internal/memstore"
	"drtmr/internal/rdma"
	"drtmr/internal/txn"
)

// TableID names a table (stable across the cluster).
type TableID = memstore.TableID

// TableSpec declares a table's shape.
type TableSpec = memstore.TableSpec

// ShardID identifies a data partition.
type ShardID = cluster.ShardID

// NodeID identifies a machine.
type NodeID = rdma.NodeID

// Partitioner maps records to shards. The default partitioner hashes keys
// across the initial shards.
type Partitioner = txn.Partitioner

// Tx is an in-flight transaction.
type Tx = txn.Txn

// ErrNotFound is returned by Tx.Read for missing keys.
var ErrNotFound = txn.ErrNotFound

// Options configures a simulated DrTM+R deployment.
type Options struct {
	// Nodes is the machine count (default 3).
	Nodes int
	// Replicas is copies per shard: 1 disables replication, 3 matches the
	// paper's availability setup (default 1).
	Replicas int
	// MemBytes is per-machine NVRAM (default 64 MiB).
	MemBytes int
	// Partitioner overrides key placement (default: key % Nodes).
	Partitioner Partitioner
	// HTM tunes the simulated RTM (spurious abort injection, capacities).
	HTM htm.Config
	// NICBandwidth caps each simulated NIC in bytes/second of virtual
	// time (default: 56Gbps). 0 keeps the default; negative disables.
	NICBandwidth int64
}

// DB is a running cluster with the DrTM+R transaction layer on every
// machine.
type DB struct {
	cluster  *cluster.Cluster
	engines  []*txn.Engine
	part     Partitioner
	started  bool
	startMu  sync.Mutex
	sessions atomic.Int64
}

// Open builds and starts a cluster.
func Open(o Options) (*DB, error) {
	if o.Nodes <= 0 {
		o.Nodes = 3
	}
	if o.Replicas <= 0 {
		o.Replicas = 1
	}
	if o.Replicas > o.Nodes {
		return nil, fmt.Errorf("drtmr: %d replicas need at least that many nodes (have %d)",
			o.Replicas, o.Nodes)
	}
	if o.MemBytes == 0 {
		o.MemBytes = 64 << 20
	}
	bw := rdma.NICBandwidth56G
	if o.NICBandwidth > 0 {
		bw = o.NICBandwidth
	} else if o.NICBandwidth < 0 {
		bw = 0
	}
	part := o.Partitioner
	if part == nil {
		n := uint64(o.Nodes)
		part = func(table memstore.TableID, key uint64) cluster.ShardID {
			return cluster.ShardID(key % n)
		}
	}
	c := cluster.New(cluster.Spec{
		Nodes:    o.Nodes,
		Replicas: o.Replicas,
		MemBytes: o.MemBytes,
		HTM:      o.HTM,
		RDMA:     rdma.Config{NICBytesPerSec: bw},
	})
	db := &DB{cluster: c, part: part}
	for _, m := range c.Machines {
		db.engines = append(db.engines, txn.NewEngine(m, part, txn.DefaultCosts()))
	}
	return db, nil
}

// Start launches the cluster's background threads (log truncation,
// heartbeats, failure detection). Called implicitly by Session; exposed for
// setups that want to finish loading first.
func (db *DB) Start() { db.startOnce() }

func (db *DB) startOnce() {
	db.startMu.Lock()
	defer db.startMu.Unlock()
	if db.cluster != nil && !db.started {
		db.cluster.Start()
		db.started = true
	}
}

// Close stops all background threads.
func (db *DB) Close() {
	if db.started {
		db.cluster.Stop()
	}
}

// CreateTable registers a table on every machine (identical geometry
// cluster-wide). Must run before Start/Session.
func (db *DB) CreateTable(id TableID, spec TableSpec) {
	for _, m := range db.cluster.Machines {
		m.Store.CreateTable(id, spec)
	}
}

// MustLoad inserts an initial record on its primary and every backup,
// panicking on error (setup-time API).
func (db *DB) MustLoad(table TableID, key uint64, value []byte) {
	cfg := db.cluster.Coord.Current()
	shard := db.part(table, key)
	nodes := append([]rdma.NodeID{cfg.PrimaryOf(shard)}, cfg.BackupsOf(shard)...)
	for _, n := range nodes {
		if _, err := db.cluster.Machines[n].Store.Table(table).Insert(key, value); err != nil {
			panic(fmt.Sprintf("drtmr: load %d/%d on node %d: %v", table, key, n, err))
		}
	}
}

// Session opens a worker session homed on machine node. Sessions are not
// safe for concurrent use; open one per goroutine.
func (db *DB) Session(node NodeID) *Session {
	db.startOnce()
	w := db.engines[node].NewWorker(int(db.sessions.Add(1)))
	return &Session{db: db, w: w}
}

// Cluster exposes the underlying simulated cluster (failure injection,
// stats) for tests and experiments.
func (db *DB) Cluster() *cluster.Cluster { return db.cluster }

// Engine exposes a machine's transaction engine (benchmark harness use).
func (db *DB) Engine(node NodeID) *txn.Engine { return db.engines[node] }

// Session is a single-goroutine transaction handle homed on one machine.
type Session struct {
	db *DB
	w  *txn.Worker
}

// Update runs fn as a read-write transaction with automatic retry until
// commit.
func (s *Session) Update(fn func(tx *Tx) error) error { return s.w.Run(fn) }

// View runs fn as a read-only transaction (§4.5's cheaper protocol).
func (s *Session) View(fn func(tx *Tx) error) error { return s.w.RunReadOnly(fn) }

// Worker exposes the underlying protocol worker (stats, virtual clock).
func (s *Session) Worker() *txn.Worker { return s.w }

// Stats returns this session's commit/abort counters.
func (s *Session) Stats() txn.Stats { return s.w.Stats }
