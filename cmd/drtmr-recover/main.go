// Command drtmr-recover runs the Fig 20 failure/recovery demonstration on
// its own: a replicated TPC-C cluster loses a machine mid-run; the output
// shows the suspect / config-commit / recovery-done milestones and the
// throughput timeline around the failure.
package main

import (
	"flag"
	"os"
	"time"

	"drtmr/internal/bench/harness"
)

func main() {
	nodes := flag.Int("nodes", 3, "machines in the cluster (>=3 for 3-way replication)")
	threads := flag.Int("threads", 2, "worker threads per machine")
	dur := flag.Duration("dur", 3*time.Second, "total run duration (kill fires at 1/3)")
	lease := flag.Duration("lease", 0, "failure-detection lease (0 = starvation-safe default)")
	flag.Parse()

	tl := harness.RunRecovery(*nodes, *threads, *dur, *lease)
	tl.Fprint(os.Stdout)
}
