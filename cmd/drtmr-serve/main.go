// Command drtmr-serve runs the drtmr network front door: a TCP server
// executing SmallBank-shaped stored procedures against an embedded cluster,
// with admission control and a live status endpoint.
//
// Server mode (default) listens until interrupted:
//
//	drtmr-serve -addr 127.0.0.1:7707 -http 127.0.0.1:7708
//	curl http://127.0.0.1:7708/statusz
//
// Fleet mode starts an embedded server, drives it with an open-loop client
// fleet, and prints the accounting and final status:
//
//	drtmr-serve -fleet 64 -rate 20000 -skew 0.9 -calls 100000
//	drtmr-serve -fleet 64 -rate 20000 -admission off   # tail-collapse ablation
//
// A fleet can also target an already-running server with -connect.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"drtmr/internal/bench/smallbank"
	"drtmr/internal/serve"
	"drtmr/internal/serve/client"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:0", "wire-protocol listen address")
	httpAddr := flag.String("http", "", "plain-HTTP /statusz listen address (empty = off)")
	connect := flag.String("connect", "", "fleet mode: target an external server instead of embedding one")
	nodes := flag.Int("nodes", 3, "cluster machines")
	replicas := flag.Int("replicas", 1, "copies per shard")
	workers := flag.Int("workers", 2, "executor goroutines per node")
	accounts := flag.Int("accounts", 10000, "bank accounts per node")
	admission := flag.String("admission", "on", `admission control: "on" or "off" (off = unbounded queueing, the ablation)`)
	watermark := flag.Int("watermark", 0, "queue-depth shed watermark (0 = derive from worker count)")
	payProto := flag.String("payment-protocol", "", `commit protocol for the payment procedure ("", "drtmr", "farm")`)
	fleet := flag.Int("fleet", 0, "open-loop fleet size; > 0 switches to fleet mode")
	rate := flag.Float64("rate", 0, "fleet offered load, calls/second (0 = closed loop)")
	skew := flag.Float64("skew", 0, "fleet Zipf theta over accounts")
	calls := flag.Int("calls", 50000, "fleet total calls")
	deadline := flag.Duration("deadline", 0, "fleet per-request deadline (0 = none)")
	readFrac := flag.Float64("read-frac", 0.15, "fleet fraction of balance (read-only) calls")
	auditFrac := flag.Float64("audit-frac", 0, "fleet fraction of audit sweeps (expensive reads)")
	auditSpan := flag.Int("audit-span", 256, "accounts per audit sweep")
	seed := flag.Uint64("seed", 1, "fleet arrival/key seed")
	flag.Parse()

	cfg := smallbank.Config{
		AccountsPerNode: *accounts,
		Nodes:           *nodes,
		RemoteProb:      0.1,
		InitialBalance:  10000,
	}

	target := *connect
	var srv *serve.Server
	if target == "" {
		db, err := serve.OpenBank(cfg, *replicas)
		if err != nil {
			fatal(err)
		}
		srv = serve.New(db, serve.Options{
			WorkersPerNode: *workers,
			Admission: serve.AdmissionConfig{
				Disabled: *admission == "off",
				MaxQueue: *watermark,
			},
		})
		if err := serve.RegisterBank(srv, cfg, serve.BankProcs{PaymentProtocol: *payProto}); err != nil {
			fatal(err)
		}
		bound, err := srv.Start(*addr)
		if err != nil {
			fatal(err)
		}
		target = bound.String()
		fmt.Printf("drtmr-serve listening on %s (%d nodes × %d workers, admission %s)\n",
			target, *nodes, *workers, *admission)
		if *httpAddr != "" {
			hb, err := srv.StartHTTP(*httpAddr)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("statusz on http://%s/statusz\n", hb)
		}
	}

	if *fleet <= 0 {
		// Server mode: run until interrupted.
		if srv == nil {
			fatal(fmt.Errorf("nothing to do: -connect without -fleet"))
		}
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		<-ch
		srv.Close()
		return
	}

	res := serve.RunFleet(serve.FleetOptions{
		Addr:     target,
		Users:    *fleet,
		Rate:     *rate,
		Calls:    *calls,
		Skew:     *skew,
		Accounts: *accounts * *nodes,
		Deadline:  *deadline,
		ReadFrac:  *readFrac,
		AuditFrac: *auditFrac,
		AuditSpan: *auditSpan,
		Seed:      *seed,
	})
	fmt.Printf("fleet: offered %d in %s (%.0f/s accepted)\n",
		res.Offered, res.Elapsed.Round(time.Millisecond), float64(res.OK)/res.Elapsed.Seconds())
	fmt.Printf("  ok %d, shed-busy %d, shed-deadline %d, bad-request %d, errors %d, dropped %d\n",
		res.OK, res.ShedBusy, res.ShedDeadline, res.BadRequest, res.Errors, res.Dropped)
	fmt.Printf("  latency p50 %s p99 %s max %s (from scheduled arrival)\n",
		time.Duration(res.Lat.Quantile(0.50)).Round(time.Microsecond),
		time.Duration(res.Lat.Quantile(0.99)).Round(time.Microsecond),
		time.Duration(res.Lat.Max()).Round(time.Microsecond))

	cl := client.New(client.Options{Addr: target})
	raw, err := cl.Status()
	cl.Close()
	if err == nil {
		var pretty map[string]any
		if json.Unmarshal(raw, &pretty) == nil {
			out, _ := json.MarshalIndent(pretty, "", "  ")
			fmt.Printf("status:\n%s\n", out)
		}
	}
	if srv != nil {
		srv.Close()
	}
	if res.Dropped != 0 || res.Errors != 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "drtmr-serve:", err)
	os.Exit(1)
}
