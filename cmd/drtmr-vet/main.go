// Command drtmr-vet is the multichecker bundling drtmr's eight invariant
// analyzers (internal/lint): htmregion, virtualtime, abortattr, lockpair,
// doorbell, lockorder, hotalloc, enumswitch. It has two faces:
//
// Vet tool protocol (driven by cmd/go):
//
//	go vet -vettool=$(command -v drtmr-vet) ./...
//
// Ratchet CLI (direct invocation with package patterns):
//
//	drtmr-vet [-baseline file] [-write-baseline] [-race]
//	          [-json file] [-sarif file] [./...]
//
// The CLI re-executes `go vet -vettool=<self>` (so the driver, build cache,
// and export data all come from the Go toolchain), collects the findings
// every unit emits (DRTMRVET_EMIT), and diffs them against the committed
// baseline (lint-baseline.json). The ratchet fails in both directions: new
// findings are new debt, and stale baseline entries — findings that no
// longer occur — must be removed so paid-off debt cannot return.
// -race runs a second sweep with the race build tag and merges the findings,
// covering both halves of the repo's race/!race build-tag pairs.
//
// Suppress a finding with `//drtmr:allow <analyzer> <reason>` on the
// offending line or the line above (the reason is required).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"drtmr/internal/lint"
	"drtmr/internal/lint/ratchet"
	"drtmr/internal/lint/unitchecker"
)

func main() {
	if isToolProtocol(os.Args[1:]) {
		unitchecker.Main(lint.Analyzers...)
		return
	}
	os.Exit(runCLI(os.Args[1:]))
}

// isToolProtocol reports whether the arguments are cmd/go's vet tool
// protocol (-V=full / -flags probes, analyzer flags, a vet.cfg path) rather
// than the ratchet CLI. CLI flags are a fixed set, so anything else dashed —
// and any .cfg operand — belongs to the protocol.
func isToolProtocol(args []string) bool {
	cliFlags := map[string]bool{
		"baseline": true, "write-baseline": true, "race": true,
		"json": true, "sarif": true, "h": true, "help": true,
	}
	for _, a := range args {
		if strings.HasSuffix(a, ".cfg") {
			return true
		}
		if strings.HasPrefix(a, "-") {
			name := strings.TrimLeft(a, "-")
			if i := strings.IndexByte(name, '='); i >= 0 {
				name = name[:i]
			}
			if !cliFlags[name] {
				return true
			}
		}
	}
	return false
}

func runCLI(args []string) int {
	fs := flag.NewFlagSet("drtmr-vet", flag.ExitOnError)
	baselinePath := fs.String("baseline", "lint-baseline.json", "ratchet baseline file")
	writeBaseline := fs.Bool("write-baseline", false, "rewrite the baseline from the current findings and exit 0")
	race := fs.Bool("race", false, "also sweep with -tags race and merge findings (covers both build-tag halves)")
	jsonOut := fs.String("json", "", "write findings as a JSON array to this file")
	sarifOut := fs.String("sarif", "", "write findings as SARIF 2.1.0 to this file")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: drtmr-vet [flags] [packages]   (ratcheted sweep, default ./...)")
		fmt.Fprintln(os.Stderr, "       go vet -vettool=drtmr-vet ./... (vet tool protocol)")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	findings, err := sweep(patterns, *race)
	if err != nil {
		fmt.Fprintf(os.Stderr, "drtmr-vet: %v\n", err)
		return 1
	}

	if *jsonOut != "" {
		if err := ratchet.WriteJSON(*jsonOut, findings); err != nil {
			fmt.Fprintf(os.Stderr, "drtmr-vet: %v\n", err)
			return 1
		}
	}
	if *sarifOut != "" {
		docs := ratchet.RuleDocs{}
		for _, a := range lint.Analyzers {
			docs[a.Name] = a.Doc
		}
		docs["allow"] = "hygiene of //drtmr:allow suppression directives"
		if err := ratchet.WriteSARIF(*sarifOut, findings, docs); err != nil {
			fmt.Fprintf(os.Stderr, "drtmr-vet: %v\n", err)
			return 1
		}
	}

	if *writeBaseline {
		if err := ratchet.WriteBaseline(*baselinePath, findings); err != nil {
			fmt.Fprintf(os.Stderr, "drtmr-vet: %v\n", err)
			return 1
		}
		fmt.Printf("drtmr-vet: baseline %s rewritten with %d finding(s)\n", *baselinePath, len(findings))
		return 0
	}

	base, err := ratchet.LoadBaseline(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "drtmr-vet: %v\n", err)
		return 1
	}
	newFindings, stale := ratchet.Diff(findings, base)
	for _, f := range newFindings {
		fmt.Fprintf(os.Stderr, "%s\n", f)
	}
	for _, e := range stale {
		fmt.Fprintf(os.Stderr, "drtmr-vet: stale baseline entry (finding no longer occurs — remove it): %s: %s: %s\n",
			e.File, e.Analyzer, e.Message)
	}
	if len(newFindings) > 0 || len(stale) > 0 {
		fmt.Fprintf(os.Stderr, "drtmr-vet: ratchet failed: %d new finding(s), %d stale baseline entr(ies)\n",
			len(newFindings), len(stale))
		return 1
	}
	fmt.Printf("drtmr-vet: ratchet clean (%d finding(s), all baselined)\n", len(findings))
	return 0
}

// sweep runs `go vet -vettool=<self>` over the patterns, collecting emitted
// findings; with race it runs a second sweep under the race build tag and
// merges. A vet failure with zero emitted findings is a real error (build or
// driver breakage) and aborts.
func sweep(patterns []string, race bool) ([]ratchet.Finding, error) {
	self, err := os.Executable()
	if err != nil {
		return nil, err
	}
	cwd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	variants := [][]string{nil}
	if race {
		variants = append(variants, []string{"-tags", "race"})
	}
	seen := make(map[string]bool)
	var all []ratchet.Finding
	for _, extra := range variants {
		emitDir, err := os.MkdirTemp("", "drtmr-vet-emit-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(emitDir)

		cmdArgs := append([]string{"vet", "-vettool=" + self}, extra...)
		cmdArgs = append(cmdArgs, patterns...)
		cmd := exec.Command("go", cmdArgs...)
		cmd.Env = append(os.Environ(), "DRTMRVET_EMIT="+emitDir)
		out, runErr := cmd.CombinedOutput()

		fs, readErr := ratchet.ReadEmitted(emitDir, cwd)
		if readErr != nil {
			return nil, readErr
		}
		if runErr != nil && len(fs) == 0 {
			// vet failed but no unit emitted findings: a compile error or a
			// broken driver, not lint debt. Surface the raw output.
			os.Stderr.Write(out)
			return nil, fmt.Errorf("go vet failed: %v", runErr)
		}
		for _, f := range fs {
			id := fmt.Sprintf("%s\x00%s\x00%d\x00%d\x00%s", f.Analyzer, f.File, f.Line, f.Col, f.Message)
			if seen[id] {
				continue
			}
			seen[id] = true
			all = append(all, f)
		}
	}
	ratchet.Sort(all)
	return all, nil
}
