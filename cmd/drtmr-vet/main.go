// Command drtmr-vet is the multichecker bundling drtmr's five invariant
// analyzers (internal/lint): htmregion, virtualtime, abortattr, lockpair,
// doorbell. It speaks cmd/go's vet tool protocol, so the canonical
// invocation is
//
//	go vet -vettool=$(command -v drtmr-vet) ./...
//
// As a convenience, invoking it directly with package patterns
//
//	drtmr-vet ./...
//
// re-executes `go vet -vettool=<self> <patterns>` so the driver, build
// cache, and per-package export data all come from the Go toolchain.
// Suppress a finding with `//drtmr:allow <analyzer> <reason>` on the
// offending line or the line above (the reason is required).
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"drtmr/internal/lint"
	"drtmr/internal/lint/unitchecker"
)

func main() {
	if patterns := packagePatterns(os.Args[1:]); patterns != nil {
		os.Exit(runGoVet(patterns))
	}
	unitchecker.Main(lint.Analyzers...)
}

// packagePatterns returns the arguments when they are package patterns
// (direct CLI use) rather than the vet tool protocol (flags + a .cfg file).
func packagePatterns(args []string) []string {
	if len(args) == 0 {
		return nil
	}
	for _, a := range args {
		if strings.HasPrefix(a, "-") || strings.HasSuffix(a, ".cfg") {
			return nil
		}
	}
	return args
}

func runGoVet(patterns []string) int {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "drtmr-vet: %v\n", err)
		return 1
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, patterns...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "drtmr-vet: %v\n", err)
		return 1
	}
	return 0
}
