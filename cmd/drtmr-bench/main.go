// Command drtmr-bench regenerates the paper's evaluation tables and figures
// (§7) at full scale. Each -fig value maps to one experiment; "all" runs the
// complete suite. Results print as text tables whose rows mirror the
// paper's series.
//
// Usage:
//
//	drtmr-bench -fig 10          # Fig 10: TPC-C vs machines, all systems
//	drtmr-bench -fig 16 -smoke   # quick, scaled-down run
//	drtmr-bench -fig 20          # recovery timeline (wall clock)
//	drtmr-bench -fig all
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"drtmr/internal/bench/harness"
)

func main() {
	fig := flag.String("fig", "all", `figure/table to reproduce: 10..20, "6t" (Table 6), "silo", "coro" (coroutine overlap sweep), or "all"`)
	smoke := flag.Bool("smoke", false, "run the scaled-down smoke version")
	flag.Parse()

	scale := harness.Full
	if *smoke {
		scale = harness.Smoke
	}
	figs := map[string]func(harness.Scale) harness.Table{
		"10":   harness.Fig10,
		"11":   harness.Fig11,
		"12":   harness.Fig12,
		"13":   harness.Fig13,
		"14":   harness.Fig14,
		"15":   harness.Fig15,
		"16":   harness.Fig16,
		"17":   harness.Fig17,
		"18":   harness.Fig18,
		"19":   harness.Fig19,
		"6t":   harness.Table6,
		"silo": harness.SiloComparison,
		"coro": harness.FigCoroutineOverlap,
	}
	order := []string{"10", "11", "12", "13", "14", "15", "16", "17", "18", "19", "6t", "silo", "coro"}

	runOne := func(name string) {
		if name == "20" {
			runFor := 3 * time.Second
			if *smoke {
				runFor = 1500 * time.Millisecond
			}
			tl := harness.RunRecovery(3, 2, runFor, 0)
			tl.Fprint(os.Stdout)
			return
		}
		fn, ok := figs[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown figure %q\n", name)
			os.Exit(2)
		}
		start := time.Now()
		t := fn(scale)
		t.Fprint(os.Stdout)
		fmt.Printf("(%s wall time)\n\n", time.Since(start).Round(time.Millisecond))
	}

	if *fig == "all" {
		for _, name := range order {
			runOne(name)
		}
		runOne("20")
		return
	}
	runOne(*fig)
}
