// Command drtmr-bench regenerates the paper's evaluation tables and figures
// (§7) at full scale. Each -fig value maps to one experiment; "all" runs the
// complete suite. Results print as text tables whose rows mirror the
// paper's series.
//
// Usage:
//
//	drtmr-bench -fig 10             # Fig 10: TPC-C vs machines, all systems
//	drtmr-bench -fig 16 -smoke      # quick, scaled-down run
//	drtmr-bench -fig 20             # recovery timeline (wall clock)
//	drtmr-bench -fig proto          # commit-protocol matrix: drtmr vs farm
//	drtmr-bench -fig all
//	drtmr-bench -trace out.json     # traced SmallBank run, Perfetto JSON
//	drtmr-bench -trace f.json -protocol farm  # same, FaRM-style commit
//	drtmr-bench -fig 20 -trace r.json  # recovery milestones as a trace
//	drtmr-bench -torture -seed 42   # strict-serializability torture sweep
//	drtmr-bench -torture -mutate    # checker self-test on broken protocols
//
// -trace writes a Chrome trace-event file: open it at https://ui.perfetto.dev
// (or chrome://tracing). Without -fig it runs a dedicated traced SmallBank
// experiment; with -fig 20 it exports the recovery run's milestone track.
//
// -torture replaces the figure run with the internal/check torture harness:
// every knob-matrix cell's history is checked for strict serializability and
// a violating cell prints its deterministic replay seed. -mutate instead
// runs the mutation self-test (each deliberately broken protocol step must
// be caught). Exit status 1 on any violation or uncaught mutation.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"drtmr/internal/bench/harness"
	"drtmr/internal/bench/serveload"
	"drtmr/internal/check"
	"drtmr/internal/obs"
	"drtmr/internal/txn"
)

func main() {
	fig := flag.String("fig", "all", `figure/table to reproduce: 10..20, "6t" (Table 6), "silo", "coro" (coroutine overlap sweep), "lat" (latency CDF), "tail" (contention-manager tail sweep), "proto" (commit-protocol matrix), "serve" (network-serve overload sweep), or "all"`)
	smoke := flag.Bool("smoke", false, "run the scaled-down smoke version")
	traceOut := flag.String("trace", "", "write a Chrome/Perfetto trace-event JSON to this path (traced SmallBank run, or the recovery milestones with -fig 20)")
	protocol := flag.String("protocol", "", `commit protocol for -trace runs: "" = drtmr (the HTM pipeline), "farm" = the one-sided log-append pipeline; "proto" figures sweep both`)
	torture := flag.Bool("torture", false, "run the strict-serializability torture sweep instead of a figure")
	mutate := flag.Bool("mutate", false, "with -torture: run the checker self-test against deliberately broken protocols")
	seed := flag.Uint64("seed", 3, "torture sweep seed (a violating seed replays deterministically)")
	txPerWorker := flag.Int("tx", 0, "torture: transactions per worker in deterministic cells (0 = default)")
	flag.Parse()

	if *torture {
		os.Exit(runTorture(*mutate, *seed, *txPerWorker))
	}
	if *protocol != "" {
		if _, ok := txn.ProtocolByName(*protocol); !ok {
			fmt.Fprintf(os.Stderr, "unknown protocol %q (registered: %s)\n",
				*protocol, strings.Join(txn.Protocols(), ", "))
			os.Exit(2)
		}
	}

	scale := harness.Full
	if *smoke {
		scale = harness.Smoke
	}
	figs := map[string]func(harness.Scale) harness.Table{
		"10":   harness.Fig10,
		"11":   harness.Fig11,
		"12":   harness.Fig12,
		"13":   harness.Fig13,
		"14":   harness.Fig14,
		"15":   harness.Fig15,
		"16":   harness.Fig16,
		"17":   harness.Fig17,
		"18":   harness.Fig18,
		"19":   harness.Fig19,
		"6t":   harness.Table6,
		"silo": harness.SiloComparison,
		"coro": harness.FigCoroutineOverlap,
		"lat":   harness.FigLatencyCDF,
		"tail":  harness.FigContentionTail,
		"proto": harness.FigProtocolMatrix,
		"serve": serveload.FigServeOverload,
	}
	order := []string{"10", "11", "12", "13", "14", "15", "16", "17", "18", "19", "6t", "silo", "coro", "lat", "tail", "proto", "serve"}

	runOne := func(name string) {
		if name == "20" {
			runFor := 3 * time.Second
			if *smoke {
				runFor = 1500 * time.Millisecond
			}
			tl := harness.RunRecovery(3, 2, runFor, 0)
			tl.Fprint(os.Stdout)
			if *traceOut != "" {
				writeTrace(*traceOut, []*obs.Recorder{tl.Trace})
			}
			return
		}
		fn, ok := figs[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown figure %q\n", name)
			os.Exit(2)
		}
		start := time.Now()
		t := fn(scale)
		t.Fprint(os.Stdout)
		fmt.Printf("(%s wall time)\n\n", time.Since(start).Round(time.Millisecond))
	}

	if *traceOut != "" && *fig != "20" {
		runTraced(*traceOut, *smoke, *protocol)
		return
	}
	if *fig == "all" {
		for _, name := range order {
			runOne(name)
		}
		runOne("20")
		return
	}
	runOne(*fig)
}

// runTorture runs the strict-serializability torture sweep (or, with
// mutate, the checker self-test) and returns the process exit status.
func runTorture(mutate bool, seed uint64, txPerWorker int) int {
	if mutate {
		fail := 0
		for _, oc := range check.MutationSelfTest(seed) {
			fmt.Println(oc)
			if !oc.Caught {
				fail = 1
			}
		}
		return fail
	}
	start := time.Now()
	rep := check.Torture(check.TortureOptions{
		Seed: seed, TxPerWorker: txPerWorker, Kill: true,
	})
	fmt.Println(rep)
	fmt.Printf("(%s wall time)\n", time.Since(start).Round(time.Millisecond))
	if !rep.Ok() {
		return 1
	}
	return 0
}

// runTraced runs one SmallBank experiment with per-worker tracing on and
// exports every worker's event ring as a Chrome trace.
func runTraced(path string, smoke bool, protocol string) {
	o := harness.Options{
		System:              harness.SysDrTMR,
		Workload:            harness.WLSmallBank,
		Protocol:            protocol,
		SBRemoteProb:        0.10,
		CoroutinesPerWorker: 2,
		Trace:               true,
	}
	if smoke {
		o.Nodes, o.ThreadsPerNode, o.TxPerWorker = 3, 2, 60
		o.SBAccountsPerNode = 1000
	}
	r := harness.Run(o)
	fmt.Printf("%v\n", r)
	if s := r.AbortSummary(5); s != "" {
		fmt.Printf("top aborts: %s\n", s)
	}
	writeTrace(path, r.Trace)
}

// writeTrace exports recorders as Chrome trace-event JSON, then re-reads and
// validates the file so a truncated or malformed trace fails loudly here
// rather than in the Perfetto UI.
func writeTrace(path string, recs []*obs.Recorder) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "trace: %v\n", err)
		os.Exit(1)
	}
	if err := obs.WriteTrace(f, recs, harness.TraceNames()); err != nil {
		f.Close()
		fmt.Fprintf(os.Stderr, "trace: %v\n", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "trace: %v\n", err)
		os.Exit(1)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "trace: %v\n", err)
		os.Exit(1)
	}
	cats, err := obs.ValidateTrace(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "trace: written file failed validation: %v\n", err)
		os.Exit(1)
	}
	total := 0
	for _, n := range cats {
		total += n
	}
	fmt.Printf("wrote %s: %d events (", path, total)
	first := true
	for _, c := range []string{"txn", "phase", "htm", "doorbell", "sched", "milestone"} {
		if cats[c] == 0 {
			continue
		}
		if !first {
			fmt.Print(", ")
		}
		fmt.Printf("%s %d", c, cats[c])
		first = false
	}
	fmt.Println("); open at https://ui.perfetto.dev")
}
