package drtmr_test

// Ablation benchmarks for the design choices DESIGN.md calls out. Each
// compares the system with and without one mechanism and reports both sides
// as custom metrics (txns/s of virtual time), so the contribution of the
// mechanism is visible in one run.

import (
	"sync"
	"testing"

	"drtmr/internal/bench/smallbank"
	"drtmr/internal/cluster"
	"drtmr/internal/rdma"
	"drtmr/internal/txn"
)

// ablationWorld builds a 3-machine SmallBank cluster.
func ablationWorld(b *testing.B, replicas int, remoteProb float64, nicBps int64) (*cluster.Cluster, []*txn.Engine, smallbank.Config) {
	b.Helper()
	cfg := smallbank.DefaultConfig(3)
	cfg.AccountsPerNode = 2000
	cfg.RemoteProb = remoteProb
	c := cluster.New(cluster.Spec{
		Nodes: 3, Replicas: replicas, MemBytes: 32 << 20,
		RDMA: rdma.Config{NICBytesPerSec: nicBps},
	})
	var engines []*txn.Engine
	for _, m := range c.Machines {
		smallbank.CreateTables(m.Store, cfg)
		engines = append(engines, txn.NewEngine(m, cfg.Partitioner(), txn.DefaultCosts()))
	}
	cfg0 := c.Coord.Current()
	for s := 0; s < 3; s++ {
		shard := cluster.ShardID(s)
		for _, nd := range append([]rdma.NodeID{cfg0.PrimaryOf(shard)}, cfg0.BackupsOf(shard)...) {
			if err := smallbank.Load(c.Machines[nd].Store, cfg, shard); err != nil {
				b.Fatal(err)
			}
		}
	}
	c.Start()
	b.Cleanup(c.Stop)
	return c, engines, cfg
}

// runSB drives a fixed SmallBank load and returns txns/s of virtual time.
func runSB(engines []*txn.Engine, cfg smallbank.Config, perWorker int) float64 {
	var wg sync.WaitGroup
	var mu sync.Mutex
	var committed uint64
	var maxV int64
	for n := 0; n < 3; n++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			w := engines[node].NewWorker(node)
			g := smallbank.NewGen(cfg, cluster.ShardID(node), uint64(node+55))
			for i := 0; i < perWorker; i++ {
				_ = smallbank.Execute(w, g.Next())
			}
			mu.Lock()
			committed += w.Stats.Committed
			if v := w.Clk.Now(); v > maxV {
				maxV = v
			}
			mu.Unlock()
		}(n)
	}
	wg.Wait()
	return float64(committed) / (float64(maxV) / 1e9)
}

// BenchmarkAblationLocationCache measures §6.3's host-transparent location
// cache: without it, every remote access walks the remote hash index with
// extra RDMA READs.
func BenchmarkAblationLocationCache(b *testing.B) {
	var with, without float64
	for i := 0; i < b.N; i++ {
		_, engines, cfg := ablationWorld(b, 1, 0.5, rdma.NICBandwidth56G)
		with = runSB(engines, cfg, 150)
		for _, e := range engines {
			e.DisableLocCache = true
		}
		without = runSB(engines, cfg, 150)
	}
	b.ReportMetric(with, "cache-on_txns/s")
	b.ReportMetric(without, "cache-off_txns/s")
}

// BenchmarkAblationReadOnlyProtocol measures §4.5's dedicated read-only
// path against running the same balance queries through the read-write
// commit (which locks remote read sets with RDMA CAS).
func BenchmarkAblationReadOnlyProtocol(b *testing.B) {
	var ro, rw float64
	for i := 0; i < b.N; i++ {
		_, engines, cfg := ablationWorld(b, 1, 0, rdma.NICBandwidth56G)
		balance := func(w *txn.Worker, acct uint64) func(tx *txn.Txn) error {
			return func(tx *txn.Txn) error {
				if _, err := tx.Read(smallbank.TableChecking, acct); err != nil {
					return err
				}
				_, err := tx.Read(smallbank.TableSavings, acct)
				return err
			}
		}
		run := func(readOnly bool) float64 {
			var wg sync.WaitGroup
			var mu sync.Mutex
			var committed uint64
			var maxV int64
			for n := 0; n < 3; n++ {
				wg.Add(1)
				go func(node int) {
					defer wg.Done()
					w := engines[node].NewWorker(10 + node)
					base := uint64(node) * uint64(cfg.AccountsPerNode)
					for i := 0; i < 200; i++ {
						// Half the reads hit a remote machine: the
						// read-only protocol's saving is skipping C.1
						// locks on them.
						acct := base + uint64(i%50)
						if i%2 == 1 {
							acct = (base + uint64(cfg.AccountsPerNode) + uint64(i%50)) %
								uint64(cfg.AccountsPerNode*cfg.Nodes)
						}
						if readOnly {
							_ = w.RunReadOnly(balance(w, acct))
						} else {
							_ = w.Run(balance(w, acct))
						}
					}
					mu.Lock()
					committed += w.Stats.Committed
					if v := w.Clk.Now(); v > maxV {
						maxV = v
					}
					mu.Unlock()
				}(n)
			}
			wg.Wait()
			return float64(committed) / (float64(maxV) / 1e9)
		}
		ro = run(true)
		rw = run(false)
	}
	b.ReportMetric(ro, "read-only-path_txns/s")
	b.ReportMetric(rw, "rw-path_txns/s")
}

// BenchmarkAblationNICBandwidth shows that Figs 15/16's plateau is the NIC:
// the same replicated SmallBank load against the 56Gbps NIC and a NIC
// constrained to 1/16 of it (at this small worker count the full NIC is not
// yet saturated; the constrained one is, and throughput pins to the wire).
func BenchmarkAblationNICBandwidth(b *testing.B) {
	var slow, fast float64
	for i := 0; i < b.N; i++ {
		_, engines, cfg := ablationWorld(b, 3, 0.01, rdma.NICBandwidth56G/16)
		slow = runSB(engines, cfg, 150)
		_, engines2, cfg2 := ablationWorld(b, 3, 0.01, rdma.NICBandwidth56G)
		fast = runSB(engines2, cfg2, 150)
	}
	b.ReportMetric(slow, "nic-3.5G_txns/s")
	b.ReportMetric(fast, "nic-56G_txns/s")
}
