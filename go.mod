module drtmr

go 1.22
