GO ?= go

.PHONY: all help build test vet lint lint-baseline race check bench bench-smoke trace torture serve

all: check

help:
	@echo "Targets:"
	@echo "  build        go build ./..."
	@echo "  vet          go vet ./... (after build)"
	@echo "  lint         drtmr-vet ratcheted sweep (internal/lint), both build-"
	@echo "               tag halves: htmregion, virtualtime, abortattr, lockpair,"
	@echo "               doorbell, lockorder, hotalloc, enumswitch; diffs against"
	@echo "               lint-baseline.json in both directions (new findings AND"
	@echo "               stale entries fail); SARIF at bin/drtmr-vet.sarif;"
	@echo "               suppress with '//drtmr:allow <analyzer> <reason>'"
	@echo "  lint-baseline  regenerate lint-baseline.json from current findings"
	@echo "               (policy: keep it empty — fix or //drtmr:allow instead)"
	@echo "  test         full test suite"
	@echo "  race         full test suite under -race"
	@echo "  check        CI gate: build + vet + lint + race + smoke benchmarks"
	@echo "  bench        all benchmarks (smoke scale)"
	@echo "  bench-smoke  every benchmark once + emit/validate a trace JSON"
	@echo "  trace        traced SmallBank run -> trace.json (Perfetto/Chrome)"
	@echo "  torture      strict-serializability torture sweep + mutation"
	@echo "               self-test (internal/check; SEED=n to vary, a"
	@echo "               violating cell prints its deterministic replay seed)"
	@echo "  serve        run the drtmr-serve network front door on :7707"
	@echo "               (/statusz on :7708; ADDR=/HTTP= to override)"
	@echo ""
	@echo "Knobs:"
	@echo "  Engine.Protocol / harness Options.Protocol / drtmr-bench -protocol:"
	@echo "    commit protocol by registry name (default drtmr = the paper's"
	@echo "    HTM pipeline; farm = FaRM-style one-sided log-append: write-set"
	@echo "    locks only, lock-checking validation, replicate-before-install,"
	@echo "    no HTM commit region). Head-to-head sweep: 'go run"
	@echo "    ./cmd/drtmr-bench -fig proto' or BenchmarkFigProtocolMatrix;"
	@echo "    conformance battery: TestProtocolConformance* (internal/txn)."
	@echo "  Engine.CoroutinesPerWorker / harness Options.CoroutinesPerWorker:"
	@echo "    in-flight transaction contexts per worker (default 4)."
	@echo "    1 = classic one-transaction-per-thread ablation; sweep with"
	@echo "    'go run ./cmd/drtmr-bench -fig coro' or BenchmarkCoroutineOverlap."
	@echo "  Engine.DisableVerbBatching: per-verb latency accounting ablation."
	@echo "  Engine.ContentionMode / harness Options.ContentionMode:"
	@echo "    hot-record contention manager (default on). off = pure OCC"
	@echo "    retry ablation; sweep with 'go run ./cmd/drtmr-bench -fig tail'"
	@echo "    or BenchmarkFigContentionTail. Tuning: Engine.ContentionHotThreshold"
	@echo "    (aborts before a key is queued), Engine.BackoffMaxExp (retry"
	@echo "    backoff exponent cap)."
	@echo "  Observability (internal/obs, see DESIGN.md):"
	@echo "    drtmr-bench -trace out.json       per-worker event trace (open at"
	@echo "                                      https://ui.perfetto.dev)"
	@echo "    drtmr-bench -fig lat              latency-percentile CDF table"
	@echo "    drtmr-bench -fig 20 -trace r.json recovery milestones as a trace"
	@echo "    Worker.EnableTrace / Options.Trace enable recording in code."
	@echo "  Serve mode (internal/serve, cmd/drtmr-serve, see DESIGN.md):"
	@echo "    drtmr-serve -addr :7707 -http :7708   TCP front door + /statusz"
	@echo "    drtmr-serve -fleet N -rate R -skew z  open-loop load fleet"
	@echo "    -admission off                        unbounded-queue ablation"
	@echo "    -watermark N                          queue-depth shed point"
	@echo "    -payment-protocol farm                per-procedure commit protocol"
	@echo "    drtmr-bench -fig serve                overload sweep, on vs off"

build:
	$(GO) build ./...

vet: build
	$(GO) vet ./...

# lint runs the protocol-invariant analyzer suite through the real go vet
# -vettool driver (cmd/drtmr-vet speaks the unitchecker protocol), sweeping
# both race/!race build-tag halves and ratcheting against the committed
# baseline in both directions. The SARIF log is the CI code-scanning
# artifact.
lint: build
	$(GO) build -o bin/drtmr-vet ./cmd/drtmr-vet
	./bin/drtmr-vet -race -sarif bin/drtmr-vet.sarif ./...

# lint-baseline regenerates lint-baseline.json from the current findings.
# Policy: the committed baseline stays empty (DESIGN.md, Static invariants);
# use this only to audit what a dirty tree would ratchet.
lint-baseline: build
	$(GO) build -o bin/drtmr-vet ./cmd/drtmr-vet
	./bin/drtmr-vet -race -write-baseline ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the CI gate: build, vet, the full suite under the race detector
# (the simulator runs real goroutines per worker/applier, so -race exercises
# the HTM engine and NIC paths hard), then a 1x pass over every benchmark.
check:
	./scripts/check.sh

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# bench-smoke additionally emits a smoke-scale trace and validates it (the
# -trace path re-reads the written file and checks well-formed JSON, known
# event phases and per-track monotone timestamps before reporting success).
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...
	$(GO) test -run 'TestProtocolConformance' -count=1 ./internal/txn/
	$(GO) run ./cmd/drtmr-bench -smoke -fig proto
	$(GO) run ./cmd/drtmr-bench -smoke -trace smoke-trace.json
	@rm -f smoke-trace.json

trace:
	$(GO) run ./cmd/drtmr-bench -trace trace.json

# torture: full knob-matrix strict-serializability sweep (with kill cells)
# plus the checker self-test against deliberately broken protocol steps.
SEED ?= 3
torture:
	$(GO) run ./cmd/drtmr-bench -torture -seed $(SEED)
	$(GO) run ./cmd/drtmr-bench -torture -mutate -seed $(SEED)

# serve runs the network front door until interrupted: stored procedures
# over the wire protocol on ADDR, live status JSON at http://HTTP/statusz.
ADDR ?= 127.0.0.1:7707
HTTP ?= 127.0.0.1:7708
serve:
	$(GO) run ./cmd/drtmr-serve -addr $(ADDR) -http $(HTTP)
