GO ?= go

.PHONY: all build test vet race check bench

all: check

build:
	$(GO) build ./...

vet: build
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the CI gate: build, vet, and the full suite under the race
# detector (the simulator runs real goroutines per worker/applier, so -race
# exercises the HTM engine and NIC paths hard).
check:
	./scripts/check.sh

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...
