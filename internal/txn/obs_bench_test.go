package txn

import (
	"bytes"
	"math"
	"testing"

	"drtmr/internal/htm"
	"drtmr/internal/memstore"
	"drtmr/internal/obs"
)

// baselineCoro4Nanos is the recorded BENCH_coroutine_overlap.json value for
// the 8-remote-record commit at N=4 coroutines (virtual ns/commit at 200
// iterations). The tracing subsystem must not move this number at all when
// disabled — and, because recording only READS clocks, not even when enabled.
const baselineCoro4Nanos = 6391.0

// tracedCoroCommitVirtualNanos is coroCommitVirtualNanos with optional
// tracing, returning the worker's recorder when enabled.
func tracedCoroCommitVirtualNanos(tb testing.TB, ncoro, itersPerCoro int, trace bool) (float64, *obs.Recorder) {
	w := newWorld(tb, 3, 1, htm.Config{})
	w.load(tb, 12*ncoro, 1000)
	wk := w.engines[0].NewWorker(0)
	var rec *obs.Recorder
	if trace {
		rec = wk.EnableTrace(0)
	}
	start := wk.Clk.Now()
	wk.RunCoroutines(ncoro, func(slot int) {
		base := uint64(12 * slot)
		for i := 0; i < itersPerCoro; i++ {
			if err := runEightRemoteTransferAt(wk, base); err != nil {
				tb.Error(err)
				return
			}
		}
	})
	total := uint64(ncoro * itersPerCoro)
	if wk.Stats.Committed != total {
		tb.Errorf("committed %d of %d", wk.Stats.Committed, total)
	}
	return float64(wk.Clk.Now()-start) / float64(total), rec
}

// BenchmarkTraceOverhead pins the observability layer's cost model: tracing
// disabled must not move virtual time at all against the recorded coroutine
// baseline (BENCH_coroutine_overlap.json), and — because recording only reads
// the virtual clock — even enabled tracing charges zero virtual nanoseconds.
// The wall-clock cost of enabled tracing is bounded by the preallocated ring
// writes (no allocation; see obs.TestRecorderNoAlloc).
func BenchmarkTraceOverhead(b *testing.B) {
	for _, mode := range []struct {
		name  string
		trace bool
	}{{"disabled", false}, {"enabled", true}} {
		b.Run(mode.name, func(b *testing.B) {
			vns, _ := tracedCoroCommitVirtualNanos(b, 4, b.N, mode.trace)
			b.ReportMetric(vns, "virtual-ns/commit")
			b.ReportMetric(0, "ns/op") // wall time is meaningless here
		})
	}
}

// TestTraceOverheadBudget is the <3% acceptance gate, plus the stronger
// property the design actually delivers: enabled and disabled runs are
// virtual-time IDENTICAL (recording never advances a clock), and both sit
// within 3% of the recorded BENCH_coroutine_overlap.json baseline.
func TestTraceOverheadBudget(t *testing.T) {
	const iters = 200 // the baseline was recorded at -benchtime 200x
	off, _ := tracedCoroCommitVirtualNanos(t, 4, iters, false)
	on, rec := tracedCoroCommitVirtualNanos(t, 4, iters, true)
	t.Logf("virtual ns/commit: disabled=%.1f enabled=%.1f baseline=%.1f", off, on, baselineCoro4Nanos)
	if off != on {
		t.Errorf("tracing changed virtual time: disabled %.1f, enabled %.1f", off, on)
	}
	if rel := math.Abs(off-baselineCoro4Nanos) / baselineCoro4Nanos; rel > 0.03 {
		t.Errorf("disabled-trace run off baseline by %.2f%% (> 3%%): %.1f vs %.1f",
			100*rel, off, baselineCoro4Nanos)
	}
	if rec.Len() == 0 {
		t.Error("enabled run recorded no events")
	}
}

// TestTraceContent drives a mixed local/remote workload under the coroutine
// scheduler with tracing on and checks the exported Chrome trace carries
// every event family the acceptance criteria name: txn begin/commit, commit
// phases, HTM regions, doorbells, and coroutine yields.
func TestTraceContent(t *testing.T) {
	w := newWorld(t, 3, 1, htm.Config{})
	w.load(t, 24, 1000)
	wk := w.engines[0].NewWorker(0)
	rec := wk.EnableTrace(0)
	wk.RunCoroutines(2, func(slot int) {
		base := uint64(12 * slot)
		for i := 0; i < 10; i++ {
			err := wk.Run(func(tx *Txn) error {
				// Key base+0 is local to node 0 (key%3==0): exercises the
				// execution-phase HTM read AND the commit HTM region. Keys
				// base+1/base+2 are remote: exercise doorbells and phases.
				for _, k := range []uint64{base, base + 1, base + 2} {
					v, err := tx.Read(tblAcct, k)
					if err != nil {
						return err
					}
					if err := tx.Write(tblAcct, k, encBal(decBal(v)+1)); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				t.Error(err)
				return
			}
		}
	})

	var buf bytes.Buffer
	names := obs.TraceNames{
		Stage:  StageName,
		Reason: func(r uint8) string { return AbortReason(r).String() },
		Cause:  func(c uint8) string { return htm.AbortCause(c).String() },
	}
	if err := obs.WriteTrace(&buf, []*obs.Recorder{rec}, names); err != nil {
		t.Fatal(err)
	}
	cats, err := obs.ValidateTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("trace failed validation: %v", err)
	}
	for _, cat := range []string{"txn", "phase", "htm", "doorbell", "sched"} {
		if cats[cat] == 0 {
			t.Errorf("trace has no %q events (got %v)", cat, cats)
		}
	}
	if rec.Dropped() > 0 {
		t.Logf("ring dropped %d events (capacity %d)", rec.Dropped(), obs.DefaultCapacity)
	}
}

// TestAbortAttribution forces a lock conflict and checks the abort lands in
// the reason × stage × site matrix with the right coordinates: lock-failed
// at C.1 attributed to the node holding the record.
func TestAbortAttribution(t *testing.T) {
	w := newWorld(t, 3, 1, htm.Config{})
	w.load(t, 12, 1000)
	wk := w.engines[0].NewWorker(0)

	// Hold the lock of key 1 (shard 1, remote) via a foreign lock word so
	// C.1's CAS fails and passive release does not clear it (node 2 is a
	// live member).
	tbl := w.c.Machines[1].Store.Table(tblAcct)
	off, ok := tbl.Lookup(1)
	if !ok {
		t.Fatal("key 1 missing")
	}
	foreign := memstore.LockWord(2)
	if _, swapped, err := wk.QP(1).CAS(off+memstore.LockOff, 0, foreign); err != nil || !swapped {
		t.Fatalf("pre-lock failed: %v swapped=%v", err, swapped)
	}

	err := wk.Run(func(tx *Txn) error {
		v, err := tx.Read(tblAcct, 1)
		if err != nil {
			return err
		}
		if attempts := wk.Stats.Aborts[AbortLockFailed]; attempts >= 2 {
			// Release so the retry finally commits.
			_, _, _ = wk.QP(1).CAS(off+memstore.LockOff, foreign, 0)
		}
		return tx.Write(tblAcct, 1, v)
	})
	if err != nil {
		t.Fatal(err)
	}
	cells := wk.Stats.AbortCells.Cells()
	if len(cells) == 0 {
		t.Fatal("no abort cells recorded")
	}
	top := cells[0]
	if AbortReason(top.Reason) != AbortLockFailed || top.Stage != StageLock || top.Site != 1 {
		t.Errorf("top abort cell %+v, want lock-failed at C.1 on node 1", top)
	}
	if got, want := wk.Stats.AbortCells.Total(), wk.Stats.AbortsTotal(); got != want {
		t.Errorf("matrix total %d != flat aborts %d", got, want)
	}
	s := wk.Stats.AbortCells.Summary(3,
		func(r uint8) string { return AbortReason(r).String() }, StageName)
	if s == "" {
		t.Error("empty abort summary")
	}
	t.Logf("abort summary: %s", s)
}
