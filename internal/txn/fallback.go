package txn

import (
	"sort"

	"drtmr/internal/memstore"
	"drtmr/internal/rdma"
)

// Fallback handler (§6.1). RTM is best-effort: the commit-phase HTM region
// may keep aborting even without real conflicts, so after bounded retries
// the transaction commits through a pure locking protocol instead. Because
// local records are also remotely accessible, the handler cannot just take
// a process-wide mutex like single-machine HTM databases do — it must lock
// and validate local records exactly like remote ones. To avoid deadlock it
// first releases every remote lock it owns, then acquires locks for ALL
// records (local and remote) in globally sorted order.
//
// Locks on local records are acquired with loop-back RDMA CAS (§6.2): the
// NIC provides only HCA-level atomicity, so mixing CPU CAS with RDMA CAS on
// the same word would be unsound; going through the NIC for local locks too
// — even though it is two orders of magnitude slower than a local CAS — is
// the paper's explicit design choice, affordable because the fallback runs
// on <1% of transactions.

// fbTarget is one record the fallback handler locks.
type fbTarget struct {
	node rdma.NodeID
	off  uint64
}

// fallbackCommit re-runs the commit under full locking and, on success,
// carries the transaction through replication, write-back and unlock.
// Preconditions: remote locks from C.1 are held (and are released here
// first); the HTM region has NOT applied any local update.
func (proto drtmrProto) fallbackCommit(tx *Txn, remoteLocks []lockTarget) error {
	w := tx.w
	// Step 1: release owned remote locks.
	tx.unlockRemote(remoteLocks)

	// Step 2: collect every record (local + remote) in sorted order.
	seen := make(map[fbTarget]struct{})
	var targets []fbTarget
	add := func(node rdma.NodeID, off uint64) {
		t := fbTarget{node: node, off: off}
		if _, dup := seen[t]; !dup {
			seen[t] = struct{}{}
			targets = append(targets, t)
		}
	}
	self := w.E.M.ID
	for i := range tx.rs {
		r := &tx.rs[i]
		if r.local {
			add(self, r.off)
		} else {
			add(r.node, r.off)
		}
	}
	for i := range tx.ws {
		e := &tx.ws[i]
		if e.kind == wsInsert {
			continue
		}
		if e.local && e.off == 0 {
			tbl := w.E.M.Store.Table(e.table)
			off, ok := tbl.Lookup(e.key)
			if !ok {
				if e.kind == wsDelete {
					continue
				}
				return tx.abortOn(w.E.M.ID, e.table, e.key, AbortValidate, "fallback: local record vanished")
			}
			e.off = off
		}
		if e.off == 0 {
			continue
		}
		if e.local {
			add(self, e.off)
		} else {
			add(e.node, e.off)
		}
	}
	sort.Slice(targets, func(i, j int) bool {
		if targets[i].node != targets[j].node {
			return targets[i].node < targets[j].node
		}
		return targets[i].off < targets[j].off
	})

	// Step 3: lock everything (loop-back RDMA CAS for local records). The
	// targets are globally sorted; consecutive targets on the same node
	// form one doorbell batch of CASes, and node groups are acquired
	// strictly in sorted order — so the deadlock-freedom argument of the
	// sorted acquisition is preserved while each group costs one CAS
	// round-trip. Failed targets within a group retry (after passive
	// dangling-lock release and backoff) in ever-smaller batches.
	myWord := memstore.LockWord(uint32(self))
	var acquired []fbTarget
	lockFail := false
groups:
	for lo := 0; lo < len(targets); {
		hi := lo
		for hi < len(targets) && targets[hi].node == targets[lo].node {
			hi++
		}
		remaining := targets[lo:hi]
		for attempt := 0; len(remaining) > 0; attempt++ {
			if attempt >= 32 {
				lockFail = true
				break groups
			}
			if attempt > 0 {
				w.backoff(attempt)
			}
			b := w.newBatch()
			pend := make([]*rdma.Pending, len(remaining))
			for i, t := range remaining {
				pend[i] = b.PostCAS(w.QP(t.node), t.off+memstore.LockOff, 0, myWord)
			}
			_ = tx.execBatch(PhaseFallback, b)
			// Scan every result before acting on a failure: the batch has
			// already executed, so CASes posted after a failed verb may
			// still have swapped — exiting mid-scan would leak those wins
			// past the back-out set (the c08a886 bug class, fallback edition).
			var next []fbTarget
			for i, p := range pend {
				switch {
				case p.Err != nil:
					lockFail = true
				case p.Swapped:
					acquired = append(acquired, remaining[i])
				default:
					w.maybeReleaseDangling(tx.cfg, remaining[i].node, remaining[i].off, p.Prev)
					next = append(next, remaining[i])
				}
			}
			if lockFail {
				break groups
			}
			remaining = next
		}
		lo = hi
	}
	unlockAll := func() {
		if len(acquired) == 0 {
			return
		}
		b := w.newBatch()
		for _, t := range acquired {
			b.PostCAS(w.QP(t.node), t.off+memstore.LockOff, myWord, 0)
		}
		_ = tx.execBatch(PhaseFallback, b)
	}
	if lockFail {
		unlockAll()
		return tx.abort(AbortLockFailed, "fallback lock failed")
	}

	// Step 4: validate the whole read set under locks.
	if err := proto.fallbackValidate(tx); err != nil {
		unlockAll()
		return err
	}

	// Step 5: apply local updates without HTM — safe because the records
	// are locked (local execution-phase readers check the lock and back
	// off; local committers' C.4 checks the lock and aborts; remote
	// committers cannot take the lock; and strong atomicity aborts any
	// in-flight HTM reader we race with).
	for i := range tx.ws {
		e := &tx.ws[i]
		if !e.local || (e.kind != wsUpdate && e.kind != wsDelta) || e.off == 0 {
			continue
		}
		newSeq := e.baseSeq + 1
		e.finSeq = tx.finalSeq(e.baseSeq)
		tbl := w.E.M.Store.Table(e.table)
		inc := tx.localInc(e.off)
		e.inc = inc
		e.haveInc = true // history record: local updates bypass C.2's fetch
		img := memstore.BuildRecordImage(tbl.Spec.ValueSize, e.buf, inc, newSeq)
		w.E.M.Eng.WriteNonTx(e.off+8, img[8:])
	}

	// Step 6: the common tail — inserts/deletes, replication, makeup,
	// remote write-back — then release every lock.
	tx.applyInsertsDeletes()
	var toks []ringToken
	if w.E.Replicated {
		toks = tx.replicate()
		proto.makeupLocal(tx)
	}
	tx.writeBackRemote()
	unlockAll()
	for _, tk := range toks {
		w.E.M.LogWriter(tk.node).MarkCommitted(tk.tok.End())
	}
	return nil
}

// fallbackValidate checks every read-set record and fetches write bases, all
// under locks. Remote header READs (read set + blind write bases) share one
// doorbell batch; local records read memory directly.
func (proto drtmrProto) fallbackValidate(tx *Txn) error {
	w := tx.w
	b := w.newBatch()
	rsPend := make([]*rdma.Pending, len(tx.rs))
	for i := range tx.rs {
		if !tx.rs[i].local {
			rsPend[i] = b.PostRead(w.QP(tx.rs[i].node), tx.rs[i].off, 24)
		}
	}
	var wsIdx []int
	var wsPend []*rdma.Pending
	for i := range tx.ws {
		e := &tx.ws[i]
		if (e.kind != wsUpdate && e.kind != wsDelta) || e.off == 0 || e.local {
			continue
		}
		if tx.findRS(e.table, e.key) != nil {
			continue
		}
		// Deltas fetch the whole record (as in C.2): the final image is the
		// current value plus the pending adds, folded under the sorted locks.
		n := 24
		if e.kind == wsDelta {
			n = w.E.M.Store.Table(e.table).RecBytes
		}
		wsIdx = append(wsIdx, i)
		wsPend = append(wsPend, b.PostRead(w.QP(e.node), e.off, n))
	}
	_ = tx.execBatch(PhaseFallback, b)

	var hdr [24]byte
	for i := range tx.rs {
		r := &tx.rs[i]
		var inc, cur uint64
		if r.local {
			h := w.E.M.Eng.ReadNonTx(r.off, 24, hdr[:])
			inc, cur = memstore.RecInc(h), memstore.RecSeq(h)
		} else {
			p := rsPend[i]
			if p.Err != nil {
				return tx.abortAt(r.node, AbortNodeDead, "fallback validate: %v", p.Err)
			}
			inc, cur = memstore.RecInc(p.Data), memstore.RecSeq(p.Data)
		}
		skip := w.E.Mut.SkipRemoteValidate
		if r.local {
			skip = w.E.Mut.SkipLocalValidate
		}
		incOK := inc == r.inc || w.E.Mut.SkipIncCheck
		if (!incOK || !tx.seqValidates(r.seq, cur)) && !skip {
			site := w.E.M.ID
			if !r.local {
				site = r.node
			}
			return tx.abortOn(site, r.table, r.key, AbortValidate, "fallback: record changed")
		}
		if e := tx.findWS(r.table, r.key); e != nil && (e.kind == wsUpdate || e.kind == wsDelta) {
			e.baseSeq = cur
			e.finSeq = tx.finalSeq(cur)
			if !e.local {
				e.inc = inc
				e.haveInc = true
			}
			if e.kind == wsDelta {
				// Validation just passed under the sorted locks, so the
				// execution-phase copy is current: fold the adds over it.
				e.materializeFrom(r.val)
			}
		}
	}
	// Local blind writes read memory directly; remote ones use the batch.
	for i := range tx.ws {
		e := &tx.ws[i]
		if (e.kind != wsUpdate && e.kind != wsDelta) || e.off == 0 || !e.local {
			continue
		}
		if tx.findRS(e.table, e.key) != nil {
			continue
		}
		tbl := w.E.M.Store.Table(e.table)
		n := 24
		if e.kind == wsDelta {
			n = tbl.RecBytes
		}
		h := w.E.M.Eng.ReadNonTx(e.off, n, hdr[:0])
		cur := memstore.RecSeq(h)
		if w.E.Replicated && !memstore.SeqIsCommittable(cur) {
			return tx.abortOn(w.E.M.ID, e.table, e.key, AbortValidate, "fallback: ws uncommittable")
		}
		e.baseSeq = cur
		e.finSeq = tx.finalSeq(cur)
		if e.kind == wsDelta {
			e.materializeFrom(memstore.GatherValue(h, tbl.Spec.ValueSize))
		}
	}
	for j, i := range wsIdx {
		e := &tx.ws[i]
		p := wsPend[j]
		if p.Err != nil {
			return tx.abortAt(e.node, AbortNodeDead, "fallback ws fetch: %v", p.Err)
		}
		cur := memstore.RecSeq(p.Data)
		if w.E.Replicated && !memstore.SeqIsCommittable(cur) {
			return tx.abortOn(e.node, e.table, e.key, AbortValidate, "fallback: ws uncommittable")
		}
		e.baseSeq = cur
		e.finSeq = tx.finalSeq(cur)
		e.inc = memstore.RecInc(p.Data)
		e.haveInc = true
		if e.kind == wsDelta {
			tbl := w.E.M.Store.Table(e.table)
			if !memstore.VersionsConsistent(p.Data) {
				return tx.abortOn(e.node, e.table, e.key, AbortValidate, "fallback: delta base torn")
			}
			e.materializeFrom(memstore.GatherValue(p.Data, tbl.Spec.ValueSize))
		}
	}
	return nil
}

// localInc reads a local record's incarnation non-transactionally.
func (tx *Txn) localInc(off uint64) uint64 {
	return tx.w.E.M.Eng.Load64NonTx(off + memstore.IncOff)
}
