package txn

import (
	"encoding/binary"
	"time"

	"drtmr/internal/cluster"
	"drtmr/internal/memstore"
	"drtmr/internal/rdma"
)

// Insert/delete shipping (§4.3): structural index mutations are not
// expressible as one-sided verbs, so they travel to the host machine with
// SEND/RECV and execute there inside HTM transactions (the memstore's
// insert/delete paths). Replication of the mutation itself rides the
// coordinator's R.1 log entries, not the RPC.

// RPC kinds (cluster reserves 0x10 for recovery redo).
const (
	rpcInsert = 0x20
	rpcDelete = 0x21
)

// registerRPC installs the host-side handlers on this engine's machine.
func (e *Engine) registerRPC() {
	e.M.RegisterHandler(rpcInsert, func(from rdma.NodeID, body []byte) []byte {
		if len(body) < 19 {
			return rpcFail()
		}
		table := memstore.TableID(body[0])
		seq := binary.LittleEndian.Uint64(body[1:9])
		key := binary.LittleEndian.Uint64(body[9:17])
		vlen := int(binary.LittleEndian.Uint16(body[17:19]))
		if len(body) < 19+vlen {
			return rpcFail()
		}
		tbl := e.M.Store.Table(table)
		if tbl == nil {
			return rpcFail()
		}
		off, err := tbl.InsertWithSeq(key, body[19:19+vlen], seq)
		if err != nil {
			// Duplicate key: resolve to the existing record so the
			// coordinator can still stamp it (idempotent replay).
			if existing, ok := tbl.Lookup(key); ok {
				off = existing
			} else {
				return rpcFail()
			}
		}
		out := make([]byte, 9)
		out[0] = 1
		binary.LittleEndian.PutUint64(out[1:9], off)
		return out
	})
	e.M.RegisterHandler(rpcDelete, func(from rdma.NodeID, body []byte) []byte {
		if len(body) < 9 {
			return rpcFail()
		}
		table := memstore.TableID(body[0])
		key := binary.LittleEndian.Uint64(body[1:9])
		tbl := e.M.Store.Table(table)
		if tbl == nil {
			return rpcFail()
		}
		_ = tbl.Delete(key) // missing key: already-deleted replay, fine
		return []byte{1}
	})
}

func rpcFail() []byte { return []byte{0} }

// rpcInsert ships an insert to the host machine, returning the new record's
// offset.
func (w *Worker) rpcInsert(node rdma.NodeID, table memstore.TableID, shard cluster.ShardID, key uint64, value []byte, seq uint64) (uint64, bool) {
	_ = shard // shard travels in the R.1 log records, not the RPC
	body := make([]byte, 19+len(value))
	body[0] = uint8(table)
	binary.LittleEndian.PutUint64(body[1:9], seq)
	binary.LittleEndian.PutUint64(body[9:17], key)
	binary.LittleEndian.PutUint16(body[17:19], uint16(len(value)))
	copy(body[19:], value)
	reply, err := w.E.M.Call(w.QP(node), rpcInsert, body, time.Second)
	if err != nil || len(reply) < 9 || reply[0] != 1 {
		return 0, false
	}
	return binary.LittleEndian.Uint64(reply[1:9]), true
}

// rpcDelete ships a delete to the host machine.
func (w *Worker) rpcDelete(node rdma.NodeID, table memstore.TableID, key uint64) {
	body := make([]byte, 9)
	body[0] = uint8(table)
	binary.LittleEndian.PutUint64(body[1:9], key)
	_, _ = w.E.M.Call(w.QP(node), rpcDelete, body, time.Second)
}
