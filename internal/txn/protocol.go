package txn

import (
	"sort"
	"sync"

	"drtmr/internal/rdma"
)

// CommitProtocol is a pluggable commit pipeline. The execution layer —
// read/write sets, deltas, the coroutine scheduler, contention gates — is
// protocol-agnostic: user code runs Txn.Read/Write/Add/Insert/Delete exactly
// the same way regardless of which protocol later commits the transaction.
// A protocol owns everything from Txn.Commit on: locking, validation,
// replication/logging, install, write-back and unlock, plus whatever
// fallback interplay it needs.
//
// Contract (what the rest of the system relies on):
//
//   - Commit is called on read-write transactions with a non-empty write
//     set; ReadOnlyCommit on read-only (or write-free) ones. Either returns
//     nil once the transaction is durably committed under the engine's
//     replication mode, or a *Error carrying full Reason/Stage/Site (and
//     Table/Key when the conflicting record is known) abort attribution —
//     drtmr-vet's abortattr analyzer enforces the attribution statically.
//   - On abort, no lock may stay held and no write may be visible: the
//     retry loop re-executes from scratch.
//   - A committed transaction's records must carry their final sequence
//     number (Txn.finalSeq) so histories stay comparable across protocols
//     and the strict-serializability checker needs no per-protocol cases.
//   - Replicated engines must make log entries durable (Txn.replicate)
//     before a record version becomes committable to OTHER transactions,
//     and must tolerate the §5.2 recovery obligations: dangling locks left
//     by dead machines are released passively (Worker.maybeReleaseDangling)
//     and log ring truncation happens only after MarkCommitted.
//   - Implementations must be stateless values: one registered instance is
//     shared by every engine and worker concurrently.
type CommitProtocol interface {
	// Name is the registry key ("drtmr", "farm") — the value of
	// Engine.Protocol and the harness -protocol knob.
	Name() string
	// Commit runs the full read-write commit pipeline.
	Commit(tx *Txn) error
	// ReadOnlyCommit validates a read-only transaction.
	ReadOnlyCommit(tx *Txn) error
}

// DefaultProtocol is the protocol an Engine with an empty Protocol field
// uses: the paper's DrTM+R seqlock-replication pipeline.
const DefaultProtocol = "drtmr"

var (
	protoMu  sync.RWMutex
	protoReg = make(map[string]CommitProtocol)
)

// RegisterProtocol adds a commit protocol to the registry. Registering two
// protocols under one name is a programming error and panics.
func RegisterProtocol(p CommitProtocol) {
	protoMu.Lock()
	defer protoMu.Unlock()
	name := p.Name()
	if _, dup := protoReg[name]; dup {
		panic("txn: duplicate commit protocol " + name)
	}
	protoReg[name] = p
}

// ProtocolByName resolves a registered protocol.
func ProtocolByName(name string) (CommitProtocol, bool) {
	protoMu.RLock()
	defer protoMu.RUnlock()
	p, ok := protoReg[name]
	return p, ok
}

// Protocols lists the registered protocol names, sorted — the conformance
// suite iterates it so a new protocol gets correctness coverage for free.
func Protocols() []string {
	protoMu.RLock()
	defer protoMu.RUnlock()
	names := make([]string, 0, len(protoReg))
	for n := range protoReg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func init() {
	RegisterProtocol(drtmrProto{})
	RegisterProtocol(farmProto{})
}

// protocol resolves this worker's commit protocol: the per-worker override
// (set by the serve layer per stored procedure) wins over the engine-wide
// Engine.Protocol, which defaults to DefaultProtocol. An unknown name
// panics: it is a configuration error that must fail loudly, not a runtime
// abort.
func (w *Worker) protocol() CommitProtocol {
	name := w.Protocol
	if name == "" {
		name = w.E.Protocol
	}
	if name == "" {
		name = DefaultProtocol
	}
	p, ok := ProtocolByName(name)
	if !ok {
		panic("txn: unknown commit protocol " + name)
	}
	return p
}

// Commit dispatches to the worker's commit protocol. Read-only transactions
// (and read-write ones that wrote nothing) take the protocol's read-only
// path; everything else runs the full pipeline.
func (tx *Txn) Commit() error {
	p := tx.w.protocol()
	if tx.readOnly || len(tx.ws) == 0 {
		tx.stage = StageROValidate
		return p.ReadOnlyCommit(tx)
	}
	return p.Commit(tx)
}

// writesAt reports whether the write set covers the record at (node, off) —
// the read-only-participant test for lock targets (Stats.ROVerbs).
func (tx *Txn) writesAt(node rdma.NodeID, off uint64) bool {
	if off == 0 {
		return false
	}
	self := tx.w.E.M.ID
	for i := range tx.ws {
		e := &tx.ws[i]
		n := e.node
		if e.local {
			n = self
		}
		if n == node && e.off == off {
			return true
		}
	}
	return false
}

// countWakeup records a remote-CPU delivery (RPC or redo-log append) bound
// for node if node is a pure read participant of this transaction: it hosts
// read-set records but none of the write set, and owes the transaction no
// replication duty (not a primary or backup of any written shard). Both
// protocols derive their delivery targets from the write set alone, so the
// counter stays zero — the protocol-matrix figure reports it as a measured
// invariant rather than an assumption (FaRM's defining property: read-only
// participants never wake a remote CPU).
func (tx *Txn) countWakeup(node rdma.NodeID) {
	w := tx.w
	self := w.E.M.ID
	cfg := w.E.M.Config()
	for i := range tx.ws {
		e := &tx.ws[i]
		n := e.node
		if e.local {
			n = self
		}
		if n == node {
			return
		}
		if int(e.shard) < cfg.NumShards() {
			if cfg.PrimaryOf(e.shard) == node {
				return
			}
			for _, b := range cfg.BackupsOf(e.shard) {
				if b == node {
					return
				}
			}
		}
	}
	for i := range tx.rs {
		if !tx.rs[i].local && tx.rs[i].node == node {
			w.Stats.ROWakeups++
			return
		}
	}
}
