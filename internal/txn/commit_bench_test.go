package txn

import (
	"fmt"
	"testing"

	"drtmr/internal/htm"
)

// remoteKeys8 are eight keys that map to shards 1 and 2 under key%3 with a
// worker on node 0 — i.e. all remote, spread over two target NICs.
var remoteKeys8 = []uint64{1, 2, 4, 5, 7, 8, 10, 11}

// runEightRemoteTransfer reads and rewrites all eight remote keys in one
// distributed transaction.
func runEightRemoteTransfer(w *Worker) error {
	return runEightRemoteTransferAt(w, 0)
}

// runEightRemoteTransferAt is runEightRemoteTransfer on keys shifted by
// base. Shifts that are multiples of 12 preserve every key's shard residue
// (mod 3), so coroutine slots can work disjoint all-remote key sets.
func runEightRemoteTransferAt(w *Worker, base uint64) error {
	return w.Run(func(tx *Txn) error {
		for _, k := range remoteKeys8 {
			v, err := tx.Read(tblAcct, base+k)
			if err != nil {
				return err
			}
			if err := tx.Write(tblAcct, base+k, encBal(decBal(v)+1)); err != nil {
				return err
			}
		}
		return nil
	})
}

// commitVirtualNanos measures virtual nanoseconds per commit of the
// 8-remote-record transaction over iters iterations.
func commitVirtualNanos(tb testing.TB, disableBatching bool, iters int) float64 {
	w := newWorld(tb, 3, 1, htm.Config{})
	for _, e := range w.engines {
		e.DisableVerbBatching = disableBatching
	}
	w.load(tb, 12, 1000)
	wk := w.engines[0].NewWorker(0)
	start := wk.Clk.Now()
	for i := 0; i < iters; i++ {
		if err := runEightRemoteTransfer(wk); err != nil {
			tb.Fatal(err)
		}
	}
	if wk.Stats.Committed != uint64(iters) {
		tb.Fatalf("committed %d of %d", wk.Stats.Committed, iters)
	}
	return float64(wk.Clk.Now()-start) / float64(iters)
}

// TestBatchingCommitSpeedup pins the headline claim of doorbell batching: an
// 8-remote-record distributed transaction commits in >= 2x less virtual time
// than with sequential per-verb round-trips. (C.1 posts 8 CASes, C.2 8 READs,
// C.5 8 WRITEs, C.6 8 CASes — sequential charges 32 base latencies where
// batched charges 4.)
func TestBatchingCommitSpeedup(t *testing.T) {
	const iters = 50
	seq := commitVirtualNanos(t, true, iters)
	bat := commitVirtualNanos(t, false, iters)
	t.Logf("virtual ns/commit: sequential=%.0f batched=%.0f (%.2fx)", seq, bat, seq/bat)
	if bat <= 0 {
		t.Fatal("batched run charged no virtual time")
	}
	if seq < 2*bat {
		t.Fatalf("batching speedup %.2fx < 2x (sequential %.0fns, batched %.0fns)", seq/bat, seq, bat)
	}
}

// TestCommitPhaseCounters checks the per-phase instrumentation: one doorbell
// per phase per commit, eight verbs each, for the 8-remote-record txn.
func TestCommitPhaseCounters(t *testing.T) {
	w := newWorld(t, 3, 1, htm.Config{})
	w.load(t, 12, 1000)
	wk := w.engines[0].NewWorker(0)
	if err := runEightRemoteTransfer(wk); err != nil {
		t.Fatal(err)
	}
	for _, ph := range []CommitPhase{PhaseLock, PhaseValidate, PhaseWriteBack, PhaseUnlock} {
		ps := wk.Stats.Phases[ph]
		if ps.Batches != 1 {
			t.Errorf("%s: %d doorbells, want 1", ph, ps.Batches)
		}
		if ps.Verbs != 8 {
			t.Errorf("%s: %d verbs, want 8", ph, ps.Verbs)
		}
		if ps.Nanos == 0 {
			t.Errorf("%s: no virtual time charged", ph)
		}
	}
	if ps := wk.Stats.Phases[PhaseLog]; ps.Batches != 0 {
		t.Errorf("unreplicated run logged %d batches", ps.Batches)
	}
}

// BenchmarkCommitVerbLatency reports the virtual-time commit latency of a
// single distributed transaction touching 8 remote records, batched vs
// sequential. The interesting metric is virtual-ns/commit, not wall ns/op.
func BenchmarkCommitVerbLatency(b *testing.B) {
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"batched", false}, {"sequential", true}} {
		b.Run(mode.name, func(b *testing.B) {
			vns := commitVirtualNanos(b, mode.disable, b.N)
			b.ReportMetric(vns, "virtual-ns/commit")
			b.ReportMetric(0, "ns/op") // wall time is meaningless here
		})
	}
}

// coroCommitVirtualNanos measures virtual nanoseconds per commit of the
// 8-remote-record transaction with ncoro coroutine contexts in flight on
// ONE worker, each slot transacting on a disjoint all-remote key set (base
// offset 12*slot keeps shard residues). ncoro=1 is byte-identical to
// commitVirtualNanos(tb, false, iters).
func coroCommitVirtualNanos(tb testing.TB, ncoro, itersPerCoro int) float64 {
	w := newWorld(tb, 3, 1, htm.Config{})
	w.load(tb, 12*ncoro, 1000)
	wk := w.engines[0].NewWorker(0)
	start := wk.Clk.Now()
	wk.RunCoroutines(ncoro, func(slot int) {
		base := uint64(12 * slot)
		for i := 0; i < itersPerCoro; i++ {
			if err := runEightRemoteTransferAt(wk, base); err != nil {
				tb.Error(err)
				return
			}
		}
	})
	total := uint64(ncoro * itersPerCoro)
	if wk.Stats.Committed != total {
		tb.Errorf("committed %d of %d", wk.Stats.Committed, total)
	}
	return float64(wk.Clk.Now()-start) / float64(total)
}

// BenchmarkCoroutineOverlap reports virtual-time commit latency of the same
// 8-remote-record transaction with N in-flight coroutines per worker. The
// coros=1 row must match BenchmarkCommitVerbLatency/batched exactly (pure
// refactor); larger N divides the stall portion of each doorbell across the
// in-flight transactions (BENCH_coroutine_overlap.json).
func BenchmarkCoroutineOverlap(b *testing.B) {
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("coros=%d", n), func(b *testing.B) {
			vns := coroCommitVirtualNanos(b, n, b.N)
			b.ReportMetric(vns, "virtual-ns/commit")
			b.ReportMetric(0, "ns/op") // wall time is meaningless here
		})
	}
}
