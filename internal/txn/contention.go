package txn

import (
	"sync"

	"drtmr/internal/memstore"
	"drtmr/internal/obs"
	"drtmr/internal/sim"
)

// Contention manager. Pure-OCC retry collapses on hot records: every retry
// re-pays the full execution phase (reads, doorbells, backoff) only to
// validate-abort again, and with enough contenders the expected number of
// retries — and the latency tail — grows without bound. The manager breaks
// the storm in two complementary ways:
//
//  1. Ordered acquisition. A per-worker detector (fed by the abort
//     attribution matrix plus a decayed per-key abort counter) marks records
//     that keep killing transactions as hot. A retry against a hot record
//     first queues on a per-machine FIFO gate for that key, so contenders
//     take turns instead of trampling each other; while queued the coroutine
//     parks (yield + deterministic gate), it does not spin-backoff. This is
//     the local-queue half of DrTM's lease-lock idea: admission is ordered,
//     but the protocol underneath is unchanged — the gate grants no record
//     access by itself, it only spaces out the optimistic attempts.
//  2. Commutative updates (contention immunity rather than management): see
//     Txn.Add in txn.go. Delta-shaped writes carry the operation instead of
//     the value and are folded over the current record inside the commit
//     critical section, so two increments no longer conflict at all.
//
// Both halves are disabled by ContentionOff, the pure-OCC-retry ablation.

// ContentionMode selects the engine's hot-record strategy.
type ContentionMode uint8

const (
	// ContentionOn (the default) enables the hot-key FIFO gates and the
	// commutative-delta write path.
	ContentionOn ContentionMode = iota
	// ContentionOff is the ablation: pure-OCC retry with randomized backoff,
	// and Txn.Add degrades to the read-modify-write it replaced.
	ContentionOff
)

func (m ContentionMode) String() string {
	switch m {
	case ContentionOn:
		return "on"
	case ContentionOff:
		return "off"
	default:
		return "ContentionMode(?)"
	}
}

// contentionOn reports whether the manager (gates + delta path) is active.
func (e *Engine) contentionOn() bool { return e.ContentionMode == ContentionOn }

// HotKey identifies one record for contention accounting.
type HotKey struct {
	Table memstore.TableID
	Key   uint64
}

// Detector and queue tuning.
const (
	// DefaultContentionHotThreshold is the decayed per-key abort count at
	// which a key is treated as hot (Engine.ContentionHotThreshold overrides).
	DefaultContentionHotThreshold = 3
	// DefaultBackoffMaxExp caps the randomized exponential backoff at
	// 2^exp * Costs.Backoff (Engine.BackoffMaxExp overrides).
	DefaultBackoffMaxExp = 8
	// hotDecayEvery halves every decayed per-key counter after this many
	// keyed aborts, so a burst from minutes ago cannot keep a key hot.
	hotDecayEvery = 64
	// gateMaxPolls bounds queue admission; past it the waiter gives up with
	// a StageQueue abort and retries ungated. Each poll is a scheduling
	// point, so the holder always gets cycles to finish and release.
	gateMaxPolls = 1 << 14
)

// contentionManager holds this machine's hot-key detector and per-key FIFO
// gates. Both are machine-level: hotness is a property of the record, not of
// any one worker — a key taking three aborts spread across three workers is
// exactly as hot as one taking three from the same worker, and a per-worker
// counter never notices the former (many-worker configurations dilute every
// key below threshold). Gates are local (per-machine) combining points: they
// cut the local retry storm that dominates the tail, and cross-machine
// contenders still serialize through the protocol's own locks.
type contentionManager struct {
	shards [16]cmShard

	// Decayed per-key abort counts and the event counter that triggers the
	// halving (see noteAbortKey). Guarded by hotMu; touched only on keyed
	// aborts, so the lock is off the happy path.
	hotMu     sync.Mutex
	hotCounts map[HotKey]uint32
	hotEvents uint32
}

type cmShard struct {
	mu    sync.Mutex
	gates map[HotKey]*keyGate
}

func newContentionManager() *contentionManager {
	cm := &contentionManager{hotCounts: make(map[HotKey]uint32)}
	for i := range cm.shards {
		cm.shards[i].gates = make(map[HotKey]*keyGate)
	}
	return cm
}

// noteAbort feeds one keyed abort into the decayed counters and reports
// whether the key's count has reached thr.
func (cm *contentionManager) noteAbort(hk HotKey, thr int) bool {
	cm.hotMu.Lock()
	if cm.hotEvents++; cm.hotEvents >= hotDecayEvery {
		cm.hotEvents = 0
		for k, c := range cm.hotCounts {
			if c >>= 1; c == 0 {
				delete(cm.hotCounts, k)
			} else {
				cm.hotCounts[k] = c
			}
		}
	}
	c := cm.hotCounts[hk] + 1
	cm.hotCounts[hk] = c
	cm.hotMu.Unlock()
	return int64(c) >= int64(thr)
}

func (cm *contentionManager) gateFor(hk HotKey) *keyGate {
	s := &cm.shards[(hk.Key*31+uint64(hk.Table))&15]
	s.mu.Lock()
	g := s.gates[hk]
	if g == nil {
		g = &keyGate{}
		s.gates[hk] = g
	}
	s.mu.Unlock()
	return g
}

// keyGate is a ticket-FIFO admission gate for one hot key. A waiter draws a
// ticket and is admitted when serving reaches it; release advances serving.
// Timed-out tickets are marked abandoned so release skips them — the queue
// never wedges on a waiter that walked away.
//
// Virtual-time accounting: the gate itself carries NO clock state and a
// failed poll costs nothing. Worker clocks are not mutually synchronized,
// so any scheme comparing stamps (or even measured durations) across
// workers either charges pure clock skew as waiting or — because sibling
// coroutines share one worker clock — feeds its own charges back into the
// next measurement and compounds without bound; and pricing polls (real
// OS-scheduling delay) charges host noise, not model. A parked waiter's
// clock therefore grows exactly the way it does for doorbell parking: by
// the virtual work its sibling coroutines perform on the shared clock
// while it waits. That growth is what Stats.QueueWaitHist records.
type keyGate struct {
	mu        sync.Mutex
	next      uint64
	serving   uint64
	abandoned map[uint64]struct{}
}

func (g *keyGate) enqueue() uint64 {
	g.mu.Lock()
	t := g.next
	g.next++
	g.mu.Unlock()
	return t
}

// tryEnter admits ticket t if it is being served.
func (g *keyGate) tryEnter(t uint64) bool {
	g.mu.Lock()
	ok := g.serving == t
	g.mu.Unlock()
	return ok
}

// advance (mu held) moves serving past the releasing ticket and any
// abandoned successors.
func (g *keyGate) advance() {
	g.serving++
	for {
		if _, dead := g.abandoned[g.serving]; !dead {
			break
		}
		delete(g.abandoned, g.serving)
		g.serving++
	}
}

func (g *keyGate) release() {
	g.mu.Lock()
	g.advance()
	g.mu.Unlock()
}

// abandon withdraws ticket t. If the grant arrived between the last poll and
// now, the ticket is released instead so the queue keeps draining.
func (g *keyGate) abandon(t uint64) {
	g.mu.Lock()
	if g.serving == t {
		g.advance()
	} else {
		if g.abandoned == nil {
			g.abandoned = make(map[uint64]struct{})
		}
		g.abandoned[t] = struct{}{}
	}
	g.mu.Unlock()
}

// acquireGate queues the worker on g until admitted. While queued the worker
// parks coroutine-style: every poll yields to sibling coroutines, hands the
// deterministic gate to other workers, and cedes the OS thread — never a
// virtual-time backoff, which is the whole point of queueing instead of
// backing off. On admission the waiter's own-clock growth since enqueue
// (sibling work on the shared clock while it was parked; see keyGate) is
// recorded as the queue wait (Stats.QueueWaits/QueueWaitHist, plus an
// EvPhase/StageQueue trace span). A bounded wait that runs out produces a
// keyed StageQueue abort and the caller retries ungated.
func (w *Worker) acquireGate(g *keyGate, hk HotKey) (ok bool, qerr *Error) {
	start := w.Clk.Now()
	t := g.enqueue()
	for poll := 0; ; poll++ {
		if g.tryEnter(t) {
			if wait := w.Clk.Now() - start; wait > 0 {
				w.Stats.QueueWaits++
				w.Stats.QueueWaitNanos += uint64(wait)
				w.Stats.QueueWaitHist.Record(wait)
				if w.Rec != nil {
					w.Rec.Record(obs.EvPhase, StageQueue, uint16(w.E.M.ID), 0, 0, start, w.Clk.Now())
				}
			}
			return true, nil
		}
		if poll >= gateMaxPolls || w.E.M.Dead() {
			g.abandon(t)
			return false, &Error{
				Reason: AbortLocked, Stage: StageQueue, Site: uint16(w.E.M.ID),
				Table: hk.Table, Key: hk.Key, HasKey: true,
				Detail: "hot-key queue admission timed out",
			}
		}
		w.yield() // park: let the holding coroutine run to release
		if w.gate != nil {
			w.gate() // deterministic mode: the holder may be another worker
		}
		sim.Spin(0)
	}
}

// noteAbortKey feeds one keyed abort into the machine-level per-key counters
// and returns the gate to queue on before the next attempt, or nil when the
// key is not (yet) hot or the manager is off. The detector is two-stage: the
// machine's decayed per-key counter must reach the threshold AND this
// worker's abort-attribution matrix must confirm the abort's reason×stage
// cell is a repeat offender — a one-off abort at a fresh site never queues.
func (w *Worker) noteAbortKey(te *Error) *keyGate {
	hk := HotKey{Table: te.Table, Key: te.Key}
	if w.Stats.KeyAborts == nil {
		w.Stats.KeyAborts = make(map[HotKey]uint64)
	}
	w.Stats.KeyAborts[hk]++
	if !w.E.contentionOn() {
		return nil
	}
	thr := w.E.ContentionHotThreshold
	if thr <= 0 {
		thr = DefaultContentionHotThreshold
	}
	if !w.E.cm.noteAbort(hk, thr) {
		return nil
	}
	if w.Stats.AbortCells.StageReasonTotal(uint8(te.Reason), te.Stage) < uint64(thr) {
		return nil
	}
	return w.E.cm.gateFor(hk)
}
