package txn

import (
	"errors"
	"testing"

	"drtmr/internal/htm"
	"drtmr/internal/memstore"
)

// TestStrongAtomicityAcrossCoroutineYield pins down the interaction between
// coroutine scheduling and HTM strong atomicity. An HTM region never spans a
// yield (the scheduler asserts this), so while a transaction is parked at a
// remote-read doorbell no speculative state protects its local read set: a
// non-transactional RDMA write — here a remote committer's C.5 write-back —
// lands silently on a record the parked transaction already read. The guard
// for that window is C.3: the commit-time HTM region re-reads the sequence
// number and must abort the resumed transaction with AbortValidate.
func TestStrongAtomicityAcrossCoroutineYield(t *testing.T) {
	w := newWorld(t, 2, 1, htm.Config{})
	w.load(t, 2, 100)
	m := w.c.Machines[0]
	off, ok := m.Store.Table(tblAcct).Lookup(0)
	if !ok {
		t.Fatal("key 0 not on node 0")
	}

	wk := w.engines[0].NewWorker(0)
	var commitErr error
	wk.RunCoroutines(2, func(slot int) {
		switch slot {
		case 0: // victim: local read, park at a remote doorbell, commit
			tx := wk.Begin()
			if _, err := tx.Read(tblAcct, 0); err != nil { // local, no yield
				t.Errorf("local read: %v", err)
				return
			}
			if _, err := tx.Read(tblAcct, 1); err != nil { // remote: yields here
				t.Errorf("remote read: %v", err)
				return
			}
			if err := tx.Write(tblAcct, 0, encBal(1)); err != nil {
				t.Errorf("write: %v", err)
				return
			}
			commitErr = tx.Commit()
		case 1: // runs while slot 0 is parked: a peer's non-tx write-back
			m.Eng.WriteNonTx(off+memstore.SeqOff+8, encBal(999))
			m.Eng.FAA64NonTx(off+memstore.SeqOff, 2) // still committable (even)
		}
	})

	var te *Error
	if !errors.As(commitErr, &te) || te.Reason != AbortValidate {
		t.Fatalf("resumed transaction must fail C.3 validation, got: %v", commitErr)
	}
}
