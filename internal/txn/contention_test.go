package txn

import (
	"sync"
	"testing"

	"drtmr/internal/htm"
	"drtmr/internal/memstore"
)

// TestBackoffMaxExpCapped pins the backoff cap: no matter how many times a
// transaction has retried, one backoff advances the virtual clock by at most
// 2^BackoffMaxExp * Costs.Backoff (the ISSUE's unbounded-backoff tail
// contributor). Checked for the default and a custom knob value.
func TestBackoffMaxExpCapped(t *testing.T) {
	for _, tc := range []struct {
		name string
		knob int
		exp  int
	}{
		{"default", 0, DefaultBackoffMaxExp},
		{"custom", 3, 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			w := newWorld(t, 1, 1, htm.Config{})
			w.engines[0].BackoffMaxExp = tc.knob
			wk := w.engines[0].NewWorker(0)
			cap64 := int64(1<<uint(tc.exp)) * int64(w.engines[0].Costs.Backoff)
			for _, attempt := range []int{0, 1, tc.exp, tc.exp + 1, 1000, 1 << 20} {
				for i := 0; i < 32; i++ {
					before := wk.Clk.Now()
					wk.backoff(attempt)
					d := wk.Clk.Now() - before
					if d <= 0 {
						t.Fatalf("attempt %d: backoff advanced %dns, want > 0", attempt, d)
					}
					if d > cap64 {
						t.Fatalf("attempt %d: backoff advanced %dns, cap is %dns (2^%d * %v)",
							attempt, d, cap64, tc.exp, w.engines[0].Costs.Backoff)
					}
				}
			}
		})
	}
}

// TestDeltaInterleavedVersionChain alternates commutative deltas (Txn.Add)
// with plain read-modify-write commits on one record and requires the version
// chain to stay gap-free and duplicate-free: under replication every commit
// settles the seqnum exactly 2 higher (odd values are transient R.2 states),
// so after N commits the seqnum must be exactly 2N — a delta that skipped
// version maintenance, or applied twice, shows up immediately.
func TestDeltaInterleavedVersionChain(t *testing.T) {
	const rounds = 20
	w := newWorld(t, 3, 3, htm.Config{})
	w.load(t, 1, 100)
	wk := w.engines[0].NewWorker(0)
	want := uint64(100)
	for i := 0; i < rounds; i++ {
		if i%2 == 0 {
			if err := wk.Run(func(tx *Txn) error {
				return tx.Add(tblAcct, 0, 0, 7)
			}); err != nil {
				t.Fatalf("round %d (delta): %v", i, err)
			}
			want += 7
		} else {
			if err := wk.Run(func(tx *Txn) error {
				v, err := tx.Read(tblAcct, 0)
				if err != nil {
					return err
				}
				return tx.Write(tblAcct, 0, encBal(decBal(v)+3))
			}); err != nil {
				t.Fatalf("round %d (rmw): %v", i, err)
			}
			want += 3
		}
	}
	m := w.c.Machines[0]
	off, ok := m.Store.Table(tblAcct).Lookup(0)
	if !ok {
		t.Fatal("record vanished")
	}
	if got := decBal(m.Store.Table(tblAcct).ReadValueNonTx(off)); got != want {
		t.Fatalf("final balance %d, want %d", got, want)
	}
	if got := m.Eng.Load64NonTx(off + memstore.SeqOff); got != 2*rounds {
		t.Fatalf("seqnum %d after %d commits, want %d (gap or duplicate in the version chain)",
			got, rounds, 2*rounds)
	}
}

// TestAddBuildsDeltaEntry pins Txn.Add's write-set shape with the manager on:
// a delta-shaped update carries the operation, not the value — no read-set
// entry (nothing to validate-abort on) and a wsDelta entry folding repeated
// adds to the same field.
func TestAddBuildsDeltaEntry(t *testing.T) {
	w := newWorld(t, 1, 1, htm.Config{})
	w.load(t, 1, 100)
	wk := w.engines[0].NewWorker(0)
	tx := wk.Begin()
	if err := tx.Add(tblAcct, 0, 0, 5); err != nil {
		t.Fatal(err)
	}
	if err := tx.Add(tblAcct, 0, 8, 1); err != nil {
		t.Fatal(err)
	}
	if len(tx.rs) != 0 {
		t.Fatalf("Add populated the read set (%d entries): deltas must not validate", len(tx.rs))
	}
	if len(tx.ws) != 1 || tx.ws[0].kind != wsDelta {
		t.Fatalf("want one wsDelta entry, got %d entries", len(tx.ws))
	}
	if got := len(tx.ws[0].deltas); got != 2 {
		t.Fatalf("want 2 folded deltas, got %d", got)
	}
	tx.abandon()
}

// TestAddOffModeDegrades pins the ablation: with ContentionOff, Txn.Add is
// the read-modify-write it replaced — a read-set entry (so it validates like
// any plain write) and a wsUpdate carrying the computed value.
func TestAddOffModeDegrades(t *testing.T) {
	w := newWorld(t, 1, 1, htm.Config{})
	w.engines[0].ContentionMode = ContentionOff
	w.load(t, 1, 100)
	wk := w.engines[0].NewWorker(0)
	tx := wk.Begin()
	if err := tx.Add(tblAcct, 0, 0, 5); err != nil {
		t.Fatal(err)
	}
	if len(tx.rs) != 1 {
		t.Fatalf("off-mode Add made %d read-set entries, want 1", len(tx.rs))
	}
	if len(tx.ws) != 1 || tx.ws[0].kind != wsUpdate {
		t.Fatalf("off-mode Add must degrade to wsUpdate, got %d entries", len(tx.ws))
	}
	if got := decBal(tx.ws[0].buf); got != 105 {
		t.Fatalf("off-mode Add staged balance %d, want 105", got)
	}
	tx.abandon()
}

// TestReadStableUntracked pins ReadStable's contract: with the manager on it
// returns the committed value without enrolling the record in the read set
// (so a later writer cannot validate-abort the reader), while a pending own
// write still wins; with the manager off it degrades to a plain tracked Read
// so the ablation keeps the false sharing it measures.
func TestReadStableUntracked(t *testing.T) {
	w := newWorld(t, 1, 1, htm.Config{})
	w.load(t, 2, 100)
	wk := w.engines[0].NewWorker(0)
	tx := wk.Begin()
	v, err := tx.ReadStable(tblAcct, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := decBal(v); got != 100 {
		t.Fatalf("stable read returned balance %d, want 100", got)
	}
	if len(tx.rs) != 0 {
		t.Fatalf("ReadStable enrolled %d read-set entries, want 0", len(tx.rs))
	}
	// A pending own write supplies the value instead of a re-fetch.
	if err := tx.Write(tblAcct, 1, encBal(7)); err != nil {
		t.Fatal(err)
	}
	if v, err = tx.ReadStable(tblAcct, 1); err != nil {
		t.Fatal(err)
	}
	if got := decBal(v); got != 7 {
		t.Fatalf("stable read ignored the pending own write: got %d, want 7", got)
	}
	tx.abandon()

	w.engines[0].ContentionMode = ContentionOff
	tx = wk.Begin()
	if _, err := tx.ReadStable(tblAcct, 0); err != nil {
		t.Fatal(err)
	}
	if len(tx.rs) != 1 {
		t.Fatalf("off-mode ReadStable made %d read-set entries, want 1 (plain Read)", len(tx.rs))
	}
	tx.abandon()
}

// TestHotKeyQueueConservation hammers one record from every machine with the
// detector primed to queue after a single abort: the FIFO gates must neither
// lose updates (conservation) nor wedge (bounded test time). With real
// conflict pressure, at least some retries should have gone through the
// queue.
func TestHotKeyQueueConservation(t *testing.T) {
	const (
		nodes   = 3
		perNode = 2
		iters   = 40
	)
	w := newWorld(t, nodes, 1, htm.Config{})
	w.load(t, 1, 1000)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var aborts, queueWaits uint64
	for n := 0; n < nodes; n++ {
		w.engines[n].ContentionHotThreshold = 1
		for tid := 0; tid < perNode; tid++ {
			wk := w.engines[n].NewWorker(tid)
			wg.Add(1)
			go func(wk *Worker) {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					if err := wk.Run(func(tx *Txn) error {
						v, err := tx.Read(tblAcct, 0)
						if err != nil {
							return err
						}
						return tx.Write(tblAcct, 0, encBal(decBal(v)+1))
					}); err != nil {
						t.Error(err)
						return
					}
				}
				mu.Lock()
				aborts += wk.Stats.AbortsTotal()
				queueWaits += wk.Stats.QueueWaits
				mu.Unlock()
			}(wk)
		}
	}
	wg.Wait()
	if got, want := w.totalOnPrimaries(1), uint64(1000+nodes*perNode*iters); got != want {
		t.Fatalf("updates lost through the hot-key queue: balance %d, want %d", got, want)
	}
	t.Logf("aborts=%d queueWaits=%d", aborts, queueWaits)
	if aborts > 50 && queueWaits == 0 {
		t.Fatalf("%d aborts on one key with threshold 1, but nothing ever queued", aborts)
	}
}

// TestKeyGateFIFO exercises the ticket gate directly: grants come in ticket
// order, and abandoned tickets are skipped instead of wedging the queue —
// whether they were abandoned while waiting or while being served.
func TestKeyGateFIFO(t *testing.T) {
	g := &keyGate{}
	t0 := g.enqueue()
	t1 := g.enqueue()
	t2 := g.enqueue()
	if g.tryEnter(t1) {
		t.Fatal("ticket 1 admitted before ticket 0 released")
	}
	if !g.tryEnter(t0) {
		t.Fatal("ticket 0 not admitted at the head of the queue")
	}
	g.release()
	// Ticket 1 is now being served but walks away: its abandon doubles as
	// the release.
	g.abandon(t1)
	if !g.tryEnter(t2) {
		t.Fatal("abandoned ticket wedged the queue")
	}
	// Abandon a ticket that is still waiting, then release the head: the
	// queue must skip straight over the dead ticket to the live one.
	t3 := g.enqueue()
	t4 := g.enqueue()
	g.abandon(t3)
	g.release() // releases t2
	if g.tryEnter(t3) {
		t.Fatal("abandoned ticket 3 was admitted")
	}
	if !g.tryEnter(t4) {
		t.Fatal("queue did not skip the abandoned ticket 3")
	}
	g.release()
	// An empty queue admits a fresh ticket immediately.
	t5 := g.enqueue()
	if !g.tryEnter(t5) {
		t.Fatal("fresh ticket on an idle queue not admitted")
	}
}
