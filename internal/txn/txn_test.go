package txn

import (
	"encoding/binary"
	"errors"
	"sync"
	"testing"
	"time"

	"drtmr/internal/cluster"
	"drtmr/internal/htm"
	"drtmr/internal/memstore"
	"drtmr/internal/rdma"
)

const tblAcct memstore.TableID = 1

// world is a test cluster with one account table partitioned by key%nodes.
type world struct {
	c       *cluster.Cluster
	engines []*Engine
}

func newWorld(t testing.TB, nodes, replicas int, htmCfg htm.Config) *world {
	t.Helper()
	spec := cluster.Spec{
		Nodes:     nodes,
		Replicas:  replicas,
		MemBytes:  16 << 20,
		RingBytes: 1 << 16,
		HTM:       htmCfg,
	}
	c := cluster.New(spec)
	part := func(table memstore.TableID, key uint64) cluster.ShardID {
		return cluster.ShardID(key % uint64(nodes))
	}
	w := &world{c: c}
	for _, m := range c.Machines {
		m.Store.CreateTable(tblAcct, memstore.TableSpec{
			Name: "acct", ValueSize: 16, ExpectedRows: 1024,
		})
		w.engines = append(w.engines, NewEngine(m, part, DefaultCosts()))
	}
	c.Start()
	t.Cleanup(c.Stop)
	return w
}

func encBal(v uint64) []byte {
	b := make([]byte, 16)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

func decBal(b []byte) uint64 { return binary.LittleEndian.Uint64(b[:8]) }

// load populates accounts 0..n-1 with balance on the primary AND every
// backup (f+1 copies, as the paper's loader would).
func (w *world) load(t testing.TB, n int, balance uint64) {
	t.Helper()
	cfg := w.c.Coord.Current()
	for key := uint64(0); key < uint64(n); key++ {
		shard := cluster.ShardID(key % uint64(w.c.Spec.Nodes))
		nodes := append([]rdma.NodeID{cfg.PrimaryOf(shard)}, cfg.BackupsOf(shard)...)
		for _, nd := range nodes {
			if _, err := w.c.Machines[nd].Store.Table(tblAcct).Insert(key, encBal(balance)); err != nil {
				t.Fatalf("load key %d on node %d: %v", key, nd, err)
			}
		}
	}
}

func (w *world) totalOnPrimaries(n int) uint64 {
	cfg := w.c.Coord.Current()
	var total uint64
	for key := uint64(0); key < uint64(n); key++ {
		shard := cluster.ShardID(key % uint64(w.c.Spec.Nodes))
		m := w.c.Machines[cfg.PrimaryOf(shard)]
		off, ok := m.Store.Table(tblAcct).Lookup(key)
		if !ok {
			continue
		}
		total += decBal(m.Store.Table(tblAcct).ReadValueNonTx(off))
	}
	return total
}

func TestLocalReadWriteCommit(t *testing.T) {
	w := newWorld(t, 1, 1, htm.Config{})
	w.load(t, 4, 100)
	wk := w.engines[0].NewWorker(0)
	err := wk.Run(func(tx *Txn) error {
		v, err := tx.Read(tblAcct, 0)
		if err != nil {
			return err
		}
		return tx.Write(tblAcct, 0, encBal(decBal(v)+5))
	})
	if err != nil {
		t.Fatal(err)
	}
	var got uint64
	err = wk.RunReadOnly(func(tx *Txn) error {
		v, err := tx.Read(tblAcct, 0)
		if err != nil {
			return err
		}
		got = decBal(v)
		return nil
	})
	if err != nil || got != 105 {
		t.Fatalf("read back: %d %v", got, err)
	}
	if wk.Stats.Committed != 2 {
		t.Fatalf("stats: %+v", wk.Stats)
	}
}

func TestDistributedTransfer(t *testing.T) {
	w := newWorld(t, 3, 1, htm.Config{})
	w.load(t, 6, 100)
	// Worker on node 0 moves 10 from key 1 (node 1) to key 2 (node 2) and
	// 5 from key 0 (local) to key 1.
	wk := w.engines[0].NewWorker(0)
	err := wk.Run(func(tx *Txn) error {
		v1, err := tx.Read(tblAcct, 1)
		if err != nil {
			return err
		}
		v2, err := tx.Read(tblAcct, 2)
		if err != nil {
			return err
		}
		v0, err := tx.Read(tblAcct, 0)
		if err != nil {
			return err
		}
		if err := tx.Write(tblAcct, 1, encBal(decBal(v1)-10+5)); err != nil {
			return err
		}
		if err := tx.Write(tblAcct, 2, encBal(decBal(v2)+10)); err != nil {
			return err
		}
		return tx.Write(tblAcct, 0, encBal(decBal(v0)-5))
	})
	if err != nil {
		t.Fatal(err)
	}
	want := map[uint64]uint64{0: 95, 1: 95, 2: 110}
	wk2 := w.engines[1].NewWorker(1) // verify from a different machine
	for key, exp := range want {
		var got uint64
		if err := wk2.RunReadOnly(func(tx *Txn) error {
			v, err := tx.Read(tblAcct, key)
			if err != nil {
				return err
			}
			got = decBal(v)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if got != exp {
			t.Fatalf("key %d: got %d want %d", key, got, exp)
		}
	}
}

func TestReadNotFound(t *testing.T) {
	w := newWorld(t, 2, 1, htm.Config{})
	w.load(t, 2, 1)
	wk := w.engines[0].NewWorker(0)
	err := wk.Run(func(tx *Txn) error {
		_, err := tx.Read(tblAcct, 999) // shard 1: remote
		if !errors.Is(err, ErrNotFound) {
			t.Errorf("remote miss: %v", err)
		}
		_, err = tx.Read(tblAcct, 998) // shard 0: local
		if !errors.Is(err, ErrNotFound) {
			t.Errorf("local miss: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReadYourOwnWrites(t *testing.T) {
	w := newWorld(t, 2, 1, htm.Config{})
	w.load(t, 2, 50)
	wk := w.engines[0].NewWorker(0)
	err := wk.Run(func(tx *Txn) error {
		if err := tx.Write(tblAcct, 1, encBal(77)); err != nil {
			return err
		}
		v, err := tx.Read(tblAcct, 1)
		if err != nil {
			return err
		}
		if decBal(v) != 77 {
			t.Errorf("own write invisible: %d", decBal(v))
		}
		if err := tx.Insert(tblAcct, 100, encBal(1)); err != nil {
			return err
		}
		v, err = tx.Read(tblAcct, 100)
		if err != nil || decBal(v) != 1 {
			t.Errorf("own insert invisible: %v %v", v, err)
		}
		if err := tx.Delete(tblAcct, 0); err != nil {
			return err
		}
		if _, err := tx.Read(tblAcct, 0); !errors.Is(err, ErrNotFound) {
			t.Errorf("own delete invisible: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInsertDeleteAcrossMachines(t *testing.T) {
	w := newWorld(t, 2, 1, htm.Config{})
	w.load(t, 2, 1)
	wk := w.engines[0].NewWorker(0)
	// Insert a remote record (key 11 -> shard 1).
	if err := wk.Run(func(tx *Txn) error {
		return tx.Insert(tblAcct, 11, encBal(42))
	}); err != nil {
		t.Fatal(err)
	}
	var got uint64
	if err := wk.RunReadOnly(func(tx *Txn) error {
		v, err := tx.Read(tblAcct, 11)
		if err != nil {
			return err
		}
		got = decBal(v)
		return nil
	}); err != nil || got != 42 {
		t.Fatalf("remote insert: %d %v", got, err)
	}
	// Delete it remotely.
	if err := wk.Run(func(tx *Txn) error {
		return tx.Delete(tblAcct, 11)
	}); err != nil {
		t.Fatal(err)
	}
	if err := wk.RunReadOnly(func(tx *Txn) error {
		_, err := tx.Read(tblAcct, 11)
		if !errors.Is(err, ErrNotFound) {
			t.Errorf("after delete: %v", err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentBankInvariant is the central correctness test: concurrent
// mixed local/distributed transfers from every machine conserve total value,
// with spurious HTM aborts enabled to exercise retries and the fallback. It
// runs with doorbell batching on (default) and off (sequential ablation) —
// the two accounting modes must be behaviourally identical.
func TestConcurrentBankInvariant(t *testing.T) {
	t.Run("batched", func(t *testing.T) { runBankInvariant(t, false) })
	t.Run("sequential", func(t *testing.T) { runBankInvariant(t, true) })
}

func runBankInvariant(t *testing.T, disableBatching bool) {
	const (
		nodes     = 3
		accounts  = 24
		transfers = 120
		initial   = 1000
	)
	w := newWorld(t, nodes, 1, htm.Config{SpuriousAbortProb: 0.02, Seed: 7})
	for _, e := range w.engines {
		e.DisableVerbBatching = disableBatching
	}
	w.load(t, accounts, initial)
	var wg sync.WaitGroup
	for n := 0; n < nodes; n++ {
		for wi := 0; wi < 2; wi++ {
			wg.Add(1)
			go func(node, id int) {
				defer wg.Done()
				wk := w.engines[node].NewWorker(id)
				rng := newTestRand(uint64(node*10 + id + 1))
				for i := 0; i < transfers; i++ {
					from := rng.next() % accounts
					to := rng.next() % accounts
					if from == to {
						continue
					}
					err := wk.Run(func(tx *Txn) error {
						fv, err := tx.Read(tblAcct, from)
						if err != nil {
							return err
						}
						tv, err := tx.Read(tblAcct, to)
						if err != nil {
							return err
						}
						amt := uint64(1 + rng.next()%5)
						if decBal(fv) < amt {
							return nil // no-op commit
						}
						if err := tx.Write(tblAcct, from, encBal(decBal(fv)-amt)); err != nil {
							return err
						}
						return tx.Write(tblAcct, to, encBal(decBal(tv)+amt))
					})
					if err != nil {
						t.Errorf("transfer: %v", err)
						return
					}
				}
			}(n, wi)
		}
	}
	wg.Wait()
	if total := w.totalOnPrimaries(accounts); total != accounts*initial {
		t.Fatalf("value not conserved: %d != %d", total, accounts*initial)
	}
}

// TestReplicationConsistency runs transfers with 3-way replication and then
// checks that, after the log rings drain, every backup agrees with its
// primary.
func TestReplicationConsistency(t *testing.T) {
	const (
		nodes    = 3
		accounts = 12
		initial  = 500
	)
	w := newWorld(t, nodes, 3, htm.Config{})
	w.load(t, accounts, initial)
	var wg sync.WaitGroup
	for n := 0; n < nodes; n++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			wk := w.engines[node].NewWorker(node)
			rng := newTestRand(uint64(node + 77))
			for i := 0; i < 60; i++ {
				from := rng.next() % accounts
				to := rng.next() % accounts
				if from == to {
					continue
				}
				if err := wk.Run(func(tx *Txn) error {
					fv, err := tx.Read(tblAcct, from)
					if err != nil {
						return err
					}
					tv, err := tx.Read(tblAcct, to)
					if err != nil {
						return err
					}
					if decBal(fv) == 0 {
						return nil
					}
					if err := tx.Write(tblAcct, from, encBal(decBal(fv)-1)); err != nil {
						return err
					}
					return tx.Write(tblAcct, to, encBal(decBal(tv)+1))
				}); err != nil {
					t.Errorf("transfer: %v", err)
					return
				}
			}
		}(n)
	}
	wg.Wait()
	if total := w.totalOnPrimaries(accounts); total != accounts*initial {
		t.Fatalf("primary value not conserved: %d", total)
	}
	// Let appliers drain, then compare replicas.
	deadline := time.Now().Add(3 * time.Second)
	cfg := w.c.Coord.Current()
	for {
		mismatches := 0
		for key := uint64(0); key < accounts; key++ {
			shard := cluster.ShardID(key % nodes)
			p := w.c.Machines[cfg.PrimaryOf(shard)]
			pOff, _ := p.Store.Table(tblAcct).Lookup(key)
			pv := decBal(p.Store.Table(tblAcct).ReadValueNonTx(pOff))
			for _, b := range cfg.BackupsOf(shard) {
				bm := w.c.Machines[b]
				bOff, ok := bm.Store.Table(tblAcct).Lookup(key)
				if !ok {
					mismatches++
					continue
				}
				if decBal(bm.Store.Table(tblAcct).ReadValueNonTx(bOff)) != pv {
					mismatches++
				}
			}
		}
		if mismatches == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d replica mismatches after drain", mismatches)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestUncommittableBlocksCommit checks the seqlock rule directly: a record
// parked at an odd sequence number is mid-replication, and a reader must
// wait for the makeup flip rather than serialize on the half-committed
// value (Table 4).
func TestUncommittableBlocksCommit(t *testing.T) {
	w := newWorld(t, 2, 3, htm.Config{})
	w.load(t, 2, 100)
	// Manually flip record 0 (local to node 0) to an odd seq, simulating
	// a transaction that committed in HTM but has not replicated yet.
	m := w.c.Machines[0]
	off, _ := m.Store.Table(tblAcct).Lookup(0)
	m.Eng.FAA64NonTx(off+memstore.SeqOff, 1)

	wk := w.engines[0].NewWorker(0)
	// The read backs off while the record stays odd and eventually aborts.
	tx := wk.Begin()
	_, err := tx.Read(tblAcct, 0)
	var te *Error
	if !errors.As(err, &te) || te.Reason != AbortLocked {
		t.Fatalf("read of uncommittable record should wait then abort, got: %v", err)
	}
	tx.abandon()
	// Once "replicated" (seq flipped even), the retry succeeds.
	m.Eng.FAA64NonTx(off+memstore.SeqOff, 1)
	if err := wk.Run(func(tx *Txn) error {
		v, err := tx.Read(tblAcct, 0)
		if err != nil {
			return err
		}
		return tx.Write(tblAcct, 0, encBal(decBal(v)+1))
	}); err != nil {
		t.Fatal(err)
	}
}

// TestRemoteLockBlocksLocalRead checks §4.3: a local read of a record locked
// by a remote transaction backs off instead of reading it.
func TestRemoteLockBlocksLocalRead(t *testing.T) {
	w := newWorld(t, 2, 1, htm.Config{})
	w.load(t, 2, 100)
	m := w.c.Machines[0]
	off, _ := m.Store.Table(tblAcct).Lookup(0)
	// Node 1 locks node 0's record via RDMA CAS.
	wk1 := w.engines[1].NewWorker(9)
	word := memstore.LockWord(1)
	if _, ok, _ := wk1.QP(0).CAS(off+memstore.LockOff, 0, word); !ok {
		t.Fatal("setup lock failed")
	}
	wk0 := w.engines[0].NewWorker(0)
	done := make(chan error, 1)
	go func() {
		done <- wk0.Run(func(tx *Txn) error {
			_, err := tx.Read(tblAcct, 0)
			return err
		})
	}()
	select {
	case err := <-done:
		t.Fatalf("local read of locked record returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	// Unlock: the read completes.
	if _, ok, _ := wk1.QP(0).CAS(off+memstore.LockOff, word, 0); !ok {
		t.Fatal("unlock failed")
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("read never completed after unlock")
	}
}

// TestDanglingLockReleased checks §5.2's passive release: a lock owned by a
// machine outside the configuration is cleared by whoever trips over it.
func TestDanglingLockReleased(t *testing.T) {
	w := newWorld(t, 3, 3, htm.Config{})
	w.load(t, 3, 100)
	m0 := w.c.Machines[0]
	off, _ := m0.Store.Table(tblAcct).Lookup(0)
	// Node 2 "locks" the record, then dies; the config drops it.
	wk2 := w.engines[2].NewWorker(0)
	if _, ok, _ := wk2.QP(0).CAS(off+memstore.LockOff, 0, memstore.LockWord(2)); !ok {
		t.Fatal("setup lock failed")
	}
	w.c.Kill(2)
	// Wait for reconfiguration.
	deadline := time.Now().Add(2 * time.Second)
	for w.c.Coord.Current().IsMember(2) {
		if time.Now().After(deadline) {
			t.Fatal("no reconfig")
		}
		time.Sleep(5 * time.Millisecond)
	}
	for m0.Config().IsMember(2) {
		time.Sleep(2 * time.Millisecond)
	}
	// A transaction from node 1 touching the record must succeed by
	// passively releasing the dangling lock.
	wk1 := w.engines[1].NewWorker(1)
	if err := wk1.Run(func(tx *Txn) error {
		v, err := tx.Read(tblAcct, 0)
		if err != nil {
			return err
		}
		return tx.Write(tblAcct, 0, encBal(decBal(v)+1))
	}); err != nil {
		t.Fatal(err)
	}
	if got := m0.Eng.Load64NonTx(off + memstore.LockOff); got != 0 {
		t.Fatalf("lock still held: %#x", got)
	}
}

// TestLockRetryBackoutReleasesAll regression-tests the C.1 retry path: the
// retry doorbell batch fully executes before its results are inspected, so
// when an early slot fails the back-out must still release locks won by
// LATER slots of the same batch — otherwise they leak forever (their holder
// is live, so passive release never clears them).
func TestLockRetryBackoutReleasesAll(t *testing.T) {
	w := newWorld(t, 4, 3, htm.Config{})
	w.load(t, 8, 100)
	cfg := w.c.Coord.Current()
	home := cfg.PrimaryOf(0) // keys 0 and 4 both live on shard 0's primary
	m := w.c.Machines[home]
	offA, _ := m.Store.Table(tblAcct).Lookup(0)
	offB, _ := m.Store.Table(tblAcct).Lookup(4)
	// lockRemote processes targets in ascending offset order. Make the
	// LOWER offset the permanently stuck one (held by a live node) and the
	// HIGHER offset the dangling lock the retry re-acquires after passive
	// release, so the retry batch fails at slot 0 and succeeds at slot 1.
	lowOff, highOff := offA, offB
	if offB < offA {
		lowOff, highOff = offB, offA
	}
	var others []rdma.NodeID
	for n := rdma.NodeID(0); int(n) < 4; n++ {
		if n != home {
			others = append(others, n)
		}
	}
	coord, liveHolder, deadNode := others[0], others[1], others[2]

	liveWord := memstore.LockWord(uint32(liveHolder))
	wkL := w.engines[liveHolder].NewWorker(0)
	if _, ok, _ := wkL.QP(home).CAS(lowOff+memstore.LockOff, 0, liveWord); !ok {
		t.Fatal("setup live lock failed")
	}
	wkD := w.engines[deadNode].NewWorker(0)
	if _, ok, _ := wkD.QP(home).CAS(highOff+memstore.LockOff, 0, memstore.LockWord(uint32(deadNode))); !ok {
		t.Fatal("setup dangling lock failed")
	}
	w.c.Kill(deadNode)
	deadline := time.Now().Add(2 * time.Second)
	for w.c.Coord.Current().IsMember(deadNode) {
		if time.Now().After(deadline) {
			t.Fatal("no reconfig")
		}
		time.Sleep(5 * time.Millisecond)
	}
	for w.c.Machines[coord].Config().IsMember(deadNode) {
		time.Sleep(2 * time.Millisecond)
	}

	wk := w.engines[coord].NewWorker(1)
	tx := wk.Begin()
	for _, key := range []uint64{0, 4} {
		v, err := tx.Read(tblAcct, key)
		if err != nil {
			t.Fatalf("read %d: %v", key, err)
		}
		if err := tx.Write(tblAcct, key, encBal(decBal(v)+1)); err != nil {
			t.Fatal(err)
		}
	}
	err := tx.Commit()
	var te *Error
	if !errors.As(err, &te) || te.Reason != AbortLockFailed {
		t.Fatalf("commit against live-locked record: %v", err)
	}
	// The dangling-turned-acquired lock must have been backed out...
	if got := m.Eng.Load64NonTx(highOff + memstore.LockOff); got != 0 {
		t.Fatalf("retry lock leaked: %#x", got)
	}
	// ...while the live holder's lock is untouched.
	if got := m.Eng.Load64NonTx(lowOff + memstore.LockOff); got != liveWord {
		t.Fatalf("live lock clobbered: %#x", got)
	}
	// Once the live holder releases, the same transaction goes through.
	if _, ok, _ := wkL.QP(home).CAS(lowOff+memstore.LockOff, liveWord, 0); !ok {
		t.Fatal("release live lock failed")
	}
	if err := wk.Run(func(tx *Txn) error {
		for _, key := range []uint64{0, 4} {
			v, err := tx.Read(tblAcct, key)
			if err != nil {
				return err
			}
			if err := tx.Write(tblAcct, key, encBal(decBal(v)+1)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// testRand is a tiny LCG for test-side randomness.
type testRand struct{ s uint64 }

func newTestRand(seed uint64) *testRand { return &testRand{s: seed*2862933555777941757 + 3037000493} }

func (r *testRand) next() uint64 {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return r.s >> 17
}
