// Package txn is DrTM+R's transaction layer — the paper's primary
// contribution (§3-§5): a hybrid concurrency control protocol that runs
// strictly serializable distributed transactions by combining
//
//   - an HTM-protected OCC protocol for local records (from DBX): execution
//     is separated from commit, and only the validation+update window runs
//     inside a hardware transaction, keeping the HTM working set small;
//   - RDMA-based versioned reads and CAS locking for remote records (from
//     FaRM/DrTM), glued to the local protocol by the strong consistency of
//     one-sided RDMA (a conflicting RDMA access aborts the HTM region);
//   - an optimistic replication scheme (§5.1) that decouples local commit
//     (HTM XEND) from full commit (replication durable): a locally updated
//     record carries an odd "uncommittable" sequence number until its log
//     entries are durable on the backups, and other transactions may read
//     such records but cannot commit against them.
//
// Unlike DrTM's HTM+2PL, nothing here needs the transaction's read/write set
// in advance: the sets are simply what the execution phase touched.
package txn

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"drtmr/internal/cluster"
	"drtmr/internal/memstore"
	"drtmr/internal/obs"
	"drtmr/internal/rdma"
	"drtmr/internal/sim"
)

// Partitioner maps a record to its shard. Workloads define it (TPC-C
// partitions by warehouse, SmallBank by account range).
type Partitioner func(table memstore.TableID, key uint64) cluster.ShardID

// Abort reasons (for stats and retry policy).
type AbortReason uint8

const (
	AbortNone AbortReason = iota
	// AbortLockFailed: C.1 could not lock a remote record.
	AbortLockFailed
	// AbortValidate: read validation failed (C.2, C.3, or read-only).
	AbortValidate
	// AbortHTM: the commit-phase HTM region kept aborting and the bounded
	// retries ran out before the fallback handler succeeded.
	AbortHTM
	// AbortLocked: execution phase found a record locked for too long.
	AbortLocked
	// AbortNodeDead: a verb hit a dead machine (epoch change pending).
	AbortNodeDead
	// AbortStale: a cached location or incarnation went stale repeatedly.
	AbortStale
	// AbortServerBusy: the serve-layer admission controller shed the request
	// before it reached a worker (queue-depth watermark or deadline-aware
	// overload estimate). Never retried by the engine: the client decides.
	AbortServerBusy
	// AbortDeadline: the request's deadline expired while it waited in the
	// serve-layer admission queue, so it was dropped before execution.
	AbortDeadline

	// NumAbortReasons sizes per-reason counters (Stats.Aborts,
	// obs.NumReasons must be >= this).
	NumAbortReasons
)

func (r AbortReason) String() string {
	switch r {
	case AbortNone:
		return "none"
	case AbortLockFailed:
		return "lock-failed"
	case AbortValidate:
		return "validate"
	case AbortHTM:
		return "htm"
	case AbortLocked:
		return "locked"
	case AbortNodeDead:
		return "node-dead"
	case AbortStale:
		return "stale"
	case AbortServerBusy:
		return "server-busy"
	case AbortDeadline:
		return "deadline"
	default:
		return fmt.Sprintf("AbortReason(%d)", uint8(r))
	}
}

// Lifecycle stages for abort attribution and phase trace events: WHERE in
// the transaction an abort struck (obs.AbortMatrix stage axis, obs.EvPhase /
// EvTxnAbort Detail). StageExec is the execution phase; the rest mirror the
// commit pipeline (CommitPhase) shifted by one.
const (
	StageExec uint8 = iota
	StageLock
	StageValidate
	StageLocalHTM
	StageLog
	StageWriteBack
	StageUnlock
	StageROValidate
	StageFallback
	// StageQueue: waiting for hot-key FIFO admission (contention manager) —
	// the stage of queue-wait trace spans and queue-timeout aborts.
	StageQueue
	// StageAdmission: the serve-layer admission controller, before any
	// engine worker touched the request (ServerBusy/Deadline sheds).
	StageAdmission
	NumStages
)

// StageName names a stage code (abort-matrix summaries, trace export).
func StageName(s uint8) string {
	switch s {
	case StageExec:
		return "exec"
	case StageLock:
		return PhaseLock.String()
	case StageValidate:
		return PhaseValidate.String()
	case StageLocalHTM:
		return "C.3+4-htm"
	case StageLog:
		return PhaseLog.String()
	case StageWriteBack:
		return PhaseWriteBack.String()
	case StageUnlock:
		return PhaseUnlock.String()
	case StageROValidate:
		return PhaseROValidate.String()
	case StageFallback:
		return PhaseFallback.String()
	case StageQueue:
		return "queue"
	case StageAdmission:
		return "admission"
	default:
		return fmt.Sprintf("stage(%d)", s)
	}
}

// phaseStage maps a commit-pipeline phase to its lifecycle stage code.
func phaseStage(p CommitPhase) uint8 {
	switch p {
	case PhaseLock:
		return StageLock
	case PhaseValidate:
		return StageValidate
	case PhaseLog:
		return StageLog
	case PhaseWriteBack:
		return StageWriteBack
	case PhaseUnlock:
		return StageUnlock
	case PhaseROValidate:
		return StageROValidate
	case PhaseFallback:
		return StageFallback
	default:
		return StageExec
	}
}

// Error is a transaction abort. Transactions signalling Error from Run are
// retried according to the reason. Stage and Site attribute the abort for
// the obs.AbortMatrix: WHERE in the lifecycle it struck and WHICH node's
// record triggered it (the aborting worker's own node for local causes).
type Error struct {
	Reason AbortReason
	Stage  uint8
	Site   uint16
	// Table/Key name the record whose conflict triggered the abort, when the
	// abort site knows it (HasKey guards validity — key 0 is a legal key).
	// They feed the contention manager's hot-key detector and the per-key
	// abort counter behind Result.AbortSummary's hot-keys term.
	Table  memstore.TableID
	Key    uint64
	HasKey bool
	Detail string
}

func (e *Error) Error() string {
	if e.Detail == "" {
		return "txn: abort (" + e.Reason.String() + ")"
	}
	return "txn: abort (" + e.Reason.String() + "): " + e.Detail
}

// ErrNotFound is returned by Read for missing keys (a user-level outcome,
// not an abort).
var ErrNotFound = errors.New("txn: key not found")

// CostModel is the virtual-time price list for CPU-side work. RDMA verb
// costs live in the rdma package; these cover the local protocol steps.
// Defaults are Xeon-class magnitudes; they set the absolute throughput
// scale, while the protocol determines every relative effect the paper
// reports.
type CostModel struct {
	TxnOverhead time.Duration // per-transaction begin/dispatch cost
	LocalAccess time.Duration // one record read/write through HTM
	HTMRegion   time.Duration // commit-phase XBEGIN..XEND fixed cost
	PerValidate time.Duration // per record validated/updated in HTM
	Backoff     time.Duration // base retry backoff
}

// DefaultCosts matches the paper's per-machine throughput magnitude.
func DefaultCosts() CostModel {
	return CostModel{
		TxnOverhead: 2 * time.Microsecond,
		LocalAccess: 250 * time.Nanosecond,
		HTMRegion:   400 * time.Nanosecond,
		PerValidate: 120 * time.Nanosecond,
		Backoff:     700 * time.Nanosecond,
	}
}

// Engine is the per-machine transaction layer instance.
type Engine struct {
	M     *cluster.Machine
	Part  Partitioner
	Costs CostModel
	// Replicated enables the optimistic replication scheme (Replicas>1).
	Replicated bool
	Replicas   int
	// DisableLocCache turns off the location cache (§6.3) — ablation knob:
	// every remote access walks the remote hash index with RDMA READs.
	DisableLocCache bool
	// DisableVerbBatching turns off doorbell batching in the commit
	// pipeline — ablation knob: every batch charges per-verb full
	// round-trips (the pre-batching sequential accounting), so experiments
	// can measure exactly what batching buys.
	DisableVerbBatching bool
	// CoroutinesPerWorker is the number of logical transaction contexts a
	// worker multiplexes when driven through Worker.RunCoroutines: at every
	// RDMA doorbell the running transaction yields so another in-flight one
	// executes during the fabric round-trip (the coroutine technique of the
	// FaRM lineage). 1 disables overlap and reproduces the
	// one-transaction-per-thread behaviour exactly (the ablation baseline).
	CoroutinesPerWorker int
	// ContentionMode selects the hot-record strategy (contention.go): the
	// zero value enables the hot-key FIFO gates and the commutative-delta
	// write path; ContentionOff is the pure-OCC-retry ablation.
	ContentionMode ContentionMode
	// ContentionHotThreshold is the decayed per-key abort count at which a
	// key is treated as hot (0 = DefaultContentionHotThreshold).
	ContentionHotThreshold int
	// BackoffMaxExp caps Worker.backoff's randomized exponential range at
	// 2^exp * Costs.Backoff (0 = DefaultBackoffMaxExp).
	BackoffMaxExp int
	// Protocol selects the commit pipeline by registered CommitProtocol name
	// ("" = DefaultProtocol, the DrTM+R seqlock-replication pipeline; "farm"
	// = the one-sided log-append protocol). The execution layer is
	// protocol-agnostic; only Txn.Commit dispatches on this.
	Protocol string

	// Mut deliberately breaks protocol steps — the mutation-testing knobs
	// that prove the strict-serializability checker has teeth. Never set
	// outside tests.
	Mut Mutations

	locCache *locCache
	cm       *contentionManager
}

// Mutations disables individual commit-protocol steps for mutation testing
// (internal/check): each switch removes one safeguard the protocol relies
// on, and the history checker must flag the resulting anomalies. All-false
// is the correct protocol.
type Mutations struct {
	// SkipRemoteValidate drops C.2's read-set checks (remote incarnation and
	// sequence-number validation): stale remote reads commit, producing lost
	// updates and write skew.
	SkipRemoteValidate bool
	// SkipLocalValidate drops C.3's read-set checks inside the commit HTM
	// region (and the fallback handler's local-read validation): stale local
	// reads commit.
	SkipLocalValidate bool
	// IgnoreLockFail makes C.1 proceed as if every lock CAS succeeded:
	// conflicting committers write back concurrently, duplicating versions.
	IgnoreLockFail bool
	// SkipIncCheck ignores incarnation changes during validation (C.2, C.3
	// and the fallback): a record deleted and re-inserted between read and
	// commit validates on sequence number alone — the stale-incarnation bug.
	SkipIncCheck bool
}

// Any reports whether any mutation is enabled.
func (m Mutations) Any() bool {
	return m.SkipRemoteValidate || m.SkipLocalValidate || m.IgnoreLockFail || m.SkipIncCheck
}

// DefaultCoroutinesPerWorker is the default number of in-flight transaction
// contexts per worker thread.
const DefaultCoroutinesPerWorker = 4

// NewEngine builds the transaction layer for machine m. It registers the
// insert/delete RPC handlers (§4.3: inserts and deletes ship to the host
// machine over SEND/RECV).
func NewEngine(m *cluster.Machine, part Partitioner, costs CostModel) *Engine {
	e := &Engine{
		M:                   m,
		Part:                part,
		Costs:               costs,
		Replicas:            m.Cluster().Spec.Replicas,
		Replicated:          m.Cluster().Spec.Replicas > 1,
		CoroutinesPerWorker: DefaultCoroutinesPerWorker,
		locCache:            newLocCache(),
		cm:                  newContentionManager(),
	}
	e.registerRPC()
	return e
}

// Worker is one worker thread: it owns a virtual clock, QPs to every peer,
// and transaction statistics. Workers are not safe for concurrent use; the
// coroutine scheduler (RunCoroutines, sched.go) multiplexes logical
// transaction contexts on a worker with strict handoff, so exactly one
// context touches the worker at any instant.
type Worker struct {
	E   *Engine
	ID  int
	Clk sim.Clock
	rng *sim.Rand

	qps     []*rdma.QP
	nextTxn uint64

	// Coroutine scheduler state (sched.go). cur is the running coroutine
	// (nil when the worker runs a single transaction the classic way);
	// htmDepth counts open commit-protocol HTM regions so yield can assert
	// that no region ever spans a scheduling point.
	sched    *scheduler
	cur      *coro
	htmDepth int

	// Rec is the worker's trace recorder (nil = tracing off; every hot-path
	// instrumentation site guards on that nil — the disabled fast path).
	// Set through EnableTrace so QPs and batches share it.
	Rec *obs.Recorder

	// Hist records every committed transaction's versioned read/write sets
	// for the strict-serializability checker (nil = off; set through
	// EnableHistory). Recording reads the clock but never advances it.
	Hist *obs.HistoryRecorder

	// gate, when non-nil, is called at every scheduling point (transaction
	// attempt start, doorbell await, backoff) and blocks until this worker
	// may proceed — the hook the deterministic-schedule harness uses to
	// serialize all workers into one reproducible interleaving.
	gate func()

	// Protocol, when non-empty, overrides the engine-wide Engine.Protocol
	// for transactions this worker commits. The serve layer sets it per
	// stored procedure (a worker is single-goroutine, so flipping it
	// between requests is race-free).
	Protocol string

	Stats Stats
}

// CommitPhase indexes the per-phase verb/batch/latency counters of the
// commit pipeline (Fig 7 steps plus the read-only and fallback protocols).
type CommitPhase int

// Commit pipeline phases.
const (
	PhaseLock       CommitPhase = iota // C.1: lock remote read+write sets
	PhaseValidate                      // C.2: validate remote reads, fetch write bases
	PhaseLog                           // R.1: replication payload + publish fan-out
	PhaseWriteBack                     // C.5: write back remote updates
	PhaseUnlock                        // C.6: unlock remote records
	PhaseROValidate                    // §4.5: read-only remote validation
	PhaseFallback                      // §6.1: fallback handler verb groups
	NumPhases
)

func (p CommitPhase) String() string {
	switch p {
	case PhaseLock:
		return "C.1-lock"
	case PhaseValidate:
		return "C.2-validate"
	case PhaseLog:
		return "R.1-log"
	case PhaseWriteBack:
		return "C.5-writeback"
	case PhaseUnlock:
		return "C.6-unlock"
	case PhaseROValidate:
		return "ro-validate"
	case PhaseFallback:
		return "fallback"
	default:
		return fmt.Sprintf("CommitPhase(%d)", int(p))
	}
}

// PhaseStat counts one commit phase's one-sided verb traffic and the virtual
// time its doorbell batches cost (Figs 10-18 latency breakdowns).
type PhaseStat struct {
	Verbs   uint64 // one-sided verbs posted
	Batches uint64 // doorbells rung (non-empty batches executed)
	Nanos   uint64 // virtual ns spent executing this phase's batches
}

// Stats counts per-worker outcomes.
type Stats struct {
	Committed uint64
	Aborts    [NumAbortReasons]uint64 // indexed by AbortReason
	Fallbacks uint64
	Retries   uint64
	Phases    [NumPhases]PhaseStat

	// AbortCells attributes every abort along reason × stage × site — the
	// structured replacement for the flat Aborts view ("1100 C.1-lock
	// conflicts on node 2", not just "1200 lock-failed"). Always on:
	// recording is one array increment.
	AbortCells obs.AbortMatrix

	// Coroutine overlap counters (all zero when CoroutinesPerWorker <= 1).
	// For every awaited doorbell: OverlapNanos is the share of the fabric
	// round-trip hidden behind other coroutines' work, StallNanos the share
	// the worker still had to wait out. Yields counts scheduling points
	// taken; MaxInFlight is the peak number of parked in-flight
	// transactions observed on this worker.
	CoYields       uint64
	CoOverlapNanos uint64
	CoStallNanos   uint64
	CoMaxInFlight  uint64

	// Contention-manager counters. KeyAborts counts aborts attributed to a
	// specific record (whenever the abort carries a key, in every mode) —
	// the source of Result.AbortSummary's top-K hot keys. QueueWaits /
	// QueueWaitNanos / QueueWaitHist measure hot-key FIFO admissions that
	// actually waited (an immediate empty-queue pass-through records nothing).
	KeyAborts      map[HotKey]uint64
	QueueWaits     uint64
	QueueWaitNanos uint64
	QueueWaitHist  obs.Histogram

	// Read-only-participant accounting (the protocol-matrix figure).
	// ROVerbs counts one-sided commit-pipeline verbs addressed to records
	// the transaction read but did not write: drtmrProto pays 3 per such
	// record (C.1 lock CAS + C.2 validation READ + C.6 unlock CAS), the
	// farm protocol 1 (a validation READ). ROWakeups counts remote-CPU
	// deliveries (RPCs, redo-log appends) to pure read participants — nodes
	// hosting none of the transaction's writes and owing it no replication
	// duty. Both protocols keep reads fully one-sided, so ROWakeups stays
	// zero; it is measured rather than assumed (Txn.countWakeup).
	ROVerbs   uint64
	ROWakeups uint64
}

// AbortsTotal sums all abort reasons.
func (s *Stats) AbortsTotal() uint64 {
	var t uint64
	for _, v := range s.Aborts {
		t += v
	}
	return t
}

// AddPhases accumulates another worker's phase counters (harness roll-up).
func (s *Stats) AddPhases(o *Stats) {
	for i := range s.Phases {
		s.Phases[i].Verbs += o.Phases[i].Verbs
		s.Phases[i].Batches += o.Phases[i].Batches
		s.Phases[i].Nanos += o.Phases[i].Nanos
	}
	s.ROVerbs += o.ROVerbs
	s.ROWakeups += o.ROWakeups
}

// AddOverlap accumulates another worker's coroutine overlap counters
// (harness roll-up; MaxInFlight takes the max, the rest sum).
func (s *Stats) AddOverlap(o *Stats) {
	s.CoYields += o.CoYields
	s.CoOverlapNanos += o.CoOverlapNanos
	s.CoStallNanos += o.CoStallNanos
	if o.CoMaxInFlight > s.CoMaxInFlight {
		s.CoMaxInFlight = o.CoMaxInFlight
	}
}

// NewWorker creates worker id on this engine.
func (e *Engine) NewWorker(id int) *Worker {
	w := &Worker{E: e, ID: id, rng: sim.NewRand(uint64(id)*0x9E37 + uint64(e.M.ID) + 1)}
	n := e.M.Cluster().Spec.Nodes
	w.qps = make([]*rdma.QP, n)
	for i := 0; i < n; i++ {
		w.qps[i] = e.M.Cluster().Net.NewQP(e.M.ID, rdma.NodeID(i), &w.Clk)
	}
	return w
}

// QP returns the worker's queue pair to node.
func (w *Worker) QP(node rdma.NodeID) *rdma.QP { return w.qps[node] }

// EnableTrace attaches a fresh ring-buffer trace recorder (capacity 0 =
// obs.DefaultCapacity) to this worker and to every QP it owns, and returns
// it. Recording adds ZERO virtual time — events only read the clock — so
// enabling tracing never changes simulated results; with tracing off the
// per-site nil checks are the whole cost.
func (w *Worker) EnableTrace(capacity int) *obs.Recorder {
	r := obs.NewRecorder(int(w.E.M.ID), w.ID, capacity)
	w.Rec = r
	for _, qp := range w.qps {
		qp.SetRecorder(r)
	}
	return r
}

// EnableHistory attaches a history recorder drawing timestamps from the
// run-global tick source ts; committed transactions land in it with their
// versioned read/write sets for the strict-serializability checker.
func (w *Worker) EnableHistory(ts *obs.TickSource) *obs.HistoryRecorder {
	h := obs.NewHistoryRecorder(int(w.E.M.ID), w.ID, ts)
	w.Hist = h
	return h
}

// SetGate installs the deterministic-schedule gate: g is called at every
// scheduling point and must block until this worker may run. nil removes it.
func (w *Worker) SetGate(g func()) { w.gate = g }

// newBatch creates a doorbell batch on this worker's clock, honoring the
// engine's sequential-accounting ablation knob and the worker's trace
// recorder.
func (w *Worker) newBatch() *rdma.Batch {
	b := rdma.NewBatch(&w.Clk)
	if w.E.DisableVerbBatching {
		b.SetSequential(true)
	}
	if w.Rec != nil {
		b.SetRecorder(w.Rec)
	}
	return b
}

// execBatch rings the doorbell on b and charges its verbs, doorbell and
// virtual latency to the given commit phase's counters. Empty batches cost
// (and count) nothing. Under the coroutine scheduler the doorbell is a
// yield point: other in-flight transactions run during the round-trip and
// Nanos records elapsed virtual time at this doorbell (identical to the
// synchronous charge when nothing overlaps). A Txn method (not Worker) so
// the phase trace event can carry the transaction id — under coroutine
// interleaving the worker has no well-defined "current transaction".
func (tx *Txn) execBatch(phase CommitPhase, b *rdma.Batch) error {
	w := tx.w
	n := b.Len()
	if n == 0 {
		return nil
	}
	start := w.Clk.Now()
	err := w.await(b.ExecuteAsync())
	ps := &w.Stats.Phases[phase]
	ps.Batches++
	ps.Verbs += uint64(n)
	ps.Nanos += uint64(w.Clk.Now() - start)
	if w.Rec != nil {
		w.Rec.Record(obs.EvPhase, phaseStage(phase), 0, uint32(n), tx.id, start, w.Clk.Now())
	}
	return err
}

func (w *Worker) backoff(attempt int) {
	maxE := w.E.BackoffMaxExp
	if maxE <= 0 {
		maxE = DefaultBackoffMaxExp
	}
	if maxE > 62 {
		maxE = 62 // 1<<63 overflows int64
	}
	maxExp := 1 << uint(min(attempt, maxE))
	d := time.Duration(1+w.rng.Intn(maxExp)) * w.E.Costs.Backoff
	w.Clk.Advance(d)
	w.yield() // let another in-flight transaction (maybe the lock holder) run
	if w.gate != nil {
		w.gate() // deterministic mode: hand the schedule to another worker
	}
	sim.Spin(0) // scheduling point so contenders interleave
}

// Run executes fn as a transaction with automatic retry on aborts. fn may be
// re-executed; it must be idempotent up to its writes (standard OCC
// contract). Returns the first non-abort error, or nil once committed.
func (w *Worker) Run(fn func(tx *Txn) error) error {
	return w.runLoop(fn, (*Worker).Begin)
}

// RunReadOnly is Run for read-only transactions (§4.5's separate protocol).
func (w *Worker) RunReadOnly(fn func(tx *Txn) error) error {
	return w.runLoop(fn, (*Worker).BeginReadOnly)
}

// runLoop is the shared retry loop: run, commit, attribute any abort
// (stats + reason×stage×site matrix + trace events), back off, retry. When
// an abort names a key the hot-key detector sees it (contention.go); once a
// key is hot the NEXT attempt queues on its FIFO gate first, so hot-record
// retries take turns instead of re-paying full optimistic executions that
// trample each other.
func (w *Worker) runLoop(fn func(tx *Txn) error, begin func(*Worker) *Txn) error {
	var (
		nextGate *keyGate
		nextKey  HotKey
	)
	for attempt := 0; ; attempt++ {
		if w.gate != nil {
			w.gate()
		}
		var held *keyGate
		if nextGate != nil {
			g, hk := nextGate, nextKey
			nextGate = nil
			ok, qerr := w.acquireGate(g, hk)
			switch {
			case ok:
				held = g
			case qerr != nil:
				// Admission timed out (or this machine died): account it
				// like any abort, then retry ungated.
				w.Stats.Aborts[qerr.Reason]++
				w.Stats.AbortCells.Record(uint8(qerr.Reason), qerr.Stage, int(qerr.Site))
				w.Stats.Retries++
				if w.E.M.Dead() {
					return qerr
				}
				w.backoff(attempt)
				continue
			}
		}
		tx := begin(w)
		start := w.Clk.Now()
		// Invocation timestamp for the history: drawn before the attempt's
		// first read, so a retried transaction's interval covers only the
		// attempt that actually committed.
		var invTick uint64
		if w.Hist != nil {
			invTick = w.Hist.Tick()
		}
		if w.Rec != nil {
			w.Rec.Record(obs.EvTxnBegin, 0, 0, uint32(attempt), tx.id, start, start)
		}
		err := fn(tx)
		if err == nil {
			err = tx.Commit()
		} else {
			tx.abandon()
		}
		if held != nil {
			held.release()
		}
		if err == nil {
			w.Stats.Committed++
			if w.Hist != nil {
				// A commit that raced this machine's own death may or may
				// not have survived into the surviving configuration: record
				// it as maybe-committed so the checker includes it only if
				// someone observed it.
				w.Hist.Add(tx.histTxn(invTick, start, w.E.M.Dead()))
			}
			if w.Rec != nil {
				w.Rec.Record(obs.EvTxnCommit, 0, 0, uint32(attempt), tx.id, start, w.Clk.Now())
			}
			return nil
		}
		var te *Error
		if !errors.As(err, &te) {
			return err // user error: not retried
		}
		w.Stats.Aborts[te.Reason]++
		w.Stats.AbortCells.Record(uint8(te.Reason), te.Stage, int(te.Site))
		w.Stats.Retries++
		if w.Rec != nil {
			w.Rec.Record(obs.EvTxnAbort, te.Stage, te.Site, uint32(te.Reason), tx.id, start, w.Clk.Now())
		}
		if te.HasKey {
			if g := w.noteAbortKey(te); g != nil {
				nextGate, nextKey = g, HotKey{Table: te.Table, Key: te.Key}
			}
		}
		if w.E.M.Dead() {
			// This machine was killed: it is fail-stopped from the cluster's
			// point of view, so stop retrying — whatever the abort reason.
			// (A zombie can spin forever on AbortLocked: the survivor that
			// holds the lock can never deliver its unlock verb through our
			// dark NIC.)
			return err
		}
		if te.Reason == AbortNodeDead {
			// Wait for the configuration to change before retrying.
			w.waitEpochChange()
		}
		w.backoff(attempt)
	}
}

func (w *Worker) waitEpochChange() {
	cur := w.E.M.Config().Epoch
	for i := 0; i < 1000; i++ {
		if w.E.M.Config().Epoch > cur || w.E.M.Dead() {
			return
		}
		sim.Spin(500 * time.Microsecond)
	}
}

// locCache is the RDMA-friendly location cache (§6.3): it maps remote keys
// to (record offset, incarnation) so repeated accesses skip the bucket walk.
type locCache struct {
	shards [64]locShard
}

type locShard struct {
	mu sync.Mutex
	m  map[locKey]locVal
}

type locKey struct {
	node  rdma.NodeID
	table memstore.TableID
	key   uint64
}

type locVal struct {
	off uint64
	inc uint64
}

func newLocCache() *locCache {
	c := &locCache{}
	for i := range c.shards {
		c.shards[i].m = make(map[locKey]locVal)
	}
	return c
}

func (c *locCache) shardFor(k locKey) *locShard {
	h := k.key*31 + uint64(k.table)*7 + uint64(k.node)
	return &c.shards[h&63]
}

func (c *locCache) get(k locKey) (locVal, bool) {
	s := c.shardFor(k)
	s.mu.Lock()
	v, ok := s.m[k]
	s.mu.Unlock()
	return v, ok
}

func (c *locCache) put(k locKey, v locVal) {
	s := c.shardFor(k)
	s.mu.Lock()
	s.m[k] = v
	s.mu.Unlock()
}

func (c *locCache) drop(k locKey) {
	s := c.shardFor(k)
	s.mu.Lock()
	delete(s.m, k)
	s.mu.Unlock()
}
