package txn

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"drtmr/internal/cluster"
	"drtmr/internal/memstore"
	"drtmr/internal/rdma"
)

// XABORT codes used by the protocol.
const (
	// abortCodeLocked: execution-phase local read found the record locked
	// by a (remote) transaction — retry after backoff (§4.3).
	abortCodeLocked = 0x11
	// abortCodeWSLocked: commit-phase HTM region found a local write-set
	// record locked by a remote transaction (§4.4 C.4's extra check).
	abortCodeWSLocked = 0x12
	// abortCodeValidate: commit-phase validation failed inside HTM.
	abortCodeValidate = 0x13
)

// wsKind distinguishes write-set entries.
type wsKind uint8

const (
	wsUpdate wsKind = iota
	wsInsert
	wsDelete
	// wsDelta is a commutative update (Txn.Add): the entry carries add
	// operations instead of a value; buf is materialized from the record's
	// current value inside the commit critical section (C.2/C.4/fallback,
	// with the record locked or HTM-protected), so concurrent deltas
	// commute instead of conflicting.
	wsDelta
)

// fieldDelta is one commutative wrapping add against a little-endian u64
// field of the value (two's complement makes subtraction an add).
type fieldDelta struct {
	off uint32
	add uint64
}

// applyDeltaTo folds one delta into a value buffer in place.
func applyDeltaTo(b []byte, off uint32, add uint64) {
	if int(off)+8 > len(b) {
		return
	}
	binary.LittleEndian.PutUint64(b[off:], binary.LittleEndian.Uint64(b[off:])+add)
}

// rsEntry is one read-set record: where it was, and the version observed.
type rsEntry struct {
	table memstore.TableID
	key   uint64
	shard cluster.ShardID
	node  rdma.NodeID
	off   uint64
	seq   uint64
	inc   uint64
	local bool
	val   []byte // cached for repeated reads
}

// wsEntry is one write-set record with its buffered new value (§4.3: all
// writes go to a local private buffer during execution).
type wsEntry struct {
	kind  wsKind
	table memstore.TableID
	key   uint64
	shard cluster.ShardID
	node  rdma.NodeID
	off   uint64 // 0 until resolved (inserts: after RPC/apply)
	local bool
	buf   []byte
	// baseSeq is the record's sequence number observed when locking /
	// inside the commit HTM region; newSeq = baseSeq + 1 (+1 again after
	// replication).
	baseSeq uint64
	finSeq  uint64
	// inc caches the record's incarnation, captured by the C.2 /
	// fallback-validation header fetch (valid when haveInc): C.5 rebuilds
	// the remote image from it instead of issuing a second header READ.
	inc     uint64
	haveInc bool
	// deltas holds a wsDelta entry's pending commutative adds.
	deltas []fieldDelta
}

// materializeFrom builds a wsDelta entry's final image by folding its
// pending deltas over the record's current value. Callers must hold the
// commit critical section for the record (C.1 lock, C.4 HTM region, or the
// fallback's sorted locks) so cur cannot move before install.
func (e *wsEntry) materializeFrom(cur []byte) {
	e.buf = append(e.buf[:0], cur...)
	for _, d := range e.deltas {
		applyDeltaTo(e.buf, d.off, d.add)
	}
}

// Txn is one user transaction. It is created by Worker.Begin /
// BeginReadOnly and driven by user code during the execution phase; Commit
// runs the hybrid commit protocol.
type Txn struct {
	w        *Worker
	id       uint64
	cfg      *cluster.Config
	readOnly bool
	// stage is the lifecycle position (StageExec .. StageFallback) used to
	// attribute aborts; the commit pipeline updates it as it advances.
	stage uint8

	rs []rsEntry
	ws []wsEntry

	// Conflict identity captured inside the commit HTM region: the region
	// communicates failures through abort codes only (htx.Abort unwinds), so
	// localCommitBody stamps the conflicting record here before aborting and
	// localHTMCommit attaches it to the txn.Error it builds outside.
	confTable memstore.TableID
	confKey   uint64
	confSet   bool
}

// setConflict records the conflicting record for post-HTM abort attribution.
func (tx *Txn) setConflict(table memstore.TableID, key uint64) {
	tx.confTable, tx.confKey, tx.confSet = table, key, true
}

// Begin starts a read-write transaction. The configuration is snapshotted
// so that every locality decision inside the transaction is consistent; an
// epoch change surfaces as dead-node aborts and a retry picks up the new
// configuration.
func (w *Worker) Begin() *Txn {
	w.nextTxn++
	w.Clk.Advance(w.E.Costs.TxnOverhead)
	return &Txn{
		w:   w,
		id:  uint64(w.E.M.ID)<<56 | uint64(w.ID)<<40 | w.nextTxn,
		cfg: w.E.M.Config(),
	}
}

// BeginReadOnly starts a read-only transaction (§4.5's protocol: no HTM and
// no locking in the commit phase, but remote reads check the lock).
func (w *Worker) BeginReadOnly() *Txn {
	tx := w.Begin()
	tx.readOnly = true
	return tx
}

// abandon discards the transaction (nothing to undo: writes are buffered).
func (tx *Txn) abandon() {}

// abort builds an abort attributed to the worker's own node (local causes:
// HTM exhaustion, local validation, locked local records).
func (tx *Txn) abort(r AbortReason, format string, args ...any) error {
	return tx.abortAt(tx.w.E.M.ID, r, format, args...)
}

// abortAt builds an abort attributed to node — the site whose record
// triggered it — at the transaction's current lifecycle stage.
func (tx *Txn) abortAt(node rdma.NodeID, r AbortReason, format string, args ...any) error {
	return &Error{Reason: r, Stage: tx.stage, Site: uint16(node), Detail: fmt.Sprintf(format, args...)}
}

// abortOn is abortAt carrying the conflicting record's identity, which feeds
// the contention manager's hot-key detector and the per-key abort counter.
func (tx *Txn) abortOn(node rdma.NodeID, table memstore.TableID, key uint64, r AbortReason, format string, args ...any) error {
	e := tx.abortAt(node, r, format, args...).(*Error)
	e.Table, e.Key, e.HasKey = table, key, true
	return e
}

// keyAt resolves a record offset on node back to the (table, key) this
// transaction knows it as — used to key aborts raised by offset-level
// operations (C.1 lock CASes).
func (tx *Txn) keyAt(node rdma.NodeID, off uint64) (memstore.TableID, uint64, bool) {
	self := tx.w.E.M.ID
	for i := range tx.rs {
		r := &tx.rs[i]
		n := r.node
		if r.local {
			n = self
		}
		if n == node && r.off == off {
			return r.table, r.key, true
		}
	}
	for i := range tx.ws {
		e := &tx.ws[i]
		n := e.node
		if e.local {
			n = self
		}
		if n == node && e.off == off && e.off != 0 {
			return e.table, e.key, true
		}
	}
	return 0, 0, false
}

// homeOf resolves a record's placement under this transaction's
// configuration snapshot.
func (tx *Txn) homeOf(table memstore.TableID, key uint64) (cluster.ShardID, rdma.NodeID, bool) {
	shard := tx.w.E.Part(table, key)
	node := tx.cfg.PrimaryOf(shard)
	return shard, node, node == tx.w.E.M.ID
}

func (tx *Txn) findWS(table memstore.TableID, key uint64) *wsEntry {
	for i := range tx.ws {
		if tx.ws[i].table == table && tx.ws[i].key == key {
			return &tx.ws[i]
		}
	}
	return nil
}

func (tx *Txn) findRS(table memstore.TableID, key uint64) *rsEntry {
	for i := range tx.rs {
		if tx.rs[i].table == table && tx.rs[i].key == key {
			return &tx.rs[i]
		}
	}
	return nil
}

// Read returns the record's value, tracking it in the read set. Missing
// keys return ErrNotFound. Reads see the transaction's own buffered writes.
func (tx *Txn) Read(table memstore.TableID, key uint64) ([]byte, error) {
	// A pending wsDelta has no value of its own: fall through to a protocol
	// read (which tracks the record in the read set, giving up the delta's
	// validation immunity for this record — reading it reintroduces an
	// ordering dependency) and overlay the pending adds on the result.
	var dw *wsEntry
	if w := tx.findWS(table, key); w != nil {
		switch w.kind {
		case wsDelete:
			return nil, ErrNotFound
		case wsDelta:
			dw = w
		default:
			return append([]byte(nil), w.buf...), nil
		}
	}
	overlay := func(val []byte) []byte {
		out := append([]byte(nil), val...)
		if dw != nil {
			for _, d := range dw.deltas {
				applyDeltaTo(out, d.off, d.add)
			}
		}
		return out
	}
	if r := tx.findRS(table, key); r != nil {
		return overlay(r.val), nil
	}
	shard, node, local := tx.homeOf(table, key)
	var (
		e   rsEntry
		err error
	)
	if local {
		e, err = tx.localRead(table, key)
	} else {
		e, err = tx.remoteRead(node, table, key, tx.readOnly)
	}
	if err != nil {
		return nil, err
	}
	e.shard, e.node = shard, node
	tx.rs = append(tx.rs, e)
	return overlay(e.val), nil
}

// ReadStable is a version-consistent read that does NOT enroll the record
// in the read set: the returned value is a committed snapshot, but commit
// never re-validates it, so later writes to the record cannot abort this
// transaction. It exists for fields that are immutable after load (TPC-C
// w_tax, a customer's discount): record-granular validation otherwise
// false-shares such rows with writers of unrelated fields — a Payment YTD
// delta on the warehouse row kills every concurrent NewOrder that glanced
// at the tax — which is pure tail with no serializability payoff. The
// caller asserts the fields it uses are immutable; a mutable field read
// through ReadStable can legitimately be stale by commit time. With
// ContentionOff it degrades to a plain tracked Read, so the ablation
// measures exactly this false sharing.
func (tx *Txn) ReadStable(table memstore.TableID, key uint64) ([]byte, error) {
	if !tx.w.E.contentionOn() {
		return tx.Read(table, key)
	}
	// A pending own write or an already-tracked read supplies the value the
	// transaction would observe anyway: delegate rather than re-fetch.
	if tx.findWS(table, key) != nil || tx.findRS(table, key) != nil {
		return tx.Read(table, key)
	}
	_, node, local := tx.homeOf(table, key)
	var (
		e   rsEntry
		err error
	)
	if local {
		e, err = tx.localRead(table, key)
	} else {
		e, err = tx.remoteRead(node, table, key, tx.readOnly)
	}
	if err != nil {
		return nil, err
	}
	return e.val, nil
}

// Write buffers a new value for the record (update). The record need not
// have been read first (blind writes are allowed; the commit phase fetches
// the base sequence number itself).
func (tx *Txn) Write(table memstore.TableID, key uint64, value []byte) error {
	if tx.readOnly {
		return fmt.Errorf("txn: write in read-only transaction")
	}
	if w := tx.findWS(table, key); w != nil {
		if w.kind == wsDelete {
			return fmt.Errorf("txn: write after delete of key %d", key)
		}
		w.buf = append(w.buf[:0], value...)
		if w.kind == wsDelta {
			// An absolute write supersedes the pending deltas: the entry
			// becomes a plain (blind) update carrying this value.
			w.kind = wsUpdate
			w.deltas = nil
		}
		return nil
	}
	shard, node, local := tx.homeOf(table, key)
	e := wsEntry{
		kind: wsUpdate, table: table, key: key,
		shard: shard, node: node, local: local,
		buf: append([]byte(nil), value...),
	}
	if r := tx.findRS(table, key); r != nil {
		e.off = r.off
	}
	tx.ws = append(tx.ws, e)
	return nil
}

// Add buffers a commutative delta: at commit, the little-endian u64 field at
// fieldOff has delta added to it (wrapping; pass the two's complement of a
// positive amount to subtract). Unlike Read+Write, Add tracks nothing in the
// read set and carries no base value, so two transactions adding to the same
// record commute — neither can validate-abort the other. The fold happens
// inside the commit critical section (C.2 under the C.1 lock, C.4 inside the
// HTM region, or the fallback under its sorted locks), where the current
// value cannot move before the install. The record must exist (a missing key
// surfaces as an abort/ErrNotFound at commit, like other blind writes). With
// ContentionOff the call degrades to the read-modify-write it replaced, so
// the ablation reproduces pure-OCC behaviour exactly.
func (tx *Txn) Add(table memstore.TableID, key uint64, fieldOff int, delta uint64) error {
	if tx.readOnly {
		return fmt.Errorf("txn: add in read-only transaction")
	}
	tbl := tx.w.E.M.Store.Table(table)
	if tbl == nil {
		return fmt.Errorf("txn: unknown table %d", table)
	}
	if fieldOff < 0 || fieldOff+8 > tbl.Spec.ValueSize {
		return fmt.Errorf("txn: add offset %d out of range for table %d", fieldOff, table)
	}
	if w := tx.findWS(table, key); w != nil {
		switch w.kind {
		case wsDelete:
			return fmt.Errorf("txn: add after delete of key %d", key)
		case wsDelta:
			w.deltas = append(w.deltas, fieldDelta{off: uint32(fieldOff), add: delta})
			return nil
		default:
			// The entry already carries a full value: fold the delta into it.
			applyDeltaTo(w.buf, uint32(fieldOff), delta)
			return nil
		}
	}
	if !tx.w.E.contentionOn() {
		v, err := tx.Read(table, key)
		if err != nil {
			return err
		}
		applyDeltaTo(v, uint32(fieldOff), delta)
		return tx.Write(table, key, v)
	}
	shard, node, local := tx.homeOf(table, key)
	e := wsEntry{
		kind: wsDelta, table: table, key: key,
		shard: shard, node: node, local: local,
		deltas: []fieldDelta{{off: uint32(fieldOff), add: delta}},
	}
	if r := tx.findRS(table, key); r != nil {
		e.off = r.off
	}
	tx.ws = append(tx.ws, e)
	return nil
}

// Insert creates a new record. Local inserts apply at commit inside the
// host; remote inserts ship to the host machine over SEND/RECV (§4.3).
func (tx *Txn) Insert(table memstore.TableID, key uint64, value []byte) error {
	if tx.readOnly {
		return fmt.Errorf("txn: insert in read-only transaction")
	}
	if w := tx.findWS(table, key); w != nil && w.kind != wsDelete {
		return fmt.Errorf("txn: duplicate insert of key %d", key)
	}
	shard, node, local := tx.homeOf(table, key)
	tx.ws = append(tx.ws, wsEntry{
		kind: wsInsert, table: table, key: key,
		shard: shard, node: node, local: local,
		buf: append([]byte(nil), value...),
	})
	return nil
}

// Delete removes a record at commit.
func (tx *Txn) Delete(table memstore.TableID, key uint64) error {
	if tx.readOnly {
		return fmt.Errorf("txn: delete in read-only transaction")
	}
	shard, node, local := tx.homeOf(table, key)
	tx.ws = append(tx.ws, wsEntry{
		kind: wsDelete, table: table, key: key,
		shard: shard, node: node, local: local,
	})
	return nil
}

// ReadForUpdate is Read that also marks the record for update with the same
// value (callers overwrite via Write); it simply combines the two common
// calls.
func (tx *Txn) ReadForUpdate(table memstore.TableID, key uint64) ([]byte, error) {
	v, err := tx.Read(table, key)
	if err != nil {
		return nil, err
	}
	return v, tx.Write(table, key, v)
}

// localRead performs a consistent read of a local record inside a small HTM
// region (Fig 5): check the lock word first — a locked record means a
// remote transaction is about to update it, so manually abort and retry
// with randomized backoff (§4.3) — then snapshot the record.
func (tx *Txn) localRead(table memstore.TableID, key uint64) (rsEntry, error) {
	tbl := tx.w.E.M.Store.Table(table)
	if tbl == nil {
		return rsEntry{}, fmt.Errorf("txn: unknown table %d", table)
	}
	off, ok := tbl.Lookup(key)
	if !ok {
		return rsEntry{}, ErrNotFound
	}
	var img []byte
	for attempt := 0; attempt < 256; attempt++ {
		tx.w.Clk.Advance(tx.w.E.Costs.LocalAccess)
		var (
			lockW uint64
			ok    bool
		)
		img, lockW, ok = tx.localReadAttempt(off, tbl, img)
		if ok {
			seq := memstore.RecSeq(img)
			if tx.w.E.Replicated && !memstore.SeqIsCommittable(seq) {
				// Uncommittable (Table 4): a local committer is between its
				// HTM region and replication makeup. Its value exists here
				// but its remote writes may not have landed — serializing on
				// it would observe half a transaction. Wait for the flip.
				tx.w.backoff(attempt)
				continue
			}
			return rsEntry{
				table: table, key: key, off: off, local: true,
				seq: seq, inc: memstore.RecInc(img),
				val: memstore.GatherValue(img, tbl.Spec.ValueSize),
			}, nil
		}
		if lockW != 0 {
			tx.w.maybeReleaseDangling(tx.cfg, tx.w.E.M.ID, off, lockW)
		}
		tx.w.backoff(attempt)
	}
	return rsEntry{}, tx.abortOn(tx.w.E.M.ID, table, key, AbortLocked, "local record %d/%d stayed locked", table, key)
}

// localReadAttempt is one HTM-protected snapshot attempt (Fig 5). The whole
// region is bracketed with htmBegin/htmEnd so the coroutine scheduler can
// assert that no yield point is ever reached while the region is open.
// lockW is non-zero when the attempt manually aborted on a locked record.
func (tx *Txn) localReadAttempt(off uint64, tbl *memstore.Table, buf []byte) (img []byte, lockW uint64, ok bool) {
	w := tx.w
	w.htmBegin()
	defer w.htmEnd()
	htx := w.E.M.Eng.Begin()
	if w.Rec != nil {
		htx.Trace(w.Rec, &w.Clk, tx.id)
	}
	lockW, err := htx.Load64(off + memstore.LockOff)
	if err != nil {
		return buf, 0, false
	}
	if lockW != 0 {
		htx.Abort(abortCodeLocked)
		return buf, lockW, false
	}
	img, err = htx.Read(off, tbl.RecBytes, buf)
	if err != nil {
		return img, 0, false
	}
	if err := htx.Commit(); err != nil {
		return img, 0, false
	}
	return img, 0, true
}

// remoteRead performs a lock-free consistent read of a remote record with
// one-sided RDMA: fetch the whole record, then check that every cacheline's
// version matches the sequence number (Fig 6). checkLock additionally
// rejects locked records — required only by the read-only protocol (§4.5);
// read-write transactions may read locked records optimistically, because
// commit-time validation (with the record locked) decides. Uncommittable
// (odd-seq) records are never returned in replicated mode: seq-equality
// validation cannot tell "still mid-replication" from "unchanged", so a
// reader must wait for the makeup flip (Table 4).
func (tx *Txn) remoteRead(node rdma.NodeID, table memstore.TableID, key uint64, checkLock bool) (rsEntry, error) {
	tbl := tx.w.E.M.Store.Table(table)
	if tbl == nil {
		return rsEntry{}, fmt.Errorf("txn: unknown table %d", table)
	}
	qp := tx.w.QP(node)
	lk := locKey{node: node, table: table, key: key}
	var (
		loc    locVal
		cached bool
	)
	if !tx.w.E.DisableLocCache {
		loc, cached = tx.w.E.locCache.get(lk)
	}
	if !cached {
		var err error
		loc, err = tx.w.remoteLookup(qp, tbl, key)
		if err != nil {
			return rsEntry{}, err
		}
		tx.w.E.locCache.put(lk, loc)
	}
	var img []byte
	for attempt := 0; attempt < 256; attempt++ {
		// The record fetch is a full fabric round-trip: issue it async and
		// yield so other in-flight transactions run while it is outstanding.
		var comp *rdma.Completion
		img, comp = qp.ReadAsync(loc.off, tbl.RecBytes, img)
		if err := tx.w.await(comp); err != nil {
			return rsEntry{}, tx.abortAt(node, AbortNodeDead, "read %v", err)
		}
		if !memstore.VersionsConsistent(img) {
			tx.w.backoff(attempt) // torn racing write; retry
			continue
		}
		inc := memstore.RecInc(img)
		if inc&memstore.IncLocMask != loc.inc {
			// Stale cached location: the record was freed (and maybe
			// reused). Re-resolve through the index.
			tx.w.E.locCache.drop(lk)
			nl, err := tx.w.remoteLookup(qp, tbl, key)
			if err != nil {
				return rsEntry{}, err
			}
			loc = nl
			tx.w.E.locCache.put(lk, loc)
			continue
		}
		if checkLock {
			if lockW := memstore.RecLock(img); lockW != 0 {
				tx.w.maybeReleaseDangling(tx.cfg, node, loc.off, lockW)
				tx.w.backoff(attempt)
				continue
			}
		}
		if tx.w.E.Replicated && !memstore.SeqIsCommittable(memstore.RecSeq(img)) {
			// Uncommittable record mid-replication: wait for the makeup flip
			// rather than serialize on an un-replicated half-commit.
			tx.w.backoff(attempt)
			continue
		}
		return rsEntry{
			table: table, key: key, off: loc.off, node: node,
			seq: memstore.RecSeq(img), inc: inc,
			val: memstore.GatherValue(img, tbl.Spec.ValueSize),
		}, nil
	}
	return rsEntry{}, tx.abortOn(node, table, key, AbortStale, "remote record %d/%d never stabilized", table, key)
}

// remoteLookup walks the remote hash index with one-sided RDMA READs.
func (w *Worker) remoteLookup(qp *rdma.QP, tbl *memstore.Table, key uint64) (locVal, error) {
	h := tbl.Hash()
	bucketOff := memstore.BucketOffFor(h.Base(), h.NumBuckets(), key)
	var img [64]byte
	for bucketOff != 0 {
		b, comp := qp.ReadAsync(bucketOff, 64, img[:])
		if err := w.await(comp); err != nil {
			// Commit-time callers (resolveWriteOffsets) re-stamp Stage.
			return locVal{}, &Error{Reason: AbortNodeDead, Stage: StageExec, Site: uint16(qp.Remote()), Detail: err.Error()}
		}
		packed, next, found := memstore.ParseBucket(b, key)
		if found {
			off, inc := memstore.SplitLoc(packed)
			return locVal{off: off, inc: inc}, nil
		}
		bucketOff = next
	}
	return locVal{}, ErrNotFound
}

// maybeReleaseDangling implements §5.2's passive lock release: a lock whose
// owner is not a member of the current configuration was left by a failed
// machine and may be cleared (with RDMA CAS, as all lock operations).
func (w *Worker) maybeReleaseDangling(cfg *cluster.Config, node rdma.NodeID, off uint64, lockW uint64) {
	owner, held := memstore.LockOwner(lockW)
	if !held {
		return
	}
	if cfg.IsMember(rdma.NodeID(owner)) {
		return
	}
	// Use the freshest configuration to double-check (the snapshot may
	// predate a reconfiguration that re-admitted nothing).
	cur := w.E.M.Config()
	if cur.IsMember(rdma.NodeID(owner)) {
		return
	}
	// Recovery fence: the dead owner may have published durable log entries
	// for the record this lock guards that have not yet been applied (ring
	// drain / cross-redo are per-machine and asynchronous). Releasing the
	// lock before every member finished recovery would let a new writer
	// install versions over the pre-crash state, colliding with the dead
	// transaction's (committed) updates when they finally land.
	if !w.E.M.RecoveryComplete() {
		return
	}
	_, _, _ = w.QP(node).CAS(off+memstore.LockOff, lockW, 0)
}

// equalValue is used by tests: whether a read value equals b.
func equalValue(a, b []byte) bool { return bytes.Equal(a, b) }

// Store returns the local machine's memory store, for workload-level index
// probes (ordered scans resolve candidate keys through the local B+-tree and
// then read the records back through the protocol, Silo-style).
func (tx *Txn) Store() *memstore.Store { return tx.w.E.M.Store }
