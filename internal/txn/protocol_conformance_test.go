package txn

import (
	"errors"
	"sync"
	"testing"
	"time"

	"drtmr/internal/htm"
	"drtmr/internal/memstore"
	"drtmr/internal/sim"
)

// Protocol conformance suite: every registered CommitProtocol must pass the
// same correctness battery — bank-invariant conservation (plain and
// replicated), the uncommittable-read block, dangling-lock release after a
// kill, coroutine-yield atomicity, and the lock-leak back-out regression. A
// third protocol registered tomorrow inherits all of it for free via
// forEachProtocol.

// forEachProtocol runs f once per registered commit protocol.
func forEachProtocol(t *testing.T, f func(t *testing.T, proto string)) {
	for _, name := range Protocols() {
		t.Run(name, func(t *testing.T) { f(t, name) })
	}
}

// setProtocol selects the commit protocol on every engine of the world.
func (w *world) setProtocol(name string) {
	for _, e := range w.engines {
		e.Protocol = name
	}
}

// TestProtocolRegistry pins the registry surface: both shipped protocols
// are present, resolvable, and self-consistent about their names.
func TestProtocolRegistry(t *testing.T) {
	names := Protocols()
	want := map[string]bool{"drtmr": false, "farm": false}
	for _, n := range names {
		if _, seen := want[n]; seen {
			want[n] = true
		}
		p, ok := ProtocolByName(n)
		if !ok {
			t.Fatalf("Protocols() lists %q but ProtocolByName misses it", n)
		}
		if p.Name() != n {
			t.Fatalf("protocol %q reports name %q", n, p.Name())
		}
	}
	for n, seen := range want {
		if !seen {
			t.Fatalf("protocol %q not registered (have %v)", n, names)
		}
	}
	if _, ok := ProtocolByName("no-such-protocol"); ok {
		t.Fatal("ProtocolByName resolved a bogus name")
	}
}

// TestProtocolConformanceBankInvariant: concurrent mixed local/distributed
// transfers from every machine conserve total value under each protocol,
// with spurious HTM aborts exercising the retry paths (and, for drtmr, the
// fallback handler).
func TestProtocolConformanceBankInvariant(t *testing.T) {
	forEachProtocol(t, func(t *testing.T, proto string) {
		t.Run("plain", func(t *testing.T) { runProtocolBank(t, proto, 1) })
		t.Run("replicated", func(t *testing.T) { runProtocolBank(t, proto, 3) })
	})
}

func runProtocolBank(t *testing.T, proto string, replicas int) {
	const (
		nodes     = 3
		accounts  = 24
		transfers = 80
		initial   = 1000
	)
	w := newWorld(t, nodes, replicas, htm.Config{SpuriousAbortProb: 0.02, Seed: 11})
	w.setProtocol(proto)
	w.load(t, accounts, initial)
	var wg sync.WaitGroup
	for n := 0; n < nodes; n++ {
		for wi := 0; wi < 2; wi++ {
			wg.Add(1)
			go func(node, id int) {
				defer wg.Done()
				wk := w.engines[node].NewWorker(id)
				rng := newTestRand(uint64(node*10 + id + 1))
				for i := 0; i < transfers; i++ {
					from := rng.next() % accounts
					to := rng.next() % accounts
					if from == to {
						continue
					}
					err := wk.Run(func(tx *Txn) error {
						fv, err := tx.Read(tblAcct, from)
						if err != nil {
							return err
						}
						tv, err := tx.Read(tblAcct, to)
						if err != nil {
							return err
						}
						amt := uint64(1 + rng.next()%5)
						if decBal(fv) < amt {
							return nil
						}
						if err := tx.Write(tblAcct, from, encBal(decBal(fv)-amt)); err != nil {
							return err
						}
						return tx.Write(tblAcct, to, encBal(decBal(tv)+amt))
					})
					if err != nil {
						t.Errorf("transfer: %v", err)
						return
					}
				}
			}(n, wi)
		}
	}
	wg.Wait()
	if total := w.totalOnPrimaries(accounts); total != accounts*initial {
		t.Fatalf("%s: value not conserved: %d != %d", proto, total, accounts*initial)
	}
}

// TestProtocolConformanceUncommittableBlock: a record parked at an odd
// (mid-replication) sequence number must block readers under EVERY protocol
// — the Table 4 rule is a property of the store's seqlock encoding, not of
// any one pipeline.
func TestProtocolConformanceUncommittableBlock(t *testing.T) {
	forEachProtocol(t, func(t *testing.T, proto string) {
		w := newWorld(t, 2, 3, htm.Config{})
		w.setProtocol(proto)
		w.load(t, 2, 100)
		m := w.c.Machines[0]
		off, _ := m.Store.Table(tblAcct).Lookup(0)
		m.Eng.FAA64NonTx(off+memstore.SeqOff, 1)

		wk := w.engines[0].NewWorker(0)
		tx := wk.Begin()
		_, err := tx.Read(tblAcct, 0)
		var te *Error
		if !errors.As(err, &te) || te.Reason != AbortLocked {
			t.Fatalf("%s: read of uncommittable record should wait then abort, got: %v", proto, err)
		}
		tx.abandon()
		// Once "replicated" (seq flipped even), the retry commits.
		m.Eng.FAA64NonTx(off+memstore.SeqOff, 1)
		if err := wk.Run(func(tx *Txn) error {
			v, err := tx.Read(tblAcct, 0)
			if err != nil {
				return err
			}
			return tx.Write(tblAcct, 0, encBal(decBal(v)+1))
		}); err != nil {
			t.Fatal(err)
		}
	})
}

// TestProtocolConformanceDanglingLock: §5.2's passive release must clear a
// dead machine's lock under each protocol, in BOTH places a survivor can
// trip over it — a lock on a record the survivor writes (released on the
// lock path) and a lock on a record it only reads (released on drtmr's C.1
// read-lock path, and on farm's F.2 validation path: farm never CASes
// read-set records, so the validation hook is its only chance).
func TestProtocolConformanceDanglingLock(t *testing.T) {
	forEachProtocol(t, func(t *testing.T, proto string) {
		t.Run("write-target", func(t *testing.T) { runDanglingLock(t, proto, true) })
		t.Run("read-target", func(t *testing.T) { runDanglingLock(t, proto, false) })
	})
}

func runDanglingLock(t *testing.T, proto string, writeLocked bool) {
	w := newWorld(t, 3, 3, htm.Config{})
	w.setProtocol(proto)
	w.load(t, 6, 100)
	m0 := w.c.Machines[0]
	off, _ := m0.Store.Table(tblAcct).Lookup(0)
	// Node 2 locks node 0's record 0, then dies.
	wk2 := w.engines[2].NewWorker(0)
	if _, ok, _ := wk2.QP(0).CAS(off+memstore.LockOff, 0, memstore.LockWord(2)); !ok {
		t.Fatal("setup lock failed")
	}
	w.c.Kill(2)
	deadline := time.Now().Add(2 * time.Second)
	for w.c.Coord.Current().IsMember(2) {
		if time.Now().After(deadline) {
			t.Fatal("no reconfig")
		}
		time.Sleep(5 * time.Millisecond)
	}
	for m0.Config().IsMember(2) || w.c.Machines[1].Config().IsMember(2) {
		time.Sleep(2 * time.Millisecond)
	}

	wk1 := w.engines[1].NewWorker(1)
	err := wk1.Run(func(tx *Txn) error {
		// Key 0 carries the dangling lock; key 3 (same shard) is clean.
		v0, err := tx.Read(tblAcct, 0)
		if err != nil {
			return err
		}
		v3, err := tx.Read(tblAcct, 3)
		if err != nil {
			return err
		}
		if writeLocked {
			// The locked record is a write target: the lock path releases.
			return tx.Write(tblAcct, 0, encBal(decBal(v0)+1))
		}
		// The locked record is read-only in this transaction: only the
		// validation path (or drtmr's read-set lock CAS) can release it.
		_ = v0
		return tx.Write(tblAcct, 3, encBal(decBal(v3)+1))
	})
	if err != nil {
		t.Fatalf("%s: commit against dangling lock: %v", proto, err)
	}
	if got := m0.Eng.Load64NonTx(off + memstore.LockOff); got != 0 {
		t.Fatalf("%s: dangling lock still held: %#x", proto, got)
	}
}

// TestProtocolConformanceCoroutineAtomicity: coroutine-scheduled workers
// interleave several in-flight transactions on one worker (shared QPs,
// shared lock word); yields at every doorbell must not break conservation
// under any protocol.
func TestProtocolConformanceCoroutineAtomicity(t *testing.T) {
	forEachProtocol(t, func(t *testing.T, proto string) {
		const keys = 24
		w := newWorld(t, 3, 1, htm.Config{})
		w.setProtocol(proto)
		w.load(t, keys, 1000)
		var wg sync.WaitGroup
		for n := 0; n < 3; n++ {
			wk := w.engines[n].NewWorker(n)
			wg.Add(1)
			go func(wk *Worker, seed uint64) {
				defer wg.Done()
				wk.RunCoroutines(4, func(slot int) {
					rng := sim.NewRand(seed*131 + uint64(slot) + 1)
					for i := 0; i < 30; i++ {
						from := uint64(rng.Intn(keys))
						to := uint64(rng.Intn(keys))
						if from == to {
							continue
						}
						_ = wk.Run(func(tx *Txn) error {
							fv, err := tx.Read(tblAcct, from)
							if err != nil {
								return err
							}
							tv, err := tx.Read(tblAcct, to)
							if err != nil {
								return err
							}
							if err := tx.Write(tblAcct, from, encBal(decBal(fv)-1)); err != nil {
								return err
							}
							return tx.Write(tblAcct, to, encBal(decBal(tv)+1))
						})
					}
				})
			}(wk, uint64(n))
		}
		wg.Wait()
		if got, want := w.totalOnPrimaries(keys), uint64(keys*1000); got != want {
			t.Fatalf("%s: money not conserved: total %d, want %d", proto, got, want)
		}
	})
}

// TestProtocolLockBackoutReleasesAll is the mid-batch lock-scan regression
// (the c08a886 bug class) expressed against the SHARED interface instead of
// drtmr internals: a commit whose lock batch fails on a LIVE holder's lock
// must abort AbortLockFailed AND release every lock the batch did win —
// under every protocol. A leak here is permanent: the holder is alive, so
// passive release never clears it.
func TestProtocolLockBackoutReleasesAll(t *testing.T) {
	forEachProtocol(t, func(t *testing.T, proto string) {
		w := newWorld(t, 3, 1, htm.Config{})
		w.setProtocol(proto)
		w.load(t, 12, 100)
		// Keys 1, 4, 7, 10 all live on shard 1's primary (node 1). Node 2
		// (live!) plants its lock word on key 4's record.
		m1 := w.c.Machines[1]
		offs := map[uint64]uint64{}
		for _, k := range []uint64{1, 4, 7, 10} {
			off, ok := m1.Store.Table(tblAcct).Lookup(k)
			if !ok {
				t.Fatalf("setup: key %d missing", k)
			}
			offs[k] = off
		}
		liveWord := memstore.LockWord(2)
		wk2 := w.engines[2].NewWorker(0)
		if _, ok, _ := wk2.QP(1).CAS(offs[4]+memstore.LockOff, 0, liveWord); !ok {
			t.Fatal("setup live lock failed")
		}

		// Node 0 writes all four records in one transaction: the lock batch
		// wins 1, 7, 10 and fails on 4 (live holder, no passive release).
		wk0 := w.engines[0].NewWorker(1)
		tx := wk0.Begin()
		for _, k := range []uint64{1, 4, 7, 10} {
			v, err := tx.Read(tblAcct, k)
			if err != nil {
				t.Fatalf("read %d: %v", k, err)
			}
			if err := tx.Write(tblAcct, k, encBal(decBal(v)+1)); err != nil {
				t.Fatal(err)
			}
		}
		err := tx.Commit()
		var te *Error
		if !errors.As(err, &te) || te.Reason != AbortLockFailed {
			t.Fatalf("%s: commit against live lock: %v", proto, err)
		}
		if te.Stage != StageLock {
			t.Errorf("%s: abort stage %s, want %s", proto, StageName(te.Stage), StageName(StageLock))
		}
		// Every OTHER lock word must be zero again; the live holder's stays.
		for _, k := range []uint64{1, 7, 10} {
			if got := m1.Eng.Load64NonTx(offs[k] + memstore.LockOff); got != 0 {
				t.Fatalf("%s: lock on key %d leaked: %#x", proto, k, got)
			}
		}
		if got := m1.Eng.Load64NonTx(offs[4] + memstore.LockOff); got != liveWord {
			t.Fatalf("%s: live holder's lock clobbered: %#x", proto, got)
		}
		// After the holder releases, the same transaction commits.
		if _, ok, _ := wk2.QP(1).CAS(offs[4]+memstore.LockOff, liveWord, 0); !ok {
			t.Fatal("release live lock failed")
		}
		if err := wk0.Run(func(tx *Txn) error {
			for _, k := range []uint64{1, 4, 7, 10} {
				v, err := tx.Read(tblAcct, k)
				if err != nil {
					return err
				}
				if err := tx.Write(tblAcct, k, encBal(decBal(v)+1)); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	})
}

// TestProtocolROVerbAccounting pins the protocol-matrix headline: for a
// transaction that reads two remote records and writes one local record,
// drtmr charges 3 one-sided verbs per read-only record (C.1 lock CAS + C.2
// validation READ + C.6 unlock CAS) while farm charges 1 (the validation
// READ) — and NEITHER wakes a remote CPU at a pure read participant.
func TestProtocolROVerbAccounting(t *testing.T) {
	want := map[string]uint64{"drtmr": 6, "farm": 2}
	forEachProtocol(t, func(t *testing.T, proto string) {
		w := newWorld(t, 3, 1, htm.Config{})
		w.setProtocol(proto)
		w.load(t, 6, 100)
		wk := w.engines[0].NewWorker(0)
		if err := wk.Run(func(tx *Txn) error {
			if _, err := tx.Read(tblAcct, 1); err != nil { // node 1: read-only
				return err
			}
			if _, err := tx.Read(tblAcct, 2); err != nil { // node 2: read-only
				return err
			}
			v, err := tx.Read(tblAcct, 0) // local write target
			if err != nil {
				return err
			}
			return tx.Write(tblAcct, 0, encBal(decBal(v)+1))
		}); err != nil {
			t.Fatal(err)
		}
		if wexp, ok := want[proto]; ok && wk.Stats.ROVerbs != wexp {
			t.Errorf("%s: ROVerbs = %d, want %d", proto, wk.Stats.ROVerbs, wexp)
		}
		if wk.Stats.ROWakeups != 0 {
			t.Errorf("%s: ROWakeups = %d, want 0", proto, wk.Stats.ROWakeups)
		}
	})
}
