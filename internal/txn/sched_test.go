package txn

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"drtmr/internal/htm"
	"drtmr/internal/memstore"
	"drtmr/internal/sim"
)

// TestCoroutineAblationExact pins the pure-refactor contract: driving a
// worker through RunCoroutines(1) must leave the virtual clock and EVERY
// stats counter bit-identical to the classic sequential loop.
func TestCoroutineAblationExact(t *testing.T) {
	const iters = 30
	run := func(viaSched bool) (int64, Stats) {
		w := newWorld(t, 3, 1, htm.Config{})
		w.load(t, 12, 1000)
		wk := w.engines[0].NewWorker(0)
		body := func() {
			for i := 0; i < iters; i++ {
				if err := runEightRemoteTransfer(wk); err != nil {
					t.Error(err)
					return
				}
			}
		}
		if viaSched {
			wk.RunCoroutines(1, func(int) { body() })
		} else {
			body()
		}
		return wk.Clk.Now(), wk.Stats
	}
	clkPlain, stPlain := run(false)
	clkCoro, stCoro := run(true)
	if clkPlain != clkCoro {
		t.Errorf("virtual clock differs: plain=%d coro(1)=%d", clkPlain, clkCoro)
	}
	if !reflect.DeepEqual(stPlain, stCoro) {
		t.Errorf("stats differ:\nplain   %+v\ncoro(1) %+v", stPlain, stCoro)
	}
	if stCoro.CoYields != 0 || stCoro.CoOverlapNanos != 0 || stCoro.CoMaxInFlight != 0 {
		t.Errorf("N=1 recorded overlap activity: %+v", stCoro)
	}
}

// TestCoroutineOverlapSpeedup pins the tentpole claim: with 4 in-flight
// transaction contexts per worker, the 8-remote-record distributed commit
// workload runs at >= 1.5x the per-worker virtual-time throughput of the
// one-transaction-per-thread baseline (and the N=1 measurement itself is
// exactly the doorbell-batched baseline).
func TestCoroutineOverlapSpeedup(t *testing.T) {
	n1 := coroCommitVirtualNanos(t, 1, 40)
	base := commitVirtualNanos(t, false, 40)
	if n1 != base {
		t.Errorf("N=1 ablation not bit-identical: %.0f vs baseline %.0f virtual-ns/commit", n1, base)
	}
	n4 := coroCommitVirtualNanos(t, 4, 10)
	t.Logf("virtual ns/commit: N=1 %.0f, N=4 %.0f (%.2fx)", n1, n4, n1/n4)
	if n4 <= 0 {
		t.Fatal("N=4 run charged no virtual time")
	}
	if n1 < 1.5*n4 {
		t.Fatalf("coroutine overlap speedup %.2fx < 1.5x (N=1 %.0fns, N=4 %.0fns)", n1/n4, n1, n4)
	}
}

// TestCoroutineOverlapCounters checks the overlap instrumentation: an
// overlapped run must record yields, hidden round-trip time, and an
// in-flight peak above 1 (overlap happened) and at most N (each context
// has at most one outstanding doorbell).
func TestCoroutineOverlapCounters(t *testing.T) {
	w := newWorld(t, 3, 1, htm.Config{})
	w.load(t, 48, 1000)
	wk := w.engines[0].NewWorker(0)
	wk.RunCoroutines(4, func(slot int) {
		for i := 0; i < 5; i++ {
			if err := runEightRemoteTransferAt(wk, uint64(12*slot)); err != nil {
				t.Error(err)
				return
			}
		}
	})
	st := wk.Stats
	if st.Committed != 20 {
		t.Fatalf("committed %d, want 20", st.Committed)
	}
	if st.CoYields == 0 {
		t.Error("no yields recorded")
	}
	if st.CoOverlapNanos == 0 {
		t.Error("no round-trip time was hidden")
	}
	if st.CoMaxInFlight < 2 || st.CoMaxInFlight > 4 {
		t.Errorf("in-flight peak %d, want 2..4", st.CoMaxInFlight)
	}
}

// TestYieldInsideHTMPanics injects a yield attempt inside an open HTM
// region: the scheduler must refuse it loudly (speculative state cannot
// survive a context switch).
func TestYieldInsideHTMPanics(t *testing.T) {
	w := newWorld(t, 2, 1, htm.Config{})
	w.load(t, 2, 100)
	wk := w.engines[0].NewWorker(0)
	panicked := make(chan any, 1)
	wk.RunCoroutines(2, func(slot int) {
		if slot != 0 {
			return
		}
		func() {
			defer func() { panicked <- recover() }()
			wk.htmBegin()
			defer wk.htmEnd()
			//drtmr:allow htmregion deliberately trips the runtime yield-in-HTM assert under test
			wk.yield()
		}()
	})
	if p := <-panicked; p == nil {
		t.Fatal("yield inside an HTM region did not panic")
	}
}

// TestCoroutineBankInvariant runs contending coroutine-scheduled workers on
// all machines and checks conservation: intra-worker interleaving (several
// in-flight transactions sharing one worker's QPs and lock word) must not
// lose or invent money.
func TestCoroutineBankInvariant(t *testing.T) {
	const keys = 24
	w := newWorld(t, 3, 1, htm.Config{})
	w.load(t, keys, 1000)
	var wg sync.WaitGroup
	for n := 0; n < 3; n++ {
		wk := w.engines[n].NewWorker(n)
		wg.Add(1)
		go func(wk *Worker, seed uint64) {
			defer wg.Done()
			wk.RunCoroutines(4, func(slot int) {
				rng := sim.NewRand(seed*131 + uint64(slot) + 1)
				for i := 0; i < 40; i++ {
					from := uint64(rng.Intn(keys))
					to := uint64(rng.Intn(keys))
					if from == to {
						continue
					}
					_ = wk.Run(func(tx *Txn) error {
						fv, err := tx.Read(tblAcct, from)
						if err != nil {
							return err
						}
						tv, err := tx.Read(tblAcct, to)
						if err != nil {
							return err
						}
						if err := tx.Write(tblAcct, from, encBal(decBal(fv)-1)); err != nil {
							return err
						}
						return tx.Write(tblAcct, to, encBal(decBal(tv)+1))
					})
				}
			})
		}(wk, uint64(n))
	}
	wg.Wait()
	if got, want := w.totalOnPrimaries(keys), uint64(keys*1000); got != want {
		t.Fatalf("money not conserved: total %d, want %d", got, want)
	}
}

// TestDanglingCoroutineLockReleased extends §5.2's passive-release coverage
// to the coroutine scheduler: a coroutine acquires C.1 locks through one
// batched doorbell, yields, and its machine dies before it ever resumes to
// unlock. The locks must be cleared by whoever trips over them after the
// reconfiguration — including a coroutine-scheduled worker.
func TestDanglingCoroutineLockReleased(t *testing.T) {
	w := newWorld(t, 3, 3, htm.Config{})
	w.load(t, 6, 100)
	m0 := w.c.Machines[0]
	offA, _ := m0.Store.Table(tblAcct).Lookup(0)
	offB, _ := m0.Store.Table(tblAcct).Lookup(3)

	// A coroutine on node 2 locks two node-0 records (keys 0 and 3, both
	// shard 0) via the batched C.1 doorbell — remote reads and the lock
	// batch all yield through the scheduler — then returns mid-pipeline,
	// modelling a context that dies parked at a yield point.
	wk2 := w.engines[2].NewWorker(0)
	locked := false
	wk2.RunCoroutines(2, func(slot int) {
		if slot != 0 {
			return
		}
		tx := wk2.Begin()
		for _, k := range []uint64{0, 3} {
			v, err := tx.Read(tblAcct, k)
			if err != nil {
				t.Error(err)
				return
			}
			if err := tx.Write(tblAcct, k, encBal(decBal(v)+1)); err != nil {
				t.Error(err)
				return
			}
		}
		if err := tx.resolveWriteOffsets(); err != nil {
			t.Error(err)
			return
		}
		if err := tx.lockRemote(tx.remoteLockSet()); err != nil {
			t.Error(err)
			return
		}
		locked = true
	})
	if !locked {
		t.Fatal("setup: coroutine never acquired the locks")
	}
	want := memstore.LockWord(2)
	for _, off := range []uint64{offA, offB} {
		if got := m0.Eng.Load64NonTx(off + memstore.LockOff); got != want {
			t.Fatalf("setup: lock word %#x, want %#x", got, want)
		}
	}

	w.c.Kill(2)
	deadline := time.Now().Add(2 * time.Second)
	for w.c.Coord.Current().IsMember(2) {
		if time.Now().After(deadline) {
			t.Fatal("no reconfig")
		}
		time.Sleep(5 * time.Millisecond)
	}
	for m0.Config().IsMember(2) || w.c.Machines[1].Config().IsMember(2) {
		time.Sleep(2 * time.Millisecond)
	}

	// A coroutine-scheduled worker on node 1 commits against both records:
	// its C.1 CAS finds the dead owner's word, passively releases it, and
	// the retry batch acquires.
	wk1 := w.engines[1].NewWorker(1)
	var runErr error
	wk1.RunCoroutines(2, func(slot int) {
		if slot != 0 {
			return
		}
		runErr = wk1.Run(func(tx *Txn) error {
			for _, k := range []uint64{0, 3} {
				v, err := tx.Read(tblAcct, k)
				if err != nil {
					return err
				}
				if err := tx.Write(tblAcct, k, encBal(decBal(v)+7)); err != nil {
					return err
				}
			}
			return nil
		})
	})
	if runErr != nil {
		t.Fatal(runErr)
	}
	for _, off := range []uint64{offA, offB} {
		if got := m0.Eng.Load64NonTx(off + memstore.LockOff); got != 0 {
			t.Fatalf("dangling lock still held: %#x", got)
		}
	}
	if got := decBal(m0.Store.Table(tblAcct).ReadValueNonTx(offA)); got != 107 {
		t.Fatalf("write did not land: balance %d, want 107", got)
	}
}
