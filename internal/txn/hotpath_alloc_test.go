package txn

import (
	"testing"
	"time"

	"drtmr/internal/htm"
	"drtmr/internal/obs"
	"drtmr/internal/sim"
)

// requireNoAlloc pins fn to zero allocations per call — the runtime half of
// the hotalloc analyzer's static guarantee on //drtmr:hotpath functions.
func requireNoAlloc(t *testing.T, name string, fn func()) {
	t.Helper()
	if allocs := testing.AllocsPerRun(200, fn); allocs != 0 {
		t.Errorf("%s allocates %v times per call, want 0", name, allocs)
	}
}

// TestHotpathAllocFree drives every //drtmr:hotpath-annotated recording and
// clock primitive and checks AllocsPerRun == 0, so the static hotalloc
// verdict and the runtime behaviour cannot drift apart.
func TestHotpathAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation perturbs allocation counts")
	}

	var h obs.Histogram
	requireNoAlloc(t, "obs.Histogram.Record", func() { h.Record(1234) })
	requireNoAlloc(t, "obs.Histogram.LiveRecord", func() { h.LiveRecord(1234) })

	th := obs.NewTypedHist("payment", "neworder")
	requireNoAlloc(t, "obs.TypedHist.Record", func() { th.Record(1, 99) })
	requireNoAlloc(t, "obs.TypedHist.LiveRecord", func() { th.LiveRecord(0, 99) })

	var am obs.AbortMatrix
	requireNoAlloc(t, "obs.AbortMatrix.Record", func() { am.Record(2, 3, 1) })
	requireNoAlloc(t, "obs.AbortMatrix.LiveRecord", func() { am.LiveRecord(2, 3, 1) })

	requireNoAlloc(t, "obs.BucketIndex", func() { _ = obs.BucketIndex(1 << 40) })

	var clk sim.Clock
	requireNoAlloc(t, "sim.Clock.Advance", func() { clk.Advance(time.Microsecond) })
	requireNoAlloc(t, "sim.Clock.AdvanceTo", func() { clk.AdvanceTo(clk.Now() + 10) })
	requireNoAlloc(t, "sim.Clock.WaitUntil", func() { clk.WaitUntil(clk.Now() + 10) })

	var res sim.Resource
	now := int64(0)
	requireNoAlloc(t, "sim.Resource.Use", func() {
		now = res.Use(now, 100*time.Nanosecond)
	})
}

// TestCoroutineHandoffAllocFree pins the steady-state yield/handoff cycle:
// once the contexts exist, parking and resuming them must not allocate —
// neither in Worker.yield nor in RunCoroutines' ring dispatch (pop-by-
// reslice there used to reallocate the run queue on every handoff).
func TestCoroutineHandoffAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation perturbs allocation counts")
	}
	w := newWorld(t, 1, 1, htm.Config{})
	wk := w.engines[0].NewWorker(0)
	done := false
	var allocs float64
	wk.RunCoroutines(2, func(slot int) {
		if slot == 0 {
			allocs = testing.AllocsPerRun(200, func() { wk.yield() })
			done = true
			return
		}
		for !done {
			wk.yield()
		}
	})
	if allocs != 0 {
		t.Errorf("yield/handoff allocates %v times per cycle, want 0", allocs)
	}
}
