package txn

import (
	"drtmr/internal/obs"
	"drtmr/internal/rdma"
)

// Cooperative coroutine scheduler.
//
// A real DrTM+R-class worker thread does not sit idle for the fabric
// round-trip at every doorbell: it multiplexes several in-flight
// transactions with cheap coroutines (the FaRM-lineage technique; see the
// RDMA concurrency-control framework survey), switching to another
// transaction whenever one posts verbs and resuming it when the completion
// arrives. RunCoroutines models exactly that on one simulated worker:
//
//   - Each of the N logical transaction contexts is a goroutine, but the
//     scheduler enforces STRICT HANDOFF — exactly one context runs at any
//     instant, and control passes only at explicit yield points — so all
//     worker state (clock, stats, QPs, rng) stays single-threaded and the
//     interleaving is cooperative, like userspace coroutines on one core.
//   - The yield points are the RDMA doorbells (Worker.await) and retry
//     backoffs. Lock words held across a yield are fine — they are real
//     protocol state, exactly as when two independent worker threads
//     contend. HTM regions must NEVER span a yield: speculative hardware
//     state does not survive a context switch, so yield asserts htmDepth
//     is zero (see htmBegin/htmEnd).
//   - Virtual-time accounting: a doorbell's Completion carries its fabric
//     completion time; await parks the posting context, lets others run,
//     and on resume advances the clock only by the portion of the
//     round-trip not already covered (sim.Clock.WaitUntil). Overlapped
//     round-trips are charged once, while NIC queueing still accumulates
//     per verb — overlap hides latency, never bytes.
//
// N = 1 bypasses the scheduler entirely and runs fn(0) inline: byte-for-
// byte the one-transaction-per-thread behaviour, kept as the ablation
// baseline (Engine.CoroutinesPerWorker = 1).

// coro is one logical transaction context multiplexed on a worker.
type coro struct {
	slot   int
	resume chan struct{}
	done   bool
}

// scheduler owns a worker's run queue while RunCoroutines is active.
type scheduler struct {
	park     chan *coro // running coroutine hands itself back here
	inFlight int        // parked contexts with an outstanding round-trip
}

// RunCoroutines multiplexes fn over n cooperative transaction contexts on
// this worker; fn(slot) typically loops issuing transactions via Run. It
// returns when every context's fn has returned. n <= 1 calls fn(0) inline
// with no scheduler — the exact classic behaviour.
func (w *Worker) RunCoroutines(n int, fn func(slot int)) {
	if n <= 1 {
		fn(0)
		return
	}
	if w.cur != nil {
		panic("txn: nested RunCoroutines on one worker")
	}
	s := &scheduler{park: make(chan *coro)}
	w.sched = s
	runq := make([]*coro, 0, n)
	for i := 0; i < n; i++ {
		c := &coro{slot: i, resume: make(chan struct{})}
		runq = append(runq, c)
		go func() {
			<-c.resume
			fn(c.slot)
			c.done = true
			s.park <- c
		}()
	}
	// Round-robin dispatch with strict handoff: resume one context, then
	// block until it parks itself (at a yield point or by finishing). runq
	// is a fixed ring — pop-from-front via reslicing would shrink the cap
	// and make every handoff's re-enqueue reallocate.
	head, queued := 0, n
	for live := n; live > 0; {
		c := runq[head]
		head = (head + 1) % n
		queued--
		w.cur = c
		c.resume <- struct{}{}
		<-s.park
		if c.done {
			live--
		} else {
			runq[(head+queued)%n] = c
			queued++
		}
	}
	w.cur = nil
	w.sched = nil
}

// yield parks the running coroutine and hands the worker to the next ready
// one; a no-op without a scheduler. Yielding inside an HTM region is a
// protocol bug — speculative state cannot survive a context switch — so the
// scheduler asserts against it.
//
//drtmr:hotpath
func (w *Worker) yield() {
	c := w.cur
	if c == nil {
		return
	}
	if w.htmDepth > 0 {
		panic("txn: coroutine yielded inside an HTM region")
	}
	s := w.sched
	s.inFlight++
	if uint64(s.inFlight) > w.Stats.CoMaxInFlight {
		w.Stats.CoMaxInFlight = uint64(s.inFlight)
	}
	var parked int64
	if w.Rec != nil {
		parked = w.Clk.Now()
	}
	s.park <- c
	<-c.resume
	w.sched.inFlight--
	if w.Rec != nil {
		// The span park→resume covers the virtual time other in-flight
		// transactions consumed on this worker's (shared) clock while this
		// context was parked; Arg carries the coroutine slot.
		w.Rec.Record(obs.EvYield, 0, 0, uint32(c.slot), 0, parked, w.Clk.Now())
	}
}

// await settles an asynchronous doorbell: under the scheduler it yields so
// other in-flight transactions run during the fabric round-trip, then
// charges only the uncovered remainder; without a scheduler it degenerates
// to Completion.Wait — the exact synchronous accounting.
//
//drtmr:hotpath
func (w *Worker) await(c *rdma.Completion) error {
	if w.gate != nil {
		//drtmr:allow hotalloc gate is the deterministic-mode worker-switch hook, nil on every measured configuration; the hook itself must not allocate but that is its installer's contract
		w.gate() // deterministic mode: doorbells are worker-switch points too
	}
	if w.cur == nil {
		return c.Wait()
	}
	issued := w.Clk.Now()
	w.yield()
	stalled := w.Clk.WaitUntil(c.End())
	w.Stats.CoYields++
	if flight := c.End() - issued; flight > 0 {
		w.Stats.CoStallNanos += uint64(stalled)
		if hidden := flight - stalled; hidden > 0 {
			w.Stats.CoOverlapNanos += uint64(hidden)
		}
	}
	return c.Err()
}

// htmBegin/htmEnd bracket a commit-protocol HTM region on this worker so
// the coroutine scheduler can assert that no region ever spans a yield
// point.
//
//drtmr:hotpath
func (w *Worker) htmBegin() { w.htmDepth++ }

//drtmr:hotpath
func (w *Worker) htmEnd() { w.htmDepth-- }
