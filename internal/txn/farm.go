package txn

import (
	"sort"

	"drtmr/internal/memstore"
	"drtmr/internal/rdma"
)

// farmProto is a FaRM-style commit pipeline (FaRM, SOSP'15) behind the
// CommitProtocol interface: instead of locking the read set and relying on
// an HTM region plus seqlock makeup, it locks ONLY the write set, validates
// every read with a one-sided header READ under those locks, and makes the
// transaction durable with doorbell-batched RDMA WRITE appends to the
// per-server redo logs (Txn.replicate reuses internal/oplog's two-phase
// batch append) BEFORE any record becomes visible. Consequences:
//
//	F.1 lock write set only: RDMA CAS per unique written record, local
//	    records included via loop-back CAS (HCA atomicity, as §6.2's
//	    fallback argues) — read-set records are never locked, so a record
//	    another transaction only reads costs one verb here, not three.
//	F.2 validate: one doorbell batch of header READs over the remote read
//	    set plus base fetches for blind remote writes; local records read
//	    memory directly. Validation REJECTS records locked by anyone else
//	    (same-node transactions included: the lock word only encodes the
//	    owner machine, so "our" word proves ownership only for records our
//	    own write set covers). This lock check is what closes the cycle two
//	    transactions could otherwise build by each reading the other's
//	    write target — seq checks alone pass for both. A foreign lock from
//	    a dead machine is passively released here (§5.2's recovery hook:
//	    farm never CASes read-set records, so without this a dangling lock
//	    on a read target would starve every farm reader forever).
//	F.3 log: replicate the full write set to every backup of every written
//	    shard plus remote written primaries. The log is durable before any
//	    install, so there is no odd-seq "uncommittable" window at all:
//	    installs go directly to the final even sequence number.
//	F.4 install: inserts/deletes apply at their final seq (committable
//	    immediately — the log already guarantees redo); local updates
//	    install non-transactionally under the held lock (the §6.1 fallback
//	    step-5 argument: execution-phase readers check the lock and back
//	    off, committers abort on it, strong atomicity kills racing HTM
//	    readers); remote updates write back through the shared C.5 batch.
//	F.5 unlock the write set; then MarkCommitted watermarks the rings.
//
// There is no commit-phase HTM region, hence no HTM-capacity fallback path:
// the write-set install is plain stores under locks. Read-only transactions
// share §4.5's lock-free protocol with drtmrProto (Txn.commitReadOnly) —
// sound here for the same reason: writers bump the sequence number before
// unlocking, so a seq-stable read pair brackets any writer.
type farmProto struct{}

// Name implements CommitProtocol.
func (farmProto) Name() string { return "farm" }

// ReadOnlyCommit implements CommitProtocol: the shared lock-free read-only
// validation.
func (farmProto) ReadOnlyCommit(tx *Txn) error { return tx.commitReadOnly() }

// Commit implements CommitProtocol: the F.1–F.5 pipeline above.
func (proto farmProto) Commit(tx *Txn) error {
	w := tx.w

	// --- F.1: lock the write set (only).
	tx.stage = StageLock
	if err := tx.resolveWriteOffsets(); err != nil {
		return err
	}
	locks, err := proto.writeLockSet(tx)
	if err != nil {
		return err
	}
	if err := tx.lockRemote(locks); err != nil {
		return err
	}
	unlock := func() { tx.unlockRemote(locks) }

	// --- F.2: validate reads, fetch write bases, all under the locks.
	tx.stage = StageValidate
	if err := proto.validate(tx); err != nil {
		unlock()
		return err
	}

	// --- F.3: redo-log append. Durable before anything becomes visible,
	// so nothing after this point may abort the transaction.
	tx.stage = StageLog
	var toks []ringToken
	if w.E.Replicated {
		toks = tx.replicate()
	}

	// --- F.4: install. Inserts land directly at their final committable
	// seq when replicated (redo is already durable; drtmrProto's odd
	// initial seq exists only because ITS log write happens after apply).
	tx.stage = StageWriteBack
	initial := uint64(0)
	if w.E.Replicated {
		initial = tx.finalSeq(0)
	}
	tx.applyInsertsDeletesSeq(initial)
	proto.installLocal(tx)
	tx.writeBackRemote()

	// --- F.5: unlock.
	tx.stage = StageUnlock
	unlock()

	for _, tk := range toks {
		w.E.M.LogWriter(tk.node).MarkCommitted(tk.tok.End())
	}
	return nil
}

// writeLockSet collects unique record addresses from the update/delta/delete
// write set — local records included, addressed as this machine (loop-back
// CAS). Read-set records are deliberately absent: that asymmetry against
// drtmrProto's remoteLockSet is the protocol's whole point.
func (proto farmProto) writeLockSet(tx *Txn) ([]lockTarget, error) {
	w := tx.w
	self := w.E.M.ID
	seen := make(map[lockTarget]struct{}, len(tx.ws))
	var out []lockTarget
	add := func(node rdma.NodeID, off uint64) {
		t := lockTarget{node: node, off: off}
		if _, dup := seen[t]; !dup {
			seen[t] = struct{}{}
			out = append(out, t)
		}
	}
	for i := range tx.ws {
		e := &tx.ws[i]
		if e.kind == wsInsert {
			continue
		}
		if e.local && e.off == 0 {
			tbl := w.E.M.Store.Table(e.table)
			off, ok := tbl.Lookup(e.key)
			if !ok {
				if e.kind == wsDelete {
					continue // deleting a missing record is a no-op
				}
				return nil, tx.abortOn(self, e.table, e.key, AbortValidate, "farm: local record vanished")
			}
			e.off = off
		}
		if e.off == 0 {
			continue
		}
		if e.local {
			add(self, e.off)
		} else {
			add(e.node, e.off)
		}
	}
	// Sorted acquisition order, as everywhere locks are taken in batches.
	sort.Slice(out, func(i, j int) bool {
		if out[i].node != out[j].node {
			return out[i].node < out[j].node
		}
		return out[i].off < out[j].off
	})
	return out, nil
}

// validate is F.2: every read-set record re-checked (lock word, incarnation,
// sequence number) and every write base fetched, all under the F.1 locks.
// Remote header READs share one doorbell batch; local records read memory
// directly, charged at the validation rate.
func (proto farmProto) validate(tx *Txn) error {
	w := tx.w
	self := w.E.M.ID
	myWord := memstore.LockWord(uint32(self))

	b := w.newBatch()
	rsPend := make([]*rdma.Pending, len(tx.rs))
	for i := range tx.rs {
		if !tx.rs[i].local {
			rsPend[i] = b.PostRead(w.QP(tx.rs[i].node), tx.rs[i].off, 24)
		}
	}
	var wsIdx []int
	var wsPend []*rdma.Pending
	for i := range tx.ws {
		e := &tx.ws[i]
		if e.local || (e.kind != wsUpdate && e.kind != wsDelta) || e.off == 0 {
			continue
		}
		if tx.findRS(e.table, e.key) != nil {
			continue // base comes from the read-set header below
		}
		// Deltas fetch the whole record (as in C.2): the final image is the
		// current value plus the pending adds, folded under the F.1 lock.
		n := 24
		if e.kind == wsDelta {
			n = w.E.M.Store.Table(e.table).RecBytes
		}
		wsIdx = append(wsIdx, i)
		wsPend = append(wsPend, b.PostRead(w.QP(e.node), e.off, n))
	}
	_ = tx.execBatch(PhaseValidate, b)

	var hdr [24]byte
	for i := range tx.rs {
		r := &tx.rs[i]
		var inc, cur, lockW uint64
		site := self
		skip := w.E.Mut.SkipLocalValidate
		if r.local {
			h := w.E.M.Eng.ReadNonTx(r.off, 24, hdr[:])
			inc, cur, lockW = memstore.RecInc(h), memstore.RecSeq(h), memstore.RecLock(h)
			w.Clk.Advance(w.E.Costs.PerValidate)
		} else {
			p := rsPend[i]
			if p.Err != nil {
				return tx.abortAt(r.node, AbortNodeDead, "farm validate: %v", p.Err)
			}
			inc, cur, lockW = memstore.RecInc(p.Data), memstore.RecSeq(p.Data), memstore.RecLock(p.Data)
			site = r.node
			skip = w.E.Mut.SkipRemoteValidate
			if tx.findWS(r.table, r.key) == nil {
				w.Stats.ROVerbs++ // validation READ on a record we only read
			}
		}
		// The lock check: our own word proves ownership only where our write
		// set covers the record (the word encodes the machine, not the
		// transaction — a sibling worker's lock looks identical).
		ownWS := lockW == myWord && tx.findWS(r.table, r.key) != nil
		if lockW != 0 && !ownWS && !skip {
			// Recovery hook: a dangling lock from a machine outside the
			// configuration is passively released so the NEXT attempt can
			// pass — farm never CASes read-set records itself.
			w.maybeReleaseDangling(tx.cfg, site, r.off, lockW)
			return tx.abortOn(site, r.table, r.key, AbortLocked, "farm: read-set record locked by %#x", lockW)
		}
		if inc != r.inc && !skip && !w.E.Mut.SkipIncCheck {
			return tx.abortOn(site, r.table, r.key, AbortValidate, "farm: inc changed")
		}
		if !tx.seqValidates(r.seq, cur) && !skip {
			return tx.abortOn(site, r.table, r.key, AbortValidate, "farm: seq %d -> %d", r.seq, cur)
		}
		// Record the authoritative base for co-located writes; the value
		// just validated current, so deltas fold over the execution copy.
		if e := tx.findWS(r.table, r.key); e != nil && (e.kind == wsUpdate || e.kind == wsDelta) {
			e.baseSeq = cur
			e.finSeq = tx.finalSeq(cur)
			if !e.local {
				e.inc = inc
				e.haveInc = true
			}
			if e.kind == wsDelta {
				e.materializeFrom(r.val)
			}
		}
	}
	// Local blind writes read memory directly (the record is locked: the
	// header cannot move under us).
	for i := range tx.ws {
		e := &tx.ws[i]
		if (e.kind != wsUpdate && e.kind != wsDelta) || e.off == 0 || !e.local {
			continue
		}
		if tx.findRS(e.table, e.key) != nil {
			continue
		}
		tbl := w.E.M.Store.Table(e.table)
		n := 24
		if e.kind == wsDelta {
			n = tbl.RecBytes
		}
		h := w.E.M.Eng.ReadNonTx(e.off, n, hdr[:0])
		cur := memstore.RecSeq(h)
		if w.E.Replicated && !memstore.SeqIsCommittable(cur) {
			// Defensive (Table 4's R_WS rule): pure farm never leaves odd
			// seqs, but a mixed store may.
			return tx.abortOn(self, e.table, e.key, AbortValidate, "farm: local ws uncommittable")
		}
		e.baseSeq = cur
		e.finSeq = tx.finalSeq(cur)
		if e.kind == wsDelta {
			e.materializeFrom(memstore.GatherValue(h, tbl.Spec.ValueSize))
		}
	}
	// Blind remote writes: base fetched under the lock through the batch.
	for j, i := range wsIdx {
		e := &tx.ws[i]
		p := wsPend[j]
		if p.Err != nil {
			return tx.abortAt(e.node, AbortNodeDead, "farm ws fetch: %v", p.Err)
		}
		cur := memstore.RecSeq(p.Data)
		if w.E.Replicated && !memstore.SeqIsCommittable(cur) {
			return tx.abortOn(e.node, e.table, e.key, AbortValidate, "farm: remote ws uncommittable")
		}
		e.baseSeq = cur
		e.finSeq = tx.finalSeq(cur)
		e.inc = memstore.RecInc(p.Data)
		e.haveInc = true
		if e.kind == wsDelta {
			if !memstore.VersionsConsistent(p.Data) {
				return tx.abortOn(e.node, e.table, e.key, AbortValidate, "farm: delta base torn")
			}
			tbl := w.E.M.Store.Table(e.table)
			e.materializeFrom(memstore.GatherValue(p.Data, tbl.Spec.ValueSize))
		}
	}
	return nil
}

// installLocal is F.4's local half: install each local update directly at
// its final committable sequence number with a plain store — no HTM region,
// no odd-seq window. Safe because the record is locked (F.1): execution
// readers check the lock and back off, local committers' C.4 aborts on it,
// remote committers cannot take it, and the engine's strong atomicity
// aborts any in-flight HTM reader the store races with.
func (proto farmProto) installLocal(tx *Txn) {
	w := tx.w
	for i := range tx.ws {
		e := &tx.ws[i]
		if !e.local || (e.kind != wsUpdate && e.kind != wsDelta) || e.off == 0 {
			continue
		}
		tbl := w.E.M.Store.Table(e.table)
		inc := tx.localInc(e.off)
		e.inc = inc
		e.haveInc = true // history record: local updates bypass the C.2-style fetch
		img := memstore.BuildRecordImage(tbl.Spec.ValueSize, e.buf, inc, e.finSeq)
		w.E.M.Eng.WriteNonTx(e.off+8, img[8:])
	}
}
