//go:build !race

package txn

const raceEnabled = false
