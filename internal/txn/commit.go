package txn

import (
	"errors"
	"sort"
	"time"

	"drtmr/internal/htm"
	"drtmr/internal/memstore"
	"drtmr/internal/oplog"
	"drtmr/internal/rdma"
)

// htmRetries bounds commit-phase HTM attempts before the fallback handler
// (§6.1). The paper reports the fallback firing on <1% of transactions.
const htmRetries = 16

// lockTarget is one remote record to lock in C.1 (deduplicated by address).
type lockTarget struct {
	node rdma.NodeID
	off  uint64
}

// drtmrProto is the paper's hybrid HTM+RDMA commit pipeline (Fig 7) behind
// the CommitProtocol interface — the default protocol. It locks BOTH read
// and write sets remotely (local HTM protection does not start until C.3),
// validates under those locks, runs one HTM region over local metadata, and
// under replication installs local updates at an odd "uncommittable"
// sequence number until the log entries are durable (§5.1's optimistic
// replication), flipping them even in R.2.
type drtmrProto struct{}

// Name implements CommitProtocol.
func (drtmrProto) Name() string { return DefaultProtocol }

// ReadOnlyCommit implements CommitProtocol: §4.5's lock-free protocol.
func (drtmrProto) ReadOnlyCommit(tx *Txn) error { return tx.commitReadOnly() }

// Commit runs the six-step commit phase (Fig 7) plus optimistic replication
// (§5.1):
//
//	C.1 lock remote read+write sets with RDMA CAS
//	C.2 validate remote read set (and fetch base seqs for remote writes)
//	C.3 validate local read set   ┐ one HTM region
//	C.4 update local write set    ┘ (fallback handler after retries)
//	    apply inserts/deletes (local + shipped to hosts)
//	R.1 write full-write-set log entries to every replica ring
//	R.2 makeup: flip local records to committable (+1 → even)
//	C.5 write back remote writes (committable seq) with RDMA WRITE
//	C.6 unlock remote records with RDMA CAS
func (proto drtmrProto) Commit(tx *Txn) error {
	w := tx.w

	tx.stage = StageLock
	if err := tx.resolveWriteOffsets(); err != nil {
		return err
	}

	// --- C.1: lock remote records (read and write sets both: §4.4
	// explains why even reads are locked — local HTM protection doesn't
	// start until C.3).
	locks := tx.remoteLockSet()
	// Read-only-participant accounting: each lock target the write set does
	// not cover costs this protocol a C.1 lock CAS and a C.6 unlock CAS on a
	// record the transaction merely read (C.2's validation READ is counted
	// at its own site).
	for _, lt := range locks {
		if !tx.writesAt(lt.node, lt.off) {
			w.Stats.ROVerbs += 2
		}
	}
	if err := tx.lockRemote(locks); err != nil {
		return err
	}
	unlock := func() { tx.unlockRemote(locks) }

	// --- C.2: validate remote reads; fetch base seqs of remote writes.
	tx.stage = StageValidate
	if err := proto.validateRemote(tx); err != nil {
		unlock()
		return err
	}

	// --- C.3 + C.4: HTM region over local metadata.
	tx.stage = StageLocalHTM
	if err := proto.localHTMCommit(tx); err != nil {
		var te *Error
		if errors.As(err, &te) && te.Reason == AbortHTM {
			// Fallback handler (§6.1): locking protocol without HTM.
			// It owns the rest of the pipeline, including unlock.
			w.Stats.Fallbacks++
			tx.stage = StageFallback
			return proto.fallbackCommit(tx, locks)
		}
		unlock()
		return err
	}

	// The transaction is now locally committed; nothing below may abort
	// it (only degrade around failed machines).

	// Inserts and deletes: apply locally / ship to hosts (§4.3).
	tx.applyInsertsDeletes()

	// --- R.1: replication.
	tx.stage = StageLog
	var toks []ringToken
	if w.E.Replicated {
		toks = tx.replicate()
	}

	// --- R.2: makeup — local records become committable.
	if w.E.Replicated {
		proto.makeupLocal(tx)
	}

	// --- C.5: write back remote updates with their final seq.
	tx.stage = StageWriteBack
	tx.writeBackRemote()

	// --- C.6: unlock.
	tx.stage = StageUnlock
	unlock()

	// Truncation watermark: these log entries' transactions are complete.
	for _, tk := range toks {
		w.E.M.LogWriter(tk.node).MarkCommitted(tk.tok.End())
	}
	return nil
}

// resolveWriteOffsets fills in offsets for remote blind writes and deletes
// that were never read (lookups for local entries happen inside the HTM
// region / apply step).
func (tx *Txn) resolveWriteOffsets() error {
	for i := range tx.ws {
		e := &tx.ws[i]
		if e.local || e.off != 0 || e.kind == wsInsert {
			continue
		}
		if r := tx.findRS(e.table, e.key); r != nil {
			e.off = r.off
			continue
		}
		tbl := tx.w.E.M.Store.Table(e.table)
		loc, err := tx.w.remoteLookup(tx.w.QP(e.node), tbl, e.key)
		if err != nil {
			if errors.Is(err, ErrNotFound) && e.kind == wsDelete {
				continue // deleting a missing record is a no-op
			}
			var te *Error
			if errors.As(err, &te) {
				te.Stage = tx.stage // commit-time lookup, not execution
			}
			return err
		}
		e.off = loc.off
	}
	return nil
}

// remoteLockSet collects unique remote record addresses from the read set
// and the update/delete write set.
func (tx *Txn) remoteLockSet() []lockTarget {
	seen := make(map[lockTarget]struct{}, len(tx.rs)+len(tx.ws))
	var out []lockTarget
	add := func(node rdma.NodeID, off uint64) {
		t := lockTarget{node: node, off: off}
		if _, dup := seen[t]; !dup {
			seen[t] = struct{}{}
			out = append(out, t)
		}
	}
	for i := range tx.rs {
		if !tx.rs[i].local {
			add(tx.rs[i].node, tx.rs[i].off)
		}
	}
	for i := range tx.ws {
		e := &tx.ws[i]
		if !e.local && e.kind != wsInsert && e.off != 0 {
			add(e.node, e.off)
		}
	}
	// Deterministic order keeps lock acquisition patterns comparable
	// across retries (and shortens convoys under contention).
	sort.Slice(out, func(i, j int) bool {
		if out[i].node != out[j].node {
			return out[i].node < out[j].node
		}
		return out[i].off < out[j].off
	})
	return out
}

// lockRemote try-locks every target with one doorbell batch of RDMA CASes
// (try-lock semantics keep the batch deadlock-free: no verb ever waits).
// Targets that fail on a dangling lock from a dead machine are passively
// released and retried in a second, smaller batch (§5.2); any remaining
// failure releases the acquired subset and aborts.
func (tx *Txn) lockRemote(locks []lockTarget) error {
	w := tx.w
	myWord := memstore.LockWord(uint32(w.E.M.ID))
	// Trade-off vs. the old sequential loop: all CASes post before any
	// result is seen, so under contention we may briefly take (then release)
	// locks a sequential early-exit would never have touched. We accept the
	// slightly hotter contention profile in exchange for one round-trip of
	// latency for the whole lock phase.
	b := w.newBatch()
	pend := make([]*rdma.Pending, len(locks))
	for i, lt := range locks {
		pend[i] = b.PostCAS(w.QP(lt.node), lt.off+memstore.LockOff, 0, myWord)
	}
	_ = tx.execBatch(PhaseLock, b)

	acquired := make([]lockTarget, 0, len(locks))
	var retry []int
	var verr error
	verrNode := w.E.M.ID
	for i, p := range pend {
		switch {
		case p.Err != nil:
			verr = p.Err
			verrNode = locks[i].node
		case p.Swapped:
			acquired = append(acquired, locks[i])
		default:
			// Dangling lock from a failed machine? Release passively
			// and retry once (§5.2).
			w.maybeReleaseDangling(tx.cfg, locks[i].node, locks[i].off, p.Prev)
			retry = append(retry, i)
		}
	}
	if verr != nil {
		tx.unlockTargets(PhaseLock, acquired)
		return tx.abortAt(verrNode, AbortNodeDead, "lock: %v", verr)
	}
	if len(retry) > 0 {
		rb := w.newBatch()
		rpend := make([]*rdma.Pending, len(retry))
		for j, i := range retry {
			rpend[j] = rb.PostCAS(w.QP(locks[i].node), locks[i].off+memstore.LockOff, 0, myWord)
		}
		_ = tx.execBatch(PhaseLock, rb)
		// The whole retry batch has executed: collect EVERY successful CAS
		// into `acquired` before acting on any failure, or the back-out
		// below would leak locks won later in the batch.
		failed := -1
		for j, i := range retry {
			p := rpend[j]
			if p.Err != nil || !p.Swapped {
				if failed < 0 {
					failed = j
				}
				continue
			}
			acquired = append(acquired, locks[i])
		}
		if failed >= 0 && w.E.Mut.IgnoreLockFail {
			// Mutation: pretend every lock was won and barrel on unlocked.
			// The C.6 unlock CASes on never-acquired records fail harmlessly
			// (they expect our lock word), so the damage is pure protocol:
			// two committers write back the same record concurrently.
			failed = -1
		}
		if failed >= 0 {
			tx.unlockTargets(PhaseLock, acquired)
			i, p := retry[failed], rpend[failed]
			if p.Err != nil {
				return tx.abortAt(locks[i].node, AbortLockFailed, "record %d:%#x relock: %v",
					locks[i].node, locks[i].off, p.Err)
			}
			if tbl, key, ok := tx.keyAt(locks[i].node, locks[i].off); ok {
				return tx.abortOn(locks[i].node, tbl, key, AbortLockFailed, "record %d:%#x held by %#x",
					locks[i].node, locks[i].off, p.Prev)
			}
			return tx.abortAt(locks[i].node, AbortLockFailed, "record %d:%#x held by %#x",
				locks[i].node, locks[i].off, p.Prev)
		}
	}
	return nil
}

func (tx *Txn) unlockRemote(locks []lockTarget) {
	tx.unlockTargets(PhaseUnlock, locks)
}

// unlockTargets releases the given locks with one doorbell batch of CASes,
// charged to phase (C.6 on the normal path, C.1 when backing out a failed
// lock batch).
func (tx *Txn) unlockTargets(phase CommitPhase, locks []lockTarget) {
	if len(locks) == 0 {
		return
	}
	w := tx.w
	myWord := memstore.LockWord(uint32(w.E.M.ID))
	b := w.newBatch()
	for _, lt := range locks {
		b.PostCAS(w.QP(lt.node), lt.off+memstore.LockOff, myWord, 0)
	}
	_ = tx.execBatch(phase, b)
}

// seqValidates applies Table 4's read-validation condition.
func (tx *Txn) seqValidates(seen, cur uint64) bool {
	if tx.w.E.Replicated {
		return memstore.ClosestCommittable(seen) == cur
	}
	return seen == cur
}

// validateRemote is C.2: one doorbell batch of header READs covering every
// remote read-set record plus the base-seq fetch of every blind remote
// write, then all checks against the returned headers. The fetched headers
// also carry each record's incarnation, which is cached on the write-set
// entry so C.5 never re-reads it.
func (proto drtmrProto) validateRemote(tx *Txn) error {
	w := tx.w
	b := w.newBatch()
	rsPend := make([]*rdma.Pending, len(tx.rs))
	for i := range tx.rs {
		if !tx.rs[i].local {
			rsPend[i] = b.PostRead(w.QP(tx.rs[i].node), tx.rs[i].off, 24)
		}
	}
	var wsIdx []int
	var wsPend []*rdma.Pending
	for i := range tx.ws {
		e := &tx.ws[i]
		if e.local || (e.kind != wsUpdate && e.kind != wsDelta) || e.off == 0 {
			continue
		}
		if tx.findRS(e.table, e.key) != nil {
			continue // base comes from the read-set header below
		}
		// Deltas fetch the whole record, not just the header: the final
		// image is the current value plus the pending adds, folded here
		// under the C.1 lock.
		n := 24
		if e.kind == wsDelta {
			n = w.E.M.Store.Table(e.table).RecBytes
		}
		wsIdx = append(wsIdx, i)
		wsPend = append(wsPend, b.PostRead(w.QP(e.node), e.off, n))
	}
	_ = tx.execBatch(PhaseValidate, b)

	for i := range tx.rs {
		r := &tx.rs[i]
		p := rsPend[i]
		if p == nil {
			continue
		}
		if p.Err != nil {
			return tx.abortAt(r.node, AbortNodeDead, "validate: %v", p.Err)
		}
		if tx.findWS(r.table, r.key) == nil {
			w.Stats.ROVerbs++ // validation READ on a record we only read
		}
		h := p.Data
		if memstore.RecInc(h) != r.inc && !w.E.Mut.SkipRemoteValidate && !w.E.Mut.SkipIncCheck {
			return tx.abortOn(r.node, r.table, r.key, AbortValidate, "remote inc changed")
		}
		cur := memstore.RecSeq(h)
		if !tx.seqValidates(r.seq, cur) && !w.E.Mut.SkipRemoteValidate {
			return tx.abortOn(r.node, r.table, r.key, AbortValidate, "remote seq %d -> %d", r.seq, cur)
		}
		// Record the authoritative base (and incarnation) for co-located
		// writes.
		if e := tx.findWS(r.table, r.key); e != nil && !e.local && (e.kind == wsUpdate || e.kind == wsDelta) {
			e.baseSeq = cur
			e.finSeq = tx.finalSeq(cur)
			e.inc = r.inc
			e.haveInc = true
			if e.kind == wsDelta {
				// The seq check just passed under the C.1 lock, so the
				// execution-phase copy is the current value: fold over it.
				e.materializeFrom(r.val)
			}
		}
	}
	// Blind remote writes: current seq was fetched under the lock.
	for j, i := range wsIdx {
		e := &tx.ws[i]
		p := wsPend[j]
		if p.Err != nil {
			return tx.abortAt(e.node, AbortNodeDead, "ws fetch: %v", p.Err)
		}
		h := p.Data
		cur := memstore.RecSeq(h)
		if w.E.Replicated && !memstore.SeqIsCommittable(cur) {
			// Table 4 C.2 R_WS: cannot overwrite an unreplicated record.
			return tx.abortOn(e.node, e.table, e.key, AbortValidate, "remote ws uncommittable")
		}
		e.baseSeq = cur
		e.finSeq = tx.finalSeq(cur)
		e.inc = memstore.RecInc(h)
		e.haveInc = true
		if e.kind == wsDelta {
			// h is the full record (fetched above). The record is locked,
			// but a PRIOR local commit's makeup flip can still race the
			// fetch: a torn value must not become the delta base.
			if !memstore.VersionsConsistent(h) {
				return tx.abortOn(e.node, e.table, e.key, AbortValidate, "delta base torn")
			}
			tbl := w.E.M.Store.Table(e.table)
			e.materializeFrom(memstore.GatherValue(h, tbl.Spec.ValueSize))
		}
	}
	return nil
}

// localHTMCommit is C.3+C.4: one HTM region validating the local read set
// and applying the local (update) write set with seq+1. Bounded retries;
// validation failures abort the transaction, repeated hardware aborts
// escalate to the fallback handler.
func (proto drtmrProto) localHTMCommit(tx *Txn) error {
	w := tx.w
	nLocal := 0
	for i := range tx.rs {
		if tx.rs[i].local {
			nLocal++
		}
	}
	for i := range tx.ws {
		if tx.ws[i].local && (tx.ws[i].kind == wsUpdate || tx.ws[i].kind == wsDelta) {
			nLocal++
		}
	}
	if nLocal == 0 {
		return nil
	}
	for attempt := 0; attempt < htmRetries; attempt++ {
		w.Clk.Advance(w.E.Costs.HTMRegion + time.Duration(nLocal)*w.E.Costs.PerValidate)
		tx.confSet = false
		err := proto.localHTMAttempt(tx)
		if err == nil {
			return nil
		}
		var ae *htm.AbortError
		if errors.As(err, &ae) && ae.Cause == htm.CauseExplicit {
			switch ae.Code {
			case abortCodeValidate:
				return tx.abortConflict(AbortValidate, "local validation failed")
			case abortCodeWSLocked:
				return tx.abortConflict(AbortLocked, "local ws record remotely locked")
			default: // abortCodeLocked is execution-phase only; retry the region
			}
		}
		w.backoff(attempt)
	}
	return tx.abort(AbortHTM, "commit HTM region exhausted retries")
}

// abortConflict is abort keyed with the conflict identity the HTM region
// stamped (setConflict) before its explicit abort, when it stamped one.
func (tx *Txn) abortConflict(r AbortReason, format string, args ...any) error {
	if !tx.confSet {
		return tx.abort(r, format, args...)
	}
	return tx.abortOn(tx.w.E.M.ID, tx.confTable, tx.confKey, r, format, args...)
}

// localHTMAttempt is one C.3+C.4 HTM region attempt, bracketed with
// htmBegin/htmEnd so the coroutine scheduler can assert that the region
// never spans a yield point.
func (proto drtmrProto) localHTMAttempt(tx *Txn) error {
	w := tx.w
	w.htmBegin()
	defer w.htmEnd()
	htx := w.E.M.Eng.Begin()
	if w.Rec != nil {
		htx.Trace(w.Rec, &w.Clk, tx.id)
	}
	if err := proto.localCommitBody(tx, htx); err != nil {
		return err
	}
	return htx.Commit()
}

// localCommitBody is the code inside the commit HTM region.
//
//drtmr:htmbody runs between localHTMAttempt's htmBegin/htmEnd bracket
func (proto drtmrProto) localCommitBody(tx *Txn, htx *htm.Txn) error {
	w := tx.w
	// C.3: validate local reads.
	for i := range tx.rs {
		r := &tx.rs[i]
		if !r.local {
			continue
		}
		inc, err := htx.Load64(r.off + memstore.IncOff)
		if err != nil {
			return err
		}
		cur, err := htx.Load64(r.off + memstore.SeqOff)
		if err != nil {
			return err
		}
		if inc != r.inc && !w.E.Mut.SkipLocalValidate && !w.E.Mut.SkipIncCheck {
			tx.setConflict(r.table, r.key)
			return htx.Abort(abortCodeValidate)
		}
		if !tx.seqValidates(r.seq, cur) && !w.E.Mut.SkipLocalValidate {
			tx.setConflict(r.table, r.key)
			return htx.Abort(abortCodeValidate)
		}
	}
	// C.4: apply local updates with seq+1 (odd under replication).
	for i := range tx.ws {
		e := &tx.ws[i]
		if !e.local || (e.kind != wsUpdate && e.kind != wsDelta) {
			continue
		}
		tbl := w.E.M.Store.Table(e.table)
		if e.off == 0 {
			off, ok := tbl.Lookup(e.key)
			if !ok {
				tx.setConflict(e.table, e.key)
				return htx.Abort(abortCodeValidate)
			}
			e.off = off
		}
		lockW, err := htx.Load64(e.off + memstore.LockOff)
		if err != nil {
			return err
		}
		if lockW != 0 {
			// A remote transaction locked this record before our
			// region began (§4.4's extra check).
			tx.setConflict(e.table, e.key)
			return htx.Abort(abortCodeWSLocked)
		}
		cur, err := htx.Load64(e.off + memstore.SeqOff)
		if err != nil {
			return err
		}
		if w.E.Replicated && !memstore.SeqIsCommittable(cur) {
			tx.setConflict(e.table, e.key)
			return htx.Abort(abortCodeValidate)
		}
		inc, err := htx.Load64(e.off + memstore.IncOff)
		if err != nil {
			return err
		}
		e.baseSeq = cur
		newSeq := cur + 1
		e.finSeq = tx.finalSeq(cur)
		// Remember the incarnation for the history record: local updates
		// never pass through C.2's header fetch.
		e.inc = inc
		e.haveInc = true
		if e.kind == wsDelta {
			// Fold the pending adds over the current value, read inside the
			// HTM region — strong atomicity makes this the moment the delta
			// stops commuting and becomes a plain image install.
			curImg, err := htx.Read(e.off, tbl.RecBytes, nil)
			if err != nil {
				return err
			}
			e.materializeFrom(memstore.GatherValue(curImg, tbl.Spec.ValueSize))
		}
		img := memstore.BuildRecordImage(tbl.Spec.ValueSize, e.buf, inc, newSeq)
		if err := htx.Write(e.off+8, img[8:]); err != nil {
			return err
		}
	}
	return nil
}

// finalSeq is the sequence number a record settles at once this update is
// fully committed.
func (tx *Txn) finalSeq(base uint64) uint64 {
	if tx.w.E.Replicated {
		return base + 2
	}
	return base + 1
}

// applyInsertsDeletes applies structural mutations with drtmrProto's
// initial sequence numbers: under replication, fresh inserts start
// uncommittable (seq=1) until R.2/C.5.
func (tx *Txn) applyInsertsDeletes() {
	initialSeq := uint64(0)
	if tx.w.E.Replicated {
		initialSeq = 1
	}
	tx.applyInsertsDeletesSeq(initialSeq)
}

// applyInsertsDeletesSeq applies structural mutations after validation:
// local ones directly, remote ones shipped to the host machine (§4.3).
// Fresh inserts start at initialSeq — protocols that make log entries
// durable BEFORE applying (farm) insert directly at the final committable
// sequence number; drtmrProto inserts uncommittable and flips later.
func (tx *Txn) applyInsertsDeletesSeq(initialSeq uint64) {
	w := tx.w
	for i := range tx.ws {
		e := &tx.ws[i]
		switch e.kind {
		case wsInsert:
			e.baseSeq = 0
			e.finSeq = tx.finalSeq(0)
			if e.local {
				tbl := w.E.M.Store.Table(e.table)
				off, err := tbl.InsertWithSeq(e.key, e.buf, initialSeq)
				if err == nil {
					e.off = off
				}
			} else {
				tx.countWakeup(e.node)
				off, ok := w.rpcInsert(e.node, e.table, e.shard, e.key, e.buf, initialSeq)
				if ok {
					e.off = off
				}
			}
		case wsDelete:
			if e.local {
				tbl := w.E.M.Store.Table(e.table)
				_ = tbl.Delete(e.key)
			} else {
				tx.countWakeup(e.node)
				w.rpcDelete(e.node, e.table, e.key)
			}
		case wsUpdate, wsDelta:
			// Not structural: updates and materialized deltas are installed
			// in place by write-back (C.5), never here.
		}
	}
}

// ringToken pairs a log append with its target for post-commit truncation.
type ringToken struct {
	node rdma.NodeID
	tok  oplog.Token
}

// replicate is R.1: write one log entry carrying the FULL write set to every
// replica ring — all backups of every written shard, plus the primaries of
// remote written shards (so a coordinator death after publish can always be
// redone; see the oplog package comment). Payloads land first, then headers
// publish (two-phase).
func (tx *Txn) replicate() []ringToken {
	w := tx.w
	recs := tx.logRecords()
	if len(recs) == 0 {
		return nil
	}
	entry := oplog.Encode(tx.id, recs)

	// Target set from the FRESH configuration: if a backup died, its
	// replacement placement is what matters now.
	cfg := w.E.M.Config()
	targets := make(map[rdma.NodeID]struct{})
	for i := range tx.ws {
		e := &tx.ws[i]
		if int(e.shard) >= cfg.NumShards() {
			continue
		}
		// Primaries of remote shards get the entry too (crash redo);
		// the local primary copy was already updated in C.4. Backups
		// always get it — including THIS machine when it happens to
		// back up a remote shard (loop-back ring).
		if p := cfg.PrimaryOf(e.shard); p != w.E.M.ID {
			targets[p] = struct{}{}
		}
		for _, b := range cfg.BackupsOf(e.shard) {
			targets[b] = struct{}{}
		}
	}
	// Payload fan-out: every ring's payload write shares one doorbell
	// batch (one base write latency for the whole fan-out); the header
	// publishes below share a second. An empty batch — every target dead
	// or skipped — charges nothing.
	type pendingAppend struct {
		node rdma.NodeID
		tok  oplog.Token
		pend *rdma.Pending
	}
	pb := w.newBatch()
	var appends []pendingAppend
	for node := range targets {
		tx.countWakeup(node)
		wr := w.E.M.LogWriter(node)
		tk, pend, err := wr.AppendPayload(w.QP(node), pb, entry)
		if err != nil {
			continue // dead target: its replacement is covered post-reconfig
		}
		appends = append(appends, pendingAppend{node: node, tok: tk, pend: pend})
	}
	_ = tx.execBatch(PhaseLog, pb)

	hb := w.newBatch()
	var toks []ringToken
	for _, a := range appends {
		if a.pend != nil && a.pend.Err != nil {
			continue // payload never landed (died mid-batch): do not publish
		}
		w.E.M.LogWriter(a.node).Publish(w.QP(a.node), hb, a.tok, entry)
		toks = append(toks, ringToken{node: a.node, tok: a.tok})
	}
	_ = tx.execBatch(PhaseLog, hb)
	return toks
}

// logRecords builds the full-write-set log payload with final sequence
// numbers (Table 4: backups install SN_new+2 directly).
func (tx *Txn) logRecords() []oplog.Rec {
	var recs []oplog.Rec
	for i := range tx.ws {
		e := &tx.ws[i]
		var kind uint8
		switch e.kind {
		case wsUpdate, wsDelta:
			// Deltas replicate as plain updates: buf was materialized under
			// the commit critical section before R.1 runs.
			kind = oplog.KindUpdate
		case wsInsert:
			kind = oplog.KindInsert
		case wsDelete:
			kind = oplog.KindDelete
		}
		recs = append(recs, oplog.Rec{
			Kind:  kind,
			Table: e.table,
			Shard: uint16(e.shard),
			Key:   e.key,
			Seq:   e.finSeq,
			Value: e.buf,
		})
	}
	return recs
}

// makeupLocal is R.2: flip local updates (and fresh local inserts) from odd
// to even — committable — re-stamping the per-line versions. Each record is
// flipped in its own small HTM region for atomicity against local readers.
func (proto drtmrProto) makeupLocal(tx *Txn) {
	w := tx.w
	for i := range tx.ws {
		e := &tx.ws[i]
		if !e.local || e.kind == wsDelete || e.off == 0 {
			continue
		}
		for attempt := 0; ; attempt++ {
			if attempt > 0 {
				w.backoff(attempt)
			}
			if proto.makeupAttempt(tx, e) {
				break
			}
		}
	}
}

// makeupAttempt is one R.2 seq-flip inside its own HTM region, bracketed
// with htmBegin/htmEnd for the scheduler's no-yield-in-region assertion.
// It reports whether the record has settled at its final sequence number.
func (proto drtmrProto) makeupAttempt(tx *Txn, e *wsEntry) bool {
	w := tx.w
	w.htmBegin()
	defer w.htmEnd()
	htx := w.E.M.Eng.Begin()
	if w.Rec != nil {
		htx.Trace(w.Rec, &w.Clk, tx.id)
	}
	cur, err := htx.Load64(e.off + memstore.SeqOff)
	if err != nil {
		return false
	}
	if cur >= e.finSeq {
		htx.Commit() // already advanced (log applier raced us)
		return true
	}
	if err := htx.Store64(e.off+memstore.SeqOff, e.finSeq); err != nil {
		return false
	}
	if err := tx.stampVersions(htx, e.off, e.table, e.finSeq); err != nil {
		return false
	}
	return htx.Commit() == nil
}

// stampVersions writes low16(seq) into each per-line version slot of the
// record at off, inside the given HTM transaction.
//
//drtmr:htmbody runs inside the makeup/commit HTM regions
func (tx *Txn) stampVersions(htx *htm.Txn, off uint64, table memstore.TableID, seq uint64) error {
	tbl := tx.w.E.M.Store.Table(table)
	v := uint16(seq & 0xFFFF)
	var b [2]byte
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	for line := 1; line < tbl.RecLines; line++ {
		if err := htx.Write(off+uint64(line*64), b[:]); err != nil {
			return err
		}
	}
	return nil
}

// writeBackRemote is C.5: one doorbell batch of RDMA WRITEs installing each
// remote update's new image (final committable seq, versions stamped),
// skipping the lock word, plus the seq-flip of remote inserts.
func (tx *Txn) writeBackRemote() {
	w := tx.w
	b := w.newBatch()
	for i := range tx.ws {
		e := &tx.ws[i]
		if e.local || e.off == 0 {
			continue
		}
		switch e.kind {
		case wsUpdate, wsDelta:
			// Deltas reach here with buf already materialized under the C.1
			// lock (C.2 or the fallback), so the install is a plain image.
			if e.finSeq == 0 {
				e.finSeq = tx.finalSeq(e.baseSeq)
			}
			tbl := w.E.M.Store.Table(e.table)
			// Incarnation is preserved: C.2 (or fallback validation)
			// cached it on the entry, so no extra header READ here.
			inc := tx.incFor(e)
			img := memstore.BuildRecordImage(tbl.Spec.ValueSize, e.buf, inc, e.finSeq)
			b.PostWrite(w.QP(e.node), e.off+8, img[8:])
		case wsInsert:
			if !w.E.Replicated {
				continue
			}
			tbl := w.E.M.Store.Table(e.table)
			img := memstore.BuildRecordImage(tbl.Spec.ValueSize, e.buf, 0, e.finSeq)
			// Write seq + data + versions; inc is unknown here (the
			// host assigned it), so skip the first 24 header bytes and
			// write the seq word separately.
			b.PostWrite64(w.QP(e.node), e.off+memstore.SeqOff, e.finSeq)
			b.PostWrite(w.QP(e.node), e.off+24, img[24:])
		case wsDelete:
			// Deletes were applied structurally by applyInsertsDeletes;
			// there is no image to install.
		}
	}
	_ = tx.execBatch(PhaseWriteBack, b)
}

// incFor returns the incarnation to preserve in a remote write-back. The
// normal pipeline always caches it during validation (C.2 or fallback); the
// header READ is a last resort for paths that never fetched it.
func (tx *Txn) incFor(e *wsEntry) uint64 {
	if e.haveInc {
		return e.inc
	}
	if r := tx.findRS(e.table, e.key); r != nil {
		return r.inc
	}
	var hdr [24]byte
	h, err := tx.w.QP(e.node).Read(e.off, 24, hdr[:])
	if err != nil {
		return 0
	}
	return memstore.RecInc(h)
}

// commitReadOnly validates sequence numbers only (§4.5): no HTM, no locks.
// The remote read set validates through one doorbell batch of header READs.
func (tx *Txn) commitReadOnly() error {
	w := tx.w
	b := w.newBatch()
	pend := make([]*rdma.Pending, len(tx.rs))
	for i := range tx.rs {
		if !tx.rs[i].local {
			pend[i] = b.PostRead(w.QP(tx.rs[i].node), tx.rs[i].off, 24)
			w.Stats.ROVerbs++ // every read-only validation READ hits a pure read participant
		}
	}
	_ = tx.execBatch(PhaseROValidate, b)

	var hdr [24]byte
	for i := range tx.rs {
		r := &tx.rs[i]
		var inc, cur uint64
		if r.local {
			h := w.E.M.Eng.ReadNonTx(r.off, 24, hdr[:])
			inc, cur = memstore.RecInc(h), memstore.RecSeq(h)
			w.Clk.Advance(w.E.Costs.PerValidate)
		} else {
			p := pend[i]
			if p.Err != nil {
				return tx.abortAt(r.node, AbortNodeDead, "ro validate: %v", p.Err)
			}
			inc, cur = memstore.RecInc(p.Data), memstore.RecSeq(p.Data)
		}
		if inc != r.inc || !tx.seqValidates(r.seq, cur) {
			site := w.E.M.ID
			if !r.local {
				site = r.node
			}
			return tx.abortOn(site, r.table, r.key, AbortValidate, "ro: record changed")
		}
	}
	return nil
}
