package txn

import "drtmr/internal/obs"

// histTxn converts a just-committed transaction's read/write sets into the
// checker's history record (obs.HistTxn). Reads carry the (incarnation,
// sequence) version observed during execution; updates the final installed
// sequence plus the incarnation cached by validation (C.2, C.3 or the
// fallback); inserts the sequence readers of the fresh record observe (0
// unreplicated — the record is born at the initial sequence and the write-
// back is skipped — or the post-makeup finSeq under replication). Deletes
// carry no version: the delete ends the record's incarnation.
func (tx *Txn) histTxn(invoke uint64, vstart int64, maybe bool) obs.HistTxn {
	t := obs.HistTxn{
		ID:       tx.id,
		ReadOnly: tx.readOnly,
		Maybe:    maybe,
		Invoke:   invoke,
		VStart:   vstart,
		VEnd:     tx.w.Clk.Now(),
		Ops:      make([]obs.HistOp, 0, len(tx.rs)+len(tx.ws)),
	}
	for i := range tx.rs {
		r := &tx.rs[i]
		t.Ops = append(t.Ops, obs.HistOp{
			Kind: obs.HistRead, Table: uint8(r.table), Key: r.key,
			Seq: r.seq, Inc: r.inc, HaveInc: true,
		})
	}
	for i := range tx.ws {
		e := &tx.ws[i]
		switch e.kind {
		case wsUpdate, wsDelta:
			t.Ops = append(t.Ops, obs.HistOp{
				Kind: obs.HistUpdate, Table: uint8(e.table), Key: e.key,
				Seq: e.finSeq, Inc: e.inc, HaveInc: e.haveInc,
			})
		case wsInsert:
			if e.off == 0 {
				continue // insert failed (duplicate key): nothing installed
			}
			seq := uint64(0)
			if tx.w.E.Replicated {
				seq = e.finSeq
			}
			t.Ops = append(t.Ops, obs.HistOp{
				Kind: obs.HistInsert, Table: uint8(e.table), Key: e.key, Seq: seq,
			})
		case wsDelete:
			t.Ops = append(t.Ops, obs.HistOp{
				Kind: obs.HistDelete, Table: uint8(e.table), Key: e.key,
			})
		}
	}
	return t
}
