// Package check is the correctness oracle for the transaction layer: a
// strict-serializability checker over recorded transaction histories
// (obs.HistTxn), plus a seeded torture harness (torture.go) and a
// mutation-test mode proving the oracle actually detects protocol bugs.
//
// # History model
//
// Each committed transaction carries its read set as observed (incarnation,
// sequence) versions and its write set as installed versions, plus an
// invocation/response interval in globally ordered ticks. The key property
// that makes checking tractable is that the PROTOCOL tells us the version
// order for free: every record carries a monotone sequence number installed
// under the record's lock (or inside an HTM region), so the versions of one
// record are totally ordered by sequence number — there is no need to
// search over version orders as a black-box checker must. Given the version
// order, strict serializability reduces to acyclicity of the direct
// serialization graph (DSG):
//
//   - wr: the installer of a version precedes every reader of it,
//   - ww: versions of one record in sequence order,
//   - rw: a reader of version v precedes the installer of v's successor,
//   - rt: T1 precedes T2 whenever T1's response tick < T2's invocation tick
//     (strictness; encoded with a barrier chain, O(n) edges).
//
// A cycle is a violation; the graph pass is O(n·ops + edges). For small
// histories a Wing–Gong style exhaustive search (search.go) additionally
// confirms the verdict from first principles — it tries every serial order
// consistent with real time, simulating per-key version state — and is the
// authority for records that are deleted and re-inserted, where incarnation
// epochs make the fast pass's version chains ambiguous.
//
// Per-record integrity checks run before the graph: duplicate installed
// versions (two transactions claiming the same slot in a chain — the
// classic lost-lock symptom), version-chain gaps (an installed version no
// recorded transaction owns), incarnation splits and reads of versions
// nobody installed. Those each flag directly, with the involved
// transactions named.
//
// Histories from kill-injection runs are checked in a relaxed mode
// (Strict=false): transactions marked maybe-committed (in flight on the
// killed machine) are included only when a surviving transaction observed
// their writes, versions are identified by sequence number alone (a shard's
// promoted backup copy carries different incarnations than the dead
// primary's), and chain gaps or unmatched reads degrade to warnings since
// the dead machine's unobservable writes are legitimately missing.
package check

import (
	"fmt"
	"sort"
	"strings"

	"drtmr/internal/memstore"
	"drtmr/internal/obs"
)

// Options configures one Check run.
type Options struct {
	// Replicated normalizes observed read sequence numbers with
	// memstore.ClosestCommittable: under the optimistic replication scheme a
	// reader may observe the odd (uncommittable) sequence of a record whose
	// makeup has not run yet, which names the same version the writer
	// records as its final even sequence.
	Replicated bool
	// Strict enables the checks that are only sound for complete histories
	// (no kill injection): unknown read versions and version-chain gaps are
	// violations rather than warnings, incarnations distinguish versions,
	// and small histories get the exhaustive search confirmation.
	Strict bool
	// SearchLimit caps the transaction count for the Wing–Gong search
	// (0 = default 18; memoization is exponential in this).
	SearchLimit int
}

// Violation is one detected strict-serializability violation.
type Violation struct {
	Kind  string   // "cycle", "duplicate-version", "version-gap", "unknown-version", "incarnation-split", "read-incarnation", "unserializable"
	Table uint8    // key-local kinds: the record
	Key   uint64   //
	Txns  []uint64 // involved transaction ids
	Msg   string
}

func (v *Violation) String() string {
	if v.Msg == "" {
		return v.Kind
	}
	return v.Kind + ": " + v.Msg
}

// Result is the checker's verdict over one history.
type Result struct {
	Txns       int // transactions checked (after maybe-commit filtering)
	Excluded   int // maybe-committed transactions dropped as unobserved
	Keys       int
	Violations []*Violation
	Warnings   []string
	// Searched reports whether the exhaustive search ran (small strict
	// histories); SearchOK its verdict.
	Searched bool
	SearchOK bool
}

// Ok reports whether the history is strictly serializable as far as the
// enabled checks can tell.
func (r *Result) Ok() bool { return len(r.Violations) == 0 }

func (r *Result) String() string {
	if r.Ok() {
		s := fmt.Sprintf("ok: %d txns, %d keys strictly serializable", r.Txns, r.Keys)
		if r.Searched {
			s += " (search confirmed)"
		}
		if len(r.Warnings) > 0 {
			s += fmt.Sprintf(", %d warnings", len(r.Warnings))
		}
		return s
	}
	parts := make([]string, len(r.Violations))
	for i, v := range r.Violations {
		parts[i] = v.String()
	}
	return fmt.Sprintf("VIOLATION (%d txns): %s", r.Txns, strings.Join(parts, " | "))
}

// kid identifies a record.
type kid struct {
	table uint8
	key   uint64
}

// wref is one installed version.
type wref struct {
	txn     int // index into the included-transaction list
	seq     uint64
	inc     uint64
	haveInc bool
	insert  bool
}

// rref is one observed read.
type rref struct {
	txn int
	seq uint64 // normalized
	inc uint64
}

// keyState collects everything recorded about one record.
type keyState struct {
	writes  []wref
	reads   []rref
	deletes []int
	inserts int
}

// churn reports whether the record's identity changed mid-history (deleted,
// or re-inserted more than once): its version chain spans incarnation
// epochs the fast pass cannot order, so it contributes no graph edges and
// is left to the exhaustive search.
func (k *keyState) churn() bool { return len(k.deletes) > 0 || k.inserts > 1 }

// Check validates the history against strict serializability.
func Check(hist []obs.HistTxn, o Options) *Result {
	if o.SearchLimit <= 0 {
		o.SearchLimit = 18
	}
	res := &Result{}

	txns, excluded := includeObserved(hist, o)
	res.Txns, res.Excluded = len(txns), excluded
	if len(txns) == 0 {
		return res
	}

	keys := buildKeys(txns, o)
	res.Keys = len(keys)

	g := newGraph(len(txns))
	churned := 0
	for k, ks := range keys {
		if ks.churn() {
			churned++
			continue
		}
		checkKey(k, ks, txns, o, res, g)
	}
	if churned > 0 && o.Strict && len(txns) > o.SearchLimit {
		res.Warnings = append(res.Warnings,
			fmt.Sprintf("%d re-inserted records left to search, but history too large to search", churned))
	}
	addRealTimeEdges(g, txns)

	if cyc := g.findCycle(); cyc != nil {
		res.Violations = append(res.Violations, cycleViolation(cyc, txns))
	}

	// Exhaustive confirmation for small strict histories — and the only
	// authority over churned records. Skipped when per-key integrity
	// already failed: unmatched reads make the simulation meaningless.
	if o.Strict && len(txns) <= o.SearchLimit && !hasIntegrityViolation(res) {
		ok, complete := searchSerializable(txns, keys, o)
		if complete {
			res.Searched = true
			res.SearchOK = ok
			if !ok && len(res.Violations) == 0 {
				ids := make([]uint64, len(txns))
				for i, t := range txns {
					ids[i] = t.ID
				}
				res.Violations = append(res.Violations, &Violation{
					Kind: "unserializable",
					Txns: ids,
					Msg:  "no serial order consistent with real time explains the observed reads",
				})
			}
		}
	}
	return res
}

// hasIntegrityViolation reports whether a per-key (non-cycle) violation was
// found.
func hasIntegrityViolation(r *Result) bool {
	for _, v := range r.Violations {
		if v.Kind != "cycle" {
			return true
		}
	}
	return false
}

// includeObserved selects the transactions to check: every definite commit,
// plus maybe-committed ones (in flight on a machine being killed) whose
// writes some included transaction observed — those provably took effect.
// Observation requires the version to be uniquely attributable: if any OTHER
// transaction also installed the same (key, seq) — possible across copies
// when a zombie's write lands on a doomed replica while a survivor reuses
// the sequence number on the promoted one — the read proves nothing about
// the maybe-commit and must not drag it in (it would then falsely collide
// with the survivor). The filter iterates to a fixpoint so chains of
// maybe-commits observing each other resolve.
func includeObserved(hist []obs.HistTxn, o Options) ([]obs.HistTxn, int) {
	include := make([]bool, len(hist))
	maybes := 0
	// writers[k][seq] = number of distinct transactions that installed
	// (k, seq), over the WHOLE history (included or not).
	writers := make(map[kid]map[uint64]int)
	for i := range hist {
		if hist[i].Maybe {
			maybes++
		} else {
			include[i] = true
		}
		for _, op := range hist[i].Ops {
			if op.Kind != obs.HistUpdate && op.Kind != obs.HistInsert {
				continue
			}
			k := kid{op.Table, op.Key}
			if writers[k] == nil {
				writers[k] = make(map[uint64]int)
			}
			writers[k][op.Seq]++
		}
	}
	for maybes > 0 {
		// Versions read by currently included transactions.
		readSet := make(map[kid]map[uint64]bool)
		for i := range hist {
			if !include[i] {
				continue
			}
			for _, op := range hist[i].Ops {
				if op.Kind != obs.HistRead {
					continue
				}
				k := kid{op.Table, op.Key}
				if readSet[k] == nil {
					readSet[k] = make(map[uint64]bool)
				}
				readSet[k][normSeq(op.Seq, o)] = true
			}
		}
		changed := false
		for i := range hist {
			if include[i] || !hist[i].Maybe {
				continue
			}
			for _, op := range hist[i].Ops {
				if op.Kind != obs.HistUpdate && op.Kind != obs.HistInsert {
					continue
				}
				k := kid{op.Table, op.Key}
				if readSet[k][op.Seq] && writers[k][op.Seq] == 1 {
					include[i] = true
					changed = true
					break
				}
			}
		}
		if !changed {
			break
		}
	}
	var out []obs.HistTxn
	excluded := 0
	for i := range hist {
		if include[i] {
			out = append(out, hist[i])
		} else {
			excluded++
		}
	}
	return out, excluded
}

// normSeq normalizes an observed read sequence number.
func normSeq(s uint64, o Options) uint64 {
	if o.Replicated {
		return memstore.ClosestCommittable(s)
	}
	return s
}

// buildKeys indexes the history per record.
func buildKeys(txns []obs.HistTxn, o Options) map[kid]*keyState {
	keys := make(map[kid]*keyState)
	at := func(k kid) *keyState {
		ks := keys[k]
		if ks == nil {
			ks = &keyState{}
			keys[k] = ks
		}
		return ks
	}
	for i := range txns {
		for _, op := range txns[i].Ops {
			k := kid{op.Table, op.Key}
			switch op.Kind {
			case obs.HistRead:
				at(k).reads = append(at(k).reads, rref{txn: i, seq: normSeq(op.Seq, o), inc: op.Inc})
			case obs.HistUpdate:
				at(k).writes = append(at(k).writes, wref{txn: i, seq: op.Seq, inc: op.Inc, haveInc: op.HaveInc})
			case obs.HistInsert:
				ks := at(k)
				ks.writes = append(ks.writes, wref{txn: i, seq: op.Seq, insert: true})
				ks.inserts++
			case obs.HistDelete:
				at(k).deletes = append(at(k).deletes, i)
			}
		}
	}
	return keys
}

// checkKey runs the per-record integrity checks and contributes the
// record's wr/ww/rw edges to the graph. Only called for non-churned
// records, whose versions form a single totally ordered chain.
func checkKey(k kid, ks *keyState, txns []obs.HistTxn, o Options, res *Result, g *graph) {
	w := ks.writes
	sort.Slice(w, func(i, j int) bool { return w[i].seq < w[j].seq })

	// Duplicate versions: two transactions installed the same sequence
	// number on one record — impossible when every installer holds the
	// record's lock (or its HTM protection).
	for i := 1; i < len(w); i++ {
		if w[i].seq == w[i-1].seq {
			res.Violations = append(res.Violations, &Violation{
				Kind: "duplicate-version", Table: k.table, Key: k.key,
				Txns: []uint64{txns[w[i-1].txn].ID, txns[w[i].txn].ID},
				Msg: fmt.Sprintf("record %d/%d: seq %d installed by both %s and %s",
					k.table, k.key, w[i].seq, txnLabel(txns, w[i-1].txn), txnLabel(txns, w[i].txn)),
			})
			return
		}
	}

	step := uint64(1)
	if o.Replicated {
		step = 2
	}
	if o.Strict {
		// One live record has one incarnation; updates disagreeing on it
		// mean a write landed on (or re-stamped) the wrong record identity.
		var inc uint64
		haveInc := false
		for _, ww := range w {
			if !ww.haveInc {
				continue
			}
			if haveInc && ww.inc != inc {
				res.Violations = append(res.Violations, &Violation{
					Kind: "incarnation-split", Table: k.table, Key: k.key,
					Txns: keyTxnIDs(txns, w),
					Msg: fmt.Sprintf("record %d/%d: updates carry incarnations %d and %d without any delete",
						k.table, k.key, inc, ww.inc),
				})
				return
			}
			inc, haveInc = ww.inc, true
		}
		// Version-chain gaps: a chain position no recorded transaction
		// installed (an unaccounted write).
		want := step
		if len(w) > 0 && w[0].insert {
			want = 0
			if o.Replicated {
				want = step
			}
		}
		for i, ww := range w {
			if ww.seq != want {
				res.Violations = append(res.Violations, &Violation{
					Kind: "version-gap", Table: k.table, Key: k.key,
					Txns: keyTxnIDs(txns, w),
					Msg: fmt.Sprintf("record %d/%d: expected version seq %d at chain position %d, found %d",
						k.table, k.key, want, i, ww.seq),
				})
				return
			}
			want = ww.seq + step
		}
	}

	bySeq := make(map[uint64]int, len(w))
	for i := range w {
		bySeq[w[i].seq] = i
	}
	for _, r := range ks.reads {
		wi, matched := bySeq[r.seq]
		switch {
		case matched:
			if o.Strict && !w[wi].insert && w[wi].haveInc && w[wi].inc != r.inc {
				res.Violations = append(res.Violations, &Violation{
					Kind: "read-incarnation", Table: k.table, Key: k.key,
					Txns: []uint64{txns[r.txn].ID, txns[w[wi].txn].ID},
					Msg: fmt.Sprintf("record %d/%d: %s read seq %d with incarnation %d, installer %s recorded %d",
						k.table, k.key, txnLabel(txns, r.txn), r.seq, r.inc, txnLabel(txns, w[wi].txn), w[wi].inc),
				})
				continue
			}
			// wr: installer before reader; rw: reader before successor.
			if w[wi].txn != r.txn {
				g.addEdge(w[wi].txn, r.txn)
			}
			if wi+1 < len(w) && w[wi+1].txn != r.txn {
				g.addEdge(r.txn, w[wi+1].txn)
			}
		case r.seq == 0:
			// Initial (load-time) version: the reader precedes every writer.
			if len(w) > 0 && w[0].txn != r.txn {
				g.addEdge(r.txn, w[0].txn)
			}
		case o.Strict:
			res.Violations = append(res.Violations, &Violation{
				Kind: "unknown-version", Table: k.table, Key: k.key,
				Txns: []uint64{txns[r.txn].ID},
				Msg: fmt.Sprintf("record %d/%d: %s read seq %d, which no recorded transaction installed",
					k.table, k.key, txnLabel(txns, r.txn), r.seq),
			})
		default:
			// Kill mode: the version may be an unobservable write of the
			// dead machine. Order the reader before the next recorded
			// version — sound, since versions are seq-ordered.
			res.Warnings = append(res.Warnings,
				fmt.Sprintf("record %d/%d: read of unrecorded seq %d (dead machine's write?)", k.table, k.key, r.seq))
			for wi := range w {
				if w[wi].seq > r.seq {
					if w[wi].txn != r.txn {
						g.addEdge(r.txn, w[wi].txn)
					}
					break
				}
			}
		}
	}
	// ww: the chain itself.
	for i := 1; i < len(w); i++ {
		if w[i-1].txn != w[i].txn {
			g.addEdge(w[i-1].txn, w[i].txn)
		}
	}
}

func keyTxnIDs(txns []obs.HistTxn, w []wref) []uint64 {
	ids := make([]uint64, 0, len(w))
	for _, ww := range w {
		ids = append(ids, txns[ww.txn].ID)
	}
	return ids
}

func txnLabel(txns []obs.HistTxn, i int) string {
	t := &txns[i]
	return fmt.Sprintf("txn %#x (n%d/w%d)", t.ID, t.Node, t.Worker)
}

// graph is the DSG plus real-time barrier nodes. Transaction i is node i;
// barrier nodes follow.
type graph struct {
	n   int // real transaction nodes
	adj [][]int32
}

func newGraph(n int) *graph {
	return &graph{n: n, adj: make([][]int32, n)}
}

func (g *graph) addEdge(from, to int) {
	g.adj[from] = append(g.adj[from], int32(to))
}

func (g *graph) addNode() int {
	g.adj = append(g.adj, nil)
	return len(g.adj) - 1
}

// addRealTimeEdges encodes "T1 responded before T2 was invoked ⇒ T1 before
// T2" with a barrier chain: one barrier node per transaction in response
// order, chained; each transaction feeds its barrier, and each transaction
// hangs off the last barrier that responded before its invocation. O(n)
// nodes and edges replace the O(n²) pairwise relation.
func addRealTimeEdges(g *graph, txns []obs.HistTxn) {
	n := len(txns)
	byResp := make([]int, n)
	for i := range byResp {
		byResp[i] = i
	}
	sort.Slice(byResp, func(a, b int) bool { return txns[byResp[a]].Response < txns[byResp[b]].Response })
	bars := make([]int, n)
	for bi, ti := range byResp {
		bars[bi] = g.addNode()
		g.addEdge(ti, bars[bi])
		if bi > 0 {
			g.addEdge(bars[bi-1], bars[bi])
		}
	}
	for i := range txns {
		// Last barrier whose transaction responded strictly before txn i's
		// invocation.
		lo, hi := 0, n
		for lo < hi {
			mid := (lo + hi) / 2
			if txns[byResp[mid]].Response < txns[i].Invoke {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo > 0 {
			g.addEdge(bars[lo-1], i)
		}
	}
}

// findCycle returns the node sequence of one directed cycle, or nil.
// Iterative three-color DFS so deep histories cannot overflow the stack.
func (g *graph) findCycle() []int {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make([]uint8, len(g.adj))
	parent := make([]int32, len(g.adj))
	type frame struct {
		node int
		next int
	}
	for start := range g.adj {
		if color[start] != white {
			continue
		}
		parent[start] = -1
		stack := []frame{{node: start}}
		color[start] = grey
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next < len(g.adj[f.node]) {
				to := int(g.adj[f.node][f.next])
				f.next++
				switch color[to] {
				case white:
					color[to] = grey
					parent[to] = int32(f.node)
					stack = append(stack, frame{node: to})
				case grey:
					// Back edge: walk parents from f.node to `to`.
					cyc := []int{to}
					for v := f.node; v != to; v = int(parent[v]) {
						cyc = append(cyc, v)
					}
					// Reverse into forward order.
					for i, j := 0, len(cyc)-1; i < j; i, j = i+1, j-1 {
						cyc[i], cyc[j] = cyc[j], cyc[i]
					}
					return cyc
				}
			} else {
				color[f.node] = black
				stack = stack[:len(stack)-1]
			}
		}
	}
	return nil
}

// cycleViolation renders a cycle (which may pass through barrier nodes)
// into a violation naming the real transactions involved.
func cycleViolation(cyc []int, txns []obs.HistTxn) *Violation {
	var ids []uint64
	var parts []string
	for _, n := range cyc {
		if n >= len(txns) {
			continue // barrier node: a real-time hop
		}
		ids = append(ids, txns[n].ID)
		parts = append(parts, fmt.Sprintf("%s%s", txnLabel(txns, n), opsSummary(&txns[n])))
	}
	return &Violation{
		Kind: "cycle",
		Txns: ids,
		Msg:  fmt.Sprintf("dependency cycle of %d transactions: %s", len(ids), strings.Join(parts, " -> ")),
	}
}

// opsSummary renders a transaction's operations compactly for diagnostics.
func opsSummary(t *obs.HistTxn) string {
	if len(t.Ops) == 0 {
		return ""
	}
	var parts []string
	for _, op := range t.Ops {
		switch op.Kind {
		case obs.HistRead:
			parts = append(parts, fmt.Sprintf("R %d/%d@%d", op.Table, op.Key, op.Seq))
		case obs.HistUpdate:
			parts = append(parts, fmt.Sprintf("W %d/%d@%d", op.Table, op.Key, op.Seq))
		case obs.HistInsert:
			parts = append(parts, fmt.Sprintf("I %d/%d@%d", op.Table, op.Key, op.Seq))
		case obs.HistDelete:
			parts = append(parts, fmt.Sprintf("D %d/%d", op.Table, op.Key))
		}
	}
	const maxOps = 6
	if len(parts) > maxOps {
		parts = append(parts[:maxOps], fmt.Sprintf("+%d more", len(parts)-maxOps))
	}
	return " [" + strings.Join(parts, "; ") + "]"
}
