package check

import (
	"testing"
)

// TestStaleIncarnationScenario is the targeted stale-incarnation mutation
// test: with the C.2 incarnation check disabled the stale write commits and
// the checker must reject the history; with the check in place the same
// schedule aborts the stale attempt and the history verifies.
func TestStaleIncarnationScenario(t *testing.T) {
	res, err := StaleIncarnationScenario(true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ok() {
		t.Fatalf("mutated protocol slipped past the checker: %s", res)
	}
	t.Logf("mutated: %s", res)

	res, err = StaleIncarnationScenario(false)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok() {
		t.Fatalf("correct protocol flagged: %s", res)
	}
	t.Logf("control: %s", res)
}

// TestMutationSelfTest proves the checker has teeth: each deliberately
// broken protocol step must be flagged as a strict-serializability
// violation.
func TestMutationSelfTest(t *testing.T) {
	for _, oc := range MutationSelfTest(7) {
		t.Log(oc)
		if !oc.Caught {
			t.Errorf("mutation %s not caught by the checker", oc.Name)
		}
	}
}

// TestTortureSweep runs the full knob matrix — coroutines × verb batching ×
// fallback pressure, plus replicated kill cells — on the UNBROKEN protocol
// and requires every cell's history to verify. Short mode shrinks the cells
// and skips the (wall-clock-timed) kill cells.
func TestTortureSweep(t *testing.T) {
	o := TortureOptions{Seed: 3, Kill: true}
	if testing.Short() {
		o.TxPerWorker = 60
		o.Coroutines = []int{4}
		o.Kill = false
	}
	rep := Torture(o)
	t.Logf("\n%s", rep)
	if !rep.Ok() {
		t.Fatalf("torture sweep found violations:\n%s", rep)
	}
	want := 10000
	if testing.Short() {
		want = 1000
	}
	if rep.TxnsChecked < want {
		t.Fatalf("sweep checked only %d transactions, want >= %d", rep.TxnsChecked, want)
	}
}

// TestTortureCellReplay re-runs one deterministic cell and requires the
// identical checker verdict and commit count — the property that makes a
// violating seed reproducible.
func TestTortureCellReplay(t *testing.T) {
	cells := Cells(TortureOptions{Seed: 11, TxPerWorker: 60})
	c := cells[0]
	a, b := RunCell(c), RunCell(c)
	if a.Committed != b.Committed || a.Check.Txns != b.Check.Txns {
		t.Fatalf("replay diverged: %d/%d txns vs %d/%d",
			a.Committed, a.Check.Txns, b.Committed, b.Check.Txns)
	}
}
