package check

import (
	"strings"
	"testing"

	"drtmr/internal/bench/harness"
)

// TestStaleIncarnationScenario is the targeted stale-incarnation mutation
// test: with the C.2 incarnation check disabled the stale write commits and
// the checker must reject the history; with the check in place the same
// schedule aborts the stale attempt and the history verifies.
func TestStaleIncarnationScenario(t *testing.T) {
	res, err := StaleIncarnationScenario(true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ok() {
		t.Fatalf("mutated protocol slipped past the checker: %s", res)
	}
	t.Logf("mutated: %s", res)

	res, err = StaleIncarnationScenario(false)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok() {
		t.Fatalf("correct protocol flagged: %s", res)
	}
	t.Logf("control: %s", res)
}

// TestMutationSelfTest proves the checker has teeth: each deliberately
// broken protocol step must be flagged as a strict-serializability
// violation.
func TestMutationSelfTest(t *testing.T) {
	for _, oc := range MutationSelfTest(7) {
		t.Log(oc)
		if !oc.Caught {
			t.Errorf("mutation %s not caught by the checker", oc.Name)
		}
	}
}

// TestTortureSweep runs the full knob matrix — coroutines × verb batching ×
// fallback pressure, plus replicated kill cells — on the UNBROKEN protocol
// and requires every cell's history to verify. Short mode shrinks the cells
// and skips the (wall-clock-timed) kill cells.
func TestTortureSweep(t *testing.T) {
	o := TortureOptions{Seed: 3, Kill: true}
	if testing.Short() {
		o.TxPerWorker = 60
		o.Coroutines = []int{4}
		o.Kill = false
	}
	rep := Torture(o)
	t.Logf("\n%s", rep)
	if !rep.Ok() {
		t.Fatalf("torture sweep found violations:\n%s", rep)
	}
	want := 10000
	if testing.Short() {
		want = 1000
	}
	if rep.TxnsChecked < want {
		t.Fatalf("sweep checked only %d transactions, want >= %d", rep.TxnsChecked, want)
	}
}

// TestTortureHotKeyCells drives the seeded hot-key cells directly: with two
// accounts per node every transaction collides, so the run exercises the
// contention manager's FIFO queue and commutative deltas (on) and the raw
// retry storm (off). Both must verify strictly serializable, and the managed
// run must not burn unboundedly more virtual time than the ablation — the
// queue converts wasted retry work into bounded waiting, it must not add a
// pathology of its own.
func TestTortureHotKeyCells(t *testing.T) {
	o := TortureOptions{Seed: 5}
	if testing.Short() {
		o.TxPerWorker = 60
	}
	var onSec, offSec float64
	for _, c := range Cells(o.defaults()) {
		if !strings.HasPrefix(c.Name, "drtmr hot-key") {
			continue
		}
		res := harness.Run(c.Opts)
		chk := Check(res.HistoryTxns(), c.CheckOpts)
		t.Logf("%s: committed=%d checked=%d virtual=%.3fs queueWaits=%d",
			c.Name, res.Committed, chk.Txns, res.VirtualSec, res.QueueWaits)
		if !chk.Ok() {
			t.Fatalf("%s violations:\n%v", c.Name, chk.Violations)
		}
		if res.Committed == 0 {
			t.Fatalf("%s committed nothing", c.Name)
		}
		switch {
		case strings.HasSuffix(c.Name, "=on"):
			onSec = res.VirtualSec
		case strings.HasSuffix(c.Name, "=off"):
			offSec = res.VirtualSec
		}
	}
	if onSec == 0 || offSec == 0 {
		t.Fatal("hot-key cells missing from the sweep")
	}
	// Generous bound: queueing must not cost more than 3x the pure-retry
	// ablation's virtual time on the same workload.
	if onSec > 3*offSec {
		t.Fatalf("contention manager virtual time unbounded: on=%.3fs vs off=%.3fs", onSec, offSec)
	}
}

// TestTortureCellReplay re-runs one deterministic cell and requires the
// identical checker verdict and commit count — the property that makes a
// violating seed reproducible.
func TestTortureCellReplay(t *testing.T) {
	cells := Cells(TortureOptions{Seed: 11, TxPerWorker: 60})
	c := cells[0]
	a, b := RunCell(c), RunCell(c)
	if a.Committed != b.Committed || a.Check.Txns != b.Check.Txns {
		t.Fatalf("replay diverged: %d/%d txns vs %d/%d",
			a.Committed, a.Check.Txns, b.Committed, b.Check.Txns)
	}
}

// TestTortureFarmCellReplay is the same replay property for the appended
// farm cells: a farm torture cell is a pure function of its embedded seed.
// It also pins the sweep layout — farm cells exist and come AFTER every
// drtmr cell, so drtmr cell indices (and therefore seeds) are unchanged by
// the protocol extension.
func TestTortureFarmCellReplay(t *testing.T) {
	cells := Cells(TortureOptions{Seed: 11, TxPerWorker: 60})
	first := -1
	for i, c := range cells {
		isFarm := strings.HasPrefix(c.Name, "farm ")
		if isFarm && first < 0 {
			first = i
		}
		if !isFarm && first >= 0 && strings.HasPrefix(c.Name, "drtmr") {
			t.Fatalf("drtmr cell %q at index %d after farm cells began at %d", c.Name, i, first)
		}
	}
	if first < 0 {
		t.Fatal("no farm cells in the default sweep")
	}
	c := cells[first]
	if c.Opts.Protocol != "farm" {
		t.Fatalf("farm cell %q carries Protocol %q", c.Name, c.Opts.Protocol)
	}
	a, b := RunCell(c), RunCell(c)
	if a.Committed != b.Committed || a.Check.Txns != b.Check.Txns {
		t.Fatalf("farm replay diverged: %d/%d txns vs %d/%d",
			a.Committed, a.Check.Txns, b.Committed, b.Check.Txns)
	}
	if !a.Check.Ok() {
		t.Fatalf("farm cell violations:\n%v", a.Check.Violations)
	}
}
