package check

import (
	"fmt"
	"strings"
	"time"

	"drtmr/internal/bench/harness"
	"drtmr/internal/htm"
	"drtmr/internal/txn"
)

// Torture harness: sweep the knob matrix — coroutines per worker × verb
// batching × HTM fallback pressure, plus replicated cells with a machine
// killed mid-run — run each cell under the deterministic schedule gate with
// history recording, and feed every history to the checker.
//
// The no-kill cells are fully deterministic: a cell's entire execution is a
// pure function of its harness.Options (the schedule gate serializes all
// workers through one seeded RNG), so a violating cell is replayed exactly
// by re-running RunCell with the reported cell — same seed, same
// interleaving, same violation. Kill cells are wall-clock timed and
// therefore only statistically reproducible; their seed still pins the
// workload and schedule preferences.

// TortureOptions configures a sweep. Zero values take torture defaults
// (NOT the harness's paper defaults — torture wants small, hot, conflicting
// workloads, not throughput-shaped ones).
type TortureOptions struct {
	Seed uint64

	Nodes           int
	ThreadsPerNode  int
	TxPerWorker     int
	AccountsPerNode int     // small => hot => real conflicts
	RemoteProb      float64 // cross-shard transaction probability

	// The knob matrix: one cell per combination.
	Coroutines   []int
	Batching     []bool
	FallbackProb []float64 // HTM spurious-abort probability (fallback pressure)

	// Protocols lists extra commit protocols to sweep AFTER the default
	// drtmr matrix: each named protocol gets a reduced matrix (coroutine ×
	// batching at zero fallback pressure, one fallback-pressure cell, the
	// hot-key contention pair, and — under Kill — a replicated kill cell).
	// nil sweeps ["farm"]; an empty non-nil slice sweeps none. The drtmr
	// cells always come first with unchanged seeds, so existing violating-
	// seed replays stay valid.
	Protocols []string

	// Kill adds replicated (3-way) cells that kill a machine mid-run.
	Kill bool
	// KillTxPerWorker sizes the kill cells (they are slower: wall-clock
	// failure detection, recovery, re-execution).
	KillTxPerWorker int

	// Mutations forwards protocol-breaking switches to every cell
	// (mutation-test mode; all-false sweeps the correct protocol).
	Mutations txn.Mutations
}

func (o TortureOptions) defaults() TortureOptions {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Nodes == 0 {
		o.Nodes = 3
	}
	if o.ThreadsPerNode == 0 {
		o.ThreadsPerNode = 2
	}
	if o.TxPerWorker == 0 {
		o.TxPerWorker = 220
	}
	if o.AccountsPerNode == 0 {
		o.AccountsPerNode = 40
	}
	if o.RemoteProb == 0 {
		o.RemoteProb = 0.35
	}
	if len(o.Coroutines) == 0 {
		o.Coroutines = []int{1, 4}
	}
	if len(o.Batching) == 0 {
		o.Batching = []bool{true, false}
	}
	if len(o.FallbackProb) == 0 {
		o.FallbackProb = []float64{0, 0.15}
	}
	if o.KillTxPerWorker == 0 {
		o.KillTxPerWorker = 150
	}
	if o.Protocols == nil {
		o.Protocols = []string{"farm"}
	}
	return o
}

// Cell is one sweep point: everything needed to run (or replay) it.
type Cell struct {
	Name      string
	Opts      harness.Options
	CheckOpts Options
}

// CellResult is one executed cell plus its checker verdict.
type CellResult struct {
	Cell      Cell
	Committed uint64
	Check     *Result
}

// Report is a full sweep's outcome.
type Report struct {
	Cells       []CellResult
	TxnsChecked int
}

// Ok reports whether every cell's history checked out.
func (r *Report) Ok() bool {
	for i := range r.Cells {
		if !r.Cells[i].Check.Ok() {
			return false
		}
	}
	return true
}

// Violations flattens every cell's violations, tagged with the cell name.
func (r *Report) Violations() []string {
	var out []string
	for i := range r.Cells {
		for _, v := range r.Cells[i].Check.Violations {
			out = append(out, fmt.Sprintf("[%s seed=%#x] %s", r.Cells[i].Cell.Name, r.Cells[i].Cell.Opts.Seed, v))
		}
	}
	return out
}

func (r *Report) String() string {
	var b strings.Builder
	for i := range r.Cells {
		c := &r.Cells[i]
		status := "ok"
		if !c.Check.Ok() {
			status = "VIOLATION"
		}
		fmt.Fprintf(&b, "%-44s seed=%#-18x committed=%-6d checked=%-6d %s\n",
			c.Cell.Name, c.Cell.Opts.Seed, c.Committed, c.Check.Txns, status)
		for _, v := range c.Check.Violations {
			fmt.Fprintf(&b, "    %s\n", v)
		}
	}
	fmt.Fprintf(&b, "%d cells, %d transactions checked", len(r.Cells), r.TxnsChecked)
	if !r.Ok() {
		fmt.Fprintf(&b, " — VIOLATIONS FOUND (replay any cell with its seed)")
	}
	return b.String()
}

// cellSeed derives a cell's seed from the sweep seed: splitmix-style so
// neighbouring cells get uncorrelated streams.
func cellSeed(seed uint64, idx int) uint64 {
	z := seed + uint64(idx+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Cells expands the knob matrix into runnable sweep points.
func Cells(o TortureOptions) []Cell {
	o = o.defaults()
	var cells []Cell
	idx := 0
	for _, co := range o.Coroutines {
		for _, batch := range o.Batching {
			for _, fb := range o.FallbackProb {
				seed := cellSeed(o.Seed, idx)
				idx++
				cells = append(cells, Cell{
					Name: fmt.Sprintf("drtmr coro=%d batch=%v fallback=%.2f", co, batch, fb),
					Opts: harness.Options{
						System:              harness.SysDrTMR,
						Workload:            harness.WLSmallBank,
						Nodes:               o.Nodes,
						ThreadsPerNode:      o.ThreadsPerNode,
						TxPerWorker:         o.TxPerWorker,
						SBAccountsPerNode:   o.AccountsPerNode,
						SBRemoteProb:        o.RemoteProb,
						CoroutinesPerWorker: co,
						DisableVerbBatching: !batch,
						History:             true,
						Deterministic:       true,
						Mutations:           o.Mutations,
						Seed:                seed,
						HTM:                 htm.Config{SpuriousAbortProb: fb, Seed: seed ^ 0xA5A5},
					},
					CheckOpts: Options{Strict: true},
				})
			}
		}
	}
	// Hot-key cells: two accounts per node funnel nearly every transaction
	// through the same records, driving the contention manager's FIFO queue
	// and commutative-delta commit paths (on) and the pure-OCC retry storm
	// they replace (off). Both must stay strictly serializable. Half the
	// transaction budget: the off cell retries each conflict many times.
	for _, mode := range []txn.ContentionMode{txn.ContentionOn, txn.ContentionOff} {
		seed := cellSeed(o.Seed, idx)
		idx++
		cells = append(cells, Cell{
			Name: fmt.Sprintf("drtmr hot-key contention=%s", mode),
			Opts: harness.Options{
				System:              harness.SysDrTMR,
				Workload:            harness.WLSmallBank,
				Nodes:               o.Nodes,
				ThreadsPerNode:      o.ThreadsPerNode,
				TxPerWorker:         o.TxPerWorker / 2,
				SBAccountsPerNode:   2,
				SBRemoteProb:        o.RemoteProb,
				CoroutinesPerWorker: 4,
				ContentionMode:      mode,
				History:             true,
				Deterministic:       true,
				Mutations:           o.Mutations,
				Seed:                seed,
			},
			CheckOpts: Options{Strict: true},
		})
	}
	if o.Kill {
		for _, co := range o.Coroutines {
			seed := cellSeed(o.Seed, idx)
			idx++
			cells = append(cells, Cell{
				Name: fmt.Sprintf("drtmr/r=3 coro=%d KILL node %d", co, o.Nodes-1),
				Opts: harness.Options{
					System:              harness.SysDrTMR3,
					Workload:            harness.WLSmallBank,
					Nodes:               o.Nodes,
					ThreadsPerNode:      o.ThreadsPerNode,
					TxPerWorker:         o.KillTxPerWorker,
					SBAccountsPerNode:   o.AccountsPerNode,
					SBRemoteProb:        o.RemoteProb,
					CoroutinesPerWorker: co,
					History:             true,
					Mutations:           o.Mutations,
					Seed:                seed,
					KillAfter:           12 * time.Millisecond,
					KillNode:            o.Nodes - 1,
					Lease:               80 * time.Millisecond,
					HeartbeatEvery:      8 * time.Millisecond,
				},
				// Kill histories are incomplete by design: the dead
				// machine's in-flight effects are only partially
				// observable, and a promoted backup's record copies carry
				// different incarnations than the dead primary's, so the
				// strict checks would false-flag.
				CheckOpts: Options{Strict: false, Replicated: true},
			})
		}
	}
	// Extra commit protocols sweep a reduced matrix after every drtmr cell
	// (idx keeps counting, so drtmr cell seeds are unchanged by this block).
	// The coroutine × batching grid runs at zero HTM pressure — a protocol
	// like farm has no HTM commit region, so fallback pressure only matters
	// as background noise, covered by one dedicated cell.
	for _, proto := range o.Protocols {
		for _, co := range o.Coroutines {
			for _, batch := range o.Batching {
				seed := cellSeed(o.Seed, idx)
				idx++
				cells = append(cells, Cell{
					Name: fmt.Sprintf("%s coro=%d batch=%v", proto, co, batch),
					Opts: harness.Options{
						System:              harness.SysDrTMR,
						Workload:            harness.WLSmallBank,
						Protocol:            proto,
						Nodes:               o.Nodes,
						ThreadsPerNode:      o.ThreadsPerNode,
						TxPerWorker:         o.TxPerWorker,
						SBAccountsPerNode:   o.AccountsPerNode,
						SBRemoteProb:        o.RemoteProb,
						CoroutinesPerWorker: co,
						DisableVerbBatching: !batch,
						History:             true,
						Deterministic:       true,
						Mutations:           o.Mutations,
						Seed:                seed,
					},
					CheckOpts: Options{Strict: true},
				})
			}
		}
		// HTM spurious aborts as background noise (execution-phase regions).
		{
			seed := cellSeed(o.Seed, idx)
			idx++
			cells = append(cells, Cell{
				Name: fmt.Sprintf("%s coro=4 batch=true htm-noise=0.15", proto),
				Opts: harness.Options{
					System:              harness.SysDrTMR,
					Workload:            harness.WLSmallBank,
					Protocol:            proto,
					Nodes:               o.Nodes,
					ThreadsPerNode:      o.ThreadsPerNode,
					TxPerWorker:         o.TxPerWorker,
					SBAccountsPerNode:   o.AccountsPerNode,
					SBRemoteProb:        o.RemoteProb,
					CoroutinesPerWorker: 4,
					History:             true,
					Deterministic:       true,
					Mutations:           o.Mutations,
					Seed:                seed,
					HTM:                 htm.Config{SpuriousAbortProb: 0.15, Seed: seed ^ 0xA5A5},
				},
				CheckOpts: Options{Strict: true},
			})
		}
		for _, mode := range []txn.ContentionMode{txn.ContentionOn, txn.ContentionOff} {
			seed := cellSeed(o.Seed, idx)
			idx++
			cells = append(cells, Cell{
				Name: fmt.Sprintf("%s hot-key contention=%s", proto, mode),
				Opts: harness.Options{
					System:              harness.SysDrTMR,
					Workload:            harness.WLSmallBank,
					Protocol:            proto,
					Nodes:               o.Nodes,
					ThreadsPerNode:      o.ThreadsPerNode,
					TxPerWorker:         o.TxPerWorker / 2,
					SBAccountsPerNode:   2,
					SBRemoteProb:        o.RemoteProb,
					CoroutinesPerWorker: 4,
					ContentionMode:      mode,
					History:             true,
					Deterministic:       true,
					Mutations:           o.Mutations,
					Seed:                seed,
				},
				CheckOpts: Options{Strict: true},
			})
		}
		if o.Kill {
			for _, co := range o.Coroutines {
				seed := cellSeed(o.Seed, idx)
				idx++
				cells = append(cells, Cell{
					Name: fmt.Sprintf("%s/r=3 coro=%d KILL node %d", proto, co, o.Nodes-1),
					Opts: harness.Options{
						System:              harness.SysDrTMR3,
						Workload:            harness.WLSmallBank,
						Protocol:            proto,
						Nodes:               o.Nodes,
						ThreadsPerNode:      o.ThreadsPerNode,
						TxPerWorker:         o.KillTxPerWorker,
						SBAccountsPerNode:   o.AccountsPerNode,
						SBRemoteProb:        o.RemoteProb,
						CoroutinesPerWorker: co,
						History:             true,
						Mutations:           o.Mutations,
						Seed:                seed,
						KillAfter:           12 * time.Millisecond,
						KillNode:            o.Nodes - 1,
						Lease:               80 * time.Millisecond,
						HeartbeatEvery:      8 * time.Millisecond,
					},
					CheckOpts: Options{Strict: false, Replicated: true},
				})
			}
		}
	}
	return cells
}

// RunCell executes one sweep point and checks its history. Deterministic
// cells replay exactly from the embedded seed; this is also the violating-
// seed replay entry point.
func RunCell(c Cell) CellResult {
	res := harness.Run(c.Opts)
	return CellResult{
		Cell:      c,
		Committed: res.Committed,
		Check:     Check(res.HistoryTxns(), c.CheckOpts),
	}
}

// Torture runs the whole sweep.
func Torture(o TortureOptions) *Report {
	rep := &Report{}
	for _, c := range Cells(o) {
		cr := RunCell(c)
		rep.Cells = append(rep.Cells, cr)
		rep.TxnsChecked += cr.Check.Txns
	}
	return rep
}
