package check

import (
	"testing"

	"drtmr/internal/obs"
)

// --- hand-built history helpers (table 1, one record per key) ---

func ht(id uint64, inv, resp uint64, ops ...obs.HistOp) obs.HistTxn {
	return obs.HistTxn{ID: id, Invoke: inv, Response: resp, Ops: ops}
}

func rd(key, seq, inc uint64) obs.HistOp {
	return obs.HistOp{Kind: obs.HistRead, Table: 1, Key: key, Seq: seq, Inc: inc, HaveInc: true}
}

func up(key, seq, inc uint64) obs.HistOp {
	return obs.HistOp{Kind: obs.HistUpdate, Table: 1, Key: key, Seq: seq, Inc: inc, HaveInc: true}
}

func ins(key, seq uint64) obs.HistOp {
	return obs.HistOp{Kind: obs.HistInsert, Table: 1, Key: key, Seq: seq}
}

func del(key uint64) obs.HistOp {
	return obs.HistOp{Kind: obs.HistDelete, Table: 1, Key: key}
}

func wantOK(t *testing.T, hist []obs.HistTxn, o Options) *Result {
	t.Helper()
	res := Check(hist, o)
	if !res.Ok() {
		t.Fatalf("expected serializable, got: %s", res)
	}
	return res
}

func wantViolation(t *testing.T, hist []obs.HistTxn, o Options, kind string) *Result {
	t.Helper()
	res := Check(hist, o)
	if res.Ok() {
		t.Fatalf("expected %q violation, checker passed: %s", kind, res)
	}
	if res.Violations[0].Kind != kind {
		t.Fatalf("expected %q violation, got: %s", kind, res.Violations[0])
	}
	return res
}

func TestSerializableChain(t *testing.T) {
	res := wantOK(t, []obs.HistTxn{
		ht(1, 0, 1, rd(7, 0, 5), up(7, 1, 5)),
		ht(2, 2, 3, rd(7, 1, 5), up(7, 2, 5)),
		ht(3, 4, 5, rd(7, 2, 5)),
	}, Options{Strict: true})
	if !res.Searched || !res.SearchOK {
		t.Fatalf("small strict history should be search-confirmed: %+v", res)
	}
	if res.Keys != 1 || res.Txns != 3 {
		t.Fatalf("bad accounting: %+v", res)
	}
}

func TestLostUpdateCycle(t *testing.T) {
	// Both transactions read the initial version, both write: the classic
	// lost update. Overlapping in real time, so only the data edges convict.
	wantViolation(t, []obs.HistTxn{
		ht(1, 0, 10, rd(7, 0, 5), up(7, 1, 5)),
		ht(2, 1, 11, rd(7, 0, 5), up(7, 2, 5)),
	}, Options{Strict: true}, "cycle")
}

func TestDuplicateVersion(t *testing.T) {
	wantViolation(t, []obs.HistTxn{
		ht(1, 0, 10, up(7, 1, 5)),
		ht(2, 1, 11, up(7, 1, 5)),
	}, Options{Strict: true}, "duplicate-version")
}

func TestVersionGap(t *testing.T) {
	wantViolation(t, []obs.HistTxn{
		ht(1, 0, 1, up(7, 1, 5)),
		ht(2, 2, 3, up(7, 3, 5)),
	}, Options{Strict: true}, "version-gap")
}

func TestVersionGapReplicated(t *testing.T) {
	// Replicated chains step by 2; 2 -> 4 is complete, 2 -> 6 has a hole.
	wantOK(t, []obs.HistTxn{
		ht(1, 0, 1, up(7, 2, 5)),
		ht(2, 2, 3, up(7, 4, 5)),
	}, Options{Strict: true, Replicated: true})
	wantViolation(t, []obs.HistTxn{
		ht(1, 0, 1, up(7, 2, 5)),
		ht(2, 2, 3, up(7, 6, 5)),
	}, Options{Strict: true, Replicated: true}, "version-gap")
}

func TestUnknownVersion(t *testing.T) {
	wantViolation(t, []obs.HistTxn{
		ht(1, 0, 1, rd(7, 9, 5)),
	}, Options{Strict: true}, "unknown-version")
	// Kill mode: the version may be the dead machine's unobservable write.
	res := Check([]obs.HistTxn{ht(1, 0, 1, rd(7, 9, 5))}, Options{})
	if !res.Ok() || len(res.Warnings) == 0 {
		t.Fatalf("kill mode should warn, not flag: %+v", res)
	}
}

func TestRealTimeViolation(t *testing.T) {
	// T2 starts after T1's response yet reads the pre-T1 version: fine for
	// plain serializability, a violation of STRICT serializability.
	wantViolation(t, []obs.HistTxn{
		ht(1, 0, 10, up(7, 1, 5)),
		ht(2, 20, 30, rd(7, 0, 5)),
	}, Options{Strict: true}, "cycle")
	// The same reads with overlapping intervals are fine (T2 serializes
	// before T1).
	wantOK(t, []obs.HistTxn{
		ht(1, 0, 10, up(7, 1, 5)),
		ht(2, 5, 30, rd(7, 0, 5)),
	}, Options{Strict: true})
}

func TestIncarnationSplit(t *testing.T) {
	wantViolation(t, []obs.HistTxn{
		ht(1, 0, 1, up(7, 1, 5)),
		ht(2, 2, 3, up(7, 2, 6)),
	}, Options{Strict: true}, "incarnation-split")
}

func TestReadIncarnationMismatch(t *testing.T) {
	wantViolation(t, []obs.HistTxn{
		ht(1, 0, 1, up(7, 1, 5)),
		ht(2, 2, 3, rd(7, 1, 6)),
	}, Options{Strict: true}, "read-incarnation")
}

func TestMaybeCommitInclusion(t *testing.T) {
	maybe := ht(1, 0, 1, up(7, 1, 5))
	maybe.Maybe = true

	// Unobserved maybe-commit: excluded, and the survivor's read of the
	// initial version stays consistent.
	res := wantOK(t, []obs.HistTxn{maybe, ht(2, 2, 3, rd(7, 0, 5))}, Options{})
	if res.Excluded != 1 || res.Txns != 1 {
		t.Fatalf("unobserved maybe-commit should be excluded: %+v", res)
	}

	// Observed maybe-commit: its write was read, so it provably happened
	// and joins the history.
	res = wantOK(t, []obs.HistTxn{maybe, ht(2, 2, 3, rd(7, 1, 5))}, Options{})
	if res.Excluded != 0 || res.Txns != 2 {
		t.Fatalf("observed maybe-commit should be included: %+v", res)
	}
}

func TestChurnSearchCatchesDeletedRead(t *testing.T) {
	// insert -> delete -> read claiming to still see the inserted version,
	// invoked after the delete responded. The graph pass skips churned
	// records entirely; only the exhaustive search convicts.
	wantViolation(t, []obs.HistTxn{
		ht(1, 0, 1, ins(7, 0)),
		ht(2, 2, 3, del(7)),
		ht(3, 4, 5, rd(7, 0, 9)),
	}, Options{Strict: true}, "unserializable")
}

func TestChurnReinsertOK(t *testing.T) {
	// insert -> delete -> re-insert -> read: the read matches the second
	// insert; the search must find the obvious order (and must not confuse
	// the two same-seq inserts).
	res := wantOK(t, []obs.HistTxn{
		ht(1, 0, 1, ins(7, 0)),
		ht(2, 2, 3, del(7)),
		ht(3, 4, 5, ins(7, 0)),
		ht(4, 6, 7, rd(7, 0, 9)),
	}, Options{Strict: true})
	if !res.Searched {
		t.Fatal("churned history should have been searched")
	}
}

func TestEmptyAndTrivialHistories(t *testing.T) {
	wantOK(t, nil, Options{Strict: true})
	wantOK(t, []obs.HistTxn{ht(1, 0, 1)}, Options{Strict: true})
}
