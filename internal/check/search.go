package check

import "drtmr/internal/obs"

// Wing–Gong style exhaustive serializability search. Unlike the graph pass,
// which trusts the recorded version order, this pass re-derives
// serializability from first principles: it tries to build a serial order of
// the transactions, one at a time, simulating per-record version state and
// only scheduling a transaction when (a) every transaction that responded
// before its invocation is already placed (strictness) and (b) every one of
// its reads matches the simulated current version of the record. Memoizing
// on the set of placed transactions (the order within the set does not
// affect the resulting state, since each record's state is just the token of
// its last writer) makes it O(2^n · ops) instead of O(n! · ops), which is
// why callers cap n at Options.SearchLimit.
//
// This pass is the authority for records that are deleted and re-inserted:
// their version chains restart at sequence 0 per incarnation epoch, which
// the graph pass cannot order, but the simulation handles naturally —
// a delete sets the record to a "deleted" state no read matches, an insert
// installs a fresh token, and reads distinguish same-sequence versions of
// different epochs by incarnation.

const (
	tokInitial = -1 // record's load-time state (or never existed)
	tokDeleted = -2 // record state after a delete
)

// sRead is one read obligation: the simulated state of key must be one of
// the candidate tokens. Multiple candidates arise when distinct inserts of a
// re-used key are indistinguishable (inserts carry no incarnation).
type sRead struct {
	key  kid
	cand []int
}

// sWrite is one state mutation (update/insert install tok; delete installs
// tokDeleted).
type sWrite struct {
	key kid
	tok int
}

type sProg struct {
	reads  []sRead
	writes []sWrite
	need   uint64 // bitmask of transactions that must precede (real time)
}

// searchMemoCap bounds the memo table; beyond it the search gives up and
// reports itself incomplete rather than burning unbounded memory.
const searchMemoCap = 1 << 22

// searchSerializable reports whether some serial order consistent with real
// time explains every read. complete=false means the search could not run
// (too many transactions) or gave up (memo cap); its ok value is then
// meaningless.
func searchSerializable(txns []obs.HistTxn, keys map[kid]*keyState, o Options) (ok, complete bool) {
	n := len(txns)
	if n == 0 {
		return true, true
	}
	if n > 63 {
		return false, false
	}

	// Assign every installed version a token and index them per key.
	type tokVer struct {
		tok     int
		seq     uint64
		inc     uint64
		haveInc bool
		insert  bool
	}
	byKey := make(map[kid][]tokVer)
	next := 0
	tokOf := make([]map[int]int, n) // txn -> op index -> token
	for i := range txns {
		tokOf[i] = make(map[int]int)
		for oi, op := range txns[i].Ops {
			if op.Kind != obs.HistUpdate && op.Kind != obs.HistInsert {
				continue
			}
			k := kid{op.Table, op.Key}
			tokOf[i][oi] = next
			byKey[k] = append(byKey[k], tokVer{
				tok: next, seq: op.Seq, inc: op.Inc,
				haveInc: op.HaveInc, insert: op.Kind == obs.HistInsert,
			})
			next++
		}
	}

	progs := make([]sProg, n)
	for i := range txns {
		p := &progs[i]
		for oi, op := range txns[i].Ops {
			k := kid{op.Table, op.Key}
			switch op.Kind {
			case obs.HistRead:
				seq := normSeq(op.Seq, o)
				var cand []int
				for _, v := range byKey[k] {
					if v.seq != seq {
						continue
					}
					if v.insert || !v.haveInc || v.inc == op.Inc {
						cand = append(cand, v.tok)
					}
				}
				if seq == 0 {
					cand = append(cand, tokInitial)
				}
				p.reads = append(p.reads, sRead{key: k, cand: cand})
			case obs.HistUpdate, obs.HistInsert:
				p.writes = append(p.writes, sWrite{key: k, tok: tokOf[i][oi]})
			case obs.HistDelete:
				p.writes = append(p.writes, sWrite{key: k, tok: tokDeleted})
			}
		}
		for j := range txns {
			if txns[j].Response < txns[i].Invoke {
				p.need |= uint64(1) << j
			}
		}
	}

	full := uint64(1)<<n - 1
	failed := make(map[uint64]bool)
	state := make(map[kid]int)
	gaveUp := false

	type undoEnt struct {
		key  kid
		prev int
		had  bool
	}
	var rec func(mask uint64) bool
	rec = func(mask uint64) bool {
		if mask == full {
			return true
		}
		if failed[mask] || gaveUp {
			return false
		}
		for i := 0; i < n; i++ {
			bit := uint64(1) << i
			if mask&bit != 0 || progs[i].need&^mask != 0 {
				continue
			}
			enabled := true
			for _, r := range progs[i].reads {
				cur, have := state[r.key]
				if !have {
					cur = tokInitial
				}
				match := false
				for _, c := range r.cand {
					if c == cur {
						match = true
						break
					}
				}
				if !match {
					enabled = false
					break
				}
			}
			if !enabled {
				continue
			}
			var undos []undoEnt
			for _, w := range progs[i].writes {
				prev, had := state[w.key]
				undos = append(undos, undoEnt{w.key, prev, had})
				state[w.key] = w.tok
			}
			if rec(mask | bit) {
				return true
			}
			for j := len(undos) - 1; j >= 0; j-- {
				u := undos[j]
				if u.had {
					state[u.key] = u.prev
				} else {
					delete(state, u.key)
				}
			}
		}
		if len(failed) >= searchMemoCap {
			gaveUp = true
			return false
		}
		failed[mask] = true
		return false
	}
	ok = rec(0)
	return ok, !gaveUp
}
