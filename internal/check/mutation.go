package check

import (
	"fmt"
	"sort"

	"drtmr/internal/bench/harness"
	"drtmr/internal/cluster"
	"drtmr/internal/memstore"
	"drtmr/internal/obs"
	"drtmr/internal/txn"
)

// Mutation-test mode: re-run the torture workload with exactly one protocol
// step disabled and assert the checker flags the resulting histories. A
// checker that passes correct histories proves nothing by itself — only
// catching known-broken protocols shows it has teeth.

// MutationOutcome reports whether the checker caught one protocol mutation.
type MutationOutcome struct {
	Name      string
	Caught    bool
	Seed      uint64     // seed of the catching cell (deterministic replay)
	Violation *Violation // first violation found
}

func (m MutationOutcome) String() string {
	if !m.Caught {
		return fmt.Sprintf("%-22s NOT CAUGHT", m.Name)
	}
	return fmt.Sprintf("%-22s caught (seed=%#x): %s", m.Name, m.Seed, m.Violation)
}

// mutationCell is one high-contention deterministic cell: few, hot accounts
// and heavy cross-shard traffic so a disabled protocol step corrupts the
// history within a short run.
func mutationCell(mut txn.Mutations, seed uint64) Cell {
	return Cell{
		Name: "mutation",
		Opts: harness.Options{
			System:              harness.SysDrTMR,
			Workload:            harness.WLSmallBank,
			Nodes:               3,
			ThreadsPerNode:      2,
			TxPerWorker:         130,
			SBAccountsPerNode:   16,
			SBRemoteProb:        0.5,
			CoroutinesPerWorker: 4,
			History:             true,
			Deterministic:       true,
			Mutations:           mut,
			Seed:                seed,
		},
		CheckOpts: Options{Strict: true},
	}
}

// MutationSelfTest disables one protocol step at a time and runs the
// checker against the damage. Each lock/validate mutation is tried under a
// handful of derived seeds (whether a specific schedule trips over the
// missing step is seed-dependent; each individual seed replays
// deterministically). The stale-incarnation mutation needs delete/re-insert
// churn that SmallBank never generates, so it runs a dedicated scenario.
func MutationSelfTest(seed uint64) []MutationOutcome {
	cases := []struct {
		name string
		mut  txn.Mutations
	}{
		{"skip-remote-validate", txn.Mutations{SkipRemoteValidate: true}},
		{"skip-local-validate", txn.Mutations{SkipLocalValidate: true}},
		{"ignore-lock-fail", txn.Mutations{IgnoreLockFail: true}},
	}
	var out []MutationOutcome
	for ci, cse := range cases {
		oc := MutationOutcome{Name: cse.name}
		for try := 0; try < 8 && !oc.Caught; try++ {
			s := cellSeed(seed^0xC0FFEE, ci*64+try)
			cr := RunCell(mutationCell(cse.mut, s))
			if !cr.Check.Ok() {
				oc.Caught = true
				oc.Seed = s
				oc.Violation = cr.Check.Violations[0]
			}
		}
		out = append(out, oc)
	}

	oc := MutationOutcome{Name: "skip-inc-check"}
	if res, err := StaleIncarnationScenario(true); err == nil && !res.Ok() {
		oc.Caught = true
		oc.Violation = res.Violations[0]
	}
	out = append(out, oc)
	return out
}

// StaleIncarnationScenario exercises the stale-incarnation protocol bug:
// a coordinator reads a remote record, the record is deleted and re-inserted
// (same key, new incarnation — the fresh record reuses the freed block, so
// the coordinator's cached offset still points at live data) and pumped back
// to the exact sequence number the coordinator observed, and then the
// coordinator commits an update over its stale read. The incarnation check
// in C.2 exists precisely for this: sequence numbers restart per
// incarnation, so seq alone cannot expose the churn. With mutated=true the
// check is disabled (txn.Mutations.SkipIncCheck), the stale write commits,
// a final read-only transaction observes it, and the checker must reject
// the history; with mutated=false the protocol aborts the stale attempt,
// the retry reads fresh state, and the history must verify.
func StaleIncarnationScenario(mutated bool) (*Result, error) {
	const tbl memstore.TableID = 1
	c := cluster.New(cluster.Spec{
		Nodes: 2, Replicas: 1, MemBytes: 16 << 20, RingBytes: 1 << 16,
	})
	for _, m := range c.Machines {
		m.Store.CreateTable(tbl, memstore.TableSpec{
			Name: "churn", ValueSize: 8, ExpectedRows: 64,
		})
	}
	part := func(_ memstore.TableID, key uint64) cluster.ShardID {
		return cluster.ShardID(key % 2)
	}
	e0 := txn.NewEngine(c.Machines[0], part, txn.DefaultCosts())
	e1 := txn.NewEngine(c.Machines[1], part, txn.DefaultCosts())
	e0.Mut = txn.Mutations{SkipIncCheck: mutated}
	c.Start()
	defer c.Stop()

	ts := obs.NewTickSource()
	w := e0.NewWorker(0) // the coordinator with the stale read
	v := e1.NewWorker(0) // the churner, local to the record
	w.EnableHistory(ts)
	v.EnableHistory(ts)

	const k = 1 // key 1 -> shard 1: local to v, remote to w
	val := func(x byte) []byte { return []byte{x, 0, 0, 0, 0, 0, 0, 0} }
	update := func() error {
		return v.Run(func(tx *txn.Txn) error {
			if _, err := tx.ReadForUpdate(tbl, k); err != nil {
				return err
			}
			return tx.Write(tbl, k, val(9))
		})
	}
	churn := func(newVal byte) error {
		if err := v.Run(func(tx *txn.Txn) error { return tx.Delete(tbl, k) }); err != nil {
			return err
		}
		if err := v.Run(func(tx *txn.Txn) error { return tx.Insert(tbl, k, val(newVal)) }); err != nil {
			return err
		}
		// Pump the fresh record's sequence number back to where the stale
		// reader saw it.
		for i := 0; i < 4; i++ {
			if err := update(); err != nil {
				return err
			}
		}
		return nil
	}

	if err := v.Run(func(tx *txn.Txn) error { return tx.Insert(tbl, k, val(1)) }); err != nil {
		return nil, fmt.Errorf("check: churn setup: %w", err)
	}
	for i := 0; i < 4; i++ {
		if err := update(); err != nil {
			return nil, fmt.Errorf("check: churn setup: %w", err)
		}
	}

	churned := false
	var churnErr error
	if err := w.Run(func(tx *txn.Txn) error {
		if _, err := tx.Read(tbl, k); err != nil {
			return err
		}
		if !churned {
			churned = true
			churnErr = churn(2)
		}
		if churnErr != nil {
			return nil // surface below; commit the empty-ish txn
		}
		return tx.Write(tbl, k, val(7))
	}); err != nil {
		return nil, fmt.Errorf("check: stale writer: %w", err)
	}
	if churnErr != nil {
		return nil, fmt.Errorf("check: churn: %w", churnErr)
	}

	// The observer: without it the stale write is never read, and the
	// history stays (vacuously) serializable — a write nobody observed can
	// be serialized before the churn.
	if err := v.RunReadOnly(func(tx *txn.Txn) error {
		_, err := tx.Read(tbl, k)
		return err
	}); err != nil {
		return nil, fmt.Errorf("check: observer: %w", err)
	}

	hist := append(w.Hist.Txns(), v.Hist.Txns()...)
	sort.Slice(hist, func(i, j int) bool { return hist[i].Invoke < hist[j].Invoke })
	return Check(hist, Options{Strict: true}), nil
}
