package lint

import (
	"sort"

	"drtmr/internal/lint/analysis"
)

// HotAlloc enforces that every function annotated //drtmr:hotpath is
// transitively allocation-free. The walker records local allocation sites
// (append growth, make/new, composite-literal escapes, closures, map writes,
// string concatenation and conversions, interface boxing at call arguments,
// go statements) and the summary fixpoint folds callee allocations upward,
// so a hotpath caller inherits a deep callee's allocation with a via chain
// naming the witness. Dynamic calls and unsummarized callees cannot be
// proven allocation-free and are reported as such; the paired
// AllocsPerRun == 0 runtime tests (internal/txn/hotpath_alloc_test.go)
// cross-validate the static verdicts.
var HotAlloc = &analysis.Analyzer{
	Name:          "hotalloc",
	Doc:           "functions marked //drtmr:hotpath must be transitively allocation-free",
	Run:           runHotAlloc,
	PackageFilter: isSummaryPackage,
}

func runHotAlloc(pass *analysis.Pass) error {
	pf := pass.Facts
	if pf == nil {
		return nil
	}
	keys := make([]string, 0, len(pf.Local))
	for k := range pf.Local {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	for _, k := range keys {
		ff := pf.Local[k]
		if !ff.Summary.Hotpath {
			continue
		}
		for _, op := range ff.Allocs {
			pass.Reportf(op.Pos, "allocation in hotpath function: %s", op.What)
		}
		for _, cs := range ff.Calls {
			switch {
			case cs.Op != "":
				// Channel operations do not allocate.
			case cs.Dyn != "":
				pass.Reportf(cs.Pos, "hotpath function makes a %s, which cannot be proven allocation-free", cs.Dyn)
			case cs.Callee != "":
				cal := pf.Lookup(cs.Callee)
				if cal == nil {
					pass.Reportf(cs.Pos, "hotpath function calls %s, which has no summary and cannot be proven allocation-free",
						analysis.ShortName(cs.Callee))
					continue
				}
				if cal.Flags&analysis.FlagAlloc != 0 {
					pass.Reportf(cs.Pos, "hotpath function calls %s, which may allocate%s",
						analysis.ShortName(cs.Callee), viaClause(cs.Callee, cal.AllocVia))
				}
			}
		}
	}
	return nil
}
