package lint_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// TestVettoolProtocol builds cmd/drtmr-vet and drives it through the real
// `go vet -vettool` protocol over the commit-pipeline packages — the
// acceptance path check.sh gates on. The suite must come back clean: every
// repo finding is either fixed or carries a reasoned //drtmr:allow.
func TestVettoolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the vettool and re-vets packages; skipped in -short")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("go command unavailable: %v", err)
	}

	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	tool := filepath.Join(t.TempDir(), "drtmr-vet")
	if runtime.GOOS == "windows" {
		tool += ".exe"
	}

	build := exec.Command("go", "build", "-o", tool, "./cmd/drtmr-vet")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building drtmr-vet: %v\n%s", err, out)
	}

	vet := exec.Command("go", "vet", "-vettool="+tool,
		"./internal/txn/", "./internal/rdma/", "./internal/cluster/", "./internal/sim/")
	vet.Dir = root
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool=drtmr-vet found unsuppressed diagnostics: %v\n%s", err, out)
	}

	// The protocol probes cmd/go uses must answer in the expected shapes.
	out, err := exec.Command(tool, "-flags").Output()
	if err != nil {
		t.Fatalf("drtmr-vet -flags: %v", err)
	}
	for _, name := range []string{"htmregion", "virtualtime", "abortattr", "lockpair", "doorbell"} {
		if !strings.Contains(string(out), `"`+name+`"`) {
			t.Errorf("-flags output missing analyzer %q: %s", name, out)
		}
	}
	vout, err := exec.Command(tool, "-V=full").Output()
	if err != nil {
		t.Fatalf("drtmr-vet -V=full: %v", err)
	}
	if !strings.Contains(string(vout), " version ") {
		t.Errorf("-V=full output %q does not follow the tool ID protocol", vout)
	}
	_ = os.Remove(tool)
}
