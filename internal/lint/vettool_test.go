package lint_test

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// buildVettool compiles cmd/drtmr-vet into dir and returns the binary path
// plus the repo root.
func buildVettool(t *testing.T, dir string) (tool, root string) {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("go command unavailable: %v", err)
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	tool = filepath.Join(dir, "drtmr-vet")
	if runtime.GOOS == "windows" {
		tool += ".exe"
	}
	build := exec.Command("go", "build", "-o", tool, "./cmd/drtmr-vet")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building drtmr-vet: %v\n%s", err, out)
	}
	return tool, root
}

// TestVettoolProtocol builds cmd/drtmr-vet and drives it through the real
// `go vet -vettool` protocol over the commit-pipeline packages — the
// acceptance path check.sh gates on. The suite must come back clean: every
// repo finding is either fixed or carries a reasoned //drtmr:allow.
func TestVettoolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the vettool and re-vets packages; skipped in -short")
	}
	tool, root := buildVettool(t, t.TempDir())

	vet := exec.Command("go", "vet", "-vettool="+tool,
		"./internal/txn/", "./internal/rdma/", "./internal/cluster/", "./internal/sim/")
	vet.Dir = root
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool=drtmr-vet found unsuppressed diagnostics: %v\n%s", err, out)
	}

	// The protocol probes cmd/go uses must answer in the expected shapes.
	out, err := exec.Command(tool, "-flags").Output()
	if err != nil {
		t.Fatalf("drtmr-vet -flags: %v", err)
	}
	for _, name := range []string{
		"htmregion", "virtualtime", "abortattr", "lockpair", "doorbell",
		"lockorder", "hotalloc", "enumswitch",
	} {
		if !strings.Contains(string(out), `"`+name+`"`) {
			t.Errorf("-flags output missing analyzer %q: %s", name, out)
		}
	}
	vout, err := exec.Command(tool, "-V=full").Output()
	if err != nil {
		t.Fatalf("drtmr-vet -V=full: %v", err)
	}
	if !strings.Contains(string(vout), " version ") {
		t.Errorf("-V=full output %q does not follow the tool ID protocol", vout)
	}
	_ = os.Remove(tool)
}

// seededBuggy is a module-"drtmr" package carrying one violation per
// summary-based analyzer: a mutex held across a channel send (lockorder), a
// hotpath append (hotalloc), and a non-exhaustive enum switch (enumswitch).
const seededBuggy = `package txn

import "sync"

type Mode uint8

const (
	ModeOff Mode = iota
	ModeOn
	ModeAuto
)

type box struct {
	mu sync.Mutex
	ch chan int
}

func (b *box) heldAcrossSend() {
	b.mu.Lock()
	b.ch <- 1
	b.mu.Unlock()
}

//drtmr:hotpath
func hotAppend(dst []uint64, v uint64) []uint64 {
	return append(dst, v)
}

func pick(m Mode) int {
	switch m {
	case ModeOff:
		return 0
	}
	return 1
}
`

// seededFixedAlloc is seededBuggy with the hotalloc violation repaired (the
// other two bugs stay), so its baseline entry goes stale.
const seededFixedAlloc = `package txn

import "sync"

type Mode uint8

const (
	ModeOff Mode = iota
	ModeOn
	ModeAuto
)

type box struct {
	mu sync.Mutex
	ch chan int
}

func (b *box) heldAcrossSend() {
	b.mu.Lock()
	b.ch <- 1
	b.mu.Unlock()
}

//drtmr:hotpath
func hotStore(dst []uint64, i int, v uint64) {
	dst[i] = v
}

func pick(m Mode) int {
	switch m {
	case ModeOff:
		return 0
	}
	return 1
}
`

// TestRatchetCLI drives the drtmr-vet ratchet CLI end to end over a
// temporary module seeded with one violation per summary analyzer: a dirty
// sweep fails with machine-readable JSON/SARIF output, -write-baseline
// records the debt, the recorded sweep passes, and paying off a finding
// without updating the ledger fails as a stale entry.
func TestRatchetCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the vettool and runs go vet sweeps; skipped in -short")
	}
	tool, _ := buildVettool(t, t.TempDir())

	mod := t.TempDir()
	writeFile := func(rel, content string) {
		t.Helper()
		path := filepath.Join(mod, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	writeFile("go.mod", "module drtmr\n\ngo 1.22\n")
	writeFile("internal/txn/seeded.go", seededBuggy)

	run := func(args ...string) (string, int) {
		t.Helper()
		cmd := exec.Command(tool, args...)
		cmd.Dir = mod
		out, err := cmd.CombinedOutput()
		code := 0
		if ee, ok := err.(*exec.ExitError); ok {
			code = ee.ExitCode()
		} else if err != nil {
			t.Fatalf("drtmr-vet %v: %v\n%s", args, err, out)
		}
		return string(out), code
	}

	// 1. Dirty sweep: exit 1, all three analyzers fire, JSON + SARIF land.
	out, code := run("-json", "out.json", "-sarif", "out.sarif", "./...")
	if code != 1 {
		t.Fatalf("dirty sweep exit %d, want 1\n%s", code, out)
	}
	for _, want := range []string{"lockorder", "hotalloc", "enumswitch"} {
		if !strings.Contains(out, want) {
			t.Errorf("dirty sweep output missing %s finding:\n%s", want, out)
		}
	}
	var arr []map[string]any
	data, err := os.ReadFile(filepath.Join(mod, "out.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &arr); err != nil {
		t.Fatalf("out.json: %v", err)
	}
	if len(arr) != 3 {
		t.Fatalf("out.json has %d findings, want 3: %s", len(arr), data)
	}
	var sarif struct {
		Runs []struct {
			Results []struct {
				RuleID string `json:"ruleId"`
			} `json:"results"`
		} `json:"runs"`
	}
	data, err = os.ReadFile(filepath.Join(mod, "out.sarif"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &sarif); err != nil {
		t.Fatalf("out.sarif: %v", err)
	}
	if len(sarif.Runs) != 1 || len(sarif.Runs[0].Results) != 3 {
		t.Fatalf("out.sarif shape wrong: %s", data)
	}

	// 2. Record the debt; the recorded sweep is then clean.
	if out, code := run("-write-baseline", "./..."); code != 0 {
		t.Fatalf("-write-baseline exit %d\n%s", code, out)
	}
	if out, code := run("./..."); code != 0 || !strings.Contains(out, "ratchet clean") {
		t.Fatalf("baselined sweep exit %d, want clean\n%s", code, out)
	}

	// 3. Fix the hotalloc bug without updating the ledger: stale entry.
	writeFile("internal/txn/seeded.go", seededFixedAlloc)
	out, code = run("./...")
	if code != 1 || !strings.Contains(out, "stale baseline entry") {
		t.Fatalf("paid-debt sweep exit %d, want 1 with stale entry\n%s", code, out)
	}

	// 4. Re-recording brings it back to green.
	if out, code := run("-write-baseline", "./..."); code != 0 {
		t.Fatalf("re-write-baseline exit %d\n%s", code, out)
	}
	if out, code := run("./..."); code != 0 {
		t.Fatalf("final sweep exit %d, want 0\n%s", code, out)
	}
}
