package lint

import (
	"go/ast"
	"go/types"

	"drtmr/internal/lint/analysis"
)

// AbortAttr requires every txn.Error composite literal — each one an abort
// on some protocol path — to set Reason, Stage and Site explicitly. The
// observability layer's abort-attribution matrix (obs.AbortMatrix) is
// indexed reason × stage × site; a literal that leaves Stage or Site zero
// silently lands the abort in the exec/node-0 cell and the matrix loses
// information without any test failing. The blessed constructors
// (Txn.abort/abortAt) satisfy the rule by construction; this analyzer
// catches the ad-hoc literal someone adds on a new abort path.
//
// It also enforces the CommitProtocol abort contract: a method on a type
// implementing the package-scope CommitProtocol interface must not mint
// untyped errors (fmt.Errorf, errors.New) — every error a protocol returns
// crosses the retry loop, which switches on *txn.Error to classify the
// abort; an untyped error silently becomes a non-retryable failure with no
// attribution cell at all. errors.Is/As and wrapping helpers remain fine.
var AbortAttr = &analysis.Analyzer{
	Name:          "abortattr",
	Doc:           "require txn.Error literals to set Reason, Stage and Site (abort-attribution completeness)",
	PackageFilter: isAbortSurfacePackage,
	Run:           runAbortAttr,
}

// abortAttrRequired are the fields every Error literal must name.
var abortAttrRequired = []string{"Reason", "Stage", "Site"}

// abortAttrKeyed is the keyed-attribution trio: a literal that names any of
// them claims to attribute the abort to a record, and a partial claim is
// worse than none — HasKey without Table/Key feeds a zero key to the hot-key
// detector, Table/Key without HasKey is silently dropped.
var abortAttrKeyed = []string{"Table", "Key", "HasKey"}

func runAbortAttr(pass *analysis.Pass) error {
	checkProtocolMethods(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			cl, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			if !isAbortErrorType(pass.TypesInfo, cl) {
				return true
			}
			have := make(map[string]bool, len(cl.Elts))
			positional := false
			for _, el := range cl.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					positional = true
					break
				}
				if id, ok := kv.Key.(*ast.Ident); ok {
					have[id.Name] = true
				}
			}
			if positional {
				// Positional literals set every field; nothing to check.
				return true
			}
			for _, field := range abortAttrRequired {
				if !have[field] {
					pass.Reportf(cl.Pos(), "txn.Error literal without %s: the abort lands in the wrong abort-attribution cell — set %s explicitly (or use Txn.abort/abortAt)", field, field)
				}
			}
			anyKeyed := false
			for _, field := range abortAttrKeyed {
				anyKeyed = anyKeyed || have[field]
			}
			if anyKeyed {
				for _, field := range abortAttrKeyed {
					if !have[field] {
						pass.Reportf(cl.Pos(), "keyed txn.Error literal without %s: Table, Key and HasKey travel together — a partial key misattributes the abort in the hot-key detector (or use Txn.abortOn)", field)
					}
				}
			}
			return true
		})
	}
	return nil
}

// checkProtocolMethods flags fmt.Errorf / errors.New calls inside methods of
// CommitProtocol implementations. The interface is resolved by name from the
// package scope (shape-independent, so fixtures can declare their own).
func checkProtocolMethods(pass *analysis.Pass) {
	iface := commitProtocolInterface(pass.Pkg)
	if iface == nil {
		return
	}
	for _, fd := range funcDecls(pass.Files) {
		if fd.Recv == nil || len(fd.Recv.List) == 0 || isTestFile(pass, fd) {
			continue
		}
		tv, ok := pass.TypesInfo.Types[fd.Recv.List[0].Type]
		if !ok || !implementsCommitProtocol(tv.Type, iface) {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			path, name := pkgLevelCallee(pass.TypesInfo, call)
			if (path == "fmt" && name == "Errorf") || (path == "errors" && name == "New") {
				pass.Reportf(call.Pos(), "%s.%s in CommitProtocol method %s: protocol errors must be *txn.Error so the retry loop can classify the abort — use Txn.abort/abortAt/abortOn", path, name, fd.Name.Name)
			}
			return true
		})
	}
}

// commitProtocolInterface finds a package-scope interface named
// CommitProtocol (nil when the package declares none).
func commitProtocolInterface(pkg *types.Package) *types.Interface {
	if pkg == nil {
		return nil
	}
	obj := pkg.Scope().Lookup("CommitProtocol")
	if obj == nil {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	return iface
}

// implementsCommitProtocol reports whether the receiver type (or its pointer)
// satisfies the interface.
func implementsCommitProtocol(t types.Type, iface *types.Interface) bool {
	if t == nil {
		return false
	}
	if types.Implements(t, iface) {
		return true
	}
	if _, ok := t.Underlying().(*types.Pointer); ok {
		return false
	}
	return types.Implements(types.NewPointer(t), iface)
}

// isAbortErrorType reports whether the composite literal builds a struct
// named Error that carries Stage and Site fields (the txn abort shape; the
// name+shape match keeps fixtures independent of the real package path).
func isAbortErrorType(info *types.Info, cl *ast.CompositeLit) bool {
	tv, ok := info.Types[cl]
	if !ok {
		return false
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Error" {
		return false
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	var hasStage, hasSite bool
	for i := 0; i < st.NumFields(); i++ {
		switch st.Field(i).Name() {
		case "Stage":
			hasStage = true
		case "Site":
			hasSite = true
		}
	}
	return hasStage && hasSite
}
