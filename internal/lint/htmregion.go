package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"drtmr/internal/lint/analysis"
)

// HTMRegion forbids operations that abort (or would be unsound inside) a
// hardware transaction between htmBegin/htmEnd brackets: anything that can
// block, yield, or trap — channel operations, mutex operations, coroutine
// yield points (yield/await/backoff), I/O and syscalls — plus heap growth
// that escapes into shared state (append / map writes to non-locals), which
// inflates the HTM working set the protocol works hard to keep small (§3.3).
// The runtime already panics when a coroutine yields inside a region
// (Worker.yield); this analyzer makes that class of bug a compile-time error
// on every path, not just the paths a torture seed happens to exercise.
//
// The check is intraprocedural: a region that delegates its body to a helper
// (the localCommitBody idiom) marks the helper with a //drtmr:htmbody
// directive in its doc comment, and the helper's whole body is then checked
// as region code.
var HTMRegion = &analysis.Analyzer{
	Name:          "htmregion",
	Doc:           "forbid blocking, yielding, I/O, and shared-state heap growth inside htmBegin/htmEnd HTM regions",
	PackageFilter: isProtocolPackage,
	Run:           runHTMRegion,
}

// yieldNames are callee names that block or hand control to the scheduler.
var yieldNames = map[string]bool{
	"yield":   true,
	"await":   true,
	"backoff": true,
	"gate":    true,
	"Yield":   true,
	"Gosched": true,
	"Sleep":   true,
	"Wait":    true,
}

// mutexMethodNames are synchronization methods that must never run inside a
// region (a blocked lock acquisition can never make progress under HTM, and
// an unlock tears another goroutine's critical section into the region).
var mutexMethodNames = map[string]bool{
	"Lock":    true,
	"Unlock":  true,
	"RLock":   true,
	"RUnlock": true,
}

// ioPackages cause syscalls (write, read, mmap) that unconditionally abort
// an RTM transaction.
var ioPackages = map[string]bool{
	"fmt":     true,
	"os":      true,
	"io":      true,
	"log":     true,
	"net":     true,
	"bufio":   true,
	"syscall": true,
}

func runHTMRegion(pass *analysis.Pass) error {
	for _, fd := range funcDecls(pass.Files) {
		c := &regionChecker{pass: pass}
		c.scan(fd.Body.List, hasHTMBodyDirective(fd))
	}
	// Func literals open regions too (closures handed to a scheduler, test
	// bodies): scan each literal's body as its own function scope.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok && fl.Body != nil {
				c := &regionChecker{pass: pass}
				c.scan(fl.Body.List, false)
			}
			return true
		})
	}
	return nil
}

// hasHTMBodyDirective reports whether the function's doc comment carries
// //drtmr:htmbody — "this helper runs entirely inside a caller's region".
func hasHTMBodyDirective(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, "//drtmr:htmbody") {
			return true
		}
	}
	return false
}

type regionChecker struct {
	pass *analysis.Pass
}

// scan walks a statement list tracking whether an HTM region is open, and
// checks every in-region statement. It returns the region state at the end
// of the list (branch-local htmEnd closes only within its branch; a region
// opened in a branch conservatively stays open for the tail).
func (c *regionChecker) scan(stmts []ast.Stmt, inRegion bool) bool {
	for _, s := range stmts {
		switch st := s.(type) {
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok {
				switch calleeName(c.pass.TypesInfo, call) {
				case "htmBegin":
					inRegion = true
					continue
				case "htmEnd":
					inRegion = false
					continue
				}
			}
		case *ast.DeferStmt:
			if calleeName(c.pass.TypesInfo, st.Call) == "htmEnd" {
				continue // closes at return; region stays open lexically
			}
		case *ast.BlockStmt:
			inRegion = c.scan(st.List, inRegion)
			continue
		case *ast.IfStmt:
			if inRegion {
				c.checkExpr(st.Cond)
				if st.Init != nil {
					c.checkStmtShallow(st.Init)
				}
			}
			c.scan(st.Body.List, inRegion)
			if st.Else != nil {
				c.scan([]ast.Stmt{st.Else}, inRegion)
			}
			continue
		case *ast.ForStmt:
			if inRegion {
				if st.Cond != nil {
					c.checkExpr(st.Cond)
				}
				if st.Init != nil {
					c.checkStmtShallow(st.Init)
				}
				if st.Post != nil {
					c.checkStmtShallow(st.Post)
				}
			}
			inRegion = c.scan(st.Body.List, inRegion)
			continue
		case *ast.RangeStmt:
			if inRegion {
				c.checkExpr(st.X)
			}
			inRegion = c.scan(st.Body.List, inRegion)
			continue
		case *ast.SwitchStmt, *ast.TypeSwitchStmt:
			var body *ast.BlockStmt
			if sw, ok := st.(*ast.SwitchStmt); ok {
				body = sw.Body
			} else {
				body = st.(*ast.TypeSwitchStmt).Body
			}
			for _, cl := range body.List {
				if cc, ok := cl.(*ast.CaseClause); ok {
					if inRegion {
						for _, e := range cc.List {
							c.checkExpr(e)
						}
					}
					c.scan(cc.Body, inRegion)
				}
			}
			continue
		case *ast.LabeledStmt:
			inRegion = c.scan([]ast.Stmt{st.Stmt}, inRegion)
			continue
		}
		if inRegion {
			c.checkStmtShallow(s)
		}
	}
	return inRegion
}

// checkStmtShallow checks one non-compound statement's whole subtree.
func (c *regionChecker) checkStmtShallow(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.SendStmt:
		c.report(st.Pos(), "channel send inside an HTM region can block and aborts the hardware transaction")
		return
	case *ast.SelectStmt:
		c.report(st.Pos(), "select inside an HTM region blocks and aborts the hardware transaction")
		return
	case *ast.GoStmt:
		c.report(st.Pos(), "goroutine launch inside an HTM region (context switch aborts the hardware transaction)")
		return
	case *ast.AssignStmt:
		c.checkMapGrow(st)
	}
	ast.Inspect(s, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				c.report(e.Pos(), "channel receive inside an HTM region can block and aborts the hardware transaction")
			}
		case *ast.SendStmt:
			c.report(e.Pos(), "channel send inside an HTM region can block and aborts the hardware transaction")
		case *ast.SelectStmt:
			c.report(e.Pos(), "select inside an HTM region blocks and aborts the hardware transaction")
		case *ast.GoStmt:
			c.report(e.Pos(), "goroutine launch inside an HTM region (context switch aborts the hardware transaction)")
		case *ast.CallExpr:
			c.checkCall(e)
		}
		return true
	})
}

func (c *regionChecker) checkExpr(e ast.Expr) {
	if e == nil {
		return
	}
	c.checkStmtShallow(&ast.ExprStmt{X: e})
}

func (c *regionChecker) checkCall(call *ast.CallExpr) {
	info := c.pass.TypesInfo
	name := calleeName(info, call)

	// Builtin heap growth escaping into shared state.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		switch id.Name {
		case "append":
			if len(call.Args) > 0 && c.escapesFunction(call.Args[0]) {
				c.report(call.Pos(), "append into shared state inside an HTM region grows the heap and the HTM working set")
			}
			return
		case "print", "println":
			if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin || info.Uses[id] == nil {
				c.report(call.Pos(), "%s inside an HTM region performs a syscall and aborts the hardware transaction", id.Name)
				return
			}
		}
	}

	if name != "" && yieldNames[name] {
		c.report(call.Pos(), "call to %s inside an HTM region: a yield or blocking wait cannot preserve speculative hardware state", name)
		return
	}
	if name != "" && mutexMethodNames[name] && recvTypeName(info, call) != "" {
		c.report(call.Pos(), "mutex %s inside an HTM region can block or tear a critical section open", name)
		return
	}
	if path, _ := pkgLevelCallee(info, call); ioPackages[path] {
		c.report(call.Pos(), "call into package %s inside an HTM region performs I/O and aborts the hardware transaction", path)
		return
	}
}

// checkMapGrow flags writes through a map that lives beyond the function:
// a map insert can trigger a rehash — a large heap mutation inside the
// speculative region, visible to (and conflicting with) every other reader.
func (c *regionChecker) checkMapGrow(as *ast.AssignStmt) {
	for _, lhs := range as.Lhs {
		ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
		if !ok {
			continue
		}
		tv, ok := c.pass.TypesInfo.Types[ix.X]
		if !ok {
			continue
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			continue
		}
		if c.escapesFunction(ix.X) {
			c.report(lhs.Pos(), "map write into shared state inside an HTM region can rehash and abort the hardware transaction")
		}
	}
}

// escapesFunction reports whether the expression denotes storage that is not
// a plain function-local variable: a field, an element, or a package-level
// variable.
func (c *regionChecker) escapesFunction(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	case *ast.Ident:
		obj := c.pass.TypesInfo.Uses[x]
		if obj == nil {
			obj = c.pass.TypesInfo.Defs[x]
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return false
		}
		if v.Parent() == nil {
			return true // field or similar
		}
		return c.pass.Pkg != nil && v.Parent() == c.pass.Pkg.Scope()
	}
	return false
}

func (c *regionChecker) report(pos token.Pos, format string, args ...any) {
	c.pass.Reportf(pos, format, args...)
}
