// Package analysistest runs a lint analyzer over a fixture package under
// testdata/src/<dir> and checks its diagnostics against `// want` comments,
// in the style of golang.org/x/tools/go/analysis/analysistest (stdlib-only).
//
// Expectation syntax, on the line a diagnostic is expected:
//
//	code() // want "regexp" "second regexp"
//
// Every diagnostic on a line must match one of the line's regexps and every
// regexp must be matched by some diagnostic. Suppression is part of the
// contract being tested: a line carrying a valid //drtmr:allow directive and
// no want comment asserts the finding is silenced.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"drtmr/internal/lint/analysis"
)

var wantRE = regexp.MustCompile(`// want (.*)$`)
var wantArgRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// Run loads testdata/src/<dir>, type-checks it (stdlib imports resolve
// through the source importer), runs the analyzer with package filters
// bypassed, and compares diagnostics with the `// want` expectations.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, dir string) {
	t.Helper()
	pkgdir := filepath.Join(testdata, "src", dir)
	fset := token.NewFileSet()

	entries, err := os.ReadDir(pkgdir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(pkgdir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", pkgdir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "source", nil),
		Error:    func(err error) { t.Logf("fixture type error (tolerated): %v", err) },
	}
	pkg, _ := conf.Check(dir, fset, files, info)

	diags, err := analysis.Run(fset, files, pkg, info, []*analysis.Analyzer{a}, analysis.Options{IgnoreFilters: true})
	if err != nil {
		t.Fatalf("analysis failed: %v", err)
	}
	check(t, fset, files, diags)
}

// expectation is the set of want regexps on one line.
type expectation struct {
	patterns []*regexp.Regexp
	matched  []bool
}

func check(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	wants := make(map[string]*expectation) // "file:line"
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				exp := &expectation{}
				for _, am := range wantArgRE.FindAllStringSubmatch(m[1], -1) {
					re, err := regexp.Compile(am[1])
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, am[1], err)
					}
					exp.patterns = append(exp.patterns, re)
					exp.matched = append(exp.matched, false)
				}
				if len(exp.patterns) == 0 {
					t.Fatalf("%s: want comment with no quoted regexp", key)
				}
				wants[key] = exp
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		exp := wants[key]
		ok := false
		if exp != nil {
			for i, re := range exp.patterns {
				if re.MatchString(d.Message) {
					exp.matched[i] = true
					ok = true
					break
				}
			}
		}
		if !ok {
			t.Errorf("%s: unexpected diagnostic [%s]: %s", key, d.Analyzer, d.Message)
		}
	}

	var keys []string
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		exp := wants[k]
		for i, hit := range exp.matched {
			if !hit {
				t.Errorf("%s: expected diagnostic matching %q, got none", k, exp.patterns[i])
			}
		}
	}
}
