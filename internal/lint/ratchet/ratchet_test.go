package ratchet

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func finding(analyzer, file string, line int, msg string) Finding {
	return Finding{Analyzer: analyzer, File: file, Line: line, Col: 1, Message: msg}
}

func TestDiffBothDirections(t *testing.T) {
	base := &Baseline{Findings: []BaselineEntry{
		{Analyzer: "lockorder", File: "a.go", Message: "held across send", Count: 2},
		{Analyzer: "hotalloc", File: "b.go", Message: "append may grow", Count: 1},
	}}

	// Exactly the baselined findings: clean in both directions.
	live := []Finding{
		finding("lockorder", "a.go", 10, "held across send"),
		finding("lockorder", "a.go", 20, "held across send"),
		finding("hotalloc", "b.go", 5, "append may grow"),
	}
	if nf, stale := Diff(live, base); len(nf) != 0 || len(stale) != 0 {
		t.Fatalf("exact match: new=%v stale=%v, want none", nf, stale)
	}

	// Line moves do not churn the ratchet: keys are line-free.
	moved := []Finding{
		finding("lockorder", "a.go", 99, "held across send"),
		finding("lockorder", "a.go", 100, "held across send"),
		finding("hotalloc", "b.go", 77, "append may grow"),
	}
	if nf, stale := Diff(moved, base); len(nf) != 0 || len(stale) != 0 {
		t.Fatalf("line-shifted match: new=%v stale=%v, want none", nf, stale)
	}

	// A third occurrence of a baselined class exceeds its budget: new debt.
	over := append(live, finding("lockorder", "a.go", 30, "held across send"))
	if nf, _ := Diff(over, base); len(nf) != 1 || nf[0].Line != 30 {
		t.Fatalf("over budget: new=%v, want exactly the line-30 finding", nf)
	}

	// A brand-new class fails regardless of the baseline.
	fresh := append(live, finding("enumswitch", "c.go", 1, "not exhaustive"))
	if nf, _ := Diff(fresh, base); len(nf) != 1 || nf[0].Analyzer != "enumswitch" {
		t.Fatalf("new class: new=%v, want the enumswitch finding", nf)
	}

	// Paid debt without a ledger update is stale: also a failure.
	paid := live[:2] // the hotalloc finding was fixed
	if _, stale := Diff(paid, base); len(stale) != 1 || stale[0].Analyzer != "hotalloc" {
		t.Fatalf("paid debt: stale=%v, want the hotalloc entry", stale)
	}

	// Partially paid counted debt is stale too.
	partial := []Finding{
		finding("lockorder", "a.go", 10, "held across send"),
		finding("hotalloc", "b.go", 5, "append may grow"),
	}
	if _, stale := Diff(partial, base); len(stale) != 1 || stale[0].Analyzer != "lockorder" {
		t.Fatalf("partially paid: stale=%v, want the lockorder entry", stale)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	live := []Finding{
		finding("lockorder", "a.go", 10, "held across send"),
		finding("lockorder", "a.go", 20, "held across send"),
		finding("enumswitch", "c.go", 3, "not exhaustive"),
	}
	if err := WriteBaseline(path, live); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.Comment == "" {
		t.Error("written baseline carries no policy comment")
	}
	if len(b.Findings) != 2 {
		t.Fatalf("baseline has %d entries, want 2 (counted dedupe): %+v", len(b.Findings), b.Findings)
	}
	if nf, stale := Diff(live, b); len(nf) != 0 || len(stale) != 0 {
		t.Fatalf("round-tripped baseline not clean: new=%v stale=%v", nf, stale)
	}

	// A missing file is an empty baseline, not an error.
	empty, err := LoadBaseline(filepath.Join(t.TempDir(), "missing.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(empty.Findings) != 0 {
		t.Fatalf("missing baseline loaded as %+v, want empty", empty.Findings)
	}

	// An empty baseline serializes findings as [], not null.
	if err := WriteBaseline(path, nil); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["findings"].([]any); !ok {
		t.Fatalf("empty baseline findings field is %T, want JSON array", raw["findings"])
	}
}

func TestReadEmittedDedupesAndNormalizes(t *testing.T) {
	dir := t.TempDir()
	root := t.TempDir()
	abs := filepath.Join(root, "internal", "txn", "commit.go")
	write := func(name string, fs []Finding) {
		data, err := json.Marshal(fs)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o666); err != nil {
			t.Fatal(err)
		}
	}
	// The same finding emitted by the package unit and its test variant.
	write("unit-aa.json", []Finding{finding("lockorder", abs, 10, "held across send")})
	write("unit-bb.json", []Finding{finding("lockorder", abs, 10, "held across send")})
	write("unit-cc.json", []Finding{finding("hotalloc", "rel/path.go", 2, "append may grow")})

	fs, err := ReadEmitted(dir, root)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 2 {
		t.Fatalf("got %d findings, want 2 after cross-variant dedupe: %v", len(fs), fs)
	}
	if want := filepath.ToSlash(filepath.Join("internal", "txn", "commit.go")); fs[0].File != want && fs[1].File != want {
		t.Errorf("absolute path not normalized to %q: %v", want, fs)
	}
}

func TestSARIFShape(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.sarif")
	live := []Finding{finding("lockorder", "a.go", 10, "held across send")}
	docs := RuleDocs{"lockorder": "lock acquisition order and hold-across rules"}
	if err := WriteSARIF(path, live, docs); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatal(err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("version=%q runs=%d, want 2.1.0 with one run", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "drtmr-vet" {
		t.Errorf("driver name %q, want drtmr-vet", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) != 1 || run.Tool.Driver.Rules[0].ID != "lockorder" {
		t.Errorf("rules %v, want exactly lockorder", run.Tool.Driver.Rules)
	}
	if len(run.Results) != 1 || run.Results[0].RuleID != "lockorder" || run.Results[0].Level != "error" {
		t.Fatalf("results %+v, want one error-level lockorder result", run.Results)
	}
	loc := run.Results[0].Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "a.go" || loc.Region.StartLine != 10 {
		t.Errorf("location %+v, want a.go:10", loc)
	}
}
