// Package ratchet turns the vet suite's findings into a one-way CI gate.
//
// The unitchecker emits per-unit findings as JSON (DRTMRVET_EMIT); the
// drtmr-vet CLI collects them, normalizes paths, and diffs against the
// committed baseline (lint-baseline.json). Baseline entries are keyed by
// (analyzer, file, message) with an occurrence count — line numbers are
// deliberately excluded so unrelated edits that shift a finding do not churn
// the file. The diff fails in BOTH directions: a finding not in the baseline
// is new debt (fix it or //drtmr:allow it with a reason), and a baseline
// entry with no live finding is stale (the debt was paid — remove the entry
// so it can never silently come back). `drtmr-vet -write-baseline`
// regenerates the file; the committed baseline is empty and the policy is
// that it stays empty (DESIGN.md "Static invariants").
//
// The same findings render as plain JSON (-json) and as SARIF 2.1.0
// (-sarif), the exchange format CI systems ingest for code-scanning
// annotations.
package ratchet

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one diagnostic as exchanged between the unitchecker and the
// CLI driver.
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col,omitempty"`
	Message  string `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// key is the ratchet identity of a finding: line-free so edits that move
// code do not invalidate the baseline.
func (f Finding) key() string {
	return f.Analyzer + "\x00" + f.File + "\x00" + f.Message
}

// ReadEmitted loads every per-unit findings file from an emit directory,
// deduplicates findings that appear in multiple build variants (the package
// and its test variant, race and !race halves), and normalizes file paths
// relative to root.
func ReadEmitted(dir, root string) ([]Finding, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	var out []Finding
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		var fs []Finding
		if err := json.Unmarshal(data, &fs); err != nil {
			return nil, fmt.Errorf("%s: %w", e.Name(), err)
		}
		for _, f := range fs {
			f.File = normalizePath(f.File, root)
			id := fmt.Sprintf("%s\x00%d\x00%d", f.key(), f.Line, f.Col)
			if seen[id] {
				continue
			}
			seen[id] = true
			out = append(out, f)
		}
	}
	Sort(out)
	return out, nil
}

func normalizePath(file, root string) string {
	if root == "" || !filepath.IsAbs(file) {
		return filepath.ToSlash(file)
	}
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(file)
}

// Sort orders findings by file, line, column, analyzer.
func Sort(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
}

// BaselineEntry is one audited pre-existing finding class.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
	Count    int    `json:"count"`
}

func (b BaselineEntry) key() string {
	return b.Analyzer + "\x00" + b.File + "\x00" + b.Message
}

// Baseline is the committed debt ledger.
type Baseline struct {
	Comment  string          `json:"comment,omitempty"`
	Findings []BaselineEntry `json:"findings"`
}

const baselineComment = "drtmr-vet ratchet baseline: audited pre-existing findings. " +
	"Policy: keep empty — fix findings or //drtmr:allow them with a reason. " +
	"Regenerate with `drtmr-vet -write-baseline` (see DESIGN.md, Static invariants)."

// LoadBaseline reads a baseline file; a missing file is an empty baseline.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{}, nil
	}
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &b, nil
}

// WriteBaseline renders the current findings as the new baseline.
func WriteBaseline(path string, findings []Finding) error {
	counts := make(map[string]int)
	meta := make(map[string]Finding)
	for _, f := range findings {
		counts[f.key()]++
		meta[f.key()] = f
	}
	b := Baseline{Comment: baselineComment}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		f := meta[k]
		b.Findings = append(b.Findings, BaselineEntry{
			Analyzer: f.Analyzer, File: f.File, Message: f.Message, Count: counts[k],
		})
	}
	if b.Findings == nil {
		b.Findings = []BaselineEntry{}
	}
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o666)
}

// Diff compares live findings against the baseline. newFindings are not
// covered by the baseline (each baseline entry covers up to Count
// occurrences of its key); stale are baseline entries whose finding class
// has fewer live occurrences than recorded — the debt shrank and the ledger
// must be updated. Both directions fail the ratchet.
func Diff(findings []Finding, base *Baseline) (newFindings []Finding, stale []BaselineEntry) {
	budget := make(map[string]int)
	for _, e := range base.Findings {
		budget[e.key()] += e.Count
	}
	live := make(map[string]int)
	for _, f := range findings {
		live[f.key()]++
		if live[f.key()] > budget[f.key()] {
			newFindings = append(newFindings, f)
		}
	}
	for _, e := range base.Findings {
		if live[e.key()] < e.Count {
			stale = append(stale, e)
		}
	}
	return newFindings, stale
}

// WriteJSON renders findings as a plain JSON array.
func WriteJSON(path string, findings []Finding) error {
	if findings == nil {
		findings = []Finding{}
	}
	data, err := json.MarshalIndent(findings, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o666)
}

// sarif 2.1.0 — the minimal subset code-scanning consumers require.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// RuleDocs maps analyzer names to their one-line docs for the SARIF rule
// table; the CLI fills it from the analyzer suite.
type RuleDocs map[string]string

// WriteSARIF renders findings as a SARIF 2.1.0 log.
func WriteSARIF(path string, findings []Finding, docs RuleDocs) error {
	rules := make(map[string]bool)
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		rules[f.Analyzer] = true
		col := f.Col
		if col <= 0 {
			col = 1
		}
		line := f.Line
		if line <= 0 {
			line = 1
		}
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: f.File},
					Region:           sarifRegion{StartLine: line, StartColumn: col},
				},
			}},
		})
	}
	var ruleList []sarifRule
	names := make([]string, 0, len(rules))
	for n := range rules {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		ruleList = append(ruleList, sarifRule{ID: n, ShortDescription: sarifMessage{Text: docs[n]}})
	}
	if ruleList == nil {
		ruleList = []sarifRule{}
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "drtmr-vet", Rules: ruleList}},
			Results: results,
		}},
	}
	data, err := json.MarshalIndent(&log, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o666)
}
