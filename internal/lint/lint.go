// Package lint is drtmr's own vet suite: five analyzers that turn the
// protocol's structural runtime invariants — the properties the paper's
// correctness argument (and the seeded torture oracle) lean on — into
// compile-time errors. They run over every build via `make lint` /
// scripts/check.sh through cmd/drtmr-vet (a `go vet -vettool` multichecker).
//
// The eight invariants (DESIGN.md "Static invariants" has the full story):
//
//	htmregion   — no blocking/yielding operation inside an HTM region
//	virtualtime — no wall clock or global randomness in protocol packages
//	abortattr   — every txn.Error names its Stage and Site
//	lockpair    — lock CAS results are fully scanned and recorded
//	doorbell    — no raw single-verb QP calls where a Batch is in scope
//	lockorder   — no lock-order cycles; no lock held across a coroutine
//	              yield, or across wire I/O in internal/serve (interprocedural)
//	hotalloc    — //drtmr:hotpath functions are transitively allocation-free
//	enumswitch  — switches over protocol enums are exhaustive or carry an
//	              explicit default-with-reason
//
// The last three ride on the summary-based interprocedural framework in
// internal/lint/analysis (summary.go): per-function facts propagated
// bottom-up, across packages via vetx facts files under `go vet`.
//
// Findings are suppressed with `//drtmr:allow <analyzer> <reason>` on the
// offending line or the line above; the reason is mandatory.
package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"drtmr/internal/lint/analysis"
)

// Analyzers is the full suite, in reporting order.
var Analyzers = []*analysis.Analyzer{
	HTMRegion,
	VirtualTime,
	AbortAttr,
	LockPair,
	Doorbell,
	LockOrder,
	HotAlloc,
	EnumSwitch,
}

// protocolPackages are the import paths whose code must stay bit-deterministic
// under seeded replay (virtualtime) — the simulator, the protocol, and the
// harness that fingerprints them.
var protocolPackages = []string{
	"drtmr/internal/txn",
	"drtmr/internal/htm",
	"drtmr/internal/rdma",
	"drtmr/internal/cluster",
	"drtmr/internal/sim",
	"drtmr/internal/check",
	"drtmr/internal/bench",
	"drtmr/internal/serve",
}

// inProtocolPackages matches pkg path (or any of its subpackages).
func inProtocolPackages(path string) bool {
	for _, p := range protocolPackages {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// isProtocolPackage restricts an analyzer to the transaction layer — the
// commit pipeline, the Error type, and any CommitProtocol implementation
// package nested under it (a protocol split into internal/txn/<proto> must
// keep the same invariants as code living in internal/txn itself).
func isProtocolPackage(path string) bool {
	return path == "drtmr/internal/txn" || strings.HasPrefix(path, "drtmr/internal/txn/")
}

// isAbortSurfacePackage widens abortattr beyond the transaction layer to the
// serve tree: the network front door mints txn.Error values of its own
// (ServerBusy at admission, Deadline at queue expiry) and reconstructs them
// client-side from the wire, and a literal there that forgets Stage or Site
// misattributes those aborts exactly like one on a commit path would.
func isAbortSurfacePackage(path string) bool {
	return isProtocolPackage(path) ||
		path == "drtmr/internal/serve" || strings.HasPrefix(path, "drtmr/internal/serve/")
}

// isSummaryPackage scopes the interprocedural analyzers (lockorder,
// hotalloc, enumswitch) to the packages whose lock discipline, hot paths,
// and enums the protocol's correctness and measurements depend on: the
// protocol/simulator tree plus the observability layer (its ring recorder
// and live histograms are the canonical //drtmr:hotpath surfaces).
func isSummaryPackage(path string) bool {
	return inProtocolPackages(path) ||
		path == "drtmr/internal/obs" || strings.HasPrefix(path, "drtmr/internal/obs/")
}

// calleeFunc resolves a call expression to the *types.Func it invokes
// (function, method, or qualified package function); nil for builtins,
// conversions, and calls through function-typed values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fn]
	case *ast.SelectorExpr:
		obj = info.Uses[fn.Sel]
	}
	f, _ := obj.(*types.Func)
	return f
}

// calleeName returns the bare name a call invokes, resolving through the
// type info when possible and falling back to the syntax (so fixtures and
// partially checked code still match).
func calleeName(info *types.Info, call *ast.CallExpr) string {
	if f := calleeFunc(info, call); f != nil {
		return f.Name()
	}
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// pkgLevelCallee returns the package path and name of a call to a
// package-level function ("" path when the callee is a method or unknown).
func pkgLevelCallee(info *types.Info, call *ast.CallExpr) (path, name string) {
	f := calleeFunc(info, call)
	if f == nil {
		return "", ""
	}
	sig, _ := f.Type().(*types.Signature)
	if sig == nil || sig.Recv() != nil {
		return "", ""
	}
	if f.Pkg() == nil {
		return "", f.Name()
	}
	return f.Pkg().Path(), f.Name()
}

// namedTypeName unwraps pointers and aliases and returns the named type's
// bare name ("" for unnamed types).
func namedTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// recvTypeName returns the receiver type name of the method a call invokes
// ("" for non-methods).
func recvTypeName(info *types.Info, call *ast.CallExpr) string {
	f := calleeFunc(info, call)
	if f == nil {
		return ""
	}
	sig, _ := f.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return ""
	}
	return namedTypeName(sig.Recv().Type())
}

// exprTypeName names the (possibly pointer-wrapped) named type of e.
func exprTypeName(info *types.Info, e ast.Expr) string {
	if tv, ok := info.Types[e]; ok {
		return namedTypeName(tv.Type)
	}
	return ""
}

// funcDecls yields every function declaration with a body in the package.
func funcDecls(files []*ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}

// isTestFile reports whether pos's file is a _test.go file.
func isTestFile(pass *analysis.Pass, n ast.Node) bool {
	return strings.HasSuffix(pass.Fset.Position(n.Pos()).Filename, "_test.go")
}

// childStmts returns the direct child statements of a compound statement
// (loop/switch/select bodies plus init/post clauses).
func childStmts(s ast.Stmt) []ast.Stmt {
	var out []ast.Stmt
	add := func(ss ...ast.Stmt) {
		for _, c := range ss {
			if c != nil {
				out = append(out, c)
			}
		}
	}
	switch st := s.(type) {
	case *ast.ForStmt:
		add(st.Init, st.Post)
		add(st.Body.List...)
	case *ast.RangeStmt:
		add(st.Body.List...)
	case *ast.SwitchStmt:
		add(st.Init)
		for _, cl := range st.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				add(cc.Body...)
			}
		}
	case *ast.TypeSwitchStmt:
		add(st.Init, st.Assign)
		for _, cl := range st.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				add(cc.Body...)
			}
		}
	case *ast.SelectStmt:
		for _, cl := range st.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				add(cc.Comm)
				add(cc.Body...)
			}
		}
	case *ast.BlockStmt:
		add(st.List...)
	}
	return out
}
