package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"drtmr/internal/lint/analysis"
)

// EnumSwitch checks that switches over the repo's protocol enumerations are
// exhaustive or carry an explicit default-with-reason. Two membership modes:
//
//   - named-type mode: the switch tag has a named integer type (AbortReason,
//     obs.Kind, wire.Kind, ContentionMode, ...) with at least two
//     package-scope constants of exactly that type — those constants are the
//     enum;
//   - prefix-family mode: the tag is a plain integer but every case names a
//     constant from one package with a shared name prefix of >= 3 characters
//     (StageExecute/StageLock/... , StatusOK/StatusAbort/...) — the
//     same-typed, same-prefixed constants of that package are the enum.
//
// Counting sentinels (Num*/num*/Max*/max*/*Sentinel) are not members.
// Coverage is by constant value, so aliases count. A switch missing members
// without a default is reported; so is a bare empty default (no statements,
// no comment) because it silently swallows new members — a default with a
// body or an attached comment documents the intent and passes. Test files
// and switches with non-constant cases are skipped.
var EnumSwitch = &analysis.Analyzer{
	Name:          "enumswitch",
	Doc:           "switches over protocol enums must be exhaustive or carry an explicit default-with-reason",
	Run:           runEnumSwitch,
	PackageFilter: isSummaryPackage,
}

func runEnumSwitch(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		file := f
		ast.Inspect(file, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok {
				return true
			}
			checkEnumSwitch(pass, file, sw)
			return true
		})
	}
	return nil
}

func checkEnumSwitch(pass *analysis.Pass, file *ast.File, sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		return
	}
	tv, ok := pass.TypesInfo.Types[sw.Tag]
	if !ok || tv.Type == nil {
		return
	}

	// Collect case constants; bail on any non-named-constant case.
	var caseConsts []*types.Const
	var defaultClause *ast.CaseClause
	for _, s := range sw.Body.List {
		cc, ok := s.(*ast.CaseClause)
		if !ok {
			return
		}
		if cc.List == nil {
			defaultClause = cc
			continue
		}
		for _, e := range cc.List {
			c := namedConst(pass.TypesInfo, e)
			if c == nil {
				return
			}
			caseConsts = append(caseConsts, c)
		}
	}
	if len(caseConsts) == 0 {
		return
	}

	members, enumName := enumMembers(tv.Type, caseConsts)
	if len(members) < 2 {
		return
	}

	// Coverage by constant value.
	covered := make(map[string]bool)
	for _, c := range caseConsts {
		covered[constKey(c)] = true
	}
	var missing []string
	seenMissing := make(map[string]bool)
	for _, m := range members {
		k := constKey(m)
		if covered[k] || seenMissing[k] {
			continue // value covered, or an alias of a member already listed
		}
		seenMissing[k] = true
		missing = append(missing, m.Name())
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	list := strings.Join(missing, ", ")
	if len(missing) > 6 {
		list = strings.Join(missing[:6], ", ") + ", …"
	}

	if defaultClause == nil {
		pass.Reportf(sw.Switch, "switch over %s is not exhaustive: missing %s", enumName, list)
		return
	}
	// A comment anywhere in the empty clause documents it — same-line
	// ("default: // reason") or indented lines before the next clause.
	limit := sw.Body.End()
	for _, s := range sw.Body.List {
		if s.Pos() > defaultClause.End() && s.Pos() < limit {
			limit = s.Pos()
		}
	}
	if len(defaultClause.Body) == 0 && !hasAttachedComment(pass, file, defaultClause, limit) {
		pass.Reportf(sw.Switch, "switch over %s has a bare empty default hiding missing %s; handle them or document the default", enumName, list)
	}
}

// enumMembers resolves the enum a switch ranges over and returns its
// members (counting sentinels excluded) plus a display name.
func enumMembers(tagType types.Type, caseConsts []*types.Const) ([]*types.Const, string) {
	// Named-type mode.
	if n, ok := unalias(tagType).(*types.Named); ok {
		if b, ok := n.Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 && n.Obj().Pkg() != nil {
			var members []*types.Const
			scope := n.Obj().Pkg().Scope()
			for _, name := range scope.Names() {
				c, ok := scope.Lookup(name).(*types.Const)
				if !ok || isCountingSentinel(name) {
					continue
				}
				if types.Identical(c.Type(), n) {
					members = append(members, c)
				}
			}
			if len(members) >= 2 {
				return members, n.Obj().Name()
			}
		}
	}

	// Prefix-family mode: all case constants from one package, one type,
	// sharing a name prefix of >= 3 characters.
	pkg := caseConsts[0].Pkg()
	typ := caseConsts[0].Type()
	if pkg == nil || len(caseConsts) < 2 {
		return nil, ""
	}
	prefix := caseConsts[0].Name()
	for _, c := range caseConsts[1:] {
		if c.Pkg() != pkg || !types.Identical(c.Type(), typ) {
			return nil, ""
		}
		prefix = commonPrefix(prefix, c.Name())
	}
	if len(prefix) < 3 {
		return nil, ""
	}
	var members []*types.Const
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || isCountingSentinel(name) || !strings.HasPrefix(name, prefix) {
			continue
		}
		if types.Identical(c.Type(), typ) {
			members = append(members, c)
		}
	}
	if len(members) < 2 {
		return nil, ""
	}
	return members, prefix + "* family"
}

func unalias(t types.Type) types.Type {
	if a, ok := t.(*types.Alias); ok {
		return types.Unalias(a)
	}
	return t
}

func namedConst(info *types.Info, e ast.Expr) *types.Const {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		c, _ := info.Uses[x].(*types.Const)
		return c
	case *ast.SelectorExpr:
		c, _ := info.Uses[x.Sel].(*types.Const)
		return c
	}
	return nil
}

func constKey(c *types.Const) string {
	return c.Val().ExactString()
}

// isCountingSentinel reports whether a constant name marks a count/limit
// rather than an enum member (NumAbortReasons, numKinds, MaxFrame, ...).
func isCountingSentinel(name string) bool {
	return strings.HasPrefix(name, "Num") || strings.HasPrefix(name, "num") ||
		strings.HasPrefix(name, "Max") || strings.HasPrefix(name, "max") ||
		strings.HasSuffix(name, "Sentinel")
}

func commonPrefix(a, b string) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return a[:i]
}

// hasAttachedComment reports whether any comment lies within the default
// clause's region: the clause's own source range, its end line ("default:
// // future kinds ignored on purpose"), or — for an empty body, whose End
// is right after the colon — indented comment lines up to the next clause
// (limit).
func hasAttachedComment(pass *analysis.Pass, file *ast.File, cc *ast.CaseClause, limit token.Pos) bool {
	end := cc.End()
	endLine := pass.Fset.Position(end).Line
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if c.Pos() >= cc.Pos() && (c.Pos() < limit || pass.Fset.Position(c.Pos()).Line == endLine) {
				return true
			}
		}
	}
	return false
}
