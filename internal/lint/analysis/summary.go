// Summary-based interprocedural facts. Summarize walks every function in a
// package once and produces a FuncSummary per function: behaviour flags
// (may-yield, may-block, may-allocate, may-do-wire-I/O), the set of lock
// classes the function transitively acquires, and the lock-order edges its
// body creates (lock B acquired while A is held). Summaries are propagated
// bottom-up: calls into already-summarized functions (same package via an
// in-package fixpoint, dependency packages via the vetx facts files the
// unitchecker exchanges with cmd/go) fold the callee's facts into the
// caller's, so an analyzer looking at one call site sees the whole call
// chain behind it. Standard-library behaviour is modelled by a conservative
// table (synthesize): sync/atomic and math/bits are pure, fmt allocates,
// sync.Mutex.Lock blocks, net/io/os do wire I/O, and anything unknown is
// assumed to allocate and block.
//
// Three doc-comment directives feed the summaries:
//
//	//drtmr:hotpath          this function must be transitively allocation-free
//	//drtmr:locks <class>    calling this function acquires the named pseudo-
//	                         lock (CAS lock words, contention gates) — the
//	                         class joins the acquisition graph for cycle
//	                         checks but is exempt from the held-across-yield
//	                         rule (protocol locks are legitimately held
//	                         across yields)
//	//drtmr:unlocks <class>  calling this function releases the pseudo-lock
//
// Precision notes (deliberate approximations, all safe-with-escape-hatch
// because findings can carry a reasoned //drtmr:allow):
//   - held-lock tracking is source-order linear, not path-sensitive: a lock
//     released on every branch is considered released after the first
//     syntactic Unlock;
//   - function literals are summarized as separate pseudo-functions
//     (key "parent$litN") so lock misuse inside them is still caught, but
//     their flags do not propagate to the enclosing function (calling a
//     closure is a dynamic call, which is conservatively may-allocate);
//   - same-class edges (A while A) are dropped: they almost always mean two
//     instances of one sharded structure, not re-entrant acquisition.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Flags is the behaviour bitmask of one function, transitively closed over
// its callees.
type Flags uint8

const (
	// FlagYield: may park the running coroutine / hand off control —
	// channel operations, select, runtime.Gosched, or a callee that does.
	FlagYield Flags = 1 << iota
	// FlagBlock: may block the OS thread (mutex lock, cond wait, sleep,
	// channel op, I/O).
	FlagBlock
	// FlagAlloc: may allocate on the heap.
	FlagAlloc
	// FlagWireIO: may perform network or file I/O (net/io/bufio/os, or a
	// callee that does).
	FlagWireIO
)

func (f Flags) String() string {
	var parts []string
	if f&FlagYield != 0 {
		parts = append(parts, "yield")
	}
	if f&FlagBlock != 0 {
		parts = append(parts, "block")
	}
	if f&FlagAlloc != 0 {
		parts = append(parts, "alloc")
	}
	if f&FlagWireIO != 0 {
		parts = append(parts, "wireio")
	}
	if len(parts) == 0 {
		return "pure"
	}
	return strings.Join(parts, "|")
}

// FuncSummary is one function's interprocedural fact record — the unit
// serialized into vetx facts files.
type FuncSummary struct {
	Name    string `json:"name"`
	Flags   Flags  `json:"flags,omitempty"`
	Hotpath bool   `json:"hotpath,omitempty"`

	// Via chains name the first witness behind a transitive flag, e.g.
	// AllocVia "fmt.Errorf" or YieldVia "txn.(*Worker).yield → channel send".
	YieldVia string `json:"yieldVia,omitempty"`
	AllocVia string `json:"allocVia,omitempty"`
	WireVia  string `json:"wireVia,omitempty"`

	// Acquires lists every lock class this function may acquire, directly
	// or through any callee. Pseudo-lock classes from //drtmr:locks carry a
	// leading '@'.
	Acquires []string `json:"acquires,omitempty"`

	// LocksGate / UnlocksGate record //drtmr:locks / //drtmr:unlocks
	// directives: calling this function acquires / releases the pseudo-lock.
	LocksGate   string `json:"locksGate,omitempty"`
	UnlocksGate string `json:"unlocksGate,omitempty"`
}

// LockEdge is one acquisition-order edge: To was acquired at Pos (inside Fn)
// while From was held.
type LockEdge struct {
	From string `json:"from"`
	To   string `json:"to"`
	Fn   string `json:"fn"`
	Pos  string `json:"pos,omitempty"`
}

// PkgSummaries is the vetx facts payload one package exports: its own
// function summaries plus every acquisition edge it knows about (its own and
// its dependencies', re-exported so cycle detection in a dependent package
// sees the whole graph below it).
type PkgSummaries struct {
	Funcs []*FuncSummary `json:"funcs,omitempty"`
	Edges []LockEdge     `json:"edges,omitempty"`
}

// DepFacts is the merged view of every dependency's PkgSummaries.
type DepFacts struct {
	Funcs map[string]*FuncSummary
	Edges []LockEdge
}

// CallSite is one out-edge of a function body: a resolved call, a dynamic
// call, or a direct scheduling-point operation, with the lock classes held
// at that point.
type CallSite struct {
	Pos    token.Pos
	Held   []string // lock classes held here ('@'-prefixed = pseudo-locks)
	Callee string   // qualified key of a statically resolved callee, or ""
	Dyn    string   // description of a dynamic call ("call through w.gate")
	Op     string   // direct op: "channel send", "channel receive", "select"
}

// AllocOp is one local allocation site.
type AllocOp struct {
	Pos  token.Pos
	What string
}

// FuncFacts is the per-function working set an analyzer consumes: the
// summary plus the body-derived site lists the summary was built from.
type FuncFacts struct {
	Summary *FuncSummary
	Decl    *ast.FuncDecl // nil for function literals
	Pos     token.Pos     // reporting anchor (the func keyword / name)
	Calls   []CallSite
	Allocs  []AllocOp
}

// LocalEdge is a lock-order edge with its in-package position retained for
// reporting.
type LocalEdge struct {
	From, To, Fn string
	Pos          token.Pos
}

// PkgFacts is everything Summarize derives for one package.
type PkgFacts struct {
	Pkg        *types.Package
	Local      map[string]*FuncFacts   // this package's functions (+ closures)
	Imported   map[string]*FuncSummary // dependency + synthesized summaries
	LocalEdges []LocalEdge
	AllEdges   []LockEdge // LocalEdges rendered + dependency edges, deduped

	edgeSeen map[string]bool
	fset     *token.FileSet
}

// IsLocalModule reports whether an import path belongs to this repository
// (facts are computed) as opposed to the standard library (facts are
// synthesized from a table).
func IsLocalModule(path string) bool {
	return path == "drtmr" || strings.HasPrefix(path, "drtmr/")
}

// FuncKey returns the canonical summary key of a function: "pkg.Name" for
// package-level functions, "pkg.(*Recv).Name" / "pkg.(Recv).Name" for
// methods.
func FuncKey(f *types.Func) string {
	sig, _ := f.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		ptr := ""
		if p, ok := t.(*types.Pointer); ok {
			t, ptr = p.Elem(), "*"
		}
		if n, ok := t.(*types.Named); ok {
			prefix := ""
			if n.Obj().Pkg() != nil {
				prefix = n.Obj().Pkg().Path() + "."
			}
			return prefix + "(" + ptr + n.Obj().Name() + ")." + f.Name()
		}
		return f.FullName()
	}
	if f.Pkg() != nil {
		return f.Pkg().Path() + "." + f.Name()
	}
	return f.Name()
}

// ShortName compresses a summary key for diagnostics:
// "drtmr/internal/obs.(*Recorder).Record" → "obs.(*Recorder).Record".
func ShortName(key string) string {
	if i := strings.LastIndex(key, "/"); i >= 0 {
		return key[i+1:]
	}
	return key
}

// Lookup resolves a callee to its summary: local package first, then
// dependency facts, then the standard-library model. Returns nil for
// functions with no computable summary (interface methods of local types,
// missing facts) — callers treat nil as unknown/conservative.
func (pf *PkgFacts) Lookup(key string) *FuncSummary {
	if ff := pf.Local[key]; ff != nil {
		return ff.Summary
	}
	return pf.Imported[key]
}

// Summarize computes per-function facts for one type-checked package,
// propagating dependency summaries (deps may be nil) through an in-package
// fixpoint.
func Summarize(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, deps *DepFacts) *PkgFacts {
	pf := &PkgFacts{
		Pkg:      pkg,
		Local:    make(map[string]*FuncFacts),
		Imported: make(map[string]*FuncSummary),
		edgeSeen: make(map[string]bool),
		fset:     fset,
	}
	var depEdges []LockEdge
	if deps != nil {
		for k, s := range deps.Funcs {
			pf.Imported[k] = s
		}
		depEdges = deps.Edges
	}

	// Pre-pass: directives, so gate annotations resolve regardless of
	// declaration order.
	type declInfo struct {
		key string
		fd  *ast.FuncDecl
	}
	var decls []declInfo
	for _, file := range files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			key := declKey(pkg, info, fd)
			sum := &FuncSummary{Name: key}
			parseFuncDirectives(fd, sum)
			pf.Local[key] = &FuncFacts{Summary: sum, Decl: fd, Pos: fd.Name.Pos()}
			decls = append(decls, declInfo{key, fd})
		}
	}

	// Body walk: local flags, lock tracking, call/alloc sites, direct edges.
	for _, di := range decls {
		w := &funcWalker{pf: pf, info: info, key: di.key, ff: pf.Local[di.key]}
		w.walkBody(di.fd.Body)
	}

	// In-package fixpoint: fold callee facts into callers until stable.
	pf.propagate()

	// Assemble the full edge set: local first (stable report positions),
	// then dependency edges.
	for _, e := range pf.LocalEdges {
		pf.addAllEdge(LockEdge{From: e.From, To: e.To, Fn: e.Fn, Pos: fset.Position(e.Pos).String()})
	}
	for _, e := range depEdges {
		pf.addAllEdge(e)
	}
	return pf
}

func (pf *PkgFacts) addAllEdge(e LockEdge) {
	k := e.From + "\x00" + e.To + "\x00" + e.Fn
	if pf.edgeSeen[k] {
		return
	}
	pf.edgeSeen[k] = true
	pf.AllEdges = append(pf.AllEdges, e)
}

// Export renders the facts a dependent package needs: local function
// summaries (closures excluded — they are not addressable across packages)
// plus the aggregated edge set.
func (pf *PkgFacts) Export() *PkgSummaries {
	out := &PkgSummaries{Edges: pf.AllEdges}
	var keys []string
	for k, ff := range pf.Local {
		if ff.Decl == nil {
			continue // closure pseudo-function
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out.Funcs = append(out.Funcs, pf.Local[k].Summary)
	}
	return out
}

// propagate runs the in-package fixpoint over flags, acquire sets, and
// callee-derived lock edges.
func (pf *PkgFacts) propagate() {
	for changed := true; changed; {
		changed = false
		for _, ff := range pf.Local {
			sum := ff.Summary
			for _, cs := range ff.Calls {
				if cs.Callee == "" {
					if cs.Dyn != "" {
						// A call we cannot resolve: assume it allocates and
						// blocks (but not that it yields — yield facts stay
						// precise so lockorder does not cry wolf).
						if sum.Flags&FlagAlloc == 0 {
							sum.Flags |= FlagAlloc
							sum.AllocVia = cs.Dyn
							changed = true
						}
						if sum.Flags&FlagBlock == 0 {
							sum.Flags |= FlagBlock
							changed = true
						}
					}
					continue
				}
				cal := pf.Lookup(cs.Callee)
				if cal == nil {
					// Unknown local-module callee (typically an interface
					// method): conservative on allocation and blocking.
					if sum.Flags&FlagAlloc == 0 {
						sum.Flags |= FlagAlloc
						sum.AllocVia = ShortName(cs.Callee) + " (unsummarized)"
						changed = true
					}
					if sum.Flags&FlagBlock == 0 {
						sum.Flags |= FlagBlock
						changed = true
					}
					continue
				}
				if add := cal.Flags &^ sum.Flags; add != 0 {
					sum.Flags |= add
					short := ShortName(cs.Callee)
					if add&FlagYield != 0 {
						sum.YieldVia = chain(short, cal.YieldVia)
					}
					if add&FlagAlloc != 0 {
						sum.AllocVia = chain(short, cal.AllocVia)
					}
					if add&FlagWireIO != 0 {
						sum.WireVia = chain(short, cal.WireVia)
					}
					changed = true
				}
				// Transitive acquisitions, and the edges they induce at
				// this (lock-held) call site.
				acq := cal.Acquires
				if g := cal.LocksGate; g != "" && !contains(acq, "@"+g) {
					acq = append(append([]string(nil), acq...), "@"+g)
				}
				for _, a := range acq {
					if !contains(sum.Acquires, a) {
						sum.Acquires = append(sum.Acquires, a)
						changed = true
					}
					for _, h := range cs.Held {
						if h != a && pf.addLocalEdge(LocalEdge{From: h, To: a, Fn: sum.Name, Pos: cs.Pos}) {
							changed = true
						}
					}
				}
			}
		}
	}
	for _, ff := range pf.Local {
		sort.Strings(ff.Summary.Acquires)
	}
}

func (pf *PkgFacts) addLocalEdge(e LocalEdge) bool {
	k := e.From + "\x00" + e.To + "\x00" + e.Fn
	if pf.edgeSeen["local\x00"+k] {
		return false
	}
	pf.edgeSeen["local\x00"+k] = true
	pf.LocalEdges = append(pf.LocalEdges, e)
	return true
}

func chain(head, tail string) string {
	if tail == "" || tail == head {
		return head
	}
	// Bound the witness chain so diagnostics stay readable.
	if strings.Count(tail, "→") >= 2 {
		if i := strings.LastIndex(tail, " → "); i > 0 {
			tail = tail[:i] + " → …"
		}
	}
	return head + " → " + tail
}

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}

func declKey(pkg *types.Package, info *types.Info, fd *ast.FuncDecl) string {
	if obj, ok := info.Defs[fd.Name].(*types.Func); ok && obj != nil {
		return FuncKey(obj)
	}
	path := ""
	if pkg != nil {
		path = pkg.Path() + "."
	}
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		return path + "(?)." + fd.Name.Name
	}
	return path + fd.Name.Name
}

// parseFuncDirectives reads //drtmr:hotpath, //drtmr:locks, //drtmr:unlocks
// from a function's doc comment.
func parseFuncDirectives(fd *ast.FuncDecl, sum *FuncSummary) {
	if fd.Doc == nil {
		return
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(c.Text)
		switch {
		case text == "//drtmr:hotpath" || strings.HasPrefix(text, "//drtmr:hotpath "):
			sum.Hotpath = true
		case strings.HasPrefix(text, "//drtmr:locks "):
			sum.LocksGate = strings.Fields(text[len("//drtmr:locks "):])[0]
		case strings.HasPrefix(text, "//drtmr:unlocks "):
			sum.UnlocksGate = strings.Fields(text[len("//drtmr:unlocks "):])[0]
		}
	}
	if sum.LocksGate != "" {
		sum.Acquires = append(sum.Acquires, "@"+sum.LocksGate)
	}
}
