// Body walker behind Summarize: one linear source-order pass per function
// that tracks the held-lock set, records call sites (with the locks held at
// each), direct scheduling-point operations, and local allocation sites.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

type funcWalker struct {
	pf   *PkgFacts
	info *types.Info
	key  string
	ff   *FuncFacts
	held []string // ordered held-lock classes; '@' prefix = pseudo-lock
	lits int      // closure counter for "$litN" keys
}

func (w *funcWalker) walkBody(body *ast.BlockStmt) {
	ast.Inspect(body, w.visit)
}

func (w *funcWalker) visit(n ast.Node) bool {
	switch x := n.(type) {
	case *ast.FuncLit:
		w.alloc(x.Pos(), "function literal (closure)")
		w.walkLit(x)
		return false

	case *ast.GoStmt:
		w.alloc(x.Pos(), "go statement (new goroutine)")
		if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
			w.walkLit(lit)
		}
		// Arguments are evaluated at the go statement, in the caller.
		for _, a := range x.Call.Args {
			ast.Inspect(a, w.visit)
		}
		return false

	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held to the end of the function:
		// swallow the release. Other deferred calls are treated as calls
		// made here (an approximation that keeps them in the call graph).
		if cls, op := w.lockOp(x.Call); cls != "" && (op == "Unlock" || op == "RUnlock") {
			return false
		}
		if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
			w.alloc(lit.Pos(), "function literal (closure)")
			w.walkLit(lit)
			return false
		}
		w.call(x.Call)
		for _, a := range x.Call.Args {
			ast.Inspect(a, w.visit)
		}
		return false

	case *ast.CallExpr:
		w.call(x)
		// Keep walking: nested calls/literals in Fun and Args still count.
		return true

	case *ast.SendStmt:
		w.op(x.Pos(), "channel send")
		return true

	case *ast.UnaryExpr:
		if x.Op == token.ARROW {
			w.op(x.Pos(), "channel receive")
		}
		if x.Op == token.AND {
			if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
				w.alloc(x.Pos(), "address of composite literal")
			}
		}
		return true

	case *ast.SelectStmt:
		w.op(x.Pos(), "select")
		return true

	case *ast.RangeStmt:
		if t := w.typeOf(x.X); t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				w.op(x.Pos(), "channel receive (range)")
			}
		}
		return true

	case *ast.CompositeLit:
		if t := w.typeOf(x); t != nil {
			switch t.Underlying().(type) {
			case *types.Slice:
				w.alloc(x.Pos(), "slice literal")
			case *types.Map:
				w.alloc(x.Pos(), "map literal")
			}
		}
		return true

	case *ast.BinaryExpr:
		if x.Op == token.ADD && w.isNonConstString(x) {
			w.alloc(x.Pos(), "string concatenation")
		}
		return true

	case *ast.AssignStmt:
		w.assign(x)
		return true
	}
	return true
}

// walkLit summarizes a function literal as a separate pseudo-function
// ("parent$litN") with a fresh held set. Its flags do not flow back to the
// parent (invoking the closure later is a dynamic call); its lock edges and
// held-across-operation sites are still recorded globally.
func (w *funcWalker) walkLit(lit *ast.FuncLit) {
	w.lits++
	key := fmt.Sprintf("%s$lit%d", w.key, w.lits)
	ff := &FuncFacts{Summary: &FuncSummary{Name: key}, Pos: lit.Pos()}
	w.pf.Local[key] = ff
	sub := &funcWalker{pf: w.pf, info: w.info, key: key, ff: ff}
	sub.walkBody(lit.Body)
}

func (w *funcWalker) typeOf(e ast.Expr) types.Type {
	if tv, ok := w.info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func (w *funcWalker) isNonConstString(e ast.Expr) bool {
	tv, ok := w.info.Types[e]
	if !ok || tv.Value != nil || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func (w *funcWalker) alloc(pos token.Pos, what string) {
	w.ff.Allocs = append(w.ff.Allocs, AllocOp{Pos: pos, What: what})
	if w.ff.Summary.Flags&FlagAlloc == 0 {
		w.ff.Summary.Flags |= FlagAlloc
		w.ff.Summary.AllocVia = what
	}
}

// op records a direct scheduling-point operation (channel op / select).
func (w *funcWalker) op(pos token.Pos, desc string) {
	w.ff.Calls = append(w.ff.Calls, CallSite{Pos: pos, Held: w.heldCopy(), Op: desc})
	s := w.ff.Summary
	if s.Flags&FlagYield == 0 {
		s.YieldVia = desc
	}
	s.Flags |= FlagYield | FlagBlock
}

func (w *funcWalker) heldCopy() []string {
	if len(w.held) == 0 {
		return nil
	}
	return append([]string(nil), w.held...)
}

// lockOp reports whether call is sync.Mutex/RWMutex (R)Lock/(R)Unlock on a
// classifiable receiver, returning the lock class and the method name.
func (w *funcWalker) lockOp(call *ast.CallExpr) (class, op string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	f, ok := w.info.Uses[sel.Sel].(*types.Func)
	if !ok || f.Pkg() == nil || f.Pkg().Path() != "sync" {
		return "", ""
	}
	sig, _ := f.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return "", ""
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	n, ok := rt.(*types.Named)
	if !ok {
		return "", ""
	}
	switch n.Obj().Name() {
	case "Mutex", "RWMutex":
	default:
		return "", ""
	}
	switch f.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock", "TryLock", "TryRLock":
	default:
		return "", ""
	}
	return w.lockClass(sel.X), f.Name()
}

// lockClass names the lock a mutex expression refers to. Struct fields get
// type-level classes ("pkg.Type.field") so every instance of a type shares
// one graph node; package-level vars get "pkg.var"; locals fall back to a
// function-scoped name.
func (w *funcWalker) lockClass(e ast.Expr) string {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.SelectorExpr:
		if s, ok := w.info.Selections[x]; ok && s.Kind() == types.FieldVal {
			rt := s.Recv()
			if p, ok := rt.(*types.Pointer); ok {
				rt = p.Elem()
			}
			if n, ok := rt.(*types.Named); ok {
				prefix := ""
				if n.Obj().Pkg() != nil {
					prefix = n.Obj().Pkg().Path() + "."
				}
				return prefix + n.Obj().Name() + "." + x.Sel.Name
			}
		}
		if v, ok := w.info.Uses[x.Sel].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
		return w.key + "." + x.Sel.Name
	case *ast.Ident:
		if v, ok := w.info.Uses[x].(*types.Var); ok {
			if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return v.Pkg().Path() + "." + v.Name()
			}
			return w.key + "." + v.Name()
		}
	case *ast.IndexExpr:
		// shards[i].mu reaches here via the SelectorExpr case; a bare
		// indexed mutex (rare) gets a per-function class.
		return w.key + ".<indexed lock>"
	}
	return w.key + ".<lock>"
}

func (w *funcWalker) acquire(pos token.Pos, class string) {
	for _, h := range w.held {
		if h == class {
			continue // same-class edge: sharded instances, not re-entrancy
		}
		w.pf.addLocalEdge(LocalEdge{From: h, To: class, Fn: w.key, Pos: pos})
	}
	w.held = append(w.held, class)
	if !contains(w.ff.Summary.Acquires, class) {
		w.ff.Summary.Acquires = append(w.ff.Summary.Acquires, class)
	}
	w.ff.Summary.Flags |= FlagBlock
}

func (w *funcWalker) release(class string) {
	for i := len(w.held) - 1; i >= 0; i-- {
		if w.held[i] == class {
			w.held = append(w.held[:i], w.held[i+1:]...)
			return
		}
	}
}

// call classifies one CallExpr: conversion, builtin, mutex op, gate
// directive, static call, or dynamic call.
func (w *funcWalker) call(call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)

	// Type conversion?
	if tv, ok := w.info.Types[fun]; ok && tv.IsType() {
		w.conversion(call, tv.Type)
		return
	}

	// Builtin?
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := w.info.Uses[id].(*types.Builtin); ok {
			w.builtin(call, b.Name())
			return
		}
	}

	// sync mutex operation?
	if class, op := w.lockOp(call); class != "" {
		switch op {
		case "Lock", "RLock":
			w.acquire(call.Pos(), class)
		case "Unlock", "RUnlock":
			w.release(class)
		case "TryLock", "TryRLock":
			// Result-dependent: treated as an acquisition for ordering
			// purposes (the success path holds it), released immediately
			// is unknowable linearly — record the edge, keep it held.
			w.acquire(call.Pos(), class)
		}
		return
	}

	// Statically resolved callee?
	if f := w.calleeFunc(fun); f != nil {
		key := FuncKey(f)
		// Memoize non-repo callees through the synthesized stdlib model so
		// the fixpoint only ever consults Local/Imported.
		if f.Pkg() != nil && !IsLocalModule(f.Pkg().Path()) {
			if _, ok := w.pf.Imported[key]; !ok {
				w.pf.Imported[key] = synthesize(f)
			}
		}
		// Gate directives on the callee act like lock ops at the call site.
		// In-package callees may not be summarized yet, but directives were
		// collected in the pre-pass, so this is order-independent.
		if cal := w.pf.Lookup(key); cal != nil {
			if g := cal.LocksGate; g != "" {
				w.acquire(call.Pos(), "@"+g)
			}
			if g := cal.UnlocksGate; g != "" {
				w.release("@" + g)
			}
		}
		w.ff.Calls = append(w.ff.Calls, CallSite{Pos: call.Pos(), Held: w.heldCopy(), Callee: key})
		w.boxingAtCall(call, f)
		return
	}

	// Dynamic call: through a func value, method value, or interface that
	// the type checker cannot pin to one function.
	w.ff.Calls = append(w.ff.Calls, CallSite{Pos: call.Pos(), Held: w.heldCopy(), Dyn: "dynamic call through " + renderExpr(fun)})
}

// calleeFunc resolves fun to a *types.Func for direct calls and concrete
// method calls. Interface method calls resolve to the interface method
// (which has no summary — handled conservatively by the fixpoint); calls
// through func-typed values return nil.
func (w *funcWalker) calleeFunc(fun ast.Expr) *types.Func {
	switch x := fun.(type) {
	case *ast.Ident:
		f, _ := w.info.Uses[x].(*types.Func)
		return f
	case *ast.SelectorExpr:
		if s, ok := w.info.Selections[x]; ok {
			if s.Kind() == types.MethodVal {
				f, _ := s.Obj().(*types.Func)
				return f
			}
			return nil // field of func type → dynamic
		}
		f, _ := w.info.Uses[x.Sel].(*types.Func)
		return f
	case *ast.IndexExpr: // generic instantiation f[T](...)
		return w.calleeFunc(x.X)
	}
	return nil
}

func (w *funcWalker) builtin(call *ast.CallExpr, name string) {
	switch name {
	case "append":
		w.alloc(call.Pos(), "append (may grow backing array)")
	case "make":
		w.alloc(call.Pos(), "make")
	case "new":
		w.alloc(call.Pos(), "new")
	case "panic":
		if len(call.Args) == 1 && !w.isConst(call.Args[0]) && !w.isInterfaceTyped(call.Args[0]) {
			w.alloc(call.Pos(), "value boxed into interface by panic")
		}
	}
}

func (w *funcWalker) conversion(call *ast.CallExpr, to types.Type) {
	if len(call.Args) != 1 {
		return
	}
	arg := call.Args[0]
	from := w.typeOf(arg)
	if from == nil {
		return
	}
	switch tu := to.Underlying().(type) {
	case *types.Basic:
		if tu.Info()&types.IsString != 0 && !w.isConst(arg) {
			if s, ok := from.Underlying().(*types.Slice); ok {
				if isByteOrRune(s.Elem()) {
					w.alloc(call.Pos(), "string conversion copies")
				}
			}
		}
	case *types.Slice:
		if fb, ok := from.Underlying().(*types.Basic); ok && fb.Info()&types.IsString != 0 && isByteOrRune(tu.Elem()) {
			w.alloc(call.Pos(), "byte-slice conversion copies")
		}
	case *types.Interface:
		if !types.IsInterface(from) && !w.isConst(arg) {
			w.alloc(call.Pos(), "conversion boxes value into interface")
		}
	}
}

func isByteOrRune(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

func (w *funcWalker) isConst(e ast.Expr) bool {
	tv, ok := w.info.Types[e]
	return ok && tv.Value != nil
}

func (w *funcWalker) isInterfaceTyped(e ast.Expr) bool {
	t := w.typeOf(e)
	return t != nil && types.IsInterface(t)
}

// boxingAtCall flags non-constant concrete arguments passed to interface
// parameters (including variadic ...any): each such argument may escape to
// the heap. Constant arguments are exempt — the compiler materializes them
// statically.
func (w *funcWalker) boxingAtCall(call *ast.CallExpr, f *types.Func) {
	sig, _ := f.Type().(*types.Signature)
	if sig == nil {
		return
	}
	params := sig.Params()
	np := params.Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-arg boxing
			}
			pt = params.At(np - 1).Type()
			if s, ok := pt.Underlying().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < np:
			pt = params.At(i).Type()
		default:
			continue
		}
		if pt == nil || !types.IsInterface(pt.Underlying()) {
			continue
		}
		at := w.typeOf(arg)
		if at == nil || types.IsInterface(at) || w.isConst(arg) {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		w.alloc(arg.Pos(), fmt.Sprintf("argument boxed into interface parameter of %s", ShortName(FuncKey(f))))
	}
}

// assign flags map writes and string-append assignment.
func (w *funcWalker) assign(as *ast.AssignStmt) {
	for _, lhs := range as.Lhs {
		if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
			if t := w.typeOf(ix.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					w.alloc(as.Pos(), "map write")
				}
			}
		}
	}
	if as.Tok == token.ADD_ASSIGN && len(as.Lhs) == 1 && w.isNonConstString(as.Lhs[0]) {
		w.alloc(as.Pos(), "string concatenation")
	}
}

func renderExpr(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return renderExpr(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return renderExpr(x.X) + "[...]"
	case *ast.CallExpr:
		return renderExpr(x.Fun) + "()"
	}
	return "expression"
}
