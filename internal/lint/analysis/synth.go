// Synthesized summaries for standard-library callees. The table is
// deliberately conservative: anything not recognized is assumed to allocate
// and block, so a hotpath that wanders into unmodelled territory is flagged
// rather than silently trusted.
package analysis

import (
	"go/types"
	"strings"
)

// synthesize builds a FuncSummary for a non-repo function from the
// behaviour table. The result is memoized by the walker into PkgFacts.
func synthesize(f *types.Func) *FuncSummary {
	key := FuncKey(f)
	sum := &FuncSummary{Name: key}
	pkg := ""
	if f.Pkg() != nil {
		pkg = f.Pkg().Path()
	}
	name := f.Name()
	recv := recvName(f)

	set := func(fl Flags) {
		sum.Flags = fl
		short := ShortName(key)
		if fl&FlagYield != 0 {
			sum.YieldVia = short
		}
		if fl&FlagAlloc != 0 {
			sum.AllocVia = short
		}
		if fl&FlagWireIO != 0 {
			sum.WireVia = short
		}
	}

	switch pkg {
	case "sync":
		switch recv {
		case "Mutex", "RWMutex":
			switch name {
			case "Lock", "RLock":
				set(FlagBlock)
			default: // Unlock, RUnlock, TryLock...
				set(0)
			}
			return sum
		case "Cond":
			if name == "Wait" {
				// A cond wait blocks the OS thread but does not park the
				// coroutine scheduler — modelling it as yield would flag
				// every classic mutex+cond queue.
				set(FlagBlock)
			} else {
				set(0) // Signal, Broadcast
			}
			return sum
		case "WaitGroup":
			if name == "Wait" {
				set(FlagBlock)
			} else {
				set(0) // Add, Done
			}
			return sum
		case "Once":
			set(FlagBlock | FlagAlloc)
			return sum
		case "Map", "Pool":
			set(FlagBlock | FlagAlloc)
			return sum
		}
		set(FlagBlock | FlagAlloc)
		return sum

	case "sync/atomic", "math/bits", "math", "unicode", "unsafe":
		set(0)
		return sum

	case "runtime":
		if name == "Gosched" {
			set(FlagYield | FlagBlock)
		} else {
			set(FlagBlock | FlagAlloc)
		}
		return sum

	case "time":
		switch {
		case name == "Sleep", name == "After", name == "Tick":
			set(FlagBlock | FlagAlloc)
		case name == "Now", name == "Since", name == "Until":
			set(0)
		case recv == "Duration" && name != "String":
			set(0) // Nanoseconds, Seconds, comparisons...
		default:
			set(FlagBlock | FlagAlloc)
		}
		return sum

	case "encoding/binary":
		switch {
		case strings.HasPrefix(name, "PutUint"), strings.HasPrefix(name, "Uint"):
			set(0) // byteOrder fixed-width codecs are pure
		case strings.HasPrefix(name, "AppendUint"):
			set(FlagAlloc)
		default: // Read, Write, Size — reflective / io-coupled
			set(FlagAlloc | FlagBlock | FlagWireIO)
		}
		return sum

	case "net", "io", "bufio", "os", "net/http", "io/ioutil", "crypto/tls":
		set(FlagWireIO | FlagBlock | FlagAlloc)
		return sum

	case "fmt":
		if strings.HasPrefix(name, "Sprint") || name == "Errorf" || strings.HasPrefix(name, "Append") {
			set(FlagAlloc)
		} else {
			set(FlagAlloc | FlagWireIO | FlagBlock) // Print*/Fprint*/Scan*
		}
		return sum

	case "errors", "strings", "strconv", "sort", "bytes", "encoding/json",
		"encoding/hex", "encoding/base64", "log", "regexp", "slices", "maps",
		"container/heap", "hash/crc32", "hash/fnv", "math/rand", "path",
		"path/filepath", "flag", "reflect", "context", "expvar":
		set(FlagAlloc)
		return sum
	}

	// Unrecognized package: conservative.
	set(FlagAlloc | FlagBlock)
	return sum
}

func recvName(f *types.Func) string {
	sig, _ := f.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}
