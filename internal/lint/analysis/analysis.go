// Package analysis is a dependency-free miniature of
// golang.org/x/tools/go/analysis: just enough of the Analyzer/Pass/Diagnostic
// surface for drtmr's own vet suite (internal/lint), so the analyzers read
// idiomatically while the repo stays free of external modules. Two drivers
// consume it: the analysistest-style fixture runner (lint/analysistest) and
// the `go vet -vettool` unit checker (lint/unitchecker).
//
// On top of the x/tools shape it bakes in the repo's suppression protocol:
// a finding is silenced by an adjacent
//
//	//drtmr:allow <analyzer> <reason>
//
// comment — on the same line as the finding or on the line directly above
// it. The reason is mandatory: a bare //drtmr:allow <analyzer> is itself a
// diagnostic, so every suppression in the tree documents why the invariant
// does not apply (DESIGN.md "Static invariants" has the policy).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one static check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //drtmr:allow directives. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph description printed by -flags/usage.
	Doc string
	// Run performs the check, reporting findings through the pass.
	Run func(*Pass) error
	// PackageFilter restricts the analyzer to packages for which it
	// returns true (by import path). nil means every package. Drivers in
	// test mode bypass the filter so fixtures need not fake import paths.
	PackageFilter func(path string) bool
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Facts holds the interprocedural summaries (see summary.go) for this
	// package plus everything imported below it. Always non-nil during Run.
	Facts *PkgFacts
	// Fixture is true under the analysistest driver: package-path-scoped
	// heuristics (e.g. lockorder's wire-I/O rule, normally limited to
	// internal/serve) apply unconditionally so fixtures can exercise them.
	Fixture bool

	diags *[]Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// allowDirective is one parsed //drtmr:allow comment.
type allowDirective struct {
	pos      token.Pos
	line     int // line the directive appears on
	file     string
	analyzer string
	reason   string
	used     bool
}

var directiveRE = regexp.MustCompile(`^//drtmr:allow\b[ \t]*([^ \t]*)[ \t]*(.*)$`)

// parseDirectives collects every //drtmr:allow directive in the files.
func parseDirectives(fset *token.FileSet, files []*ast.File) []*allowDirective {
	var out []*allowDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				// Fixture files pair a directive with a `// want` expectation
				// on the same line comment; the marker is not part of the
				// directive's reason.
				if i := strings.Index(text, "// want "); i > 0 {
					text = strings.TrimRight(text[:i], " \t")
				}
				m := directiveRE.FindStringSubmatch(text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				out = append(out, &allowDirective{
					pos:      c.Pos(),
					line:     pos.Line,
					file:     pos.Filename,
					analyzer: m[1],
					reason:   strings.TrimSpace(m[2]),
				})
			}
		}
	}
	return out
}

// Options configures a suite run.
type Options struct {
	// IgnoreFilters runs every analyzer on the package regardless of its
	// PackageFilter (fixture mode).
	IgnoreFilters bool
	// Facts supplies precomputed interprocedural summaries (with dependency
	// facts folded in, as the unitchecker does). When nil, Run summarizes
	// the package in isolation — sufficient for fixtures and same-package
	// propagation.
	Facts *PkgFacts
}

// Run executes the analyzers over one type-checked package, applies the
// //drtmr:allow suppression protocol, and returns the surviving diagnostics
// sorted by position. Directive hygiene (missing reason, unknown analyzer
// name) is reported as diagnostics of the pseudo-analyzer "allow".
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer, opts Options) ([]Diagnostic, error) {
	facts := opts.Facts
	if facts == nil {
		facts = Summarize(fset, files, pkg, info, nil)
	}
	var raw []Diagnostic
	for _, a := range analyzers {
		if !opts.IgnoreFilters && a.PackageFilter != nil && pkg != nil && !a.PackageFilter(pkg.Path()) {
			continue
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Facts:     facts,
			Fixture:   opts.IgnoreFilters,
			diags:     &raw,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}

	directives := parseDirectives(fset, files)
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}

	// Suppress: a directive covers findings of its analyzer on its own
	// line and on the next line (the "directly above" placement).
	var kept []Diagnostic
	for _, d := range raw {
		p := fset.Position(d.Pos)
		suppressed := false
		for _, dir := range directives {
			if dir.analyzer != d.Analyzer || dir.file != p.Filename {
				continue
			}
			if dir.line == p.Line || dir.line == p.Line-1 {
				dir.used = true
				if dir.reason != "" {
					suppressed = true
				}
				// A reason-less directive does NOT suppress: the finding
				// stays and the directive itself is flagged below.
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}

	// Directive hygiene.
	for _, dir := range directives {
		switch {
		case dir.analyzer == "":
			kept = append(kept, Diagnostic{Pos: dir.pos, Analyzer: "allow",
				Message: "//drtmr:allow needs an analyzer name and a reason"})
		case !known[dir.analyzer]:
			// Only flag names unknown to the full suite; a single-analyzer
			// test run must not reject directives for its siblings.
			if opts.IgnoreFilters && len(analyzers) == 1 && dir.analyzer != analyzers[0].Name {
				continue
			}
			kept = append(kept, Diagnostic{Pos: dir.pos, Analyzer: "allow",
				Message: fmt.Sprintf("//drtmr:allow names unknown analyzer %q", dir.analyzer)})
		case dir.reason == "":
			kept = append(kept, Diagnostic{Pos: dir.pos, Analyzer: "allow",
				Message: fmt.Sprintf("//drtmr:allow %s is missing the required reason", dir.analyzer)})
		}
	}

	sort.Slice(kept, func(i, j int) bool { return kept[i].Pos < kept[j].Pos })
	return kept, nil
}
