package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"drtmr/internal/lint/analysis"
)

// Doorbell guards the PR-1 batching win against regression: in the commit
// pipeline, one-sided verbs are posted to an rdma.Batch and ring a single
// doorbell per phase (one base latency for the whole batch) instead of
// paying a full round-trip per verb. A raw single-verb QP call written in a
// function that already has a Batch in scope is almost always a missed
// PostX — it silently re-introduces the sequential per-verb latency the
// batching work removed, and no correctness test notices.
//
// Single-verb QP calls in functions with no Batch in scope (last-resort
// header reads, passive lock release) are legitimate and not flagged.
var Doorbell = &analysis.Analyzer{
	Name:          "doorbell",
	Doc:           "flag raw single-verb QP.Read/Write/CAS calls where an rdma.Batch is in scope (doorbell batching regression guard)",
	PackageFilter: isProtocolPackage,
	Run:           runDoorbell,
}

// singleVerbMethods are the synchronous per-verb QP entry points with a
// batched equivalent (Batch.PostRead/PostRead64/PostWrite/PostWrite64/
// PostCAS).
var singleVerbMethods = map[string]string{
	"Read":    "PostRead",
	"Read64":  "PostRead64",
	"Write":   "PostWrite",
	"Write64": "PostWrite64",
	"CAS":     "PostCAS",
	"FAA":     "PostCAS", // no batched FAA; restructure or justify
}

func runDoorbell(pass *analysis.Pass) error {
	for _, fd := range funcDecls(pass.Files) {
		batchPos := firstBatchInScope(pass.TypesInfo, fd)
		if !batchPos.IsValid() {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if call.Pos() < batchPos {
				return true
			}
			name := calleeName(pass.TypesInfo, call)
			post, isVerb := singleVerbMethods[name]
			if !isVerb || recvTypeName(pass.TypesInfo, call) != "QP" {
				return true
			}
			pass.Reportf(call.Pos(),
				"single-verb QP.%s while an rdma.Batch is in scope pays a full per-verb round-trip: post it with Batch.%s and share the doorbell", name, post)
			return true
		})
	}
	return nil
}

// firstBatchInScope returns the position of the first declaration of a
// (*)Batch-typed variable in the function (parameters included), or NoPos.
func firstBatchInScope(info *types.Info, fd *ast.FuncDecl) token.Pos {
	pos := token.NoPos
	consider := func(id *ast.Ident) {
		obj := info.Defs[id]
		if obj == nil {
			return
		}
		if v, ok := obj.(*types.Var); ok && namedTypeName(v.Type()) == "Batch" {
			if !pos.IsValid() || id.Pos() < pos {
				pos = id.Pos()
			}
		}
	}
	if fd.Type.Params != nil {
		for _, f := range fd.Type.Params.List {
			for _, id := range f.Names {
				consider(id)
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			consider(id)
		}
		return true
	})
	return pos
}
