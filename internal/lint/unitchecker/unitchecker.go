// Package unitchecker implements the (unpublished but stable) cmd/go vet
// tool protocol with only the standard library, in the spirit of
// golang.org/x/tools/go/analysis/unitchecker: cmd/go invokes the tool once
// per package with a JSON config file naming the source files and the export
// data of every dependency, and the tool type-checks the unit, runs its
// analyzers, and reports diagnostics on stderr (exit status 2).
//
// Protocol handled here:
//
//	drtmr-vet -V=full        print a version line (build cache tool ID)
//	drtmr-vet -flags         print the supported flags as JSON
//	drtmr-vet <dir>/vet.cfg  analyze one package unit
//
// Facts: drtmr packages export interprocedural summaries
// (analysis.PkgSummaries as JSON) through the vetx facts channel — a
// dependency unit (VetxOnly) for a drtmr package is parsed, type-checked and
// summarized so its dependents see its function behaviour and lock edges;
// stdlib dependency units are acknowledged with an empty facts file (their
// behaviour is synthesized from a table instead).
//
// Machine-readable output: when DRTMRVET_EMIT names a directory, each unit
// with findings also writes them there as JSON (one file per unit), which
// the drtmr-vet CLI aggregates into ratchet/JSON/SARIF reports. Findings
// still go to stderr with exit status 2 — exiting 0 would let cmd/go cache
// the run and swallow the emission on the next invocation.
package unitchecker

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"drtmr/internal/lint/analysis"
	"drtmr/internal/lint/ratchet"
)

// Config is cmd/go's vet.cfg (cmd/go/internal/work.vetConfig). Fields we do
// not consume are kept for documentation value.
type Config struct {
	ID         string
	Compiler   string
	Dir        string
	ImportPath string
	GoFiles    []string
	NonGoFiles []string

	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool
	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string
	GoVersion   string

	SucceedOnTypecheckFailure bool
}

// Main is the entry point for a vettool built on this package.
func Main(analyzers ...*analysis.Analyzer) {
	progname := filepath.Base(os.Args[0])

	fs := flag.NewFlagSet(progname, flag.ExitOnError)
	printVersion := fs.String("V", "", "print version and exit (cmd/go tool ID protocol)")
	printFlags := fs.Bool("flags", false, "print analyzer flags in JSON (cmd/go protocol)")
	enabled := make(map[string]*bool, len(analyzers))
	for _, a := range analyzers {
		enabled[a.Name] = fs.Bool(a.Name, false, "enable only "+a.Name+": "+a.Doc)
	}
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [-analyzer...] <vet.cfg>   (driven by go vet -vettool=%s)\n", progname, progname)
		fmt.Fprintf(os.Stderr, "       %s ./...                      (re-executes go vet -vettool=self)\n", progname)
		fs.PrintDefaults()
	}
	// cmd/go passes -V=full as its own argument; tolerate it up front so
	// flag parsing never chokes on protocol probes.
	_ = fs.Parse(os.Args[1:])

	if *printVersion != "" {
		// The version line feeds cmd/go's tool ID (build cache key). cmd/go
		// requires `<name> version devel ... buildID=<id>`; hashing the
		// executable means rebuilding the tool invalidates cached vet runs.
		fmt.Printf("%s version devel buildID=%s\n", progname, selfHash())
		return
	}
	if *printFlags {
		type jsonFlag struct {
			Name  string
			Bool  bool
			Usage string
		}
		var out []jsonFlag
		for _, a := range analyzers {
			out = append(out, jsonFlag{Name: a.Name, Bool: true, Usage: a.Doc})
		}
		data, _ := json.Marshal(out)
		os.Stdout.Write(data)
		return
	}

	args := fs.Args()
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		fs.Usage()
		os.Exit(1)
	}

	// Honor -<analyzer> selection: any set → run only those.
	run := analyzers
	var selected []*analysis.Analyzer
	for _, a := range analyzers {
		if *enabled[a.Name] {
			selected = append(selected, a)
		}
	}
	if len(selected) > 0 {
		run = selected
	}

	diags, err := analyzeUnit(args[0], run)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		os.Exit(1)
	}
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
		os.Exit(2)
	}
}

// selfHash hashes the tool binary for the -V=full tool ID.
func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("sha256=%x", h.Sum(nil)[:12])
}

// analyzeUnit runs the analyzers over one vet.cfg unit and returns rendered
// diagnostics ("file:line:col: analyzer: message").
func analyzeUnit(cfgPath string, analyzers []*analysis.Analyzer) ([]string, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, err
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", cfgPath, err)
	}

	path := unitImportPath(&cfg)

	// Only drtmr packages carry computed facts; stdlib units are
	// acknowledged with an empty facts file and skipped.
	if !analysis.IsLocalModule(path) {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
				return nil, err
			}
		}
		return nil, nil
	}

	emptyVetx := func() error {
		if cfg.VetxOutput != "" {
			return os.WriteFile(cfg.VetxOutput, []byte{}, 0o666)
		}
		return nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, emptyVetx()
			}
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tconf := types.Config{
		Importer:  newCfgImporter(&cfg, fset),
		GoVersion: cfg.GoVersion,
		Sizes:     types.SizesFor("gc", buildGOARCH()),
	}
	pkg, err := tconf.Check(path, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, emptyVetx()
		}
		return nil, fmt.Errorf("type-checking %s: %w", cfg.ImportPath, err)
	}

	// Fold in dependency facts, summarize, and export this unit's facts.
	deps := readDepFacts(&cfg)
	facts := analysis.Summarize(fset, files, pkg, info, deps)
	if cfg.VetxOutput != "" {
		out, err := json.Marshal(facts.Export())
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(cfg.VetxOutput, out, 0o666); err != nil {
			return nil, err
		}
	}
	if cfg.VetxOnly {
		return nil, nil
	}

	diags, err := analysis.Run(fset, files, pkg, info, analyzers, analysis.Options{Facts: facts})
	if err != nil {
		return nil, err
	}
	if dir := os.Getenv("DRTMRVET_EMIT"); dir != "" && len(diags) > 0 {
		if err := emitFindings(dir, cfg.ID, fset, diags); err != nil {
			return nil, err
		}
	}
	out := make([]string, 0, len(diags))
	for _, d := range diags {
		p := fset.Position(d.Pos)
		out = append(out, fmt.Sprintf("%s:%d:%d: %s: %s", p.Filename, p.Line, p.Column, d.Analyzer, d.Message))
	}
	return out, nil
}

// readDepFacts loads every drtmr dependency's vetx facts file named in the
// unit config and merges them (empty files — stdlib acknowledgements or
// failed units — are skipped).
func readDepFacts(cfg *Config) *analysis.DepFacts {
	deps := &analysis.DepFacts{Funcs: make(map[string]*analysis.FuncSummary)}
	for path, file := range cfg.PackageVetx {
		if !analysis.IsLocalModule(path) {
			continue
		}
		data, err := os.ReadFile(file)
		if err != nil || len(data) == 0 {
			continue
		}
		var ps analysis.PkgSummaries
		if err := json.Unmarshal(data, &ps); err != nil {
			continue
		}
		for _, f := range ps.Funcs {
			deps.Funcs[f.Name] = f
		}
		deps.Edges = append(deps.Edges, ps.Edges...)
	}
	return deps
}

// emitFindings writes one unit's findings as JSON into the DRTMRVET_EMIT
// directory, named by a hash of the unit ID so parallel units never collide.
func emitFindings(dir, unitID string, fset *token.FileSet, diags []analysis.Diagnostic) error {
	fs := make([]ratchet.Finding, 0, len(diags))
	for _, d := range diags {
		p := fset.Position(d.Pos)
		fs = append(fs, ratchet.Finding{
			Analyzer: d.Analyzer,
			File:     p.Filename,
			Line:     p.Line,
			Col:      p.Column,
			Message:  d.Message,
		})
	}
	data, err := json.Marshal(fs)
	if err != nil {
		return err
	}
	sum := sha256.Sum256([]byte(unitID))
	name := fmt.Sprintf("unit-%x.json", sum[:16])
	return os.WriteFile(filepath.Join(dir, name), data, 0o666)
}

// unitImportPath strips cmd/go's test-variant suffix
// ("pkg [pkg.test]" → "pkg") so PackageFilter matching sees the real path.
func unitImportPath(cfg *Config) string {
	path := cfg.ImportPath
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	return path
}

func buildGOARCH() string {
	if v := os.Getenv("GOARCH"); v != "" {
		return v
	}
	return runtime.GOARCH
}

// cfgImporter resolves imports through the export data files cmd/go listed
// in the unit config, translating source import paths through ImportMap and
// feeding the gc importer's lookup protocol.
type cfgImporter struct {
	cfg        *Config
	underlying types.ImporterFrom
}

func newCfgImporter(cfg *Config, fset *token.FileSet) *cfgImporter {
	imp := &cfgImporter{cfg: cfg}
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q in vet config", path)
		}
		return os.Open(file)
	}
	imp.underlying = importer.ForCompiler(fset, compilerName(cfg), lookup).(types.ImporterFrom)
	return imp
}

func compilerName(cfg *Config) string {
	if cfg.Compiler != "" {
		return cfg.Compiler
	}
	return "gc"
}

func (i *cfgImporter) Import(path string) (*types.Package, error) {
	return i.ImportFrom(path, i.cfg.Dir, 0)
}

func (i *cfgImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if mapped, ok := i.cfg.ImportMap[path]; ok {
		path = mapped
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return i.underlying.ImportFrom(path, dir, mode)
}
