package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"drtmr/internal/lint/analysis"
)

// LockPair guards the commit/fallback lock discipline: a doorbell batch of
// lock CASes executes in full before any result is visible, so the scan over
// its results must (a) record every won lock in the back-out set and (b) run
// to completion before acting on any failure. An early `break` or `return`
// from the scan leaks locks won later in the batch — the exact bug class of
// the C.1 retry-batch fix (commit c08a886): the back-out path then releases
// only the subset collected so far and the rest stay held forever.
//
// Flow-sensitively, for every loop that inspects CAS results (reads the
// .Swapped field of a *rdma.Pending):
//
//  1. no statement in the loop may exit it early (break out of the loop,
//     a labeled continue targeting an enclosing loop, or return) — record
//     failures and act after the scan completes;
//  2. the loop must record acquisitions somewhere: an append to a back-out
//     slice or a call to a release/unlock/record helper.
//
// Breaks that target a switch/select nested inside the loop are fine, as are
// unlabeled continues and continues naming the scan loop itself (both start
// the next result) — but `continue groups` out to a group driver (the farm
// F.1 / fallback per-node-group shape) abandons the rest of the scan exactly
// like a break does.
var LockPair = &analysis.Analyzer{
	Name:          "lockpair",
	Doc:           "lock-word CAS results must be fully scanned and every won lock recorded in the back-out set",
	PackageFilter: isProtocolPackage,
	Run:           runLockPair,
}

func runLockPair(pass *analysis.Pass) error {
	for _, fd := range funcDecls(pass.Files) {
		// Map loop statements to their labels so a scan loop knows its own
		// label (continue to it is a normal next-iteration).
		loopLabels := make(map[ast.Stmt]string)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if ls, ok := n.(*ast.LabeledStmt); ok && ls.Stmt != nil {
				loopLabels[ls.Stmt] = ls.Label.Name
			}
			return true
		})
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch loop := n.(type) {
			case *ast.ForStmt:
				body = loop.Body
			case *ast.RangeStmt:
				body = loop.Body
			default:
				return true
			}
			if !readsSwapped(pass.TypesInfo, body) {
				return true
			}
			// Innermost-loop rule: if a nested loop inside this one is the
			// one reading Swapped, the nested visit handles it.
			if hasNestedSwappedLoop(pass.TypesInfo, body) {
				return true
			}
			checkScanLoop(pass, n, body, loopLabels[n.(ast.Stmt)])
			return true
		})
	}
	return nil
}

// readsSwapped reports whether the subtree reads a field named Swapped
// (the CAS-result success bit on rdma.Pending; matched by selection so
// fixtures with their own Pending-shaped struct work too).
func readsSwapped(info *types.Info, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Swapped" {
			return true
		}
		if s, ok := info.Selections[sel]; ok {
			if s.Kind() == types.FieldVal {
				found = true
			}
			return true
		}
		// Unresolved selection (partial type info): match by name.
		found = true
		return true
	})
	return found
}

// hasNestedSwappedLoop reports whether a loop nested inside body itself
// reads Swapped (then the outer loop is a group driver, not the scan).
func hasNestedSwappedLoop(info *types.Info, body *ast.BlockStmt) bool {
	nested := false
	ast.Inspect(body, func(n ast.Node) bool {
		if nested {
			return false
		}
		switch inner := n.(type) {
		case *ast.ForStmt:
			if readsSwapped(info, inner.Body) {
				nested = true
			}
			return false
		case *ast.RangeStmt:
			if readsSwapped(info, inner.Body) {
				nested = true
			}
			return false
		}
		return true
	})
	return nested
}

// checkScanLoop applies the two lock-discipline rules to one result scan.
// scanLabel is the scan loop's own label ("" if unlabeled).
func checkScanLoop(pass *analysis.Pass, loop ast.Node, body *ast.BlockStmt, scanLabel string) {
	// Labels that a continue may safely target: the scan loop itself plus
	// any labeled statement nested inside the scan body (continuing either
	// stays within the scan). Anything else is an enclosing loop — leaving
	// for it abandons the rest of the results.
	safeLabels := map[string]bool{}
	if scanLabel != "" {
		safeLabels[scanLabel] = true
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if ls, ok := n.(*ast.LabeledStmt); ok {
			safeLabels[ls.Label.Name] = true
		}
		return true
	})

	// Rule 1: no early exit. Track switch/select nesting so their breaks
	// don't count; skip nested function literals entirely.
	var walk func(n ast.Node, breakable int)
	walk = func(n ast.Node, breakable int) {
		switch st := n.(type) {
		case nil:
			return
		case *ast.FuncLit:
			return
		case *ast.ForStmt, *ast.RangeStmt:
			// A nested loop: its unlabeled breaks exit IT, not the scan.
			// (Nested scans were excluded by hasNestedSwappedLoop.)
			for _, c := range childStmts(st.(ast.Stmt)) {
				walk(c, breakable+1)
			}
			return
		case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			for _, c := range childStmts(st.(ast.Stmt)) {
				walk(c, breakable+1)
			}
			return
		case *ast.BranchStmt:
			exits := false
			switch st.Tok.String() {
			case "break":
				// Unlabeled break inside a nested breakable construct stays
				// local; a labeled break always targets an enclosing loop.
				exits = breakable == 0 || st.Label != nil
			case "continue":
				// Unlabeled continue (and continue to the scan's own label,
				// or to a loop nested in the scan) starts the next result;
				// a continue naming an ENCLOSING loop's label leaves the
				// scan mid-batch — the labeled-continue variant of the
				// early-break leak.
				exits = st.Label != nil && !safeLabels[st.Label.Name]
			case "goto":
				exits = true
			}
			if exits {
				pass.Reportf(st.Pos(),
					"early exit from a lock-CAS result scan: locks won later in the batch leak past the back-out set — record the failure and break after the scan completes")
			}
			return
		case *ast.ReturnStmt:
			pass.Reportf(st.Pos(),
				"return inside a lock-CAS result scan: locks won later in the batch leak past the back-out set — finish the scan, then return")
			return
		}
		// Generic recursion over child statements/expressions.
		ast.Inspect(n, func(c ast.Node) bool {
			if c == n {
				return true
			}
			switch c.(type) {
			case *ast.FuncLit, *ast.ForStmt, *ast.RangeStmt,
				*ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt,
				*ast.BranchStmt, *ast.ReturnStmt:
				walk(c, breakable)
				return false
			}
			return true
		})
	}
	for _, s := range body.List {
		walk(s, 0)
	}

	// Rule 2: the scan must record acquisitions somewhere.
	if !recordsAcquisition(pass.TypesInfo, body) {
		pass.Reportf(loop.Pos(),
			"lock-CAS result scan never records won locks: append the acquired target to the back-out set (or release it) on the Swapped branch")
	}
}

// recordsAcquisition reports whether the loop body appends to a slice (the
// back-out set idiom) or calls a helper whose name signals release/record.
func recordsAcquisition(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
			if obj := info.Uses[id]; obj == nil || isBuiltin(obj) {
				found = true
				return true
			}
		}
		name := strings.ToLower(calleeName(info, call))
		for _, verb := range []string{"unlock", "release", "record", "backout"} {
			if strings.Contains(name, verb) {
				found = true
				return true
			}
		}
		return true
	})
	return found
}

func isBuiltin(obj types.Object) bool {
	_, ok := obj.(*types.Builtin)
	return ok
}
