package lint

import (
	"go/ast"

	"drtmr/internal/lint/analysis"
)

// VirtualTime forbids wall-clock and ambient-nondeterminism sources inside
// the protocol packages (internal/{txn,htm,rdma,cluster,sim,check,bench}).
// All protocol time flows through sim.Clock and all randomness through
// sim.Rand, so that a torture-harness seed replays bit-identically: one
// stray time.Now() in a decision path (or one draw from math/rand's global,
// self-seeded source) silently breaks the oracle's determinism guarantee.
// Deliberate wall-clock use — the failure-detector leases, the harness's
// wall-time measurements, the virtual-time source itself — carries a
// //drtmr:allow virtualtime annotation explaining why it is outside the
// replayed state.
//
// _test.go files are exempt: test timeouts and benchmarks legitimately
// watch the wall clock, and tests are not part of the replayed protocol.
var VirtualTime = &analysis.Analyzer{
	Name:          "virtualtime",
	Doc:           "forbid wall-clock and global-randomness sources in protocol packages (seeded-replay bit-determinism)",
	PackageFilter: inProtocolPackages,
	Run:           runVirtualTime,
}

// timeFuncs are package time functions that read or wait on the wall clock.
var timeFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// globalRandFuncs are math/rand (and v2) package-level draws from the
// process-global, self-seeded source. Methods on an explicitly seeded
// *rand.Rand are fine — but protocol code should use sim.Rand anyway.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Int64": true, "Int64N": true,
	"Uint32": true, "Uint64": true, "Uint64N": true, "UintN": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true, "N": true,
}

func runVirtualTime(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			path, name := pkgLevelCallee(pass.TypesInfo, call)
			switch {
			case path == "time" && timeFuncs[name]:
				pass.Reportf(call.Pos(), "time.%s reads the wall clock in a protocol package: virtual time must come from sim.Clock or the result is not replayable", name)
			case (path == "math/rand" || path == "math/rand/v2") && globalRandFuncs[name]:
				pass.Reportf(call.Pos(), "%s.%s draws from the global self-seeded source: protocol randomness must come from sim.Rand or seeded replay breaks", path, name)
			case path == "crypto/rand":
				pass.Reportf(call.Pos(), "crypto/rand is nondeterministic by design: protocol randomness must come from sim.Rand")
			}
			return true
		})
	}
	return nil
}
