package lint_test

import (
	"testing"

	"drtmr/internal/lint"
	"drtmr/internal/lint/analysistest"
)

// Each fixture demonstrates at least one true-positive diagnostic, one
// finding suppressed by a reasoned //drtmr:allow, and one reason-less
// directive that is itself rejected (the `// want "missing the required
// reason"` lines).

func TestHTMRegion(t *testing.T) {
	analysistest.Run(t, "testdata", lint.HTMRegion, "htmregion")
}

func TestVirtualTime(t *testing.T) {
	analysistest.Run(t, "testdata", lint.VirtualTime, "virtualtime")
}

func TestAbortAttr(t *testing.T) {
	analysistest.Run(t, "testdata", lint.AbortAttr, "abortattr")
}

func TestLockPair(t *testing.T) {
	analysistest.Run(t, "testdata", lint.LockPair, "lockpair")
}

func TestDoorbell(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Doorbell, "doorbell")
}

// TestPackageFilters pins the analyzer scoping: the commit-pipeline checks
// cover internal/txn AND any protocol package nested under it, determinism
// covers every protocol package, and nothing fires on the harness-external
// packages (cmd, examples, lint).
func TestPackageFilters(t *testing.T) {
	cases := []struct {
		path        string
		txnOnly     bool
		virtualTime bool
	}{
		{"drtmr/internal/txn", true, true},
		{"drtmr/internal/txn/farmproto", true, true},
		{"drtmr/internal/txnhelpers", false, false},
		{"drtmr/internal/rdma", false, true},
		{"drtmr/internal/bench/harness", false, true},
		{"drtmr/internal/lint", false, false},
		{"drtmr/cmd/drtmr-bench", false, false},
	}
	for _, c := range cases {
		for _, a := range lint.Analyzers {
			if a.PackageFilter == nil {
				t.Errorf("%s: nil PackageFilter", a.Name)
				continue
			}
			got := a.PackageFilter(c.path)
			want := c.virtualTime
			if a.Name != "virtualtime" {
				want = c.txnOnly
			}
			if got != want {
				t.Errorf("%s.PackageFilter(%q) = %v, want %v", a.Name, c.path, got, want)
			}
		}
	}
}
