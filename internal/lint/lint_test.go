package lint_test

import (
	"testing"

	"drtmr/internal/lint"
	"drtmr/internal/lint/analysistest"
)

// Each fixture demonstrates at least one true-positive diagnostic, one
// finding suppressed by a reasoned //drtmr:allow, and one reason-less
// directive that is itself rejected (the `// want "missing the required
// reason"` lines).

func TestHTMRegion(t *testing.T) {
	analysistest.Run(t, "testdata", lint.HTMRegion, "htmregion")
}

func TestVirtualTime(t *testing.T) {
	analysistest.Run(t, "testdata", lint.VirtualTime, "virtualtime")
}

func TestAbortAttr(t *testing.T) {
	analysistest.Run(t, "testdata", lint.AbortAttr, "abortattr")
}

func TestLockPair(t *testing.T) {
	analysistest.Run(t, "testdata", lint.LockPair, "lockpair")
}

func TestDoorbell(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Doorbell, "doorbell")
}

// TestPackageFilters pins the analyzer scoping, which comes in three widths:
// the commit-pipeline checks (htmregion, lockpair, doorbell) cover
// internal/txn AND any protocol package nested under it; abort attribution
// additionally covers the serve tree, which mints and reconstructs typed
// aborts at the network boundary; determinism (virtualtime) covers every
// protocol package including serve. Nothing fires on the harness-external
// packages (cmd, examples, lint).
func TestPackageFilters(t *testing.T) {
	cases := []struct {
		path        string
		txnOnly     bool
		abortAttr   bool
		virtualTime bool
	}{
		{"drtmr/internal/txn", true, true, true},
		{"drtmr/internal/txn/farmproto", true, true, true},
		{"drtmr/internal/txnhelpers", false, false, false},
		{"drtmr/internal/rdma", false, false, true},
		{"drtmr/internal/bench/harness", false, false, true},
		{"drtmr/internal/bench/serveload", false, false, true},
		{"drtmr/internal/serve", false, true, true},
		{"drtmr/internal/serve/client", false, true, true},
		{"drtmr/internal/servehelpers", false, false, false},
		{"drtmr/internal/lint", false, false, false},
		{"drtmr/cmd/drtmr-serve", false, false, false},
		{"drtmr/cmd/drtmr-bench", false, false, false},
	}
	for _, c := range cases {
		for _, a := range lint.Analyzers {
			if a.PackageFilter == nil {
				t.Errorf("%s: nil PackageFilter", a.Name)
				continue
			}
			got := a.PackageFilter(c.path)
			var want bool
			switch a.Name {
			case "virtualtime":
				want = c.virtualTime
			case "abortattr":
				want = c.abortAttr
			default:
				want = c.txnOnly
			}
			if got != want {
				t.Errorf("%s.PackageFilter(%q) = %v, want %v", a.Name, c.path, got, want)
			}
		}
	}
}
