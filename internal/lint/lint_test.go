package lint_test

import (
	"testing"

	"drtmr/internal/lint"
	"drtmr/internal/lint/analysistest"
)

// Each fixture demonstrates at least one true-positive diagnostic, one
// finding suppressed by a reasoned //drtmr:allow, and one reason-less
// directive that is itself rejected (the `// want "missing the required
// reason"` lines).

func TestHTMRegion(t *testing.T) {
	analysistest.Run(t, "testdata", lint.HTMRegion, "htmregion")
}

func TestVirtualTime(t *testing.T) {
	analysistest.Run(t, "testdata", lint.VirtualTime, "virtualtime")
}

func TestAbortAttr(t *testing.T) {
	analysistest.Run(t, "testdata", lint.AbortAttr, "abortattr")
}

func TestLockPair(t *testing.T) {
	analysistest.Run(t, "testdata", lint.LockPair, "lockpair")
}

func TestDoorbell(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Doorbell, "doorbell")
}

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, "testdata", lint.LockOrder, "lockorder")
}

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, "testdata", lint.HotAlloc, "hotalloc")
}

func TestEnumSwitch(t *testing.T) {
	analysistest.Run(t, "testdata", lint.EnumSwitch, "enumswitch")
}

// TestPackageFilters pins the analyzer scoping, which comes in four widths:
// the commit-pipeline checks (htmregion, lockpair, doorbell) cover
// internal/txn AND any protocol package nested under it; abort attribution
// additionally covers the serve tree, which mints and reconstructs typed
// aborts at the network boundary; determinism (virtualtime) covers every
// protocol package including serve; the interprocedural summary analyzers
// (lockorder, hotalloc, enumswitch) cover the protocol packages plus the
// obs tree (whose ring recorder and live histograms are the canonical
// hotpath surfaces). Nothing fires on the harness-external packages (cmd,
// examples, lint).
func TestPackageFilters(t *testing.T) {
	cases := []struct {
		path        string
		txnOnly     bool
		abortAttr   bool
		virtualTime bool
		summary     bool
	}{
		{"drtmr/internal/txn", true, true, true, true},
		{"drtmr/internal/txn/farmproto", true, true, true, true},
		{"drtmr/internal/txnhelpers", false, false, false, false},
		{"drtmr/internal/rdma", false, false, true, true},
		{"drtmr/internal/bench/harness", false, false, true, true},
		{"drtmr/internal/bench/serveload", false, false, true, true},
		{"drtmr/internal/serve", false, true, true, true},
		{"drtmr/internal/serve/client", false, true, true, true},
		{"drtmr/internal/servehelpers", false, false, false, false},
		{"drtmr/internal/obs", false, false, false, true},
		{"drtmr/internal/obs/trace", false, false, false, true},
		{"drtmr/internal/obstacles", false, false, false, false},
		{"drtmr/internal/lint", false, false, false, false},
		{"drtmr/cmd/drtmr-serve", false, false, false, false},
		{"drtmr/cmd/drtmr-bench", false, false, false, false},
	}
	for _, c := range cases {
		for _, a := range lint.Analyzers {
			if a.PackageFilter == nil {
				t.Errorf("%s: nil PackageFilter", a.Name)
				continue
			}
			got := a.PackageFilter(c.path)
			var want bool
			switch a.Name {
			case "virtualtime":
				want = c.virtualTime
			case "abortattr":
				want = c.abortAttr
			case "lockorder", "hotalloc", "enumswitch":
				want = c.summary
			default:
				want = c.txnOnly
			}
			if got != want {
				t.Errorf("%s.PackageFilter(%q) = %v, want %v", a.Name, c.path, got, want)
			}
		}
	}
}
