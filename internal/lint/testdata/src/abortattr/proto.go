// Fixture for abortattr's CommitProtocol rule: methods on types implementing
// the package-scope CommitProtocol interface must not mint untyped errors —
// the retry loop classifies aborts by switching on *txn.Error, so an
// fmt.Errorf/errors.New escaping a protocol method becomes an unclassified,
// unattributed failure.
package abortattr

import (
	"errors"
	"fmt"
)

// CommitProtocol mirrors the real interface's shape (resolved by name, so
// the fixture declares its own).
type CommitProtocol interface {
	Name() string
	Commit() error
}

type goodProto struct{}

func (goodProto) Name() string { return "good" }
func (goodProto) Commit() error {
	return &Error{Reason: 1, Stage: 2, Site: 3}
}

type badProto struct{}

func (badProto) Name() string { return "bad" }
func (badProto) Commit() error {
	if false {
		return errors.New("lock failed") // want "errors.New in CommitProtocol method Commit"
	}
	return fmt.Errorf("validate failed: %d", 7) // want "fmt.Errorf in CommitProtocol method Commit"
}

// helper is a non-interface method on a protocol type: still covered — the
// error it returns flows out through the interface methods.
func (badProto) helper() error {
	return errors.New("helper") // want "errors.New in CommitProtocol method helper"
}

type ptrProto struct{}

func (*ptrProto) Name() string { return "ptr" }
func (p *ptrProto) Commit() error {
	return fmt.Errorf("ptr receiver") // want "fmt.Errorf in CommitProtocol method Commit"
}

type notAProto struct{}

// Commit on a type that does NOT implement CommitProtocol (no Name): the
// rule does not apply.
func (notAProto) Commit() error {
	return fmt.Errorf("plain helper type")
}

type allowedProto struct{}

func (allowedProto) Name() string { return "allowed" }
func (allowedProto) Commit() error {
	//drtmr:allow abortattr wrapping an external resource error that never reaches the retry loop
	return fmt.Errorf("resource: %v", 1)
}

// errors.Is/As and wrapped *Error returns stay legal in protocol methods.
type inspectingProto struct{}

func (inspectingProto) Name() string { return "inspecting" }
func (inspectingProto) Commit() error {
	err := goodProto{}.Commit()
	var te *Error
	if errors.As(err, &te) || errors.Is(err, nil) {
		return te
	}
	return nil
}
