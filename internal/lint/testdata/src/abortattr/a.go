// Fixture for the abortattr analyzer: txn.Error-shaped literals must set
// Reason, Stage and Site so the abort-attribution matrix never loses a cell.
package abortattr

type Error struct {
	Reason int
	Stage  uint8
	Site   uint16
	Detail string
}

// other has the fields but a different name: not an abort error.
type other struct {
	Stage uint8
	Site  uint16
}

func good() error {
	return &Error{Reason: 1, Stage: 2, Site: 3, Detail: "x"}
}

func goodPositional() error {
	return &Error{1, 2, 3, "x"} // positional literals set every field
}

func goodOtherType() any {
	return &other{} // not the Error shape+name: fine
}

func badNoStage() error {
	return &Error{Reason: 1, Site: 3, Detail: "x"} // want "without Stage"
}

func badNoSite() error {
	return &Error{Reason: 1, Stage: 2} // want "without Site"
}

func badValueLiteral() error {
	e := Error{Detail: "x"} // want "without Reason" "without Stage" "without Site"
	return &e
}

func allowed() error {
	//drtmr:allow abortattr sentinel compared by identity, never recorded in the matrix
	return &Error{Reason: 1}
}

func missingReason() error {
	return &Error{Reason: 1, Stage: 2} //drtmr:allow abortattr // want "without Site" "missing the required reason"
}
