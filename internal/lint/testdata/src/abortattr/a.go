// Fixture for the abortattr analyzer: txn.Error-shaped literals must set
// Reason, Stage and Site so the abort-attribution matrix never loses a cell.
package abortattr

type Error struct {
	Reason int
	Stage  uint8
	Site   uint16
	Table  uint8
	Key    uint64
	HasKey bool
	Detail string
}

// other has the fields but a different name: not an abort error.
type other struct {
	Stage uint8
	Site  uint16
}

func good() error {
	return &Error{Reason: 1, Stage: 2, Site: 3, Detail: "x"}
}

func goodPositional() error {
	return &Error{1, 2, 3, 4, 5, true, "x"} // positional literals set every field
}

func goodKeyed() error {
	return &Error{Reason: 1, Stage: 2, Site: 3, Table: 4, Key: 5, HasKey: true}
}

func goodUnkeyed() error {
	// Naming none of Table/Key/HasKey is fine: not every abort has a key.
	return &Error{Reason: 1, Stage: 2, Site: 3}
}

func badPartialKey() error {
	return &Error{Reason: 1, Stage: 2, Site: 3, Table: 4, Key: 5} // want "keyed txn.Error literal without HasKey"
}

func badHasKeyOnly() error {
	return &Error{Reason: 1, Stage: 2, Site: 3, HasKey: true} // want "keyed txn.Error literal without Table" "keyed txn.Error literal without Key"
}

func goodOtherType() any {
	return &other{} // not the Error shape+name: fine
}

func badNoStage() error {
	return &Error{Reason: 1, Site: 3, Detail: "x"} // want "without Stage"
}

func badNoSite() error {
	return &Error{Reason: 1, Stage: 2} // want "without Site"
}

func badValueLiteral() error {
	e := Error{Detail: "x"} // want "without Reason" "without Stage" "without Site"
	return &e
}

func allowed() error {
	//drtmr:allow abortattr sentinel compared by identity, never recorded in the matrix
	return &Error{Reason: 1}
}

func missingReason() error {
	return &Error{Reason: 1, Stage: 2} //drtmr:allow abortattr // want "without Site" "missing the required reason"
}
