// Fixture for the htmregion analyzer: operations that abort or are unsound
// inside an htmBegin/htmEnd bracket.
package htmregion

type mutex struct{}

func (m *mutex) Lock()   {}
func (m *mutex) Unlock() {}

type worker struct {
	ch  chan int
	mu  mutex
	buf []int
}

func (w *worker) htmBegin() {}
func (w *worker) htmEnd()   {}
func (w *worker) yield()    {}
func (w *worker) await()    {}

var shared []int

func ok(w *worker) {
	w.ch <- 1 // outside any region: fine
	w.yield()
	w.htmBegin()
	x := 1
	_ = x
	w.htmEnd()
	w.yield() // region closed: fine
}

func badYield(w *worker) {
	w.htmBegin()
	defer w.htmEnd()
	w.yield() // want "yield or blocking wait cannot preserve speculative hardware state"
}

func badAwait(w *worker) {
	w.htmBegin()
	w.await() // want "yield or blocking wait"
	w.htmEnd()
}

func badChan(w *worker) {
	w.htmBegin()
	w.ch <- 1 // want "channel send inside an HTM region"
	<-w.ch    // want "channel receive inside an HTM region"
	w.htmEnd()
}

func badSelect(w *worker) {
	w.htmBegin()
	select { // want "select inside an HTM region"
	default:
	}
	w.htmEnd()
}

func badMutex(w *worker) {
	w.htmBegin()
	w.mu.Lock() // want "mutex Lock inside an HTM region"
	w.mu.Unlock() // want "mutex Unlock inside an HTM region"
	w.htmEnd()
}

func badGo(w *worker) {
	w.htmBegin()
	go w.yield() // want "goroutine launch inside an HTM region"
	w.htmEnd()
}

func badAppend(w *worker) {
	local := make([]int, 0, 4)
	w.htmBegin()
	local = append(local, 1) // function-local: fine
	w.buf = append(w.buf, 1) // want "append into shared state"
	shared = append(shared, 1) // want "append into shared state"
	w.htmEnd()
	_ = local
}

var table = map[int]int{}

func badMapGrow(w *worker) {
	local := map[int]int{}
	w.htmBegin()
	local[1] = 1 // function-local map: fine
	table[1] = 1 // want "map write into shared state"
	w.htmEnd()
	_ = local
}

func badInBranch(w *worker, cond bool) {
	w.htmBegin()
	if cond {
		w.yield() // want "yield or blocking wait"
	}
	w.htmEnd()
}

//drtmr:htmbody runs inside badHelperRegion's bracket
func regionBody(w *worker) {
	w.yield() // want "yield or blocking wait"
}

func helperOutsideRegion(w *worker) {
	w.yield() // not a region body: fine
}

func allowedYield(w *worker) {
	w.htmBegin()
	//drtmr:allow htmregion deliberately trips the runtime yield-in-HTM assert
	w.yield()
	w.htmEnd()
}

func missingReason(w *worker) {
	w.htmBegin()
	w.yield() //drtmr:allow htmregion // want "yield or blocking wait" "missing the required reason"
	w.htmEnd()
}

func badFuncLit(w *worker) func() {
	return func() {
		w.htmBegin()
		defer w.htmEnd()
		w.yield() // want "yield or blocking wait"
	}
}
