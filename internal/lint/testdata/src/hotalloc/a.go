// Fixture for the hotalloc analyzer: //drtmr:hotpath functions must be
// transitively allocation-free. Covers direct allocation shapes (append
// growth, closures, string concat, map writes, interface boxing, make/new,
// escaping composite literals), transitive inheritance through callees,
// dynamic calls, and the //drtmr:allow suppression contract.
package hotalloc

import "fmt"

type ring struct {
	buf []uint64
	n   int
	m   map[string]int
}

// A clean recorder: index assignment into a preallocated ring.
//
//drtmr:hotpath
func goodRecord(r *ring, v uint64) {
	r.buf[r.n%len(r.buf)] = v
	r.n++
}

// Calling a transitively clean function is fine.
//
//drtmr:hotpath
func goodCallsClean(r *ring, v uint64) {
	goodRecord(r, v)
}

//drtmr:hotpath
func badAppend(r *ring, v uint64) {
	r.buf = append(r.buf, v) // want "allocation in hotpath function: append \(may grow backing array\)"
}

//drtmr:hotpath
func badClosure(r *ring) func() {
	return func() { r.n++ } // want "allocation in hotpath function: function literal \(closure\)"
}

//drtmr:hotpath
func badConcat(a, b string) string {
	return a + b // want "allocation in hotpath function: string concatenation"
}

//drtmr:hotpath
func badMapWrite(r *ring, k string) {
	r.m[k] = 1 // want "allocation in hotpath function: map write"
}

//drtmr:hotpath
func badMake(n int) []uint64 {
	return make([]uint64, n) // want "allocation in hotpath function: make"
}

//drtmr:hotpath
func badEscape() *ring {
	return &ring{n: 1} // want "allocation in hotpath function: address of composite literal"
}

func sink(v any) { _ = v }

//drtmr:hotpath
func badBoxing(v int) {
	sink(v) // want "allocation in hotpath function: argument boxed into interface parameter of hotalloc.sink"
}

// Constant arguments are materialized statically by the compiler — no
// boxing finding, and panic with a constant is the htmregion-style idiom.
//
//drtmr:hotpath
func goodConstArg() {
	sink("fixed")
}

// deepAlloc is not itself a hotpath, but a hotpath caller inherits its
// allocation through the summary with a via chain.
func deepAlloc() string {
	return fmt.Sprintf("%d", 1)
}

//drtmr:hotpath
func badTransitive() {
	_ = deepAlloc() // want "hotpath function calls hotalloc.deepAlloc, which may allocate \(via fmt.Sprintf\)"
}

//drtmr:hotpath
func badDynamic(f func()) {
	f() // want "hotpath function makes a dynamic call through f, which cannot be proven allocation-free"
}

//drtmr:hotpath
func allowedAppend(r *ring, v uint64) {
	r.buf = append(r.buf, v) //drtmr:allow hotalloc warmup-only growth, steady state never appends
}

//drtmr:hotpath
func reasonlessAppend(r *ring, v uint64) {
	r.buf = append(r.buf, v) //drtmr:allow hotalloc // want "allocation in hotpath" "missing the required reason"
}
