// Fixture for the lockorder analyzer: acquisition-order cycles, locks held
// across coroutine yields (channel ops, transitively), locks held across
// wire I/O, pseudo-lock gates from //drtmr:locks directives, and the
// //drtmr:allow suppression contract.
package lockorder

import (
	"io"
	"sync"
)

type pair struct {
	a  sync.Mutex
	b  sync.Mutex
	ch chan int
	w  io.Writer
}

// lockAB and lockBA together form an a→b / b→a cycle; each acquisition that
// closes the cycle is reported in the function that makes it.
func (p *pair) lockAB() {
	p.a.Lock()
	p.b.Lock() // want "lock order cycle: acquiring lockorder.pair.b while lockorder.pair.a held closes cycle \[lockorder.pair.a → lockorder.pair.b → lockorder.pair.a\]"
	p.b.Unlock()
	p.a.Unlock()
}

func (p *pair) lockBA() {
	p.b.Lock()
	p.a.Lock() // want "lock order cycle: acquiring lockorder.pair.a while lockorder.pair.b held closes cycle \[lockorder.pair.b → lockorder.pair.a → lockorder.pair.b\]"
	p.a.Unlock()
	p.b.Unlock()
}

// Consistent nesting elsewhere is not a cycle by itself — these two uses of
// the same order produce no finding.
type nested struct {
	outer sync.Mutex
	inner sync.Mutex
}

func (n *nested) one() {
	n.outer.Lock()
	n.inner.Lock()
	n.inner.Unlock()
	n.outer.Unlock()
}

func (n *nested) two() {
	n.outer.Lock()
	defer n.outer.Unlock()
	n.inner.Lock()
	defer n.inner.Unlock()
}

// A direct channel operation under a mutex parks the coroutine while every
// sibling on the worker can block on the same mutex.
func (p *pair) heldAcrossSend() {
	p.a.Lock()
	p.ch <- 1 // want "lockorder.pair.a held across channel send"
	p.a.Unlock()
}

// parkHere yields; holding a lock across a call to it is the transitive
// version of the same bug.
func (p *pair) parkHere() {
	<-p.ch
}

func (p *pair) heldAcrossYield() {
	p.a.Lock()
	defer p.a.Unlock()
	p.parkHere() // want "lockorder.pair.a held across call to lockorder.\(\*pair\).parkHere, which may yield"
}

// Releasing before the yield is fine.
func (p *pair) releasedBeforeYield() {
	p.a.Lock()
	p.a.Unlock()
	p.parkHere()
}

// Wire I/O under a mutex stretches the critical section across a syscall.
func (p *pair) heldAcrossWire(buf []byte) {
	p.a.Lock()
	p.w.Write(buf) // want "lockorder.pair.a held across call to io.\(Writer\).Write, which may perform wire I/O"
	p.a.Unlock()
}

// The same shape with an audited reason is suppressed.
func (p *pair) allowedWire(buf []byte) {
	p.a.Lock()
	p.w.Write(buf) //drtmr:allow lockorder per-connection write mutex intentionally serializes frames
	p.a.Unlock()
}

// A reason-less directive does not suppress and is itself flagged.
func (p *pair) reasonlessWire(buf []byte) {
	p.a.Lock()
	p.w.Write(buf) //drtmr:allow lockorder // want "held across call to io" "missing the required reason"
	p.a.Unlock()
}

// Lock misuse inside a function literal is still caught (closures are
// summarized as their own pseudo-functions).
func closureHeldAcrossSend(p *pair) {
	f := func() {
		p.a.Lock()
		p.ch <- 1 // want "lockorder.pair.a held across channel send"
		p.a.Unlock()
	}
	f()
}

// Pseudo-locks: //drtmr:locks / //drtmr:unlocks participate in the
// acquisition graph (cycle detection) but are exempt from the yield rule —
// protocol lock words are held across yields by design.
var gateMu sync.Mutex

//drtmr:locks gate
func enterGate() {}

//drtmr:unlocks gate
func leaveGate() {}

func gateThenLock() {
	enterGate()
	gateMu.Lock() // want "lock order cycle: acquiring lockorder.gateMu while @gate held closes cycle \[@gate → lockorder.gateMu → @gate\]"
	gateMu.Unlock()
	leaveGate()
}

func lockThenGate() {
	gateMu.Lock()
	enterGate() // want "lock order cycle: acquiring @gate while lockorder.gateMu held closes cycle \[lockorder.gateMu → @gate → lockorder.gateMu\]"
	leaveGate()
	gateMu.Unlock()
}

func gateAcrossYield(ch chan int) {
	enterGate()
	<-ch // no finding: pseudo-locks are held across yields by design
	leaveGate()
}
