// Fixture for the virtualtime analyzer: wall-clock and global-randomness
// sources that would break seeded-replay bit-determinism.
package virtualtime

import (
	crand "crypto/rand"
	"math/rand"
	"time"
)

func badClock() int64 {
	t := time.Now()              // want "time.Now reads the wall clock"
	time.Sleep(time.Millisecond) // want "time.Sleep reads the wall clock"
	<-time.After(time.Millisecond) // want "time.After reads the wall clock"
	_ = time.Since(t)            // want "time.Since reads the wall clock"
	return t.UnixNano()
}

func badGlobalRand() int {
	rand.Seed(42)          // want "math/rand.Seed draws from the global"
	n := rand.Intn(4)      // want "math/rand.Intn draws from the global"
	f := rand.Float64()    // want "math/rand.Float64 draws from the global"
	return n + int(f)
}

func badCryptoRand(buf []byte) {
	_, _ = crand.Read(buf) // want "crypto/rand is nondeterministic"
}

func okSeeded() int {
	r := rand.New(rand.NewSource(42)) // explicit deterministic source: fine
	return r.Intn(4)                  // method on the seeded source: fine
}

func okDurations() time.Duration {
	return 3 * time.Microsecond // time's types and constants are fine
}

func allowedWallClock() int64 {
	//drtmr:allow virtualtime failure-detector lease, deliberately wall-clock
	return time.Now().UnixNano()
}

func missingReason() int64 {
	return time.Now().UnixNano() //drtmr:allow virtualtime // want "time.Now reads the wall clock" "missing the required reason"
}
