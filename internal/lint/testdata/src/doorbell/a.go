// Fixture for the doorbell analyzer: raw single-verb QP calls where an
// rdma.Batch is in scope regress the doorbell-batching latency win.
package doorbell

type QP struct{}

func (q *QP) Read(off uint64, n int, buf []byte) ([]byte, error) { return buf, nil }
func (q *QP) Write(off uint64, data []byte) error                { return nil }
func (q *QP) Write64(off, v uint64) error                        { return nil }
func (q *QP) CAS(off, old, new uint64) (uint64, bool, error)     { return 0, false, nil }

type pendingOp struct{}

type Batch struct{}

func (b *Batch) PostRead(q *QP, off uint64, n int) *pendingOp      { return nil }
func (b *Batch) PostCAS(q *QP, off, old, new uint64) *pendingOp    { return nil }
func (b *Batch) Execute() error                                    { return nil }

func newBatch() *Batch { return &Batch{} }

func okNoBatchInScope(q *QP) {
	_, _, _ = q.CAS(8, 0, 1) // no batch in this function: legitimate
}

func badMixed(q *QP) {
	b := newBatch()
	b.PostRead(q, 0, 24)
	_, _ = q.Read(8, 24, nil) // want "single-verb QP.Read while an rdma.Batch is in scope"
	_ = q.Write64(16, 1)      // want "single-verb QP.Write64"
	_, _, _ = q.CAS(24, 0, 1) // want "single-verb QP.CAS"
	_ = b.Execute()
}

func badBatchParam(q *QP, b *Batch) {
	b.PostCAS(q, 8, 0, 1)
	_ = q.Write(16, nil) // want "single-verb QP.Write"
}

func okBeforeBatchExists(q *QP) {
	_, _, _ = q.CAS(8, 0, 1) // posted before any batch exists: fine
	b := newBatch()
	b.PostCAS(q, 8, 0, 1)
	_ = b.Execute()
}

func allowedSingleVerb(q *QP) {
	b := newBatch()
	b.PostCAS(q, 8, 0, 1)
	_ = b.Execute()
	//drtmr:allow doorbell last-resort header re-read, off the batched phases
	_, _ = q.Read(8, 24, nil)
}

func missingReason(q *QP) {
	b := newBatch()
	_ = b.Execute()
	_, _, _ = q.CAS(8, 0, 1) //drtmr:allow doorbell // want "single-verb QP.CAS" "missing the required reason"
}
