// Fixture for the lockpair analyzer: scans over lock-CAS results must run
// to completion and record every won lock in a back-out set.
package lockpair

type pending struct {
	Swapped bool
	Prev    uint64
	Err     error
}

type target struct{ off uint64 }

func releaseAll(ts []target) {}

func goodScan(pend []*pending, targets []target) []target {
	var acquired []target
	failed := -1
	for i, p := range pend {
		if p.Err != nil || !p.Swapped {
			if failed < 0 {
				failed = i
			}
			continue
		}
		acquired = append(acquired, targets[i])
	}
	if failed >= 0 {
		releaseAll(acquired)
		return nil
	}
	return acquired
}

func goodSwitchBreak(pend []*pending, targets []target) []target {
	var acquired []target
	for i, p := range pend {
		switch {
		case p.Err != nil:
			break // breaks the switch, not the scan: fine
		case p.Swapped:
			acquired = append(acquired, targets[i])
		}
	}
	return acquired
}

func badBreak(pend []*pending, targets []target) []target {
	var acquired []target
	for i, p := range pend {
		if p.Err != nil {
			break // want "early exit from a lock-CAS result scan"
		}
		if p.Swapped {
			acquired = append(acquired, targets[i])
		}
	}
	return acquired
}

func badReturn(pend []*pending, targets []target) []target {
	var acquired []target
	for i, p := range pend {
		if !p.Swapped {
			return nil // want "return inside a lock-CAS result scan"
		}
		acquired = append(acquired, targets[i])
	}
	return acquired
}

func badLabeledBreak(pend []*pending, targets []target) []target {
	var acquired []target
groups:
	for round := 0; round < 2; round++ {
		for i, p := range pend {
			switch {
			case p.Err != nil:
				break groups // want "early exit from a lock-CAS result scan"
			case p.Swapped:
				acquired = append(acquired, targets[i])
			}
		}
	}
	return acquired
}

func badNoRecord(pend []*pending) int {
	n := 0
	for _, p := range pend { // want "never records won locks"
		if p.Swapped {
			n++
		}
	}
	return n
}

func allowedBreak(pend []*pending, targets []target) []target {
	var acquired []target
	for i, p := range pend {
		if p.Err != nil {
			//drtmr:allow lockpair single-verb batch: nothing later in the batch to leak
			break
		}
		if p.Swapped {
			acquired = append(acquired, targets[i])
		}
	}
	return acquired
}

func missingReason(pend []*pending, targets []target) []target {
	var acquired []target
	for i, p := range pend {
		if p.Err != nil {
			break //drtmr:allow lockpair // want "early exit from a lock-CAS result scan" "missing the required reason"
		}
		if p.Swapped {
			acquired = append(acquired, targets[i])
		}
	}
	return acquired
}
