// Fixture for the lockpair analyzer: scans over lock-CAS results must run
// to completion and record every won lock in a back-out set.
package lockpair

type pending struct {
	Swapped bool
	Prev    uint64
	Err     error
}

type target struct{ off uint64 }

func releaseAll(ts []target) {}

func goodScan(pend []*pending, targets []target) []target {
	var acquired []target
	failed := -1
	for i, p := range pend {
		if p.Err != nil || !p.Swapped {
			if failed < 0 {
				failed = i
			}
			continue
		}
		acquired = append(acquired, targets[i])
	}
	if failed >= 0 {
		releaseAll(acquired)
		return nil
	}
	return acquired
}

func goodSwitchBreak(pend []*pending, targets []target) []target {
	var acquired []target
	for i, p := range pend {
		switch {
		case p.Err != nil:
			break // breaks the switch, not the scan: fine
		case p.Swapped:
			acquired = append(acquired, targets[i])
		}
	}
	return acquired
}

func badBreak(pend []*pending, targets []target) []target {
	var acquired []target
	for i, p := range pend {
		if p.Err != nil {
			break // want "early exit from a lock-CAS result scan"
		}
		if p.Swapped {
			acquired = append(acquired, targets[i])
		}
	}
	return acquired
}

func badReturn(pend []*pending, targets []target) []target {
	var acquired []target
	for i, p := range pend {
		if !p.Swapped {
			return nil // want "return inside a lock-CAS result scan"
		}
		acquired = append(acquired, targets[i])
	}
	return acquired
}

func badLabeledBreak(pend []*pending, targets []target) []target {
	var acquired []target
groups:
	for round := 0; round < 2; round++ {
		for i, p := range pend {
			switch {
			case p.Err != nil:
				break groups // want "early exit from a lock-CAS result scan"
			case p.Swapped:
				acquired = append(acquired, targets[i])
			}
		}
	}
	return acquired
}

func badNoRecord(pend []*pending) int {
	n := 0
	for _, p := range pend { // want "never records won locks"
		if p.Swapped {
			n++
		}
	}
	return n
}

func allowedBreak(pend []*pending, targets []target) []target {
	var acquired []target
	for i, p := range pend {
		if p.Err != nil {
			//drtmr:allow lockpair single-verb batch: nothing later in the batch to leak
			break
		}
		if p.Swapped {
			acquired = append(acquired, targets[i])
		}
	}
	return acquired
}

func missingReason(pend []*pending, targets []target) []target {
	var acquired []target
	for i, p := range pend {
		if p.Err != nil {
			break //drtmr:allow lockpair // want "early exit from a lock-CAS result scan" "missing the required reason"
		}
		if p.Swapped {
			acquired = append(acquired, targets[i])
		}
	}
	return acquired
}

// A labeled continue out to a group driver abandons the rest of the scan
// exactly like a break — the farm F.1 / fallback per-node-group shape, where
// the scan runs inside a `groups:` loop over node batches.
func badLabeledContinue(groups [][]*pending, targets []target) []target {
	var acquired []target
groups:
	for _, pend := range groups {
		for i, p := range pend {
			if p.Err != nil {
				continue groups // want "early exit from a lock-CAS result scan"
			}
			if p.Swapped {
				acquired = append(acquired, targets[i])
			}
		}
	}
	return acquired
}

// The fallback.go discipline: failures set a flag, the scan completes, and
// the group loop is exited only AFTER the scan — unlabeled continue inside
// the scan and `break groups` outside it are both fine.
func goodFallbackShape(groups [][]*pending, targets []target) []target {
	var acquired []target
	lockFail := false
groups:
	for _, pend := range groups {
		var next []target
		for i, p := range pend {
			if p.Err != nil {
				lockFail = true
				continue // unlabeled: next result, still inside the scan
			}
			if p.Swapped {
				acquired = append(acquired, targets[i])
			} else {
				next = append(next, targets[i])
			}
		}
		if lockFail {
			break groups // after the scan completed: no leak
		}
		_ = next
	}
	return acquired
}

// Continue naming the scan loop's own label is a normal next-iteration.
func goodOwnLabelContinue(pend []*pending, targets []target) []target {
	var acquired []target
scan:
	for i, p := range pend {
		if p.Err != nil {
			continue scan
		}
		if p.Swapped {
			acquired = append(acquired, targets[i])
		}
	}
	return acquired
}
