// Fixture for the enumswitch analyzer: switches over protocol enums must be
// exhaustive or carry an explicit default-with-reason. Covers the
// named-type mode (a defined integer type with package-scope constants),
// the prefix-family mode (same-typed constants sharing a name prefix),
// counting-sentinel exclusion, value-based coverage (aliases count), the
// bare-empty-default diagnostic, and the //drtmr:allow contract.
package enumswitch

// Named-type mode: Mode's members are ModeOff/ModeOn/ModeAuto; numModes is
// a counting sentinel and not a member.
type Mode uint8

const (
	ModeOff Mode = iota
	ModeOn
	ModeAuto
	numModes
)

var _ = numModes // silence unused-sentinel vet in fixtures

func good(m Mode) int {
	switch m {
	case ModeOff:
		return 0
	case ModeOn:
		return 1
	case ModeAuto:
		return 2
	}
	return -1
}

// A default with a body (or a comment) documents the intent and passes.
func goodDefault(m Mode) int {
	switch m {
	case ModeOff:
		return 0
	default:
		return 1
	}
}

func goodDefaultComment(m Mode) int {
	switch m {
	case ModeOff:
		return 0
	default: // future modes measured as zero on purpose
	}
	return -1
}

// An indented comment inside the empty default documents it just as well.
func goodDefaultIndentedComment(m Mode) int {
	switch m {
	case ModeOff:
		return 0
	default:
		// future modes measured as zero on purpose
	}
	return -1
}

func badMissing(m Mode) int {
	switch m { // want "switch over Mode is not exhaustive: missing ModeAuto, ModeOn"
	case ModeOff:
		return 0
	}
	return -1
}

func badEmptyDefault(m Mode) int {
	switch m { // want "switch over Mode has a bare empty default hiding missing ModeAuto; handle them or document the default"
	case ModeOff, ModeOn:
		return 0
	default:
	}
	return -1
}

// Coverage is by constant value: an alias of a member covers it.
const modeAlias = ModeAuto

func goodAlias(m Mode) int {
	switch m {
	case ModeOff, ModeOn, modeAlias:
		return 1
	}
	return -1
}

// Prefix-family mode: plain uint8 constants sharing the Stage prefix form
// an enum even without a defined type.
const (
	StageExec uint8 = iota
	StageLock
	StageValidate
	StageCommit
)

func badFamily(s uint8) string {
	switch s { // want "switch over Stage\* family is not exhaustive: missing StageCommit, StageValidate"
	case StageExec:
		return "exec"
	case StageLock:
		return "lock"
	}
	return "?"
}

func goodFamily(s uint8) string {
	switch s {
	case StageExec, StageLock, StageValidate, StageCommit:
		return "known"
	}
	return "?"
}

// Non-constant cases make the switch uncheckable: skipped, no finding.
func skipNonConst(m, x Mode) int {
	switch m {
	case x:
		return 1
	}
	return 0
}

// Suppression contract.
func allowed(m Mode) int {
	switch m { //drtmr:allow enumswitch measurement-only probe, other modes deliberately fall through
	case ModeOff:
		return 0
	}
	return -1
}

func reasonless(m Mode) int {
	switch m { //drtmr:allow enumswitch // want "not exhaustive" "missing the required reason"
	case ModeOn:
		return 1
	}
	return -1
}
