package lint

import (
	"sort"
	"strings"

	"drtmr/internal/lint/analysis"
)

// LockOrder is the interprocedural lock-discipline analyzer. It consumes the
// summary facts (analysis.Summarize) and reports three classes of finding:
//
//   - lock-order cycles: the static acquisition graph (sync.Mutex/RWMutex
//     classes plus '@'-prefixed pseudo-locks from //drtmr:locks — CAS lock
//     words, contention gates) contains a cycle, i.e. a potential deadlock;
//   - lock held across a coroutine yield: a mutex is held at a call site
//     whose callee may yield (channel op, select, runtime.Gosched,
//     transitively) — in the strict-handoff scheduler that parks the worker
//     while every other coroutine on it can block on the same mutex;
//   - lock held across wire I/O (internal/serve only): a mutex is held
//     while a callee may touch the network, stretching the critical section
//     across an unbounded syscall.
//
// Pseudo-locks ('@' classes) participate in cycle detection only: protocol
// lock words are legitimately held across yields (the fallback path waits on
// remote CASes while holding them), so the yield/wire rules consider real
// mutexes alone.
var LockOrder = &analysis.Analyzer{
	Name:          "lockorder",
	Doc:           "detect lock-order cycles and locks held across coroutine yields or wire I/O",
	Run:           runLockOrder,
	PackageFilter: isSummaryPackage,
}

func runLockOrder(pass *analysis.Pass) error {
	pf := pass.Facts
	if pf == nil {
		return nil
	}

	wirePkg := pass.Fixture || (pass.Pkg != nil && strings.HasPrefix(pass.Pkg.Path(), "drtmr/internal/serve"))

	// Stable iteration order for deterministic output.
	keys := make([]string, 0, len(pf.Local))
	for k := range pf.Local {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	for _, k := range keys {
		ff := pf.Local[k]
		for _, cs := range ff.Calls {
			held := realLocks(cs.Held)
			if len(held) == 0 {
				continue
			}
			heldStr := strings.Join(shortAll(held), ", ")
			if cs.Op != "" {
				pass.Reportf(cs.Pos, "%s held across %s", heldStr, cs.Op)
				continue
			}
			if cs.Callee == "" {
				continue
			}
			cal := pf.Lookup(cs.Callee)
			if cal == nil {
				continue
			}
			if cal.Flags&analysis.FlagYield != 0 {
				pass.Reportf(cs.Pos, "%s held across call to %s, which may yield%s",
					heldStr, analysis.ShortName(cs.Callee), viaClause(cs.Callee, cal.YieldVia))
				continue
			}
			if wirePkg && cal.Flags&analysis.FlagWireIO != 0 {
				pass.Reportf(cs.Pos, "%s held across call to %s, which may perform wire I/O%s",
					heldStr, analysis.ShortName(cs.Callee), viaClause(cs.Callee, cal.WireVia))
			}
		}
	}

	reportCycles(pass, pf)
	return nil
}

// viaClause renders a witness chain, dropping it when it only repeats the
// callee (a leaf finding) and trimming a leading callee segment.
func viaClause(calleeKey, via string) string {
	short := analysis.ShortName(calleeKey)
	if via == "" || via == short {
		return ""
	}
	via = strings.TrimPrefix(via, short+" → ")
	return " (via " + via + ")"
}

// realLocks filters out '@'-prefixed pseudo-lock classes.
func realLocks(held []string) []string {
	var out []string
	for _, h := range held {
		if !strings.HasPrefix(h, "@") {
			out = append(out, h)
		}
	}
	return out
}

func shortAll(classes []string) []string {
	out := make([]string, len(classes))
	for i, c := range classes {
		out[i] = analysis.ShortName(c)
	}
	return out
}

// reportCycles finds strongly connected components of the full acquisition
// graph (local + imported edges) and reports each LOCAL edge that lies on a
// cycle, with one reconstructed cycle path as the witness. Each package
// reports only its own contribution, so a cross-package cycle produces one
// finding per participating package rather than duplicates.
func reportCycles(pass *analysis.Pass, pf *analysis.PkgFacts) {
	adj := make(map[string][]string)
	nodes := make(map[string]bool)
	for _, e := range pf.AllEdges {
		adj[e.From] = append(adj[e.From], e.To)
		nodes[e.From], nodes[e.To] = true, true
	}
	comp := sccComponents(nodes, adj)

	for _, e := range pf.LocalEdges {
		cf, okF := comp[e.From]
		ct, okT := comp[e.To]
		if !okF || !okT || cf != ct {
			continue
		}
		// Same SCC: the edge closes a cycle. Witness: shortest path To → From.
		path := shortestPath(adj, comp, cf, e.To, e.From)
		cycle := append([]string{e.From}, path...)
		pass.Reportf(e.Pos, "lock order cycle: acquiring %s while %s held closes cycle [%s]",
			analysis.ShortName(e.To), analysis.ShortName(e.From), strings.Join(shortAll(cycle), " → "))
	}
}

// sccComponents assigns each node a strongly-connected-component id; only
// components of size >= 2 get ids (self-edges are excluded at fact-building
// time, so singleton nodes cannot be cyclic).
func sccComponents(nodes map[string]bool, adj map[string][]string) map[string]int {
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	comp := make(map[string]int)
	next, nComp := 0, 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var members []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				members = append(members, w)
				if w == v {
					break
				}
			}
			if len(members) >= 2 {
				for _, m := range members {
					comp[m] = nComp
				}
				nComp++
			}
		}
	}
	var order []string
	for n := range nodes {
		order = append(order, n)
	}
	sort.Strings(order)
	for _, n := range order {
		if _, seen := index[n]; !seen {
			strongconnect(n)
		}
	}
	return comp
}

// shortestPath BFSes from src to dst inside one SCC and returns the node
// sequence src..dst (inclusive).
func shortestPath(adj map[string][]string, comp map[string]int, c int, src, dst string) []string {
	if src == dst {
		return []string{src}
	}
	prev := map[string]string{src: src}
	queue := []string{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range adj[v] {
			if cw, ok := comp[w]; !ok || cw != c {
				continue
			}
			if _, seen := prev[w]; seen {
				continue
			}
			prev[w] = v
			if w == dst {
				var path []string
				for n := dst; ; n = prev[n] {
					path = append([]string{n}, path...)
					if n == src {
						return path
					}
				}
			}
			queue = append(queue, w)
		}
	}
	return []string{src, dst} // disconnected within SCC: cannot happen, keep a sane fallback
}
