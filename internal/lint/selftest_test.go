package lint_test

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"drtmr/internal/lint"
	"drtmr/internal/lint/analysis"
)

// runAnalyzer type-checks one in-memory source file and runs a single
// analyzer over it with package filters bypassed.
func runAnalyzer(t *testing.T, a *analysis.Analyzer, src string) []analysis.Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "seed.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing seeded source: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "source", nil),
		Error:    func(error) {},
	}
	pkg, _ := conf.Check("seed", fset, []*ast.File{f}, info)
	diags, err := analysis.Run(fset, []*ast.File{f}, pkg, info,
		[]*analysis.Analyzer{a}, analysis.Options{IgnoreFilters: true})
	if err != nil {
		t.Fatalf("analysis failed: %v", err)
	}
	return diags
}

// expectTeeth runs the analyzer over a clean shape and a seeded mutation of
// it, requiring the clean variant to come back silent and the mutation to
// produce a finding matching wantSubstr — the self-test that each analyzer
// would catch a regression of the real repo shape it mirrors.
func expectTeeth(t *testing.T, a *analysis.Analyzer, clean, mutated, wantSubstr string) {
	t.Helper()
	if diags := runAnalyzer(t, a, clean); len(diags) != 0 {
		t.Errorf("%s: clean shape produced findings: %v", a.Name, diags)
	}
	diags := runAnalyzer(t, a, mutated)
	if len(diags) == 0 {
		t.Fatalf("%s: seeded mutation produced no finding (analyzer has no teeth)", a.Name)
	}
	for _, d := range diags {
		if strings.Contains(d.Message, wantSubstr) {
			return
		}
	}
	t.Errorf("%s: no finding matches %q, got %v", a.Name, wantSubstr, diags)
}

// TestLockOrderTeeth mirrors internal/serve's per-connection write path:
// conn.wmu intentionally serializes whole frames across the socket write
// and carries a reasoned allow. Strip the allow and the wire-I/O rule must
// fire — the regression the audited directive is protecting.
func TestLockOrderTeeth(t *testing.T) {
	const body = `package seed

import (
	"io"
	"sync"
)

type conn struct {
	w   io.Writer
	wmu sync.Mutex
}

func (c *conn) writeResult(buf []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	%s_, err := c.w.Write(buf)
	return err
}
`
	clean := strings.Replace(body,
		"%s", "//drtmr:allow lockorder wmu serializes whole frames onto the socket by design\n\t", 1)
	mutated := strings.Replace(body, "%s", "", 1)
	expectTeeth(t, lint.LockOrder, clean, mutated, "may perform wire I/O")
}

// TestLockOrderYieldTeeth mirrors the coroutine scheduler's discipline: a
// worker must release its locks before parking. Holding one across the
// park channel send — the shape txn.(*Worker).yield would take if a lock
// leaked into it — must fire the yield rule.
func TestLockOrderYieldTeeth(t *testing.T) {
	const clean = `package seed

import "sync"

type worker struct {
	mu   sync.Mutex
	park chan struct{}
}

func (w *worker) yield() {
	w.mu.Lock()
	w.mu.Unlock()
	w.park <- struct{}{}
}
`
	const mutated = `package seed

import "sync"

type worker struct {
	mu   sync.Mutex
	park chan struct{}
}

func (w *worker) yield() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.park <- struct{}{}
}
`
	expectTeeth(t, lint.LockOrder, clean, mutated, "held across channel send")
}

// TestHotAllocTeeth mirrors obs.(*Recorder).Record, the canonical hotpath:
// an indexed store into a preallocated ring. Mutating the store into an
// append — the exact regression that would put an allocation on every
// recorded event — must fire hotalloc.
func TestHotAllocTeeth(t *testing.T) {
	const clean = `package seed

type ring struct {
	ev []uint64
	n  uint64
}

//drtmr:hotpath
func (r *ring) record(v uint64) {
	r.ev[r.n%uint64(len(r.ev))] = v
	r.n++
}
`
	const mutated = `package seed

type ring struct {
	ev []uint64
	n  uint64
}

//drtmr:hotpath
func (r *ring) record(v uint64) {
	r.ev = append(r.ev, v)
	r.n++
}
`
	expectTeeth(t, lint.HotAlloc, clean, mutated, "append")
}

// TestEnumSwitchTeeth mirrors the txn write-set kind dispatch
// (applyInsertsDeletes / writeBackRemote): every wsKind must be handled or
// the skip documented. Dropping the documented arm must fire enumswitch.
func TestEnumSwitchTeeth(t *testing.T) {
	const clean = `package seed

type wsKind uint8

const (
	wsUpdate wsKind = iota
	wsInsert
	wsDelete
	wsDelta
)

func apply(k wsKind) int {
	switch k {
	case wsInsert:
		return 1
	case wsDelete:
		return 2
	case wsUpdate, wsDelta:
		// installed by write-back, not a structural mutation
	}
	return 0
}
`
	const mutated = `package seed

type wsKind uint8

const (
	wsUpdate wsKind = iota
	wsInsert
	wsDelete
	wsDelta
)

func apply(k wsKind) int {
	switch k {
	case wsInsert:
		return 1
	case wsDelete:
		return 2
	}
	return 0
}
`
	expectTeeth(t, lint.EnumSwitch, clean, mutated, "missing wsDelta, wsUpdate")
}
