package htm

import (
	"encoding/binary"
	"runtime"
	"sync"
	"sync/atomic"

	"drtmr/internal/obs"
	"drtmr/internal/sim"
)

// Transaction status values, packed into one atomic word together with the
// abort cause and XABORT code so that the (state, cause, code) triple is
// always read and written atomically: bits 0-7 state, 8-15 cause, 16-23 code.
const (
	statusActive uint32 = iota
	statusAborted
	statusCommitted
)

func packAborted(cause AbortCause, code uint8) uint32 {
	return statusAborted | uint32(cause)<<8 | uint32(code)<<16
}

func unpack(w uint32) (state uint32, cause AbortCause, code uint8) {
	return w & 0xff, AbortCause(w >> 8 & 0xff), uint8(w >> 16 & 0xff)
}

// Txn is one hardware transaction (the code between XBEGIN and XEND).
//
// A Txn is owned by a single goroutine; only the abort path may touch it
// from outside, and that path synchronizes through the status word and the
// operation mutex.
type Txn struct {
	eng    *Engine
	status atomic.Uint32 // packed (state, cause, code)

	// opMu serializes this transaction's own operations against external
	// abort cleanup. Cleanup (undo restore + deregistration) runs exactly
	// once, always under opMu: either by an external aborter that wins a
	// TryLock, or by the owner the moment an operation observes the
	// aborted status. An aborter never *blocks* on opMu — that would
	// deadlock two transactions aborting each other — it instead lets
	// the in-flight operation finish and clean up itself, and waits for
	// deregistration in its own retry loop.
	opMu    sync.Mutex
	cleaned bool // guarded by opMu

	readLines  map[uint64]struct{}
	writeUndo  map[uint64][]byte // line -> original 64B content
	writeOrder []uint64          // lines in first-write order (for tests/debug)

	// Tracing (nil rec = off). The end event is emitted only by OWNER-side
	// paths (Commit, selfAbort, checkActive) — never by extAbort, whose
	// cleanup may run on a foreign goroutine that must not touch the owner's
	// single-writer recorder. tended dedupes across those paths; tbegin is
	// the virtual XBEGIN timestamp.
	rec    *obs.Recorder
	tclk   *sim.Clock
	tid    uint64
	tbegin int64
	tended bool
}

// Trace arms trace recording for this hardware transaction: XBEGIN is
// stamped now from clk, and XEND/XABORT will emit one obs.EvHTM event onto
// rec carrying txn id (the protocol-level transaction this region serves),
// abort cause (0 = committed) and XABORT code.
func (t *Txn) Trace(rec *obs.Recorder, clk *sim.Clock, id uint64) {
	t.rec, t.tclk, t.tid = rec, clk, id
	t.tbegin = clk.Now()
}

// traceEnd emits the region's end event once. Callers are owner-side only
// (they hold opMu or own the Txn exclusively).
func (t *Txn) traceEnd(cause AbortCause, code uint8) {
	if t.rec == nil || t.tended {
		return
	}
	t.tended = true
	t.rec.Record(obs.EvHTM, uint8(cause), 0, uint32(code), t.tid, t.tbegin, t.tclk.Now())
}

// Begin starts a hardware transaction.
func (e *Engine) Begin() *Txn {
	e.stats.Begins.Add(1)
	return &Txn{
		eng:       e,
		readLines: make(map[uint64]struct{}, 8),
		writeUndo: make(map[uint64][]byte, 4),
	}
}

// Active reports whether the transaction can still perform operations.
func (t *Txn) Active() bool { return t.status.Load()&0xff == statusActive }

// abortErr builds the error for the recorded cause.
func (t *Txn) abortErr() *AbortError {
	_, cause, code := unpack(t.status.Load())
	return &AbortError{Cause: cause, Code: code}
}

// checkActive returns nil if the transaction may proceed. If it was aborted
// externally, the owner runs cleanup here (it holds opMu) so the aborter's
// retry loop can make progress. Caller holds opMu.
func (t *Txn) checkActive() *AbortError {
	w := t.status.Load()
	if w&0xff == statusActive {
		return nil
	}
	if w&0xff == statusAborted {
		t.cleanupLocked()
		_, cause, code := unpack(w)
		t.traceEnd(cause, code)
	}
	return t.abortErr()
}

// selfAbort is called by the owning goroutine (which holds opMu) to abort
// and clean up.
func (t *Txn) selfAbort(cause AbortCause, code uint8) *AbortError {
	if t.status.CompareAndSwap(statusActive, packAborted(cause, code)) {
		t.eng.stats.countAbort(cause)
	}
	t.cleanupLocked()
	_, cause, code = unpack(t.status.Load())
	t.traceEnd(cause, code)
	return t.abortErr()
}

// extAbort aborts the transaction from outside (conflicting access). The
// caller must hold NO shard locks and must not block on the victim: if the
// victim is mid-operation it will clean itself up on exit. The caller's
// retry loop observes completion as deregistration from the line registry.
func (t *Txn) extAbort(cause AbortCause) {
	if !t.status.CompareAndSwap(statusActive, packAborted(cause, 0)) {
		return
	}
	t.eng.stats.countAbort(cause)
	if t.opMu.TryLock() {
		t.cleanupLocked()
		t.opMu.Unlock()
	}
}

// cleanupLocked restores undo data and deregisters every line. Caller holds
// opMu. Idempotent.
func (t *Txn) cleanupLocked() {
	if t.cleaned {
		return
	}
	t.cleaned = true
	for lineIdx, undo := range t.writeUndo {
		s := t.eng.shardFor(lineIdx)
		s.mu.Lock()
		off := lineIdx << sim.CachelineShift
		copy(t.eng.mem[off:off+sim.CachelineSize], undo)
		if ln := s.lines[lineIdx]; ln != nil && ln.writer == t {
			ln.writer = nil
			s.maybeDrop(lineIdx, ln)
		}
		s.mu.Unlock()
	}
	for lineIdx := range t.readLines {
		if _, alsoWrote := t.writeUndo[lineIdx]; alsoWrote {
			continue // write deregistration handled above
		}
		s := t.eng.shardFor(lineIdx)
		s.mu.Lock()
		if ln := s.lines[lineIdx]; ln != nil {
			ln.dropReader(t)
			s.maybeDrop(lineIdx, ln)
		}
		s.mu.Unlock()
	}
	t.writeUndo = nil
	t.readLines = nil
}

// deregisterCommitted removes registrations leaving written data in place.
// Caller holds opMu.
func (t *Txn) deregisterCommitted() {
	t.cleaned = true
	for lineIdx := range t.writeUndo {
		s := t.eng.shardFor(lineIdx)
		s.mu.Lock()
		if ln := s.lines[lineIdx]; ln != nil && ln.writer == t {
			ln.writer = nil
			s.maybeDrop(lineIdx, ln)
		}
		s.mu.Unlock()
	}
	for lineIdx := range t.readLines {
		if _, alsoWrote := t.writeUndo[lineIdx]; alsoWrote {
			continue
		}
		s := t.eng.shardFor(lineIdx)
		s.mu.Lock()
		if ln := s.lines[lineIdx]; ln != nil {
			ln.dropReader(t)
			s.maybeDrop(lineIdx, ln)
		}
		s.mu.Unlock()
	}
	t.writeUndo = nil
	t.readLines = nil
}

func (ln *line) dropReader(t *Txn) {
	for i, r := range ln.readers {
		if r == t {
			last := len(ln.readers) - 1
			ln.readers[i] = ln.readers[last]
			ln.readers = ln.readers[:last]
			return
		}
	}
}

func (s *shard) maybeDrop(lineIdx uint64, ln *line) {
	if ln.writer == nil && len(ln.readers) == 0 {
		delete(s.lines, lineIdx)
	}
}

// acquireLine registers this transaction on lineIdx, aborting conflicting
// transactions (requester wins). asWriter also saves undo data. Returns an
// AbortError if this transaction itself was aborted or hit a capacity limit.
//
// Caller holds opMu.
func (t *Txn) acquireLine(lineIdx uint64, asWriter bool) *AbortError {
	for {
		if err := t.checkActive(); err != nil {
			return err
		}
		s := t.eng.shardFor(lineIdx)
		s.mu.Lock()
		ln := s.lines[lineIdx]
		if ln == nil {
			ln = &line{}
			s.lines[lineIdx] = ln
		}
		// Collect victims. We must not abort them while holding the
		// shard lock (their cleanup needs shard locks), so gather and
		// release first. A victim that is already aborted but still
		// registered is mid-cleanup: wait for it to disappear.
		var victims []*Txn
		pending := false
		if ln.writer != nil && ln.writer != t {
			if ln.writer.Active() {
				victims = append(victims, ln.writer)
			} else {
				pending = true
			}
		}
		if asWriter {
			for _, r := range ln.readers {
				if r == t {
					continue
				}
				if r.Active() {
					victims = append(victims, r)
				} else {
					pending = true
				}
			}
		}
		if len(victims) > 0 || pending {
			s.mu.Unlock()
			for _, v := range victims {
				v.extAbort(CauseConflict)
			}
			if pending && len(victims) == 0 {
				runtime.Gosched() // let the victim finish cleanup
			}
			continue // registry changed; retry
		}
		// No conflicts: register.
		if asWriter {
			if _, ok := t.writeUndo[lineIdx]; !ok {
				if len(t.writeUndo) >= t.eng.cfg.MaxWriteLines {
					s.mu.Unlock()
					return t.selfAbort(CauseCapacity, 0)
				}
				off := lineIdx << sim.CachelineShift
				undo := make([]byte, sim.CachelineSize)
				copy(undo, t.eng.mem[off:off+sim.CachelineSize])
				t.writeUndo[lineIdx] = undo
				t.writeOrder = append(t.writeOrder, lineIdx)
				ln.writer = t
				// A writer subsumes its own read registration.
				ln.dropReader(t)
			}
		} else {
			if _, wrote := t.writeUndo[lineIdx]; !wrote {
				if _, ok := t.readLines[lineIdx]; !ok {
					if len(t.readLines) >= t.eng.cfg.MaxReadLines {
						s.mu.Unlock()
						return t.selfAbort(CauseCapacity, 0)
					}
					t.readLines[lineIdx] = struct{}{}
					ln.readers = append(ln.readers, t)
				}
			}
		}
		s.mu.Unlock()
		return nil
	}
}

// Read copies n bytes at offset off into buf and returns buf[:n]. If buf is
// nil or too small a new slice is allocated.
func (t *Txn) Read(off uint64, n int, buf []byte) ([]byte, error) {
	t.opMu.Lock()
	defer t.opMu.Unlock()
	if err := t.checkActive(); err != nil {
		return nil, err
	}
	if t.eng.spurious() {
		return nil, t.selfAbort(CauseSpurious, 0)
	}
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if n == 0 {
		return buf, nil
	}
	first := sim.LineOf(uintptr(off))
	last := sim.LineOf(uintptr(off) + uintptr(n) - 1)
	for li := first; li <= last; li++ {
		//drtmr:allow lockorder opMu is this txn's own op mutex; aborters only TryLock it (never block), so the requester-wins spin inside acquireLine cannot deadlock and MUST run under opMu for cleanup atomicity
		if err := t.acquireLine(li, false); err != nil {
			return nil, err
		}
	}
	// All lines registered; requester-wins means nobody changes them
	// without first aborting us, and cleanup (undo restore) can only run
	// under opMu, which we hold — so this copy is a consistent snapshot
	// provided we are still active afterwards.
	copy(buf, t.eng.mem[off:off+uint64(n)])
	if err := t.checkActive(); err != nil {
		return nil, err
	}
	return buf, nil
}

// Load64 reads a little-endian uint64 at off.
func (t *Txn) Load64(off uint64) (uint64, error) {
	var tmp [8]byte
	b, err := t.Read(off, 8, tmp[:])
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

// Write stores data at offset off.
func (t *Txn) Write(off uint64, data []byte) error {
	t.opMu.Lock()
	defer t.opMu.Unlock()
	if err := t.checkActive(); err != nil {
		return err
	}
	if t.eng.spurious() {
		return t.selfAbort(CauseSpurious, 0)
	}
	n := len(data)
	if n == 0 {
		return nil
	}
	first := sim.LineOf(uintptr(off))
	last := sim.LineOf(uintptr(off) + uintptr(n) - 1)
	for li := first; li <= last; li++ {
		//drtmr:allow lockorder opMu is this txn's own op mutex; aborters only TryLock it (never block), so the requester-wins spin inside acquireLine cannot deadlock and MUST run under opMu for cleanup atomicity
		if err := t.acquireLine(li, true); err != nil {
			return err
		}
	}
	copy(t.eng.mem[off:off+uint64(n)], data)
	if err := t.checkActive(); err != nil {
		return err
	}
	return nil
}

// Store64 writes a little-endian uint64 at off.
func (t *Txn) Store64(off uint64, v uint64) error {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], v)
	return t.Write(off, tmp[:])
}

// Add64 reads, adds delta, and writes back a uint64 at off.
func (t *Txn) Add64(off uint64, delta uint64) (uint64, error) {
	v, err := t.Load64(off)
	if err != nil {
		return 0, err
	}
	v += delta
	if err := t.Store64(off, v); err != nil {
		return 0, err
	}
	return v, nil
}

// Abort executes XABORT with the given 8-bit code.
func (t *Txn) Abort(code uint8) error {
	t.opMu.Lock()
	defer t.opMu.Unlock()
	if err := t.checkActive(); err != nil {
		return err
	}
	return t.selfAbort(CauseExplicit, code)
}

// Commit executes XEND. On success all writes become visible atomically (in
// this simulation they are already in place; commit makes them permanent and
// releases conflict tracking). Returns an AbortError if the transaction was
// aborted.
func (t *Txn) Commit() error {
	t.opMu.Lock()
	defer t.opMu.Unlock()
	if t.Active() && t.eng.spurious() {
		return t.selfAbort(CauseSpurious, 0)
	}
	if !t.status.CompareAndSwap(statusActive, statusCommitted) {
		w := t.status.Load()
		if w&0xff == statusAborted {
			t.cleanupLocked()
			_, cause, code := unpack(w)
			t.traceEnd(cause, code)
		}
		return t.abortErr()
	}
	t.eng.stats.Commits.Add(1)
	t.deregisterCommitted()
	t.traceEnd(0, 0)
	return nil
}

// ReadSetSize returns the number of distinct read-only lines tracked.
func (t *Txn) ReadSetSize() int { return len(t.readLines) }

// WriteSetSize returns the number of distinct written lines tracked.
func (t *Txn) WriteSetSize() int { return len(t.writeUndo) }
