// Package htm simulates Intel Restricted Transactional Memory (RTM) with the
// semantics the DrTM+R protocol depends on:
//
//   - Conflict detection at cacheline granularity, requester-wins (an access
//     that conflicts with a running hardware transaction aborts that
//     transaction, mirroring how a coherence invalidation kills an RTM
//     transaction's speculative state).
//   - Strong atomicity: NON-transactional accesses — including incoming
//     one-sided RDMA operations, which are cache coherent on the paper's
//     hardware — unconditionally abort conflicting transactions.
//   - Best effort only: transactions can abort for capacity (the write set is
//     bounded by the 32KB L1, the read set by a larger tracking structure)
//     or spuriously, so callers always need a fallback path.
//   - Explicit aborts (XABORT) carrying an 8-bit code, used by DrTM+R's
//     "record is remotely locked" manual abort in local reads (§4.3).
//
// Implementation: a software transactional memory over a byte arena with
// eager (in-place) writes plus per-line undo, visible readers, and a per-line
// registry sharded by cacheline index. A transaction holds its operation
// mutex for the duration of each operation; an external aborter first flips
// the status word, then acquires that mutex to run cleanup, so cleanup never
// races an in-flight operation. No code path ever holds two shard locks at
// once, which keeps the engine deadlock-free by construction.
package htm

import (
	"fmt"
	"sync"
	"sync/atomic"

	"drtmr/internal/sim"
)

// AbortCause classifies why a transaction aborted, mirroring the RTM abort
// status word.
type AbortCause uint8

const (
	// CauseConflict: another transaction or a non-transactional (e.g.
	// RDMA) access touched a line in our read/write set.
	CauseConflict AbortCause = iota + 1
	// CauseCapacity: read or write set exceeded the hardware bound.
	CauseCapacity
	// CauseExplicit: the transaction executed XABORT with a code.
	CauseExplicit
	// CauseSpurious: best-effort hardware gave up for no visible reason
	// (interrupt, TLB shootdown...). Injected with a configurable
	// probability to keep fallback paths honest.
	CauseSpurious
)

func (c AbortCause) String() string {
	switch c {
	case CauseConflict:
		return "conflict"
	case CauseCapacity:
		return "capacity"
	case CauseExplicit:
		return "explicit"
	case CauseSpurious:
		return "spurious"
	default:
		return fmt.Sprintf("AbortCause(%d)", uint8(c))
	}
}

// AbortError is returned by transaction operations and Commit when the
// transaction has aborted.
type AbortError struct {
	Cause AbortCause
	// Code is the XABORT code for CauseExplicit aborts.
	Code uint8
}

func (e *AbortError) Error() string {
	if e.Cause == CauseExplicit {
		return fmt.Sprintf("htm: aborted (explicit, code=%#x)", e.Code)
	}
	return "htm: aborted (" + e.Cause.String() + ")"
}

// Config bounds the simulated hardware.
type Config struct {
	// MaxWriteLines is the write-set capacity in cachelines. Intel RTM
	// tracks writes in the 32KB L1: 512 lines.
	MaxWriteLines int
	// MaxReadLines is the read-set capacity in cachelines (tracked in L2
	// plus an implementation-specific filter; much larger than writes).
	MaxReadLines int
	// SpuriousAbortProb injects best-effort aborts per operation.
	SpuriousAbortProb float64
	// Seed seeds the spurious-abort generator.
	Seed uint64
}

// DefaultConfig matches a Xeon E5-2650 v3 class core.
func DefaultConfig() Config {
	return Config{
		MaxWriteLines:     512,
		MaxReadLines:      8192,
		SpuriousAbortProb: 0,
	}
}

const numShards = 1024 // power of two

// Engine is the per-machine HTM simulator over one memory arena.
type Engine struct {
	mem    []byte
	cfg    Config
	shards [numShards]shard
	stats  Stats

	rngMu sync.Mutex
	rng   *sim.Rand
}

type shard struct {
	mu    sync.Mutex
	lines map[uint64]*line
}

// line is the conflict registry for one cacheline. Protected by its shard's
// mutex.
type line struct {
	writer  *Txn
	readers []*Txn
}

// NewEngine creates an engine over mem. The arena must be cacheline-aligned
// in length (callers use sim.AlignUp).
func NewEngine(mem []byte, cfg Config) *Engine {
	if cfg.MaxWriteLines <= 0 {
		cfg.MaxWriteLines = DefaultConfig().MaxWriteLines
	}
	if cfg.MaxReadLines <= 0 {
		cfg.MaxReadLines = DefaultConfig().MaxReadLines
	}
	e := &Engine{mem: mem, cfg: cfg, rng: sim.NewRand(cfg.Seed)}
	for i := range e.shards {
		e.shards[i].lines = make(map[uint64]*line)
	}
	return e
}

// Mem exposes the underlying arena. Direct access bypasses conflict
// detection and must only be used for initialization before the engine is
// shared, or by the recovery path on a stopped machine.
func (e *Engine) Mem() []byte { return e.mem }

// Size returns the arena length in bytes.
func (e *Engine) Size() int { return len(e.mem) }

func (e *Engine) shardFor(lineIdx uint64) *shard {
	return &e.shards[lineIdx&(numShards-1)]
}

func (e *Engine) spurious() bool {
	if e.cfg.SpuriousAbortProb <= 0 {
		return false
	}
	e.rngMu.Lock()
	v := e.rng.Float64() < e.cfg.SpuriousAbortProb
	e.rngMu.Unlock()
	return v
}

// Stats is a snapshot of engine counters.
type Stats struct {
	Begins    atomic.Uint64
	Commits   atomic.Uint64
	Conflicts atomic.Uint64
	Capacity  atomic.Uint64
	Explicit  atomic.Uint64
	Spurious  atomic.Uint64
}

// StatsSnapshot is a plain-value copy of Stats.
type StatsSnapshot struct {
	Begins, Commits, Conflicts, Capacity, Explicit, Spurious uint64
}

// Snapshot copies the counters.
func (e *Engine) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		Begins:    e.stats.Begins.Load(),
		Commits:   e.stats.Commits.Load(),
		Conflicts: e.stats.Conflicts.Load(),
		Capacity:  e.stats.Capacity.Load(),
		Explicit:  e.stats.Explicit.Load(),
		Spurious:  e.stats.Spurious.Load(),
	}
}

// AbortRate returns aborts / begins, the metric the paper reports (<1% for
// DrTM+R's small HTM regions).
func (s StatsSnapshot) AbortRate() float64 {
	if s.Begins == 0 {
		return 0
	}
	aborts := s.Conflicts + s.Capacity + s.Explicit + s.Spurious
	return float64(aborts) / float64(s.Begins)
}

func (s *Stats) countAbort(c AbortCause) {
	switch c {
	case CauseConflict:
		s.Conflicts.Add(1)
	case CauseCapacity:
		s.Capacity.Add(1)
	case CauseExplicit:
		s.Explicit.Add(1)
	case CauseSpurious:
		s.Spurious.Add(1)
	}
}
