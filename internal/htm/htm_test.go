package htm

import (
	"encoding/binary"
	"errors"
	"runtime"
	"sync"
	"testing"
	"testing/quick"

	"drtmr/internal/sim"
)

func newTestEngine(size int, cfg Config) *Engine {
	return NewEngine(make([]byte, sim.AlignUp(size)), cfg)
}

// backoff yields with light randomized jitter; requester-wins conflict
// resolution needs it to avoid livelock in retry loops (real RTM users do
// exactly this, §4.3's "retry with a randomized interval").
func backoff(rng *sim.Rand, attempt int) {
	n := 1 + rng.Intn(1<<uint(min(attempt, 6)))
	for i := 0; i < n; i++ {
		runtime.Gosched()
	}
}


func mustCommitAdd(t *testing.T, e *Engine, rng *sim.Rand, off uint64, delta uint64) {
	t.Helper()
	for attempt := 0; ; attempt++ {
		tx := e.Begin()
		if _, err := tx.Add64(off, delta); err != nil {
			backoff(rng, attempt)
			continue
		}
		if err := tx.Commit(); err == nil {
			return
		}
		backoff(rng, attempt)
	}
}

func TestReadWriteCommit(t *testing.T) {
	e := newTestEngine(4096, Config{})
	tx := e.Begin()
	if err := tx.Store64(0, 42); err != nil {
		t.Fatalf("Store64: %v", err)
	}
	v, err := tx.Load64(0)
	if err != nil {
		t.Fatalf("Load64: %v", err)
	}
	if v != 42 {
		t.Fatalf("read own write: got %d, want 42", v)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if got := e.Load64NonTx(0); got != 42 {
		t.Fatalf("after commit: got %d, want 42", got)
	}
}

func TestExplicitAbortRestoresUndo(t *testing.T) {
	e := newTestEngine(4096, Config{})
	e.Store64NonTx(64, 7)
	tx := e.Begin()
	if err := tx.Store64(64, 99); err != nil {
		t.Fatalf("Store64: %v", err)
	}
	err := tx.Abort(0x5A)
	var ae *AbortError
	if !errors.As(err, &ae) || ae.Cause != CauseExplicit || ae.Code != 0x5A {
		t.Fatalf("Abort: got %v, want explicit code 0x5a", err)
	}
	if got := e.Load64NonTx(64); got != 7 {
		t.Fatalf("undo not restored: got %d, want 7", got)
	}
	if err := tx.Commit(); err == nil {
		t.Fatal("Commit after abort should fail")
	}
}

func TestOperationsAfterAbortFail(t *testing.T) {
	e := newTestEngine(4096, Config{})
	tx := e.Begin()
	tx.Abort(1)
	if _, err := tx.Load64(0); err == nil {
		t.Fatal("Load64 after abort should fail")
	}
	if err := tx.Store64(0, 1); err == nil {
		t.Fatal("Store64 after abort should fail")
	}
}

func TestWriteCapacityAbort(t *testing.T) {
	e := newTestEngine(1<<20, Config{MaxWriteLines: 4})
	tx := e.Begin()
	var err error
	for i := 0; i < 5; i++ {
		err = tx.Store64(uint64(i)*sim.CachelineSize, 1)
		if err != nil {
			break
		}
	}
	var ae *AbortError
	if !errors.As(err, &ae) || ae.Cause != CauseCapacity {
		t.Fatalf("want capacity abort on 5th line, got %v", err)
	}
	// All four successful writes must be rolled back.
	for i := 0; i < 4; i++ {
		if got := e.Load64NonTx(uint64(i) * sim.CachelineSize); got != 0 {
			t.Fatalf("line %d not rolled back: %d", i, got)
		}
	}
}

func TestReadCapacityAbort(t *testing.T) {
	e := newTestEngine(1<<20, Config{MaxReadLines: 8})
	tx := e.Begin()
	var err error
	for i := 0; i < 9; i++ {
		_, err = tx.Load64(uint64(i) * sim.CachelineSize)
		if err != nil {
			break
		}
	}
	var ae *AbortError
	if !errors.As(err, &ae) || ae.Cause != CauseCapacity {
		t.Fatalf("want capacity abort on 9th line, got %v", err)
	}
}

func TestStrongAtomicityNonTxWriteAbortsReader(t *testing.T) {
	e := newTestEngine(4096, Config{})
	tx := e.Begin()
	if _, err := tx.Load64(128); err != nil {
		t.Fatalf("Load64: %v", err)
	}
	e.Store64NonTx(128, 5) // non-transactional conflicting write
	err := tx.Commit()
	var ae *AbortError
	if !errors.As(err, &ae) || ae.Cause != CauseConflict {
		t.Fatalf("want conflict abort from strong atomicity, got %v", err)
	}
	if got := e.Load64NonTx(128); got != 5 {
		t.Fatalf("non-tx write lost: got %d", got)
	}
}

func TestStrongAtomicityNonTxReadAbortsWriter(t *testing.T) {
	e := newTestEngine(4096, Config{})
	e.Store64NonTx(192, 11)
	tx := e.Begin()
	if err := tx.Store64(192, 99); err != nil {
		t.Fatalf("Store64: %v", err)
	}
	// A non-transactional read must abort the speculative writer and see
	// the pre-transaction value (never the uncommitted 99).
	if got := e.Load64NonTx(192); got != 11 {
		t.Fatalf("non-tx read saw uncommitted data: got %d, want 11", got)
	}
	if tx.Active() {
		t.Fatal("writer should have been aborted by strong atomicity")
	}
}

func TestNonTxReadDoesNotAbortReaders(t *testing.T) {
	e := newTestEngine(4096, Config{})
	tx := e.Begin()
	if _, err := tx.Load64(256); err != nil {
		t.Fatalf("Load64: %v", err)
	}
	_ = e.Load64NonTx(256)
	if !tx.Active() {
		t.Fatal("read-read is not a conflict")
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
}

func TestConflictRequesterWins(t *testing.T) {
	e := newTestEngine(4096, Config{})
	t1 := e.Begin()
	if err := t1.Store64(0, 1); err != nil {
		t.Fatalf("t1 store: %v", err)
	}
	t2 := e.Begin()
	// t2 reads the same line: requester wins, t1 aborts, t2 sees old value.
	v, err := t2.Load64(0)
	if err != nil {
		t.Fatalf("t2 load: %v", err)
	}
	if v != 0 {
		t.Fatalf("t2 saw speculative data: %d", v)
	}
	if t1.Active() {
		t.Fatal("t1 should be aborted")
	}
	if err := t2.Commit(); err != nil {
		t.Fatalf("t2 commit: %v", err)
	}
}

func TestCAS64NonTx(t *testing.T) {
	e := newTestEngine(4096, Config{})
	prev, ok := e.CAS64NonTx(0, 0, 77)
	if !ok || prev != 0 {
		t.Fatalf("CAS 0->77: prev=%d ok=%v", prev, ok)
	}
	prev, ok = e.CAS64NonTx(0, 0, 88)
	if ok || prev != 77 {
		t.Fatalf("failed CAS should return prev=77: prev=%d ok=%v", prev, ok)
	}
	if prev := e.FAA64NonTx(0, 3); prev != 77 {
		t.Fatalf("FAA prev: %d", prev)
	}
	if got := e.Load64NonTx(0); got != 80 {
		t.Fatalf("after FAA: %d", got)
	}
}

func TestSpuriousAbortInjection(t *testing.T) {
	e := newTestEngine(4096, Config{SpuriousAbortProb: 1.0, Seed: 1})
	tx := e.Begin()
	_, err := tx.Load64(0)
	var ae *AbortError
	if !errors.As(err, &ae) || ae.Cause != CauseSpurious {
		t.Fatalf("want spurious abort, got %v", err)
	}
	if e.Snapshot().Spurious == 0 {
		t.Fatal("spurious counter not incremented")
	}
}

// TestConcurrentCountersLinearize is the core serializability property:
// hammering a handful of counters from many goroutines with retry loops must
// preserve every increment exactly once.
func TestConcurrentCountersLinearize(t *testing.T) {
	e := newTestEngine(1<<16, Config{SpuriousAbortProb: 0.01, Seed: 42})
	const (
		workers    = 6
		increments = 150
		counters   = 4
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := sim.NewRand(seed)
			for i := 0; i < increments; i++ {
				off := uint64(rng.Intn(counters)) * sim.CachelineSize
				mustCommitAdd(t, e, rng, off, 1)
			}
		}(uint64(w + 1))
	}
	wg.Wait()
	var total uint64
	for c := 0; c < counters; c++ {
		total += e.Load64NonTx(uint64(c) * sim.CachelineSize)
	}
	if total != workers*increments {
		t.Fatalf("lost updates: got %d, want %d", total, workers*increments)
	}
}

// TestConcurrentTransferInvariant moves value between slots transactionally
// while a concurrent non-transactional auditor hammers the same lines; the
// grand total must be conserved and the auditor must never observe a
// half-applied transfer within a single cacheline pair... (it can observe
// across lines — that is the documented torn-view hazard, so the invariant
// is checked only at quiescence).
func TestConcurrentTransferInvariant(t *testing.T) {
	e := newTestEngine(1<<16, Config{})
	const slots = 8
	const initial = 1000
	for i := 0; i < slots; i++ {
		e.Store64NonTx(uint64(i)*sim.CachelineSize, initial)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	auditorDone := make(chan struct{})
	// auditor: non-tx reads force strong-atomicity aborts.
	go func() {
		defer close(auditorDone)
		for {
			select {
			case <-stop:
				return
			default:
				_ = e.Load64NonTx(uint64(0) * sim.CachelineSize)
				for i := 0; i < 50; i++ {
					runtime.Gosched()
				}
			}
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := sim.NewRand(seed)
			for i := 0; i < 150; i++ {
				from := uint64(rng.Intn(slots)) * sim.CachelineSize
				to := uint64(rng.Intn(slots)) * sim.CachelineSize
				if from == to {
					continue
				}
				for attempt := 0; ; attempt++ {
					tx := e.Begin()
					fv, err := tx.Load64(from)
					if err != nil {
						backoff(rng, attempt)
						continue
					}
					if fv == 0 {
						tx.Commit()
						break
					}
					tv, err := tx.Load64(to)
					if err != nil {
						backoff(rng, attempt)
						continue
					}
					if tx.Store64(from, fv-1) != nil {
						backoff(rng, attempt)
						continue
					}
					if tx.Store64(to, tv+1) != nil {
						backoff(rng, attempt)
						continue
					}
					if tx.Commit() == nil {
						break
					}
					backoff(rng, attempt)
				}
			}
		}(uint64(w + 100))
	}
	wg.Wait()
	close(stop)
	<-auditorDone
	var total uint64
	for i := 0; i < slots; i++ {
		total += e.Load64NonTx(uint64(i) * sim.CachelineSize)
	}
	if total != slots*initial {
		t.Fatalf("value not conserved: got %d, want %d", total, slots*initial)
	}
}

func TestMultiLineReadConsistentOrAbort(t *testing.T) {
	// A transactional multi-line read either sees a consistent snapshot
	// or aborts; with a concurrent multi-line non-tx writer flipping all
	// bytes between 0x00 and 0xFF, a committed read must never be mixed.
	e := newTestEngine(4096, Config{})
	const off, n = 0, 3 * sim.CachelineSize
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf0 := make([]byte, n)
		buf1 := make([]byte, n)
		for i := range buf1 {
			buf1[i] = 0xFF
		}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				e.WriteNonTx(off, buf1)
			} else {
				e.WriteNonTx(off, buf0)
			}
		}
	}()
	mixed := 0
	for i := 0; i < 500; i++ {
		tx := e.Begin()
		b, err := tx.Read(off, n, nil)
		if err != nil {
			continue
		}
		if err := tx.Commit(); err != nil {
			continue
		}
		first := b[0]
		for _, c := range b {
			if c != first {
				mixed++
				break
			}
		}
	}
	close(stop)
	wg.Wait()
	if mixed > 0 {
		t.Fatalf("%d committed transactional reads observed torn data", mixed)
	}
}

func TestPropertyUndoExactRestore(t *testing.T) {
	// Property: for any sequence of writes within an aborted transaction,
	// memory is byte-identical to its pre-transaction state.
	e := newTestEngine(1<<14, Config{})
	f := func(seed uint64, nWrites uint8) bool {
		rng := sim.NewRand(seed)
		before := make([]byte, e.Size())
		copy(before, e.Mem())
		tx := e.Begin()
		for i := 0; i < int(nWrites%16)+1; i++ {
			off := uint64(rng.Intn(e.Size() - 16))
			var data [16]byte
			binary.LittleEndian.PutUint64(data[:], rng.Uint64())
			binary.LittleEndian.PutUint64(data[8:], rng.Uint64())
			if err := tx.Write(off, data[:rng.Intn(16)+1]); err != nil {
				return true // capacity abort already restored
			}
		}
		tx.Abort(1)
		for i := range before {
			if e.Mem()[i] != before[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAccounting(t *testing.T) {
	e := newTestEngine(4096, Config{})
	tx := e.Begin()
	tx.Store64(0, 1)
	tx.Commit()
	tx2 := e.Begin()
	tx2.Abort(3)
	s := e.Snapshot()
	if s.Begins != 2 || s.Commits != 1 || s.Explicit != 1 {
		t.Fatalf("stats: %+v", s)
	}
	if s.AbortRate() != 0.5 {
		t.Fatalf("abort rate: %f", s.AbortRate())
	}
}
