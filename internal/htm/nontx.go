package htm

import (
	"encoding/binary"
	"runtime"

	"drtmr/internal/sim"
)

// Non-transactional accesses model two things at once:
//
//  1. Plain CPU loads/stores outside any RTM region (fallback handlers,
//     initialization, auxiliary threads).
//  2. Incoming one-sided RDMA operations, which on the paper's hardware are
//     cache coherent with the CPU and therefore behave exactly like a remote
//     core's plain accesses with respect to RTM: they unconditionally abort
//     a conflicting hardware transaction (strong atomicity / strong
//     consistency, §2.1).
//
// Atomicity is per cacheline only: a multi-line ReadNonTx/WriteNonTx can
// observe or produce a torn view across lines. This is deliberate — it is
// precisely the hazard that forces DrTM+R's per-line version fields and
// lock-check-before-local-read (§4.3, Fig 4).

// nonTxLine performs fn on one cacheline, first aborting conflicting
// transactions. write selects the conflict rule: reads only conflict with a
// transactional writer; writes conflict with both writer and readers.
func (e *Engine) nonTxLine(lineIdx uint64, write bool, fn func()) {
	for {
		s := e.shardFor(lineIdx)
		s.mu.Lock()
		ln := s.lines[lineIdx]
		if ln == nil {
			fn()
			s.mu.Unlock()
			return
		}
		var victims []*Txn
		pending := false
		if ln.writer != nil {
			if ln.writer.Active() {
				victims = append(victims, ln.writer)
			} else {
				pending = true
			}
		}
		if write {
			for _, r := range ln.readers {
				if r.Active() {
					victims = append(victims, r)
				} else {
					pending = true
				}
			}
		}
		if len(victims) == 0 && !pending {
			fn()
			s.mu.Unlock()
			return
		}
		s.mu.Unlock()
		for _, v := range victims {
			v.extAbort(CauseConflict)
		}
		if pending && len(victims) == 0 {
			runtime.Gosched()
		}
	}
}

// ReadNonTx copies n bytes at off into buf (allocating if needed), atomically
// per cacheline.
func (e *Engine) ReadNonTx(off uint64, n int, buf []byte) []byte {
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if n == 0 {
		return buf
	}
	pos := off
	remaining := n
	outPos := 0
	for remaining > 0 {
		lineIdx := sim.LineOf(uintptr(pos))
		lineEnd := (lineIdx + 1) << sim.CachelineShift
		chunk := int(lineEnd - pos)
		if chunk > remaining {
			chunk = remaining
		}
		e.nonTxLine(lineIdx, false, func() {
			copy(buf[outPos:outPos+chunk], e.mem[pos:pos+uint64(chunk)])
		})
		pos += uint64(chunk)
		outPos += chunk
		remaining -= chunk
	}
	return buf
}

// WriteNonTx stores data at off, atomically per cacheline.
func (e *Engine) WriteNonTx(off uint64, data []byte) {
	pos := off
	inPos := 0
	remaining := len(data)
	for remaining > 0 {
		lineIdx := sim.LineOf(uintptr(pos))
		lineEnd := (lineIdx + 1) << sim.CachelineShift
		chunk := int(lineEnd - pos)
		if chunk > remaining {
			chunk = remaining
		}
		e.nonTxLine(lineIdx, true, func() {
			copy(e.mem[pos:pos+uint64(chunk)], data[inPos:inPos+chunk])
		})
		pos += uint64(chunk)
		inPos += chunk
		remaining -= chunk
	}
}

// Load64NonTx atomically reads a little-endian uint64 (must not straddle a
// cacheline; DrTM+R metadata fields never do).
func (e *Engine) Load64NonTx(off uint64) uint64 {
	var v uint64
	e.nonTxLine(sim.LineOf(uintptr(off)), false, func() {
		v = binary.LittleEndian.Uint64(e.mem[off : off+8])
	})
	return v
}

// Store64NonTx atomically writes a little-endian uint64.
func (e *Engine) Store64NonTx(off uint64, v uint64) {
	e.nonTxLine(sim.LineOf(uintptr(off)), true, func() {
		binary.LittleEndian.PutUint64(e.mem[off:off+8], v)
	})
}

// CAS64NonTx performs a compare-and-swap of the uint64 at off. It is atomic
// with respect to every engine-mediated access of that line.
//
// Callers other than the RDMA NIC must not use this: the simulated NIC
// provides only IBV_ATOMIC_HCA atomicity (RDMA atomics serialize against
// each other at the NIC, not against CPU atomics), and DrTM+R relies on that
// restriction — lock words are only ever CASed through RDMA, even for local
// records in the fallback handler (§6.2).
func (e *Engine) CAS64NonTx(off uint64, old, new uint64) (prev uint64, swapped bool) {
	e.nonTxLine(sim.LineOf(uintptr(off)), true, func() {
		prev = binary.LittleEndian.Uint64(e.mem[off : off+8])
		if prev == old {
			binary.LittleEndian.PutUint64(e.mem[off:off+8], new)
			swapped = true
		}
	})
	return prev, swapped
}

// FAA64NonTx performs fetch-and-add on the uint64 at off, returning the
// previous value. Same atomicity caveats as CAS64NonTx.
func (e *Engine) FAA64NonTx(off uint64, delta uint64) (prev uint64) {
	e.nonTxLine(sim.LineOf(uintptr(off)), true, func() {
		prev = binary.LittleEndian.Uint64(e.mem[off : off+8])
		binary.LittleEndian.PutUint64(e.mem[off:off+8], prev+delta)
	})
	return prev
}
