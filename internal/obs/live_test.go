package obs

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestLiveHistSnapshotConcurrent snapshots a histogram while eight writers
// hammer LiveRecord. Must be race-detector-clean, every snapshot must be
// internally consistent (n equals the sum of its buckets), and successive
// snapshots must be monotone per bucket.
func TestLiveHistSnapshotConcurrent(t *testing.T) {
	var h Histogram
	const writers = 8
	const perWriter = 20000
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				h.LiveRecord(int64(i%1000) * int64(w+1))
			}
		}(w)
	}
	go func() { wg.Wait(); stop.Store(true) }()

	var prev Histogram
	snaps := 0
	for !stop.Load() {
		s := h.Snapshot()
		snaps++
		var n uint64
		s.Fold(func(bucket int, count uint64) {
			n += count
			if pc := prev.counts[bucket]; count < pc {
				t.Errorf("bucket %d shrank: %d -> %d", bucket, pc, count)
			}
		})
		if n != s.Count() {
			t.Fatalf("snapshot inconsistent: bucket sum %d != n %d", n, s.Count())
		}
		prev = s
	}
	final := h.Snapshot()
	if got, want := final.Count(), uint64(writers*perWriter); got != want {
		t.Fatalf("final count %d, want %d", got, want)
	}
	var sum int64
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			sum += int64(i%1000) * int64(w+1)
		}
	}
	if final.Sum() != sum {
		t.Fatalf("final sum %d, want %d", final.Sum(), sum)
	}
	if snaps == 0 {
		t.Fatal("no snapshots raced with recording")
	}
}

// TestTypedHistLiveSnapshot checks the per-type variant: typed counts land in
// the right histogram and in the aggregate while a snapshot races.
func TestTypedHistLiveSnapshot(t *testing.T) {
	th := NewTypedHist("a", "b")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				th.LiveRecord(w%2, int64(i))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		s := th.Snapshot()
		// The snapshot's aggregate is derived from the typed copies, so it
		// matches their sum exactly — even when records land mid-copy or the
		// snapshotting goroutine is preempted between bucket loads.
		if sum := s.H[0].Count() + s.H[1].Count(); sum != s.All().Count() {
			t.Fatalf("typed sum %d != aggregate %d", sum, s.All().Count())
		}
		select {
		case <-done:
			f := th.Snapshot()
			if f.H[0].Count() != 10000 || f.H[1].Count() != 10000 || f.All().Count() != 20000 {
				t.Fatalf("final typed counts %d/%d/%d", f.H[0].Count(), f.H[1].Count(), f.All().Count())
			}
			return
		default:
		}
	}
}

// TestAbortMatrixSnapshotConcurrent exercises LiveRecord + LiveMerge against
// racing Snapshots: race-clean, per-cell monotone, and exact at the end.
func TestAbortMatrixSnapshotConcurrent(t *testing.T) {
	var m AbortMatrix
	const writers = 4
	const perWriter = 10000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Half the writers record directly; half publish deltas from a
			// private matrix the way serve workers do.
			if w%2 == 0 {
				for i := 0; i < perWriter; i++ {
					m.LiveRecord(uint8(i%NumReasons), uint8(i%NumStages), i%NumSites)
				}
				return
			}
			var cur, prev AbortMatrix
			for i := 0; i < perWriter; i++ {
				cur.Record(uint8(i%NumReasons), uint8(i%NumStages), i%NumSites)
				if i%64 == 63 {
					m.LiveMerge(&cur, &prev)
					prev = cur
				}
			}
			m.LiveMerge(&cur, &prev)
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	var prevTotal uint64
	for {
		s := m.Snapshot()
		if tot := s.Total(); tot < prevTotal {
			t.Fatalf("snapshot total shrank: %d -> %d", prevTotal, tot)
		} else {
			prevTotal = tot
		}
		select {
		case <-done:
			f := m.Snapshot()
			if f.Total() != writers*perWriter {
				t.Fatalf("final total %d, want %d", f.Total(), writers*perWriter)
			}
			return
		default:
		}
	}
}
