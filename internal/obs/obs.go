// Package obs is the observability layer: a low-overhead, virtual-time-aware
// trace recorder, log-bucketed latency histograms, and an abort-attribution
// matrix. The paper evaluates DrTM+R on latency distributions and abort
// behaviour (§7, Figs 11-12, Table 6), not just mean throughput; this package
// gives the harness the per-phase and per-cause visibility those figures
// need.
//
// Design constraints, in order:
//
//  1. Zero cost when disabled. Every instrumentation site in the hot path is
//     guarded by a nil-check on the worker's recorder pointer; with tracing
//     off no event is built and no allocation happens. Virtual-time
//     accounting is NEVER affected either way — recording only reads clocks.
//  2. Allocation-free when enabled. A Recorder is a preallocated ring of
//     fixed-size Event structs; Record overwrites the oldest event once the
//     ring wraps, so a long run keeps its most recent window.
//  3. One writer per recorder. Workers own their recorder exactly like their
//     virtual clock; only rare, cross-goroutine sources (cluster recovery
//     milestones) use the mutex-guarded variant from NewSharedRecorder.
//
// Events carry virtual timestamps (worker clocks) except recovery milestones,
// which are wall-clock — recovery is a real-time mechanism (lease expiry);
// see internal/sim. Export to Chrome trace-event / Perfetto JSON lives in
// trace.go; histograms in hist.go; the abort matrix in abort.go.
package obs

import "sync"

// Kind classifies a trace event.
type Kind uint8

// Event kinds. The Detail / Site / Arg fields are kind-specific:
//
//	EvTxnBegin   instant at transaction begin; Arg = attempt number
//	EvTxnCommit  span begin→commit of the committing attempt; Arg = attempt
//	EvTxnAbort   span begin→abort of one attempt; Detail = stage code,
//	             Site = node the abort was attributed to, Arg = abort reason
//	EvPhase      span of one commit-pipeline phase; Detail = stage code,
//	             Arg = one-sided verbs in the phase's doorbell batch
//	EvHTM        span XBEGIN→XEND/XABORT of one hardware transaction;
//	             Detail = abort cause (0 = committed), Arg = XABORT code
//	EvDoorbell   span post→complete of one doorbell; Site = target node
//	             (SiteMulti when one batch targets several), Arg = verbs
//	EvYield      span park→resume of a coroutine scheduling point
//	EvMilestone  instant recovery milestone (wall clock); Detail = milestone
//	             code, Site = the node the milestone concerns
type Event struct {
	Kind   Kind
	Detail uint8
	Site   uint16
	Arg    uint32
	ID     uint64 // transaction id, when one is in scope
	Start  int64  // ns (virtual, except EvMilestone: wall)
	End    int64  // ns; == Start for instant events
}

// Event kinds.
const (
	EvTxnBegin Kind = iota
	EvTxnCommit
	EvTxnAbort
	EvPhase
	EvHTM
	EvDoorbell
	EvYield
	EvMilestone
	numKinds
)

func (k Kind) String() string {
	switch k {
	case EvTxnBegin:
		return "txn-begin"
	case EvTxnCommit:
		return "txn-commit"
	case EvTxnAbort:
		return "txn-abort"
	case EvPhase:
		return "phase"
	case EvHTM:
		return "htm"
	case EvDoorbell:
		return "doorbell"
	case EvYield:
		return "yield"
	case EvMilestone:
		return "milestone"
	default:
		return "?"
	}
}

// SiteMulti marks a doorbell batch that targeted more than one node.
const SiteMulti uint16 = 0xFFFF

// Recovery milestone codes (EvMilestone Detail).
const (
	MilestoneKilled uint8 = iota
	MilestoneSuspect
	MilestoneConfigCommit
	MilestoneRecoveryDone
)

// MilestoneName names a milestone code.
func MilestoneName(c uint8) string {
	switch c {
	case MilestoneKilled:
		return "killed"
	case MilestoneSuspect:
		return "suspect"
	case MilestoneConfigCommit:
		return "config-commit"
	case MilestoneRecoveryDone:
		return "recovery-done"
	default:
		return "milestone?"
	}
}

// Recorder is a fixed-capacity ring buffer of trace events. A Recorder
// created with NewRecorder belongs to ONE goroutine (the worker that owns the
// clock whose timestamps it records); NewSharedRecorder adds a mutex for the
// rare multi-writer sources.
type Recorder struct {
	// Pid/Tid identify the recorder in exported traces (machine and worker
	// thread for workers; Pid -1 for the cluster-level milestone recorder).
	Pid, Tid int

	mu *sync.Mutex // nil for single-writer recorders
	ev []Event
	n  uint64 // total events ever recorded
}

// DefaultCapacity is the per-worker ring size used when callers pass 0.
const DefaultCapacity = 1 << 15

// NewRecorder creates a single-writer recorder with the given ring capacity
// (0 = DefaultCapacity). The ring is fully preallocated: Record never
// allocates.
func NewRecorder(pid, tid, capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{Pid: pid, Tid: tid, ev: make([]Event, capacity)}
}

// NewSharedRecorder creates a recorder safe for concurrent Record calls
// (used for cluster-level recovery milestones, which several coordinator
// goroutines may emit).
func NewSharedRecorder(pid, tid, capacity int) *Recorder {
	r := NewRecorder(pid, tid, capacity)
	r.mu = &sync.Mutex{}
	return r
}

// Record appends one event, overwriting the oldest once the ring is full.
// It never allocates. Callers guard the call with a nil check on the
// recorder pointer — that nil check IS the disabled fast path.
//
//drtmr:hotpath
func (r *Recorder) Record(k Kind, detail uint8, site uint16, arg uint32, id uint64, start, end int64) {
	if r.mu != nil {
		r.mu.Lock()
		defer r.mu.Unlock()
	}
	e := &r.ev[r.n%uint64(len(r.ev))]
	e.Kind, e.Detail, e.Site, e.Arg, e.ID, e.Start, e.End = k, detail, site, arg, id, start, end
	r.n++
}

// Len returns the number of events currently held (≤ capacity).
func (r *Recorder) Len() int {
	if r.mu != nil {
		r.mu.Lock()
		defer r.mu.Unlock()
	}
	if r.n < uint64(len(r.ev)) {
		return int(r.n)
	}
	return len(r.ev)
}

// Dropped returns how many events were overwritten by ring wrap-around.
func (r *Recorder) Dropped() uint64 {
	if r.mu != nil {
		r.mu.Lock()
		defer r.mu.Unlock()
	}
	if r.n < uint64(len(r.ev)) {
		return 0
	}
	return r.n - uint64(len(r.ev))
}

// Events returns a copy of the held events in recording order (oldest
// first). Safe to call concurrently on shared recorders; for single-writer
// recorders call it only after the owning worker has finished.
func (r *Recorder) Events() []Event {
	if r.mu != nil {
		r.mu.Lock()
		defer r.mu.Unlock()
	}
	capN := uint64(len(r.ev))
	if r.n <= capN {
		return append([]Event(nil), r.ev[:r.n]...)
	}
	out := make([]Event, 0, capN)
	head := r.n % capN // oldest surviving event
	out = append(out, r.ev[head:]...)
	out = append(out, r.ev[:head]...)
	return out
}
