package obs

import (
	"math/bits"
	"sync/atomic"
)

// Log-linear (HDR-style) histogram over non-negative int64 values, tuned for
// virtual-nanosecond latencies. Each power-of-two octave is split into
// 2^histSubBits linear sub-buckets, so relative bucket width — and therefore
// worst-case quantile error — is bounded by 1/2^histSubBits ≈ 3%. Values
// below 2^histSubBits land in exact single-value buckets. Recording is two
// shifts, a compare, and an add: no allocation, no floating point.
const (
	histSubBits = 5
	histSub     = 1 << histSubBits // linear sub-buckets per octave
)

// numBuckets covers the full non-negative int64 range: values < histSub get
// one exact bucket each, and each of the remaining octaves (up to 2^63)
// contributes histSub sub-buckets.
const numBuckets = histSub * (64 - histSubBits)

// BucketIndex maps a value to its bucket. Exported for boundary tests.
//
//drtmr:hotpath
func BucketIndex(v int64) int {
	if v < histSub {
		if v < 0 {
			return 0
		}
		return int(v)
	}
	// bits.Len64 >= histSubBits+1 here. The octave is chosen so that the top
	// histSubBits+1 bits select the sub-bucket; the leading bit is implicit.
	octave := bits.Len64(uint64(v)) - histSubBits - 1
	sub := int(uint64(v)>>uint(octave)) - histSub
	return histSub*octave + sub + histSub
}

// BucketLower returns the smallest value mapping to bucket i. Exported for
// boundary tests and for quantile reporting (quantiles return bucket lower
// bounds, which are exact for single-value buckets).
func BucketLower(i int) int64 {
	if i < histSub {
		return int64(i)
	}
	octave := (i - histSub) / histSub
	sub := (i - histSub) % histSub
	return int64(histSub+sub) << uint(octave)
}

// BucketUpper returns the largest value mapping to bucket i.
func BucketUpper(i int) int64 {
	if i < histSub-1 {
		return int64(i)
	}
	return BucketLower(i+1) - 1
}

// Histogram counts values in log-linear buckets and keeps the exact sum, so
// Mean is exact while quantiles are bucket-resolution (≈3%).
type Histogram struct {
	counts [numBuckets]uint64
	n      uint64
	sum    int64
	min    int64
	max    int64
}

// Record adds one value. Negative values clamp to zero.
//
//drtmr:hotpath
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[BucketIndex(v)]++
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
}

// LiveRecord adds one value with atomic operations, so a concurrent
// Snapshot — and other LiveRecord callers — stay race-free. It is the
// mid-run recording path for histograms a live status endpoint reads while
// workers are still recording (internal/serve); end-of-run histograms keep
// using the cheaper single-writer Record. The two must not be mixed on one
// histogram while concurrent readers exist. LiveRecord does not maintain
// min/max; Snapshot derives them at bucket resolution instead.
//
//drtmr:hotpath
func (h *Histogram) LiveRecord(v int64) {
	if v < 0 {
		v = 0
	}
	atomic.AddUint64(&h.counts[BucketIndex(v)], 1)
	atomic.AddInt64(&h.sum, v)
	atomic.AddUint64(&h.n, 1)
}

// Snapshot returns a self-consistent copy safe to take while LiveRecord
// races: every bucket is loaded atomically and the copy's total is the sum
// of the loaded buckets (so quantiles are exact over the copy), while sum —
// loaded separately — may lag by the handful of records in flight, making
// Mean approximate during concurrency. Min/max are reconstructed from the
// occupied bucket range (exact for values < 32, bucket-resolution above).
// Successive snapshots are monotone: no bucket count ever decreases.
func (h *Histogram) Snapshot() Histogram {
	var s Histogram
	first, last := -1, -1
	var n uint64
	for i := range h.counts {
		c := atomic.LoadUint64(&h.counts[i])
		if c == 0 {
			continue
		}
		s.counts[i] = c
		n += c
		if first < 0 {
			first = i
		}
		last = i
	}
	s.n = n
	s.sum = atomic.LoadInt64(&h.sum)
	if first >= 0 {
		s.min = BucketLower(first)
		s.max = BucketUpper(last)
	}
	return s
}

// Count returns the number of recorded values.
func (h *Histogram) Count() uint64 { return h.n }

// Min returns the smallest recorded value (0 if empty).
func (h *Histogram) Min() int64 { return h.min }

// Max returns the largest recorded value (0 if empty).
func (h *Histogram) Max() int64 { return h.max }

// Mean returns the exact arithmetic mean (0 if empty).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// rankValue returns the representative value (bucket lower bound, clamped to
// the observed min/max) of the value with zero-based rank k in sorted order.
func (h *Histogram) rankValue(k uint64) int64 {
	var seen uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		seen += c
		if seen > k {
			v := BucketLower(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) using linear interpolation
// between closest ranks, matching numpy's default. Values recorded into
// exact (single-value) buckets reproduce exactly; others are reported at
// bucket resolution. Returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		return float64(h.rankValue(0))
	}
	if q >= 1 {
		return float64(h.max)
	}
	target := q * float64(h.n-1)
	lo := uint64(target)
	frac := target - float64(lo)
	v0 := float64(h.rankValue(lo))
	if frac == 0 {
		return v0
	}
	v1 := float64(h.rankValue(lo + 1))
	return v0 + frac*(v1-v0)
}

// Sum returns the exact sum of recorded values.
func (h *Histogram) Sum() int64 { return h.sum }

// Fold calls f for every non-empty bucket in ascending index order — a
// deterministic traversal of the histogram's full state, used to fingerprint
// results in determinism regression tests.
func (h *Histogram) Fold(f func(bucket int, count uint64)) {
	for i, c := range h.counts {
		if c != 0 {
			f(i, c)
		}
	}
}

// Merge adds all of o's recordings into h.
func (h *Histogram) Merge(o *Histogram) {
	if o.n == 0 {
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if h.n == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.n += o.n
	h.sum += o.sum
}

// TypedHist is a histogram per transaction type plus an all-types aggregate.
type TypedHist struct {
	Names []string
	H     []Histogram // one per name
	all   Histogram
}

// NewTypedHist creates a TypedHist with one histogram per type name.
func NewTypedHist(names ...string) *TypedHist {
	return &TypedHist{Names: names, H: make([]Histogram, len(names))}
}

// Record adds v under type ty and to the aggregate. An out-of-range ty is
// dropped entirely (not even the aggregate), so the aggregate is always
// exactly the sum of the typed histograms.
//
//drtmr:hotpath
func (t *TypedHist) Record(ty int, v int64) {
	if ty < 0 || ty >= len(t.H) {
		return
	}
	t.H[ty].Record(v)
	t.all.Record(v)
}

// LiveRecord adds v under type ty with atomic operations (see
// Histogram.LiveRecord): the mid-run path for per-procedure histograms a
// status endpoint snapshots while workers record. Out-of-range types are
// dropped, as in Record.
//
//drtmr:hotpath
func (t *TypedHist) LiveRecord(ty int, v int64) {
	if ty < 0 || ty >= len(t.H) {
		return
	}
	t.H[ty].LiveRecord(v)
	t.all.LiveRecord(v)
}

// Snapshot returns an atomically loaded copy of every per-type histogram
// with the aggregate derived by merging those copies, safe to take while
// LiveRecord races. Deriving (rather than separately loading t.all) makes
// the snapshot coherent by construction: its aggregate equals the sum of
// its typed parts no matter how many records land mid-copy. Copying the
// live aggregate instead would bound the skew only by whatever executes
// between the typed loads and the aggregate load — a preempted snapshot
// goroutine once made that window span an entire run.
func (t *TypedHist) Snapshot() *TypedHist {
	s := &TypedHist{Names: t.Names, H: make([]Histogram, len(t.H))}
	for i := range t.H {
		s.H[i] = t.H[i].Snapshot()
		s.all.Merge(&s.H[i])
	}
	return s
}

// All returns the aggregate histogram over every type.
func (t *TypedHist) All() *Histogram { return &t.all }

// Merge adds all of o's recordings into t (type lists must match).
func (t *TypedHist) Merge(o *TypedHist) {
	for i := range t.H {
		if i < len(o.H) {
			t.H[i].Merge(&o.H[i])
		}
	}
	t.all.Merge(&o.all)
}
