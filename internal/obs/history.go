package obs

import "sync/atomic"

// Transaction history capture for the strict-serializability checker
// (internal/check). A HistoryRecorder is the obs-side sibling of the event
// Recorder: one per worker, single-writer, appended to only by that worker's
// goroutine, and read only after the run. Unlike the event ring it keeps
// every transaction (no overwrite) because the checker needs the complete
// history, and it records versioned read/write sets rather than timing spans.
//
// Real-time ordering comes from a TickSource shared by every worker in the
// run: a global atomic counter whose increments are totally ordered by the
// host memory model. Per-worker virtual clocks are NOT comparable across
// workers (each worker advances its own sim.Clock independently), so they
// cannot provide the real-time edges strict serializability needs; the tick
// counter can, because a transaction's effects are visible in host memory
// before its response tick is drawn, and after its invocation tick. Virtual
// clock values are still carried (VStart/VEnd) for diagnostics.

// TickSource is the run-global logical clock for history timestamps.
type TickSource struct{ n atomic.Uint64 }

// NewTickSource creates a tick source starting at 1.
func NewTickSource() *TickSource { return &TickSource{} }

// Next draws the next globally ordered tick.
func (t *TickSource) Next() uint64 { return t.n.Add(1) }

// History operation kinds.
const (
	HistRead uint8 = iota
	HistUpdate
	HistInsert
	HistDelete
)

// HistOp is one versioned read- or write-set entry of a committed
// transaction. Seq is the sequence number observed (reads) or installed
// (updates/inserts); Inc is the record incarnation when known (HaveInc).
// Deletes carry no version: the delete itself ends the record's incarnation.
type HistOp struct {
	Kind    uint8
	Table   uint8
	Key     uint64
	Seq     uint64
	Inc     uint64
	HaveInc bool
}

// HistTxn is one committed (or possibly committed) transaction: its
// invocation/response interval in global ticks, the worker that ran it, and
// its versioned operation list. Maybe marks transactions whose commit
// outcome is uncertain — the machine was killed while the transaction was in
// flight, so its effects may or may not have survived; the checker includes
// such transactions only when another committed transaction observed them.
type HistTxn struct {
	ID       uint64
	Node     int
	Worker   int
	ReadOnly bool
	Maybe    bool

	Invoke   uint64 // global tick drawn before the first read of the final attempt
	Response uint64 // global tick drawn after commit completed
	VStart   int64  // worker virtual clock at the final attempt's start
	VEnd     int64  // worker virtual clock at commit

	Ops []HistOp
}

// HistoryRecorder accumulates one worker's committed transactions.
type HistoryRecorder struct {
	Node   int
	Worker int

	ticks *TickSource
	txns  []HistTxn
}

// NewHistoryRecorder creates a recorder for worker (node, worker) drawing
// timestamps from ts.
func NewHistoryRecorder(node, worker int, ts *TickSource) *HistoryRecorder {
	return &HistoryRecorder{Node: node, Worker: worker, ticks: ts}
}

// Tick draws an invocation timestamp (called by the worker at the start of
// each transaction attempt).
func (h *HistoryRecorder) Tick() uint64 { return h.ticks.Next() }

// Add appends a finished transaction, stamping its response tick. The
// response is drawn here — after every commit effect is visible in host
// memory — so the real-time order of ticks is a sound under-approximation of
// the real-time order of transactions.
func (h *HistoryRecorder) Add(t HistTxn) {
	t.Node, t.Worker = h.Node, h.Worker
	t.Response = h.ticks.Next()
	h.txns = append(h.txns, t)
}

// Txns returns the recorded transactions (read after the run).
func (h *HistoryRecorder) Txns() []HistTxn { return h.txns }

// Len returns the number of recorded transactions.
func (h *HistoryRecorder) Len() int { return len(h.txns) }
