package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Chrome trace-event export. The format is the JSON Array / JSON Object
// flavour documented by the Trace Event Format spec and consumed by
// chrome://tracing and https://ui.perfetto.dev: a {"traceEvents":[...]}
// object whose entries are "X" (complete span: ts+dur), "i" (instant), and
// "M" (metadata) events, with ts/dur in MICROseconds. Virtual nanoseconds
// divide by 1e3; Perfetto renders sub-microsecond spans fine with fractional
// ts.

// TraceNames supplies human names for the numeric codes events carry;
// obs cannot name them itself without importing the packages it serves.
// Nil members fall back to numeric strings.
type TraceNames struct {
	Stage  func(uint8) string // EvPhase/EvTxnAbort Detail
	Reason func(uint8) string // EvTxnAbort Arg (abort reason)
	Cause  func(uint8) string // EvHTM Detail (abort cause; 0 = committed)
}

func (n TraceNames) stage(c uint8) string {
	if n.Stage != nil {
		return n.Stage(c)
	}
	return "stage-" + strconv.Itoa(int(c))
}

func (n TraceNames) reason(c uint8) string {
	if n.Reason != nil {
		return n.Reason(c)
	}
	return "reason-" + strconv.Itoa(int(c))
}

func (n TraceNames) cause(c uint8) string {
	if n.Cause != nil {
		return n.Cause(c)
	}
	return "cause-" + strconv.Itoa(int(c))
}

// traceEvent is one Trace Event Format entry.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

// eventName renders one obs.Event as its trace name, category, and args.
func eventName(e Event, names TraceNames) (name, cat string, args map[string]any) {
	switch e.Kind {
	case EvTxnBegin:
		return "txn-begin", "txn", map[string]any{"txn": e.ID, "attempt": e.Arg}
	case EvTxnCommit:
		return "txn", "txn", map[string]any{"txn": e.ID, "attempt": e.Arg, "outcome": "commit"}
	case EvTxnAbort:
		return "abort:" + names.reason(uint8(e.Arg)), "txn", map[string]any{
			"txn": e.ID, "stage": names.stage(e.Detail), "site": e.Site, "outcome": "abort",
		}
	case EvPhase:
		return names.stage(e.Detail), "phase", map[string]any{"txn": e.ID, "verbs": e.Arg}
	case EvHTM:
		a := map[string]any{"txn": e.ID}
		if e.Detail == 0 {
			return "htm", "htm", a
		}
		a["xabort"] = e.Arg
		return "htm-abort:" + names.cause(e.Detail), "htm", a
	case EvDoorbell:
		a := map[string]any{"verbs": e.Arg}
		if e.Site == SiteMulti {
			a["target"] = "multi"
		} else {
			a["target"] = e.Site
		}
		return "doorbell", "doorbell", a
	case EvYield:
		return "yield", "sched", map[string]any{"txn": e.ID}
	case EvMilestone:
		return MilestoneName(e.Detail), "milestone", map[string]any{"node": e.Site}
	default:
		return "event", "other", nil
	}
}

// WriteTrace exports the events of all recorders as one Chrome trace-event
// JSON document. Timestamps are normalised so the earliest event across all
// recorders is ts=0; each recorder becomes one pid/tid track, named via "M"
// metadata events. Milestone (wall-clock) events live on their own recorder
// and are normalised within it, so virtual and wall tracks each start at 0
// rather than being misleadingly offset against each other.
func WriteTrace(w io.Writer, recs []*Recorder, names TraceNames) error {
	bw := bufio.NewWriter(w)

	// Per-timebase normalisation: virtual clocks all start at 0 already, but
	// wall-clock milestones are unix nanos.
	var minVirt, minWall int64 = -1, -1
	for _, r := range recs {
		for _, e := range r.Events() {
			if e.Kind == EvMilestone {
				if minWall < 0 || e.Start < minWall {
					minWall = e.Start
				}
			} else if minVirt < 0 || e.Start < minVirt {
				minVirt = e.Start
			}
		}
	}

	if _, err := bw.WriteString("{\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(te traceEvent) error {
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		b, err := json.Marshal(te)
		if err != nil {
			return err
		}
		_, err = bw.Write(b)
		return err
	}

	for _, r := range recs {
		// Track name metadata. Negative Pid marks the shared cluster-wide
		// milestone recorder rather than a per-node worker.
		name := fmt.Sprintf("worker n%d/w%d", r.Pid, r.Tid)
		if r.Pid < 0 {
			name = "cluster"
		}
		if err := emit(traceEvent{
			Name: "thread_name", Ph: "M", Pid: r.Pid, Tid: r.Tid,
			Args: map[string]any{"name": name},
		}); err != nil {
			return err
		}
		evs := r.Events()
		// Chrome's JSON importer wants per-track monotone ts; ring order is
		// recording order, which for spans is END order — sort by start.
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].Start < evs[j].Start })
		for _, e := range evs {
			base := minVirt
			if e.Kind == EvMilestone {
				base = minWall
			}
			name, cat, args := eventName(e, names)
			te := traceEvent{
				Name: name, Cat: cat, Pid: r.Pid, Tid: r.Tid,
				Ts: float64(e.Start-base) / 1e3, Args: args,
			}
			if e.End > e.Start {
				d := float64(e.End-e.Start) / 1e3
				te.Ph, te.Dur = "X", &d
			} else {
				te.Ph, te.S = "i", "t"
			}
			if err := emit(te); err != nil {
				return err
			}
		}
	}
	if _, err := bw.WriteString("\n],\"displayTimeUnit\":\"ns\"}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// ValidateTrace parses a trace JSON document and checks it is well-formed:
// non-empty, every event has a known phase, durations are non-negative, and
// per-track timestamps are monotone non-decreasing. Returns the number of
// events per category for content assertions.
func ValidateTrace(data []byte) (map[string]int, error) {
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("trace not valid JSON: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return nil, fmt.Errorf("trace has no events")
	}
	cats := make(map[string]int)
	lastTs := make(map[[2]int]float64)
	n := 0
	for i, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			continue
		case "X", "i":
		default:
			return nil, fmt.Errorf("event %d: unknown phase %q", i, e.Ph)
		}
		if e.Dur < 0 {
			return nil, fmt.Errorf("event %d (%s): negative duration %v", i, e.Name, e.Dur)
		}
		if e.Ts < 0 {
			return nil, fmt.Errorf("event %d (%s): negative timestamp %v", i, e.Name, e.Ts)
		}
		track := [2]int{e.Pid, e.Tid}
		if prev, ok := lastTs[track]; ok && e.Ts < prev {
			return nil, fmt.Errorf("event %d (%s): ts %v before predecessor %v on track %v", i, e.Name, e.Ts, prev, track)
		}
		lastTs[track] = e.Ts
		cats[e.Cat]++
		n++
	}
	if n == 0 {
		return nil, fmt.Errorf("trace has only metadata events")
	}
	return cats, nil
}
