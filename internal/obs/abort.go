package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// AbortMatrix dimensions. Fixed-size so recording is a single array index
// with no allocation; the sizes comfortably cover the txn package's enums
// (callers clamp into the last slot if they ever outgrow them).
const (
	NumReasons = 10 // txn.AbortReason values (incl. the serve-layer ServerBusy/Deadline)
	NumStages  = 12 // txn stage codes (exec + commit phases + fallback)
	NumSites   = 40 // cluster node ids
)

// AbortMatrix attributes aborts along three axes: WHY (protocol-level abort
// reason), WHERE in the transaction's lifecycle (execution or a specific
// commit phase), and WHO — which site's record triggered it. It replaces the
// flat per-reason Stats.Aborts view: "1200 conflict aborts" becomes "1100
// C.1-lock conflicts on node 2", which is actionable.
type AbortMatrix struct {
	c [NumReasons][NumStages][NumSites]uint64
}

func clampIdx(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// Record counts one abort with the given reason, stage, and site.
//
//drtmr:hotpath
func (m *AbortMatrix) Record(reason, stage uint8, site int) {
	m.c[clampIdx(int(reason), NumReasons)][clampIdx(int(stage), NumStages)][clampIdx(site, NumSites)]++
}

// LiveRecord is Record with an atomic increment, for matrices a live status
// endpoint snapshots while recording continues (internal/serve).
//
//drtmr:hotpath
func (m *AbortMatrix) LiveRecord(reason, stage uint8, site int) {
	atomic.AddUint64(&m.c[clampIdx(int(reason), NumReasons)][clampIdx(int(stage), NumStages)][clampIdx(site, NumSites)], 1)
}

// LiveMerge atomically adds (cur - prev) into m — the delta-publish step a
// single-writer worker uses to fold its private matrix into a shared live
// aggregate mid-run. cur and prev belong to the calling goroutine (read
// non-atomically); only m is shared. Callers then copy cur into prev.
func (m *AbortMatrix) LiveMerge(cur, prev *AbortMatrix) {
	for r := range m.c {
		for s := range m.c[r] {
			for n := range m.c[r][s] {
				if d := cur.c[r][s][n] - prev.c[r][s][n]; d != 0 {
					atomic.AddUint64(&m.c[r][s][n], d)
				}
			}
		}
	}
}

// Snapshot returns an atomically loaded copy safe to take while LiveRecord
// or LiveMerge race. Successive snapshots are monotone per cell.
func (m *AbortMatrix) Snapshot() AbortMatrix {
	var s AbortMatrix
	for r := range m.c {
		for st := range m.c[r] {
			for n := range m.c[r][st] {
				if c := atomic.LoadUint64(&m.c[r][st][n]); c != 0 {
					s.c[r][st][n] = c
				}
			}
		}
	}
	return s
}

// Merge adds all of o's counts into m.
func (m *AbortMatrix) Merge(o *AbortMatrix) {
	for r := range m.c {
		for s := range m.c[r] {
			for n := range m.c[r][s] {
				m.c[r][s][n] += o.c[r][s][n]
			}
		}
	}
}

// Total returns the total abort count.
func (m *AbortMatrix) Total() uint64 {
	var t uint64
	for r := range m.c {
		for s := range m.c[r] {
			for n := range m.c[r][s] {
				t += m.c[r][s][n]
			}
		}
	}
	return t
}

// StageReasonTotal sums one reason×stage row across all sites. The
// contention manager's hot-key detector cross-checks candidate keys against
// it: a key only queues when its aborts come from a reason×stage cell that
// is a repeat offender, not from a one-off at a fresh site.
func (m *AbortMatrix) StageReasonTotal(reason, stage uint8) uint64 {
	var t uint64
	for _, v := range m.c[clampIdx(int(reason), NumReasons)][clampIdx(int(stage), NumStages)] {
		t += v
	}
	return t
}

// Cell is one non-zero matrix entry.
type Cell struct {
	Reason, Stage uint8
	Site          int
	Count         uint64
}

// Cells returns the non-zero entries, largest count first (ties broken by
// reason, stage, site for determinism).
func (m *AbortMatrix) Cells() []Cell {
	var out []Cell
	for r := range m.c {
		for s := range m.c[r] {
			for n, c := range m.c[r][s] {
				if c != 0 {
					out = append(out, Cell{uint8(r), uint8(s), n, c})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Count != b.Count {
			return a.Count > b.Count
		}
		if a.Reason != b.Reason {
			return a.Reason < b.Reason
		}
		if a.Stage != b.Stage {
			return a.Stage < b.Stage
		}
		return a.Site < b.Site
	})
	return out
}

// Summary renders the top n cells as "reason@stage→site:count" joined with
// spaces, using the caller's enum namers. Empty string if no aborts.
func (m *AbortMatrix) Summary(n int, reasonName, stageName func(uint8) string) string {
	cells := m.Cells()
	if len(cells) == 0 {
		return ""
	}
	if n > 0 && len(cells) > n {
		cells = cells[:n]
	}
	parts := make([]string, len(cells))
	for i, c := range cells {
		parts[i] = fmt.Sprintf("%s@%s→n%d:%d", reasonName(c.Reason), stageName(c.Stage), c.Site, c.Count)
	}
	return strings.Join(parts, " ")
}
