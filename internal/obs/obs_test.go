package obs

import (
	"bytes"
	"math"
	"sync"
	"testing"
)

// --- histogram bucket boundaries -----------------------------------------

// TestBucketBoundaries walks every bucket edge in the first few octaves and
// checks BucketIndex / BucketLower / BucketUpper agree: each bucket's lower
// and upper bound map back to it, and its neighbours' bounds do not.
func TestBucketBoundaries(t *testing.T) {
	for i := 0; i < histSub*8; i++ {
		lo, hi := BucketLower(i), BucketUpper(i)
		if lo > hi {
			t.Fatalf("bucket %d: lower %d > upper %d", i, lo, hi)
		}
		if got := BucketIndex(lo); got != i {
			t.Errorf("BucketIndex(lower %d) = %d, want %d", lo, got, i)
		}
		if got := BucketIndex(hi); got != i {
			t.Errorf("BucketIndex(upper %d) = %d, want %d", hi, got, i)
		}
		if got := BucketIndex(hi + 1); got != i+1 {
			t.Errorf("BucketIndex(%d) = %d, want next bucket %d", hi+1, got, i+1)
		}
	}
	// Buckets tile the axis with no gaps.
	for i := 1; i < histSub*8; i++ {
		if BucketLower(i) != BucketUpper(i-1)+1 {
			t.Fatalf("gap between buckets %d and %d", i-1, i)
		}
	}
}

// TestBucketExactRegion: values below histSub and within the first octave
// get single-value buckets, so they round-trip exactly.
func TestBucketExactRegion(t *testing.T) {
	for v := int64(0); v < 2*histSub; v++ {
		i := BucketIndex(v)
		if BucketLower(i) != v || BucketUpper(i) != v {
			t.Fatalf("value %d not in a single-value bucket (bucket %d: [%d,%d])",
				v, i, BucketLower(i), BucketUpper(i))
		}
	}
}

// TestBucketRelativeError: bucket width / lower bound stays under 1/histSub
// everywhere, which bounds quantile error at ~3% for histSubBits=5.
func TestBucketRelativeError(t *testing.T) {
	for _, v := range []int64{100, 1000, 12345, 1e6, 1e9, 1e12, 1e15, 1e18} {
		i := BucketIndex(v)
		lo, hi := BucketLower(i), BucketUpper(i)
		if lo > v || v > hi {
			t.Fatalf("value %d outside its bucket %d [%d,%d]", v, i, lo, hi)
		}
		if rel := float64(hi-lo) / float64(lo); rel > 1.0/histSub {
			t.Errorf("value %d: relative bucket width %.4f > %.4f", v, rel, 1.0/histSub)
		}
	}
	if BucketIndex(math.MaxInt64) >= numBuckets {
		t.Fatalf("MaxInt64 bucket %d out of range %d", BucketIndex(math.MaxInt64), numBuckets)
	}
	if BucketIndex(-5) != 0 {
		t.Fatalf("negative values must clamp to bucket 0")
	}
}

// --- histogram recording / quantiles -------------------------------------

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("empty histogram must report zeros: n=%d mean=%v p50=%v", h.Count(), h.Mean(), h.Quantile(0.5))
	}
}

// TestQuantileInterpolation: numpy-style linear interpolation between
// closest ranks on exactly-representable values.
func TestQuantileInterpolation(t *testing.T) {
	var h Histogram
	h.Record(10)
	h.Record(20)
	if got := h.Quantile(0.5); got != 15 {
		t.Errorf("p50 of {10,20} = %v, want 15 (linear interpolation)", got)
	}
	if got := h.Quantile(0); got != 10 {
		t.Errorf("p0 = %v, want 10", got)
	}
	if got := h.Quantile(1); got != 20 {
		t.Errorf("p100 = %v, want 20", got)
	}
	h.Record(30)
	// n=3: target rank for q=0.5 is exactly 1 → middle value.
	if got := h.Quantile(0.5); got != 20 {
		t.Errorf("p50 of {10,20,30} = %v, want 20", got)
	}
	// q=0.25 → rank 0.5 → halfway between 10 and 20.
	if got := h.Quantile(0.25); got != 15 {
		t.Errorf("p25 of {10,20,30} = %v, want 15", got)
	}
}

func TestQuantileSingleValue(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Record(42)
	}
	for _, q := range []float64{0, 0.5, 0.99, 0.999, 1} {
		if got := h.Quantile(q); got != 42 {
			t.Errorf("Quantile(%v) = %v, want 42", q, got)
		}
	}
	if h.Mean() != 42 {
		t.Errorf("mean %v, want 42", h.Mean())
	}
}

// TestQuantileLargeValues: quantiles on values outside the exact region are
// bucket-resolution — within 1/histSub relative error.
func TestQuantileLargeValues(t *testing.T) {
	var h Histogram
	for v := int64(1); v <= 10000; v++ {
		h.Record(v * 1000) // 1µs .. 10ms in ns
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.5, 5000.5e3}, {0.9, 9000.1e3}, {0.99, 9900.01e3},
	} {
		got := h.Quantile(tc.q)
		if rel := math.Abs(got-tc.want) / tc.want; rel > 1.0/histSub {
			t.Errorf("Quantile(%v) = %v, want %v ±%.1f%%", tc.q, got, tc.want, 100.0/histSub)
		}
	}
	if h.Min() != 1000 || h.Max() != 10000e3 {
		t.Errorf("min/max = %d/%d", h.Min(), h.Max())
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b, whole Histogram
	for v := int64(0); v < 1000; v++ {
		whole.Record(v * 7)
		if v%2 == 0 {
			a.Record(v * 7)
		} else {
			b.Record(v * 7)
		}
	}
	a.Merge(&b)
	if a.Count() != whole.Count() || a.Mean() != whole.Mean() || a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Fatalf("merge mismatch: n=%d/%d mean=%v/%v", a.Count(), whole.Count(), a.Mean(), whole.Mean())
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 0.999} {
		if a.Quantile(q) != whole.Quantile(q) {
			t.Errorf("Quantile(%v): merged %v != whole %v", q, a.Quantile(q), whole.Quantile(q))
		}
	}
	// Merging an empty histogram changes nothing.
	var empty Histogram
	n, mean := a.Count(), a.Mean()
	a.Merge(&empty)
	if a.Count() != n || a.Mean() != mean {
		t.Fatal("merging empty histogram changed state")
	}
	// Merging into an empty histogram copies min/max.
	var c Histogram
	c.Merge(&whole)
	if c.Min() != whole.Min() || c.Max() != whole.Max() || c.Count() != whole.Count() {
		t.Fatal("merge into empty lost state")
	}
}

func TestTypedHist(t *testing.T) {
	th := NewTypedHist("send", "balance")
	th.Record(0, 100)
	th.Record(1, 200)
	th.Record(1, 300)
	th.Record(99, 400) // out-of-range type is dropped, aggregate included:
	// the aggregate must always equal the sum of the typed histograms, or a
	// snapshot's per-type breakdown can't reconcile against its own total.
	if th.H[0].Count() != 1 || th.H[1].Count() != 2 {
		t.Fatalf("per-type counts wrong: %d, %d", th.H[0].Count(), th.H[1].Count())
	}
	if th.All().Count() != 3 {
		t.Fatalf("aggregate count %d, want 3", th.All().Count())
	}
	o := NewTypedHist("send", "balance")
	o.Record(0, 500)
	th.Merge(o)
	if th.H[0].Count() != 2 || th.All().Count() != 4 {
		t.Fatalf("merge wrong: type0=%d all=%d", th.H[0].Count(), th.All().Count())
	}
}

// --- recorder ring -------------------------------------------------------

func TestRecorderRing(t *testing.T) {
	r := NewRecorder(0, 0, 4)
	for i := 0; i < 3; i++ {
		r.Record(EvYield, 0, 0, 0, uint64(i), int64(i), int64(i))
	}
	if r.Len() != 3 || r.Dropped() != 0 {
		t.Fatalf("len=%d dropped=%d", r.Len(), r.Dropped())
	}
	evs := r.Events()
	for i, e := range evs {
		if e.ID != uint64(i) {
			t.Fatalf("event %d has id %d", i, e.ID)
		}
	}
	// Wrap: capacity 4, record 6 total → oldest two overwritten.
	for i := 3; i < 6; i++ {
		r.Record(EvYield, 0, 0, 0, uint64(i), int64(i), int64(i))
	}
	if r.Len() != 4 || r.Dropped() != 2 {
		t.Fatalf("after wrap: len=%d dropped=%d", r.Len(), r.Dropped())
	}
	evs = r.Events()
	for i, e := range evs {
		if want := uint64(i + 2); e.ID != want {
			t.Fatalf("after wrap event %d has id %d, want %d", i, e.ID, want)
		}
	}
}

func TestRecorderNoAlloc(t *testing.T) {
	r := NewRecorder(0, 0, 128)
	allocs := testing.AllocsPerRun(1000, func() {
		r.Record(EvDoorbell, 0, 1, 8, 7, 100, 200)
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %v times per call, want 0", allocs)
	}
}

func TestSharedRecorderConcurrent(t *testing.T) {
	r := NewSharedRecorder(-1, 0, 256)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				r.Record(EvMilestone, MilestoneSuspect, uint16(g), 0, 0, int64(i), int64(i))
			}
		}(g)
	}
	wg.Wait()
	if r.Len() != 200 {
		t.Fatalf("len=%d, want 200", r.Len())
	}
}

// --- trace export / validation -------------------------------------------

func TestWriteTraceRoundTrip(t *testing.T) {
	w := NewRecorder(0, 1, 64)
	w.Record(EvTxnBegin, 0, 0, 1, 100, 0, 0)
	w.Record(EvPhase, 1, 0, 8, 100, 10, 40)
	w.Record(EvHTM, 0, 0, 0, 100, 45, 55)
	w.Record(EvDoorbell, 0, 2, 8, 0, 10, 40)
	w.Record(EvYield, 0, 0, 0, 100, 12, 35)
	w.Record(EvTxnCommit, 0, 0, 1, 100, 0, 60)
	w.Record(EvTxnAbort, 1, 2, 1, 101, 70, 90)
	m := NewSharedRecorder(-1, 0, 8)
	m.Record(EvMilestone, MilestoneSuspect, 1, 0, 0, 1e9, 1e9)
	m.Record(EvMilestone, MilestoneRecoveryDone, 1, 0, 0, 2e9, 2e9)

	var buf bytes.Buffer
	if err := WriteTrace(&buf, []*Recorder{w, m}, TraceNames{}); err != nil {
		t.Fatal(err)
	}
	cats, err := ValidateTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("exported trace fails validation: %v\n%s", err, buf.String())
	}
	want := map[string]int{"txn": 3, "phase": 1, "htm": 1, "doorbell": 1, "sched": 1, "milestone": 2}
	for cat, n := range want {
		if cats[cat] != n {
			t.Errorf("category %q: %d events, want %d (all: %v)", cat, cats[cat], n, cats)
		}
	}
}

func TestValidateTraceRejects(t *testing.T) {
	if _, err := ValidateTrace([]byte("not json")); err == nil {
		t.Error("accepted invalid JSON")
	}
	if _, err := ValidateTrace([]byte(`{"traceEvents":[]}`)); err == nil {
		t.Error("accepted empty trace")
	}
	nonMonotone := `{"traceEvents":[
		{"name":"a","cat":"txn","ph":"i","ts":10,"pid":0,"tid":0,"s":"t"},
		{"name":"b","cat":"txn","ph":"i","ts":5,"pid":0,"tid":0,"s":"t"}]}`
	if _, err := ValidateTrace([]byte(nonMonotone)); err == nil {
		t.Error("accepted non-monotone timestamps on one track")
	}
	negDur := `{"traceEvents":[{"name":"a","cat":"txn","ph":"X","ts":1,"dur":-5,"pid":0,"tid":0}]}`
	if _, err := ValidateTrace([]byte(negDur)); err == nil {
		t.Error("accepted negative duration")
	}
}

// --- abort matrix --------------------------------------------------------

func TestAbortMatrix(t *testing.T) {
	var m AbortMatrix
	m.Record(1, 2, 3)
	m.Record(1, 2, 3)
	m.Record(4, 0, 1)
	if m.Total() != 3 {
		t.Fatalf("total %d, want 3", m.Total())
	}
	cells := m.Cells()
	if len(cells) != 2 {
		t.Fatalf("%d cells, want 2", len(cells))
	}
	if cells[0].Count != 2 || cells[0].Reason != 1 || cells[0].Stage != 2 || cells[0].Site != 3 {
		t.Fatalf("top cell %+v", cells[0])
	}
	var o AbortMatrix
	o.Record(1, 2, 3)
	m.Merge(&o)
	if m.Total() != 4 || m.Cells()[0].Count != 3 {
		t.Fatalf("merge failed: total=%d", m.Total())
	}
	// Out-of-range indices clamp instead of panicking.
	m.Record(200, 200, 500)
	if m.Total() != 5 {
		t.Fatalf("clamped record lost: %d", m.Total())
	}
	s := m.Summary(1, func(r uint8) string { return "r" }, func(s uint8) string { return "s" })
	if s != "r@s→n3:3" {
		t.Fatalf("summary %q", s)
	}
	var empty AbortMatrix
	if empty.Summary(3, nil, nil) != "" {
		t.Fatal("empty matrix summary not empty")
	}
}
