// Package oplog implements DrTM+R's replication logs (§5.1): per-peer ring
// buffers in each machine's battery-backed NVRAM, appended to with one-sided
// RDMA WRITEs by transaction coordinators (R.1 of the revised commit
// protocol) and drained by auxiliary threads on the backup machine — the
// paper reserves two cores per machine for exactly this log truncation work.
//
// Wire format. Every entry starts on a cacheline so the 16-byte header can
// be published with a single line-atomic write *after* the payload: a reader
// that sees a non-zero length word is guaranteed a complete entry, and a
// coordinator that dies mid-append leaves a zero header behind — the entry
// simply never happened, which is exactly the race the optimistic
// replication scheme tolerates (the primary's record stays uncommittable).
//
//	entry  := hdr payload
//	hdr    := len u32 | magic u16 | nRecs u16 | txnID u64        (16 B)
//	payload:= rec*
//	rec    := kind u8 | table u8 | shard u16 | valLen u32 | key u64 | seq u64 | value
//
// Records are applied idempotently and order-independently: an update is
// installed only if its sequence number exceeds the backup record's current
// one, so replays and cross-ring races are harmless.
//
// Two-phase append (FaRM-style commit records). A transaction's replication
// step first writes the payload of its entry into EVERY relevant ring, then
// publishes the headers. A published entry therefore implies the full write
// set is durable in at least that ring, and the recovery protocol may REDO
// the whole transaction from any single published entry; a coordinator that
// dies before publishing anything leaves the transaction invisible
// everywhere. To keep redo possible until the transaction has fully
// committed (C.5/C.6 done), appliers APPLY published entries eagerly but
// TRUNCATE only up to a watermark the coordinator advances — lazily, batched
// — once its transactions are complete.
package oplog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"drtmr/internal/htm"
	"drtmr/internal/memstore"
	"drtmr/internal/rdma"
	"drtmr/internal/sim"
)

// Entry kinds.
const (
	KindUpdate = 1
	KindInsert = 2
	KindDelete = 3
)

const (
	hdrBytes = 16
	recHdr   = 24
	magic    = 0xD47B
	// skipLen marks "rest of ring is padding, continue at wrap".
	skipLen = ^uint32(0)
)

// Rec is one logged record mutation. Shard carries the record's partition so
// an applier can decide whether the record belongs to a shard it replicates
// (entries contain the transaction's full write set).
type Rec struct {
	Kind  uint8
	Table memstore.TableID
	Shard uint16
	Key   uint64
	Seq   uint64
	Value []byte
}

// Encode serializes a batch of recs into a ring entry image (header
// included), padded to whole cachelines.
func Encode(txnID uint64, recs []Rec) []byte {
	size := hdrBytes
	for _, r := range recs {
		size += recHdr + len(r.Value)
		size = (size + 7) &^ 7
	}
	size = sim.AlignUp(size)
	buf := make([]byte, size)
	binary.LittleEndian.PutUint32(buf[0:4], uint32(size))
	binary.LittleEndian.PutUint16(buf[4:6], magic)
	binary.LittleEndian.PutUint16(buf[6:8], uint16(len(recs)))
	binary.LittleEndian.PutUint64(buf[8:16], txnID)
	pos := hdrBytes
	for _, r := range recs {
		buf[pos] = r.Kind
		buf[pos+1] = uint8(r.Table)
		binary.LittleEndian.PutUint16(buf[pos+2:pos+4], r.Shard)
		binary.LittleEndian.PutUint32(buf[pos+4:pos+8], uint32(len(r.Value)))
		binary.LittleEndian.PutUint64(buf[pos+8:pos+16], r.Key)
		binary.LittleEndian.PutUint64(buf[pos+16:pos+24], r.Seq)
		copy(buf[pos+recHdr:], r.Value)
		pos += recHdr + len(r.Value)
		pos = (pos + 7) &^ 7
	}
	return buf
}

// Decode parses an entry image (without trusting anything beyond its
// declared geometry; corrupt entries return an error).
func Decode(buf []byte) (txnID uint64, recs []Rec, err error) {
	if len(buf) < hdrBytes {
		return 0, nil, errors.New("oplog: short entry")
	}
	if binary.LittleEndian.Uint16(buf[4:6]) != magic {
		return 0, nil, errors.New("oplog: bad magic")
	}
	n := int(binary.LittleEndian.Uint16(buf[6:8]))
	txnID = binary.LittleEndian.Uint64(buf[8:16])
	pos := hdrBytes
	for i := 0; i < n; i++ {
		if pos+recHdr > len(buf) {
			return 0, nil, errors.New("oplog: truncated record header")
		}
		r := Rec{
			Kind:  buf[pos],
			Table: memstore.TableID(buf[pos+1]),
			Shard: binary.LittleEndian.Uint16(buf[pos+2 : pos+4]),
			Key:   binary.LittleEndian.Uint64(buf[pos+8 : pos+16]),
			Seq:   binary.LittleEndian.Uint64(buf[pos+16 : pos+24]),
		}
		vl := int(binary.LittleEndian.Uint32(buf[pos+4 : pos+8]))
		if pos+recHdr+vl > len(buf) {
			return 0, nil, errors.New("oplog: truncated value")
		}
		r.Value = append([]byte(nil), buf[pos+recHdr:pos+recHdr+vl]...)
		recs = append(recs, r)
		pos += recHdr + vl
		pos = (pos + 7) &^ 7
	}
	return txnID, recs, nil
}

// Geometry fixes where a ring lives inside the target machine's memory:
// Base..Base+Size is the buffer; the head pointer (a logical position
// maintained by the target's applier, read remotely by writers when they run
// out of space) lives at HeadOff; the truncation watermark (a logical
// position written remotely by the ring's owner as its transactions fully
// commit) lives at MarkOff.
type Geometry struct {
	Base    uint64
	Size    uint64
	HeadOff uint64
	MarkOff uint64
}

// Writer is the source side of one ring: machine src appending to the log
// region it owns inside machine dst. All of src's worker threads share it
// (hence the mutex: on real hardware this would be a reliable-connected QP
// per thread writing to reserved slots; serializing appends is the simple
// faithful equivalent).
type Writer struct {
	geo Geometry

	mu              sync.Mutex
	tail            uint64 // logical position; authoritative (only we write this ring)
	head            uint64 // cached remote head (refresh on pressure)
	committed       uint64 // logical position below which txns are fully committed
	pushedCommitted uint64 // last watermark value pushed to the remote side
}

// NewWriter creates the writer-side handle.
func NewWriter(geo Geometry) *Writer {
	return &Writer{geo: geo}
}

// Token identifies a reserved entry for the publish step.
type Token struct {
	pos uint64 // logical start
	n   uint64
}

// End returns the logical position just past the entry (for MarkCommitted).
func (tk Token) End() uint64 { return tk.pos + tk.n }

// AppendPayload reserves space and posts into b everything EXCEPT the first
// cacheline (which holds the header): the entry stays invisible. Blocks
// while the ring is full. The payload verb executes when the caller runs
// b.Execute() — replication fans payloads out to every ring through ONE
// doorbell batch, so the whole fan-out costs one base write latency. The
// returned Pending (nil when the entry fits in a single cacheline) reports
// whether the payload landed; callers must not Publish an entry whose
// payload failed.
func (w *Writer) AppendPayload(qp *rdma.QP, b *rdma.Batch, entry []byte) (Token, *rdma.Pending, error) {
	if len(entry)%sim.CachelineSize != 0 {
		return Token{}, nil, fmt.Errorf("oplog: entry not cacheline padded (%d)", len(entry))
	}
	need := uint64(len(entry))
	if need > w.geo.Size/2 {
		return Token{}, nil, fmt.Errorf("oplog: entry of %d bytes exceeds half the ring", need)
	}
	w.mu.Lock()
	defer w.mu.Unlock()

	// Wrap: if the entry doesn't fit before the physical end, mark the
	// remainder as skip and continue at the next wrap boundary.
	if off := w.tail % w.geo.Size; off+need > w.geo.Size {
		var skip [8]byte
		binary.LittleEndian.PutUint32(skip[0:4], skipLen)
		if err := w.waitSpace(qp, w.geo.Size-off); err != nil {
			return Token{}, nil, err
		}
		if err := qp.Write(w.geo.Base+off, skip[:]); err != nil {
			return Token{}, nil, err
		}
		w.tail += w.geo.Size - off
	}
	if err := w.waitSpace(qp, need); err != nil {
		return Token{}, nil, err
	}
	tk := Token{pos: w.tail, n: need}
	w.tail += need
	var pend *rdma.Pending
	if len(entry) > sim.CachelineSize {
		off := w.geo.Base + tk.pos%w.geo.Size
		pend = b.PostWrite(qp, off+sim.CachelineSize, entry[sim.CachelineSize:])
	}
	return tk, pend, nil
}

// Publish posts the entry's first cacheline (containing the header) into b:
// the single line-atomic write that makes the entry visible to the applier
// once b.Execute() runs. Headers for many rings share one doorbell batch, so
// the publish fan-out also costs one base write latency.
func (w *Writer) Publish(qp *rdma.QP, b *rdma.Batch, tk Token, entry []byte) *rdma.Pending {
	off := w.geo.Base + tk.pos%w.geo.Size
	return b.PostWrite(qp, off, entry[:sim.CachelineSize])
}

// Append is the one-shot payload+publish path for callers that do not need
// the cross-ring batching (single-ring replication, tests). The entry is
// marked committed immediately, so the applier may truncate it after
// applying.
func (w *Writer) Append(qp *rdma.QP, entry []byte) error {
	b := qp.Batch()
	tk, _, err := w.AppendPayload(qp, b, entry)
	if err != nil {
		return err
	}
	if err := b.Execute(); err != nil {
		return err
	}
	w.Publish(qp, b, tk, entry)
	if err := b.Execute(); err != nil {
		return err
	}
	w.MarkCommitted(tk.End())
	return w.PushWatermark(qp, true)
}

// MarkCommitted records that every entry below end belongs to a fully
// committed transaction and may be truncated by the applier. The watermark
// is pushed to the remote side lazily (PushWatermark) to amortize verbs.
func (w *Writer) MarkCommitted(end uint64) {
	w.mu.Lock()
	if end > w.committed {
		w.committed = end
	}
	w.mu.Unlock()
}

// PushWatermark writes the committed watermark to the remote ring if it
// moved. force pushes even small advances (used on ring pressure and at
// shutdown).
func (w *Writer) PushWatermark(qp *rdma.QP, force bool) error {
	w.mu.Lock()
	c, p := w.committed, w.pushedCommitted
	w.mu.Unlock()
	if c == p {
		return nil
	}
	if !force && c-p < w.geo.Size/8 {
		return nil
	}
	if err := qp.Write64(w.geo.MarkOff, c); err != nil {
		return err
	}
	w.mu.Lock()
	if c > w.pushedCommitted {
		w.pushedCommitted = c
	}
	w.mu.Unlock()
	return nil
}

// waitSpace ensures need bytes fit between tail and head, refreshing the
// cached head over RDMA while the ring is full. Ring pressure also forces
// the watermark out, since the applier cannot truncate past it.
func (w *Writer) waitSpace(qp *rdma.QP, need uint64) error {
	for w.tail+need > w.head+w.geo.Size {
		if c := w.committed; c > w.pushedCommitted {
			if err := qp.Write64(w.geo.MarkOff, c); err != nil {
				return err
			}
			w.pushedCommitted = c
		}
		h, err := qp.Read64(w.geo.HeadOff)
		if err != nil {
			return err
		}
		if h == w.head {
			// Applier hasn't caught up; yield and retry.
			sim.Spin(0)
			continue
		}
		w.head = h
	}
	return nil
}

// Applier is the target side of one ring: the auxiliary thread state that
// drains entries, applies them to the backup store, and truncates (zeroes
// consumed space and advances the head) — but only up to the coordinator's
// watermark, so that recovery can still redo from un-truncated entries.
type Applier struct {
	eng   *htm.Engine
	store *memstore.Store
	geo   Geometry
	// replicates tells whether a shard currently belongs to this machine
	// (as primary or backup); records of other shards inside an entry's
	// full write set are skipped. nil means "replicate everything".
	replicates func(shard uint16) bool

	// mu serializes the drain paths: the steady-state auxiliary thread
	// Polls concurrently with reconfiguration's recovery drain (Poll/Scan
	// from the config-watcher goroutine).
	mu sync.Mutex

	head    uint64 // truncation frontier (logical)
	applied uint64 // apply frontier (logical), >= head

	appliedEntries uint64
}

// NewApplier creates the applier for a ring hosted in eng's memory.
func NewApplier(eng *htm.Engine, store *memstore.Store, geo Geometry, replicates func(shard uint16) bool) *Applier {
	return &Applier{eng: eng, store: store, geo: geo, replicates: replicates}
}

// Applied returns the number of entries applied so far.
func (a *Applier) Applied() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.appliedEntries
}

// Head returns the truncation frontier (for recovery accounting).
func (a *Applier) Head() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.head
}

// Poll applies all newly published entries and truncates up to the
// watermark. Returns how many entries were applied.
func (a *Applier) Poll() (int, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	// Apply phase: walk from the apply frontier. The frontier is bounded
	// by head+Size: beyond that, physical positions wrap onto entries
	// that have been applied but not yet zeroed, which must not be
	// re-read as fresh.
	for a.applied < a.head+a.geo.Size {
		entry, adv, err := a.peek(a.applied)
		if err != nil {
			return n, err
		}
		if adv == 0 {
			break
		}
		if entry != nil {
			if err := a.apply(entry); err != nil {
				return n, err
			}
			a.appliedEntries++
			n++
		}
		a.applied += adv
	}
	a.truncate()
	return n, nil
}

// truncate zeroes and releases ring space up to min(applied, watermark).
func (a *Applier) truncate() {
	mark := a.eng.Load64NonTx(a.geo.MarkOff)
	limit := a.applied
	if mark < limit {
		limit = mark
	}
	for a.head < limit {
		entry, adv, err := a.peek(a.head)
		if err != nil || adv == 0 {
			break
		}
		_ = entry
		if a.head+adv > limit {
			break // entry straddles the watermark; keep it
		}
		a.zero(a.head%a.geo.Size, adv)
		a.head += adv
	}
	a.eng.Store64NonTx(a.geo.HeadOff, a.head)
}

// Scan walks every published, un-truncated entry (recovery redo source).
func (a *Applier) Scan(fn func(txnID uint64, recs []Rec) error) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	pos := a.head
	for pos < a.head+a.geo.Size {
		entry, adv, err := a.peek(pos)
		if err != nil {
			return err
		}
		if adv == 0 {
			return nil
		}
		if entry != nil {
			txnID, recs, err := Decode(entry)
			if err != nil {
				return err
			}
			if err := fn(txnID, recs); err != nil {
				return err
			}
		}
		pos += adv
	}
	return nil
}

// peek inspects the entry at logical position pos. Returns (nil, 0, nil)
// when no published entry is there, (nil, skipBytes, nil) for a wrap marker.
func (a *Applier) peek(pos uint64) (entry []byte, advance uint64, err error) {
	off := a.geo.Base + pos%a.geo.Size
	var hdr [8]byte
	a.eng.ReadNonTx(off, 8, hdr[:])
	l := binary.LittleEndian.Uint32(hdr[0:4])
	switch {
	case l == 0:
		return nil, 0, nil
	case l == skipLen:
		return nil, a.geo.Size - pos%a.geo.Size, nil
	}
	if uint64(l) > a.geo.Size/2 || l%sim.CachelineSize != 0 {
		return nil, 0, fmt.Errorf("oplog: corrupt length %d at pos %d", l, pos)
	}
	buf := a.eng.ReadNonTx(off, int(l), nil)
	return buf, uint64(l), nil
}

func (a *Applier) zero(physOff, n uint64) {
	if n == 0 {
		return
	}
	zeros := make([]byte, n)
	a.eng.WriteNonTx(a.geo.Base+physOff, zeros)
}

// apply installs one entry into the backup store inside an HTM transaction
// (mutations on the backup machine are local, §4.3), honoring sequence
// monotonicity for idempotence and skipping shards this machine does not
// replicate.
func (a *Applier) apply(entry []byte) error {
	_, recs, err := Decode(entry)
	if err != nil {
		return err
	}
	for _, r := range recs {
		if a.replicates != nil && !a.replicates(r.Shard) {
			continue
		}
		if err := a.ApplyRec(r); err != nil {
			return err
		}
	}
	return nil
}

// ApplyRec installs one record mutation (exported: recovery forwards foreign
// records to their new primaries, which install them through this path).
func (a *Applier) ApplyRec(r Rec) error {
	tbl := a.store.Table(r.Table)
	if tbl == nil {
		return fmt.Errorf("oplog: unknown table %d", r.Table)
	}
	switch r.Kind {
	case KindDelete:
		err := tbl.Delete(r.Key)
		if err != nil && !errors.Is(err, memstore.ErrKeyNotFound) {
			return err
		}
		return nil
	case KindInsert, KindUpdate:
		off, ok := tbl.Lookup(r.Key)
		if !ok {
			var err error
			off, err = tbl.Insert(r.Key, r.Value)
			if err != nil {
				return err
			}
		}
		return a.installValue(tbl, off, r)
	default:
		return fmt.Errorf("oplog: unknown kind %d", r.Kind)
	}
}

// installValue writes value+seq into the record at off if r.Seq advances it.
// Retries yield to the scheduler: requester-wins conflict resolution can
// livelock two tight loops on an oversubscribed host otherwise.
func (a *Applier) installValue(tbl *memstore.Table, off uint64, r Rec) error {
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			sim.Spin(time.Duration(attempt%64) * 200 * time.Nanosecond)
		}
		tx := a.eng.Begin()
		cur, err := tx.Load64(off + memstore.SeqOff)
		if err != nil {
			continue
		}
		if cur >= r.Seq {
			tx.Commit()
			return nil // already newer (replay / cross-ring race)
		}
		inc, err := tx.Load64(off + memstore.IncOff)
		if err != nil {
			continue
		}
		img := memstore.BuildRecordImage(tbl.Spec.ValueSize, r.Value, inc, r.Seq)
		// Preserve the lock word (first 8 bytes): backup records are
		// never locked, but recovery may be mid-promotion.
		if err := tx.Write(off+8, img[8:]); err != nil {
			continue
		}
		if tx.Commit() == nil {
			return nil
		}
	}
}
