package oplog

import (
	"bytes"
	"testing"
	"testing/quick"

	"drtmr/internal/htm"
	"drtmr/internal/memstore"
	"drtmr/internal/rdma"
	"drtmr/internal/sim"
)

func TestEncodeDecodeRoundtrip(t *testing.T) {
	recs := []Rec{
		{Kind: KindUpdate, Table: 3, Key: 42, Seq: 8, Value: []byte("hello")},
		{Kind: KindInsert, Table: 1, Key: 7, Seq: 2, Value: make([]byte, 100)},
		{Kind: KindDelete, Table: 2, Key: 9, Seq: 4},
	}
	buf := Encode(777, recs)
	if len(buf)%sim.CachelineSize != 0 {
		t.Fatalf("entry not padded: %d", len(buf))
	}
	txnID, got, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if txnID != 777 || len(got) != 3 {
		t.Fatalf("decode: txn=%d n=%d", txnID, len(got))
	}
	for i := range recs {
		if got[i].Kind != recs[i].Kind || got[i].Table != recs[i].Table ||
			got[i].Key != recs[i].Key || got[i].Seq != recs[i].Seq ||
			!bytes.Equal(got[i].Value, recs[i].Value) {
			t.Fatalf("rec %d mismatch: %+v vs %+v", i, got[i], recs[i])
		}
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	f := func(txnID uint64, keys []uint64, blob []byte) bool {
		if len(keys) > 16 {
			keys = keys[:16]
		}
		if len(blob) > 200 {
			blob = blob[:200]
		}
		var recs []Rec
		for i, k := range keys {
			recs = append(recs, Rec{
				Kind: uint8(i%3) + 1, Table: memstore.TableID(i % 4),
				Key: k, Seq: uint64(i * 2), Value: blob,
			})
		}
		got, dec, err := Decode(Encode(txnID, recs))
		if err != nil || got != txnID || len(dec) != len(recs) {
			return false
		}
		for i := range recs {
			if dec[i].Key != recs[i].Key || !bytes.Equal(dec[i].Value, recs[i].Value) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeCorrupt(t *testing.T) {
	if _, _, err := Decode(make([]byte, 4)); err == nil {
		t.Fatal("short entry accepted")
	}
	buf := Encode(1, []Rec{{Kind: KindUpdate, Table: 1, Key: 1, Seq: 2, Value: []byte("x")}})
	buf[5] ^= 0xFF // clobber magic
	if _, _, err := Decode(buf); err == nil {
		t.Fatal("bad magic accepted")
	}
}

// ringFixture builds a two-machine world: node 0 writes a log ring hosted on
// node 1, whose store has one table.
type ringFixture struct {
	net     *rdma.Network
	engs    [2]*htm.Engine
	stores  [2]*memstore.Store
	writer  *Writer
	applier *Applier
	qp      *rdma.QP
	clk     sim.Clock
}

func newRingFixture(t *testing.T, ringSize uint64) *ringFixture {
	t.Helper()
	f := &ringFixture{}
	f.net = rdma.NewNetwork(2, rdma.Config{})
	geo := Geometry{Base: 4096, Size: ringSize, HeadOff: 64, MarkOff: 128}
	for i := 0; i < 2; i++ {
		f.engs[i] = htm.NewEngine(make([]byte, 1<<22), htm.Config{})
		f.net.Attach(rdma.NodeID(i), f.engs[i])
		arena := memstore.NewArena(f.engs[i], geo.Base+geo.Size)
		f.stores[i] = memstore.NewStore(f.engs[i], arena)
		f.stores[i].CreateTable(1, memstore.TableSpec{
			Name: "t", ValueSize: 64, ExpectedRows: 128,
		})
	}
	f.writer = NewWriter(geo)
	f.applier = NewApplier(f.engs[1], f.stores[1], geo, nil)
	f.qp = f.net.NewQP(0, 1, &f.clk)
	return f
}

func val(s string) []byte {
	b := make([]byte, 64)
	copy(b, s)
	return b
}

func TestRingAppendApply(t *testing.T) {
	f := newRingFixture(t, 1<<16)
	entry := Encode(1, []Rec{{Kind: KindInsert, Table: 1, Key: 5, Seq: 2, Value: val("v1")}})
	if err := f.writer.Append(f.qp, entry); err != nil {
		t.Fatal(err)
	}
	n, err := f.applier.Poll()
	if err != nil || n != 1 {
		t.Fatalf("poll: %d %v", n, err)
	}
	tbl := f.stores[1].Table(1)
	off, ok := tbl.Lookup(5)
	if !ok {
		t.Fatal("backup insert missing")
	}
	if !bytes.Equal(tbl.ReadValueNonTx(off), val("v1")) {
		t.Fatal("backup value wrong")
	}
	img := f.engs[1].ReadNonTx(off, tbl.RecBytes, nil)
	if memstore.RecSeq(img) != 2 {
		t.Fatalf("backup seq: %d", memstore.RecSeq(img))
	}
}

func TestApplySeqMonotonic(t *testing.T) {
	f := newRingFixture(t, 1<<16)
	// Apply seq 4 then a stale seq 2: the stale one must not regress.
	e1 := Encode(1, []Rec{{Kind: KindUpdate, Table: 1, Key: 9, Seq: 4, Value: val("new")}})
	e2 := Encode(2, []Rec{{Kind: KindUpdate, Table: 1, Key: 9, Seq: 2, Value: val("old")}})
	if err := f.writer.Append(f.qp, e1); err != nil {
		t.Fatal(err)
	}
	if err := f.writer.Append(f.qp, e2); err != nil {
		t.Fatal(err)
	}
	if _, err := f.applier.Poll(); err != nil {
		t.Fatal(err)
	}
	tbl := f.stores[1].Table(1)
	off, _ := tbl.Lookup(9)
	if !bytes.Equal(tbl.ReadValueNonTx(off), val("new")) {
		t.Fatal("stale update regressed the record")
	}
}

func TestApplyDelete(t *testing.T) {
	f := newRingFixture(t, 1<<16)
	f.writer.Append(f.qp, Encode(1, []Rec{{Kind: KindInsert, Table: 1, Key: 3, Seq: 2, Value: val("x")}}))
	f.writer.Append(f.qp, Encode(2, []Rec{{Kind: KindDelete, Table: 1, Key: 3, Seq: 4}}))
	// Deleting a missing key is tolerated (replay).
	f.writer.Append(f.qp, Encode(3, []Rec{{Kind: KindDelete, Table: 1, Key: 99, Seq: 4}}))
	if _, err := f.applier.Poll(); err != nil {
		t.Fatal(err)
	}
	if _, ok := f.stores[1].Table(1).Lookup(3); ok {
		t.Fatal("delete not applied")
	}
}

func TestRingWrapAround(t *testing.T) {
	// Ring of 4 lines; entries of 2 lines force wraps quickly.
	f := newRingFixture(t, 4*sim.CachelineSize)
	for i := uint64(0); i < 20; i++ {
		entry := Encode(i, []Rec{{Kind: KindUpdate, Table: 1, Key: 1, Seq: (i + 1) * 2, Value: val("big")}})
		if len(entry) != 2*sim.CachelineSize {
			t.Fatalf("unexpected entry size %d", len(entry))
		}
		if err := f.writer.Append(f.qp, entry); err != nil {
			t.Fatal(err)
		}
		// Drain every other append so the writer must observe head
		// movement (the waitSpace path).
		if i%2 == 1 {
			if _, err := f.applier.Poll(); err != nil {
				t.Fatal(err)
			}
		}
	}
	f.applier.Poll()
	tbl := f.stores[1].Table(1)
	off, ok := tbl.Lookup(1)
	if !ok {
		t.Fatal("record missing after wraps")
	}
	img := f.engs[1].ReadNonTx(off, tbl.RecBytes, nil)
	if memstore.RecSeq(img) != 40 {
		t.Fatalf("final seq: %d want 40", memstore.RecSeq(img))
	}
	if f.applier.Applied() != 20 {
		t.Fatalf("applied: %d", f.applier.Applied())
	}
}

func TestRingFullBlocksUntilTruncation(t *testing.T) {
	f := newRingFixture(t, 4*sim.CachelineSize)
	entry := Encode(1, []Rec{{Kind: KindUpdate, Table: 1, Key: 1, Seq: 2, Value: val("a")}})
	if len(entry) != 2*sim.CachelineSize {
		t.Fatalf("fixture expects a half-ring entry, got %d bytes", len(entry))
	}
	if err := f.writer.Append(f.qp, entry); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		// Two more entries: the second of these cannot fit until the
		// applier truncates.
		if err := f.writer.Append(f.qp, Encode(2, []Rec{{Kind: KindUpdate, Table: 1, Key: 1, Seq: 4, Value: val("b")}})); err != nil {
			done <- err
			return
		}
		done <- f.writer.Append(f.qp, Encode(3, []Rec{{Kind: KindUpdate, Table: 1, Key: 1, Seq: 6, Value: val("c")}}))
	}()
	// Second append must block until the applier truncates.
	select {
	case err := <-done:
		t.Fatalf("append to full ring returned early: %v", err)
	default:
	}
	if _, err := f.applier.Poll(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	f.applier.Poll()
	tbl := f.stores[1].Table(1)
	off, _ := tbl.Lookup(1)
	img := f.engs[1].ReadNonTx(off, tbl.RecBytes, nil)
	if memstore.RecSeq(img) != 6 {
		t.Fatalf("seq after unblock: %d", memstore.RecSeq(img))
	}
}

func TestTornAppendInvisible(t *testing.T) {
	// A coordinator that dies after writing payload but before the header
	// leaves nothing visible: simulate by writing only the payload part.
	f := newRingFixture(t, 1<<12)
	entry := Encode(9, []Rec{{Kind: KindInsert, Table: 1, Key: 8, Seq: 2, Value: val("zz")}})
	if len(entry) > sim.CachelineSize {
		f.qp.Write(4096+sim.CachelineSize, entry[sim.CachelineSize:])
	}
	n, err := f.applier.Poll()
	if err != nil || n != 0 {
		t.Fatalf("half-written entry applied: %d %v", n, err)
	}
}
