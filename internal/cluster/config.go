// Package cluster manages the DrTM+R cluster: per-machine resources (HTM
// engine, memory store, NVRAM log rings, NIC), the coordination service used
// to agree on configurations (the paper uses ZooKeeper; zklite here), shard
// placement with primary-backup replication, RDMA-based lease failure
// detection, and the reconfiguration/recovery protocol of §5.2.
package cluster

import (
	"fmt"

	"drtmr/internal/rdma"
)

// ShardID identifies a data partition. Initially shard i is primary on
// machine i; recovery remaps failed shards onto surviving machines, which is
// how the paper's "instance on failed machine is revived on a surviving
// machine" works.
type ShardID uint32

// Config is one committed cluster configuration (a vertical-Paxos ballot):
// an epoch, the set of live machines, and the shard placement.
type Config struct {
	Epoch uint64
	// Alive[node] reports cluster membership. Locks held by non-members
	// are dangling and may be passively released (§5.2).
	Alive []bool
	// Primary[shard] is the machine currently serving the shard.
	Primary []rdma.NodeID
	// Backups[shard] are the f replica holders, in promotion order.
	Backups [][]rdma.NodeID
}

// NewInitialConfig builds epoch-1 placement: shard i primary on machine i,
// backed up on the next f machines in ring order.
func NewInitialConfig(nodes, replicas int) *Config {
	if replicas < 1 {
		replicas = 1
	}
	f := replicas - 1
	if f > nodes-1 {
		f = nodes - 1
	}
	c := &Config{
		Epoch:   1,
		Alive:   make([]bool, nodes),
		Primary: make([]rdma.NodeID, nodes),
		Backups: make([][]rdma.NodeID, nodes),
	}
	for i := 0; i < nodes; i++ {
		c.Alive[i] = true
		c.Primary[i] = rdma.NodeID(i)
		for b := 1; b <= f; b++ {
			c.Backups[i] = append(c.Backups[i], rdma.NodeID((i+b)%nodes))
		}
	}
	return c
}

// NumShards returns the shard count (fixed for the cluster's lifetime).
func (c *Config) NumShards() int { return len(c.Primary) }

// IsMember reports whether node is in the configuration.
func (c *Config) IsMember(node rdma.NodeID) bool {
	return int(node) < len(c.Alive) && c.Alive[node]
}

// PrimaryOf returns the machine serving shard.
func (c *Config) PrimaryOf(shard ShardID) rdma.NodeID { return c.Primary[shard] }

// BackupsOf returns shard's replica holders.
func (c *Config) BackupsOf(shard ShardID) []rdma.NodeID { return c.Backups[shard] }

// WithoutNode derives the successor configuration after dead fails: epoch+1,
// dead removed, its primaries promoted to their first live backup, and dead
// removed from all backup lists. Returns an error if some shard would lose
// its last copy.
func (c *Config) WithoutNode(dead rdma.NodeID) (*Config, error) {
	next := &Config{
		Epoch:   c.Epoch + 1,
		Alive:   append([]bool(nil), c.Alive...),
		Primary: append([]rdma.NodeID(nil), c.Primary...),
		Backups: make([][]rdma.NodeID, len(c.Backups)),
	}
	next.Alive[dead] = false
	for s := range c.Backups {
		for _, b := range c.Backups[s] {
			if b != dead {
				next.Backups[s] = append(next.Backups[s], b)
			}
		}
	}
	for s, p := range next.Primary {
		if p != dead {
			continue
		}
		if len(next.Backups[s]) == 0 {
			return nil, fmt.Errorf("cluster: shard %d lost its last copy", s)
		}
		next.Primary[s] = next.Backups[s][0]
		next.Backups[s] = next.Backups[s][1:]
	}
	return next, nil
}

// clone deep-copies a config (zklite hands out copies so committed
// configurations are immutable).
func (c *Config) clone() *Config {
	n := &Config{
		Epoch:   c.Epoch,
		Alive:   append([]bool(nil), c.Alive...),
		Primary: append([]rdma.NodeID(nil), c.Primary...),
		Backups: make([][]rdma.NodeID, len(c.Backups)),
	}
	for i := range c.Backups {
		n.Backups[i] = append([]rdma.NodeID(nil), c.Backups[i]...)
	}
	return n
}
