package cluster

import (
	"bytes"
	"testing"

	"drtmr/internal/oplog"
)

// FuzzRedoRoundtrip drives decodeRedo with arbitrary payloads (it must
// error on malformed input, never panic) and checks encode/decode is an
// identity on whatever decodes cleanly.
func FuzzRedoRoundtrip(f *testing.F) {
	f.Add(encodeRedo(oplog.Rec{Kind: oplog.KindUpdate, Table: 3, Shard: 1, Key: 42, Seq: 8, Value: []byte("hello")}))
	f.Add(encodeRedo(oplog.Rec{Kind: oplog.KindInsert, Table: 1, Shard: 0, Key: 7, Seq: 2}))
	f.Add(encodeRedo(oplog.Rec{Kind: oplog.KindDelete, Table: 2, Shard: 5, Key: 9, Seq: 4}))
	f.Add([]byte{})
	f.Add([]byte{0xff, 1, 2, 3})
	f.Add(make([]byte, 23))
	f.Add(make([]byte, 24))

	f.Fuzz(func(t *testing.T, buf []byte) {
		r, err := decodeRedo(buf)
		if err != nil {
			return // malformed input must be rejected, not crash
		}
		if r.Kind < oplog.KindUpdate || r.Kind > oplog.KindDelete {
			t.Fatalf("decodeRedo accepted invalid kind %d", r.Kind)
		}
		r2, err := decodeRedo(encodeRedo(r))
		if err != nil {
			t.Fatalf("re-decode of re-encoded record failed: %v", err)
		}
		if r2.Kind != r.Kind || r2.Table != r.Table || r2.Shard != r.Shard ||
			r2.Key != r.Key || r2.Seq != r.Seq || !bytes.Equal(r2.Value, r.Value) {
			t.Fatalf("roundtrip mismatch: %+v vs %+v", r, r2)
		}
	})
}
