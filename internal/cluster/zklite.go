package cluster

import (
	"sync"
	"sync/atomic"

	"drtmr/internal/rdma"
)

// Coordinator is the agreement service for cluster configurations — the role
// ZooKeeper plays in the paper ("DrTM+R leverages ZooKeeper to reach an
// agreement on the current configuration among surviving machines"). Only
// the agreement semantics matter to the protocol: configurations commit
// atomically with strictly increasing epochs, every machine observes the
// same sequence, and concurrent proposals for the same epoch resolve to one
// winner.
type Coordinator struct {
	mu      sync.Mutex
	current *Config
	version atomic.Uint64 // == current.Epoch, readable without the lock
	subs    []chan *Config
	// recovered tracks which members have signalled recovery-done per epoch
	// (the recovery barrier znode): see MarkRecovered/EpochRecovered.
	recovered map[uint64]map[rdma.NodeID]bool
}

// NewCoordinator seeds the service with the initial configuration.
func NewCoordinator(initial *Config) *Coordinator {
	c := &Coordinator{current: initial.clone()}
	c.version.Store(initial.Epoch)
	return c
}

// Current returns the committed configuration (a private copy).
func (c *Coordinator) Current() *Config {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.current.clone()
}

// Epoch returns the committed epoch without copying.
func (c *Coordinator) Epoch() uint64 { return c.version.Load() }

// Propose attempts to commit next, which must have Epoch == current+1
// (compare-and-swap on the configuration, the vertical-Paxos step). Returns
// the now-committed configuration and whether this proposal won. Losing
// proposals (a concurrent machine suspected the same failure first) get the
// winner's configuration back.
func (c *Coordinator) Propose(next *Config) (*Config, bool) {
	c.mu.Lock()
	if next.Epoch != c.current.Epoch+1 {
		cur := c.current.clone()
		c.mu.Unlock()
		return cur, false
	}
	c.current = next.clone()
	c.version.Store(next.Epoch)
	subs := append([]chan *Config(nil), c.subs...)
	cur := c.current.clone()
	c.mu.Unlock()
	for _, ch := range subs {
		select {
		case ch <- cur.clone():
		default: // subscriber is slow; it will poll Current()
		}
	}
	return cur, true
}

// MarkRecovered records that node finished its share of recovery (log-ring
// drain and cross-redo) for epoch — the recovery-done barrier entry of
// §5.2. Idempotent.
func (c *Coordinator) MarkRecovered(epoch uint64, node rdma.NodeID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.recovered == nil {
		c.recovered = make(map[uint64]map[rdma.NodeID]bool)
	}
	set := c.recovered[epoch]
	if set == nil {
		set = make(map[rdma.NodeID]bool)
		c.recovered[epoch] = set
	}
	set[node] = true
	// Prune epochs that can no longer be queried (EpochRecovered only
	// answers for the committed epoch).
	for e := range c.recovered {
		if e+4 < epoch {
			delete(c.recovered, e)
		}
	}
}

// EpochRecovered reports whether every member of the COMMITTED configuration
// has signalled recovery-done for it. Stale epochs answer false: the caller
// is behind and must refresh its configuration before acting on the answer.
func (c *Coordinator) EpochRecovered(epoch uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if epoch != c.current.Epoch {
		return false
	}
	set := c.recovered[epoch]
	for n, alive := range c.current.Alive {
		if alive && !set[rdma.NodeID(n)] {
			return false
		}
	}
	return true
}

// Subscribe returns a channel receiving each newly committed configuration
// (best effort; laggards must poll Current).
func (c *Coordinator) Subscribe() <-chan *Config {
	ch := make(chan *Config, 8)
	c.mu.Lock()
	c.subs = append(c.subs, ch)
	c.mu.Unlock()
	return ch
}
