package cluster

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"drtmr/internal/htm"
	"drtmr/internal/memstore"
	"drtmr/internal/obs"
	"drtmr/internal/oplog"
	"drtmr/internal/rdma"
	"drtmr/internal/sim"
)

// Per-machine NVRAM layout. Line 0 is the null sentinel; the heartbeat word,
// per-ring head/watermark words and the log rings occupy a fixed prefix so
// every machine can compute every peer's infrastructure addresses without
// communication; the record arena takes the rest.
const (
	HeartbeatOff = 1 * sim.CachelineSize
	ringCtlBase  = 2 * sim.CachelineSize // two control lines (head, mark) per source
)

func ringHeadOff(src rdma.NodeID) uint64 {
	return ringCtlBase + uint64(src)*2*sim.CachelineSize
}

func ringMarkOff(src rdma.NodeID) uint64 {
	return ringCtlBase + uint64(src)*2*sim.CachelineSize + sim.CachelineSize
}

// Spec sizes a simulated cluster.
type Spec struct {
	Nodes     int
	Replicas  int // copies per shard (1 = no replication, 3 = paper's f+1)
	MemBytes  int // per-machine NVRAM
	RingBytes int
	HTM       htm.Config
	RDMA      rdma.Config
	// Lease is the failure-detection lease (wall clock); the paper uses a
	// conservative 10ms.
	Lease time.Duration
	// HeartbeatEvery is the detector polling period.
	HeartbeatEvery time.Duration
}

// DefaultSpec is a 6-machine, 3-way-replication cluster shaped like the
// paper's testbed.
func DefaultSpec() Spec {
	return Spec{
		Nodes:          6,
		Replicas:       3,
		MemBytes:       64 << 20,
		RingBytes:      1 << 20,
		RDMA:           rdma.Config{NICBytesPerSec: rdma.NICBandwidth56G},
		Lease:          10 * time.Millisecond,
		HeartbeatEvery: 2 * time.Millisecond,
	}
}

// Machine is one simulated server: engine + store + NIC + log infrastructure
// + configuration cache + auxiliary threads.
type Machine struct {
	ID    rdma.NodeID
	Eng   *htm.Engine
	Store *memstore.Store
	Arena *memstore.Arena

	cluster *Cluster
	cfg     atomic.Pointer[Config]

	// logWriters[dst] appends to the ring this machine owns on machine
	// dst; appliers[src] drains the ring machine src owns here.
	logWriters []*oplog.Writer
	appliers   []*oplog.Applier

	// auxQP[i] is the auxiliary thread's QP to node i (aux work is not
	// charged to any worker's virtual clock).
	auxClk sim.Clock
	auxQPs []*rdma.QP

	handlersMu sync.RWMutex
	handlers   map[uint8]Handler

	pendingMu sync.Mutex
	pending   map[uint64]chan []byte
	nextReqID atomic.Uint64

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
	dead     atomic.Bool
}

// Handler processes one RPC request on the hosting machine and returns the
// reply payload. Handlers run on the machine's auxiliary thread.
type Handler func(from rdma.NodeID, payload []byte) []byte

// Cluster wires Spec.Nodes machines to one fabric and one coordinator.
type Cluster struct {
	Spec     Spec
	Net      *rdma.Network
	Coord    *Coordinator
	Machines []*Machine

	events   chan Event
	obsRec   atomic.Pointer[obs.Recorder]
	recovery recoveryState
}

// Event reports a recovery-timeline milestone (Fig 20's "suspect",
// "config-commit", "recovery-done").
type Event struct {
	Kind string
	Node rdma.NodeID
	At   time.Time
}

// New builds a cluster. Workers are created by the transaction layer; Start
// launches heartbeat/detector/auxiliary threads.
func New(spec Spec) *Cluster {
	if spec.Nodes <= 0 {
		panic("cluster: need at least one node")
	}
	if spec.Replicas <= 0 {
		spec.Replicas = 1
	}
	if spec.MemBytes == 0 {
		spec.MemBytes = 64 << 20
	}
	if spec.RingBytes == 0 {
		spec.RingBytes = 1 << 20
	}
	if spec.Lease == 0 {
		// The paper's conservative lease is 10ms on dedicated cores; the
		// simulator often runs heavily oversubscribed (many simulated
		// machines on few host cores), where a tight lease yields false
		// suspicions. Recovery experiments set 10ms explicitly.
		spec.Lease = 500 * time.Millisecond
	}
	if spec.HeartbeatEvery == 0 {
		spec.HeartbeatEvery = 2 * time.Millisecond
	}
	c := &Cluster{
		Spec:   spec,
		Net:    rdma.NewNetwork(spec.Nodes, spec.RDMA),
		Coord:  NewCoordinator(NewInitialConfig(spec.Nodes, spec.Replicas)),
		events: make(chan Event, 64),
	}
	ringArea := uint64(spec.Nodes) * uint64(spec.RingBytes)
	arenaStart := uint64(ringCtlBase) + uint64(spec.Nodes)*2*sim.CachelineSize
	arenaStart = (arenaStart + 4095) &^ 4095
	ringBase := arenaStart
	arenaStart += ringArea

	initial := c.Coord.Current()
	for i := 0; i < spec.Nodes; i++ {
		eng := htm.NewEngine(make([]byte, sim.AlignUp(spec.MemBytes)), spec.HTM)
		c.Net.Attach(rdma.NodeID(i), eng)
		arena := memstore.NewArena(eng, arenaStart)
		m := &Machine{
			ID:       rdma.NodeID(i),
			Eng:      eng,
			Store:    memstore.NewStore(eng, arena),
			Arena:    arena,
			cluster:  c,
			handlers: make(map[uint8]Handler),
			pending:  make(map[uint64]chan []byte),
			stop:     make(chan struct{}),
		}
		m.cfg.Store(initial)
		c.Machines = append(c.Machines, m)
	}
	// Log infrastructure: machine s owns a ring at the same offset inside
	// every peer.
	for _, m := range c.Machines {
		m.auxQPs = make([]*rdma.QP, spec.Nodes)
		m.logWriters = make([]*oplog.Writer, spec.Nodes)
		m.appliers = make([]*oplog.Applier, spec.Nodes)
		for p := 0; p < spec.Nodes; p++ {
			m.auxQPs[p] = c.Net.NewQP(m.ID, rdma.NodeID(p), &m.auxClk)
			geoOnP := oplog.Geometry{
				Base:    ringBase + uint64(m.ID)*uint64(spec.RingBytes),
				Size:    uint64(spec.RingBytes),
				HeadOff: ringHeadOff(m.ID),
				MarkOff: ringMarkOff(m.ID),
			}
			m.logWriters[p] = oplog.NewWriter(geoOnP)
			geoHere := oplog.Geometry{
				Base:    ringBase + uint64(p)*uint64(spec.RingBytes),
				Size:    uint64(spec.RingBytes),
				HeadOff: ringHeadOff(rdma.NodeID(p)),
				MarkOff: ringMarkOff(rdma.NodeID(p)),
			}
			mm := m
			m.appliers[p] = oplog.NewApplier(m.Eng, m.Store, geoHere, func(shard uint16) bool {
				return mm.Replicates(ShardID(shard))
			})
		}
	}
	return c
}

// Events returns the recovery-milestone stream.
func (c *Cluster) Events() <-chan Event { return c.events }

// SetRecorder attaches an obs recorder to the milestone stream: every emit
// additionally records an obs.EvMilestone instant event stamped with WALL
// time (recovery runs on wall clock — leases and detection are real-time
// mechanisms; see harness.RunRecovery). Milestones come from several machine
// goroutines concurrently, so pass a shared (mutex-guarded) recorder.
func (c *Cluster) SetRecorder(r *obs.Recorder) { c.obsRec.Store(r) }

// milestoneCode maps the event-kind string to its obs milestone code.
func milestoneCode(kind string) (uint8, bool) {
	switch kind {
	case "killed":
		return obs.MilestoneKilled, true
	case "suspect":
		return obs.MilestoneSuspect, true
	case "config-commit":
		return obs.MilestoneConfigCommit, true
	case "recovery-done":
		return obs.MilestoneRecoveryDone, true
	}
	return 0, false
}

func (c *Cluster) emit(kind string, node rdma.NodeID) {
	//drtmr:allow virtualtime milestone events are stamped in observer wall time for the recovery timeline
	now := time.Now()
	if r := c.obsRec.Load(); r != nil {
		if code, ok := milestoneCode(kind); ok {
			ns := now.UnixNano()
			r.Record(obs.EvMilestone, code, uint16(node), 0, 0, ns, ns)
		}
	}
	select {
	case c.events <- Event{Kind: kind, Node: node, At: now}:
	default:
	}
}

// Machine returns machine id.
func (c *Cluster) Machine(id rdma.NodeID) *Machine { return c.Machines[id] }

// Config returns this machine's cached configuration.
func (m *Machine) Config() *Config { return m.cfg.Load() }

// Cluster returns the owning cluster.
func (m *Machine) Cluster() *Cluster { return m.cluster }

// LogWriter returns the writer for this machine's ring on dst.
func (m *Machine) LogWriter(dst rdma.NodeID) *oplog.Writer { return m.logWriters[dst] }

// Applier returns the applier draining src's ring on this machine.
func (m *Machine) Applier(src rdma.NodeID) *oplog.Applier { return m.appliers[src] }

// Replicates reports whether this machine currently holds a copy of shard
// (as primary or backup).
func (m *Machine) Replicates(shard ShardID) bool {
	cfg := m.cfg.Load()
	if int(shard) >= cfg.NumShards() {
		return false
	}
	if cfg.PrimaryOf(shard) == m.ID {
		return true
	}
	for _, b := range cfg.BackupsOf(shard) {
		if b == m.ID {
			return true
		}
	}
	return false
}

// Dead reports whether the machine has been killed.
func (m *Machine) Dead() bool { return m.dead.Load() }

// RegisterHandler installs the RPC handler for a message kind. Kind 0xFF is
// reserved for replies.
func (m *Machine) RegisterHandler(kind uint8, h Handler) {
	if kind == replyKind {
		panic("cluster: kind 0xFF is reserved")
	}
	m.handlersMu.Lock()
	m.handlers[kind] = h
	m.handlersMu.Unlock()
}

const replyKind = 0xFF

// Call sends an RPC to dst's auxiliary thread over the caller's QP and waits
// for the reply. Message cost is charged to the QP's clock; the handler runs
// on the remote machine.
func (m *Machine) Call(qp *rdma.QP, kind uint8, payload []byte, timeout time.Duration) ([]byte, error) {
	reqID := m.nextReqID.Add(1)
	ch := make(chan []byte, 1)
	m.pendingMu.Lock()
	m.pending[reqID] = ch
	m.pendingMu.Unlock()
	defer func() {
		m.pendingMu.Lock()
		delete(m.pending, reqID)
		m.pendingMu.Unlock()
	}()
	buf := make([]byte, 13+len(payload))
	buf[0] = kind
	binary.LittleEndian.PutUint64(buf[1:9], reqID)
	binary.LittleEndian.PutUint32(buf[9:13], uint32(m.ID))
	copy(buf[13:], payload)
	if err := qp.Send(buf); err != nil {
		return nil, err
	}
	select {
	case reply := <-ch:
		return reply, nil
	//drtmr:allow virtualtime RPC timeout is a liveness backstop that only ever aborts, never commits
	case <-time.After(timeout):
		return nil, fmt.Errorf("cluster: rpc kind %d to node %d timed out", kind, qp.Remote())
	case <-m.stop:
		return nil, fmt.Errorf("cluster: machine %d stopping", m.ID)
	}
}

// serveMessages is the auxiliary receive loop: dispatches requests to
// handlers and routes replies to waiting callers.
func (m *Machine) serveMessages() {
	defer m.wg.Done()
	for {
		select {
		case <-m.stop:
			return
		default:
		}
		msg, err := m.cluster.Net.NIC(m.ID).Recv(time.Millisecond)
		if err != nil {
			if err == rdma.ErrNodeDead {
				return
			}
			continue
		}
		if len(msg.Payload) < 13 {
			continue
		}
		kind := msg.Payload[0]
		reqID := binary.LittleEndian.Uint64(msg.Payload[1:9])
		origin := rdma.NodeID(binary.LittleEndian.Uint32(msg.Payload[9:13]))
		body := msg.Payload[13:]
		if kind == replyKind {
			m.pendingMu.Lock()
			ch := m.pending[reqID]
			m.pendingMu.Unlock()
			if ch != nil {
				select {
				case ch <- append([]byte(nil), body...):
				default:
				}
			}
			continue
		}
		m.handlersMu.RLock()
		h := m.handlers[kind]
		m.handlersMu.RUnlock()
		var reply []byte
		if h != nil {
			reply = h(origin, body)
		}
		out := make([]byte, 13+len(reply))
		out[0] = replyKind
		binary.LittleEndian.PutUint64(out[1:9], reqID)
		binary.LittleEndian.PutUint32(out[9:13], uint32(m.ID))
		copy(out[13:], reply)
		// Replies go back on the aux QP to the origin.
		_ = m.auxQPs[origin].Send(out)
	}
}

// runAux drains log rings (truncation threads) and pushes watermarks.
func (m *Machine) runAux() {
	defer m.wg.Done()
	for {
		select {
		case <-m.stop:
			return
		default:
		}
		worked := 0
		for _, a := range m.appliers {
			// The self-ring is real: a coordinator that backs up a
			// remote shard logs to itself over a loop-back QP.
			n, err := a.Poll()
			if err == nil {
				worked += n
			}
		}
		// Push our watermarks out so peers can truncate.
		for dst, w := range m.logWriters {
			if rdma.NodeID(dst) == m.ID || !m.cluster.Net.NIC(rdma.NodeID(dst)).Alive() {
				continue
			}
			_ = w.PushWatermark(m.auxQPs[dst], false)
		}
		if worked == 0 {
			sim.Spin(200 * time.Microsecond)
		}
	}
}

// runHeartbeat bumps this machine's heartbeat word (local store, remote
// machines read it with RDMA).
func (m *Machine) runHeartbeat() {
	defer m.wg.Done()
	tick := m.cluster.Spec.HeartbeatEvery / 2
	if tick <= 0 {
		tick = time.Millisecond
	}
	for {
		select {
		case <-m.stop:
			return
		//drtmr:allow virtualtime heartbeat cadence is liveness machinery outside the deterministic replay scope
		case <-time.After(tick):
			m.Eng.FAA64NonTx(HeartbeatOff, 1)
		}
	}
}

// watchConfig keeps the cached configuration fresh.
func (m *Machine) watchConfig(sub <-chan *Config) {
	defer m.wg.Done()
	for {
		select {
		case <-m.stop:
			return
		case cfg := <-sub:
			if cfg != nil {
				m.applyNewConfig(cfg)
			}
		//drtmr:allow virtualtime config-refresh polling is liveness machinery outside the deterministic replay scope
		case <-time.After(50 * time.Millisecond):
			cfg := m.cluster.Coord.Current()
			if cfg.Epoch > m.cfg.Load().Epoch {
				m.applyNewConfig(cfg)
			}
		}
	}
}

// Start launches every machine's background threads.
func (c *Cluster) Start() {
	for _, m := range c.Machines {
		// The initial epoch needs no log recovery; mark it recovered up
		// front so the dangling-lock fence opens immediately.
		c.Coord.MarkRecovered(c.Coord.Epoch(), m.ID)
		m.wg.Add(4)
		go m.serveMessages()
		go m.runAux()
		go m.runHeartbeat()
		go m.watchConfig(c.Coord.Subscribe())
	}
	c.wgDetectors()
}

// Stop terminates all background threads (for tests and benches).
func (c *Cluster) Stop() {
	for _, m := range c.Machines {
		m.stopOnce.Do(func() { close(m.stop) })
	}
	for _, m := range c.Machines {
		m.wg.Wait()
	}
}

// Kill fail-stops a machine: its NIC goes dark and its threads halt. Memory
// is preserved (battery-backed NVRAM).
func (c *Cluster) Kill(id rdma.NodeID) {
	m := c.Machines[id]
	m.dead.Store(true)
	c.Net.NIC(id).Kill()
	m.stopOnce.Do(func() { close(m.stop) })
	c.emit("killed", id)
}
