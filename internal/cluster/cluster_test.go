package cluster

import (
	"testing"
	"time"

	"drtmr/internal/memstore"
	"drtmr/internal/oplog"
	"drtmr/internal/rdma"
	"drtmr/internal/sim"
)

func testSpec(nodes, replicas int) Spec {
	return Spec{
		Nodes:          nodes,
		Replicas:       replicas,
		MemBytes:       8 << 20,
		RingBytes:      1 << 14,
		Lease:          10 * time.Millisecond,
		HeartbeatEvery: 2 * time.Millisecond,
	}
}

func TestInitialConfigPlacement(t *testing.T) {
	cfg := NewInitialConfig(6, 3)
	if cfg.Epoch != 1 || cfg.NumShards() != 6 {
		t.Fatalf("cfg: %+v", cfg)
	}
	for s := 0; s < 6; s++ {
		if cfg.PrimaryOf(ShardID(s)) != rdma.NodeID(s) {
			t.Fatalf("shard %d primary: %d", s, cfg.PrimaryOf(ShardID(s)))
		}
		b := cfg.BackupsOf(ShardID(s))
		if len(b) != 2 || b[0] != rdma.NodeID((s+1)%6) || b[1] != rdma.NodeID((s+2)%6) {
			t.Fatalf("shard %d backups: %v", s, b)
		}
	}
}

func TestConfigWithoutNode(t *testing.T) {
	cfg := NewInitialConfig(3, 3)
	next, err := cfg.WithoutNode(1)
	if err != nil {
		t.Fatal(err)
	}
	if next.Epoch != 2 || next.IsMember(1) {
		t.Fatalf("next: %+v", next)
	}
	// Shard 1's primary moves to its first backup (node 2).
	if next.PrimaryOf(1) != 2 {
		t.Fatalf("promoted primary: %d", next.PrimaryOf(1))
	}
	// Node 1 removed from all backup lists.
	for s := 0; s < 3; s++ {
		for _, b := range next.BackupsOf(ShardID(s)) {
			if b == 1 {
				t.Fatalf("dead node still backup of %d", s)
			}
		}
	}
	// Without replication, losing a node is unrecoverable.
	solo := NewInitialConfig(2, 1)
	if _, err := solo.WithoutNode(0); err == nil {
		t.Fatal("expected unrecoverable shard error")
	}
}

func TestCoordinatorProposeCAS(t *testing.T) {
	coord := NewCoordinator(NewInitialConfig(3, 2))
	cur := coord.Current()
	n1, _ := cur.WithoutNode(2)
	winner, won := coord.Propose(n1)
	if !won || winner.Epoch != 2 {
		t.Fatalf("first proposal: won=%v epoch=%d", won, winner.Epoch)
	}
	// A stale concurrent proposal for the same epoch must lose and get
	// the winner back.
	n2, _ := cur.WithoutNode(1)
	got, won := coord.Propose(n2)
	if won {
		t.Fatal("stale proposal won")
	}
	if got.Epoch != 2 || got.IsMember(2) {
		t.Fatalf("loser should see winner's config: %+v", got)
	}
	if coord.Epoch() != 2 {
		t.Fatalf("epoch: %d", coord.Epoch())
	}
}

func TestRPCRoundtrip(t *testing.T) {
	c := New(testSpec(2, 1))
	c.Start()
	defer c.Stop()
	c.Machines[1].RegisterHandler(0x42, func(from rdma.NodeID, payload []byte) []byte {
		return append([]byte("echo:"), payload...)
	})
	var clk sim.Clock
	qp := c.Net.NewQP(0, 1, &clk)
	reply, err := c.Machines[0].Call(qp, 0x42, []byte("ping"), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != "echo:ping" {
		t.Fatalf("reply: %q", reply)
	}
}

func TestFailureDetectionAndReconfig(t *testing.T) {
	// A wider lease than testSpec's: the lower bound below compares against
	// wall-clock kill time, so scheduler noise (missed heartbeat polls under
	// full-suite load) must be small relative to the lease.
	spec := testSpec(3, 3)
	spec.Lease = 50 * time.Millisecond
	spec.HeartbeatEvery = 5 * time.Millisecond
	c := New(spec)
	c.Start()
	defer c.Stop()
	time.Sleep(60 * time.Millisecond) // let heartbeats establish
	killAt := time.Now()
	c.Kill(1)
	var suspectAt, commitAt time.Time
	deadline := time.After(2 * time.Second)
	for suspectAt.IsZero() || commitAt.IsZero() {
		select {
		case ev := <-c.Events():
			switch ev.Kind {
			case "suspect":
				if suspectAt.IsZero() {
					suspectAt = ev.At
				}
			case "config-commit":
				commitAt = ev.At
			}
		case <-deadline:
			t.Fatalf("no reconfiguration after kill (suspect=%v commit=%v)",
				suspectAt, commitAt)
		}
	}
	if suspectAt.Sub(killAt) < c.Spec.Lease/2 {
		t.Fatalf("suspected too fast (%v): lease not honored", suspectAt.Sub(killAt))
	}
	// Survivors converge on epoch 2 with node 1 gone and shard 1 promoted.
	waitFor := func(m *Machine) *Config {
		for i := 0; i < 200; i++ {
			if cfg := m.Config(); cfg.Epoch >= 2 {
				return cfg
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("machine %d never saw epoch 2", m.ID)
		return nil
	}
	for _, id := range []rdma.NodeID{0, 2} {
		cfg := waitFor(c.Machines[id])
		if cfg.IsMember(1) {
			t.Fatalf("machine %d still sees node 1 as member", id)
		}
		if cfg.PrimaryOf(1) != 2 {
			t.Fatalf("machine %d: shard 1 primary = %d, want 2", id, cfg.PrimaryOf(1))
		}
	}
}

func TestLogReplicationThroughMachines(t *testing.T) {
	c := New(testSpec(3, 3))
	for _, m := range c.Machines {
		m.Store.CreateTable(1, memstore.TableSpec{Name: "kv", ValueSize: 16, ExpectedRows: 64})
	}
	c.Start()
	defer c.Stop()
	// Machine 0 replicates a shard-0 update to its backups (1 and 2).
	var clk sim.Clock
	val := make([]byte, 16)
	copy(val, "replicated!")
	entry := oplog.Encode(1, []oplog.Rec{{
		Kind: oplog.KindInsert, Table: 1, Shard: 0, Key: 77, Seq: 2, Value: val,
	}})
	for _, b := range []rdma.NodeID{1, 2} {
		qp := c.Net.NewQP(0, b, &clk)
		if err := c.Machines[0].LogWriter(b).Append(qp, entry); err != nil {
			t.Fatal(err)
		}
	}
	// Aux threads should apply within a few polling rounds.
	ok := false
	for i := 0; i < 200 && !ok; i++ {
		ok = true
		for _, b := range []rdma.NodeID{1, 2} {
			if _, found := c.Machines[b].Store.Table(1).Lookup(77); !found {
				ok = false
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !ok {
		t.Fatal("backups never applied the log entry")
	}
}

func TestRecoveryPromotesBackupWithData(t *testing.T) {
	c := New(testSpec(3, 3))
	for _, m := range c.Machines {
		m.Store.CreateTable(1, memstore.TableSpec{Name: "kv", ValueSize: 16, ExpectedRows: 64})
	}
	c.Start()
	defer c.Stop()
	// Shard 1 lives on machine 1; replicate a record to backups 2 and 0.
	var clk sim.Clock
	val := make([]byte, 16)
	copy(val, "survive-me")
	entry := oplog.Encode(5, []oplog.Rec{{
		Kind: oplog.KindInsert, Table: 1, Shard: 1, Key: 500, Seq: 2, Value: val,
	}})
	for _, b := range []rdma.NodeID{2, 0} {
		qp := c.Net.NewQP(1, b, &clk)
		if err := c.Machines[1].LogWriter(b).Append(qp, entry); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(20 * time.Millisecond)
	c.Kill(1)
	// Wait for recovery-done.
	deadline := time.After(2 * time.Second)
	for {
		select {
		case ev := <-c.Events():
			if ev.Kind == "recovery-done" {
				goto recovered
			}
		case <-deadline:
			t.Fatal("recovery never completed")
		}
	}
recovered:
	// New primary of shard 1 is machine 2, and it has the record.
	cfg := c.Coord.Current()
	if cfg.PrimaryOf(1) != 2 {
		t.Fatalf("promoted primary: %d", cfg.PrimaryOf(1))
	}
	off, ok := c.Machines[2].Store.Table(1).Lookup(500)
	if !ok {
		t.Fatal("promoted primary lost the record")
	}
	got := c.Machines[2].Store.Table(1).ReadValueNonTx(off)
	if string(got[:10]) != "survive-me" {
		t.Fatalf("value: %q", got)
	}
}
