package cluster

import (
	"encoding/binary"
	"errors"
	"sync"
	"time"

	"drtmr/internal/memstore"
	"drtmr/internal/oplog"
	"drtmr/internal/rdma"
)

// Failure detection and recovery (§5.2).
//
// Every machine runs a detector thread that reads each peer's heartbeat word
// with one-sided RDMA on a short period. A peer is *suspected* once its
// heartbeat has not advanced (or its NIC is unreachable) for a full lease.
// The suspecting machine proposes the successor configuration through the
// coordination service; the winning proposal commits atomically, survivors
// observe the new epoch, and each machine promoted to primary for an
// orphaned shard performs recovery:
//
//  1. Drain its local log rings, applying every published entry for shards
//     it now replicates (the redo path; entries below coordinators'
//     watermarks were already both applied and truncated).
//  2. Forward records of *other* shards found in published entries to their
//     current primaries (coordinator died between publishing rings, see the
//     oplog package comment) — the cross-redo that closes the partial-
//     replication window.
//  3. Signal recovery-done.
//
// Dangling locks left by the dead machine are released passively by worker
// threads when they encounter a lock whose owner is not in the current
// configuration — that path lives in the transaction layer; this file only
// provides the membership question it asks.

// RPC kinds used by recovery.
const (
	rpcRedo = 0x10 // forward a full log record to its shard's primary
)

type recoveryState struct {
	mu        sync.Mutex
	suspected map[rdma.NodeID]bool
}

// wgDetectors starts one detector per live machine.
func (c *Cluster) wgDetectors() {
	c.recovery.suspected = make(map[rdma.NodeID]bool)
	for _, m := range c.Machines {
		m.wg.Add(1)
		go m.runDetector()
		m.RegisterHandler(rpcRedo, m.handleRedo)
	}
}

// runDetector polls peers' heartbeat words and initiates reconfiguration
// when a lease expires.
func (m *Machine) runDetector() {
	defer m.wg.Done()
	type peerState struct {
		lastBeat uint64
		lastSeen time.Time
	}
	peers := make(map[rdma.NodeID]*peerState)
	for {
		select {
		case <-m.stop:
			return
		//drtmr:allow virtualtime lease-expiry detection runs on wall-clock heartbeats by design
		case <-time.After(m.cluster.Spec.HeartbeatEvery):
		}
		cfg := m.cfg.Load()
		//drtmr:allow virtualtime lease ages are compared against wall-clock heartbeat stamps
		now := time.Now()
		for p := 0; p < m.cluster.Spec.Nodes; p++ {
			pid := rdma.NodeID(p)
			if pid == m.ID || !cfg.IsMember(pid) {
				continue
			}
			ps := peers[pid]
			if ps == nil {
				ps = &peerState{lastSeen: now}
				peers[pid] = ps
			}
			beat, err := m.auxQPs[p].Read64(HeartbeatOff)
			if err == nil && beat != ps.lastBeat {
				ps.lastBeat = beat
				ps.lastSeen = now
				continue
			}
			if now.Sub(ps.lastSeen) >= m.cluster.Spec.Lease {
				m.suspect(pid)
				ps.lastSeen = now // back off before re-suspecting
			}
		}
	}
}

// suspect proposes removing dead from the configuration and, if this
// machine's proposal wins, triggers recovery cluster-wide (each survivor
// reacts to the epoch change it observes).
func (m *Machine) suspect(dead rdma.NodeID) {
	c := m.cluster
	c.recovery.mu.Lock()
	already := c.recovery.suspected[dead]
	c.recovery.suspected[dead] = true
	c.recovery.mu.Unlock()
	if !already {
		c.emit("suspect", dead)
	}
	cur := c.Coord.Current()
	if !cur.IsMember(dead) {
		return // someone already reconfigured
	}
	next, err := cur.WithoutNode(dead)
	if err != nil {
		return // unrecoverable shard; keep the config (operators' problem)
	}
	if _, won := c.Coord.Propose(next); won {
		c.emit("config-commit", dead)
	}
}

// applyNewConfig installs cfg and performs this machine's share of recovery.
func (m *Machine) applyNewConfig(cfg *Config) {
	old := m.cfg.Load()
	if cfg.Epoch <= old.Epoch {
		return
	}
	m.cfg.Store(cfg)
	// Promotion check: shards whose primary moved to us in this epoch.
	promoted := false
	for s := 0; s < cfg.NumShards(); s++ {
		if cfg.Primary[s] == m.ID && old.Primary[s] != m.ID {
			promoted = true
		}
	}
	m.recoverLogs(cfg)
	// Recovery barrier (§5.2): only after EVERY member has drained and
	// redone its rings for this epoch is it safe to passively release locks
	// dangling from the dead machine — a dangling lock may guard a record
	// whose durably-logged updates are still in flight through cross-redo,
	// and releasing early would let a new writer rebuild the same versions
	// over a stale base.
	m.cluster.Coord.MarkRecovered(cfg.Epoch, m.ID)
	if promoted {
		m.cluster.emit("recovery-done", m.ID)
	}
}

// RecoveryComplete reports whether the configuration this machine is running
// under has been fully recovered by all its members. Passive dangling-lock
// release waits for this fence.
func (m *Machine) RecoveryComplete() bool {
	return m.cluster.Coord.EpochRecovered(m.cfg.Load().Epoch)
}

// recoverLogs drains and redoes this machine's rings: local entries for
// shards it replicates are applied; foreign records are forwarded to their
// current primaries.
func (m *Machine) recoverLogs(cfg *Config) {
	for _, a := range m.appliers {
		// Apply everything published (idempotent).
		_, _ = a.Poll()
		// Cross-redo: forward foreign records.
		_ = a.Scan(func(txnID uint64, recs []oplog.Rec) error {
			for _, r := range recs {
				shard := ShardID(r.Shard)
				if m.Replicates(shard) {
					continue // applied above
				}
				primary := cfg.PrimaryOf(shard)
				if primary == m.ID || !cfg.IsMember(primary) {
					continue
				}
				payload := encodeRedo(r)
				_, _ = m.Call(m.auxQPs[primary], rpcRedo, payload, 100*time.Millisecond)
			}
			return nil
		})
	}
}

// handleRedo applies a forwarded log record on the shard's current primary
// (and lets normal replication re-propagate it later if needed).
func (m *Machine) handleRedo(from rdma.NodeID, payload []byte) []byte {
	r, err := decodeRedo(payload)
	if err != nil {
		return []byte{0}
	}
	if !m.Replicates(ShardID(r.Shard)) {
		return []byte{0}
	}
	// Any applier can install records (they share the machine's store).
	if err := m.appliers[(int(m.ID)+1)%len(m.appliers)].ApplyRec(r); err != nil {
		return []byte{0}
	}
	return []byte{1}
}

func encodeRedo(r oplog.Rec) []byte {
	buf := make([]byte, 24+len(r.Value))
	buf[0] = r.Kind
	buf[1] = uint8(r.Table)
	binary.LittleEndian.PutUint16(buf[2:4], r.Shard)
	binary.LittleEndian.PutUint64(buf[8:16], r.Key)
	binary.LittleEndian.PutUint64(buf[16:24], r.Seq)
	copy(buf[24:], r.Value)
	return buf
}

func decodeRedo(buf []byte) (oplog.Rec, error) {
	if len(buf) < 24 {
		return oplog.Rec{}, errShortRedo
	}
	if buf[0] < oplog.KindUpdate || buf[0] > oplog.KindDelete {
		return oplog.Rec{}, errBadRedoKind
	}
	return oplog.Rec{
		Kind:  buf[0],
		Table: memstore.TableID(buf[1]),
		Shard: binary.LittleEndian.Uint16(buf[2:4]),
		Key:   binary.LittleEndian.Uint64(buf[8:16]),
		Seq:   binary.LittleEndian.Uint64(buf[16:24]),
		Value: append([]byte(nil), buf[24:]...),
	}, nil
}

var (
	errShortRedo   = errors.New("cluster: short redo payload")
	errBadRedoKind = errors.New("cluster: redo record has invalid kind")
)
