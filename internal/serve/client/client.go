// Package client is the Go client for drtmr-serve: a connection pool over
// the wire protocol (internal/serve/wire) with per-request deadlines and
// typed abort reconstruction — a shed or deadline failure surfaces as the
// same Reason/Stage/Site taxonomy the engine records server-side.
package client

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"drtmr/internal/serve/wire"
	"drtmr/internal/txn"
)

// Options tunes a Client.
type Options struct {
	// Addr is the server's TCP address.
	Addr string
	// MaxConns caps the pool (default 8). A Call with every connection
	// busy waits for one to free up rather than dialing unboundedly.
	MaxConns int
	// Deadline is the default per-request deadline sent to the server and
	// enforced on the socket (0 = none; per-call deadlines override).
	Deadline time.Duration
	// DialTimeout bounds connection establishment (default 5s).
	DialTimeout time.Duration
}

// AbortError is a typed transaction failure from the server, carrying the
// engine's abort taxonomy across the wire.
type AbortError struct {
	Reason txn.AbortReason
	Stage  uint8
	Site   uint16
	Detail string
}

func (e *AbortError) Error() string {
	s := fmt.Sprintf("serve: abort (%s@%s n%d)", e.Reason, txn.StageName(e.Stage), e.Site)
	if e.Detail != "" {
		s += ": " + e.Detail
	}
	return s
}

// RequestError is a client-side mistake the server rejected (unknown
// procedure, malformed arguments). Not retryable as-is.
type RequestError struct{ Detail string }

func (e *RequestError) Error() string { return "serve: bad request: " + e.Detail }

// ServerError is a server-side failure outside the abort taxonomy.
type ServerError struct{ Detail string }

func (e *ServerError) Error() string { return "serve: server error: " + e.Detail }

// IsBusy reports whether err is an admission-control shed (ServerBusy): the
// request never executed and may be retried after backing off.
func IsBusy(err error) bool {
	var ae *AbortError
	return errors.As(err, &ae) && ae.Reason == txn.AbortServerBusy
}

// IsDeadline reports whether err is a deadline failure — the server-side
// queue-expiry abort or a socket timeout waiting for the reply.
func IsDeadline(err error) bool {
	var ae *AbortError
	if errors.As(err, &ae) && ae.Reason == txn.AbortDeadline {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// pconn is one pooled connection with its reusable read buffer.
type pconn struct {
	nc  net.Conn
	buf []byte
}

// Client is a pooled connection to one drtmr-serve instance. Safe for
// concurrent use; each in-flight Call owns one pooled connection.
type Client struct {
	opts   Options
	nextID atomic.Uint64

	mu     sync.Mutex
	cond   *sync.Cond
	idle   []*pconn
	total  int
	closed bool
}

// New creates a client. Connections are dialed lazily on first use.
func New(o Options) *Client {
	if o.MaxConns <= 0 {
		o.MaxConns = 8
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	c := &Client{opts: o}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Close closes every pooled connection; in-flight calls fail.
func (c *Client) Close() {
	c.mu.Lock()
	c.closed = true
	for _, p := range c.idle {
		//drtmr:allow lockorder teardown: TCP Close tears down the socket without blocking on the peer, and the pool must be drained atomically with the closed flag
		p.nc.Close()
	}
	c.idle = nil
	c.cond.Broadcast()
	c.mu.Unlock()
}

var errClosed = errors.New("serve client: closed")

func (c *Client) acquire() (*pconn, error) {
	c.mu.Lock()
	for {
		if c.closed {
			c.mu.Unlock()
			return nil, errClosed
		}
		if n := len(c.idle); n > 0 {
			p := c.idle[n-1]
			c.idle = c.idle[:n-1]
			c.mu.Unlock()
			return p, nil
		}
		if c.total < c.opts.MaxConns {
			c.total++
			c.mu.Unlock()
			nc, err := net.DialTimeout("tcp", c.opts.Addr, c.opts.DialTimeout)
			if err != nil {
				c.mu.Lock()
				c.total--
				c.cond.Signal()
				c.mu.Unlock()
				return nil, err
			}
			return &pconn{nc: nc}, nil
		}
		c.cond.Wait()
	}
}

// release returns a healthy connection to the pool; broken ones are closed
// and their slot freed for a fresh dial.
func (c *Client) release(p *pconn, healthy bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !healthy || c.closed {
		//drtmr:allow lockorder teardown: TCP Close tears down the socket without blocking on the peer, and total/cond must update atomically with it
		p.nc.Close()
		c.total--
		c.cond.Signal()
		return
	}
	c.idle = append(c.idle, p)
	c.cond.Signal()
}

// roundTrip sends one framed payload and reads the matching reply frame.
func (c *Client) roundTrip(payload []byte, deadline time.Duration) (wire.Msg, error) {
	p, err := c.acquire()
	if err != nil {
		return wire.Msg{}, err
	}
	if deadline > 0 {
		// Socket deadline with headroom over the server-side deadline, so
		// the typed server answer (Deadline/ServerBusy) wins the race
		// against the client's own timer when the server is alive.
		//drtmr:allow virtualtime socket deadlines on a real network client are wall time
		p.nc.SetDeadline(time.Now().Add(deadline + deadline/2 + 100*time.Millisecond))
	} else {
		//drtmr:allow virtualtime socket deadlines on a real network client are wall time
		p.nc.SetDeadline(time.Time{})
	}
	if err := wire.WriteFrame(p.nc, payload); err != nil {
		c.release(p, false)
		return wire.Msg{}, err
	}
	reply, err := wire.ReadFrame(p.nc, p.buf)
	if err != nil {
		c.release(p, false)
		return wire.Msg{}, err
	}
	p.buf = reply[:cap(reply)]
	m, err := wire.Decode(reply)
	if err != nil {
		c.release(p, false)
		return wire.Msg{}, err
	}
	// Copy out of the pooled buffer before the connection is reused.
	m.Payload = append([]byte(nil), m.Payload...)
	m.Args = nil
	c.release(p, true)
	return m, nil
}

// Call executes the named stored procedure with the client's default
// deadline and returns its reply payload.
func (c *Client) Call(proc string, args []byte) ([]byte, error) {
	return c.CallDeadline(proc, args, c.opts.Deadline)
}

// CallDeadline is Call with an explicit per-request deadline (0 = none).
func (c *Client) CallDeadline(proc string, args []byte, deadline time.Duration) ([]byte, error) {
	id := c.nextID.Add(1)
	us := uint64(deadline / time.Microsecond)
	if deadline > 0 && us == 0 {
		us = 1 // the wire's resolution is 1us; round sub-us deadlines up, not off
	}
	if us > 1<<32-1 {
		us = 1<<32 - 1
	}
	payload, err := wire.AppendCall(nil, id, uint32(us), proc, args)
	if err != nil {
		return nil, err
	}
	m, err := c.roundTrip(payload, deadline)
	if err != nil {
		return nil, err
	}
	if m.Kind != wire.KindResult || m.ID != id {
		return nil, fmt.Errorf("serve client: protocol violation: kind %d id %d (want result id %d)", m.Kind, m.ID, id)
	}
	switch m.Status {
	case wire.StatusOK:
		return m.Payload, nil
	case wire.StatusAbort:
		return nil, &AbortError{
			Reason: txn.AbortReason(m.Reason),
			Stage:  m.Stage,
			Site:   m.Site,
			Detail: m.Detail,
		}
	case wire.StatusBadRequest:
		return nil, &RequestError{Detail: m.Detail}
	default:
		return nil, &ServerError{Detail: m.Detail}
	}
}

// Status fetches a live status snapshot as raw JSON (unmarshal into
// serve.Status).
func (c *Client) Status() ([]byte, error) {
	id := c.nextID.Add(1)
	m, err := c.roundTrip(wire.AppendStatusReq(nil, id), c.opts.Deadline)
	if err != nil {
		return nil, err
	}
	if m.Kind != wire.KindStatusResult || m.ID != id {
		return nil, fmt.Errorf("serve client: protocol violation: kind %d id %d (want status id %d)", m.Kind, m.ID, id)
	}
	return m.Payload, nil
}
