package client_test

import (
	"encoding/binary"
	"errors"
	"sync"
	"testing"

	"drtmr/internal/bench/smallbank"
	"drtmr/internal/serve"
	"drtmr/internal/serve/client"
)

func startBank(t *testing.T) string {
	t.Helper()
	cfg := smallbank.Config{AccountsPerNode: 200, Nodes: 2, InitialBalance: 1000}
	db, err := serve.OpenBank(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := serve.New(db, serve.Options{})
	if err := serve.RegisterBank(s, cfg, serve.BankProcs{}); err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return addr.String()
}

// TestPoolBoundsConnections drives more goroutines than pooled connections:
// callers must share the pool (waiting, not dialing past MaxConns) and all
// succeed.
func TestPoolBoundsConnections(t *testing.T) {
	addr := startBank(t)
	cl := client.New(client.Options{Addr: addr, MaxConns: 3})
	defer cl.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 24)
	for g := 0; g < 24; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				reply, err := cl.Call("balance", serve.EncBalanceReq(uint64(g)))
				if err != nil {
					errs <- err
					return
				}
				if binary.LittleEndian.Uint64(reply) != 2000 {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestCloseFailsCalls checks that a closed client errors instead of hanging.
func TestCloseFailsCalls(t *testing.T) {
	addr := startBank(t)
	cl := client.New(client.Options{Addr: addr})
	cl.Close()
	if _, err := cl.Call("balance", serve.EncBalanceReq(0)); err == nil {
		t.Fatal("call on closed client succeeded")
	}
}

// TestTypedErrorsCrossTheWire checks a server rejection reconstructs as the
// right client-side type, distinct from the busy/deadline taxonomy.
func TestTypedErrorsCrossTheWire(t *testing.T) {
	addr := startBank(t)
	cl := client.New(client.Options{Addr: addr})
	defer cl.Close()
	_, err := cl.Call("payment", []byte("short"))
	if err == nil {
		t.Fatal("malformed args accepted")
	}
	var re *client.RequestError
	if !errors.As(err, &re) {
		t.Fatalf("want RequestError, got %T: %v", err, err)
	}
	if client.IsBusy(err) || client.IsDeadline(err) {
		t.Fatalf("bad request misclassified: %v", err)
	}
}
