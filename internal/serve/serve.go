// Package serve is drtmr's network front door: a TCP server that executes
// registered stored procedures (whole transactions) against an embedded
// drtmr cluster, with per-procedure commit-protocol selection, admission
// control with overload shedding, and a live status endpoint.
//
// Architecture: each accepted connection gets a reader goroutine that
// decodes frames (internal/serve/wire), runs admission, and routes the
// request to a per-node FIFO queue; a fixed pool of worker goroutines per
// node — each owning one single-goroutine engine worker — drains the queue
// and executes. Responses are written back on the request's connection
// under a per-connection write lock, so workers never block each other on
// the socket. Status requests are answered directly on the reader goroutine
// from lock-free snapshots (obs LiveRecord/Snapshot): the read path never
// queues behind the commit pipeline.
package serve

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"drtmr"
	"drtmr/internal/obs"
	"drtmr/internal/serve/wire"
	"drtmr/internal/txn"
)

// Options tunes a Server.
type Options struct {
	// WorkersPerNode is the number of executor goroutines (each with its
	// own engine worker) per cluster node. Default 2.
	WorkersPerNode int
	// Admission configures the overload controller.
	Admission AdmissionConfig
	// History turns on per-worker history recording for the
	// strict-serializability checker (HistoryTxns after Close). Meant for
	// the CI serve gate; it grows memory with every committed transaction.
	History bool
}

// request is one admitted call waiting for (or in) execution.
type request struct {
	c        *conn
	id       uint64
	proc     *procEntry
	args     []byte // copied out of the connection's read buffer
	deadline time.Duration
	enq      time.Time
}

// queue is an unbounded FIFO. Unbounded on purpose: boundedness is the
// admission controller's job, and the -admission off ablation needs a queue
// that really does grow without limit so the tail collapse is observable.
type queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []request
	head   int
	closed bool
}

func newQueue() *queue {
	q := &queue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *queue) push(r request) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	q.items = append(q.items, r)
	q.cond.Signal()
	return true
}

func (q *queue) pop() (request, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.head >= len(q.items) && !q.closed {
		q.cond.Wait()
	}
	if q.head >= len(q.items) {
		return request{}, false
	}
	r := q.items[q.head]
	q.items[q.head] = request{} // release the args for GC
	q.head++
	if q.head > 1024 && q.head*2 >= len(q.items) {
		q.items = append(q.items[:0], q.items[q.head:]...)
		q.head = 0
	}
	return r, true
}

func (q *queue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// conn is one client connection: reads happen on its reader goroutine,
// writes from any worker under wmu.
type conn struct {
	nc  net.Conn
	wmu sync.Mutex
}

// writeResult frames and writes one Result message.
func (c *conn) writeResult(id uint64, status, reason, stage uint8, site uint16, detail string, payload []byte) error {
	buf, err := wire.AppendResult(nil, id, status, reason, stage, site, detail, payload)
	if err != nil {
		return err
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	//drtmr:allow lockorder wmu exists to serialize whole frames onto the socket; holding it across the write IS the invariant (interleaved partial frames would corrupt the stream)
	return wire.WriteFrame(c.nc, buf)
}

func (c *conn) writeStatusResult(id uint64, json []byte) error {
	buf := wire.AppendStatusResult(nil, id, json)
	c.wmu.Lock()
	defer c.wmu.Unlock()
	//drtmr:allow lockorder wmu exists to serialize whole frames onto the socket; holding it across the write IS the invariant (interleaved partial frames would corrupt the stream)
	return wire.WriteFrame(c.nc, buf)
}

// liveStats is the server-wide mid-run aggregate the status endpoint
// snapshots: per-procedure wall-latency histograms (LiveRecord), the abort
// matrix (LiveMerge deltas), flat counters, and the hot-key table.
type liveStats struct {
	hist      *obs.TypedHist
	aborts    obs.AbortMatrix
	committed atomic.Uint64
	abortsN   atomic.Uint64
	retries   atomic.Uint64
	fallbacks atomic.Uint64

	mu  sync.Mutex
	hot map[txn.HotKey]uint64
}

// Server is a running drtmr-serve instance.
type Server struct {
	db   *drtmr.DB
	opts Options
	reg  registry
	adm  *admission
	live *liveStats

	queues  []*queue
	nextRR  atomic.Uint64 // round-robin node cursor for homeless requests
	started atomic.Bool
	closed  atomic.Bool
	conns   sync.Map // *conn -> struct{}; closed with the server

	lis     net.Listener
	httpMu  sync.Mutex
	httpLis []net.Listener
	wg      sync.WaitGroup // workers + accept loop + readers + http
	start   time.Time

	// Strict-serializability capture (Options.History).
	ticks   *obs.TickSource
	histMu  sync.Mutex
	history []*obs.HistoryRecorder
}

// New wraps an opened (and loaded) drtmr.DB in a server. Register
// procedures, then Start.
func New(db *drtmr.DB, o Options) *Server {
	if o.WorkersPerNode <= 0 {
		o.WorkersPerNode = 2
	}
	s := &Server{db: db, opts: o}
	if o.History {
		s.ticks = obs.NewTickSource()
	}
	return s
}

// Register adds a stored procedure. Must be called before Start.
func (s *Server) Register(p Proc) error {
	if s.started.Load() {
		return errors.New("serve: Register after Start")
	}
	return s.reg.register(p)
}

// Workers returns the total executor count (nodes × WorkersPerNode).
func (s *Server) Workers() int {
	return len(s.db.Cluster().Machines) * s.opts.WorkersPerNode
}

// Start listens on addr (e.g. "127.0.0.1:0"), spawns the executor pool, and
// begins accepting connections. Returns the bound address.
func (s *Server) Start(addr string) (net.Addr, error) {
	if s.started.Swap(true) {
		return nil, errors.New("serve: already started")
	}
	nodes := len(s.db.Cluster().Machines)
	s.adm = newAdmission(s.opts.Admission, nodes*s.opts.WorkersPerNode)
	s.live = &liveStats{
		hist: obs.NewTypedHist(s.reg.names()...),
		hot:  make(map[txn.HotKey]uint64),
	}
	s.start = now()
	s.queues = make([]*queue, nodes)
	for n := range s.queues {
		s.queues[n] = newQueue()
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.lis = lis
	for n := 0; n < nodes; n++ {
		for i := 0; i < s.opts.WorkersPerNode; i++ {
			s.wg.Add(1)
			go s.workerLoop(n)
		}
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return lis.Addr(), nil
}

// Addr returns the listener address (nil before Start).
func (s *Server) Addr() net.Addr {
	if s.lis == nil {
		return nil
	}
	return s.lis.Addr()
}

// Close stops accepting, drains nothing (queued requests are abandoned:
// their connections are closing anyway), waits for workers, and closes the
// cluster. Safe to call once.
func (s *Server) Close() {
	if s.closed.Swap(true) {
		return
	}
	if s.lis != nil {
		s.lis.Close()
	}
	s.httpMu.Lock()
	for _, l := range s.httpLis {
		//drtmr:allow lockorder shutdown: Listener.Close unblocks Accept without waiting on any peer; httpMu only orders it against listener registration
		l.Close()
	}
	s.httpMu.Unlock()
	s.conns.Range(func(k, _ any) bool {
		k.(*conn).nc.Close()
		return true
	})
	for _, q := range s.queues {
		q.close()
	}
	s.wg.Wait()
	s.db.Close()
}

// HistoryTxns returns every recorded transaction ordered by invocation tick
// (empty unless Options.History). Call after the load finishes: recorders
// are only safe to read once their workers are idle.
func (s *Server) HistoryTxns() []obs.HistTxn {
	s.histMu.Lock()
	defer s.histMu.Unlock()
	var out []obs.HistTxn
	for _, h := range s.history {
		out = append(out, h.Txns()...)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Invoke < out[j-1].Invoke; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		nc, err := s.lis.Accept()
		if err != nil {
			return // listener closed
		}
		c := &conn{nc: nc}
		s.conns.Store(c, struct{}{})
		s.wg.Add(1)
		go s.readLoop(c)
	}
}

// route picks the executing node for a call: the procedure's home node when
// it has one (worker-local data), round-robin otherwise.
func (s *Server) route(e *procEntry, args []byte) int {
	if e.Home != nil {
		if n, ok := e.Home(args); ok && n >= 0 && n < len(s.queues) {
			return n
		}
	}
	return int(s.nextRR.Add(1)) % len(s.queues)
}

// readLoop is a connection's reader: decode, admit, route. Malformed frames
// close the connection (the protocol is not self-synchronizing); unknown
// procedures and sheds are per-request errors on a healthy connection.
func (s *Server) readLoop(c *conn) {
	defer s.wg.Done()
	defer s.conns.Delete(c)
	defer c.nc.Close()
	var buf []byte
	for {
		payload, err := wire.ReadFrame(c.nc, buf)
		if err != nil {
			return // EOF, peer reset, or framing violation
		}
		buf = payload[:cap(payload)]
		m, err := wire.Decode(payload)
		if err != nil {
			return
		}
		switch m.Kind {
		case wire.KindStatus:
			// Served inline on the reader: a snapshot read must never
			// queue behind (or get shed with) the write path.
			if err := c.writeStatusResult(m.ID, s.statusJSON()); err != nil {
				return
			}
		case wire.KindCall:
			e := s.reg.lookup(m.Proc)
			if e == nil {
				if err := c.writeResult(m.ID, wire.StatusBadRequest, 0, 0, 0,
					fmt.Sprintf("unknown procedure %q", m.Proc), nil); err != nil {
					return
				}
				continue
			}
			node := s.route(e, m.Args)
			deadline := time.Duration(m.DeadlineUs) * time.Microsecond
			if shed := s.adm.admit(node, deadline); shed != nil {
				s.live.aborts.LiveRecord(uint8(shed.Reason), shed.Stage, int(shed.Site))
				if err := c.writeResult(m.ID, wire.StatusAbort, uint8(shed.Reason),
					shed.Stage, shed.Site, shed.Detail, nil); err != nil {
					return
				}
				continue
			}
			args := make([]byte, len(m.Args))
			copy(args, m.Args)
			req := request{c: c, id: m.ID, proc: e, args: args, deadline: deadline, enq: now()}
			if !s.queues[node].push(req) {
				s.adm.finish(0)
				return // server closing
			}
		default:
			return // clients must not send Result/StatusResult
		}
	}
}

// statsPublishEvery is how many requests a worker executes between folding
// its private engine stats into the live aggregate. Small enough that the
// status endpoint is fresh, large enough that publishing (an atomic sweep
// of the abort matrix) stays off the per-request path.
const statsPublishEvery = 32

// workerLoop drains one node's queue on a dedicated engine worker.
func (s *Server) workerLoop(node int) {
	defer s.wg.Done()
	sess := s.db.Session(drtmr.NodeID(node))
	w := sess.Worker()
	if s.ticks != nil {
		h := w.EnableHistory(s.ticks)
		s.histMu.Lock()
		s.history = append(s.history, h)
		s.histMu.Unlock()
	}
	var prev txn.Stats
	prevHot := make(map[txn.HotKey]uint64)
	sincePublish := 0
	publish := func() {
		st := &w.Stats
		s.live.committed.Add(st.Committed - prev.Committed)
		s.live.retries.Add(st.Retries - prev.Retries)
		s.live.fallbacks.Add(st.Fallbacks - prev.Fallbacks)
		var ab, prevAb uint64
		for _, n := range st.Aborts {
			ab += n
		}
		for _, n := range prev.Aborts {
			prevAb += n
		}
		s.live.abortsN.Add(ab - prevAb)
		s.live.aborts.LiveMerge(&st.AbortCells, &prev.AbortCells)
		prev.Committed, prev.Retries, prev.Fallbacks = st.Committed, st.Retries, st.Fallbacks
		prev.Aborts = st.Aborts
		prev.AbortCells = st.AbortCells
		if len(st.KeyAborts) > 0 {
			s.live.mu.Lock()
			for k, n := range st.KeyAborts {
				if d := n - prevHot[k]; d != 0 {
					s.live.hot[k] += d
					prevHot[k] = n
				}
			}
			s.live.mu.Unlock()
		}
	}
	defer publish()
	for {
		req, ok := s.queues[node].pop()
		if !ok {
			return
		}
		if req.deadline > 0 {
			if waited := since(req.enq); waited > req.deadline {
				s.adm.expire()
				e := &txn.Error{
					Reason: txn.AbortDeadline,
					Stage:  txn.StageAdmission,
					Site:   uint16(node),
					Detail: fmt.Sprintf("deadline %s expired after %s in queue", req.deadline, waited),
				}
				s.live.aborts.LiveRecord(uint8(e.Reason), e.Stage, int(e.Site))
				s.respond(req, nil, e)
				s.adm.finish(0)
				continue
			}
		}
		w.Protocol = req.proc.Protocol
		begin := now()
		reply, err := req.proc.Fn(w, req.args)
		svc := since(begin)
		s.live.hist.LiveRecord(req.proc.idx, svc.Nanoseconds())
		s.respond(req, reply, err)
		s.adm.finish(svc)
		if sincePublish++; sincePublish >= statsPublishEvery {
			publish()
			sincePublish = 0
		}
	}
}

// respond writes a request's Result. Write errors are swallowed: the client
// is gone, and its remaining queued requests will fail the same way.
func (s *Server) respond(req request, reply []byte, err error) {
	switch {
	case err == nil:
		_ = req.c.writeResult(req.id, wire.StatusOK, 0, 0, 0, "", reply)
	default:
		var te *txn.Error
		if errors.As(err, &te) {
			_ = req.c.writeResult(req.id, wire.StatusAbort, uint8(te.Reason),
				te.Stage, te.Site, te.Detail, nil)
			return
		}
		status := wire.StatusError
		if errors.Is(err, drtmr.ErrNotFound) || errors.Is(err, errBadArgs) {
			status = wire.StatusBadRequest
		}
		_ = req.c.writeResult(req.id, uint8(status), 0, 0, 0, err.Error(), nil)
	}
}

// errBadArgs marks malformed stored-procedure arguments (StatusBadRequest
// on the wire, like an unknown procedure).
var errBadArgs = errors.New("serve: malformed procedure arguments")
