// Wall-clock access for the serve tree, centralized so every use is one of
// a handful of audited sites. internal/serve is on drtmr-vet's virtualtime
// list like the protocol packages — but unlike them it is a real network
// server: request deadlines, service-time EWMAs, and open-loop arrival
// schedules are wall-time quantities by design. Every helper below carries
// its own //drtmr:allow so a new raw time.Now sneaking in elsewhere in the
// tree still fails the vet gate.
package serve

import "time"

// now returns the current wall-clock instant.
func now() time.Time {
	//drtmr:allow virtualtime serve is a real network server; deadlines and service times are wall time
	return time.Now()
}

// since returns the wall time elapsed since t.
func since(t time.Time) time.Duration {
	//drtmr:allow virtualtime wall-clock service-time and queue-wait measurement for a real server
	return time.Since(t)
}

// sleep blocks the calling goroutine for wall duration d (no-op if d <= 0).
func sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	//drtmr:allow virtualtime open-loop fleet pacing sleeps real time between scheduled arrivals
	time.Sleep(d)
}
