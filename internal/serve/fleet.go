package serve

import (
	"errors"
	"math"
	"time"

	"drtmr/internal/obs"
	"drtmr/internal/serve/client"
	"drtmr/internal/sim"
)

// FleetOptions shapes an open-loop client fleet: arrivals come from a
// Poisson process at Rate regardless of how the server is doing (no
// coordinated omission — a slow server faces the same offered load), with
// Zipfian key skew over the bank's accounts.
type FleetOptions struct {
	// Addr is the drtmr-serve TCP address.
	Addr string
	// Users is the number of concurrent client goroutines (-fleet N). It
	// bounds in-flight requests, not the arrival rate: arrivals keep their
	// schedule and queue for a free user, and latency is measured from the
	// scheduled arrival, so user starvation shows up as latency.
	Users int
	// Rate is the offered load in calls/second (-rate R). 0 means
	// closed-loop: each user issues back-to-back.
	Rate float64
	// Calls is the total number of calls to issue.
	Calls int
	// Skew is the Zipf theta over accounts (-skew z; 0 = uniform).
	Skew float64
	// Accounts is the key-space size (AccountsPerNode × Nodes).
	Accounts int
	// Deadline is the per-request deadline handed to the server (0 = none).
	Deadline time.Duration
	// ReadFrac / DepositFrac / AuditFrac split the mix: balance reads,
	// deposit credits, audit sweeps, remainder payments.
	ReadFrac, DepositFrac, AuditFrac float64
	// AuditSpan is the accounts per audit sweep (default 256). Audits are
	// the expensive calls: span record pairs each, so service time — not
	// the wire — is what saturates under audit-heavy mixes.
	AuditSpan int
	// Seed makes the arrival schedule and key sequence reproducible.
	Seed uint64
}

// FleetResult is the fleet's accounting. Every issued call lands in exactly
// one outcome bucket; Dropped is the difference between Offered and the
// bucket sum and must be zero — a nonzero value means a request vanished
// without a typed answer.
type FleetResult struct {
	Offered      uint64
	OK           uint64
	ShedBusy     uint64 // typed ServerBusy (admission shed)
	ShedDeadline uint64 // typed Deadline (expired in queue) or socket timeout
	BadRequest   uint64
	Errors       uint64 // transport/server errors (connection died, ...)
	Dropped      uint64

	// Lat is the committed calls' sojourn time from *scheduled* arrival to
	// completion (wall ns): queueing for a user slot, the wire, admission,
	// the server queue, and execution all count.
	Lat     obs.Histogram
	Elapsed time.Duration
}

// call is one scheduled arrival: what to send and when it was due.
type fleetCall struct {
	proc string
	args []byte
	due  time.Time
}

// RunFleet drives one open-loop load run against a live server.
func RunFleet(o FleetOptions) FleetResult {
	if o.Users <= 0 {
		o.Users = 8
	}
	if o.Accounts <= 0 {
		o.Accounts = 1000
	}
	cl := client.New(client.Options{Addr: o.Addr, MaxConns: o.Users, Deadline: o.Deadline})
	defer cl.Close()

	rng := sim.NewRand(o.Seed ^ 0xF1EE7)
	var res FleetResult
	var lat obs.Histogram

	type tally struct{ ok, shedBusy, shedDeadline, badReq, errs uint64 }
	tallies := make([]tally, o.Users)

	// The arrival queue holds every not-yet-picked-up call, so the pacer
	// never blocks on slow users (open loop).
	queue := make(chan fleetCall, o.Calls+1)
	start := now()
	due := start
	for i := 0; i < o.Calls; i++ {
		if o.Rate > 0 {
			// Poisson interarrival: Exp(rate) = -ln(U)/rate.
			gap := -math.Log(1-rng.Float64()) / o.Rate
			due = due.Add(time.Duration(gap * float64(time.Second)))
		}
		acct1 := uint64(rng.Zipf(o.Accounts, o.Skew))
		c := fleetCall{due: due}
		switch p := rng.Float64(); {
		case p < o.ReadFrac:
			c.proc, c.args = "balance", EncBalanceReq(acct1)
		case p < o.ReadFrac+o.DepositFrac:
			c.proc, c.args = "deposit", EncDeposit(acct1, uint64(1+rng.Intn(100)))
		case p < o.ReadFrac+o.DepositFrac+o.AuditFrac:
			span := o.AuditSpan
			if span <= 0 {
				span = 256
			}
			// Sweeps start uniformly, not at the Zipf-hot keys: an audit
			// covers a range, and uniform starts spread the expensive calls
			// across every node's executor pool instead of piling them all
			// onto the hot shard.
			c.proc, c.args = "audit", EncAudit(uint64(rng.Intn(o.Accounts)), uint64(span))
		default:
			acct2 := uint64(rng.Zipf(o.Accounts, o.Skew))
			if acct2 == acct1 {
				acct2 = (acct1 + 1) % uint64(o.Accounts)
			}
			c.proc, c.args = "payment", EncPayment(acct1, acct2, uint64(1+rng.Intn(100)))
		}
		queue <- c
	}
	close(queue)
	res.Offered = uint64(o.Calls)

	done := make(chan struct{})
	for u := 0; u < o.Users; u++ {
		go func(t *tally) {
			defer func() { done <- struct{}{} }()
			for c := range queue {
				sleep(c.due.Sub(now())) // hold to the arrival schedule
				_, err := cl.Call(c.proc, c.args)
				switch {
				case err == nil:
					t.ok++
					lat.LiveRecord(since(c.due).Nanoseconds())
				case client.IsBusy(err):
					t.shedBusy++
				case client.IsDeadline(err):
					t.shedDeadline++
				default:
					var re *client.RequestError
					if errors.As(err, &re) {
						t.badReq++
					} else {
						t.errs++
					}
				}
			}
		}(&tallies[u])
	}
	for u := 0; u < o.Users; u++ {
		<-done
	}
	res.Elapsed = since(start)
	for _, t := range tallies {
		res.OK += t.ok
		res.ShedBusy += t.shedBusy
		res.ShedDeadline += t.shedDeadline
		res.BadRequest += t.badReq
		res.Errors += t.errs
	}
	res.Lat = lat.Snapshot()
	res.Dropped = res.Offered - (res.OK + res.ShedBusy + res.ShedDeadline + res.BadRequest + res.Errors)
	return res
}
