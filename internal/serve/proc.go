package serve

import (
	"fmt"
	"sort"
	"sync"

	"drtmr/internal/txn"
)

// Proc is a stored procedure: a whole transaction the server executes on a
// worker homed near the data, mirroring the bench txn shape (one func, one
// retry loop, typed aborts). Clients name it over the wire; the body never
// crosses the network.
type Proc struct {
	// Name is the wire identifier (<= 255 bytes).
	Name string
	// Fn executes the procedure on a single-goroutine engine worker. It
	// returns the reply payload, or a *txn.Error for a typed abort, or any
	// other error for a bad-request/user failure. Fn must be idempotent up
	// to its writes (it runs under the worker's retry loop).
	Fn func(w *txn.Worker, args []byte) ([]byte, error)
	// Protocol, when non-empty, selects the commit protocol for this
	// procedure ("drtmr", "farm") — set per request on the worker, so two
	// procedures on one server can commit through different pipelines.
	Protocol string
	// Home, when non-nil, routes a request to the node that owns its hot
	// record (args -> node), so the executing worker is local to the data.
	// Requests without a home are spread round-robin.
	Home func(args []byte) (node int, ok bool)
}

// procEntry is a registered procedure plus its dense index — the label used
// for per-procedure latency histograms (obs.TypedHist type axis).
type procEntry struct {
	Proc
	idx int
}

// registry maps procedure names to entries. Registration happens before
// Start; lookups after are lock-free reads of an immutable map would be
// nicer, but a RWMutex keeps misuse (late Register) safe instead of racy.
type registry struct {
	mu     sync.RWMutex
	byName map[string]*procEntry
	order  []*procEntry
}

func (r *registry) register(p Proc) error {
	if p.Name == "" || len(p.Name) > 255 {
		return fmt.Errorf("serve: invalid procedure name %q", p.Name)
	}
	if p.Fn == nil {
		return fmt.Errorf("serve: procedure %q has no body", p.Name)
	}
	if p.Protocol != "" {
		if _, ok := txn.ProtocolByName(p.Protocol); !ok {
			return fmt.Errorf("serve: procedure %q names unknown protocol %q", p.Name, p.Protocol)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byName == nil {
		r.byName = make(map[string]*procEntry)
	}
	if _, dup := r.byName[p.Name]; dup {
		return fmt.Errorf("serve: procedure %q already registered", p.Name)
	}
	e := &procEntry{Proc: p, idx: len(r.order)}
	r.byName[p.Name] = e
	r.order = append(r.order, e)
	return nil
}

func (r *registry) lookup(name string) *procEntry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.byName[name]
}

// names returns the registered procedure names in registration (index)
// order — the TypedHist label vector.
func (r *registry) names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.order))
	for i, e := range r.order {
		out[i] = e.Name
	}
	return out
}

// sortedNames returns the names alphabetically (status JSON determinism).
func (r *registry) sortedNames() []string {
	out := r.names()
	sort.Strings(out)
	return out
}
