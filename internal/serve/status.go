package serve

import (
	"encoding/json"
	"net"
	"net/http"
	"sort"

	"drtmr/internal/txn"
)

// Status is one point-in-time snapshot of a running server, shipped as JSON
// over the wire (KindStatus) and over plain HTTP (/statusz). Every quantity
// comes from the lock-free live aggregates (obs Snapshot), so taking it
// perturbs neither the commit pipeline nor the admission queue.
type Status struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Workers       int     `json:"workers"`

	// Engine-side totals (published by workers every statsPublishEvery
	// requests, so they can trail the wire counters slightly).
	Committed uint64 `json:"committed"`
	Aborts    uint64 `json:"aborts"`
	Retries   uint64 `json:"retries"`
	Fallbacks uint64 `json:"fallbacks"`

	Admission AdmissionStatus `json:"admission"`
	Procs     []ProcStatus    `json:"procs"`
	AbortTop  []AbortCell     `json:"abort_top"`
	HotKeys   []HotKey        `json:"hot_keys"`
}

// AdmissionStatus is the admission controller's counters.
type AdmissionStatus struct {
	Disabled      bool   `json:"disabled"`
	QueueDepth    int64  `json:"queue_depth"`
	Watermark     int64  `json:"watermark"`
	SvcEWMANanos  int64  `json:"svc_ewma_ns"`
	Admitted      uint64 `json:"admitted"`
	ShedBusy      uint64 `json:"shed_busy"`
	ShedHopeless  uint64 `json:"shed_hopeless"`
	ExpiredQueued uint64 `json:"expired_queued"`
}

// ProcStatus is one procedure's wall-latency summary.
type ProcStatus struct {
	Name     string  `json:"name"`
	Protocol string  `json:"protocol"`
	Count    uint64  `json:"count"`
	MeanUs   float64 `json:"mean_us"`
	P50Us    float64 `json:"p50_us"`
	P99Us    float64 `json:"p99_us"`
}

// AbortCell is one reason×stage×site cell of the live abort matrix.
type AbortCell struct {
	Reason string `json:"reason"`
	Stage  string `json:"stage"`
	Site   int    `json:"site"`
	Count  uint64 `json:"count"`
}

// HotKey is one entry of the hot-key top-K.
type HotKey struct {
	Table  int    `json:"table"`
	Key    uint64 `json:"key"`
	Aborts uint64 `json:"aborts"`
}

// statusTopK bounds the abort-cell and hot-key lists in a snapshot.
const statusTopK = 10

// Snapshot assembles a Status from the live aggregates. Successive
// snapshots are monotone in every counter.
func (s *Server) Snapshot() Status {
	st := Status{
		UptimeSeconds: since(s.start).Seconds(),
		Workers:       s.Workers(),
		Committed:     s.live.committed.Load(),
		Aborts:        s.live.abortsN.Load(),
		Retries:       s.live.retries.Load(),
		Fallbacks:     s.live.fallbacks.Load(),
		Admission: AdmissionStatus{
			Disabled:      s.adm.disabled,
			QueueDepth:    s.adm.depth.Load(),
			Watermark:     s.adm.maxQueue,
			SvcEWMANanos:  s.adm.svcEWMA.Load(),
			Admitted:      s.adm.admitted.Load(),
			ShedBusy:      s.adm.shedBusy.Load(),
			ShedHopeless:  s.adm.shedHopeless.Load(),
			ExpiredQueued: s.adm.expired.Load(),
		},
	}
	hist := s.live.hist.Snapshot()
	s.reg.mu.RLock()
	for i, e := range s.reg.order {
		h := &hist.H[i]
		st.Procs = append(st.Procs, ProcStatus{
			Name:     e.Name,
			Protocol: e.Protocol,
			Count:    h.Count(),
			MeanUs:   h.Mean() / 1e3,
			P50Us:    h.Quantile(0.50) / 1e3,
			P99Us:    h.Quantile(0.99) / 1e3,
		})
	}
	s.reg.mu.RUnlock()

	am := s.live.aborts.Snapshot()
	cells := am.Cells()
	if len(cells) > statusTopK {
		cells = cells[:statusTopK]
	}
	for _, c := range cells {
		st.AbortTop = append(st.AbortTop, AbortCell{
			Reason: txn.AbortReason(c.Reason).String(),
			Stage:  txn.StageName(c.Stage),
			Site:   c.Site,
			Count:  c.Count,
		})
	}

	s.live.mu.Lock()
	hot := make([]HotKey, 0, len(s.live.hot))
	for k, n := range s.live.hot {
		hot = append(hot, HotKey{Table: int(k.Table), Key: k.Key, Aborts: n})
	}
	s.live.mu.Unlock()
	sort.Slice(hot, func(i, j int) bool {
		if hot[i].Aborts != hot[j].Aborts {
			return hot[i].Aborts > hot[j].Aborts
		}
		if hot[i].Table != hot[j].Table {
			return hot[i].Table < hot[j].Table
		}
		return hot[i].Key < hot[j].Key
	})
	if len(hot) > statusTopK {
		hot = hot[:statusTopK]
	}
	st.HotKeys = hot
	return st
}

// statusJSON marshals a Snapshot (the KindStatus reply body).
func (s *Server) statusJSON() []byte {
	b, err := json.Marshal(s.Snapshot())
	if err != nil {
		// Status has no unmarshalable fields; this is unreachable, but a
		// status endpoint must never take the server down.
		return []byte(`{"error":"snapshot marshal failed"}`)
	}
	return b
}

// StartHTTP serves GET /statusz (the same JSON as the wire status) on addr.
// Returns the bound address; the listener closes with the server.
func (s *Server) StartHTTP(addr string) (net.Addr, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write(s.statusJSON())
	})
	srv := &http.Server{Handler: mux}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		srv.Serve(lis)
	}()
	s.httpMu.Lock()
	s.httpLis = append(s.httpLis, lis)
	s.httpMu.Unlock()
	return lis.Addr(), nil
}
