package serve

import (
	"fmt"
	"sync/atomic"
	"time"

	"drtmr/internal/txn"
)

// AdmissionConfig tunes the server's admission controller.
type AdmissionConfig struct {
	// Disabled turns shedding off entirely: every request queues, however
	// deep the backlog — the tail-collapse ablation (-admission off).
	Disabled bool
	// MaxQueue is the queue-depth watermark: a request arriving with this
	// many admitted-but-unfinished requests already in the system is shed
	// with ServerBusy. 0 derives a default from the worker count.
	MaxQueue int
}

// defaultQueuePerWorker sizes the default watermark: enough backlog to ride
// out bursts (a queue shorter than a few service times per worker sheds
// needlessly), short enough that queueing delay stays bounded near
// saturation instead of collapsing the tail.
const defaultQueuePerWorker = 32

// admission is the server-side overload controller. Two gates, checked at
// arrival on the connection-reader goroutine so a shed costs one frame
// write and never touches a worker:
//
//	busy:     in-system depth >= watermark               -> ServerBusy
//	hopeless: depth/workers * EWMA(service) > deadline   -> ServerBusy
//
// The second gate is deadline-aware shedding: even below the watermark,
// a request whose projected queue wait already exceeds its own deadline is
// rejected fast — the client learns in one round trip instead of burning a
// queue slot to produce a guaranteed Deadline failure later. Requests that
// pass admission but expire before a worker picks them up are failed with
// Deadline at dequeue (counted separately as expired).
type admission struct {
	disabled bool
	maxQueue int64
	workers  int64

	depth   atomic.Int64 // admitted, response not yet written
	svcEWMA atomic.Int64 // smoothed service time, ns (0 until first sample)

	admitted     atomic.Uint64
	shedBusy     atomic.Uint64
	shedHopeless atomic.Uint64
	expired      atomic.Uint64
}

func newAdmission(cfg AdmissionConfig, workers int) *admission {
	a := &admission{disabled: cfg.Disabled, workers: int64(workers)}
	a.maxQueue = int64(cfg.MaxQueue)
	if a.maxQueue <= 0 {
		a.maxQueue = int64(workers * defaultQueuePerWorker)
	}
	return a
}

// admit decides a request's fate at arrival. nil means admitted (the
// in-system depth is already incremented; the caller must eventually call
// finish). A non-nil *txn.Error is the typed shed the caller writes back.
func (a *admission) admit(node int, deadline time.Duration) *txn.Error {
	if a.disabled {
		a.depth.Add(1)
		a.admitted.Add(1)
		return nil
	}
	d := a.depth.Load()
	if d >= a.maxQueue {
		a.shedBusy.Add(1)
		return &txn.Error{
			Reason: txn.AbortServerBusy,
			Stage:  txn.StageAdmission,
			Site:   uint16(node),
			Detail: fmt.Sprintf("queue depth %d at watermark %d", d, a.maxQueue),
		}
	}
	if deadline > 0 {
		if ewma := a.svcEWMA.Load(); ewma > 0 {
			projected := time.Duration(d / a.workers * ewma)
			if projected > deadline {
				a.shedHopeless.Add(1)
				return &txn.Error{
					Reason: txn.AbortServerBusy,
					Stage:  txn.StageAdmission,
					Site:   uint16(node),
					Detail: fmt.Sprintf("projected wait %s exceeds deadline %s", projected, deadline),
				}
			}
		}
	}
	a.depth.Add(1)
	a.admitted.Add(1)
	return nil
}

// expire records an admitted request whose deadline passed in the queue.
// The caller still responds (Deadline) and still calls finish.
func (a *admission) expire() { a.expired.Add(1) }

// finish releases an admitted request's queue slot and, when it actually
// executed, folds its service time into the EWMA (alpha = 1/8; a CAS loop
// because workers publish concurrently).
func (a *admission) finish(svc time.Duration) {
	a.depth.Add(-1)
	if svc <= 0 {
		return
	}
	ns := svc.Nanoseconds()
	for {
		old := a.svcEWMA.Load()
		var next int64
		if old == 0 {
			next = ns
		} else {
			next = old + (ns-old)/8
		}
		if a.svcEWMA.CompareAndSwap(old, next) {
			return
		}
	}
}
