package serve

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"

	"drtmr/internal/bench/smallbank"
	"drtmr/internal/check"
	"drtmr/internal/serve/client"
	"drtmr/internal/txn"
)

// startBank boots a loaded bank cluster and a server on a loopback port.
func startBank(t *testing.T, cfg smallbank.Config, o Options, procs BankProcs) (*Server, string) {
	t.Helper()
	db, err := OpenBank(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := New(db, o)
	if err := RegisterBank(s, cfg, procs); err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s, addr.String()
}

// TestServeGateEndToEnd is the CI serve gate: an open-loop fleet drives
// >= 10k transactions over real TCP, every request gets a typed answer
// (zero silent drops), money is conserved, and the recorded history passes
// the strict-serializability checker.
func TestServeGateEndToEnd(t *testing.T) {
	cfg := smallbank.Config{
		AccountsPerNode: 2000,
		Nodes:           3,
		RemoteProb:      0.1,
		InitialBalance:  10000,
	}
	s, addr := startBank(t, cfg, Options{WorkersPerNode: 2, History: true}, BankProcs{})

	const calls = 10500
	res := RunFleet(FleetOptions{
		Addr:     addr,
		Users:    32,
		Calls:    calls,
		Skew:     0.9,
		Accounts: cfg.AccountsPerNode * cfg.Nodes,
		ReadFrac: 0.2, // payments conserve money; no deposits so the total is invariant
		Seed:     7,
	})
	if res.Dropped != 0 {
		t.Fatalf("%d requests dropped without a typed answer: %+v", res.Dropped, res)
	}
	if res.Errors != 0 || res.BadRequest != 0 {
		t.Fatalf("unexpected errors: %+v", res)
	}
	if res.OK < 10000 {
		t.Fatalf("only %d calls committed (want >= 10000): %+v", res.OK, res)
	}

	// Conservation: payments move money between checking accounts and
	// balance reads touch nothing, so the grand total must be exactly the
	// loaded amount.
	cl := client.New(client.Options{Addr: addr, MaxConns: 4})
	defer cl.Close()
	var total uint64
	for a := 0; a < cfg.AccountsPerNode*cfg.Nodes; a++ {
		reply, err := cl.Call("balance", EncBalanceReq(uint64(a)))
		if err != nil {
			t.Fatalf("balance(%d): %v", a, err)
		}
		total += binary.LittleEndian.Uint64(reply)
	}
	want := uint64(cfg.AccountsPerNode*cfg.Nodes) * cfg.InitialBalance * 2
	if total != want {
		t.Fatalf("money not conserved: total %d, want %d", total, want)
	}

	s.Close() // quiesce workers so the history is safe to read
	hist := s.HistoryTxns()
	if len(hist) < 10000 {
		t.Fatalf("history has %d txns (want >= 10000)", len(hist))
	}
	r := check.Check(hist, check.Options{Strict: true})
	if !r.Ok() {
		t.Fatalf("strict serializability violated: %v", r)
	}
	t.Logf("gate: %d committed, %d shed, checker: %v", res.OK, res.ShedBusy, r)
}

// TestAdmissionShedsAtOverload floods a tiny watermark: the controller must
// shed with typed ServerBusy while everything still gets an answer.
func TestAdmissionShedsAtOverload(t *testing.T) {
	cfg := smallbank.Config{AccountsPerNode: 500, Nodes: 2, InitialBalance: 10000}
	_, addr := startBank(t, cfg,
		Options{WorkersPerNode: 1, Admission: AdmissionConfig{MaxQueue: 2}}, BankProcs{})
	res := RunFleet(FleetOptions{
		Addr:     addr,
		Users:    64,
		Calls:    3000,
		Accounts: cfg.AccountsPerNode * cfg.Nodes,
		Seed:     11,
	})
	if res.Dropped != 0 {
		t.Fatalf("%d dropped: %+v", res.Dropped, res)
	}
	if res.ShedBusy == 0 {
		t.Fatalf("watermark 2 under 64 users shed nothing: %+v", res)
	}
	if res.OK == 0 {
		t.Fatalf("shedding starved all work: %+v", res)
	}
	t.Logf("overload: %d ok, %d shed busy, %d shed deadline", res.OK, res.ShedBusy, res.ShedDeadline)
}

// TestAdmissionDisabledQueuesEverything is the ablation sanity check: with
// -admission off nothing is ever shed, whatever the backlog.
func TestAdmissionDisabledQueuesEverything(t *testing.T) {
	cfg := smallbank.Config{AccountsPerNode: 500, Nodes: 2, InitialBalance: 10000}
	_, addr := startBank(t, cfg,
		Options{WorkersPerNode: 1, Admission: AdmissionConfig{Disabled: true, MaxQueue: 2}}, BankProcs{})
	res := RunFleet(FleetOptions{
		Addr:     addr,
		Users:    32,
		Calls:    800,
		Accounts: cfg.AccountsPerNode * cfg.Nodes,
		Seed:     13,
	})
	if res.ShedBusy != 0 || res.ShedDeadline != 0 {
		t.Fatalf("disabled admission shed requests: %+v", res)
	}
	if res.OK != res.Offered {
		t.Fatalf("not all calls committed: %+v", res)
	}
}

// TestDeadlineSheds sends an impossible deadline: the server must answer
// with the typed Deadline/ServerBusy taxonomy, not hang or drop.
func TestDeadlineSheds(t *testing.T) {
	cfg := smallbank.Config{AccountsPerNode: 500, Nodes: 2, InitialBalance: 10000}
	_, addr := startBank(t, cfg, Options{WorkersPerNode: 1}, BankProcs{})
	cl := client.New(client.Options{Addr: addr, MaxConns: 4})
	defer cl.Close()
	// Warm the EWMA so deadline-aware shedding has an estimate.
	for i := 0; i < 50; i++ {
		if _, err := cl.Call("deposit", EncDeposit(uint64(i), 1)); err != nil {
			t.Fatal(err)
		}
	}
	sawTyped := false
	for i := 0; i < 200; i++ {
		_, err := cl.CallDeadline("payment", EncPayment(1, 2, 1), time.Nanosecond)
		if err == nil {
			continue // fast enough to beat even 1ns measured at dequeue
		}
		if !client.IsDeadline(err) && !client.IsBusy(err) {
			t.Fatalf("call %d: untyped deadline failure: %v", i, err)
		}
		sawTyped = true
	}
	if !sawTyped {
		t.Skip("server beat a 1ns deadline 200 times; nothing to assert")
	}
}

// TestUnknownProcAndBadArgs exercises the BadRequest path.
func TestUnknownProcAndBadArgs(t *testing.T) {
	cfg := smallbank.Config{AccountsPerNode: 100, Nodes: 2, InitialBalance: 10}
	_, addr := startBank(t, cfg, Options{}, BankProcs{})
	cl := client.New(client.Options{Addr: addr})
	defer cl.Close()
	var re *client.RequestError
	if _, err := cl.Call("no-such-proc", nil); !errors.As(err, &re) {
		t.Fatalf("unknown proc: got %v, want RequestError", err)
	}
	if _, err := cl.Call("payment", []byte{1, 2, 3}); !errors.As(err, &re) {
		t.Fatalf("short args: got %v, want RequestError", err)
	}
	// The connection must still be usable after rejected requests.
	if _, err := cl.Call("balance", EncBalanceReq(1)); err != nil {
		t.Fatalf("healthy call after rejects: %v", err)
	}
}

// TestStatusEndpoints reads the live snapshot over the wire mid-run and
// over HTTP, checking monotonicity and the per-procedure protocol labels.
func TestStatusEndpoints(t *testing.T) {
	cfg := smallbank.Config{AccountsPerNode: 500, Nodes: 2, InitialBalance: 10000}
	s, addr := startBank(t, cfg, Options{WorkersPerNode: 2},
		BankProcs{PaymentProtocol: "farm", DepositProtocol: "drtmr"})
	httpAddr, err := s.StartHTTP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cl := client.New(client.Options{Addr: addr, MaxConns: 4})
	defer cl.Close()

	var prev uint64
	for round := 0; round < 5; round++ {
		for i := 0; i < 200; i++ {
			if _, err := cl.Call("payment", EncPayment(uint64(i), uint64(i+1), 1)); err != nil {
				t.Fatal(err)
			}
		}
		raw, err := cl.Status()
		if err != nil {
			t.Fatal(err)
		}
		var st Status
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatalf("status JSON: %v\n%s", err, raw)
		}
		if st.Committed < prev {
			t.Fatalf("committed went backwards: %d -> %d", prev, st.Committed)
		}
		prev = st.Committed
		if round == 4 {
			if st.Committed == 0 {
				t.Fatal("status never saw a commit")
			}
			protos := map[string]string{}
			for _, p := range st.Procs {
				protos[p.Name] = p.Protocol
			}
			if protos["payment"] != "farm" || protos["deposit"] != "drtmr" || protos["balance"] != "" {
				t.Fatalf("per-proc protocols wrong: %v", protos)
			}
			if st.Admission.Admitted == 0 {
				t.Fatalf("admission counters empty: %+v", st.Admission)
			}
			var payment *ProcStatus
			for i := range st.Procs {
				if st.Procs[i].Name == "payment" {
					payment = &st.Procs[i]
				}
			}
			if payment == nil || payment.Count == 0 || payment.P99Us <= 0 {
				t.Fatalf("payment histogram empty: %+v", payment)
			}
		}
	}

	resp, err := http.Get(fmt.Sprintf("http://%s/statusz", httpAddr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("/statusz JSON: %v\n%s", err, body)
	}
	if st.Committed < prev {
		t.Fatalf("/statusz committed %d below wire status %d", st.Committed, prev)
	}
}

// TestRegisterValidation covers registry misuse.
func TestRegisterValidation(t *testing.T) {
	cfg := smallbank.Config{AccountsPerNode: 10, Nodes: 2, InitialBalance: 1}
	db, err := OpenBank(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := New(db, Options{})
	t.Cleanup(s.Close)
	noop := func(w *txn.Worker, args []byte) ([]byte, error) { return nil, nil }
	if err := s.Register(Proc{Name: "", Fn: noop}); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := s.Register(Proc{Name: "x"}); err == nil {
		t.Fatal("nil Fn accepted")
	}
	if err := s.Register(Proc{Name: "x", Fn: noop, Protocol: "bogus"}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	if err := s.Register(Proc{Name: "x", Fn: noop}); err != nil {
		t.Fatal(err)
	}
	if err := s.Register(Proc{Name: "x", Fn: noop}); err == nil {
		t.Fatal("duplicate accepted")
	}
	if _, err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := s.Register(Proc{Name: "late", Fn: noop}); err == nil {
		t.Fatal("Register after Start accepted")
	}
}
