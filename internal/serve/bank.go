package serve

import (
	"encoding/binary"
	"fmt"
	"time"

	"drtmr"
	"drtmr/internal/bench/smallbank"
	"drtmr/internal/cluster"
	"drtmr/internal/rdma"
	"drtmr/internal/sim"
	"drtmr/internal/txn"
)

// The bank stored procedures mirror the SmallBank bench transactions over
// the wire: fixed little-endian uint64 argument tuples, executed via
// smallbank.Execute on a worker homed where the first account lives.
//
//	payment  acct1 u64 | acct2 u64 | amount u64   SendPayment
//	deposit  acct  u64 | amount u64               DepositChecking
//	balance  acct  u64                            Balance (read-only);
//	                                              reply: checking+savings u64
//	audit    start u64 | span u64                 read-only sweep over span
//	                                              accounts (wrapping); reply:
//	                                              grand total u64
//
// audit is the deliberately expensive read-only procedure: span record
// pairs per transaction plus a modeled cold-scan fetch of auditColdFetch
// per record, so its wall service time dominates both the wire round trip
// and any scheduler hop — the workload that saturates the server's
// executor pool in the overload figure rather than the loopback RTT.

// auditMaxSpan caps an audit sweep (read-set size, and the wire reply stays
// a single u64 regardless).
const auditMaxSpan = 4096

// auditColdFetch is the modeled per-record storage-miss latency an audit
// sweep pays after its transactional read (NVMe-class, ~100µs). It exists
// so audit service time is a property of the workload, not of the host:
// the in-memory sweep alone is pure CPU, and on a small host that makes
// the *scheduler* the bottleneck — requests back up invisibly in socket
// buffers and run queues instead of the server's FIFO, and the admission
// watermark never sees the overload it is there to manage. A wall-clock
// block (sim.Spin wall-sleeps at this magnitude) parks the executor
// goroutine instead, so queue depth measures real backlog on any machine.
const auditColdFetch = 100 * time.Microsecond

// BankProcs maps each bank procedure to its commit protocol ("" = engine
// default, "drtmr", "farm") — the per-procedure protocol-selection knob.
type BankProcs struct {
	PaymentProtocol string
	DepositProtocol string
	BalanceProtocol string
	AuditProtocol   string
}

// OpenBank opens a drtmr cluster shaped for cfg (cfg.Partitioner wired in)
// and loads the SmallBank tables on every shard's primary and backups.
func OpenBank(cfg smallbank.Config, replicas int) (*drtmr.DB, error) {
	db, err := drtmr.Open(drtmr.Options{
		Nodes:       cfg.Nodes,
		Replicas:    replicas,
		Partitioner: cfg.Partitioner(),
	})
	if err != nil {
		return nil, err
	}
	c := db.Cluster()
	for _, m := range c.Machines {
		smallbank.CreateTables(m.Store, cfg)
	}
	cfg0 := c.Coord.Current()
	for s := 0; s < cfg.Nodes; s++ {
		shard := cluster.ShardID(s)
		nodes := append([]rdma.NodeID{cfg0.PrimaryOf(shard)}, cfg0.BackupsOf(shard)...)
		for _, nd := range nodes {
			if err := smallbank.Load(c.Machines[nd].Store, cfg, shard); err != nil {
				db.Close()
				return nil, err
			}
		}
	}
	return db, nil
}

func argU64(args []byte, i int) uint64 {
	return binary.LittleEndian.Uint64(args[8*i:])
}

// RegisterBank registers the three bank procedures on s. cfg must match the
// DB the server wraps (OpenBank), since it derives the home-node routing.
func RegisterBank(s *Server, cfg smallbank.Config, p BankProcs) error {
	part := cfg.Partitioner()
	home := func(args []byte) (int, bool) {
		if len(args) < 8 {
			return 0, false
		}
		return int(part(smallbank.TableChecking, argU64(args, 0))), true
	}
	procs := []Proc{
		{
			Name:     "payment",
			Protocol: p.PaymentProtocol,
			Home:     home,
			Fn: func(w *txn.Worker, args []byte) ([]byte, error) {
				if len(args) != 24 {
					return nil, fmt.Errorf("%w: payment wants 24 bytes, got %d", errBadArgs, len(args))
				}
				err := smallbank.Execute(w, smallbank.Params{
					Type:   smallbank.TxSendPayment,
					Acct1:  argU64(args, 0),
					Acct2:  argU64(args, 1),
					Amount: argU64(args, 2),
				})
				return nil, err
			},
		},
		{
			Name:     "deposit",
			Protocol: p.DepositProtocol,
			Home:     home,
			Fn: func(w *txn.Worker, args []byte) ([]byte, error) {
				if len(args) != 16 {
					return nil, fmt.Errorf("%w: deposit wants 16 bytes, got %d", errBadArgs, len(args))
				}
				err := smallbank.Execute(w, smallbank.Params{
					Type:   smallbank.TxDepositChecking,
					Acct1:  argU64(args, 0),
					Amount: argU64(args, 1),
				})
				return nil, err
			},
		},
		{
			Name:     "balance",
			Protocol: p.BalanceProtocol,
			Home:     home,
			Fn: func(w *txn.Worker, args []byte) ([]byte, error) {
				if len(args) != 8 {
					return nil, fmt.Errorf("%w: balance wants 8 bytes, got %d", errBadArgs, len(args))
				}
				acct := argU64(args, 0)
				var total uint64
				err := w.RunReadOnly(func(tx *txn.Txn) error {
					c, err := tx.Read(smallbank.TableChecking, acct)
					if err != nil {
						return err
					}
					sv, err := tx.Read(smallbank.TableSavings, acct)
					if err != nil {
						return err
					}
					total = smallbank.DecBalance(c) + smallbank.DecBalance(sv)
					return nil
				})
				if err != nil {
					return nil, err
				}
				return binary.LittleEndian.AppendUint64(nil, total), nil
			},
		},
		{
			Name:     "audit",
			Protocol: p.AuditProtocol,
			Home:     home,
			Fn: func(w *txn.Worker, args []byte) ([]byte, error) {
				if len(args) != 16 {
					return nil, fmt.Errorf("%w: audit wants 16 bytes, got %d", errBadArgs, len(args))
				}
				start, span := argU64(args, 0), argU64(args, 1)
				if span == 0 || span > auditMaxSpan {
					return nil, fmt.Errorf("%w: audit span %d outside [1,%d]", errBadArgs, span, auditMaxSpan)
				}
				total := uint64(cfg.AccountsPerNode * cfg.Nodes)
				var sum uint64
				err := w.RunReadOnly(func(tx *txn.Txn) error {
					sum = 0
					for i := uint64(0); i < span; i++ {
						acct := (start + i) % total
						c, err := tx.Read(smallbank.TableChecking, acct)
						if err != nil {
							return err
						}
						sv, err := tx.Read(smallbank.TableSavings, acct)
						if err != nil {
							return err
						}
						sum += smallbank.DecBalance(c) + smallbank.DecBalance(sv)
					}
					return nil
				})
				if err != nil {
					return nil, err
				}
				// The modeled cold fetch: paid once per committed sweep (not
				// per retry), after the serializable read so it never holds
				// engine state while parked.
				sim.Spin(time.Duration(span) * auditColdFetch)
				return binary.LittleEndian.AppendUint64(nil, sum), nil
			},
		},
	}
	for _, pr := range procs {
		if err := s.Register(pr); err != nil {
			return err
		}
	}
	return nil
}

// EncPayment encodes payment args.
func EncPayment(acct1, acct2, amount uint64) []byte {
	b := binary.LittleEndian.AppendUint64(nil, acct1)
	b = binary.LittleEndian.AppendUint64(b, acct2)
	return binary.LittleEndian.AppendUint64(b, amount)
}

// EncDeposit encodes deposit args.
func EncDeposit(acct, amount uint64) []byte {
	b := binary.LittleEndian.AppendUint64(nil, acct)
	return binary.LittleEndian.AppendUint64(b, amount)
}

// EncBalanceReq encodes balance args.
func EncBalanceReq(acct uint64) []byte {
	return binary.LittleEndian.AppendUint64(nil, acct)
}

// EncAudit encodes audit args.
func EncAudit(start, span uint64) []byte {
	b := binary.LittleEndian.AppendUint64(nil, start)
	return binary.LittleEndian.AppendUint64(b, span)
}
