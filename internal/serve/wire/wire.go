// Package wire is drtmr-serve's length-prefixed binary protocol: the frame
// codec shared by the server (internal/serve) and the Go client
// (internal/serve/client).
//
// A frame is a little-endian uint32 payload length followed by the payload;
// payload byte 0 is the message kind. All integers are little-endian. The
// four message kinds:
//
//	Call         kind=1 | id u64 | deadlineUs u32 | procLen u8  | proc | argLen u32 | args
//	Result       kind=2 | id u64 | status u8 | reason u8 | stage u8 | site u16 |
//	                      detailLen u16 | detail | payloadLen u32 | payload
//	Status       kind=3 | id u64
//	StatusResult kind=4 | id u64 | jsonLen u32 | json
//
// Result's reason/stage/site carry the engine's abort taxonomy
// (txn.AbortReason, stage codes, cluster site) over the wire verbatim, so a
// client sees exactly the attribution the abort matrix records. Decode is
// strict: short payloads, oversized lengths, unknown kinds, and trailing
// bytes all error — never panic — which FuzzFrameRoundtrip enforces.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Kind is a message kind (payload byte 0). Typed so switches over a decoded
// frame's kind are checked for exhaustiveness by the enumswitch analyzer.
type Kind uint8

// Message kinds.
const (
	KindCall         Kind = 1
	KindResult       Kind = 2
	KindStatus       Kind = 3
	KindStatusResult Kind = 4
)

// Result statuses.
const (
	StatusOK         uint8 = 0 // committed; Payload is the procedure's reply
	StatusAbort      uint8 = 1 // typed abort; Reason/Stage/Site/Detail set
	StatusBadRequest uint8 = 2 // unknown procedure or malformed args
	StatusError      uint8 = 3 // server-side failure outside the abort taxonomy
)

// MaxFrame bounds a frame payload. Large enough for any stored-procedure
// argument or status JSON; small enough that a malicious length prefix
// cannot make the reader allocate unbounded memory.
const MaxFrame = 1 << 20

// Errors returned by the codec. ErrFrameTooLarge and io errors come from the
// framing layer; ErrMalformed from payload decoding.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrame")
	ErrMalformed     = errors.New("wire: malformed payload")
)

// Msg is a decoded payload. Kind selects which fields are meaningful (see
// the package comment's layout table).
type Msg struct {
	Kind Kind
	ID   uint64

	// Call fields.
	DeadlineUs uint32 // request deadline in microseconds (0 = none)
	Proc       string
	Args       []byte

	// Result fields.
	Status  uint8
	Reason  uint8 // txn.AbortReason
	Stage   uint8 // txn stage code
	Site    uint16
	Detail  string
	Payload []byte
}

func malformed(what string) error { return fmt.Errorf("%w: %s", ErrMalformed, what) }

// AppendCall appends a Call payload (unframed) to dst.
func AppendCall(dst []byte, id uint64, deadlineUs uint32, proc string, args []byte) ([]byte, error) {
	if len(proc) > 255 {
		return dst, malformed("procedure name over 255 bytes")
	}
	dst = append(dst, byte(KindCall))
	dst = binary.LittleEndian.AppendUint64(dst, id)
	dst = binary.LittleEndian.AppendUint32(dst, deadlineUs)
	dst = append(dst, uint8(len(proc)))
	dst = append(dst, proc...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(args)))
	dst = append(dst, args...)
	return dst, nil
}

// AppendResult appends a Result payload (unframed) to dst.
func AppendResult(dst []byte, id uint64, status, reason, stage uint8, site uint16, detail string, payload []byte) ([]byte, error) {
	if len(detail) > 1<<16-1 {
		detail = detail[:1<<16-1]
	}
	dst = append(dst, byte(KindResult))
	dst = binary.LittleEndian.AppendUint64(dst, id)
	dst = append(dst, status, reason, stage)
	dst = binary.LittleEndian.AppendUint16(dst, site)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(detail)))
	dst = append(dst, detail...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = append(dst, payload...)
	return dst, nil
}

// AppendStatusReq appends a Status request payload (unframed) to dst.
func AppendStatusReq(dst []byte, id uint64) []byte {
	dst = append(dst, byte(KindStatus))
	return binary.LittleEndian.AppendUint64(dst, id)
}

// AppendStatusResult appends a StatusResult payload (unframed) to dst.
func AppendStatusResult(dst []byte, id uint64, json []byte) []byte {
	dst = append(dst, byte(KindStatusResult))
	dst = binary.LittleEndian.AppendUint64(dst, id)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(json)))
	return append(dst, json...)
}

// reader is a bounds-checked cursor over a payload.
type reader struct {
	b   []byte
	off int
}

func (r *reader) u8() (uint8, bool) {
	if r.off >= len(r.b) {
		return 0, false
	}
	v := r.b[r.off]
	r.off++
	return v, true
}

func (r *reader) u16() (uint16, bool) {
	if r.off+2 > len(r.b) {
		return 0, false
	}
	v := binary.LittleEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v, true
}

func (r *reader) u32() (uint32, bool) {
	if r.off+4 > len(r.b) {
		return 0, false
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v, true
}

func (r *reader) u64() (uint64, bool) {
	if r.off+8 > len(r.b) {
		return 0, false
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v, true
}

func (r *reader) bytes(n int) ([]byte, bool) {
	if n < 0 || r.off+n > len(r.b) {
		return nil, false
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v, true
}

// Decode parses one payload. The returned Msg's byte/string fields alias
// payload; callers that retain them past the buffer's reuse must copy.
// Trailing bytes after a well-formed message are an error: a frame carries
// exactly one message.
func Decode(payload []byte) (Msg, error) {
	var m Msg
	if len(payload) > MaxFrame {
		return m, ErrFrameTooLarge
	}
	r := reader{b: payload}
	k, ok := r.u8()
	if !ok {
		return m, malformed("empty payload")
	}
	kind := Kind(k)
	m.Kind = kind
	if m.ID, ok = r.u64(); !ok {
		return m, malformed("truncated id")
	}
	switch kind {
	case KindCall:
		if m.DeadlineUs, ok = r.u32(); !ok {
			return m, malformed("truncated deadline")
		}
		n, ok := r.u8()
		if !ok {
			return m, malformed("truncated proc length")
		}
		p, ok := r.bytes(int(n))
		if !ok {
			return m, malformed("truncated proc name")
		}
		m.Proc = string(p)
		an, ok := r.u32()
		if !ok {
			return m, malformed("truncated args length")
		}
		if m.Args, ok = r.bytes(int(an)); !ok {
			return m, malformed("truncated args")
		}
	case KindResult:
		if m.Status, ok = r.u8(); !ok {
			return m, malformed("truncated status")
		}
		if m.Reason, ok = r.u8(); !ok {
			return m, malformed("truncated reason")
		}
		if m.Stage, ok = r.u8(); !ok {
			return m, malformed("truncated stage")
		}
		if m.Site, ok = r.u16(); !ok {
			return m, malformed("truncated site")
		}
		dn, ok := r.u16()
		if !ok {
			return m, malformed("truncated detail length")
		}
		d, ok := r.bytes(int(dn))
		if !ok {
			return m, malformed("truncated detail")
		}
		m.Detail = string(d)
		pn, ok := r.u32()
		if !ok {
			return m, malformed("truncated payload length")
		}
		if m.Payload, ok = r.bytes(int(pn)); !ok {
			return m, malformed("truncated payload bytes")
		}
	case KindStatus:
		// id only.
	case KindStatusResult:
		jn, ok := r.u32()
		if !ok {
			return m, malformed("truncated json length")
		}
		if m.Payload, ok = r.bytes(int(jn)); !ok {
			return m, malformed("truncated json")
		}
	default:
		return m, malformed(fmt.Sprintf("unknown kind %d", kind))
	}
	if r.off != len(payload) {
		return m, malformed(fmt.Sprintf("%d trailing bytes", len(payload)-r.off))
	}
	return m, nil
}

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) == 0 {
		return malformed("empty frame")
	}
	if len(payload) > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed frame into buf (grown as needed) and
// returns the payload slice. A zero or over-MaxFrame length prefix errors
// without reading the body, so a corrupt prefix cannot drive allocation.
// The length prefix is staged in buf too (a local array would escape
// through the io.Reader interface and cost one heap allocation per frame),
// so a read loop that recycles buf runs allocation-free at steady state.
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) {
	if cap(buf) < 4 {
		buf = make([]byte, 4)
	}
	hdr := buf[:4]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr)
	if n == 0 {
		return nil, malformed("zero-length frame")
	}
	if n > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}
