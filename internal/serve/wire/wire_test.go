package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestCallRoundtrip(t *testing.T) {
	args := []byte{1, 2, 3, 4, 5}
	p, err := AppendCall(nil, 42, 1500, "payment", args)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Decode(p)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != KindCall || m.ID != 42 || m.DeadlineUs != 1500 || m.Proc != "payment" || !bytes.Equal(m.Args, args) {
		t.Fatalf("roundtrip mismatch: %+v", m)
	}
}

func TestResultRoundtrip(t *testing.T) {
	p, err := AppendResult(nil, 7, StatusAbort, 3, 5, 12, "lock conflict", []byte("xyz"))
	if err != nil {
		t.Fatal(err)
	}
	m, err := Decode(p)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != KindResult || m.ID != 7 || m.Status != StatusAbort ||
		m.Reason != 3 || m.Stage != 5 || m.Site != 12 ||
		m.Detail != "lock conflict" || string(m.Payload) != "xyz" {
		t.Fatalf("roundtrip mismatch: %+v", m)
	}
}

func TestStatusRoundtrip(t *testing.T) {
	m, err := Decode(AppendStatusReq(nil, 9))
	if err != nil || m.Kind != KindStatus || m.ID != 9 {
		t.Fatalf("status req: %+v err=%v", m, err)
	}
	m, err = Decode(AppendStatusResult(nil, 9, []byte(`{"ok":true}`)))
	if err != nil || m.Kind != KindStatusResult || m.ID != 9 || string(m.Payload) != `{"ok":true}` {
		t.Fatalf("status result: %+v err=%v", m, err)
	}
}

func TestDecodeRejects(t *testing.T) {
	call, _ := AppendCall(nil, 1, 0, "p", []byte("aa"))
	cases := []struct {
		name string
		p    []byte
	}{
		{"empty", nil},
		{"unknown kind", append([]byte{99}, make([]byte, 8)...)},
		{"truncated id", []byte{byte(KindCall), 1, 2}},
		{"truncated call", call[:len(call)-1]},
		{"trailing bytes", append(append([]byte{}, call...), 0)},
		{"status trailing", append(AppendStatusReq(nil, 1), 1)},
	}
	for _, c := range cases {
		if _, err := Decode(c.p); err == nil {
			t.Errorf("%s: decode accepted", c.name)
		}
	}
	// A call whose inner args length points past the payload must error,
	// not slice out of bounds.
	bad := []byte{byte(KindCall), 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 'p', 0xff, 0xff, 0xff, 0xff}
	if _, err := Decode(bad); err == nil {
		t.Error("oversized inner length accepted")
	}
}

func TestLongProcName(t *testing.T) {
	long := make([]byte, 256)
	if _, err := AppendCall(nil, 1, 0, string(long), nil); err == nil {
		t.Fatal("256-byte proc name accepted")
	}
}

func TestFrameRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	p, _ := AppendCall(nil, 3, 0, "q", []byte("hello"))
	if err := WriteFrame(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, p) {
		t.Fatalf("frame payload mismatch")
	}
}

func TestFrameLimits(t *testing.T) {
	if err := WriteFrame(io.Discard, nil); err == nil {
		t.Fatal("empty frame accepted")
	}
	if err := WriteFrame(io.Discard, make([]byte, MaxFrame+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversize frame: %v", err)
	}
	// Oversized length prefix must error before reading (or allocating) the
	// body.
	if _, err := ReadFrame(bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff}), nil); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversize prefix: %v", err)
	}
	if _, err := ReadFrame(bytes.NewReader([]byte{0, 0, 0, 0}), nil); err == nil {
		t.Fatal("zero-length frame accepted")
	}
	// Truncated body is an io error, not a hang or panic.
	if _, err := ReadFrame(bytes.NewReader([]byte{5, 0, 0, 0, 'a'}), nil); err == nil {
		t.Fatal("truncated body accepted")
	}
}

// FuzzFrameRoundtrip follows the FuzzRedoRoundtrip precedent: arbitrary
// bytes through ReadFrame+Decode must error or roundtrip, never panic; and
// every well-formed message must survive encode→frame→read→decode intact.
func FuzzFrameRoundtrip(f *testing.F) {
	seed1, _ := AppendCall(nil, 1, 100, "payment", []byte{9, 9})
	seed2, _ := AppendResult(nil, 2, StatusOK, 0, 0, 0, "", []byte("r"))
	var fr1 bytes.Buffer
	_ = WriteFrame(&fr1, seed1)
	f.Add(fr1.Bytes())
	var fr2 bytes.Buffer
	_ = WriteFrame(&fr2, seed2)
	f.Add(fr2.Bytes())
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})
	f.Add([]byte{1, 0, 0, 0, byte(KindStatus)})

	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := ReadFrame(bytes.NewReader(data), nil)
		if err != nil {
			return // malformed framing must just error
		}
		m, err := Decode(payload)
		if err != nil {
			return // malformed payload must just error
		}
		// Re-encode the decoded message; it must decode to the same thing.
		var re []byte
		switch m.Kind {
		case KindCall:
			re, err = AppendCall(nil, m.ID, m.DeadlineUs, m.Proc, m.Args)
		case KindResult:
			re, err = AppendResult(nil, m.ID, m.Status, m.Reason, m.Stage, m.Site, m.Detail, m.Payload)
		case KindStatus:
			re = AppendStatusReq(nil, m.ID)
		case KindStatusResult:
			re = AppendStatusResult(nil, m.ID, m.Payload)
		}
		if err != nil {
			t.Fatalf("re-encode of decoded msg failed: %v", err)
		}
		if !bytes.Equal(re, payload) {
			t.Fatalf("re-encode differs:\n in  %x\n out %x", payload, re)
		}
	})
}
