//go:build race

package wire

// raceEnabled reports whether this test binary was built with the race
// detector; allocation-count pins are skipped under it because its
// instrumentation perturbs the allocator.
const raceEnabled = true
