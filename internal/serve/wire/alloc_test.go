package wire

import (
	"bytes"
	"testing"
)

// TestDecodeAllocFree pins the reader cursor and Decode's non-copying
// paths to zero allocations: a server's read loop decodes every inbound
// frame with the reader's //drtmr:hotpath accessors, and the returned Msg
// aliases the payload rather than copying it. (Call decoding converts the
// proc name to a string and is exempt — names are interned by the registry
// lookup on the server, and clients never decode Calls.)
func TestDecodeAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation perturbs allocation counts")
	}

	status := AppendStatusReq(nil, 9)
	result, err := AppendResult(nil, 7, StatusOK, 0, 0, 0, "", []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	statusRes := AppendStatusResult(nil, 9, []byte(`{"ok":true}`))

	for _, c := range []struct {
		name string
		p    []byte
	}{
		{"Status", status},
		{"Result", result},
		{"StatusResult", statusRes},
	} {
		if allocs := testing.AllocsPerRun(200, func() {
			if _, err := Decode(c.p); err != nil {
				t.Fatal(err)
			}
		}); allocs != 0 {
			t.Errorf("Decode(%s) allocates %v times per call, want 0", c.name, allocs)
		}
	}
}

// TestReadFrameReusesBuffer pins the framing read path: with a buffer of
// sufficient capacity supplied, ReadFrame must not allocate.
func TestReadFrameReusesBuffer(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation perturbs allocation counts")
	}
	var framed bytes.Buffer
	if err := WriteFrame(&framed, AppendStatusReq(nil, 1)); err != nil {
		t.Fatal(err)
	}
	raw := framed.Bytes()
	buf := make([]byte, 64)
	rd := bytes.NewReader(raw)
	if allocs := testing.AllocsPerRun(200, func() {
		rd.Reset(raw)
		if _, err := ReadFrame(rd, buf); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("ReadFrame with preallocated buffer allocates %v times per call, want 0", allocs)
	}
}
