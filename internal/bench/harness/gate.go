package harness

import (
	"sort"
	"sync"

	"drtmr/internal/sim"
)

// stepGate serializes every worker of a run into one seeded, reproducible
// interleaving (Options.Deterministic). Workers call their step function at
// every scheduling point — transaction attempt start, doorbell await, retry
// backoff — park themselves, and the gate's seeded RNG picks which parked
// worker runs next. Exactly one worker executes between scheduling points,
// so all cross-worker races (lock CAS winners, NIC queueing order, HTM
// conflicts) are decided by the gate's RNG stream alone and a run's entire
// Result is a pure function of its Options.
//
// The first release waits until every expected worker has parked once:
// worker goroutines start in arbitrary OS-scheduler order, and releasing
// before all have registered would leak that order into the schedule. After
// that the gate is strictly alternating — the one running worker parks (or
// finishes) before the next is released — so the waiter set at each draw,
// kept sorted by worker id, is schedule-determined, not arrival-determined.
type stepGate struct {
	mu      sync.Mutex
	rng     *sim.Rand
	expect  int
	arrived map[int]bool
	waiters []gateWaiter
	running bool
}

type gateWaiter struct {
	id int
	ch chan struct{}
}

func newStepGate(seed uint64, expect int) *stepGate {
	return &stepGate{
		rng:     sim.NewRand(seed | 1),
		expect:  expect,
		arrived: make(map[int]bool),
	}
}

// stepFn returns worker id's scheduling-point hook (txn.Worker.SetGate).
func (g *stepGate) stepFn(id int) func() {
	return func() { g.step(id) }
}

// step parks worker id and blocks until the gate releases it.
func (g *stepGate) step(id int) {
	ch := make(chan struct{})
	g.mu.Lock()
	g.arrived[id] = true
	i := sort.Search(len(g.waiters), func(i int) bool { return g.waiters[i].id >= id })
	g.waiters = append(g.waiters, gateWaiter{})
	copy(g.waiters[i+1:], g.waiters[i:])
	g.waiters[i] = gateWaiter{id: id, ch: ch}
	g.running = false
	g.wake()
	g.mu.Unlock()
	<-ch
}

// finish retires worker id (its run loop returned) and hands the schedule on.
func (g *stepGate) finish(id int) {
	g.mu.Lock()
	g.arrived[id] = true
	g.running = false
	g.wake()
	g.mu.Unlock()
}

// wake releases one waiter, chosen by the seeded RNG. Callers hold g.mu.
func (g *stepGate) wake() {
	if g.running || len(g.arrived) < g.expect || len(g.waiters) == 0 {
		return
	}
	i := g.rng.Intn(len(g.waiters))
	w := g.waiters[i]
	g.waiters = append(g.waiters[:i], g.waiters[i+1:]...)
	g.running = true
	close(w.ch)
}
