package harness

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"drtmr/internal/bench/tpcc"
	"drtmr/internal/cluster"
	"drtmr/internal/obs"
	"drtmr/internal/rdma"
	"drtmr/internal/txn"
)

// Figure experiment drivers: one function per table/figure of §7. Each
// returns a Table whose rows mirror the paper's series; Fprint renders it.
// Scale sizes the run: Smoke keeps `go test -bench` fast, Full is the
// cmd/drtmr-bench default.

// Scale selects run size.
type Scale int

// Scales.
const (
	Smoke Scale = iota
	Full
)

func (s Scale) txPerWorker() int {
	if s == Smoke {
		return 60
	}
	return 400
}

// Table is a rendered experiment: named columns, one row per x value.
type Table struct {
	Title   string
	XLabel  string
	Columns []string
	Rows    []Row
	Notes   []string
}

// Row is one sweep point.
type Row struct {
	X      float64
	XName  string
	Values []float64
}

// addBreakdown appends r's commit-phase latency breakdown (the doorbell
// batching instrumentation; see Result.CommitBreakdown) as a table note.
func (t *Table) addBreakdown(label string, r Result) {
	if s := r.CommitBreakdown(); s != "" {
		t.Notes = append(t.Notes, label+" "+s)
	}
}

// Fprint renders the table.
func (t Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	fmt.Fprintf(w, "%-14s", t.XLabel)
	for _, c := range t.Columns {
		fmt.Fprintf(w, " %14s", c)
	}
	fmt.Fprintln(w)
	for _, r := range t.Rows {
		name := r.XName
		if name == "" {
			name = fmt.Sprintf("%g", r.X)
		}
		fmt.Fprintf(w, "%-14s", name)
		for _, v := range r.Values {
			fmt.Fprintf(w, " %14.0f", v)
		}
		fmt.Fprintln(w)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

// Fig10 — TPC-C new-order throughput vs machine count (8 threads each):
// DrTM+R, DrTM+R/3-way, DrTM, Calvin.
func Fig10(scale Scale) Table {
	t := Table{
		Title:   "Fig 10: TPC-C new-order throughput vs machines (8 threads/machine)",
		XLabel:  "machines",
		Columns: []string{"DrTM+R", "DrTM+R/r=3", "DrTM", "Calvin"},
	}
	threads := 8
	if scale == Smoke {
		threads = 2
	}
	maxNodes := 6
	nodesList := []int{1, 2, 3, 4, 5, 6}
	if scale == Smoke {
		nodesList = []int{1, 3}
	}
	var last Result
	for _, n := range nodesList {
		if n > maxNodes {
			break
		}
		row := Row{X: float64(n)}
		for _, sys := range []System{SysDrTMR, SysDrTMR3, SysDrTM, SysCalvin} {
			nn := n
			if sys == SysDrTMR3 && n < 3 {
				// 3-way replication needs >= 3 machines; the paper
				// replicates to standby machines below 3 — model by
				// running with 3 nodes but load on n.
				nn = max(n, 3)
			}
			r := runFigPoint(sys, nn, threads, scale)
			if sys == SysDrTMR {
				last = r
			}
			row.Values = append(row.Values, r.NewOrderTPS)
		}
		t.Rows = append(t.Rows, row)
	}
	t.addBreakdown("DrTM+R (largest sweep point)", last)
	return t
}

func runFigPoint(sys System, nodes, threads int, scale Scale) Result {
	return Run(Options{
		System: sys, Workload: WLTPCC,
		Nodes: nodes, ThreadsPerNode: threads,
		WarehousesPerNode: threads,
		TxPerWorker:       scale.txPerWorker(),
	})
}

// Fig11 — TPC-C throughput vs threads per machine (6 machines): DrTM+R,
// DrTM+R/3, DrTM. DrTM's big HTM regions degrade beyond ~8 threads.
func Fig11(scale Scale) Table {
	t := Table{
		Title:   "Fig 11: TPC-C new-order throughput vs threads (6 machines)",
		XLabel:  "threads",
		Columns: []string{"DrTM+R", "DrTM+R/r=3", "DrTM"},
	}
	nodes := 6
	threadsList := []int{1, 2, 4, 8, 12, 16}
	if scale == Smoke {
		nodes = 2
		threadsList = []int{1, 4}
	}
	var last Result
	for _, th := range threadsList {
		row := Row{X: float64(th)}
		for _, sys := range []System{SysDrTMR, SysDrTMR3, SysDrTM} {
			r := runFigPoint(sys, nodes, th, scale)
			if sys == SysDrTMR {
				last = r
			}
			row.Values = append(row.Values, r.NewOrderTPS)
		}
		t.Rows = append(t.Rows, row)
	}
	t.addBreakdown("DrTM+R (most threads)", last)
	return t
}

// Fig12 — logical-node scale-out: N logical nodes x 4 threads (the paper
// emulates up to 24 logical nodes on 6 machines; every node here is logical
// anyway, so this is the same experiment at face value).
func Fig12(scale Scale) Table {
	t := Table{
		Title:   "Fig 12: TPC-C new-order throughput vs logical nodes (4 threads each)",
		XLabel:  "logical-nodes",
		Columns: []string{"DrTM+R"},
		Notes:   []string{"every simulated machine is a logical node; cross-node interaction uses the RDMA protocol as in the paper's emulation"},
	}
	list := []int{6, 12, 18, 24}
	if scale == Smoke {
		list = []int{2, 4}
	}
	var last Result
	for _, n := range list {
		row := Row{X: float64(n)}
		last = runFigPoint(SysDrTMR, n, 4, scale)
		row.Values = append(row.Values, last.NewOrderTPS)
		t.Rows = append(t.Rows, row)
	}
	t.addBreakdown("DrTM+R (most nodes)", last)
	return t
}

// figSmallBank sweeps SmallBank throughput for Figs 13-16.
func figSmallBank(title, xlabel string, replicated bool, byMachines bool, scale Scale) Table {
	t := Table{
		Title:   title,
		XLabel:  xlabel,
		Columns: []string{"remote=1%", "remote=5%", "remote=10%"},
	}
	sys := SysDrTMR
	if replicated {
		sys = SysDrTMR3
	}
	var sweep []int
	if byMachines {
		sweep = []int{1, 2, 3, 4, 5, 6}
		if scale == Smoke {
			sweep = []int{1, 3}
		}
	} else {
		sweep = []int{1, 2, 4, 8, 12, 16}
		if scale == Smoke {
			sweep = []int{1, 4}
		}
	}
	accounts := 10000
	if scale == Smoke {
		accounts = 1000
	}
	var last Result
	for _, x := range sweep {
		row := Row{X: float64(x)}
		for _, prob := range []float64{0.01, 0.05, 0.10} {
			nodes, threads := 6, 8
			if byMachines {
				nodes, threads = x, 8
				if scale == Smoke {
					threads = 2
				}
			} else {
				nodes, threads = 6, x
				if scale == Smoke {
					nodes = 2
				}
			}
			if replicated && nodes < 3 {
				nodes = 3
			}
			r := Run(Options{
				System: sys, Workload: WLSmallBank,
				Nodes: nodes, ThreadsPerNode: threads,
				SBAccountsPerNode: accounts, SBRemoteProb: prob,
				TxPerWorker: scale.txPerWorker(),
			})
			last = r
			row.Values = append(row.Values, r.TotalTPS)
		}
		t.Rows = append(t.Rows, row)
	}
	t.addBreakdown(sys.String()+" (largest sweep point, remote=10%)", last)
	return t
}

// Fig13 — SmallBank vs machines (no replication).
func Fig13(scale Scale) Table {
	return figSmallBank("Fig 13: SmallBank throughput vs machines (DrTM+R, 8 threads)",
		"machines", false, true, scale)
}

// Fig14 — SmallBank vs threads (no replication).
func Fig14(scale Scale) Table {
	return figSmallBank("Fig 14: SmallBank throughput vs threads (DrTM+R, 6 machines)",
		"threads", false, false, scale)
}

// Fig15 — SmallBank vs machines, 3-way replication (NIC-bound).
func Fig15(scale Scale) Table {
	return figSmallBank("Fig 15: SmallBank throughput vs machines (DrTM+R/r=3, 8 threads)",
		"machines", true, true, scale)
}

// Fig16 — SmallBank vs threads, 3-way replication (plateaus at the NIC).
func Fig16(scale Scale) Table {
	return figSmallBank("Fig 16: SmallBank throughput vs threads (DrTM+R/r=3, 6 machines)",
		"threads", true, false, scale)
}

// Fig17 — TPC-C new-order throughput vs cross-warehouse access probability.
func Fig17(scale Scale) Table {
	t := Table{
		Title:   "Fig 17: TPC-C new-order throughput vs cross-warehouse access %, 6 machines x 8 threads",
		XLabel:  "cross-wh %",
		Columns: []string{"DrTM+R", "DrTM+R/r=3", "DrTM"},
	}
	nodes, threads := 6, 8
	probs := []float64{0.01, 0.05, 0.10, 0.25, 0.50, 1.00}
	if scale == Smoke {
		nodes, threads = 2, 2
		probs = []float64{0.01, 0.50}
	}
	var last Result
	for _, p := range probs {
		row := Row{X: p * 100}
		for _, sys := range []System{SysDrTMR, SysDrTMR3, SysDrTM} {
			n := nodes
			if sys == SysDrTMR3 && n < 3 {
				n = 3
			}
			r := Run(Options{
				System: sys, Workload: WLTPCC,
				Nodes: n, ThreadsPerNode: threads,
				WarehousesPerNode: threads,
				CrossWarehouseNO:  p,
				TxPerWorker:       scale.txPerWorker(),
			})
			if sys == SysDrTMR {
				last = r
			}
			row.Values = append(row.Values, r.NewOrderTPS)
		}
		t.Rows = append(t.Rows, row)
	}
	t.addBreakdown("DrTM+R (highest cross-warehouse %)", last)
	return t
}

// Fig18 — high contention: ONE warehouse per machine, thread sweep.
func Fig18(scale Scale) Table {
	t := Table{
		Title:   "Fig 18: TPC-C new-order throughput, 1 warehouse/machine (high contention), 6 machines",
		XLabel:  "threads",
		Columns: []string{"DrTM+R", "DrTM"},
	}
	nodes := 6
	threadsList := []int{1, 2, 4, 8, 12, 16}
	if scale == Smoke {
		nodes = 2
		threadsList = []int{1, 4}
	}
	var last Result
	for _, th := range threadsList {
		row := Row{X: float64(th)}
		for _, sys := range []System{SysDrTMR, SysDrTM} {
			r := Run(Options{
				System: sys, Workload: WLTPCC,
				Nodes: nodes, ThreadsPerNode: th,
				WarehousesPerNode: 1, // all threads share one warehouse
				TxPerWorker:       scale.txPerWorker(),
			})
			if sys == SysDrTMR {
				last = r
			}
			row.Values = append(row.Values, r.NewOrderTPS)
		}
		t.Rows = append(t.Rows, row)
	}
	t.addBreakdown("DrTM+R (most threads)", last)
	return t
}

// Fig19 — throughput vs database size (warehouses per machine).
func Fig19(scale Scale) Table {
	t := Table{
		Title:   "Fig 19: TPC-C new-order throughput vs warehouses (6 machines x 8 threads)",
		XLabel:  "warehouses",
		Columns: []string{"DrTM+R", "DrTM+R/r=3"},
	}
	nodes, threads := 6, 8
	whList := []int{8, 16, 32, 48, 64}
	if scale == Smoke {
		nodes, threads = 2, 2
		whList = []int{2, 8}
	}
	for _, wh := range whList {
		row := Row{X: float64(wh * nodes), XName: fmt.Sprintf("%d", wh*nodes)}
		for _, sys := range []System{SysDrTMR, SysDrTMR3} {
			r := Run(Options{
				System: sys, Workload: WLTPCC,
				Nodes: nodes, ThreadsPerNode: threads,
				WarehousesPerNode: wh,
				TxPerWorker:       scale.txPerWorker(),
			})
			row.Values = append(row.Values, r.NewOrderTPS)
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// FigCoroutineOverlap — coroutine scheduler sweep (ours, not in the paper):
// SmallBank throughput vs in-flight transaction contexts per worker
// (txn.Engine.CoroutinesPerWorker). N=1 is the one-transaction-per-thread
// ablation; larger N overlaps the fabric round-trips that doorbell batching
// alone cannot hide. The gain is largest when most commits are distributed
// (high remote probability) and saturates once per-verb NIC queueing or
// local CPU work dominates.
func FigCoroutineOverlap(scale Scale) Table {
	t := Table{
		Title:   "Coroutine overlap: SmallBank throughput vs coroutines/worker (DrTM+R)",
		XLabel:  "coroutines",
		Columns: []string{"remote=10%", "remote=50%"},
	}
	nodes, threads := 6, 8
	if scale == Smoke {
		nodes, threads = 3, 2
	}
	var last Result
	for _, n := range []int{1, 2, 4, 8} {
		row := Row{X: float64(n)}
		for _, prob := range []float64{0.10, 0.50} {
			r := Run(Options{
				System: SysDrTMR, Workload: WLSmallBank,
				Nodes: nodes, ThreadsPerNode: threads,
				SBRemoteProb:        prob,
				CoroutinesPerWorker: n,
				TxPerWorker:         scale.txPerWorker(),
			})
			if prob == 0.50 {
				last = r
			}
			row.Values = append(row.Values, r.TotalTPS)
		}
		t.Rows = append(t.Rows, row)
	}
	t.addBreakdown("DrTM+R (8 coroutines, remote=50%)", last)
	return t
}

// FigProtocolMatrix — commit-protocol head-to-head (ours, not in the paper):
// DrTM+R's HTM pipeline vs the FaRM-style one-sided log-append protocol on
// replicated SmallBank, swept over the distributed-transaction probability
// and the read-only share of the mix. The protocols differ most on records
// read but not written: drtmr spends 3 one-sided verbs per such record (C.1
// lock CAS, C.2 validation READ, C.6 unlock CAS) where farm spends 1 (the
// validation READ) — the ro-verbs columns report the measured count per 100
// transactions. The wakeup columns report CPU deliveries at machines that
// participate in a commit ONLY as read sources; both protocols must measure
// zero (a pure reader is never woken), and the figure reports the counter
// rather than asserting the claim.
func FigProtocolMatrix(scale Scale) Table {
	t := Table{
		Title:  "Protocol matrix: DrTM+R vs FaRM-style commit (SmallBank, r=3)",
		XLabel: "remote/ro",
		Columns: []string{
			"drtmr tps", "farm tps",
			"drtmr p99us", "farm p99us",
			"drtmr rov/100", "farm rov/100",
			"drtmr wake", "farm wake",
		},
	}
	nodes, threads, accts := 6, 8, 10000
	remotes := []float64{0.1, 0.5, 1.0}
	roShares := []float64{0.15, 0.5, 0.9}
	if scale == Smoke {
		nodes, threads, accts = 3, 2, 1000
		remotes = []float64{0.5}
		roShares = []float64{0.15, 0.9}
	}
	run := func(proto string, remote, ro float64) Result {
		return Run(Options{
			System: SysDrTMR3, Workload: WLSmallBank,
			Protocol: proto,
			Nodes:    nodes, ThreadsPerNode: threads,
			SBAccountsPerNode: accts,
			SBRemoteProb:      remote,
			SBReadOnlyFrac:    ro,
			TxPerWorker:       scale.txPerWorker(),
		})
	}
	perTx := func(v uint64, r Result) float64 {
		if r.Committed == 0 {
			return 0
		}
		return float64(v) / float64(r.Committed)
	}
	var lastD, lastF Result
	for _, remote := range remotes {
		for _, ro := range roShares {
			d := run("drtmr", remote, ro)
			f := run("farm", remote, ro)
			lastD, lastF = d, f
			t.Rows = append(t.Rows, Row{
				XName: fmt.Sprintf("r=%g ro=%g", remote, ro),
				Values: []float64{
					d.TotalTPS, f.TotalTPS,
					d.P99Us, f.P99Us,
					perTx(d.ROVerbs, d) * 100, perTx(f.ROVerbs, f) * 100,
					float64(d.ROWakeups), float64(f.ROWakeups),
				},
			})
		}
	}
	t.addBreakdown("drtmr (largest sweep point)", lastD)
	t.addBreakdown("farm (largest sweep point)", lastF)
	return t
}

// Table6 — replication impact on TPC-C throughput and latency (6 machines x
// 8 threads): the paper reports <=41% throughput loss before the network
// bottleneck.
func Table6(scale Scale) Table {
	t := Table{
		Title:   "Table 6: 3-way replication impact, TPC-C 6 machines x 8 threads",
		XLabel:  "metric",
		Columns: []string{"DrTM+R", "DrTM+R/r=3", "overhead %"},
	}
	nodes, threads := 6, 8
	if scale == Smoke {
		nodes, threads = 3, 2
	}
	run := func(sys System) Result {
		return Run(Options{
			System: sys, Workload: WLTPCC,
			Nodes: nodes, ThreadsPerNode: threads,
			WarehousesPerNode: threads,
			TxPerWorker:       scale.txPerWorker(),
		})
	}
	a, b := run(SysDrTMR), run(SysDrTMR3)
	over := (1 - b.NewOrderTPS/a.NewOrderTPS) * 100
	t.Rows = append(t.Rows,
		Row{XName: "new-order/s", Values: []float64{a.NewOrderTPS, b.NewOrderTPS, over}},
		Row{XName: "latency us", Values: []float64{a.AvgLatencyUs, b.AvgLatencyUs,
			(b.AvgLatencyUs/a.AvgLatencyUs - 1) * 100}},
		Row{XName: "p50 us", Values: []float64{a.P50Us, b.P50Us,
			(b.P50Us/a.P50Us - 1) * 100}},
		Row{XName: "p99 us", Values: []float64{a.P99Us, b.P99Us,
			(b.P99Us/a.P99Us - 1) * 100}},
	)
	if s := a.AbortSummary(3); s != "" {
		t.Notes = append(t.Notes, "DrTM+R top aborts: "+s)
	}
	if s := b.AbortSummary(3); s != "" {
		t.Notes = append(t.Notes, "DrTM+R/r=3 top aborts: "+s)
	}
	return t
}

// FigLatencyCDF — virtual commit-latency distribution (ours, not in the
// paper): percentile sweep of DrTM+R latency at the default configuration
// for SmallBank and TPC-C, from the per-type log-bucketed histograms the
// harness now records (quantile resolution ≈3%; see internal/obs). Notes
// carry the per-transaction-type p50/p99 split and the abort-attribution
// summary.
func FigLatencyCDF(scale Scale) Table {
	t := Table{
		Title:   "Latency CDF: DrTM+R virtual commit latency percentiles (default config)",
		XLabel:  "percentile",
		Columns: []string{"SmallBank us", "TPC-C us"},
	}
	nodes, threads := 6, 8
	if scale == Smoke {
		nodes, threads = 3, 2
	}
	run := func(wl Workload) Result {
		return Run(Options{
			System: SysDrTMR, Workload: wl,
			Nodes: nodes, ThreadsPerNode: threads,
			WarehousesPerNode: threads,
			TxPerWorker:       scale.txPerWorker(),
		})
	}
	sb, tc := run(WLSmallBank), run(WLTPCC)
	for _, q := range []float64{0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 0.999} {
		t.Rows = append(t.Rows, Row{
			X:     q * 100,
			XName: fmt.Sprintf("p%g", q*100),
			Values: []float64{
				sb.Lat.All().Quantile(q) / 1e3,
				tc.Lat.All().Quantile(q) / 1e3,
			},
		})
	}
	for _, r := range []struct {
		label string
		res   Result
	}{{"smallbank", sb}, {"tpcc", tc}} {
		for i := range r.res.Lat.H {
			h := &r.res.Lat.H[i]
			if h.Count() == 0 {
				continue
			}
			t.Notes = append(t.Notes, fmt.Sprintf("%s %s: n=%d p50=%.1fus p99=%.1fus",
				r.label, r.res.Lat.Names[i], h.Count(),
				h.Quantile(0.50)/1e3, h.Quantile(0.99)/1e3))
		}
		if s := r.res.AbortSummary(3); s != "" {
			t.Notes = append(t.Notes, r.label+" top aborts: "+s)
		}
	}
	return t
}

// FigContentionTail — hot-record tail latency with the contention manager
// on vs off (ours, not in the paper): SmallBank sweep over the hot-set
// fraction (smaller fraction = sharper Zipfian skew = more validate-abort
// retries per hot record), plus the headline "tpcc-default" row — the
// default TPC-C configuration whose p99 the manager is meant to tame.
// Columns report p50/p99 virtual latency and throughput for both modes;
// notes carry the hot-key queue-wait distribution and the top abort keys.
func FigContentionTail(scale Scale) Table {
	t := Table{
		Title:   "Contention tail: hot-record p99 with contention manager on/off",
		XLabel:  "workload",
		Columns: []string{"on p50us", "on p99us", "off p50us", "off p99us", "on tps", "off tps"},
	}
	nodes, threads, accts := 6, 8, 10000
	if scale == Smoke {
		nodes, threads, accts = 3, 2, 1000
	}
	run := func(wl Workload, hot float64, mode txn.ContentionMode) Result {
		return Run(Options{
			System: SysDrTMR, Workload: wl,
			Nodes: nodes, ThreadsPerNode: threads,
			WarehousesPerNode: threads,
			SBAccountsPerNode: accts,
			SBHotFraction:     hot,
			ContentionMode:    mode,
			TxPerWorker:       scale.txPerWorker(),
		})
	}
	note := func(label string, r Result) {
		if q := &r.QueueWait; q.Count() > 0 {
			t.Notes = append(t.Notes, fmt.Sprintf("%s queue waits: n=%d p50=%.1fus p99=%.1fus",
				label, q.Count(), q.Quantile(0.50)/1e3, q.Quantile(0.99)/1e3))
		}
		if s := r.AbortSummary(3); s != "" {
			t.Notes = append(t.Notes, label+" top aborts: "+s)
		}
	}
	addRow := func(name string, wl Workload, hot float64) {
		on := run(wl, hot, txn.ContentionOn)
		off := run(wl, hot, txn.ContentionOff)
		t.Rows = append(t.Rows, Row{
			XName: name,
			Values: []float64{
				on.Lat.All().Quantile(0.50) / 1e3, on.Lat.All().Quantile(0.99) / 1e3,
				off.Lat.All().Quantile(0.50) / 1e3, off.Lat.All().Quantile(0.99) / 1e3,
				on.TotalTPS, off.TotalTPS,
			},
		})
		note(name+" on", on)
		note(name+" off", off)
	}
	fracs := []float64{0.25, 0.04, 0.005}
	if scale == Smoke {
		fracs = []float64{0.04}
	}
	for _, hot := range fracs {
		addRow(fmt.Sprintf("sb-hot=%g", hot), WLSmallBank, hot)
	}
	addRow("tpcc-default", WLTPCC, 0)
	return t
}

// SiloComparison — per-machine throughput: Silo vs a single DrTM+R machine
// (§7.2's per-machine efficiency check).
func SiloComparison(scale Scale) Table {
	t := Table{
		Title:   "§7.2: per-machine new-order throughput, Silo vs DrTM+R (1 machine)",
		XLabel:  "threads",
		Columns: []string{"DrTM+R(1 node)", "Silo"},
	}
	threadsList := []int{8, 16}
	if scale == Smoke {
		threadsList = []int{2}
	}
	for _, th := range threadsList {
		row := Row{X: float64(th)}
		a := Run(Options{System: SysDrTMR, Workload: WLTPCC, Nodes: 1,
			ThreadsPerNode: th, WarehousesPerNode: th, TxPerWorker: scale.txPerWorker()})
		b := Run(Options{System: SysSilo, Workload: WLTPCC, Nodes: 1,
			ThreadsPerNode: th, WarehousesPerNode: th, TxPerWorker: scale.txPerWorker()})
		row.Values = append(row.Values, a.NewOrderTPS, b.NewOrderTPS)
		t.Rows = append(t.Rows, row)
	}
	return t
}

// RecoveryTimeline is the Fig 20 experiment: run TPC-C with 3-way
// replication, kill a machine, and report the throughput timeline around the
// failure plus the suspect / config-commit / recovery-done milestones. This
// experiment runs on WALL-CLOCK time (leases and detection are real-time
// mechanisms); throughput is reported in committed transactions per 2ms
// bucket, normalized to the pre-failure average.
type RecoveryTimeline struct {
	Lease        time.Duration
	KillAt       time.Time
	SuspectAt    time.Time
	ConfigAt     time.Time
	RecoveredAt  time.Time
	Buckets      []int // committed txns per BucketDur
	BucketDur    time.Duration
	Start        time.Time
	PostFailPct  float64 // regained throughput as % of pre-failure
	DetectNanos  int64
	RecoverNanos int64

	// Trace is the shared cluster recorder the milestones above were read
	// from (obs.EvMilestone instants stamped with wall time); export with
	// obs.WriteTrace for the Perfetto view of the failure window.
	Trace *obs.Recorder
}

// RunRecovery executes the Fig 20 experiment. lease scales the paper's
// conservative 10ms failure-detection lease: on dedicated cores 10ms works,
// but the simulator multiplexes every machine's threads onto the host's
// cores, where goroutine scheduling delays of tens of milliseconds would
// cause false suspicions; the default below keeps the same *structure*
// (detection gated by lease expiry, then reconfiguration, then log-replay
// recovery) at a starvation-proof scale. EXPERIMENTS.md reports times
// relative to the lease for comparison with the paper.
func RunRecovery(nodes, threads int, runFor time.Duration, lease time.Duration) RecoveryTimeline {
	if lease <= 0 {
		lease = 150 * time.Millisecond
	}
	spec := cluster.Spec{
		Nodes:    nodes,
		Replicas: 3,
		MemBytes: 64 << 20,
		Lease:    lease,
	}
	c := cluster.New(spec)
	wcfg := tpcc.Config{
		Nodes: nodes, WarehousesPerNode: threads,
		RemoteNewOrderProb: 0.01, RemotePaymentProb: 0.15,
	}
	for _, m := range c.Machines {
		tpcc.CreateTables(m.Store, wcfg)
	}
	cfg0 := c.Coord.Current()
	for n := 0; n < nodes; n++ {
		if err := tpcc.Load(c.Machines[n].Store, wcfg, n, uint64(n)+3); err != nil {
			panic(err)
		}
		for _, b := range cfg0.BackupsOf(cluster.ShardID(n)) {
			for _, w := range wcfg.WarehousesOf(n) {
				_ = tpcc.LoadWarehouse(c.Machines[b].Store, w, simRand(uint64(n)*7+uint64(b)))
			}
		}
	}
	var engines []*txn.Engine
	for _, m := range c.Machines {
		engines = append(engines, txn.NewEngine(m, wcfg.Partitioner(m.ID), txn.DefaultCosts()))
	}
	// Milestones flow through the obs subsystem: the cluster records every
	// emit into a shared (mutex-guarded, Pid=-1 "cluster" track) recorder,
	// and the timeline fields are extracted from it after the run. The
	// legacy Events() channel below only triggers worker revival.
	rec := obs.NewSharedRecorder(-1, 0, 256)
	c.SetRecorder(rec)
	c.Start()
	defer c.Stop()

	//drtmr:allow virtualtime recovery-timeline harness measures real elapsed wall time, not replayed protocol time
	tl := RecoveryTimeline{BucketDur: runFor / 100, Start: time.Now(), Lease: lease, Trace: rec}
	var commitMu sync.Mutex
	var commitTimes []time.Time
	recordCommit := func(ts time.Time) {
		commitMu.Lock()
		commitTimes = append(commitTimes, ts)
		commitMu.Unlock()
	}
	stop := make(chan struct{})
	victim := rdma.NodeID(nodes - 1)

	// Workers: the victim's workers stop at the kill; the paper revives
	// the failed instance on a surviving machine, so replacement workers
	// start there once recovery completes.
	startWorker := func(node int, tid int, seed uint64) {
		w := engines[node].NewWorker(tid)
		home := wcfg.WarehousesOf(int(victim))[tid%threads]
		if node != int(victim) {
			home = wcfg.WarehousesOf(node)[tid%threads]
		}
		ex := tpcc.NewExecutor(w, tpcc.NewGen(wcfg, home, seed))
		for {
			select {
			case <-stop:
				return
			default:
			}
			if c.Machines[node].Dead() {
				return
			}
			if _, err := ex.RunOne(); err == nil {
				//drtmr:allow virtualtime commit timestamps feed the wall-clock recovery timeline, not the replayed schedule
				recordCommit(time.Now())
			}
		}
	}
	for n := 0; n < nodes; n++ {
		for t := 0; t < threads; t++ {
			go startWorker(n, t, uint64(n*100+t+1))
		}
	}

	// Revival trigger: the only remaining consumer of the Events() channel
	// (milestone TIMES come from the obs recorder post-run). On the first
	// recovery-done, revive the failed instance's workload on the promoted
	// machine (shares its NIC, as in the paper: "two instances ... sharing
	// a single InfiniBand NIC").
	go func() {
		revived := false
		for {
			select {
			case <-stop:
				return
			case ev := <-c.Events():
				if ev.Kind == "recovery-done" && !revived {
					revived = true
					promoted := c.Coord.Current().PrimaryOf(cluster.ShardID(victim))
					for t := 0; t < threads; t++ {
						go startWorker(int(promoted), 100+t, uint64(900+t))
					}
				}
			}
		}
	}()

	// The whole kill/recover choreography below runs in harness wall time:
	// the figure plots real throughput dips around a real fault instant.
	time.Sleep(runFor / 3) //drtmr:allow virtualtime harness wall-clock choreography for the recovery figure
	//drtmr:allow virtualtime harness wall-clock choreography for the recovery figure
	tl.KillAt = time.Now()
	c.Kill(victim)
	time.Sleep(2 * runFor / 3) //drtmr:allow virtualtime harness wall-clock choreography for the recovery figure
	close(stop)

	// Bucketize commits (stragglers may still append briefly; snapshot).
	time.Sleep(20 * time.Millisecond) //drtmr:allow virtualtime harness wall-clock choreography for the recovery figure
	commitMu.Lock()
	snapshot := append([]time.Time(nil), commitTimes...)
	commitMu.Unlock()
	//drtmr:allow virtualtime harness wall-clock choreography for the recovery figure
	end := time.Now()
	n := int(end.Sub(tl.Start)/tl.BucketDur) + 1
	tl.Buckets = make([]int, n)
	for _, ts := range snapshot {
		i := int(ts.Sub(tl.Start) / tl.BucketDur)
		if i >= 0 && i < n {
			tl.Buckets[i]++
		}
	}
	// Extract milestone times from the obs recorder (first occurrence of
	// each milestone wins; timestamps are wall-clock UnixNano).
	for _, ev := range rec.Events() {
		if ev.Kind != obs.EvMilestone {
			continue
		}
		at := time.Unix(0, ev.Start)
		switch ev.Detail {
		case obs.MilestoneSuspect:
			if tl.SuspectAt.IsZero() {
				tl.SuspectAt = at
			}
		case obs.MilestoneConfigCommit:
			if tl.ConfigAt.IsZero() {
				tl.ConfigAt = at
			}
		case obs.MilestoneRecoveryDone:
			if tl.RecoveredAt.IsZero() {
				tl.RecoveredAt = at
			}
		case obs.MilestoneKilled:
			// KillAt comes from the harness's own kill record (the killer
			// knows the instant exactly); the event copy is redundant.
		}
	}
	if !tl.SuspectAt.IsZero() {
		tl.DetectNanos = tl.SuspectAt.Sub(tl.KillAt).Nanoseconds()
	}
	if !tl.RecoveredAt.IsZero() {
		tl.RecoverNanos = tl.RecoveredAt.Sub(tl.KillAt).Nanoseconds()
	}
	// Pre/post throughput comparison.
	killIdx := int(tl.KillAt.Sub(tl.Start) / tl.BucketDur)
	pre := avgBuckets(tl.Buckets[:killIdx])
	tailStart := killIdx + (n-killIdx)/2
	post := avgBuckets(tl.Buckets[tailStart:])
	if pre > 0 {
		tl.PostFailPct = post / pre * 100
	}
	return tl
}

func avgBuckets(b []int) float64 {
	if len(b) == 0 {
		return 0
	}
	vals := append([]int(nil), b...)
	sort.Ints(vals)
	// Trim the 10% tails (startup/shutdown buckets).
	lo, hi := len(vals)/10, len(vals)-len(vals)/10
	if hi <= lo {
		lo, hi = 0, len(vals)
	}
	sum := 0
	for _, v := range vals[lo:hi] {
		sum += v
	}
	return float64(sum) / float64(hi-lo)
}

// Fprint renders the recovery timeline.
func (tl RecoveryTimeline) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== Fig 20: recovery timeline (wall clock) ==\n")
	fmt.Fprintf(w, "kill at        t=%v\n", tl.KillAt.Sub(tl.Start).Round(time.Millisecond))
	if !tl.SuspectAt.IsZero() {
		fmt.Fprintf(w, "suspect        +%v after kill\n", time.Duration(tl.DetectNanos).Round(time.Millisecond))
	}
	if !tl.ConfigAt.IsZero() {
		fmt.Fprintf(w, "config-commit  +%v after kill\n", tl.ConfigAt.Sub(tl.KillAt).Round(time.Millisecond))
	}
	if !tl.RecoveredAt.IsZero() {
		fmt.Fprintf(w, "recovery-done  +%v after kill\n", time.Duration(tl.RecoverNanos).Round(time.Millisecond))
	}
	fmt.Fprintf(w, "regained throughput: %.0f%% of pre-failure\n", tl.PostFailPct)
	fmt.Fprintf(w, "timeline (txns per %v bucket):\n", tl.BucketDur)
	for i, b := range tl.Buckets {
		if i%10 == 0 {
			fmt.Fprintf(w, "\n t=%4dms ", i*int(tl.BucketDur/time.Millisecond))
		}
		fmt.Fprintf(w, "%5d", b)
	}
	fmt.Fprintln(w)
}
