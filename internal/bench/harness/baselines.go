package harness

import (
	"errors"
	"sync"
	"time"

	"drtmr/internal/baseline/calvin"
	"drtmr/internal/baseline/drtm"
	"drtmr/internal/baseline/silo"
	"drtmr/internal/bench/tpcc"
	"drtmr/internal/cluster"
	"drtmr/internal/memstore"
	"drtmr/internal/rdma"
	"drtmr/internal/sim"
	"drtmr/internal/txn"
)

// The comparison baselines run TPC-C only, matching the figures they appear
// in (Figs 10, 11, 17, 18 and the Silo paragraph of §7.2).

func simRand(seed uint64) *sim.Rand { return sim.NewRand(seed) }

// directMutate applies an insert/delete straight to the owning machine's
// store, charging the worker clock the way the baseline's messaging would
// (DrTM ships index mutations to the host like DrTM+R; Calvin folds them
// into its deterministic plan — either way one message per remote mutation).
func directMutate(c *cluster.Cluster, clk *sim.Clock, self rdma.NodeID, node rdma.NodeID,
	cost txn.CostModel, fn func(st *memstore.Store) error) error {
	clk.Advance(cost.LocalAccess)
	if node != self {
		clk.Advance(5 * time.Microsecond)
	}
	return fn(c.Machines[node].Store)
}

// tpccRecon provides the reconnaissance reads that a-priori-set systems need
// for TPC-C's dependent transactions (Calvin's OLLP, DrTM's chopping).
type tpccRecon struct {
	c    *cluster.Cluster
	wcfg tpcc.Config
}

// lastOrder reads the customer's last order id and line count directly.
func (r tpccRecon) lastOrder(node rdma.NodeID, w, d, cu int) (oid, cnt uint64, ok bool) {
	st := r.c.Machines[node].Store
	off, found := st.Table(tpcc.TableCustLastOrder).Lookup(tpcc.CKey(w, d, cu))
	if !found {
		return 0, 0, false
	}
	row := st.Table(tpcc.TableCustLastOrder).ReadValueNonTx(off)
	oid = leU64(row)
	if oid == 0 {
		return 0, 0, false
	}
	ooff, found := st.Table(tpcc.TableOrder).Lookup(tpcc.OKey(w, d, int(oid)))
	if !found {
		return 0, 0, false
	}
	return oid, tpcc.OrderOLCnt(st.Table(tpcc.TableOrder).ReadValueNonTx(ooff)), true
}

// oldestNewOrder probes the district's oldest undelivered order.
func (r tpccRecon) oldestNewOrder(node rdma.NodeID, w, d int) (key uint64, cid, cnt uint64, ok bool) {
	st := r.c.Machines[node].Store
	lo, hi := tpcc.OKey(w, d, 0), tpcc.OKey(w, d, 1<<24-1)
	key, _, found := st.Table(tpcc.TableNewOrder).Ordered().MinGE(lo)
	if !found || key > hi {
		return 0, 0, 0, false
	}
	ooff, found := st.Table(tpcc.TableOrder).Lookup(key)
	if !found {
		return 0, 0, 0, false
	}
	row := st.Table(tpcc.TableOrder).ReadValueNonTx(ooff)
	return key, tpcc.OrderCustomer(row), tpcc.OrderOLCnt(row), true
}

func leU64(b []byte) uint64 {
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

// ---------------------------------------------------------------- DrTM ----

func runDrTMBaseline(o Options) Result {
	if o.Workload != WLTPCC {
		panic("harness: DrTM baseline implements TPC-C only")
	}
	c, wcfgAny := buildCluster(o, 1)
	defer c.Stop()
	wcfg := wcfgAny.(tpcc.Config)
	var engines []*drtm.Engine
	for _, m := range c.Machines {
		engines = append(engines, drtm.NewEngine(m, wcfg.Partitioner(m.ID), txn.DefaultCosts()))
	}
	c.Start()
	recon := tpccRecon{c: c, wcfg: wcfg}

	var (
		wg                   sync.WaitGroup
		mu                   sync.Mutex
		committed, newOrders uint64
		aborts, fallbacks    uint64
		maxVirtual           int64
	)
	for n := 0; n < o.Nodes; n++ {
		for t := 0; t < o.ThreadsPerNode; t++ {
			wg.Add(1)
			go func(node, tid int) {
				defer wg.Done()
				w := engines[node].NewWorker(tid)
				whs := wcfg.WarehousesOf(node)
				home := whs[tid%len(whs)]
				g := tpcc.NewGen(wcfg, home, o.Seed+uint64(node*100+tid)+7)
				ex := drtmExec{w: w, c: c, node: rdma.NodeID(node), wcfg: wcfg, recon: recon}
				var localNO uint64
				for i := 0; i < o.TxPerWorker; i++ {
					switch g.NextType() {
					case tpcc.TxNewOrder:
						if ex.newOrder(g.GenNewOrder()) == nil {
							localNO++
						}
					case tpcc.TxPayment:
						_ = ex.payment(g, g.GenPayment())
					case tpcc.TxOrderStatus:
						_ = ex.orderStatus(g, home)
					case tpcc.TxDelivery:
						_ = ex.delivery(home)
					case tpcc.TxStockLevel:
						_ = ex.stockLevel(g, home)
					}
				}
				mu.Lock()
				committed += w.Stats.Committed
				newOrders += localNO
				aborts += w.Stats.Aborts
				fallbacks += w.Stats.Fallbacks
				if v := w.Clk.Now(); v > maxVirtual {
					maxVirtual = v
				}
				mu.Unlock()
			}(n, t)
		}
	}
	wg.Wait()
	return summarize(o, committed, newOrders, aborts, fallbacks, maxVirtual)
}

type drtmExec struct {
	w     *drtm.Worker
	c     *cluster.Cluster
	node  rdma.NodeID
	wcfg  tpcc.Config
	recon tpccRecon
}

func (e *drtmExec) newOrder(p tpcc.NewOrderParams) error {
	refs := []drtm.Ref{
		{Table: tpcc.TableWarehouse, Key: tpcc.WKey(p.W)},
		{Table: tpcc.TableDistrict, Key: tpcc.DKey(p.W, p.D), Write: true},
		{Table: tpcc.TableCustomer, Key: tpcc.CKey(p.W, p.D, p.C)},
		{Table: tpcc.TableCustLastOrder, Key: tpcc.CKey(p.W, p.D, p.C), Write: true},
	}
	for _, it := range p.Items {
		refs = append(refs,
			drtm.Ref{Table: tpcc.TableItem, Key: tpcc.IKey(it.Item)},
			drtm.Ref{Table: tpcc.TableStock, Key: tpcc.SKey(it.SupplyW, it.Item), Write: true})
	}
	var oid uint64
	amounts := make([]uint64, len(p.Items))
	err := e.w.Run(refs, func(c *drtm.Ctx) error {
		drow, err := c.Get(tpcc.TableDistrict, tpcc.DKey(p.W, p.D))
		if err != nil {
			return err
		}
		oid = tpcc.DistrictNextOID(drow)
		d2 := append([]byte(nil), drow...)
		tpcc.SetDistrictNextOID(d2, oid+1)
		if err := c.Put(tpcc.TableDistrict, tpcc.DKey(p.W, p.D), d2); err != nil {
			return err
		}
		if _, err := c.Get(tpcc.TableCustomer, tpcc.CKey(p.W, p.D, p.C)); err != nil {
			return err
		}
		for i, it := range p.Items {
			irow, err := c.Get(tpcc.TableItem, tpcc.IKey(it.Item))
			if err != nil {
				return err
			}
			srow, err := c.Get(tpcc.TableStock, tpcc.SKey(it.SupplyW, it.Item))
			if err != nil {
				return err
			}
			s2 := append([]byte(nil), srow...)
			tpcc.ApplyStockOrder(s2, uint64(it.Qty), it.SupplyW != p.W)
			if err := c.Put(tpcc.TableStock, tpcc.SKey(it.SupplyW, it.Item), s2); err != nil {
				return err
			}
			amounts[i] = tpcc.ItemPrice(irow) * uint64(it.Qty)
		}
		lo := make([]byte, 8)
		putLE(lo, oid)
		return c.Put(tpcc.TableCustLastOrder, tpcc.CKey(p.W, p.D, p.C), lo)
	})
	if err != nil {
		return err
	}
	// Index inserts, shipped to the (local) host like DrTM does.
	okey := tpcc.OKey(p.W, p.D, int(oid))
	_ = directMutate(e.c, &e.w.Clk, e.node, e.node, txn.DefaultCosts(), func(st *memstore.Store) error {
		_, err := st.Table(tpcc.TableOrder).Insert(okey, tpcc.OrderRow(uint64(p.C), 1, 0, uint64(len(p.Items))))
		if err != nil {
			return err
		}
		no := make([]byte, 8)
		putLE(no, oid)
		if _, err := st.Table(tpcc.TableNewOrder).Insert(okey, no); err != nil {
			return err
		}
		for l, it := range p.Items {
			row := tpcc.OrderLineRow(uint64(it.Item), uint64(it.SupplyW), uint64(it.Qty), amounts[l])
			if _, err := st.Table(tpcc.TableOrderLine).Insert(tpcc.OLKey(p.W, p.D, int(oid), l+1), row); err != nil {
				return err
			}
		}
		return nil
	})
	return nil
}

func putLE(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func (e *drtmExec) payment(g *tpcc.Gen, p tpcc.PaymentParams) error {
	refs := []drtm.Ref{
		{Table: tpcc.TableWarehouse, Key: tpcc.WKey(p.W), Write: true},
		{Table: tpcc.TableDistrict, Key: tpcc.DKey(p.W, p.D), Write: true},
		{Table: tpcc.TableCustomer, Key: tpcc.CKey(p.CW, p.CD, p.C), Write: true},
	}
	return e.w.Run(refs, func(c *drtm.Ctx) error {
		wrow, err := c.Get(tpcc.TableWarehouse, tpcc.WKey(p.W))
		if err != nil {
			return err
		}
		w2 := append([]byte(nil), wrow...)
		tpcc.SetWarehouseYTD(w2, tpcc.WarehouseYTD(w2)+p.Amount)
		if err := c.Put(tpcc.TableWarehouse, tpcc.WKey(p.W), w2); err != nil {
			return err
		}
		drow, err := c.Get(tpcc.TableDistrict, tpcc.DKey(p.W, p.D))
		if err != nil {
			return err
		}
		d2 := append([]byte(nil), drow...)
		tpcc.SetDistrictYTD(d2, tpcc.DistrictYTD(d2)+p.Amount)
		if err := c.Put(tpcc.TableDistrict, tpcc.DKey(p.W, p.D), d2); err != nil {
			return err
		}
		crow, err := c.Get(tpcc.TableCustomer, tpcc.CKey(p.CW, p.CD, p.C))
		if err != nil {
			return err
		}
		c2 := append([]byte(nil), crow...)
		tpcc.CustomerAddPayment(c2, p.Amount)
		return c.Put(tpcc.TableCustomer, tpcc.CKey(p.CW, p.CD, p.C), c2)
	})
}

func (e *drtmExec) orderStatus(g *tpcc.Gen, home int) error {
	d, cu := 1+int(e.w.Clk.Now()%10), 1+int(e.w.Clk.Now()%tpcc.CustomersPerDistrict)
	oid, cnt, ok := e.recon.lastOrder(e.node, home, d, cu)
	refs := []drtm.Ref{{Table: tpcc.TableCustomer, Key: tpcc.CKey(home, d, cu)}}
	if ok {
		refs = append(refs, drtm.Ref{Table: tpcc.TableOrder, Key: tpcc.OKey(home, d, int(oid))})
		for l := 1; l <= int(cnt); l++ {
			refs = append(refs, drtm.Ref{Table: tpcc.TableOrderLine, Key: tpcc.OLKey(home, d, int(oid), l)})
		}
	}
	return e.w.Run(refs, func(c *drtm.Ctx) error {
		_, err := c.Get(tpcc.TableCustomer, tpcc.CKey(home, d, cu))
		return err
	})
}

func (e *drtmExec) delivery(home int) error {
	for d := 1; d <= tpcc.DistrictsPerWarehouse; d++ {
		key, cid, cnt, ok := e.recon.oldestNewOrder(e.node, home, d)
		if !ok {
			continue
		}
		refs := []drtm.Ref{
			{Table: tpcc.TableOrder, Key: key, Write: true},
			{Table: tpcc.TableCustomer, Key: tpcc.CKey(home, d, int(cid)), Write: true},
		}
		oid := int(key & 0xFFFFFF)
		for l := 1; l <= int(cnt); l++ {
			refs = append(refs, drtm.Ref{Table: tpcc.TableOrderLine, Key: tpcc.OLKey(home, d, oid, l), Write: true})
		}
		err := e.w.Run(refs, func(c *drtm.Ctx) error {
			orow, err := c.Get(tpcc.TableOrder, key)
			if err != nil {
				return err
			}
			o2 := append([]byte(nil), orow...)
			tpcc.SetOrderCarrier(o2, 5)
			if err := c.Put(tpcc.TableOrder, key, o2); err != nil {
				return err
			}
			var total uint64
			for l := 1; l <= int(cnt); l++ {
				ol, err := c.Get(tpcc.TableOrderLine, tpcc.OLKey(home, d, oid, l))
				if err != nil {
					return err
				}
				total += tpcc.OrderLineAmount(ol)
				ol2 := append([]byte(nil), ol...)
				tpcc.SetOrderLineDelivery(ol2, 1)
				if err := c.Put(tpcc.TableOrderLine, tpcc.OLKey(home, d, oid, l), ol2); err != nil {
					return err
				}
			}
			crow, err := c.Get(tpcc.TableCustomer, tpcc.CKey(home, d, int(cid)))
			if err != nil {
				return err
			}
			c2 := append([]byte(nil), crow...)
			tpcc.CustomerAddDelivery(c2, total)
			return c.Put(tpcc.TableCustomer, tpcc.CKey(home, d, int(cid)), c2)
		})
		if err != nil {
			continue
		}
		_ = directMutate(e.c, &e.w.Clk, e.node, e.node, txn.DefaultCosts(), func(st *memstore.Store) error {
			return st.Table(tpcc.TableNewOrder).Delete(key)
		})
	}
	return nil
}

func (e *drtmExec) stockLevel(g *tpcc.Gen, home int) error {
	d := 1 + int(e.w.Clk.Now()%10)
	st := e.c.Machines[e.node].Store
	off, ok := st.Table(tpcc.TableDistrict).Lookup(tpcc.DKey(home, d))
	if !ok {
		return nil
	}
	next := int(tpcc.DistrictNextOID(st.Table(tpcc.TableDistrict).ReadValueNonTx(off)))
	loO := next - 20
	if loO < 1 {
		loO = 1
	}
	var refs []drtm.Ref
	st.Table(tpcc.TableOrderLine).Ordered().Scan(
		tpcc.OLKey(home, d, loO, 0), tpcc.OLKey(home, d, next, 15),
		func(key, _ uint64) bool {
			refs = append(refs, drtm.Ref{Table: tpcc.TableOrderLine, Key: key})
			return len(refs) < 100
		})
	refs = append(refs, drtm.Ref{Table: tpcc.TableDistrict, Key: tpcc.DKey(home, d)})
	return e.w.Run(refs, func(c *drtm.Ctx) error {
		_, err := c.Get(tpcc.TableDistrict, tpcc.DKey(home, d))
		return err
	})
}

// -------------------------------------------------------------- Calvin ----

func runCalvinBaseline(o Options) Result {
	if o.Workload != WLTPCC {
		panic("harness: Calvin baseline implements TPC-C only")
	}
	c, wcfgAny := buildCluster(o, 1)
	defer c.Stop()
	wcfg := wcfgAny.(tpcc.Config)
	// Calvin's partitioner cannot be machine-relative (one global plan),
	// so ITEM is assigned to shard 0 and every access to it is routed
	// there — the penalty a shared-nothing deterministic system pays
	// without replicated read-only tables... except real Calvin also
	// replicates items; route items to the caller-agnostic owner of
	// warehouse 1 but charge no message (modelled as local).
	part := wcfg.Partitioner(0)
	sys := calvin.New(c, part, txn.DefaultCosts())
	c.Start()
	recon := tpccRecon{c: c, wcfg: wcfg}

	var (
		wg                   sync.WaitGroup
		mu                   sync.Mutex
		committed, newOrders uint64
		maxVirtual           int64
	)
	for n := 0; n < o.Nodes; n++ {
		for t := 0; t < o.ThreadsPerNode; t++ {
			wg.Add(1)
			go func(node, tid int) {
				defer wg.Done()
				w := sys.NewWorker(rdma.NodeID(node), tid)
				whs := wcfg.WarehousesOf(node)
				home := whs[tid%len(whs)]
				g := tpcc.NewGen(wcfg, home, o.Seed+uint64(node*100+tid)+13)
				ex := calvinExec{w: w, c: c, node: rdma.NodeID(node), recon: recon}
				var localNO uint64
				for i := 0; i < o.TxPerWorker; i++ {
					switch g.NextType() {
					case tpcc.TxNewOrder:
						if ex.newOrder(g.GenNewOrder()) == nil {
							localNO++
						}
					case tpcc.TxPayment:
						_ = ex.payment(g.GenPayment())
					case tpcc.TxOrderStatus:
						_ = ex.orderStatus(home, 1+i%10, 1+i%tpcc.CustomersPerDistrict)
					case tpcc.TxDelivery:
						_ = ex.delivery(home)
					case tpcc.TxStockLevel:
						_ = ex.stockLevel(home, 1+i%10)
					}
				}
				mu.Lock()
				committed += w.Stats.Committed
				newOrders += localNO
				if v := w.Clk.Now(); v > maxVirtual {
					maxVirtual = v
				}
				mu.Unlock()
			}(n, t)
		}
	}
	wg.Wait()
	return summarize(o, committed, newOrders, 0, 0, maxVirtual)
}

type calvinExec struct {
	w     *calvin.Worker
	c     *cluster.Cluster
	node  rdma.NodeID
	recon tpccRecon
}

func (e *calvinExec) newOrder(p tpcc.NewOrderParams) error {
	refs := []calvin.Ref{
		{Table: tpcc.TableWarehouse, Key: tpcc.WKey(p.W)},
		{Table: tpcc.TableDistrict, Key: tpcc.DKey(p.W, p.D), Write: true},
		{Table: tpcc.TableCustomer, Key: tpcc.CKey(p.W, p.D, p.C)},
		{Table: tpcc.TableCustLastOrder, Key: tpcc.CKey(p.W, p.D, p.C), Write: true},
	}
	for _, it := range p.Items {
		refs = append(refs,
			calvin.Ref{Table: tpcc.TableItem, Key: tpcc.IKey(it.Item)},
			calvin.Ref{Table: tpcc.TableStock, Key: tpcc.SKey(it.SupplyW, it.Item), Write: true})
	}
	var oid uint64
	err := e.w.Run(refs, func(c *calvin.Ctx) error {
		drow, err := c.Get(tpcc.TableDistrict, tpcc.DKey(p.W, p.D))
		if err != nil {
			return err
		}
		oid = tpcc.DistrictNextOID(drow)
		d2 := append([]byte(nil), drow...)
		tpcc.SetDistrictNextOID(d2, oid+1)
		if err := c.Put(tpcc.TableDistrict, tpcc.DKey(p.W, p.D), d2); err != nil {
			return err
		}
		for _, it := range p.Items {
			srow, err := c.Get(tpcc.TableStock, tpcc.SKey(it.SupplyW, it.Item))
			if err != nil {
				return err
			}
			s2 := append([]byte(nil), srow...)
			tpcc.ApplyStockOrder(s2, uint64(it.Qty), it.SupplyW != p.W)
			if err := c.Put(tpcc.TableStock, tpcc.SKey(it.SupplyW, it.Item), s2); err != nil {
				return err
			}
		}
		lo := make([]byte, 8)
		putLE(lo, oid)
		return c.Put(tpcc.TableCustLastOrder, tpcc.CKey(p.W, p.D, p.C), lo)
	})
	if err != nil {
		return err
	}
	okey := tpcc.OKey(p.W, p.D, int(oid))
	_ = e.w.Insert(tpcc.TableOrder, okey, tpcc.OrderRow(uint64(p.C), 1, 0, uint64(len(p.Items))))
	no := make([]byte, 8)
	putLE(no, oid)
	_ = e.w.Insert(tpcc.TableNewOrder, okey, no)
	for l, it := range p.Items {
		_ = e.w.Insert(tpcc.TableOrderLine, tpcc.OLKey(p.W, p.D, int(oid), l+1),
			tpcc.OrderLineRow(uint64(it.Item), uint64(it.SupplyW), uint64(it.Qty), uint64(it.Qty)*100))
	}
	return nil
}

func (e *calvinExec) payment(p tpcc.PaymentParams) error {
	refs := []calvin.Ref{
		{Table: tpcc.TableWarehouse, Key: tpcc.WKey(p.W), Write: true},
		{Table: tpcc.TableDistrict, Key: tpcc.DKey(p.W, p.D), Write: true},
		{Table: tpcc.TableCustomer, Key: tpcc.CKey(p.CW, p.CD, p.C), Write: true},
	}
	return e.w.Run(refs, func(c *calvin.Ctx) error {
		wrow, _ := c.Get(tpcc.TableWarehouse, tpcc.WKey(p.W))
		w2 := append([]byte(nil), wrow...)
		tpcc.SetWarehouseYTD(w2, tpcc.WarehouseYTD(w2)+p.Amount)
		if err := c.Put(tpcc.TableWarehouse, tpcc.WKey(p.W), w2); err != nil {
			return err
		}
		drow, _ := c.Get(tpcc.TableDistrict, tpcc.DKey(p.W, p.D))
		d2 := append([]byte(nil), drow...)
		tpcc.SetDistrictYTD(d2, tpcc.DistrictYTD(d2)+p.Amount)
		if err := c.Put(tpcc.TableDistrict, tpcc.DKey(p.W, p.D), d2); err != nil {
			return err
		}
		crow, _ := c.Get(tpcc.TableCustomer, tpcc.CKey(p.CW, p.CD, p.C))
		c2 := append([]byte(nil), crow...)
		tpcc.CustomerAddPayment(c2, p.Amount)
		return c.Put(tpcc.TableCustomer, tpcc.CKey(p.CW, p.CD, p.C), c2)
	})
}

func (e *calvinExec) orderStatus(home, d, cu int) error {
	oid, cnt, ok := e.recon.lastOrder(e.node, home, d, cu)
	refs := []calvin.Ref{{Table: tpcc.TableCustomer, Key: tpcc.CKey(home, d, cu)}}
	if ok {
		refs = append(refs, calvin.Ref{Table: tpcc.TableOrder, Key: tpcc.OKey(home, d, int(oid))})
		for l := 1; l <= int(cnt); l++ {
			refs = append(refs, calvin.Ref{Table: tpcc.TableOrderLine, Key: tpcc.OLKey(home, d, int(oid), l)})
		}
	}
	return e.w.Run(refs, func(c *calvin.Ctx) error { return nil })
}

func (e *calvinExec) delivery(home int) error {
	for d := 1; d <= tpcc.DistrictsPerWarehouse; d++ {
		key, cid, cnt, ok := e.recon.oldestNewOrder(e.node, home, d)
		if !ok {
			continue
		}
		oid := int(key & 0xFFFFFF)
		refs := []calvin.Ref{
			{Table: tpcc.TableOrder, Key: key, Write: true},
			{Table: tpcc.TableCustomer, Key: tpcc.CKey(home, d, int(cid)), Write: true},
		}
		for l := 1; l <= int(cnt); l++ {
			refs = append(refs, calvin.Ref{Table: tpcc.TableOrderLine, Key: tpcc.OLKey(home, d, oid, l), Write: true})
		}
		err := e.w.Run(refs, func(c *calvin.Ctx) error {
			orow, err := c.Get(tpcc.TableOrder, key)
			if err != nil {
				return err
			}
			o2 := append([]byte(nil), orow...)
			tpcc.SetOrderCarrier(o2, 3)
			return c.Put(tpcc.TableOrder, key, o2)
		})
		if err == nil {
			_ = directMutate(e.c, &e.w.Clk, e.node, e.node, txn.DefaultCosts(), func(st *memstore.Store) error {
				return st.Table(tpcc.TableNewOrder).Delete(key)
			})
		}
	}
	return nil
}

func (e *calvinExec) stockLevel(home, d int) error {
	st := e.c.Machines[e.node].Store
	off, ok := st.Table(tpcc.TableDistrict).Lookup(tpcc.DKey(home, d))
	if !ok {
		return nil
	}
	next := int(tpcc.DistrictNextOID(st.Table(tpcc.TableDistrict).ReadValueNonTx(off)))
	loO := next - 20
	if loO < 1 {
		loO = 1
	}
	refs := []calvin.Ref{{Table: tpcc.TableDistrict, Key: tpcc.DKey(home, d)}}
	st.Table(tpcc.TableOrderLine).Ordered().Scan(
		tpcc.OLKey(home, d, loO, 0), tpcc.OLKey(home, d, next, 15),
		func(key, _ uint64) bool {
			refs = append(refs, calvin.Ref{Table: tpcc.TableOrderLine, Key: key})
			return len(refs) < 100
		})
	return e.w.Run(refs, func(c *calvin.Ctx) error { return nil })
}

// ---------------------------------------------------------------- Silo ----

func runSiloBaseline(o Options) Result {
	if o.Workload != WLTPCC {
		panic("harness: Silo baseline implements TPC-C only")
	}
	// Single machine: nodes=1 regardless of o.Nodes; warehouses = threads.
	wcfg := tpcc.Config{Nodes: 1, WarehousesPerNode: o.WarehousesPerNode,
		RemoteNewOrderProb: 0, RemotePaymentProb: 0}
	db := silo.NewDB([]uint8{
		uint8(tpcc.TableWarehouse), uint8(tpcc.TableDistrict), uint8(tpcc.TableCustomer),
		uint8(tpcc.TableHistory), uint8(tpcc.TableNewOrder), uint8(tpcc.TableOrder),
		uint8(tpcc.TableOrderLine), uint8(tpcc.TableItem), uint8(tpcc.TableStock),
		uint8(tpcc.TableCustLastOrder),
	}, txn.DefaultCosts())
	defer db.Close()
	siloLoad(db, wcfg, o.Seed)

	var (
		wg                   sync.WaitGroup
		mu                   sync.Mutex
		committed, newOrders uint64
		aborts               uint64
		maxVirtual           int64
	)
	for t := 0; t < o.ThreadsPerNode; t++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			w := db.NewWorker(tid)
			whs := wcfg.WarehousesOf(0)
			home := whs[tid%len(whs)]
			g := tpcc.NewGen(wcfg, home, o.Seed+uint64(tid)+29)
			var localNO uint64
			for i := 0; i < o.TxPerWorker; i++ {
				switch g.NextType() {
				case tpcc.TxNewOrder:
					if siloNewOrder(w, g.GenNewOrder()) == nil {
						localNO++
					}
				case tpcc.TxPayment:
					_ = siloPayment(w, g.GenPayment())
				default:
					// Order-status / delivery / stock-level reduce to
					// read-mostly single-warehouse transactions; model
					// them with a customer+district read txn so the mix
					// stays 45/43/12.
					_ = w.Run(func(tx *silo.Txn) error {
						_, err := tx.Read(uint8(tpcc.TableCustomer), tpcc.CKey(home, 1+i%10, 1+i%tpcc.CustomersPerDistrict))
						if errors.Is(err, silo.ErrNotFound) {
							return nil
						}
						return err
					})
				}
			}
			mu.Lock()
			committed += w.Stats.Committed
			newOrders += localNO
			aborts += w.Stats.Aborts
			if v := w.Clk.Now(); v > maxVirtual {
				maxVirtual = v
			}
			mu.Unlock()
		}(t)
	}
	wg.Wait()
	return summarize(o, committed, newOrders, aborts, 0, maxVirtual)
}

func siloLoad(db *silo.DB, wcfg tpcc.Config, seed uint64) {
	rng := sim.NewRand(seed + 3)
	for i := 1; i <= tpcc.ItemCount; i++ {
		_ = db.Insert(uint8(tpcc.TableItem), tpcc.IKey(i), tpcc.ItemRow(uint64(100+rng.Intn(9900))))
	}
	for _, w := range wcfg.WarehousesOf(0) {
		_ = db.Insert(uint8(tpcc.TableWarehouse), tpcc.WKey(w), tpcc.WarehouseRow(10, 0))
		for d := 1; d <= tpcc.DistrictsPerWarehouse; d++ {
			_ = db.Insert(uint8(tpcc.TableDistrict), tpcc.DKey(w, d), tpcc.DistrictRow(10, 0, tpcc.InitialNextOrder))
			for cu := 1; cu <= tpcc.CustomersPerDistrict; cu++ {
				_ = db.Insert(uint8(tpcc.TableCustomer), tpcc.CKey(w, d, cu), tpcc.CustomerRow(-10, 100))
				_ = db.Insert(uint8(tpcc.TableCustLastOrder), tpcc.CKey(w, d, cu), make([]byte, 8))
			}
		}
		for i := 1; i <= tpcc.StockPerWarehouse; i++ {
			_ = db.Insert(uint8(tpcc.TableStock), tpcc.SKey(w, i), tpcc.StockRow(uint64(10+rng.Intn(91))))
		}
	}
}

func siloNewOrder(w *silo.Worker, p tpcc.NewOrderParams) error {
	return w.Run(func(tx *silo.Txn) error {
		if _, err := tx.Read(uint8(tpcc.TableWarehouse), tpcc.WKey(p.W)); err != nil {
			return err
		}
		drow, err := tx.Read(uint8(tpcc.TableDistrict), tpcc.DKey(p.W, p.D))
		if err != nil {
			return err
		}
		oid := tpcc.DistrictNextOID(drow)
		d2 := append([]byte(nil), drow...)
		tpcc.SetDistrictNextOID(d2, oid+1)
		if err := tx.Write(uint8(tpcc.TableDistrict), tpcc.DKey(p.W, p.D), d2); err != nil {
			return err
		}
		if _, err := tx.Read(uint8(tpcc.TableCustomer), tpcc.CKey(p.W, p.D, p.C)); err != nil {
			return err
		}
		for _, it := range p.Items {
			if _, err := tx.Read(uint8(tpcc.TableItem), tpcc.IKey(it.Item)); err != nil {
				return err
			}
			srow, err := tx.Read(uint8(tpcc.TableStock), tpcc.SKey(it.SupplyW, it.Item))
			if err != nil {
				return err
			}
			s2 := append([]byte(nil), srow...)
			tpcc.ApplyStockOrder(s2, uint64(it.Qty), false)
			if err := tx.Write(uint8(tpcc.TableStock), tpcc.SKey(it.SupplyW, it.Item), s2); err != nil {
				return err
			}
		}
		okey := tpcc.OKey(p.W, p.D, int(oid))
		_ = tx.Insert(uint8(tpcc.TableOrder), okey, tpcc.OrderRow(uint64(p.C), 1, 0, uint64(len(p.Items))))
		no := make([]byte, 8)
		putLE(no, oid)
		_ = tx.Insert(uint8(tpcc.TableNewOrder), okey, no)
		for l, it := range p.Items {
			_ = tx.Insert(uint8(tpcc.TableOrderLine), tpcc.OLKey(p.W, p.D, int(oid), l+1),
				tpcc.OrderLineRow(uint64(it.Item), uint64(it.SupplyW), uint64(it.Qty), uint64(it.Qty)*100))
		}
		lo := make([]byte, 8)
		putLE(lo, oid)
		return tx.Write(uint8(tpcc.TableCustLastOrder), tpcc.CKey(p.W, p.D, p.C), lo)
	})
}

func siloPayment(w *silo.Worker, p tpcc.PaymentParams) error {
	return w.Run(func(tx *silo.Txn) error {
		wrow, err := tx.Read(uint8(tpcc.TableWarehouse), tpcc.WKey(p.W))
		if err != nil {
			return err
		}
		w2 := append([]byte(nil), wrow...)
		tpcc.SetWarehouseYTD(w2, tpcc.WarehouseYTD(w2)+p.Amount)
		if err := tx.Write(uint8(tpcc.TableWarehouse), tpcc.WKey(p.W), w2); err != nil {
			return err
		}
		drow, err := tx.Read(uint8(tpcc.TableDistrict), tpcc.DKey(p.W, p.D))
		if err != nil {
			return err
		}
		d2 := append([]byte(nil), drow...)
		tpcc.SetDistrictYTD(d2, tpcc.DistrictYTD(d2)+p.Amount)
		if err := tx.Write(uint8(tpcc.TableDistrict), tpcc.DKey(p.W, p.D), d2); err != nil {
			return err
		}
		crow, err := tx.Read(uint8(tpcc.TableCustomer), tpcc.CKey(p.CW, p.CD, p.C))
		if err != nil {
			return err
		}
		c2 := append([]byte(nil), crow...)
		tpcc.CustomerAddPayment(c2, p.Amount)
		return tx.Write(uint8(tpcc.TableCustomer), tpcc.CKey(p.CW, p.CD, p.C), c2)
	})
}
