// Package harness drives the paper's experiments: it builds a simulated
// cluster for a chosen system (DrTM+R with or without replication, DrTM,
// Calvin, Silo), loads a workload (TPC-C or SmallBank), runs worker threads
// for a fixed transaction count, and reports throughput in virtual time —
// committed transactions divided by the slowest worker's virtual elapsed
// time (see internal/sim for why virtual time, not wall-clock, is the right
// denominator for a simulated cluster).
package harness

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"drtmr/internal/bench/smallbank"
	"drtmr/internal/bench/tpcc"
	"drtmr/internal/cluster"
	"drtmr/internal/htm"
	"drtmr/internal/obs"
	"drtmr/internal/rdma"
	"drtmr/internal/txn"
)

// System selects the system under test.
type System int

// Systems.
const (
	SysDrTMR  System = iota // DrTM+R, no replication
	SysDrTMR3               // DrTM+R with 3-way replication
	SysDrTM                 // DrTM baseline (HTM+2PL, a-priori sets)
	SysCalvin               // Calvin baseline (deterministic, IPoIB)
	SysSilo                 // Silo baseline (single machine)
)

func (s System) String() string {
	switch s {
	case SysDrTMR:
		return "DrTM+R"
	case SysDrTMR3:
		return "DrTM+R/r=3"
	case SysDrTM:
		return "DrTM"
	case SysCalvin:
		return "Calvin"
	case SysSilo:
		return "Silo"
	default:
		return fmt.Sprintf("System(%d)", int(s))
	}
}

// Workload selects the benchmark.
type Workload int

// Workloads.
const (
	WLTPCC Workload = iota
	WLSmallBank
)

// Options configures one experiment run.
type Options struct {
	System   System
	Workload Workload

	Nodes          int
	ThreadsPerNode int
	TxPerWorker    int

	// TPC-C knobs.
	WarehousesPerNode int
	CrossWarehouseNO  float64 // new-order remote supply probability
	CrossWarehousePay float64 // payment remote customer probability

	// SmallBank knobs.
	SBAccountsPerNode int
	SBRemoteProb      float64
	// SBHotFraction overrides the hot-set fraction of the account space
	// (0 keeps the workload default 0.04). FigContentionTail sweeps it as
	// the skew knob: smaller fraction = hotter records.
	SBHotFraction float64
	// SBReadOnlyFrac overrides the read-only (Balance) share of the
	// SmallBank mix (0 keeps the default mix). FigProtocolMatrix sweeps it:
	// read-only share is exactly where the commit protocols differ most.
	SBReadOnlyFrac float64

	// Protocol selects the commit protocol by registry name for DrTM+R
	// systems ("" = txn.DefaultProtocol, the DrTM+R HTM pipeline; "farm" =
	// the one-sided log-append pipeline). Baseline systems ignore it.
	Protocol string

	// CoroutinesPerWorker overrides txn.Engine.CoroutinesPerWorker for
	// DrTM+R systems: the number of in-flight transaction contexts each
	// worker multiplexes (doorbells become yield points, round-trips
	// overlap). 0 keeps the engine default; 1 is the no-overlap ablation.
	CoroutinesPerWorker int

	// Trace enables per-worker event tracing (DrTM+R systems): each worker
	// records txn/phase/HTM/doorbell/yield events into a preallocated ring
	// and Result.Trace carries the recorders for obs.WriteTrace export.
	Trace bool
	// TraceEventsPerWorker sizes each worker's ring (0 = obs.DefaultCapacity).
	// Rings overwrite oldest-first, so an undersized ring keeps the tail of
	// the run rather than failing.
	TraceEventsPerWorker int

	// DisableVerbBatching forwards the engine's sequential-verb ablation
	// knob (one full round-trip per verb instead of doorbell batches).
	DisableVerbBatching bool

	// ContentionMode forwards txn.Engine.ContentionMode (DrTM+R systems).
	// The zero value is ON — hot-key FIFO gates plus the commutative-delta
	// write path; txn.ContentionOff is the pure-OCC-retry ablation (under
	// which workload Adds degrade to read-modify-writes).
	ContentionMode txn.ContentionMode

	// History records every committed transaction's versioned read/write
	// sets (DrTM+R systems): Result.History carries one recorder per worker
	// and Result.HistoryTxns() the merged history for internal/check.
	History bool

	// Deterministic serializes every worker through a seeded schedule gate:
	// exactly one worker runs between scheduling points (transaction start,
	// doorbell, backoff), and the gate's seeded RNG picks who runs next. The
	// run's interleaving — and therefore its entire Result — becomes a pure
	// function of Options, which is what lets a torture-harness violation be
	// replayed from its seed. Requires an unreplicated system, no kill
	// injection, and the default (quiescent) failure-detector timing; Run
	// panics otherwise.
	Deterministic bool

	// Mutations forwards the protocol-breaking mutation-test switches to
	// every engine (internal/check's mutation mode; all-false = correct
	// protocol).
	Mutations txn.Mutations

	// KillAfter, when >0, kills machine KillNode after that wall-clock delay
	// mid-run (torture cells exercising recovery under load). Lease and
	// HeartbeatEvery then override the cluster's failure-detector timing so
	// the survivors actually detect the death within the run (0 keeps the
	// harness default: effectively never suspect).
	KillAfter      time.Duration
	KillNode       int
	Lease          time.Duration
	HeartbeatEvery time.Duration

	HTM  htm.Config
	Seed uint64
}

// Defaults fills unset fields with the paper's defaults.
func (o Options) Defaults() Options {
	if o.Nodes == 0 {
		o.Nodes = 6
	}
	if o.ThreadsPerNode == 0 {
		o.ThreadsPerNode = 8
	}
	if o.TxPerWorker == 0 {
		o.TxPerWorker = 400
	}
	if o.WarehousesPerNode == 0 {
		o.WarehousesPerNode = o.ThreadsPerNode
	}
	if o.CrossWarehouseNO == 0 {
		o.CrossWarehouseNO = 0.01
	}
	if o.CrossWarehousePay == 0 {
		o.CrossWarehousePay = 0.15
	}
	if o.SBAccountsPerNode == 0 {
		o.SBAccountsPerNode = 10000
	}
	if o.SBRemoteProb == 0 {
		o.SBRemoteProb = 0.01
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

// Result is one experiment measurement.
type Result struct {
	System   System
	Workload Workload

	Committed uint64
	NewOrders uint64 // TPC-C only: the paper's headline metric

	VirtualSec   float64
	TotalTPS     float64
	NewOrderTPS  float64
	AbortRate    float64
	Fallbacks    uint64
	AvgLatencyUs float64

	// Virtual commit-latency percentiles from Lat (DrTM+R systems; zero
	// when the run recorded no histogram). AvgLatencyUs is the histogram
	// mean when Lat is present, the workers/throughput back-computation
	// otherwise.
	P50Us  float64
	P90Us  float64
	P99Us  float64
	P999Us float64

	// Lat holds the per-transaction-type virtual commit-latency histograms
	// (including retries; successful transactions only), merged across all
	// workers. Nil for baseline systems without the instrumented engine.
	Lat *obs.TypedHist

	// AbortMatrix attributes every abort to (reason, pipeline stage,
	// responsible site) — the structured replacement for the flat abort
	// counter. Always populated for DrTM+R systems, even without Trace.
	AbortMatrix obs.AbortMatrix

	// Trace carries each worker's event recorder when Options.Trace was
	// set; export with obs.WriteTrace(w, r.Trace, TraceNames()).
	Trace []*obs.Recorder

	// Phases aggregates the commit pipeline's per-phase verb / doorbell /
	// virtual-latency counters across all workers (DrTM+R systems only;
	// see txn.CommitPhase). CommitBreakdown renders it.
	Phases [txn.NumPhases]txn.PhaseStat

	// History carries each worker's transaction-history recorder when
	// Options.History was set; HistoryTxns() merges them for internal/check.
	History []*obs.HistoryRecorder

	// Coroutine overlap aggregates (DrTM+R with CoroutinesPerWorker > 1):
	// scheduling yields taken, virtual time of fabric round-trips hidden
	// behind other in-flight transactions vs. still stalling the worker,
	// and the peak in-flight transaction count seen on any single worker.
	Yields       uint64
	OverlapNanos uint64
	StallNanos   uint64
	MaxInFlight  uint64

	// Read-only footprint aggregates (DrTM+R systems; see txn.Stats). ROVerbs
	// counts one-sided commit verbs spent on records read but not written —
	// the per-protocol cost of a read-only record. ROWakeups counts CPU
	// deliveries (RPCs, log appends) to machines participating only as
	// read sources; both shipped protocols keep it at zero by construction,
	// and the figure reports the measured value rather than assuming it.
	ROVerbs   uint64
	ROWakeups uint64

	// Contention-manager aggregates (DrTM+R systems). HotKeys ranks records
	// by attributed abort count, worst first — the per-key complement of
	// AbortMatrix. QueueWaits counts hot-key FIFO admissions and QueueWait
	// is the merged queue-wait histogram (zero-count when nothing queued).
	HotKeys    []KeyAborts
	QueueWaits uint64
	QueueWait  obs.Histogram
}

// KeyAborts is one record's attributed abort count (Result.HotKeys).
type KeyAborts struct {
	Key    txn.HotKey
	Aborts uint64
}

// CommitBreakdown renders the per-phase commit-latency breakdown: average
// one-sided verbs, doorbell batches and virtual microseconds per committed
// transaction. Empty for systems without the instrumented pipeline.
func (r Result) CommitBreakdown() string {
	if r.Committed == 0 {
		return ""
	}
	var parts []string
	for p := txn.CommitPhase(0); p < txn.NumPhases; p++ {
		ps := r.Phases[p]
		if ps.Batches == 0 {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s %.2f verbs in %.2f doorbells, %.2fus",
			p,
			float64(ps.Verbs)/float64(r.Committed),
			float64(ps.Batches)/float64(r.Committed),
			float64(ps.Nanos)/float64(r.Committed)/1e3))
	}
	if len(parts) == 0 {
		return ""
	}
	if r.Yields > 0 {
		parts = append(parts, fmt.Sprintf("coroutine overlap %.1f yields, %.2fus hidden, %.2fus stalled, peak %d in-flight/worker",
			float64(r.Yields)/float64(r.Committed),
			float64(r.OverlapNanos)/float64(r.Committed)/1e3,
			float64(r.StallNanos)/float64(r.Committed)/1e3,
			r.MaxInFlight))
	}
	return "commit breakdown per txn: " + strings.Join(parts, "; ")
}

func (r Result) String() string {
	lat := fmt.Sprintf("lat=%6.1fus", r.AvgLatencyUs)
	if r.Lat != nil && r.Lat.All().Count() > 0 {
		lat = fmt.Sprintf("lat=%6.1fus p50=%6.1fus p99=%6.1fus", r.AvgLatencyUs, r.P50Us, r.P99Us)
	}
	if r.Workload == WLTPCC {
		return fmt.Sprintf("%-10s total=%9.0f txns/s  new-order=%9.0f txns/s  abort=%5.1f%%  %s",
			r.System, r.TotalTPS, r.NewOrderTPS, r.AbortRate*100, lat)
	}
	return fmt.Sprintf("%-10s total=%9.0f txns/s  abort=%5.1f%%  %s",
		r.System, r.TotalTPS, r.AbortRate*100, lat)
}

// AbortSummary renders the top abort-attribution cells as
// "reason@stage→nSITE:count" terms, worst first, followed by the top-K hot
// keys ("tTABLE/kKEY:count") so table notes show WHICH records drive the
// tail, not just reason×stage×site. Empty when nothing aborted.
func (r Result) AbortSummary(topN int) string {
	s := r.AbortMatrix.Summary(topN, abortReasonName, txn.StageName)
	if len(r.HotKeys) == 0 {
		return s
	}
	terms := make([]string, 0, topN)
	for i, hk := range r.HotKeys {
		if topN > 0 && i >= topN {
			break
		}
		terms = append(terms, fmt.Sprintf("t%d/k%d:%d", hk.Key.Table, hk.Key.Key, hk.Aborts))
	}
	hot := "hot keys " + strings.Join(terms, " ")
	if s == "" {
		return hot
	}
	return s + "; " + hot
}

// rankHotKeys flattens the merged per-key abort counters, worst first
// (ties break on table then key so the ordering is deterministic).
func rankHotKeys(agg map[txn.HotKey]uint64) []KeyAborts {
	if len(agg) == 0 {
		return nil
	}
	out := make([]KeyAborts, 0, len(agg))
	for k, v := range agg {
		out = append(out, KeyAborts{Key: k, Aborts: v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Aborts != out[j].Aborts {
			return out[i].Aborts > out[j].Aborts
		}
		if out[i].Key.Table != out[j].Key.Table {
			return out[i].Key.Table < out[j].Key.Table
		}
		return out[i].Key.Key < out[j].Key.Key
	})
	return out
}

func abortReasonName(c uint8) string { return txn.AbortReason(c).String() }

// TraceNames wires the transaction engine's stage/reason/HTM-cause namers
// into the trace exporter; pass it to obs.WriteTrace for Result.Trace.
func TraceNames() obs.TraceNames {
	return obs.TraceNames{
		Stage:  txn.StageName,
		Reason: abortReasonName,
		Cause:  func(c uint8) string { return htm.AbortCause(c).String() },
	}
}

// typeNamesFor returns the workload's transaction-type names in TxType order.
func typeNamesFor(w Workload) []string {
	if w == WLTPCC {
		return tpcc.TypeNames()
	}
	return smallbank.TypeNames()
}

// replicasFor maps the system to its replication degree.
func replicasFor(s System) int {
	if s == SysDrTMR3 {
		return 3
	}
	return 1
}

// Run executes one experiment.
func Run(o Options) Result {
	o = o.Defaults()
	switch o.System {
	case SysDrTMR, SysDrTMR3:
		return runDrTMR(o)
	case SysDrTM:
		return runDrTMBaseline(o)
	case SysCalvin:
		return runCalvinBaseline(o)
	case SysSilo:
		return runSiloBaseline(o)
	default:
		panic("harness: unknown system")
	}
}

// buildCluster creates a cluster, per-machine stores and loads the workload
// (primaries and backups).
func buildCluster(o Options, replicas int) (*cluster.Cluster, interface{}) {
	// Throughput experiments never kill machines; an effectively infinite
	// lease prevents false suspicions while the host oversubscribes its
	// cores running worker goroutines. Kill-injection runs override both
	// timings so the survivors detect the death within the run, and
	// deterministic runs stretch the heartbeat period so detector aux-QP
	// traffic never perturbs the NIC queues mid-schedule.
	lease, heartbeat := time.Hour, time.Duration(0)
	if o.Lease > 0 {
		lease = o.Lease
	}
	if o.HeartbeatEvery > 0 {
		heartbeat = o.HeartbeatEvery
	}
	if o.Deterministic {
		heartbeat = time.Hour
	}
	c := cluster.New(cluster.Spec{
		Nodes:          o.Nodes,
		Replicas:       replicas,
		MemBytes:       memFor(o),
		HTM:            o.HTM,
		RDMA:           rdma.Config{NICBytesPerSec: rdma.NICBandwidth56G},
		Lease:          lease,
		HeartbeatEvery: heartbeat,
	})
	cfg0 := c.Coord.Current()
	switch o.Workload {
	case WLTPCC:
		wcfg := tpcc.Config{
			Nodes:              o.Nodes,
			WarehousesPerNode:  o.WarehousesPerNode,
			RemoteNewOrderProb: o.CrossWarehouseNO,
			RemotePaymentProb:  o.CrossWarehousePay,
		}
		for _, m := range c.Machines {
			tpcc.CreateTables(m.Store, wcfg)
		}
		for n := 0; n < o.Nodes; n++ {
			if err := tpcc.Load(c.Machines[n].Store, wcfg, n, o.Seed+uint64(n)); err != nil {
				panic(err)
			}
			for _, b := range cfg0.BackupsOf(cluster.ShardID(n)) {
				for _, w := range wcfg.WarehousesOf(n) {
					if err := tpcc.LoadWarehouse(c.Machines[b].Store, w, simRand(o.Seed+uint64(n)*31+uint64(b))); err != nil {
						panic(err)
					}
				}
			}
		}
		return c, wcfg
	case WLSmallBank:
		hot := o.SBHotFraction
		if hot == 0 {
			hot = 0.04
		}
		wcfg := smallbank.Config{
			AccountsPerNode: o.SBAccountsPerNode,
			Nodes:           o.Nodes,
			RemoteProb:      o.SBRemoteProb,
			HotFraction:     hot,
			ReadOnlyFrac:    o.SBReadOnlyFrac,
			InitialBalance:  10000,
		}
		for _, m := range c.Machines {
			smallbank.CreateTables(m.Store, wcfg)
		}
		for s := 0; s < o.Nodes; s++ {
			shard := cluster.ShardID(s)
			nodes := append([]rdma.NodeID{cfg0.PrimaryOf(shard)}, cfg0.BackupsOf(shard)...)
			for _, nd := range nodes {
				if err := smallbank.Load(c.Machines[nd].Store, wcfg, shard); err != nil {
					panic(err)
				}
			}
		}
		return c, wcfg
	default:
		panic("harness: unknown workload")
	}
}

func memFor(o Options) int {
	if o.Workload == WLTPCC {
		// ~3MB per warehouse (stock dominates) x copies + slack.
		per := 4 << 20
		need := o.WarehousesPerNode * per * 3
		if need < 64<<20 {
			need = 64 << 20
		}
		return need
	}
	need := o.SBAccountsPerNode * 2 * 128 * 3
	if need < 32<<20 {
		need = 32 << 20
	}
	return need
}

// runDrTMR measures DrTM+R (with or without replication).
func runDrTMR(o Options) Result {
	replicas := replicasFor(o.System)
	c, wcfgAny := buildCluster(o, replicas)
	defer c.Stop()

	var engines []*txn.Engine
	switch o.Workload {
	case WLTPCC:
		wcfg := wcfgAny.(tpcc.Config)
		for _, m := range c.Machines {
			engines = append(engines, txn.NewEngine(m, wcfg.Partitioner(m.ID), txn.DefaultCosts()))
		}
	case WLSmallBank:
		wcfg := wcfgAny.(smallbank.Config)
		for _, m := range c.Machines {
			engines = append(engines, txn.NewEngine(m, wcfg.Partitioner(), txn.DefaultCosts()))
		}
	}
	if o.CoroutinesPerWorker > 0 {
		for _, e := range engines {
			e.CoroutinesPerWorker = o.CoroutinesPerWorker
		}
	}
	for _, e := range engines {
		e.DisableVerbBatching = o.DisableVerbBatching
		e.ContentionMode = o.ContentionMode
		e.Mut = o.Mutations
		e.Protocol = o.Protocol
	}
	c.Start()

	var gate *stepGate
	if o.Deterministic {
		if replicas != 1 {
			panic("harness: Deterministic requires an unreplicated system")
		}
		if o.KillAfter > 0 {
			panic("harness: Deterministic requires no kill injection")
		}
		gate = newStepGate(o.Seed^0x9E3779B97F4A7C15, o.Nodes*o.ThreadsPerNode)
	}
	var ticks *obs.TickSource
	if o.History {
		ticks = obs.NewTickSource()
	}
	if o.KillAfter > 0 {
		victim := rdma.NodeID(o.KillNode)
		//drtmr:allow virtualtime the fault-injection instant is harness wall time, outside the replayed schedule
		killTimer := time.AfterFunc(o.KillAfter, func() { c.Kill(victim) })
		defer killTimer.Stop()
	}

	typeNames := typeNamesFor(o.Workload)
	var (
		wg         sync.WaitGroup
		mu         sync.Mutex
		committed  uint64
		newOrders  uint64
		aborts     uint64
		fallbacks  uint64
		maxVirtual int64
		phaseAgg   txn.Stats
		latAgg     = obs.NewTypedHist(typeNames...)
		abortAgg   obs.AbortMatrix
		recorders  []*obs.Recorder
		histories  []*obs.HistoryRecorder
		hotAgg     = make(map[txn.HotKey]uint64)
		queueWaits uint64
		queueHist  obs.Histogram
	)
	for n := 0; n < o.Nodes; n++ {
		for t := 0; t < o.ThreadsPerNode; t++ {
			wg.Add(1)
			go func(node, tid int) {
				defer wg.Done()
				w := engines[node].NewWorker(tid)
				if gate != nil {
					gid := node*o.ThreadsPerNode + tid
					w.SetGate(gate.stepFn(gid))
					defer gate.finish(gid)
				}
				if ticks != nil {
					w.EnableHistory(ticks)
				}
				if o.Trace {
					w.EnableTrace(o.TraceEventsPerWorker)
				}
				// Per-worker histogram of virtual commit latency (measured
				// around each successful transaction, retries included),
				// merged under the lock after the run.
				lat := obs.NewTypedHist(typeNames...)
				var localNO uint64
				// The worker multiplexes its TxPerWorker budget over N
				// coroutines (strict handoff keeps the shared countdown and
				// generator state single-threaded); N=1 runs the classic
				// sequential loop.
				ncoro := engines[node].CoroutinesPerWorker
				remaining := o.TxPerWorker
				switch o.Workload {
				case WLTPCC:
					wcfg := wcfgAny.(tpcc.Config)
					whs := wcfg.WarehousesOf(node)
					home := whs[tid%len(whs)]
					ex := tpcc.NewExecutor(w, tpcc.NewGen(wcfg, home, o.Seed+uint64(node*100+tid)))
					w.RunCoroutines(ncoro, func(int) {
						for remaining > 0 && !engines[node].M.Dead() {
							remaining--
							s := w.Clk.Now()
							ty, err := ex.RunOne()
							if err != nil {
								continue
							}
							lat.Record(int(ty), w.Clk.Now()-s)
							if ty == tpcc.TxNewOrder {
								localNO++
							}
						}
					})
				case WLSmallBank:
					wcfg := wcfgAny.(smallbank.Config)
					g := smallbank.NewGen(wcfg, cluster.ShardID(node), o.Seed+uint64(node*100+tid))
					w.RunCoroutines(ncoro, func(int) {
						for remaining > 0 && !engines[node].M.Dead() {
							remaining--
							p := g.Next()
							s := w.Clk.Now()
							if smallbank.Execute(w, p) == nil {
								lat.Record(int(p.Type), w.Clk.Now()-s)
							}
						}
					})
				}
				mu.Lock()
				committed += w.Stats.Committed
				newOrders += localNO
				aborts += w.Stats.AbortsTotal()
				fallbacks += w.Stats.Fallbacks
				phaseAgg.AddPhases(&w.Stats)
				phaseAgg.AddOverlap(&w.Stats)
				latAgg.Merge(lat)
				abortAgg.Merge(&w.Stats.AbortCells)
				for k, v := range w.Stats.KeyAborts {
					hotAgg[k] += v
				}
				queueWaits += w.Stats.QueueWaits
				queueHist.Merge(&w.Stats.QueueWaitHist)
				if w.Rec != nil {
					recorders = append(recorders, w.Rec)
				}
				if w.Hist != nil {
					histories = append(histories, w.Hist)
				}
				if v := w.Clk.Now(); v > maxVirtual {
					maxVirtual = v
				}
				mu.Unlock()
			}(n, t)
		}
	}
	wg.Wait()
	r := summarize(o, committed, newOrders, aborts, fallbacks, maxVirtual)
	r.Phases = phaseAgg.Phases
	r.Yields = phaseAgg.CoYields
	r.OverlapNanos = phaseAgg.CoOverlapNanos
	r.StallNanos = phaseAgg.CoStallNanos
	r.MaxInFlight = phaseAgg.CoMaxInFlight
	r.Lat = latAgg
	r.AbortMatrix = abortAgg
	r.HotKeys = rankHotKeys(hotAgg)
	r.ROVerbs = phaseAgg.ROVerbs
	r.ROWakeups = phaseAgg.ROWakeups
	r.QueueWaits = queueWaits
	r.QueueWait = queueHist
	r.Trace = recorders
	r.History = histories
	r.applyHistogram()
	return r
}

// HistoryTxns merges every worker's recorded transactions into one history,
// ordered by invocation tick (globally unique, so the order is total and
// independent of the goroutine-completion order the recorders were
// collected in).
func (r Result) HistoryTxns() []obs.HistTxn {
	var out []obs.HistTxn
	for _, h := range r.History {
		out = append(out, h.Txns()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Invoke < out[j].Invoke })
	return out
}

// applyHistogram derives the latency summary fields from Lat. The mean
// REPLACES summarize's workers/throughput back-computation: the two agree
// only when each worker runs one transaction at a time (CoroutinesPerWorker
// = 1; see TestAvgLatencyAgreesWithHistogram) — with N in-flight contexts a
// transaction's latency includes the virtual time peers consume while it is
// parked, which the back-computation divides away.
func (r *Result) applyHistogram() {
	all := r.Lat.All()
	if all.Count() == 0 {
		return
	}
	r.AvgLatencyUs = all.Mean() / 1e3
	r.P50Us = all.Quantile(0.50) / 1e3
	r.P90Us = all.Quantile(0.90) / 1e3
	r.P99Us = all.Quantile(0.99) / 1e3
	r.P999Us = all.Quantile(0.999) / 1e3
}

func summarize(o Options, committed, newOrders, aborts, fallbacks uint64, maxVirtual int64) Result {
	vs := float64(maxVirtual) / 1e9
	if vs <= 0 {
		vs = 1e-9
	}
	r := Result{
		System:     o.System,
		Workload:   o.Workload,
		Committed:  committed,
		NewOrders:  newOrders,
		VirtualSec: vs,
		Fallbacks:  fallbacks,
	}
	r.TotalTPS = float64(committed) / vs
	r.NewOrderTPS = float64(newOrders) / vs
	if committed+aborts > 0 {
		r.AbortRate = float64(aborts) / float64(committed+aborts)
	}
	if committed > 0 {
		workers := float64(o.Nodes * o.ThreadsPerNode)
		r.AvgLatencyUs = vs / (float64(committed) / workers) * 1e6
	}
	return r
}
