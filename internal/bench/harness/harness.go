// Package harness drives the paper's experiments: it builds a simulated
// cluster for a chosen system (DrTM+R with or without replication, DrTM,
// Calvin, Silo), loads a workload (TPC-C or SmallBank), runs worker threads
// for a fixed transaction count, and reports throughput in virtual time —
// committed transactions divided by the slowest worker's virtual elapsed
// time (see internal/sim for why virtual time, not wall-clock, is the right
// denominator for a simulated cluster).
package harness

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"drtmr/internal/bench/smallbank"
	"drtmr/internal/bench/tpcc"
	"drtmr/internal/cluster"
	"drtmr/internal/htm"
	"drtmr/internal/rdma"
	"drtmr/internal/txn"
)

// System selects the system under test.
type System int

// Systems.
const (
	SysDrTMR  System = iota // DrTM+R, no replication
	SysDrTMR3               // DrTM+R with 3-way replication
	SysDrTM                 // DrTM baseline (HTM+2PL, a-priori sets)
	SysCalvin               // Calvin baseline (deterministic, IPoIB)
	SysSilo                 // Silo baseline (single machine)
)

func (s System) String() string {
	switch s {
	case SysDrTMR:
		return "DrTM+R"
	case SysDrTMR3:
		return "DrTM+R/r=3"
	case SysDrTM:
		return "DrTM"
	case SysCalvin:
		return "Calvin"
	case SysSilo:
		return "Silo"
	default:
		return fmt.Sprintf("System(%d)", int(s))
	}
}

// Workload selects the benchmark.
type Workload int

// Workloads.
const (
	WLTPCC Workload = iota
	WLSmallBank
)

// Options configures one experiment run.
type Options struct {
	System   System
	Workload Workload

	Nodes          int
	ThreadsPerNode int
	TxPerWorker    int

	// TPC-C knobs.
	WarehousesPerNode int
	CrossWarehouseNO  float64 // new-order remote supply probability
	CrossWarehousePay float64 // payment remote customer probability

	// SmallBank knobs.
	SBAccountsPerNode int
	SBRemoteProb      float64

	// CoroutinesPerWorker overrides txn.Engine.CoroutinesPerWorker for
	// DrTM+R systems: the number of in-flight transaction contexts each
	// worker multiplexes (doorbells become yield points, round-trips
	// overlap). 0 keeps the engine default; 1 is the no-overlap ablation.
	CoroutinesPerWorker int

	HTM  htm.Config
	Seed uint64
}

// Defaults fills unset fields with the paper's defaults.
func (o Options) Defaults() Options {
	if o.Nodes == 0 {
		o.Nodes = 6
	}
	if o.ThreadsPerNode == 0 {
		o.ThreadsPerNode = 8
	}
	if o.TxPerWorker == 0 {
		o.TxPerWorker = 400
	}
	if o.WarehousesPerNode == 0 {
		o.WarehousesPerNode = o.ThreadsPerNode
	}
	if o.CrossWarehouseNO == 0 {
		o.CrossWarehouseNO = 0.01
	}
	if o.CrossWarehousePay == 0 {
		o.CrossWarehousePay = 0.15
	}
	if o.SBAccountsPerNode == 0 {
		o.SBAccountsPerNode = 10000
	}
	if o.SBRemoteProb == 0 {
		o.SBRemoteProb = 0.01
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

// Result is one experiment measurement.
type Result struct {
	System   System
	Workload Workload

	Committed uint64
	NewOrders uint64 // TPC-C only: the paper's headline metric

	VirtualSec   float64
	TotalTPS     float64
	NewOrderTPS  float64
	AbortRate    float64
	Fallbacks    uint64
	AvgLatencyUs float64

	// Phases aggregates the commit pipeline's per-phase verb / doorbell /
	// virtual-latency counters across all workers (DrTM+R systems only;
	// see txn.CommitPhase). CommitBreakdown renders it.
	Phases [txn.NumPhases]txn.PhaseStat

	// Coroutine overlap aggregates (DrTM+R with CoroutinesPerWorker > 1):
	// scheduling yields taken, virtual time of fabric round-trips hidden
	// behind other in-flight transactions vs. still stalling the worker,
	// and the peak in-flight transaction count seen on any single worker.
	Yields       uint64
	OverlapNanos uint64
	StallNanos   uint64
	MaxInFlight  uint64
}

// CommitBreakdown renders the per-phase commit-latency breakdown: average
// one-sided verbs, doorbell batches and virtual microseconds per committed
// transaction. Empty for systems without the instrumented pipeline.
func (r Result) CommitBreakdown() string {
	if r.Committed == 0 {
		return ""
	}
	var parts []string
	for p := txn.CommitPhase(0); p < txn.NumPhases; p++ {
		ps := r.Phases[p]
		if ps.Batches == 0 {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s %.2f verbs in %.2f doorbells, %.2fus",
			p,
			float64(ps.Verbs)/float64(r.Committed),
			float64(ps.Batches)/float64(r.Committed),
			float64(ps.Nanos)/float64(r.Committed)/1e3))
	}
	if len(parts) == 0 {
		return ""
	}
	if r.Yields > 0 {
		parts = append(parts, fmt.Sprintf("coroutine overlap %.1f yields, %.2fus hidden, %.2fus stalled, peak %d in-flight/worker",
			float64(r.Yields)/float64(r.Committed),
			float64(r.OverlapNanos)/float64(r.Committed)/1e3,
			float64(r.StallNanos)/float64(r.Committed)/1e3,
			r.MaxInFlight))
	}
	return "commit breakdown per txn: " + strings.Join(parts, "; ")
}

func (r Result) String() string {
	if r.Workload == WLTPCC {
		return fmt.Sprintf("%-10s total=%9.0f txns/s  new-order=%9.0f txns/s  abort=%5.1f%%  lat=%6.1fus",
			r.System, r.TotalTPS, r.NewOrderTPS, r.AbortRate*100, r.AvgLatencyUs)
	}
	return fmt.Sprintf("%-10s total=%9.0f txns/s  abort=%5.1f%%  lat=%6.1fus",
		r.System, r.TotalTPS, r.AbortRate*100, r.AvgLatencyUs)
}

// replicasFor maps the system to its replication degree.
func replicasFor(s System) int {
	if s == SysDrTMR3 {
		return 3
	}
	return 1
}

// Run executes one experiment.
func Run(o Options) Result {
	o = o.Defaults()
	switch o.System {
	case SysDrTMR, SysDrTMR3:
		return runDrTMR(o)
	case SysDrTM:
		return runDrTMBaseline(o)
	case SysCalvin:
		return runCalvinBaseline(o)
	case SysSilo:
		return runSiloBaseline(o)
	default:
		panic("harness: unknown system")
	}
}

// buildCluster creates a cluster, per-machine stores and loads the workload
// (primaries and backups).
func buildCluster(o Options, replicas int) (*cluster.Cluster, interface{}) {
	c := cluster.New(cluster.Spec{
		Nodes:    o.Nodes,
		Replicas: replicas,
		MemBytes: memFor(o),
		HTM:      o.HTM,
		RDMA:     rdma.Config{NICBytesPerSec: rdma.NICBandwidth56G},
		// Throughput experiments never kill machines; an effectively
		// infinite lease prevents false suspicions while the host
		// oversubscribes its cores running worker goroutines.
		Lease: time.Hour,
	})
	cfg0 := c.Coord.Current()
	switch o.Workload {
	case WLTPCC:
		wcfg := tpcc.Config{
			Nodes:              o.Nodes,
			WarehousesPerNode:  o.WarehousesPerNode,
			RemoteNewOrderProb: o.CrossWarehouseNO,
			RemotePaymentProb:  o.CrossWarehousePay,
		}
		for _, m := range c.Machines {
			tpcc.CreateTables(m.Store, wcfg)
		}
		for n := 0; n < o.Nodes; n++ {
			if err := tpcc.Load(c.Machines[n].Store, wcfg, n, o.Seed+uint64(n)); err != nil {
				panic(err)
			}
			for _, b := range cfg0.BackupsOf(cluster.ShardID(n)) {
				for _, w := range wcfg.WarehousesOf(n) {
					if err := tpcc.LoadWarehouse(c.Machines[b].Store, w, simRand(o.Seed+uint64(n)*31+uint64(b))); err != nil {
						panic(err)
					}
				}
			}
		}
		return c, wcfg
	case WLSmallBank:
		wcfg := smallbank.Config{
			AccountsPerNode: o.SBAccountsPerNode,
			Nodes:           o.Nodes,
			RemoteProb:      o.SBRemoteProb,
			HotFraction:     0.04,
			InitialBalance:  10000,
		}
		for _, m := range c.Machines {
			smallbank.CreateTables(m.Store, wcfg)
		}
		for s := 0; s < o.Nodes; s++ {
			shard := cluster.ShardID(s)
			nodes := append([]rdma.NodeID{cfg0.PrimaryOf(shard)}, cfg0.BackupsOf(shard)...)
			for _, nd := range nodes {
				if err := smallbank.Load(c.Machines[nd].Store, wcfg, shard); err != nil {
					panic(err)
				}
			}
		}
		return c, wcfg
	default:
		panic("harness: unknown workload")
	}
}

func memFor(o Options) int {
	if o.Workload == WLTPCC {
		// ~3MB per warehouse (stock dominates) x copies + slack.
		per := 4 << 20
		need := o.WarehousesPerNode * per * 3
		if need < 64<<20 {
			need = 64 << 20
		}
		return need
	}
	need := o.SBAccountsPerNode * 2 * 128 * 3
	if need < 32<<20 {
		need = 32 << 20
	}
	return need
}

// runDrTMR measures DrTM+R (with or without replication).
func runDrTMR(o Options) Result {
	replicas := replicasFor(o.System)
	c, wcfgAny := buildCluster(o, replicas)
	defer c.Stop()

	var engines []*txn.Engine
	switch o.Workload {
	case WLTPCC:
		wcfg := wcfgAny.(tpcc.Config)
		for _, m := range c.Machines {
			engines = append(engines, txn.NewEngine(m, wcfg.Partitioner(m.ID), txn.DefaultCosts()))
		}
	case WLSmallBank:
		wcfg := wcfgAny.(smallbank.Config)
		for _, m := range c.Machines {
			engines = append(engines, txn.NewEngine(m, wcfg.Partitioner(), txn.DefaultCosts()))
		}
	}
	if o.CoroutinesPerWorker > 0 {
		for _, e := range engines {
			e.CoroutinesPerWorker = o.CoroutinesPerWorker
		}
	}
	c.Start()

	var (
		wg         sync.WaitGroup
		mu         sync.Mutex
		committed  uint64
		newOrders  uint64
		aborts     uint64
		fallbacks  uint64
		maxVirtual int64
		phaseAgg   txn.Stats
	)
	for n := 0; n < o.Nodes; n++ {
		for t := 0; t < o.ThreadsPerNode; t++ {
			wg.Add(1)
			go func(node, tid int) {
				defer wg.Done()
				w := engines[node].NewWorker(tid)
				var localNO uint64
				// The worker multiplexes its TxPerWorker budget over N
				// coroutines (strict handoff keeps the shared countdown and
				// generator state single-threaded); N=1 runs the classic
				// sequential loop.
				ncoro := engines[node].CoroutinesPerWorker
				remaining := o.TxPerWorker
				switch o.Workload {
				case WLTPCC:
					wcfg := wcfgAny.(tpcc.Config)
					whs := wcfg.WarehousesOf(node)
					home := whs[tid%len(whs)]
					ex := tpcc.NewExecutor(w, tpcc.NewGen(wcfg, home, o.Seed+uint64(node*100+tid)))
					w.RunCoroutines(ncoro, func(int) {
						for remaining > 0 {
							remaining--
							ty, err := ex.RunOne()
							if err != nil {
								continue
							}
							if ty == tpcc.TxNewOrder {
								localNO++
							}
						}
					})
				case WLSmallBank:
					wcfg := wcfgAny.(smallbank.Config)
					g := smallbank.NewGen(wcfg, cluster.ShardID(node), o.Seed+uint64(node*100+tid))
					w.RunCoroutines(ncoro, func(int) {
						for remaining > 0 {
							remaining--
							_ = smallbank.Execute(w, g.Next())
						}
					})
				}
				mu.Lock()
				committed += w.Stats.Committed
				newOrders += localNO
				aborts += w.Stats.AbortsTotal()
				fallbacks += w.Stats.Fallbacks
				phaseAgg.AddPhases(&w.Stats)
				phaseAgg.AddOverlap(&w.Stats)
				if v := w.Clk.Now(); v > maxVirtual {
					maxVirtual = v
				}
				mu.Unlock()
			}(n, t)
		}
	}
	wg.Wait()
	r := summarize(o, committed, newOrders, aborts, fallbacks, maxVirtual)
	r.Phases = phaseAgg.Phases
	r.Yields = phaseAgg.CoYields
	r.OverlapNanos = phaseAgg.CoOverlapNanos
	r.StallNanos = phaseAgg.CoStallNanos
	r.MaxInFlight = phaseAgg.CoMaxInFlight
	return r
}

func summarize(o Options, committed, newOrders, aborts, fallbacks uint64, maxVirtual int64) Result {
	vs := float64(maxVirtual) / 1e9
	if vs <= 0 {
		vs = 1e-9
	}
	r := Result{
		System:     o.System,
		Workload:   o.Workload,
		Committed:  committed,
		NewOrders:  newOrders,
		VirtualSec: vs,
		Fallbacks:  fallbacks,
	}
	r.TotalTPS = float64(committed) / vs
	r.NewOrderTPS = float64(newOrders) / vs
	if committed+aborts > 0 {
		r.AbortRate = float64(aborts) / float64(committed+aborts)
	}
	if committed > 0 {
		workers := float64(o.Nodes * o.ThreadsPerNode)
		r.AvgLatencyUs = vs / (float64(committed) / workers) * 1e6
	}
	return r
}
