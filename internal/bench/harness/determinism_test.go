package harness

import "testing"

// TestDeterministicReplay is the determinism regression test: two runs with
// identical Options must produce bit-identical Results — same commits, same
// latency histogram buckets, same abort matrix, same interleaving-sensitive
// history — so a violating torture seed replays exactly.
func TestDeterministicReplay(t *testing.T) {
	o := Options{
		System: SysDrTMR, Workload: WLSmallBank,
		Nodes: 3, ThreadsPerNode: 2, TxPerWorker: 50,
		SBAccountsPerNode: 40, SBRemoteProb: 0.4,
		CoroutinesPerWorker: 4, History: true, Deterministic: true, Seed: 7,
	}
	a, b := Run(o), Run(o)
	fa, fb := a.Fingerprint(), b.Fingerprint()
	if fa != fb {
		t.Fatalf("same seed diverged: %s vs %s (committed %d vs %d)",
			fa, fb, a.Committed, b.Committed)
	}
	if a.Committed == 0 || len(a.HistoryTxns()) == 0 {
		t.Fatalf("degenerate run proves nothing: committed=%d hist=%d",
			a.Committed, len(a.HistoryTxns()))
	}

	// Sanity: the fingerprint actually discriminates — a different seed
	// must not collide (it schedules differently, so histories differ).
	o.Seed = 8
	if c := Run(o); c.Fingerprint() == fa {
		t.Fatal("different seed produced an identical fingerprint; the fingerprint is too weak")
	}
}
