package harness

import (
	"fmt"
	"hash/fnv"

	"drtmr/internal/obs"
)

// Fingerprint hashes every observable field of the Result — counters,
// throughput floats (bit-exact), full histogram bucket contents, the abort
// matrix, per-phase verb counters, coroutine overlap counters, and the
// complete transaction history when recorded — into one hex token. Two runs
// with the same Options produce the same fingerprint iff they produced
// bit-identical Results; the determinism regression test compares these.
func (r Result) Fingerprint() string {
	h := fnv.New64a()
	put := func(format string, args ...any) { fmt.Fprintf(h, format, args...) }
	put("sys=%d wl=%d c=%d no=%d vs=%b tps=%b notps=%b ar=%b fb=%d avg=%b p50=%b p90=%b p99=%b p999=%b",
		r.System, r.Workload, r.Committed, r.NewOrders, r.VirtualSec, r.TotalTPS,
		r.NewOrderTPS, r.AbortRate, r.Fallbacks, r.AvgLatencyUs, r.P50Us, r.P90Us, r.P99Us, r.P999Us)
	if r.Lat != nil {
		hist := func(tag string, g *obs.Histogram) {
			put("|%s n=%d sum=%d min=%d max=%d", tag, g.Count(), g.Sum(), g.Min(), g.Max())
			g.Fold(func(b int, c uint64) { put(" %d:%d", b, c) })
		}
		hist("all", r.Lat.All())
		for i := range r.Lat.H {
			hist(r.Lat.Names[i], &r.Lat.H[i])
		}
	}
	for _, c := range r.AbortMatrix.Cells() {
		put("|ab %d@%d/%d=%d", c.Reason, c.Stage, c.Site, c.Count)
	}
	for i, ps := range r.Phases {
		put("|ph%d v=%d b=%d ns=%d", i, ps.Verbs, ps.Batches, ps.Nanos)
	}
	put("|co y=%d ov=%d st=%d mif=%d", r.Yields, r.OverlapNanos, r.StallNanos, r.MaxInFlight)
	for _, t := range r.HistoryTxns() {
		put("|tx %x n%d w%d ro=%t m=%t i=%d r=%d vs=%d ve=%d",
			t.ID, t.Node, t.Worker, t.ReadOnly, t.Maybe, t.Invoke, t.Response, t.VStart, t.VEnd)
		for _, op := range t.Ops {
			put(";%d t%d k%d s%d i%d %t", op.Kind, op.Table, op.Key, op.Seq, op.Inc, op.HaveInc)
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
