package harness

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"

	"drtmr/internal/obs"
)

func TestSmokeAllSystems(t *testing.T) {
	base := Options{Nodes: 2, ThreadsPerNode: 2, TxPerWorker: 40, WarehousesPerNode: 2}
	for _, sys := range []System{SysDrTMR, SysDrTMR3, SysDrTM, SysCalvin, SysSilo} {
		o := base
		o.System = sys
		r := Run(o)
		fmt.Printf("%v\n", r)
		if r.Committed == 0 {
			t.Errorf("%v: nothing committed", sys)
		}
	}
	o := base
	o.Workload = WLSmallBank
	o.SBAccountsPerNode = 500
	r := Run(o)
	fmt.Printf("smallbank: %v\n", r)
	if r.Committed == 0 {
		t.Error("smallbank: nothing committed")
	}
}

// TestAvgLatencyAgreesWithHistogram pins the AvgLatencyUs fix: the reported
// latency now comes from the recorded histogram mean, and at one transaction
// per worker at a time (CoroutinesPerWorker=1) it must agree with the old
// workers/throughput back-computation — virtual seconds divided by committed
// transactions per worker — since then a worker's virtual time is exactly
// the sum of its transactions' latencies (modulo worker skew: VirtualSec is
// the SLOWEST worker's clock, so the back-computation overestimates a bit).
func TestAvgLatencyAgreesWithHistogram(t *testing.T) {
	r := Run(Options{
		System: SysDrTMR, Workload: WLSmallBank,
		Nodes: 3, ThreadsPerNode: 2, TxPerWorker: 150,
		SBAccountsPerNode: 500, CoroutinesPerWorker: 1,
	})
	if r.Lat == nil || r.Lat.All().Count() == 0 {
		t.Fatal("no latency histogram recorded")
	}
	if r.Lat.All().Count() != r.Committed {
		t.Errorf("histogram count %d != committed %d", r.Lat.All().Count(), r.Committed)
	}
	hist := r.AvgLatencyUs
	workers := 3.0 * 2.0
	back := r.VirtualSec / (float64(r.Committed) / workers) * 1e6
	if rel := math.Abs(hist-back) / back; rel > 0.30 {
		t.Errorf("histogram mean %.1fus disagrees with back-computation %.1fus by %.0f%%",
			hist, back, rel*100)
	}
	if !(r.P50Us > 0 && r.P50Us <= r.P90Us && r.P90Us <= r.P99Us && r.P99Us <= r.P999Us) {
		t.Errorf("percentiles not monotone: p50=%.1f p90=%.1f p99=%.1f p999=%.1f",
			r.P50Us, r.P90Us, r.P99Us, r.P999Us)
	}
	if r.AbortMatrix.Total() == 0 && r.AbortRate > 0 {
		t.Error("aborts happened but the attribution matrix is empty")
	}
}

// TestHarnessTraceExport runs a traced SmallBank experiment and round-trips
// the recorders through the Chrome-trace writer and validator.
func TestHarnessTraceExport(t *testing.T) {
	r := Run(Options{
		System: SysDrTMR, Workload: WLSmallBank,
		Nodes: 3, ThreadsPerNode: 2, TxPerWorker: 60,
		SBAccountsPerNode: 500, SBRemoteProb: 0.2,
		CoroutinesPerWorker: 2, Trace: true,
	})
	if len(r.Trace) != 3*2 {
		t.Fatalf("got %d recorders, want one per worker (6)", len(r.Trace))
	}
	var buf bytes.Buffer
	if err := obs.WriteTrace(&buf, r.Trace, TraceNames()); err != nil {
		t.Fatal(err)
	}
	cats, err := obs.ValidateTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("invalid trace: %v", err)
	}
	for _, cat := range []string{"txn", "phase", "doorbell", "sched"} {
		if cats[cat] == 0 {
			t.Errorf("trace missing %q events (got %v)", cat, cats)
		}
	}
}

// TestFigureLatencyTables smoke-runs the new latency figure and Table 6 and
// checks the percentile rows are present and sane.
func TestFigureLatencyTables(t *testing.T) {
	lat := FigLatencyCDF(Smoke)
	if len(lat.Rows) != 7 {
		t.Fatalf("latency CDF has %d rows, want 7", len(lat.Rows))
	}
	for col := 0; col < 2; col++ {
		prev := 0.0
		for _, row := range lat.Rows {
			if row.Values[col] < prev {
				t.Errorf("%s: %s %s not monotone", lat.Title, row.XName, lat.Columns[col])
			}
			prev = row.Values[col]
		}
	}
	t6 := Table6(Smoke)
	var haveP50, haveP99 bool
	for _, row := range t6.Rows {
		if row.XName == "p50 us" && row.Values[0] > 0 {
			haveP50 = true
		}
		if row.XName == "p99 us" && row.Values[0] > 0 {
			haveP99 = true
		}
	}
	if !haveP50 || !haveP99 {
		t.Errorf("Table 6 missing percentile rows: %+v", t6.Rows)
	}
	var buf bytes.Buffer
	t6.Fprint(&buf)
	if !strings.Contains(buf.String(), "p99 us") {
		t.Error("rendered Table 6 lacks the p99 row")
	}
}
