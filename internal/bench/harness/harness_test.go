package harness

import (
	"fmt"
	"testing"
)

func TestSmokeAllSystems(t *testing.T) {
	base := Options{Nodes: 2, ThreadsPerNode: 2, TxPerWorker: 40, WarehousesPerNode: 2}
	for _, sys := range []System{SysDrTMR, SysDrTMR3, SysDrTM, SysCalvin, SysSilo} {
		o := base
		o.System = sys
		r := Run(o)
		fmt.Printf("%v\n", r)
		if r.Committed == 0 {
			t.Errorf("%v: nothing committed", sys)
		}
	}
	o := base
	o.Workload = WLSmallBank
	o.SBAccountsPerNode = 500
	r := Run(o)
	fmt.Printf("smallbank: %v\n", r)
	if r.Committed == 0 {
		t.Error("smallbank: nothing committed")
	}
}
