// Package serveload holds the one benchmark figure that runs through the
// real network front door (internal/serve) instead of driving workers
// in-process. It lives outside internal/bench/harness because harness is
// imported by internal/check, which serve's own tests use — the figure
// depending on serve from inside harness would close an import cycle.
package serveload

import (
	"fmt"

	"drtmr/internal/bench/harness"
	"drtmr/internal/bench/smallbank"
	"drtmr/internal/serve"
)

// FigServeOverload sweeps open-loop offered load through 2× saturation
// against a live drtmr-serve over TCP, with the admission controller on
// versus off (-fig serve; BENCH_serve_overload.json). The claim under test:
// watermark shedding keeps the *accepted* requests' p99 bounded at
// overload — paying for it with an explicit shed rate — while the
// no-shedding ablation queues without limit and its p99 collapses to the
// run length. Unlike every other figure, both axes are wall time: this is
// the one benchmark that runs through the real network front door.
func FigServeOverload(scale harness.Scale) harness.Table {
	t := harness.Table{
		Title:   "Serve overload: open-loop fleet vs admission control (wall time)",
		XLabel:  "offered/saturation",
		Columns: []string{"on tps", "on p99ms", "on shed%", "off tps", "off p99ms"},
	}
	// The mix is audit-heavy (span-128 cold sweeps, ~13ms modeled service
	// each): executor residency, not the loopback RTT or the host's core
	// count, is the scarce resource, so "saturation" means the executor
	// pool — the regime admission control exists for. Users give ~2.5x
	// headroom over the watermark, so the client fleet itself never becomes
	// the hidden bottleneck on the admission-on side.
	nodes, accounts, workers, users, calls := 3, 10000, 2, 64, 6000
	mults := []float64{0.25, 0.5, 1.0, 1.5, 2.0}
	if scale == harness.Smoke {
		nodes, accounts, users, calls = 2, 2000, 32, 1600
		mults = []float64{0.25, 2.0}
	}
	watermark := 4 * nodes * workers
	cfg := smallbank.Config{
		AccountsPerNode: accounts,
		Nodes:           nodes,
		RemoteProb:      0.1,
		InitialBalance:  10000,
	}

	// startCell boots a fresh loaded server per measurement so one cell's
	// backlog (the ablation's unbounded queue) cannot leak into the next.
	startCell := func(admissionOff bool) (string, func()) {
		db, err := serve.OpenBank(cfg, 1)
		if err != nil {
			panic(err)
		}
		s := serve.New(db, serve.Options{
			WorkersPerNode: workers,
			Admission:      serve.AdmissionConfig{Disabled: admissionOff, MaxQueue: watermark},
		})
		if err := serve.RegisterBank(s, cfg, serve.BankProcs{}); err != nil {
			panic(err)
		}
		addr, err := s.Start("127.0.0.1:0")
		if err != nil {
			panic(err)
		}
		return addr.String(), s.Close
	}

	fleet := func(addr string, rate float64, n int) serve.FleetResult {
		return serve.RunFleet(serve.FleetOptions{
			Addr:      addr,
			Users:     users,
			Rate:      rate,
			Calls:     n,
			Skew:      0.9,
			Accounts:  accounts * nodes,
			ReadFrac:  0.05,
			AuditFrac: 0.75,
			AuditSpan: 128,
			Seed:      29,
		})
	}

	// Calibrate saturation: a closed-loop flood (rate 0) against an
	// admission-OFF server measures the accepted-throughput ceiling the
	// sweep's multipliers are relative to. Off, because flooding a watermark
	// would spend the run bouncing sheds instead of measuring capacity.
	addr, stop := startCell(true)
	cal := fleet(addr, 0, calls/2)
	stop()
	satTPS := float64(cal.OK) / cal.Elapsed.Seconds()
	t.Notes = append(t.Notes, fmt.Sprintf("saturation (closed-loop, %d users): %.0f tps", users, satTPS))

	for _, m := range mults {
		rate := m * satTPS
		n := calls
		if m < 1 {
			n = int(float64(calls) * m) // low-load cells: same wall time, enough samples
		}

		addrOn, stopOn := startCell(false)
		on := fleet(addrOn, rate, n)
		stopOn()
		addrOff, stopOff := startCell(true)
		off := fleet(addrOff, rate, n)
		stopOff()

		shedPct := 100 * float64(on.ShedBusy+on.ShedDeadline) / float64(on.Offered)
		t.Rows = append(t.Rows, harness.Row{
			X: m, XName: fmt.Sprintf("%.2fx", m),
			Values: []float64{
				float64(on.OK) / on.Elapsed.Seconds(),
				on.Lat.Quantile(0.99) / 1e6,
				shedPct,
				float64(off.OK) / off.Elapsed.Seconds(),
				off.Lat.Quantile(0.99) / 1e6,
			},
		})
		if on.Dropped != 0 || off.Dropped != 0 {
			t.Notes = append(t.Notes, fmt.Sprintf("%.2fx: DROPPED on=%d off=%d (must be 0)", m, on.Dropped, off.Dropped))
		}
	}

	// The acceptance ratio: accepted p99 at the deepest overload vs the
	// unsaturated baseline, admission on. The ablation's ratio shows the
	// tail collapse shedding prevents.
	if len(t.Rows) >= 2 {
		base := t.Rows[0].Values[1]
		last := t.Rows[len(t.Rows)-1]
		if base > 0 {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"p99 growth at %s vs %s: admission on %.1fx (shed %.1f%%), off %.1fx",
				last.XName, t.Rows[0].XName, last.Values[1]/base, last.Values[2], last.Values[4]/base))
		}
	}
	return t
}
