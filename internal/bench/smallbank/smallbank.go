// Package smallbank implements the SmallBank benchmark (H-Store variant, as
// used in the paper's §7): a simple banking application with two tables
// (checking and savings balances) and six transaction types, four of which
// are read-write and two read-only (Table 5):
//
//	send-payment (SP)          25%  read-write  2 accounts (distributable)
//	amalgamate (AMG)           15%  read-write  2 accounts (distributable)
//	deposit-checking (DC)      15%  read-write  1 account
//	withdraw-from-checking(WC) 15%  read-write  1 account
//	transfer-to-savings (TS)   15%  read-write  1 account
//	balance (BAL)              15%  read-only   1 account
//
// Access is skewed: a few hot accounts receive most requests. The paper's
// distributed-transaction knob is the probability that SP and AMG pick their
// second account on a different machine.
package smallbank

import (
	"encoding/binary"
	"fmt"

	"drtmr/internal/cluster"
	"drtmr/internal/memstore"
	"drtmr/internal/sim"
	"drtmr/internal/txn"
)

// Table IDs.
const (
	TableChecking memstore.TableID = 10
	TableSavings  memstore.TableID = 11
)

// TxType enumerates the six SmallBank procedures.
type TxType int

const (
	TxSendPayment TxType = iota
	TxAmalgamate
	TxDepositChecking
	TxWithdrawChecking
	TxTransferSavings
	TxBalance
	numTxTypes
)

func (t TxType) String() string {
	switch t {
	case TxSendPayment:
		return "send-payment"
	case TxAmalgamate:
		return "amalgamate"
	case TxDepositChecking:
		return "deposit-checking"
	case TxWithdrawChecking:
		return "withdraw-from-checking"
	case TxTransferSavings:
		return "transfer-to-savings"
	case TxBalance:
		return "balance"
	default:
		return fmt.Sprintf("TxType(%d)", int(t))
	}
}

// Mix is the standard transaction mix (percent).
var Mix = [numTxTypes]int{25, 15, 15, 15, 15, 15}

// TypeNames returns the procedure names in TxType order, for indexing
// per-type latency histograms (obs.TypedHist).
func TypeNames() []string {
	names := make([]string, numTxTypes)
	for t := TxType(0); t < numTxTypes; t++ {
		names[t] = t.String()
	}
	return names
}

// Config shapes a SmallBank deployment.
type Config struct {
	// AccountsPerNode is the number of accounts each machine hosts.
	AccountsPerNode int
	// Nodes is the cluster size; account a lives on node a/AccountsPerNode.
	Nodes int
	// RemoteProb is the probability that SP/AMG's second account is on a
	// different machine (the paper sweeps 1%, 5%, 10%).
	RemoteProb float64
	// HotRatio of accounts receive most requests (skew).
	HotFraction float64
	// ReadOnlyFrac, when >0, overrides the standard mix's read-only share:
	// Balance is drawn with this probability and the five read-write types
	// keep their relative weights for the remainder. It also unlocks two
	// read-footprint behaviours the protocol-matrix figure needs: Balance
	// reads a possibly-remote account (RemoteProb), and SendPayment
	// audit-reads the destination's savings record — a record that stays in
	// the read set without ever being written, which is exactly where the
	// commit protocols' verb costs diverge. 0 keeps the standard mix (and
	// its exact draw sequence) untouched.
	ReadOnlyFrac float64
	// InitialBalance per account (both tables).
	InitialBalance uint64
}

// DefaultConfig mirrors the paper's setup at a laptop-friendly scale.
func DefaultConfig(nodes int) Config {
	return Config{
		AccountsPerNode: 10000,
		Nodes:           nodes,
		RemoteProb:      0.01,
		HotFraction:     0.04,
		InitialBalance:  10000,
	}
}

// Balance values are stored as little-endian uint64 in 16-byte records
// (cents would be fixed-point; the benchmark only needs conservation).
const valueSize = 16

// EncBalance serializes a balance.
func EncBalance(v uint64) []byte {
	b := make([]byte, valueSize)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

// DecBalance deserializes a balance.
func DecBalance(b []byte) uint64 { return binary.LittleEndian.Uint64(b[:8]) }

// BalanceOff is the balance field's offset for commutative adds (txn.Add):
// unconditional credits (DepositChecking, the credit half of SendPayment and
// TransferSavings) are delta-shaped — no transaction branches on the value —
// so they commute instead of conflicting on the Zipfian hot accounts.
// Debits stay read-modify-writes: the insufficient-funds check needs the
// balance.
const BalanceOff = 0

// Partitioner returns the shard (= hosting machine) of an account key.
func (c Config) Partitioner() txn.Partitioner {
	per := uint64(c.AccountsPerNode)
	n := uint64(c.Nodes)
	return func(table memstore.TableID, key uint64) cluster.ShardID {
		s := key / per
		if s >= n {
			s = n - 1
		}
		return cluster.ShardID(s)
	}
}

// CreateTables registers the two balance tables on a machine's store.
func CreateTables(store *memstore.Store, c Config) {
	for _, id := range []memstore.TableID{TableChecking, TableSavings} {
		name := "checking"
		if id == TableSavings {
			name = "savings"
		}
		store.CreateTable(id, memstore.TableSpec{
			Name:         name,
			ValueSize:    valueSize,
			ExpectedRows: c.AccountsPerNode * 2,
		})
	}
}

// Load populates machine node's share of accounts (call for primaries and,
// with the same arguments, for each backup holding a copy).
func Load(store *memstore.Store, c Config, shard cluster.ShardID) error {
	lo := uint64(shard) * uint64(c.AccountsPerNode)
	hi := lo + uint64(c.AccountsPerNode)
	for key := lo; key < hi; key++ {
		for _, id := range []memstore.TableID{TableChecking, TableSavings} {
			if _, err := store.Table(id).Insert(key, EncBalance(c.InitialBalance)); err != nil {
				return fmt.Errorf("smallbank load key %d: %w", key, err)
			}
		}
	}
	return nil
}

// Gen draws SmallBank transactions for one worker homed on a machine.
type Gen struct {
	cfg  Config
	home cluster.ShardID
	rng  *sim.Rand
}

// NewGen creates a generator for a worker on machine home.
func NewGen(cfg Config, home cluster.ShardID, seed uint64) *Gen {
	return &Gen{cfg: cfg, home: home, rng: sim.NewRand(seed)}
}

// NextType draws from the standard mix, or — when Config.ReadOnlyFrac is
// set — draws Balance with that probability and one of the five read-write
// types (relative weights preserved) otherwise. The default path keeps its
// exact draw sequence so existing seeded runs replay unchanged.
func (g *Gen) NextType() TxType {
	if g.cfg.ReadOnlyFrac > 0 {
		if g.rng.Bool(g.cfg.ReadOnlyFrac) {
			return TxBalance
		}
		// Read-write weights sum to 85 (Mix minus Balance's 15).
		p := g.rng.Intn(85)
		acc := 0
		for t := 0; t < int(numTxTypes)-1; t++ {
			acc += Mix[t]
			if p < acc {
				return TxType(t)
			}
		}
		return TxSendPayment
	}
	p := g.rng.Intn(100)
	acc := 0
	for t := 0; t < int(numTxTypes); t++ {
		acc += Mix[t]
		if p < acc {
			return TxType(t)
		}
	}
	return TxBalance
}

// account draws a (skewed) account on the given machine.
func (g *Gen) account(shard cluster.ShardID) uint64 {
	base := uint64(shard) * uint64(g.cfg.AccountsPerNode)
	hot := int(float64(g.cfg.AccountsPerNode) * g.cfg.HotFraction)
	if hot < 1 {
		hot = 1
	}
	// 90% of requests hit the hot set (skewed access, §7.1).
	if g.rng.Bool(0.9) {
		return base + uint64(g.rng.Zipf(hot, 0.8))
	}
	return base + uint64(g.rng.Intn(g.cfg.AccountsPerNode))
}

// remoteShard picks a machine other than home.
func (g *Gen) remoteShard() cluster.ShardID {
	if g.cfg.Nodes <= 1 {
		return g.home
	}
	s := cluster.ShardID(g.rng.Intn(g.cfg.Nodes - 1))
	if s >= g.home {
		s++
	}
	return s
}

// Params is one generated transaction.
type Params struct {
	Type   TxType
	Acct1  uint64
	Acct2  uint64
	Amount uint64
	// Distributed reports whether Acct2 is on a different machine.
	Distributed bool
	// AuditRead makes SendPayment read the destination's savings balance
	// (a read-only record in a read-write transaction) before crediting.
	// Set only under Config.ReadOnlyFrac > 0.
	AuditRead bool
}

// Next generates the next transaction's parameters.
func (g *Gen) Next() Params {
	t := g.NextType()
	p := Params{Type: t, Amount: uint64(1 + g.rng.Intn(100))}
	p.Acct1 = g.account(g.home)
	if t == TxBalance && g.cfg.ReadOnlyFrac > 0 && g.rng.Bool(g.cfg.RemoteProb) {
		shard := g.remoteShard()
		p.Acct1 = g.account(shard)
		p.Distributed = shard != g.home
	}
	if t == TxSendPayment || t == TxAmalgamate {
		shard2 := g.home
		if g.rng.Bool(g.cfg.RemoteProb) {
			shard2 = g.remoteShard()
			p.Distributed = shard2 != g.home
		}
		p.Acct2 = g.account(shard2)
		if p.Acct2 == p.Acct1 {
			p.Acct2 = p.Acct1 + 1
			if g.cfg.Partitioner()(TableChecking, p.Acct2) != shard2 {
				p.Acct2 = p.Acct1 - 1
			}
		}
		if t == TxSendPayment && g.cfg.ReadOnlyFrac > 0 {
			p.AuditRead = true
		}
	}
	return p
}

// Execute runs one SmallBank transaction on a DrTM+R worker.
func Execute(w *txn.Worker, p Params) error {
	switch p.Type {
	case TxBalance:
		return w.RunReadOnly(func(tx *txn.Txn) error {
			c, err := tx.Read(TableChecking, p.Acct1)
			if err != nil {
				return err
			}
			s, err := tx.Read(TableSavings, p.Acct1)
			if err != nil {
				return err
			}
			_ = DecBalance(c) + DecBalance(s)
			return nil
		})
	case TxDepositChecking:
		return w.Run(func(tx *txn.Txn) error {
			// Pure credit: a commutative add, no read set at all.
			return tx.Add(TableChecking, p.Acct1, BalanceOff, p.Amount)
		})
	case TxWithdrawChecking:
		return w.Run(func(tx *txn.Txn) error {
			c, err := tx.Read(TableChecking, p.Acct1)
			if err != nil {
				return err
			}
			bal := DecBalance(c)
			if bal < p.Amount {
				return nil // insufficient funds: commit as no-op
			}
			return tx.Write(TableChecking, p.Acct1, EncBalance(bal-p.Amount))
		})
	case TxTransferSavings:
		return w.Run(func(tx *txn.Txn) error {
			c, err := tx.Read(TableChecking, p.Acct1)
			if err != nil {
				return err
			}
			amt := p.Amount
			if DecBalance(c) < amt {
				return nil
			}
			// Debit needs the funds check above; the savings credit is a
			// commutative add.
			if err := tx.Write(TableChecking, p.Acct1, EncBalance(DecBalance(c)-amt)); err != nil {
				return err
			}
			return tx.Add(TableSavings, p.Acct1, BalanceOff, amt)
		})
	case TxSendPayment:
		return w.Run(func(tx *txn.Txn) error {
			c1, err := tx.Read(TableChecking, p.Acct1)
			if err != nil {
				return err
			}
			bal := DecBalance(c1)
			if bal < p.Amount {
				return nil
			}
			if p.AuditRead {
				// Destination standing check: the savings record enters the
				// read set and is never written — the read-only-record case
				// the commit protocols price differently.
				s2, err := tx.Read(TableSavings, p.Acct2)
				if err != nil {
					return err
				}
				_ = DecBalance(s2)
			}
			// The debit needs the funds check; the credit to the (often
			// hot, often remote) destination is a commutative add.
			if err := tx.Write(TableChecking, p.Acct1, EncBalance(bal-p.Amount)); err != nil {
				return err
			}
			return tx.Add(TableChecking, p.Acct2, BalanceOff, p.Amount)
		})
	case TxAmalgamate:
		return w.Run(func(tx *txn.Txn) error {
			s1, err := tx.Read(TableSavings, p.Acct1)
			if err != nil {
				return err
			}
			c1, err := tx.Read(TableChecking, p.Acct1)
			if err != nil {
				return err
			}
			c2, err := tx.Read(TableChecking, p.Acct2)
			if err != nil {
				return err
			}
			total := DecBalance(s1) + DecBalance(c1)
			if err := tx.Write(TableSavings, p.Acct1, EncBalance(0)); err != nil {
				return err
			}
			if err := tx.Write(TableChecking, p.Acct1, EncBalance(0)); err != nil {
				return err
			}
			return tx.Write(TableChecking, p.Acct2, EncBalance(DecBalance(c2)+total))
		})
	default:
		return fmt.Errorf("smallbank: unknown tx type %d", p.Type)
	}
}
