package smallbank

import (
	"sync"
	"testing"

	"drtmr/internal/cluster"
	"drtmr/internal/memstore"
	"drtmr/internal/rdma"
	"drtmr/internal/txn"
)

func smallWorld(t *testing.T, nodes, replicas int, cfg Config) (*cluster.Cluster, []*txn.Engine) {
	t.Helper()
	c := cluster.New(cluster.Spec{
		Nodes: nodes, Replicas: replicas, MemBytes: 32 << 20, RingBytes: 1 << 17,
	})
	var engines []*txn.Engine
	for _, m := range c.Machines {
		CreateTables(m.Store, cfg)
		engines = append(engines, txn.NewEngine(m, cfg.Partitioner(), txn.DefaultCosts()))
	}
	// Load primaries and backups.
	initCfg := c.Coord.Current()
	for s := 0; s < nodes; s++ {
		shard := cluster.ShardID(s)
		nodesFor := append([]rdma.NodeID{initCfg.PrimaryOf(shard)}, initCfg.BackupsOf(shard)...)
		for _, nd := range nodesFor {
			if err := Load(c.Machines[nd].Store, cfg, shard); err != nil {
				t.Fatal(err)
			}
		}
	}
	c.Start()
	t.Cleanup(c.Stop)
	return c, engines
}

func totalMoney(c *cluster.Cluster, cfg Config) uint64 {
	var total uint64
	initCfg := c.Coord.Current()
	for s := 0; s < cfg.Nodes; s++ {
		m := c.Machines[initCfg.PrimaryOf(cluster.ShardID(s))]
		lo := uint64(s) * uint64(cfg.AccountsPerNode)
		for k := lo; k < lo+uint64(cfg.AccountsPerNode); k++ {
			for _, id := range []memstore.TableID{TableChecking, TableSavings} {
				off, ok := m.Store.Table(id).Lookup(k)
				if ok {
					total += DecBalance(m.Store.Table(id).ReadValueNonTx(off))
				}
			}
		}
	}
	return total
}

func TestMixMatchesTable5(t *testing.T) {
	g := NewGen(DefaultConfig(2), 0, 42)
	var counts [numTxTypes]int
	const n = 20000
	for i := 0; i < n; i++ {
		counts[g.NextType()]++
	}
	for ty := 0; ty < int(numTxTypes); ty++ {
		got := float64(counts[ty]) / n * 100
		want := float64(Mix[ty])
		if got < want-2 || got > want+2 {
			t.Errorf("%v: %.1f%% want ~%d%%", TxType(ty), got, Mix[ty])
		}
	}
}

func TestDistributedProbabilityKnob(t *testing.T) {
	cfg := DefaultConfig(3)
	cfg.AccountsPerNode = 100
	cfg.RemoteProb = 0.5
	g := NewGen(cfg, 0, 7)
	dist, spAmg := 0, 0
	for i := 0; i < 20000; i++ {
		p := g.Next()
		if p.Type == TxSendPayment || p.Type == TxAmalgamate {
			spAmg++
			if p.Distributed {
				dist++
			}
		}
	}
	frac := float64(dist) / float64(spAmg)
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("distributed fraction %.2f, want ~0.5", frac)
	}
}

func TestConservationUnderMixedLoad(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.AccountsPerNode = 200
	cfg.RemoteProb = 0.3
	c, engines := smallWorld(t, 2, 1, cfg)
	before := totalMoney(c, cfg)
	var wg sync.WaitGroup
	var depositDelta [4]int64
	for n := 0; n < 2; n++ {
		for wi := 0; wi < 2; wi++ {
			wg.Add(1)
			go func(node, id int) {
				defer wg.Done()
				wk := engines[node].NewWorker(id)
				g := NewGen(cfg, cluster.ShardID(node), uint64(node*4+id+1))
				for i := 0; i < 150; i++ {
					p := g.Next()
					// Track the only money-creating/destroying types.
					var cBefore, sBefore uint64
					if p.Type == TxDepositChecking || p.Type == TxWithdrawChecking {
						wk.RunReadOnly(func(tx *txn.Txn) error {
							v, err := tx.Read(TableChecking, p.Acct1)
							if err != nil {
								return err
							}
							cBefore = DecBalance(v)
							_ = sBefore
							return nil
						})
					}
					if err := Execute(wk, p); err != nil {
						t.Errorf("execute %v: %v", p.Type, err)
						return
					}
					if p.Type == TxDepositChecking {
						depositDelta[node*2+id] += int64(p.Amount)
					}
					if p.Type == TxWithdrawChecking {
						var cAfter uint64
						wk.RunReadOnly(func(tx *txn.Txn) error {
							v, err := tx.Read(TableChecking, p.Acct1)
							if err != nil {
								return err
							}
							cAfter = DecBalance(v)
							return nil
						})
						// The withdraw may have been a no-op (insufficient
						// funds) or other txns may have interleaved; track
						// conservatively by re-deriving from execution: a
						// successful withdraw reduces total by Amount at
						// most. We instead verify at the end using the
						// deposit/withdraw ledger below.
						_ = cBefore
						_ = cAfter
					}
				}
			}(n, wi)
		}
	}
	wg.Wait()
	after := totalMoney(c, cfg)
	// SP, AMG, TS conserve; DC adds, WC removes. We can't know exactly how
	// many WCs were no-ops under concurrency, but total must be at least
	// before + deposits - (withdraw upper bound) and at most before + deposits.
	var dep int64
	for _, d := range depositDelta {
		dep += d
	}
	if int64(after) > int64(before)+dep {
		t.Fatalf("money created: before=%d after=%d deposits=%d", before, after, dep)
	}
	if after == 0 {
		t.Fatal("empty bank")
	}
}

// TestPureTransferConservation uses only SP/AMG/TS/BAL (strictly conserving
// types) so the invariant is exact.
func TestPureTransferConservation(t *testing.T) {
	cfg := DefaultConfig(3)
	cfg.AccountsPerNode = 150
	cfg.RemoteProb = 0.4
	c, engines := smallWorld(t, 3, 1, cfg)
	before := totalMoney(c, cfg)
	var wg sync.WaitGroup
	for n := 0; n < 3; n++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			wk := engines[node].NewWorker(node)
			g := NewGen(cfg, cluster.ShardID(node), uint64(node+11))
			for i := 0; i < 200; i++ {
				p := g.Next()
				switch p.Type {
				case TxDepositChecking, TxWithdrawChecking:
					p.Type = TxBalance // swap non-conserving types out
				}
				if p.Type == TxSendPayment || p.Type == TxAmalgamate {
					if p.Acct2 == 0 && p.Acct1 == 0 {
						continue
					}
				}
				if err := Execute(wk, p); err != nil {
					t.Errorf("execute: %v", err)
					return
				}
			}
		}(n)
	}
	wg.Wait()
	if after := totalMoney(c, cfg); after != before {
		t.Fatalf("money not conserved: %d -> %d", before, after)
	}
}
