package tpcc

import (
	"errors"
	"fmt"

	"drtmr/internal/sim"
	"drtmr/internal/txn"
)

// TxType enumerates the five TPC-C transactions.
type TxType int

// Transaction types in standard-mix order.
const (
	TxNewOrder TxType = iota
	TxPayment
	TxOrderStatus
	TxDelivery
	TxStockLevel
	numTxTypes
)

func (t TxType) String() string {
	switch t {
	case TxNewOrder:
		return "new-order"
	case TxPayment:
		return "payment"
	case TxOrderStatus:
		return "order-status"
	case TxDelivery:
		return "delivery"
	case TxStockLevel:
		return "stock-level"
	default:
		return fmt.Sprintf("TxType(%d)", int(t))
	}
}

// Mix is the standard mix (percent): 45/43/4/4/4.
var Mix = [numTxTypes]int{45, 43, 4, 4, 4}

// TypeNames returns the transaction type names in TxType order, for indexing
// per-type latency histograms (obs.TypedHist).
func TypeNames() []string {
	names := make([]string, numTxTypes)
	for t := TxType(0); t < numTxTypes; t++ {
		names[t] = t.String()
	}
	return names
}

// Gen draws TPC-C transactions for one worker bound to a home warehouse.
type Gen struct {
	cfg  Config
	home int // home warehouse (1-based)
	node int
	rng  *sim.Rand
	hseq uint64
	// cNURandC is the per-generator NURand C constant.
	cNURandC int
}

// NewGen creates a generator for a worker whose home warehouse is home.
func NewGen(cfg Config, home int, seed uint64) *Gen {
	rng := sim.NewRand(seed)
	return &Gen{
		cfg:      cfg,
		home:     home,
		node:     cfg.NodeOfWarehouse(home),
		rng:      rng,
		cNURandC: rng.Intn(256),
	}
}

// NextType draws from the standard mix.
func (g *Gen) NextType() TxType {
	p := g.rng.Intn(100)
	acc := 0
	for t := 0; t < int(numTxTypes); t++ {
		acc += Mix[t]
		if p < acc {
			return TxType(t)
		}
	}
	return TxStockLevel
}

func (g *Gen) customer() int {
	return g.rng.NURand(1023, 1, CustomersPerDistrict, g.cNURandC) // NURand(1023,1,3000) scaled
}

func (g *Gen) item() int {
	return g.rng.NURand(8191, 1, ItemCount, g.cNURandC)
}

func (g *Gen) otherWarehouse() int {
	total := g.cfg.Warehouses()
	if total <= 1 {
		return g.home
	}
	w := 1 + g.rng.Intn(total-1)
	if w >= g.home {
		w++
	}
	return w
}

// NewOrderParams is one generated new-order.
type NewOrderParams struct {
	W, D, C int
	Items   []NewOrderItem
	// Distributed reports whether any supply warehouse is remote to W's
	// machine (the paper's distributed-transaction criterion).
	Distributed bool
}

// NewOrderItem is one order line request.
type NewOrderItem struct {
	Item    int
	SupplyW int
	Qty     int
}

// GenNewOrder draws a new-order (5-15 items; each supplies remotely with
// RemoteNewOrderProb — the knob Fig 17 sweeps).
func (g *Gen) GenNewOrder() NewOrderParams {
	p := NewOrderParams{
		W: g.home,
		D: 1 + g.rng.Intn(DistrictsPerWarehouse),
		C: g.customer(),
	}
	n := 5 + g.rng.Intn(11)
	seen := map[int]bool{}
	for len(p.Items) < n {
		it := g.item()
		if seen[it] {
			continue
		}
		seen[it] = true
		supply := g.home
		if g.rng.Bool(g.cfg.RemoteNewOrderProb) {
			supply = g.otherWarehouse()
		}
		if g.cfg.NodeOfWarehouse(supply) != g.node {
			p.Distributed = true
		}
		p.Items = append(p.Items, NewOrderItem{Item: it, SupplyW: supply, Qty: 1 + g.rng.Intn(10)})
	}
	return p
}

// PaymentParams is one generated payment.
type PaymentParams struct {
	W, D   int
	CW, CD int // customer's warehouse/district (remote with RemotePaymentProb)
	C      int
	Amount uint64
	// Distributed reports whether CW is on another machine.
	Distributed bool
}

// GenPayment draws a payment.
func (g *Gen) GenPayment() PaymentParams {
	p := PaymentParams{
		W: g.home, D: 1 + g.rng.Intn(DistrictsPerWarehouse),
		Amount: uint64(1 + g.rng.Intn(5000)),
	}
	p.CW, p.CD = p.W, p.D
	if g.rng.Bool(g.cfg.RemotePaymentProb) {
		p.CW = g.otherWarehouse()
		p.CD = 1 + g.rng.Intn(DistrictsPerWarehouse)
	}
	p.C = g.customer()
	p.Distributed = g.cfg.NodeOfWarehouse(p.CW) != g.node
	return p
}

// nextHistory returns a unique history sequence for this generator.
func (g *Gen) nextHistory() uint64 {
	g.hseq++
	return uint64(g.node)<<32 | g.hseq
}

// Executor runs TPC-C transactions on one DrTM+R worker.
type Executor struct {
	W   *txn.Worker
	Gen *Gen
	cfg Config

	// Committed per type (new-order throughput is the paper's metric).
	Counts [numTxTypes]uint64
}

// NewExecutor pairs a worker with a generator.
func NewExecutor(w *txn.Worker, g *Gen) *Executor {
	return &Executor{W: w, Gen: g, cfg: g.cfg}
}

// RunOne executes one standard-mix transaction; returns its type.
func (e *Executor) RunOne() (TxType, error) {
	t := e.Gen.NextType()
	var err error
	switch t {
	case TxNewOrder:
		err = e.NewOrder(e.Gen.GenNewOrder())
	case TxPayment:
		err = e.Payment(e.Gen.GenPayment())
	case TxOrderStatus:
		err = e.OrderStatus()
	case TxDelivery:
		err = e.Delivery()
	case TxStockLevel:
		err = e.StockLevel()
	}
	if err == nil {
		e.Counts[t]++
	}
	return t, err
}

// NewOrder: read warehouse/district/customer/items, update district next-o,
// update stocks (possibly remote — the distributed case), insert order,
// new-order and order lines.
func (e *Executor) NewOrder(p NewOrderParams) error {
	return e.W.Run(func(tx *txn.Txn) error {
		// Only the load-time-immutable tax is used, so a stable (untracked)
		// read: a tracked read here false-shares the row with Payment's YTD
		// deltas and validate-aborts for nothing.
		wrow, err := tx.ReadStable(TableWarehouse, WKey(p.W))
		if err != nil {
			return err
		}
		_ = WarehouseTax(wrow)
		// Customer is consulted for immutable fields only (discount, last
		// name); a tracked read would false-share with Payment's balance
		// deltas on the same row.
		if _, err := tx.ReadStable(TableCustomer, CKey(p.W, p.D, p.C)); err != nil {
			return err
		}
		var total uint64
		amounts := make([]uint64, len(p.Items))
		for i, it := range p.Items {
			irow, err := tx.Read(TableItem, IKey(it.Item))
			if err != nil {
				return err
			}
			price := ItemPrice(irow)
			srow, err := tx.Read(TableStock, SKey(it.SupplyW, it.Item))
			if err != nil {
				return err
			}
			s2 := append([]byte(nil), srow...)
			ApplyStockOrder(s2, uint64(it.Qty), it.SupplyW != p.W)
			if err := tx.Write(TableStock, SKey(it.SupplyW, it.Item), s2); err != nil {
				return err
			}
			amounts[i] = price * uint64(it.Qty)
			total += amounts[i]
		}
		// The district sequencer (next_o_id) is the one genuinely contended
		// read-modify-write in this transaction: every home NewOrder
		// serializes on it. It is read LAST, after the slow item/stock leg
		// with its doorbell round-trips, so the window in which a concurrent
		// NewOrder can invalidate the read is the commit protocol itself,
		// not the whole execution phase.
		drow, err := tx.Read(TableDistrict, DKey(p.W, p.D))
		if err != nil {
			return err
		}
		oid := DistrictNextOID(drow)
		d2 := append([]byte(nil), drow...)
		SetDistrictNextOID(d2, oid+1)
		if err := tx.Write(TableDistrict, DKey(p.W, p.D), d2); err != nil {
			return err
		}
		okey := OKey(p.W, p.D, int(oid))
		if err := tx.Insert(TableOrder, okey, OrderRow(uint64(p.C), 1, 0, uint64(len(p.Items)))); err != nil {
			return err
		}
		no := make([]byte, newOrderSize)
		putU64(no, 0, oid)
		if err := tx.Insert(TableNewOrder, okey, no); err != nil {
			return err
		}
		for l, it := range p.Items {
			row := OrderLineRow(uint64(it.Item), uint64(it.SupplyW), uint64(it.Qty), amounts[l])
			if err := tx.Insert(TableOrderLine, OLKey(p.W, p.D, int(oid), l+1), row); err != nil {
				return err
			}
		}
		lo := make([]byte, lastOrderSize)
		putU64(lo, 0, oid)
		return tx.Write(TableCustLastOrder, CKey(p.W, p.D, p.C), lo)
	})
}

// Payment: update warehouse.ytd, district.ytd, customer balance (possibly
// remote), insert a history row. Every update is a pure accumulator bump on
// the workload's hottest records (warehouse and district rows are shared by
// every home transaction), so all three go through the commutative-delta
// path: the transaction carries no read set at all and cannot
// validate-abort — concurrent Payments commute instead of retrying. With
// ContentionOff the Adds degrade inside the engine to the read-modify-write
// shape this function had before (the pure-OCC ablation).
func (e *Executor) Payment(p PaymentParams) error {
	return e.W.Run(func(tx *txn.Txn) error {
		if err := tx.Add(TableWarehouse, WKey(p.W), WarehouseYTDOff, p.Amount); err != nil {
			return err
		}
		if err := tx.Add(TableDistrict, DKey(p.W, p.D), DistrictYTDOff, p.Amount); err != nil {
			return err
		}
		ck := CKey(p.CW, p.CD, p.C)
		if err := tx.Add(TableCustomer, ck, CustomerBalanceOff, uint64(-int64(p.Amount))); err != nil {
			return err
		}
		if err := tx.Add(TableCustomer, ck, CustomerYTDOff, p.Amount); err != nil {
			return err
		}
		if err := tx.Add(TableCustomer, ck, CustomerPayCntOff, 1); err != nil {
			return err
		}
		h := make([]byte, historySize)
		putU64(h, 0, uint64(p.C))
		putU64(h, 8, p.Amount)
		return tx.Insert(TableHistory, HKey(p.W, e.Gen.nextHistory()), h)
	})
}

// OrderStatus (read-only): customer, their last order and its lines.
func (e *Executor) OrderStatus() error {
	g := e.Gen
	w := g.home
	d := 1 + g.rng.Intn(DistrictsPerWarehouse)
	c := g.customer()
	return e.W.RunReadOnly(func(tx *txn.Txn) error {
		if _, err := tx.Read(TableCustomer, CKey(w, d, c)); err != nil {
			return err
		}
		lo, err := tx.Read(TableCustLastOrder, CKey(w, d, c))
		if err != nil {
			return err
		}
		oid := getU64(lo, 0)
		if oid == 0 {
			return nil // customer has never ordered
		}
		orow, err := tx.Read(TableOrder, OKey(w, d, int(oid)))
		if err != nil {
			if errors.Is(err, txn.ErrNotFound) {
				return nil
			}
			return err
		}
		cnt := int(OrderOLCnt(orow))
		for l := 1; l <= cnt; l++ {
			if _, err := tx.Read(TableOrderLine, OLKey(w, d, int(oid), l)); err != nil &&
				!errors.Is(err, txn.ErrNotFound) {
				return err
			}
		}
		return nil
	})
}

// Delivery: for each district of the home warehouse, consume the oldest
// NEW-ORDER row, stamp the order's carrier and its lines' delivery dates,
// and credit the customer. Entirely machine-local by construction. The
// oldest-row probe goes through the local ordered index; the row itself is
// then read through the protocol, so two racing deliveries of the same row
// serialize on its incarnation (one aborts and retries onto the next row).
func (e *Executor) Delivery() error {
	g := e.Gen
	w := g.home
	store := e.W.E.M.Store
	carrier := uint64(1 + g.rng.Intn(10))
	for d := 1; d <= DistrictsPerWarehouse; d++ {
		lo, hi := OKey(w, d, 0), OKey(w, d, 1<<24-1)
		key, _, ok := store.Table(TableNewOrder).Ordered().MinGE(lo)
		if !ok || key > hi {
			continue // no undelivered order in this district
		}
		err := e.W.Run(func(tx *txn.Txn) error {
			if _, err := tx.Read(TableNewOrder, key); err != nil {
				if errors.Is(err, txn.ErrNotFound) {
					return nil // another delivery raced us; skip
				}
				return err
			}
			if err := tx.Delete(TableNewOrder, key); err != nil {
				return err
			}
			orow, err := tx.Read(TableOrder, key)
			if err != nil {
				if errors.Is(err, txn.ErrNotFound) {
					return nil
				}
				return err
			}
			o2 := append([]byte(nil), orow...)
			SetOrderCarrier(o2, carrier)
			if err := tx.Write(TableOrder, key, o2); err != nil {
				return err
			}
			cid := OrderCustomer(orow)
			cnt := int(OrderOLCnt(orow))
			oid := int(key & 0xFFFFFF)
			var total uint64
			for l := 1; l <= cnt; l++ {
				olk := OLKey(w, d, oid, l)
				ol, err := tx.Read(TableOrderLine, olk)
				if err != nil {
					if errors.Is(err, txn.ErrNotFound) {
						continue
					}
					return err
				}
				total += OrderLineAmount(ol)
				ol2 := append([]byte(nil), ol...)
				SetOrderLineDelivery(ol2, 1)
				if err := tx.Write(TableOrderLine, olk, ol2); err != nil {
					return err
				}
			}
			crow, err := tx.Read(TableCustomer, CKey(w, d, int(cid)))
			if err != nil {
				return err
			}
			c2 := append([]byte(nil), crow...)
			CustomerAddDelivery(c2, total)
			return tx.Write(TableCustomer, CKey(w, d, int(cid)), c2)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// StockLevel (read-only): count stock rows below a threshold among the items
// of the district's last 20 orders. Machine-local.
func (e *Executor) StockLevel() error {
	g := e.Gen
	w := g.home
	d := 1 + g.rng.Intn(DistrictsPerWarehouse)
	threshold := uint64(10 + g.rng.Intn(11))
	return e.W.RunReadOnly(func(tx *txn.Txn) error {
		drow, err := tx.Read(TableDistrict, DKey(w, d))
		if err != nil {
			return err
		}
		next := int(DistrictNextOID(drow))
		loO := next - 20
		if loO < 1 {
			loO = 1
		}
		// Probe order-line keys through the local ordered index, then
		// read each row through the protocol.
		items := make(map[uint64]struct{})
		store := tx.Store()
		store.Table(TableOrderLine).Ordered().Scan(
			OLKey(w, d, loO, 0), OLKey(w, d, next, 15),
			func(key, _ uint64) bool {
				items[key] = struct{}{}
				return len(items) < 200
			})
		low := 0
		for key := range items {
			ol, err := tx.Read(TableOrderLine, key)
			if err != nil {
				if errors.Is(err, txn.ErrNotFound) {
					continue
				}
				return err
			}
			srow, err := tx.Read(TableStock, SKey(w, int(OrderLineItem(ol))))
			if err != nil {
				if errors.Is(err, txn.ErrNotFound) {
					continue
				}
				return err
			}
			if StockQuantity(srow) < threshold {
				low++
			}
		}
		return nil
	})
}
