// Package tpcc implements the TPC-C benchmark as used in the paper's §7:
// the full nine-table order-entry schema and all five transaction types run
// under the standard mix (new-order 45%, payment 43%, order-status 4%,
// delivery 4%, stock-level 4%). The database partitions by warehouse across
// machines; the knobs the paper sweeps — warehouses per machine (Fig 19),
// cross-warehouse access probability for new-order (Fig 17, default 1%) and
// payment (15%), warehouses per thread vs. one per machine (Fig 18) — are
// all Config fields.
//
// Deliberate deltas from the full TPC-C specification, chosen to keep the
// conflict structure intact while fitting the simulator (documented in
// DESIGN.md): fixed-size binary rows sized to preserve multi-cacheline
// records (the thing HTM/RDMA care about) rather than full ASCII payloads;
// order-status picks customers by id (the by-last-name path needs a
// secondary index scan that is always machine-local and adds nothing to the
// protocol); a small CustomerLastOrder side table replaces the by-customer
// order index.
package tpcc

import (
	"encoding/binary"
	"fmt"

	"drtmr/internal/cluster"
	"drtmr/internal/memstore"
	"drtmr/internal/rdma"
	"drtmr/internal/sim"
	"drtmr/internal/txn"
)

// Table IDs.
const (
	TableWarehouse memstore.TableID = 20 + iota
	TableDistrict
	TableCustomer
	TableHistory
	TableNewOrder
	TableOrder
	TableOrderLine
	TableItem
	TableStock
	TableCustLastOrder
)

// Scale constants (TPC-C cardinalities; Items reduced 10x to keep the
// simulated arena small — the hot set and conflict structure are preserved
// because item ids are drawn with the same NURand skew).
const (
	DistrictsPerWarehouse = 10
	CustomersPerDistrict  = 300 // spec: 3000; reduced with the same skew
	ItemCount             = 10000
	StockPerWarehouse     = ItemCount
	InitialNextOrder      = 1 // orders start empty; spec preloads 3000
)

// Key packing. Warehouses are 1-based and fit 12 bits; districts 4 bits;
// customers 12 bits; order ids 24 bits; order lines 4 bits.
func WKey(w int) uint64 { return uint64(w) }

// DKey packs a district key.
func DKey(w, d int) uint64 { return uint64(w)<<4 | uint64(d) }

// CKey packs a customer key.
func CKey(w, d, c int) uint64 { return uint64(w)<<16 | uint64(d)<<12 | uint64(c) }

// OKey packs an order key (also used for NEW-ORDER rows).
func OKey(w, d, o int) uint64 { return uint64(w)<<28 | uint64(d)<<24 | uint64(o) }

// OLKey packs an order-line key.
func OLKey(w, d, o, l int) uint64 {
	return uint64(w)<<32 | uint64(d)<<28 | uint64(o)<<4 | uint64(l)
}

// IKey packs an item key.
func IKey(i int) uint64 { return uint64(i) }

// SKey packs a stock key.
func SKey(w, i int) uint64 { return uint64(w)<<20 | uint64(i) }

// HKey packs a history key (unique per machine via a worker counter).
func HKey(w int, seq uint64) uint64 { return uint64(w)<<40 | seq }

// Row sizes (bytes). Chosen so the records HTM and RDMA fight over span
// multiple cachelines like the real rows do.
const (
	warehouseSize = 96
	districtSize  = 96
	customerSize  = 200
	historySize   = 48
	newOrderSize  = 8
	orderSize     = 40
	orderLineSize = 48
	itemSize      = 80
	stockSize     = 96
	lastOrderSize = 8
)

// Config shapes a TPC-C deployment.
type Config struct {
	Nodes             int
	WarehousesPerNode int
	// RemoteNewOrderProb is the per-item probability that new-order
	// supplies from a random other warehouse (spec & paper default 1%).
	RemoteNewOrderProb float64
	// RemotePaymentProb is the probability payment pays through a remote
	// warehouse's customer (spec & paper default 15%).
	RemotePaymentProb float64
}

// DefaultConfig mirrors the paper's default: one warehouse per worker
// thread is set by the harness; this is the per-machine layout.
func DefaultConfig(nodes, warehousesPerNode int) Config {
	return Config{
		Nodes:              nodes,
		WarehousesPerNode:  warehousesPerNode,
		RemoteNewOrderProb: 0.01,
		RemotePaymentProb:  0.15,
	}
}

// Warehouses returns the total warehouse count.
func (c Config) Warehouses() int { return c.Nodes * c.WarehousesPerNode }

// NodeOfWarehouse maps warehouse w (1-based) to its home machine.
func (c Config) NodeOfWarehouse(w int) int { return (w - 1) / c.WarehousesPerNode }

// WarehousesOf lists machine node's warehouses.
func (c Config) WarehousesOf(node int) []int {
	var out []int
	for w := node*c.WarehousesPerNode + 1; w <= (node+1)*c.WarehousesPerNode; w++ {
		out = append(out, w)
	}
	return out
}

// Partitioner builds the shard function for the engine on machine self.
// Everything keys by warehouse except ITEM, which is replicated read-only on
// every machine (as in the paper's setup) and therefore always local.
func (c Config) Partitioner(self rdma.NodeID) txn.Partitioner {
	return func(table memstore.TableID, key uint64) cluster.ShardID {
		if table == TableItem {
			return cluster.ShardID(self)
		}
		var w int
		switch table {
		case TableWarehouse:
			w = int(key)
		case TableDistrict:
			w = int(key >> 4)
		case TableCustomer, TableCustLastOrder:
			w = int(key >> 16)
		case TableNewOrder, TableOrder:
			w = int(key >> 28)
		case TableOrderLine:
			w = int(key >> 32)
		case TableStock:
			w = int(key >> 20)
		case TableHistory:
			w = int(key >> 40)
		default:
			w = 1
		}
		return cluster.ShardID(c.NodeOfWarehouse(w))
	}
}

// CreateTables registers the nine tables (+ the last-order side table) on a
// machine's store, in deterministic order so geometry matches cluster-wide.
func CreateTables(store *memstore.Store, c Config) {
	wh := c.WarehousesPerNode
	rows := func(perWh int) int { return wh*perWh + 16 }
	specs := []struct {
		id   memstore.TableID
		spec memstore.TableSpec
	}{
		{TableWarehouse, memstore.TableSpec{Name: "warehouse", ValueSize: warehouseSize, ExpectedRows: rows(1)}},
		{TableDistrict, memstore.TableSpec{Name: "district", ValueSize: districtSize, ExpectedRows: rows(DistrictsPerWarehouse)}},
		{TableCustomer, memstore.TableSpec{Name: "customer", ValueSize: customerSize, ExpectedRows: rows(DistrictsPerWarehouse * CustomersPerDistrict)}},
		{TableHistory, memstore.TableSpec{Name: "history", ValueSize: historySize, ExpectedRows: rows(DistrictsPerWarehouse * CustomersPerDistrict)}},
		{TableNewOrder, memstore.TableSpec{Name: "new-order", ValueSize: newOrderSize, ExpectedRows: rows(DistrictsPerWarehouse * 512), Ordered: true}},
		{TableOrder, memstore.TableSpec{Name: "order", ValueSize: orderSize, ExpectedRows: rows(DistrictsPerWarehouse * 1024), Ordered: true}},
		{TableOrderLine, memstore.TableSpec{Name: "order-line", ValueSize: orderLineSize, ExpectedRows: rows(DistrictsPerWarehouse * 1024 * 10), Ordered: true}},
		{TableItem, memstore.TableSpec{Name: "item", ValueSize: itemSize, ExpectedRows: ItemCount}},
		{TableStock, memstore.TableSpec{Name: "stock", ValueSize: stockSize, ExpectedRows: rows(StockPerWarehouse)}},
		{TableCustLastOrder, memstore.TableSpec{Name: "cust-last-order", ValueSize: lastOrderSize, ExpectedRows: rows(DistrictsPerWarehouse * CustomersPerDistrict)}},
	}
	for _, s := range specs {
		store.CreateTable(s.id, s.spec)
	}
}

// Row codecs: little-endian u64 fields at fixed offsets, remainder padding.

func putU64(b []byte, off int, v uint64) { binary.LittleEndian.PutUint64(b[off:off+8], v) }
func getU64(b []byte, off int) uint64    { return binary.LittleEndian.Uint64(b[off : off+8]) }

// Commutative fields (txn.Add offsets). These are the delta-shaped columns
// of the workload — pure accumulators no transaction branches on — so
// updates to them are declared as commutative adds instead of
// read-modify-writes: Payment's warehouse/district/customer updates stop
// conflicting with each other entirely. next_o_id is NOT here: NewOrder
// needs its value for the order keys, so it stays a read-modify-write and
// relies on the contention manager's hot-key queue instead.
const (
	WarehouseYTDOff   = 8  // warehouse ytd accumulator
	DistrictYTDOff    = 8  // district ytd accumulator
	CustomerBalanceOff = 0 // customer balance (signed; subtract via two's complement)
	CustomerYTDOff     = 8 // customer ytdPayment accumulator
	CustomerPayCntOff  = 16 // customer paymentCnt counter
)

// Warehouse row: [tax, ytd].
func WarehouseRow(tax, ytd uint64) []byte {
	b := make([]byte, warehouseSize)
	putU64(b, 0, tax)
	putU64(b, 8, ytd)
	return b
}

// WarehouseYTD extracts the YTD field.
func WarehouseYTD(b []byte) uint64 { return getU64(b, 8) }

// WarehouseTax extracts the tax field.
func WarehouseTax(b []byte) uint64 { return getU64(b, 0) }

// SetWarehouseYTD updates the YTD field in place.
func SetWarehouseYTD(b []byte, v uint64) { putU64(b, 8, v) }

// District row: [tax, ytd, nextOID].
func DistrictRow(tax, ytd, nextOID uint64) []byte {
	b := make([]byte, districtSize)
	putU64(b, 0, tax)
	putU64(b, 8, ytd)
	putU64(b, 16, nextOID)
	return b
}

// DistrictNextOID extracts the next order id.
func DistrictNextOID(b []byte) uint64 { return getU64(b, 16) }

// SetDistrictNextOID updates the next order id in place.
func SetDistrictNextOID(b []byte, v uint64) { putU64(b, 16, v) }

// DistrictYTD extracts the YTD field.
func DistrictYTD(b []byte) uint64 { return getU64(b, 8) }

// SetDistrictYTD updates the YTD field in place.
func SetDistrictYTD(b []byte, v uint64) { putU64(b, 8, v) }

// Customer row: [balance(int64), ytdPayment, paymentCnt, deliveryCnt, discount].
func CustomerRow(balance int64, discount uint64) []byte {
	b := make([]byte, customerSize)
	putU64(b, 0, uint64(balance))
	putU64(b, 32, discount)
	return b
}

// CustomerBalance extracts the (signed) balance.
func CustomerBalance(b []byte) int64 { return int64(getU64(b, 0)) }

// SetCustomerBalance updates the balance in place.
func SetCustomerBalance(b []byte, v int64) { putU64(b, 0, uint64(v)) }

// CustomerAddPayment applies a payment to the row in place.
func CustomerAddPayment(b []byte, amount uint64) {
	SetCustomerBalance(b, CustomerBalance(b)-int64(amount))
	putU64(b, 8, getU64(b, 8)+amount) // ytdPayment
	putU64(b, 16, getU64(b, 16)+1)    // paymentCnt
}

// CustomerAddDelivery credits a delivered order's total in place.
func CustomerAddDelivery(b []byte, amount uint64) {
	SetCustomerBalance(b, CustomerBalance(b)+int64(amount))
	putU64(b, 24, getU64(b, 24)+1) // deliveryCnt
}

// Order row: [customer, entryDate, carrier, olCnt].
func OrderRow(customer, entryDate, carrier, olCnt uint64) []byte {
	b := make([]byte, orderSize)
	putU64(b, 0, customer)
	putU64(b, 8, entryDate)
	putU64(b, 16, carrier)
	putU64(b, 24, olCnt)
	return b
}

// OrderCustomer extracts the customer id field.
func OrderCustomer(b []byte) uint64 { return getU64(b, 0) }

// OrderOLCnt extracts the order-line count.
func OrderOLCnt(b []byte) uint64 { return getU64(b, 24) }

// SetOrderCarrier updates the carrier field in place.
func SetOrderCarrier(b []byte, v uint64) { putU64(b, 16, v) }

// OrderLine row: [item, supplyW, qty, amount, deliveryDate].
func OrderLineRow(item, supplyW, qty, amount uint64) []byte {
	b := make([]byte, orderLineSize)
	putU64(b, 0, item)
	putU64(b, 8, supplyW)
	putU64(b, 16, qty)
	putU64(b, 24, amount)
	return b
}

// OrderLineItem extracts the item id.
func OrderLineItem(b []byte) uint64 { return getU64(b, 0) }

// OrderLineAmount extracts the line amount.
func OrderLineAmount(b []byte) uint64 { return getU64(b, 24) }

// SetOrderLineDelivery sets the delivery date in place.
func SetOrderLineDelivery(b []byte, v uint64) { putU64(b, 32, v) }

// Item row: [price].
func ItemRow(price uint64) []byte {
	b := make([]byte, itemSize)
	putU64(b, 0, price)
	return b
}

// ItemPrice extracts the price.
func ItemPrice(b []byte) uint64 { return getU64(b, 0) }

// Stock row: [quantity, ytd, orderCnt, remoteCnt].
func StockRow(quantity uint64) []byte {
	b := make([]byte, stockSize)
	putU64(b, 0, quantity)
	return b
}

// StockQuantity extracts the quantity.
func StockQuantity(b []byte) uint64 { return getU64(b, 0) }

// ApplyStockOrder updates a stock row in place for qty ordered (TPC-C rule:
// refill by 91 when dropping under 10).
func ApplyStockOrder(b []byte, qty uint64, remote bool) {
	q := getU64(b, 0)
	if q >= qty+10 {
		q -= qty
	} else {
		q = q - qty + 91
	}
	putU64(b, 0, q)
	putU64(b, 8, getU64(b, 8)+qty) // ytd
	putU64(b, 16, getU64(b, 16)+1) // orderCnt
	if remote {
		putU64(b, 24, getU64(b, 24)+1) // remoteCnt
	}
}

// Loader populates one machine's share (call with the same node id on the
// primary and on each backup machine that replicates it).
func Load(store *memstore.Store, c Config, node int, seed uint64) error {
	rng := sim.NewRand(seed + 1)
	// ITEM replicates everywhere.
	for i := 1; i <= ItemCount; i++ {
		if _, err := store.Table(TableItem).Insert(IKey(i), ItemRow(uint64(100+rng.Intn(9900)))); err != nil {
			return fmt.Errorf("tpcc load item %d: %w", i, err)
		}
	}
	for _, w := range c.WarehousesOf(node) {
		if err := LoadWarehouse(store, w, rng); err != nil {
			return err
		}
	}
	return nil
}

// LoadWarehouse populates a single warehouse's rows into store (exported so
// backups can load exactly the shards they replicate).
func LoadWarehouse(store *memstore.Store, w int, rng *sim.Rand) error {
	if _, err := store.Table(TableWarehouse).Insert(WKey(w), WarehouseRow(uint64(rng.Intn(2000)), 0)); err != nil {
		return fmt.Errorf("tpcc load warehouse %d: %w", w, err)
	}
	for d := 1; d <= DistrictsPerWarehouse; d++ {
		if _, err := store.Table(TableDistrict).Insert(DKey(w, d), DistrictRow(uint64(rng.Intn(2000)), 0, InitialNextOrder)); err != nil {
			return err
		}
		for cu := 1; cu <= CustomersPerDistrict; cu++ {
			if _, err := store.Table(TableCustomer).Insert(CKey(w, d, cu), CustomerRow(-10, uint64(rng.Intn(5000)))); err != nil {
				return err
			}
			if _, err := store.Table(TableCustLastOrder).Insert(CKey(w, d, cu), make([]byte, lastOrderSize)); err != nil {
				return err
			}
		}
	}
	for i := 1; i <= StockPerWarehouse; i++ {
		if _, err := store.Table(TableStock).Insert(SKey(w, i), StockRow(uint64(10+rng.Intn(91)))); err != nil {
			return err
		}
	}
	return nil
}
