package tpcc

import (
	"sync"
	"testing"

	"drtmr/internal/cluster"
	"drtmr/internal/sim"
	"drtmr/internal/txn"
)

func tpccWorld(t *testing.T, nodes, replicas, whPerNode int) (*cluster.Cluster, []*txn.Engine, Config) {
	t.Helper()
	cfg := DefaultConfig(nodes, whPerNode)
	c := cluster.New(cluster.Spec{
		Nodes: nodes, Replicas: replicas, MemBytes: 96 << 20, RingBytes: 1 << 18,
	})
	var engines []*txn.Engine
	for _, m := range c.Machines {
		CreateTables(m.Store, cfg)
		engines = append(engines, txn.NewEngine(m, cfg.Partitioner(m.ID), txn.DefaultCosts()))
	}
	initCfg := c.Coord.Current()
	for n := 0; n < nodes; n++ {
		// Primary copy.
		if err := Load(c.Machines[n].Store, cfg, n, uint64(n)); err != nil {
			t.Fatal(err)
		}
		// Backup copies of node n's warehouses.
		for _, b := range initCfg.BackupsOf(cluster.ShardID(n)) {
			for _, w := range cfg.WarehousesOf(n) {
				if err := LoadWarehouse(c.Machines[b].Store, w, testRng(uint64(n)+uint64(b))); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	c.Start()
	t.Cleanup(c.Stop)
	return c, engines, cfg
}

func testRng(seed uint64) *sim.Rand { return sim.NewRand(seed) }

func TestKeyPackingDisjoint(t *testing.T) {
	seen := map[uint64]string{}
	check := func(k uint64, what string) {
		if prev, dup := seen[k]; dup && prev != what {
			t.Fatalf("key collision between %s and %s: %#x", prev, what, k)
		}
		seen[k] = what
	}
	for w := 1; w <= 3; w++ {
		check(WKey(w), "w")
		for d := 1; d <= DistrictsPerWarehouse; d++ {
			check(DKey(w, d), "d")
			for c := 1; c <= 5; c++ {
				check(CKey(w, d, c), "c")
			}
			for o := 1; o <= 5; o++ {
				check(OKey(w, d, o), "o")
				for l := 1; l <= 3; l++ {
					check(OLKey(w, d, o, l), "ol")
				}
			}
		}
		for i := 1; i <= 5; i++ {
			check(SKey(w, i), "s")
		}
	}
}

func TestMixMatchesSpec(t *testing.T) {
	g := NewGen(DefaultConfig(2, 1), 1, 99)
	var counts [numTxTypes]int
	const n = 20000
	for i := 0; i < n; i++ {
		counts[g.NextType()]++
	}
	for ty := 0; ty < int(numTxTypes); ty++ {
		got := float64(counts[ty]) / n * 100
		want := float64(Mix[ty])
		if got < want-1.5 || got > want+1.5 {
			t.Errorf("%v: %.1f%%, want ~%d%%", TxType(ty), got, Mix[ty])
		}
	}
}

func TestCrossWarehouseKnob(t *testing.T) {
	cfg := DefaultConfig(3, 1)
	cfg.RemoteNewOrderProb = 0.10
	g := NewGen(cfg, 1, 5)
	dist := 0
	const n = 3000
	for i := 0; i < n; i++ {
		if g.GenNewOrder().Distributed {
			dist++
		}
	}
	// ~10 items/txn at 10% each ⇒ ≈65% distributed (1-(0.9)^10, the
	// paper quotes 57.2% counting same-machine supplies as local).
	frac := float64(dist) / n
	if frac < 0.5 || frac > 0.75 {
		t.Errorf("distributed new-order fraction %.2f, want ~0.65", frac)
	}
}

func TestNewOrderAndConsistency(t *testing.T) {
	_, engines, cfg := tpccWorld(t, 1, 1, 1)
	wk := engines[0].NewWorker(0)
	g := NewGen(cfg, 1, 3)
	ex := NewExecutor(wk, g)
	for i := 0; i < 30; i++ {
		if err := ex.NewOrder(g.GenNewOrder()); err != nil {
			t.Fatalf("new-order %d: %v", i, err)
		}
	}
	// Consistency: sum over districts of (nextOID-1) == orders inserted.
	var orders uint64
	store := engines[0].M.Store
	for d := 1; d <= DistrictsPerWarehouse; d++ {
		off, ok := store.Table(TableDistrict).Lookup(DKey(1, d))
		if !ok {
			t.Fatal("district missing")
		}
		orders += DistrictNextOID(store.Table(TableDistrict).ReadValueNonTx(off)) - InitialNextOrder
	}
	if orders != 30 {
		t.Fatalf("district counters: %d orders, want 30", orders)
	}
	if got := store.Table(TableOrder).Ordered().Len(); got != 30 {
		t.Fatalf("order rows: %d", got)
	}
	if got := store.Table(TableNewOrder).Ordered().Len(); got != 30 {
		t.Fatalf("new-order rows: %d", got)
	}
}

func TestPaymentYTDConsistency(t *testing.T) {
	_, engines, cfg := tpccWorld(t, 1, 1, 1)
	wk := engines[0].NewWorker(0)
	g := NewGen(cfg, 1, 4)
	ex := NewExecutor(wk, g)
	var want uint64
	for i := 0; i < 40; i++ {
		p := g.GenPayment()
		if err := ex.Payment(p); err != nil {
			t.Fatalf("payment: %v", err)
		}
		want += p.Amount
	}
	store := engines[0].M.Store
	off, _ := store.Table(TableWarehouse).Lookup(WKey(1))
	if got := WarehouseYTD(store.Table(TableWarehouse).ReadValueNonTx(off)); got != want {
		t.Fatalf("warehouse ytd %d want %d", got, want)
	}
	var dytd uint64
	for d := 1; d <= DistrictsPerWarehouse; d++ {
		off, _ := store.Table(TableDistrict).Lookup(DKey(1, d))
		dytd += DistrictYTD(store.Table(TableDistrict).ReadValueNonTx(off))
	}
	if dytd != want {
		t.Fatalf("district ytd sum %d want %d", dytd, want)
	}
}

func TestDeliveryConsumesNewOrders(t *testing.T) {
	_, engines, cfg := tpccWorld(t, 1, 1, 1)
	wk := engines[0].NewWorker(0)
	g := NewGen(cfg, 1, 8)
	ex := NewExecutor(wk, g)
	for i := 0; i < 15; i++ {
		if err := ex.NewOrder(g.GenNewOrder()); err != nil {
			t.Fatal(err)
		}
	}
	store := engines[0].M.Store
	before := store.Table(TableNewOrder).Ordered().Len()
	if err := ex.Delivery(); err != nil {
		t.Fatalf("delivery: %v", err)
	}
	after := store.Table(TableNewOrder).Ordered().Len()
	if after >= before {
		t.Fatalf("delivery consumed nothing: %d -> %d", before, after)
	}
}

func TestStandardMixRuns(t *testing.T) {
	_, engines, cfg := tpccWorld(t, 2, 1, 1)
	var wg sync.WaitGroup
	for n := 0; n < 2; n++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			wk := engines[node].NewWorker(node)
			home := cfg.WarehousesOf(node)[0]
			ex := NewExecutor(wk, NewGen(cfg, home, uint64(node+21)))
			for i := 0; i < 60; i++ {
				if _, err := ex.RunOne(); err != nil {
					t.Errorf("mix txn: %v", err)
					return
				}
			}
		}(n)
	}
	wg.Wait()
}

func TestStandardMixWithReplication(t *testing.T) {
	c, engines, cfg := tpccWorld(t, 3, 3, 1)
	var wg sync.WaitGroup
	for n := 0; n < 3; n++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			wk := engines[node].NewWorker(node)
			home := cfg.WarehousesOf(node)[0]
			ex := NewExecutor(wk, NewGen(cfg, home, uint64(node+31)))
			for i := 0; i < 40; i++ {
				if _, err := ex.RunOne(); err != nil {
					t.Errorf("mix txn: %v", err)
					return
				}
			}
		}(n)
	}
	wg.Wait()
	_ = c
}
