// Package silo implements the Silo baseline (Tu et al., SOSP'13): a fast
// single-machine, multicore in-memory database using OCC with decentralized
// epoch-based transaction IDs and per-record version locks — no HTM, no
// RDMA, no scale-out. The paper runs Silo with logging disabled on one
// machine of the cluster as the per-machine-efficiency yardstick (§7.2).
//
// Faithful to Silo's commit protocol: execution buffers writes and records
// (record, TID) pairs; commit locks the write set in global order, picks a
// TID greater than every observed TID within the current epoch, validates
// that read-set records are unchanged and not locked by others, installs,
// and unlocks. The record metadata word packs [lock bit | epoch | counter].
package silo

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"drtmr/internal/sim"
	"drtmr/internal/txn"
)

// TID word layout: bit 63 = lock, bits 33..62 = epoch, bits 0..32 = counter.
const (
	lockBit   = uint64(1) << 63
	epochBase = 33
)

func tidEpoch(w uint64) uint64   { return (w &^ lockBit) >> epochBase }
func tidCounter(w uint64) uint64 { return w & (1<<epochBase - 1) }
func makeTID(epoch, counter uint64) uint64 {
	return epoch<<epochBase | counter
}

// record is one row: a TID word plus the value. Real Silo reads values with
// a seqlock (word, copy, word re-check); a Go data-race-free equivalent
// needs the small value mutex below — the TID word is still what drives
// concurrency control and validation.
type record struct {
	word  atomic.Uint64
	valMu sync.Mutex
	val   []byte
}

// Table is an unordered key-value table.
type Table struct {
	mu   sync.RWMutex
	rows map[uint64]*record
}

// DB is a single-machine Silo database.
type DB struct {
	tables map[uint8]*Table
	epoch  atomic.Uint64
	stop   chan struct{}
	wg     sync.WaitGroup

	Cost txn.CostModel
}

// NewDB creates a database with the given table ids and starts the epoch
// thread (Silo advances the global epoch every ~40ms; the exact period only
// bounds freshness, not throughput).
func NewDB(tableIDs []uint8, cost txn.CostModel) *DB {
	db := &DB{tables: make(map[uint8]*Table), stop: make(chan struct{}), Cost: cost}
	db.epoch.Store(1)
	for _, id := range tableIDs {
		db.tables[id] = &Table{rows: make(map[uint64]*record)}
	}
	db.wg.Add(1)
	go func() {
		defer db.wg.Done()
		for {
			select {
			case <-db.stop:
				return
			case <-time.After(10 * time.Millisecond):
				db.epoch.Add(1)
			}
		}
	}()
	return db
}

// Close stops the epoch thread.
func (db *DB) Close() {
	close(db.stop)
	db.wg.Wait()
}

// Insert loads a row (setup path).
func (db *DB) Insert(table uint8, key uint64, val []byte) error {
	t := db.tables[table]
	if t == nil {
		return fmt.Errorf("silo: unknown table %d", table)
	}
	r := &record{val: append([]byte(nil), val...)}
	r.word.Store(makeTID(1, 0))
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.rows[key]; dup {
		return errors.New("silo: duplicate key")
	}
	t.rows[key] = r
	return nil
}

func (db *DB) row(table uint8, key uint64) *record {
	t := db.tables[table]
	if t == nil {
		return nil
	}
	t.mu.RLock()
	r := t.rows[key]
	t.mu.RUnlock()
	return r
}

// insertRow adds a row transactionally (used by Txn.Insert at commit).
func (db *DB) insertRow(table uint8, key uint64, val []byte, tid uint64) *record {
	t := db.tables[table]
	r := &record{val: append([]byte(nil), val...)}
	r.word.Store(tid)
	t.mu.Lock()
	if existing, dup := t.rows[key]; dup {
		t.mu.Unlock()
		return existing
	}
	t.rows[key] = r
	t.mu.Unlock()
	return r
}

// Worker is one Silo worker thread.
type Worker struct {
	DB  *DB
	ID  int
	Clk sim.Clock
	rng *sim.Rand

	Stats Stats
}

// Stats counts outcomes.
type Stats struct {
	Committed uint64
	Aborts    uint64
}

// NewWorker creates worker id.
func (db *DB) NewWorker(id int) *Worker {
	return &Worker{DB: db, ID: id, rng: sim.NewRand(uint64(id) + 101)}
}

// ErrNotFound mirrors the txn package's error.
var ErrNotFound = errors.New("silo: key not found")

var errAbort = errors.New("silo: abort")

// Txn is one Silo transaction.
type Txn struct {
	w  *Worker
	rs []rsEnt
	ws []wsEnt
}

type rsEnt struct {
	rec *record
	tid uint64
}

type wsEnt struct {
	table  uint8
	key    uint64
	rec    *record // nil for inserts
	val    []byte
	insert bool
}

// Run executes fn with automatic retry.
func (w *Worker) Run(fn func(tx *Txn) error) error {
	for attempt := 0; ; attempt++ {
		tx := &Txn{w: w}
		w.Clk.Advance(w.DB.Cost.TxnOverhead)
		err := fn(tx)
		if err == nil {
			err = tx.commit()
		}
		if err == nil {
			w.Stats.Committed++
			return nil
		}
		if !errors.Is(err, errAbort) {
			return err
		}
		w.Stats.Aborts++
		maxExp := 1 << uint(min(attempt, 8))
		w.Clk.Advance(time.Duration(1+w.rng.Intn(maxExp)) * w.DB.Cost.Backoff)
		sim.Spin(0)
	}
}


// Read returns a stable snapshot of the record (Silo's optimistic read:
// word, value, word re-check).
func (tx *Txn) Read(table uint8, key uint64) ([]byte, error) {
	for i := range tx.ws {
		if tx.ws[i].table == table && tx.ws[i].key == key {
			return append([]byte(nil), tx.ws[i].val...), nil
		}
	}
	r := tx.w.DB.row(table, key)
	if r == nil {
		return nil, ErrNotFound
	}
	tx.w.Clk.Advance(tx.w.DB.Cost.LocalAccess)
	for spin := 0; ; spin++ {
		w1 := r.word.Load()
		if w1&lockBit != 0 {
			sim.Spin(0)
			continue
		}
		r.valMu.Lock()
		val := append([]byte(nil), r.val...)
		r.valMu.Unlock()
		if r.word.Load() == w1 {
			tx.rs = append(tx.rs, rsEnt{rec: r, tid: w1})
			return val, nil
		}
	}
}

// Write buffers an update.
func (tx *Txn) Write(table uint8, key uint64, val []byte) error {
	for i := range tx.ws {
		if tx.ws[i].table == table && tx.ws[i].key == key {
			tx.ws[i].val = append(tx.ws[i].val[:0], val...)
			return nil
		}
	}
	r := tx.w.DB.row(table, key)
	if r == nil {
		return ErrNotFound
	}
	tx.ws = append(tx.ws, wsEnt{table: table, key: key, rec: r, val: append([]byte(nil), val...)})
	return nil
}

// Insert buffers a new row.
func (tx *Txn) Insert(table uint8, key uint64, val []byte) error {
	tx.ws = append(tx.ws, wsEnt{table: table, key: key, insert: true, val: append([]byte(nil), val...)})
	return nil
}

// commit is Silo's three-phase commit.
func (tx *Txn) commit() error {
	w := tx.w
	w.Clk.Advance(w.DB.Cost.HTMRegion + time.Duration(len(tx.rs)+len(tx.ws))*w.DB.Cost.PerValidate)
	// Phase 1: lock the write set in a global order (pointer order is a
	// valid global order for heap records).
	locks := make([]*record, 0, len(tx.ws))
	for i := range tx.ws {
		if tx.ws[i].rec != nil {
			locks = append(locks, tx.ws[i].rec)
		}
	}
	sort.Slice(locks, func(i, j int) bool {
		return fmt.Sprintf("%p", locks[i]) < fmt.Sprintf("%p", locks[j])
	})
	locked := 0
	for _, r := range locks {
		ok := false
		for spin := 0; spin < 64; spin++ {
			cur := r.word.Load()
			if cur&lockBit == 0 && r.word.CompareAndSwap(cur, cur|lockBit) {
				ok = true
				break
			}
			sim.Spin(0)
		}
		if !ok {
			for _, l := range locks[:locked] {
				l.word.Store(l.word.Load() &^ lockBit)
			}
			return errAbort
		}
		locked++
	}
	unlockTo := func(tid uint64) {
		for _, r := range locks {
			r.word.Store(tid)
		}
	}
	// Phase 2: compute TID and validate reads.
	epoch := w.DB.epoch.Load()
	var maxCtr uint64
	for _, e := range tx.rs {
		if tidEpoch(e.tid) == epoch && tidCounter(e.tid) > maxCtr {
			maxCtr = tidCounter(e.tid)
		}
	}
	for _, e := range tx.rs {
		cur := e.rec.word.Load()
		lockedByMe := false
		for _, l := range locks {
			if l == e.rec {
				lockedByMe = true
				break
			}
		}
		if cur&lockBit != 0 && !lockedByMe {
			unlockAbort(locks, locked)
			return errAbort
		}
		if cur&^lockBit != e.tid&^lockBit {
			unlockAbort(locks, locked)
			return errAbort
		}
	}
	tid := makeTID(epoch, maxCtr+1)
	// Phase 3: install writes and unlock with the new TID.
	for i := range tx.ws {
		e := &tx.ws[i]
		if e.insert {
			e.rec = w.DB.insertRow(e.table, e.key, e.val, tid)
			continue
		}
		e.rec.valMu.Lock()
		e.rec.val = append(e.rec.val[:0], e.val...)
		e.rec.valMu.Unlock()
	}
	unlockTo(tid)
	return nil
}

func unlockAbort(locks []*record, n int) {
	for _, r := range locks[:n] {
		r.word.Store(r.word.Load() &^ lockBit)
	}
}
