package silo

import (
	"encoding/binary"
	"errors"
	"sync"
	"testing"

	"drtmr/internal/txn"
)

func enc(v uint64) []byte {
	b := make([]byte, 16)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

func dec(b []byte) uint64 { return binary.LittleEndian.Uint64(b[:8]) }

func newDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB([]uint8{1}, txn.DefaultCosts())
	t.Cleanup(db.Close)
	return db
}

func TestBasicReadWrite(t *testing.T) {
	db := newDB(t)
	if err := db.Insert(1, 5, enc(100)); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert(1, 5, enc(1)); err == nil {
		t.Fatal("duplicate insert accepted")
	}
	w := db.NewWorker(0)
	if err := w.Run(func(tx *Txn) error {
		v, err := tx.Read(1, 5)
		if err != nil {
			return err
		}
		return tx.Write(1, 5, enc(dec(v)+1))
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(func(tx *Txn) error {
		v, err := tx.Read(1, 5)
		if err != nil {
			return err
		}
		if dec(v) != 101 {
			t.Errorf("read back %d", dec(v))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.NewWorker(1).DB.row(1, 9), error(nil); err != nil {
		t.Fatal(err)
	}
	err := w.Run(func(tx *Txn) error {
		_, err := tx.Read(1, 999)
		return err
	})
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing key: %v", err)
	}
	if w.Stats.Committed != 2 {
		t.Fatalf("stats: %+v", w.Stats)
	}
}

func TestTxnInsertVisible(t *testing.T) {
	db := newDB(t)
	w := db.NewWorker(0)
	if err := w.Run(func(tx *Txn) error {
		return tx.Insert(1, 77, enc(9))
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(func(tx *Txn) error {
		v, err := tx.Read(1, 77)
		if err != nil {
			return err
		}
		if dec(v) != 9 {
			t.Errorf("inserted value: %d", dec(v))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentTransfersConserve is Silo's serializability smoke test: the
// OCC validation must serialize conflicting read-modify-writes.
func TestConcurrentTransfersConserve(t *testing.T) {
	db := newDB(t)
	const accounts = 8
	for k := uint64(0); k < accounts; k++ {
		if err := db.Insert(1, k, enc(1000)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for wid := 0; wid < 4; wid++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			w := db.NewWorker(id)
			for i := 0; i < 200; i++ {
				from := uint64((id + i) % accounts)
				to := uint64((id*3 + i*5 + 1) % accounts)
				if from == to {
					continue
				}
				if err := w.Run(func(tx *Txn) error {
					a, err := tx.Read(1, from)
					if err != nil {
						return err
					}
					b, err := tx.Read(1, to)
					if err != nil {
						return err
					}
					if dec(a) == 0 {
						return nil
					}
					if err := tx.Write(1, from, enc(dec(a)-1)); err != nil {
						return err
					}
					return tx.Write(1, to, enc(dec(b)+1))
				}); err != nil {
					t.Errorf("run: %v", err)
					return
				}
			}
		}(wid)
	}
	wg.Wait()
	var total uint64
	w := db.NewWorker(99)
	if err := w.Run(func(tx *Txn) error {
		total = 0
		for k := uint64(0); k < accounts; k++ {
			v, err := tx.Read(1, k)
			if err != nil {
				return err
			}
			total += dec(v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if total != accounts*1000 {
		t.Fatalf("not conserved: %d", total)
	}
}

func TestTIDWordPacking(t *testing.T) {
	w := makeTID(7, 123)
	if tidEpoch(w) != 7 || tidCounter(w) != 123 {
		t.Fatalf("pack/unpack: e=%d c=%d", tidEpoch(w), tidCounter(w))
	}
	if tidEpoch(w|lockBit) != 7 {
		t.Fatal("lock bit must not leak into epoch")
	}
}
