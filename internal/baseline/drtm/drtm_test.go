package drtm

import (
	"encoding/binary"
	"sync"
	"testing"

	"drtmr/internal/cluster"
	"drtmr/internal/memstore"
	"drtmr/internal/txn"
)

const tbl memstore.TableID = 1

func enc(v uint64) []byte {
	b := make([]byte, 16)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

func dec(b []byte) uint64 { return binary.LittleEndian.Uint64(b[:8]) }

func newWorld(t *testing.T, nodes int) (*cluster.Cluster, []*Engine) {
	t.Helper()
	c := cluster.New(cluster.Spec{Nodes: nodes, Replicas: 1, MemBytes: 8 << 20})
	part := func(table memstore.TableID, key uint64) cluster.ShardID {
		return cluster.ShardID(key % uint64(nodes))
	}
	var engines []*Engine
	for _, m := range c.Machines {
		m.Store.CreateTable(tbl, memstore.TableSpec{Name: "kv", ValueSize: 16, ExpectedRows: 256})
		engines = append(engines, NewEngine(m, part, txn.DefaultCosts()))
	}
	for key := uint64(0); key < 16; key++ {
		node := key % uint64(nodes)
		if _, err := c.Machines[node].Store.Table(tbl).Insert(key, enc(1000)); err != nil {
			t.Fatal(err)
		}
	}
	c.Start()
	t.Cleanup(c.Stop)
	return c, engines
}

func TestDeclaredTransfer(t *testing.T) {
	c, engines := newWorld(t, 2)
	w := engines[0].NewWorker(0)
	// Key 0 local, key 1 remote: the classic 2PL+HTM distributed case.
	refs := []Ref{
		{Table: tbl, Key: 0, Write: true},
		{Table: tbl, Key: 1, Write: true},
	}
	if err := w.Run(refs, func(cx *Ctx) error {
		a, err := cx.Get(tbl, 0)
		if err != nil {
			return err
		}
		b, err := cx.Get(tbl, 1)
		if err != nil {
			return err
		}
		if err := cx.Put(tbl, 0, enc(dec(a)-50)); err != nil {
			return err
		}
		return cx.Put(tbl, 1, enc(dec(b)+50))
	}); err != nil {
		t.Fatal(err)
	}
	// Verify on both machines directly.
	check := func(node int, key, want uint64) {
		st := c.Machines[node].Store.Table(tbl)
		off, ok := st.Lookup(key)
		if !ok {
			t.Fatalf("key %d missing", key)
		}
		if got := dec(st.ReadValueNonTx(off)); got != want {
			t.Fatalf("key %d: %d want %d", key, got, want)
		}
	}
	check(0, 0, 950)
	check(1, 1, 1050)
	if w.Stats.Committed != 1 {
		t.Fatalf("stats: %+v", w.Stats)
	}
}

func TestUndeclaredAccessRejected(t *testing.T) {
	_, engines := newWorld(t, 2)
	w := engines[0].NewWorker(0)
	err := w.Run([]Ref{{Table: tbl, Key: 0}}, func(cx *Ctx) error {
		_, err := cx.Get(tbl, 2) // not declared
		return err
	})
	if err == nil {
		t.Fatal("undeclared read accepted — DrTM requires a-priori sets")
	}
	err = w.Run([]Ref{{Table: tbl, Key: 0}}, func(cx *Ctx) error {
		return cx.Put(tbl, 0, enc(1)) // declared read-only
	})
	if err == nil {
		t.Fatal("write to read-only ref accepted")
	}
}

func TestConcurrentDeclaredConserve(t *testing.T) {
	c, engines := newWorld(t, 3)
	var wg sync.WaitGroup
	for n := 0; n < 3; n++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			w := engines[node].NewWorker(node)
			for i := 0; i < 100; i++ {
				from := uint64((node + i) % 16)
				to := uint64((node*5 + i*3 + 1) % 16)
				if from == to {
					continue
				}
				refs := []Ref{
					{Table: tbl, Key: from, Write: true},
					{Table: tbl, Key: to, Write: true},
				}
				if err := w.Run(refs, func(cx *Ctx) error {
					a, err := cx.Get(tbl, from)
					if err != nil {
						return err
					}
					b, err := cx.Get(tbl, to)
					if err != nil {
						return err
					}
					if dec(a) == 0 {
						return nil
					}
					if err := cx.Put(tbl, from, enc(dec(a)-1)); err != nil {
						return err
					}
					return cx.Put(tbl, to, enc(dec(b)+1))
				}); err != nil {
					t.Errorf("run: %v", err)
					return
				}
			}
		}(n)
	}
	wg.Wait()
	var total uint64
	for key := uint64(0); key < 16; key++ {
		st := c.Machines[key%3].Store.Table(tbl)
		off, _ := st.Lookup(key)
		total += dec(st.ReadValueNonTx(off))
	}
	if total != 16*1000 {
		t.Fatalf("not conserved: %d", total)
	}
}
