// Package drtm implements the DrTM baseline (Wei et al., SOSP'15): the
// paper's closest prior system, combining HTM with two-phase locking over
// RDMA. Its two defining differences from DrTM+R, both of which the
// evaluation figures hinge on:
//
//  1. It requires the transaction's read/write sets A PRIORI: remote records
//     are locked (and fetched) before execution, and the whole transaction
//     body — actual data accesses, not just metadata — runs inside ONE large
//     HTM region. The big region is why DrTM degrades as threads and
//     working sets grow (Figs 11, 18): more lines in the read/write set mean
//     more capacity pressure and a larger conflict window.
//  2. No replication support; locks are exclusive (our simplification of
//     DrTM's lease-based shared locks — conservative for read-heavy mixes,
//     matching the paper's observation that DrTM falls to a slow path more
//     often under contention).
//
// The workload driver must precompute the sets (the restriction DrTM+R
// removes); TPC-C dependent transactions are handled the way DrTM really
// handled them — with knowledge extracted before execution (the paper used
// transaction chopping).
package drtm

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"drtmr/internal/cluster"
	"drtmr/internal/htm"
	"drtmr/internal/memstore"
	"drtmr/internal/rdma"
	"drtmr/internal/sim"
	"drtmr/internal/txn"
)

// Ref names one record in a declared read/write set.
type Ref struct {
	Table memstore.TableID
	Key   uint64
	Write bool
}

// Engine is the per-machine DrTM instance.
type Engine struct {
	M    *cluster.Machine
	Part txn.Partitioner
	Cost txn.CostModel
}

// NewEngine builds DrTM on machine m.
func NewEngine(m *cluster.Machine, part txn.Partitioner, cost txn.CostModel) *Engine {
	return &Engine{M: m, Part: part, Cost: cost}
}

// Worker is one DrTM worker thread.
type Worker struct {
	E   *Engine
	ID  int
	Clk sim.Clock
	rng *sim.Rand
	qps []*rdma.QP

	Stats Stats
}

// Stats counts outcomes.
type Stats struct {
	Committed uint64
	Aborts    uint64
	Fallbacks uint64
}

// NewWorker creates worker id.
func (e *Engine) NewWorker(id int) *Worker {
	w := &Worker{E: e, ID: id, rng: sim.NewRand(uint64(id)*977 + uint64(e.M.ID) + 5)}
	n := e.M.Cluster().Spec.Nodes
	w.qps = make([]*rdma.QP, n)
	for i := 0; i < n; i++ {
		w.qps[i] = e.M.Cluster().Net.NewQP(e.M.ID, rdma.NodeID(i), &w.Clk)
	}
	return w
}

// Ctx is the execution context handed to the transaction body: all remote
// records are pre-fetched (and locked); local records go through the big
// HTM region.
type Ctx struct {
	w      *Worker
	htx    *htm.Txn
	noHTM  bool // fallback mode: plain accesses under locks
	remote map[Ref][]byte
	dirty  map[Ref][]byte
	refs   map[refKey]*refState
}

type refKey struct {
	table memstore.TableID
	key   uint64
}

type refState struct {
	ref    Ref
	local  bool
	node   rdma.NodeID
	off    uint64
	locked bool
}

// ErrAborted is returned when the transaction cannot make progress and the
// caller should retry.
var ErrAborted = errors.New("drtm: aborted")

// Get reads a declared record.
func (c *Ctx) Get(table memstore.TableID, key uint64) ([]byte, error) {
	rk := refKey{table, key}
	st := c.refs[rk]
	if st == nil {
		return nil, fmt.Errorf("drtm: undeclared access %d/%d", table, key)
	}
	if v, ok := c.dirty[st.ref]; ok {
		return v, nil
	}
	if !st.local {
		v := c.remote[st.ref]
		if v == nil {
			return nil, ErrAborted
		}
		return v, nil
	}
	tbl := c.w.E.M.Store.Table(table)
	// Single-pass execution inside one region: no separate per-read HTM
	// begin/commit and no read-set buffer maintenance.
	c.w.Clk.Advance(c.w.E.Cost.LocalAccess * 3 / 4)
	if c.noHTM {
		img := c.w.E.M.Eng.ReadNonTx(st.off, tbl.RecBytes, nil)
		return memstore.GatherValue(img, tbl.Spec.ValueSize), nil
	}
	// Inside the big HTM region: check the lock word first (a remote
	// transaction may hold the record), then read the record data.
	lockW, err := c.htx.Load64(st.off + memstore.LockOff)
	if err != nil {
		return nil, ErrAborted
	}
	if lockW != 0 {
		c.htx.Abort(0x21)
		return nil, ErrAborted
	}
	img, err := c.htx.Read(st.off, tbl.RecBytes, nil)
	if err != nil {
		return nil, ErrAborted
	}
	return memstore.GatherValue(img, tbl.Spec.ValueSize), nil
}

// Put writes a declared record.
func (c *Ctx) Put(table memstore.TableID, key uint64, value []byte) error {
	rk := refKey{table, key}
	st := c.refs[rk]
	if st == nil || !st.ref.Write {
		return fmt.Errorf("drtm: undeclared write %d/%d", table, key)
	}
	if !st.local {
		c.dirty[st.ref] = append([]byte(nil), value...)
		return nil
	}
	tbl := c.w.E.M.Store.Table(table)
	c.w.Clk.Advance(c.w.E.Cost.LocalAccess)
	inc := c.w.E.M.Eng.Load64NonTx(st.off + memstore.IncOff)
	if c.noHTM {
		var seq uint64
		img := c.w.E.M.Eng.ReadNonTx(st.off, 24, nil)
		seq = memstore.RecSeq(img) + 1
		full := memstore.BuildRecordImage(tbl.Spec.ValueSize, value, inc, seq)
		c.w.E.M.Eng.WriteNonTx(st.off+8, full[8:])
		return nil
	}
	seq, err := c.htx.Load64(st.off + memstore.SeqOff)
	if err != nil {
		return ErrAborted
	}
	full := memstore.BuildRecordImage(tbl.Spec.ValueSize, value, inc, seq+1)
	if err := c.htx.Write(st.off+8, full[8:]); err != nil {
		return ErrAborted
	}
	return nil
}

// Run executes a transaction with declared refs: lock remote (2PL growing
// phase), fetch remote reads, run body in one big HTM region, write back and
// unlock (shrinking phase).
func (w *Worker) Run(refs []Ref, body func(c *Ctx) error) error {
	for attempt := 0; ; attempt++ {
		err := w.attempt(refs, body, attempt)
		if err == nil {
			w.Stats.Committed++
			return nil
		}
		if !errors.Is(err, ErrAborted) {
			return err
		}
		w.Stats.Aborts++
		w.backoff(attempt)
	}
}

func (w *Worker) backoff(attempt int) {
	maxExp := 1 << uint(min(attempt, 8))
	w.Clk.Advance(time.Duration(1+w.rng.Intn(maxExp)) * w.E.Cost.Backoff)
	sim.Spin(0)
}


const bigHTMRetries = 8

func (w *Worker) attempt(refs []Ref, body func(c *Ctx) error, attempt int) error {
	w.Clk.Advance(w.E.Cost.TxnOverhead)
	ctx := &Ctx{
		w:      w,
		remote: make(map[Ref][]byte),
		dirty:  make(map[Ref][]byte),
		refs:   make(map[refKey]*refState, len(refs)),
	}
	cfg := w.E.M.Config()
	// Resolve placements and offsets.
	var states []*refState
	for _, r := range refs {
		rk := refKey{r.Table, r.Key}
		if prev := ctx.refs[rk]; prev != nil {
			prev.ref.Write = prev.ref.Write || r.Write
			continue
		}
		shard := w.E.Part(r.Table, r.Key)
		node := cfg.PrimaryOf(shard)
		st := &refState{ref: r, node: node, local: node == w.E.M.ID}
		if st.local {
			off, ok := w.E.M.Store.Table(r.Table).Lookup(r.Key)
			if !ok {
				return fmt.Errorf("drtm: missing local record %d/%d", r.Table, r.Key)
			}
			st.off = off
		} else {
			loc, err := w.remoteLookup(st.node, r.Table, r.Key)
			if err != nil {
				return err
			}
			st.off = loc
		}
		ctx.refs[rk] = st
		states = append(states, st)
	}
	// 2PL growing phase: lock remote records in sorted order.
	sort.Slice(states, func(i, j int) bool {
		if states[i].node != states[j].node {
			return states[i].node < states[j].node
		}
		return states[i].off < states[j].off
	})
	myWord := memstore.LockWord(uint32(w.E.M.ID))
	release := func() {
		for _, st := range states {
			if st.locked {
				_, _, _ = w.qps[st.node].CAS(st.off+memstore.LockOff, myWord, 0)
				st.locked = false
			}
		}
	}
	for _, st := range states {
		if st.local {
			continue
		}
		_, ok, err := w.qps[st.node].CAS(st.off+memstore.LockOff, 0, myWord)
		if err != nil || !ok {
			release()
			return ErrAborted
		}
		st.locked = true
	}
	// Fetch remote records.
	for _, st := range states {
		if st.local {
			continue
		}
		tbl := w.E.M.Store.Table(st.ref.Table)
		img, err := w.qps[st.node].Read(st.off, tbl.RecBytes, nil)
		if err != nil {
			release()
			return ErrAborted
		}
		ctx.remote[st.ref] = memstore.GatherValue(img, tbl.Spec.ValueSize)
	}
	// Execute the body in one big HTM region (bounded retries, then the
	// locking fallback: lock local records too via loop-back CAS).
	commitErr := w.bigHTMRun(ctx, states, body, myWord)
	if commitErr != nil {
		release()
		return commitErr
	}
	// Write back remote updates, then unlock (2PL shrinking phase).
	for _, st := range states {
		if st.local || !st.ref.Write {
			continue
		}
		v := ctx.dirty[st.ref]
		if v == nil {
			continue
		}
		tbl := w.E.M.Store.Table(st.ref.Table)
		var hdr [24]byte
		h, err := w.qps[st.node].Read(st.off, 24, hdr[:])
		if err == nil {
			img := memstore.BuildRecordImage(tbl.Spec.ValueSize, v, memstore.RecInc(h), memstore.RecSeq(h)+1)
			_ = w.qps[st.node].Write(st.off+8, img[8:])
		}
	}
	release()
	return nil
}

// bigHTMRun executes body inside one HTM transaction covering every local
// record's data lines — the DrTM design point.
func (w *Worker) bigHTMRun(ctx *Ctx, states []*refState, body func(c *Ctx) error, myWord uint64) error {
	nLocal := 0
	for _, st := range states {
		if st.local {
			nLocal++
		}
	}
	for attempt := 0; attempt < bigHTMRetries; attempt++ {
		// The big region touches each record's data lines once; unlike
		// DrTM+R there is no commit-phase re-validation pass and no
		// read/write buffer maintenance (the generality overhead the
		// paper measures at 2.2-9.8%).
		w.Clk.Advance(w.E.Cost.HTMRegion + time.Duration(nLocal)*w.E.Cost.PerValidate)
		ctx.htx = w.E.M.Eng.Begin()
		ctx.noHTM = false
		for k := range ctx.dirty {
			delete(ctx.dirty, k)
		}
		if err := body(ctx); err != nil {
			if errors.Is(err, ErrAborted) {
				w.backoff(attempt)
				continue
			}
			ctx.htx.Abort(0xFE)
			return err
		}
		if err := ctx.htx.Commit(); err == nil {
			return nil
		}
		w.backoff(attempt)
	}
	// Fallback: lock LOCAL records via loop-back RDMA CAS, run without HTM.
	w.Stats.Fallbacks++
	var localLocked []*refState
	for _, st := range states {
		if !st.local {
			continue
		}
		ok := false
		for a := 0; a < 64; a++ {
			if _, swapped, err := w.qps[w.E.M.ID].CAS(st.off+memstore.LockOff, 0, myWord); err == nil && swapped {
				ok = true
				break
			}
			w.backoff(a)
		}
		if !ok {
			for _, l := range localLocked {
				_, _, _ = w.qps[w.E.M.ID].CAS(l.off+memstore.LockOff, myWord, 0)
			}
			return ErrAborted
		}
		localLocked = append(localLocked, st)
	}
	ctx.noHTM = true
	for k := range ctx.dirty {
		delete(ctx.dirty, k)
	}
	err := body(ctx)
	for _, l := range localLocked {
		_, _, _ = w.qps[w.E.M.ID].CAS(l.off+memstore.LockOff, myWord, 0)
	}
	if err != nil && !errors.Is(err, ErrAborted) {
		return err
	}
	if err != nil {
		return ErrAborted
	}
	return nil
}

func (w *Worker) remoteLookup(node rdma.NodeID, table memstore.TableID, key uint64) (uint64, error) {
	tbl := w.E.M.Store.Table(table)
	h := tbl.Hash()
	bucketOff := memstore.BucketOffFor(h.Base(), h.NumBuckets(), key)
	var img [64]byte
	for bucketOff != 0 {
		b, err := w.qps[node].Read(bucketOff, 64, img[:])
		if err != nil {
			return 0, ErrAborted
		}
		packed, next, found := memstore.ParseBucket(b, key)
		if found {
			off, _ := memstore.SplitLoc(packed)
			return off, nil
		}
		bucketOff = next
	}
	return 0, fmt.Errorf("drtm: missing remote record %d/%d", table, key)
}
