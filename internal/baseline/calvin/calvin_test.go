package calvin

import (
	"encoding/binary"
	"sync"
	"testing"

	"drtmr/internal/cluster"
	"drtmr/internal/memstore"
	"drtmr/internal/txn"
)

const tbl memstore.TableID = 1

func enc(v uint64) []byte {
	b := make([]byte, 16)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

func dec(b []byte) uint64 { return binary.LittleEndian.Uint64(b[:8]) }

func newWorld(t *testing.T, nodes int) (*cluster.Cluster, *System) {
	t.Helper()
	c := cluster.New(cluster.Spec{Nodes: nodes, Replicas: 1, MemBytes: 8 << 20})
	part := func(table memstore.TableID, key uint64) cluster.ShardID {
		return cluster.ShardID(key % uint64(nodes))
	}
	for _, m := range c.Machines {
		m.Store.CreateTable(tbl, memstore.TableSpec{Name: "kv", ValueSize: 16, ExpectedRows: 256})
	}
	for key := uint64(0); key < 16; key++ {
		if _, err := c.Machines[key%uint64(nodes)].Store.Table(tbl).Insert(key, enc(1000)); err != nil {
			t.Fatal(err)
		}
	}
	c.Start()
	t.Cleanup(c.Stop)
	return c, New(c, part, txn.DefaultCosts())
}

func TestDeterministicTransfer(t *testing.T) {
	c, sys := newWorld(t, 2)
	w := sys.NewWorker(0, 0)
	refs := []Ref{
		{Table: tbl, Key: 0, Write: true},
		{Table: tbl, Key: 1, Write: true}, // remote partition
	}
	if err := w.Run(refs, func(cx *Ctx) error {
		a, err := cx.Get(tbl, 0)
		if err != nil {
			return err
		}
		b, err := cx.Get(tbl, 1)
		if err != nil {
			return err
		}
		if err := cx.Put(tbl, 0, enc(dec(a)-10)); err != nil {
			return err
		}
		return cx.Put(tbl, 1, enc(dec(b)+10))
	}); err != nil {
		t.Fatal(err)
	}
	st0 := c.Machines[0].Store.Table(tbl)
	st1 := c.Machines[1].Store.Table(tbl)
	o0, _ := st0.Lookup(0)
	o1, _ := st1.Lookup(1)
	if dec(st0.ReadValueNonTx(o0)) != 990 || dec(st1.ReadValueNonTx(o1)) != 1010 {
		t.Fatal("transfer not applied at both partitions")
	}
	if w.Stats.Committed != 1 {
		t.Fatalf("stats: %+v", w.Stats)
	}
}

func TestUndeclaredAccessRejected(t *testing.T) {
	_, sys := newWorld(t, 2)
	w := sys.NewWorker(0, 0)
	err := w.Run([]Ref{{Table: tbl, Key: 0}}, func(cx *Ctx) error {
		_, err := cx.Get(tbl, 3)
		return err
	})
	if err == nil {
		t.Fatal("undeclared access accepted — Calvin requires a-priori sets")
	}
}

// TestDeterministicLockOrderConserves hammers conflicting multi-partition
// transfers from every machine: the deterministic lock manager must
// serialize them without deadlock and conserve value.
func TestDeterministicLockOrderConserves(t *testing.T) {
	c, sys := newWorld(t, 3)
	var wg sync.WaitGroup
	for n := 0; n < 3; n++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			w := sys.NewWorker(cluster.NewInitialConfig(3, 1).Primary[node], node)
			for i := 0; i < 80; i++ {
				from := uint64((node + i) % 16)
				to := uint64((node*7 + i*3 + 1) % 16)
				if from == to {
					continue
				}
				refs := []Ref{
					{Table: tbl, Key: from, Write: true},
					{Table: tbl, Key: to, Write: true},
				}
				if err := w.Run(refs, func(cx *Ctx) error {
					a, err := cx.Get(tbl, from)
					if err != nil {
						return err
					}
					b, err := cx.Get(tbl, to)
					if err != nil {
						return err
					}
					if dec(a) == 0 {
						return nil
					}
					if err := cx.Put(tbl, from, enc(dec(a)-1)); err != nil {
						return err
					}
					return cx.Put(tbl, to, enc(dec(b)+1))
				}); err != nil {
					t.Errorf("run: %v", err)
					return
				}
			}
		}(n)
	}
	wg.Wait()
	var total uint64
	for key := uint64(0); key < 16; key++ {
		st := c.Machines[key%3].Store.Table(tbl)
		off, _ := st.Lookup(key)
		total += dec(st.ReadValueNonTx(off))
	}
	if total != 16*1000 {
		t.Fatalf("not conserved: %d", total)
	}
}
