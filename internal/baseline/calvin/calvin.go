// Package calvin implements the Calvin baseline (Thomson et al.,
// SIGMOD'12): deterministic distributed transaction processing. The paper
// compares against the released Calvin code running over IPoIB (no RDMA
// verbs, no HTM) and finds DrTM+R at least 26.8x faster on TPC-C.
//
// Architecture reproduced here:
//
//   - A sequencing layer assigns every transaction a global sequence number
//     and disseminates it to all participant partitions — modelled as an
//     atomic ticket counter plus one IPoIB-class message per remote
//     participant, matching Calvin's per-epoch batch broadcast cost
//     amortized per transaction.
//   - A deterministic lock manager per machine: locks are granted strictly
//     in sequence order (FIFO queues per record), so the execution is
//     deterministic and needs no distributed commit protocol.
//   - Execution: single-partition transactions run locally once their locks
//     are granted; multi-partition transactions exchange their remote reads
//     over two-sided messaging (each remote record costs an IPoIB
//     round-trip, charged to the worker's virtual clock) and apply their
//     local writes.
//
// Like the real system, Calvin requires the read/write sets in advance (the
// restriction the paper's Table 1 lists), so the driver passes declared
// refs. Logging/replication is disabled, as in the released code the paper
// benchmarked.
package calvin

import (
	"fmt"
	"sync"
	"time"

	"drtmr/internal/cluster"
	"drtmr/internal/memstore"
	"drtmr/internal/rdma"
	"drtmr/internal/sim"
	"drtmr/internal/txn"
)

// Ref declares one record access.
type Ref struct {
	Table memstore.TableID
	Key   uint64
	Write bool
}

// System is the cluster-wide Calvin deployment (sequencer + per-machine
// lock managers).
type System struct {
	c    *cluster.Cluster
	part txn.Partitioner
	cost txn.CostModel

	seqMu sync.Mutex
	seqNo uint64
	lms   []*lockManager

	// Messaging latency: Calvin runs on IPoIB.
	msgLatency time.Duration
	// schedCost models the sequencer/scheduler CPU per transaction per
	// participant (batching, epoch management, dispatch).
	schedCost time.Duration
	// lmService is the single-threaded lock manager service time per
	// lock operation — Calvin's well-known scalability bottleneck,
	// modelled as a virtual-time resource per machine.
	lmService time.Duration
}

// New builds Calvin over an existing cluster's machines and stores (the
// harness gives Calvin its own cluster instance so the systems do not
// interfere).
func New(c *cluster.Cluster, part txn.Partitioner, cost txn.CostModel) *System {
	s := &System{
		c:          c,
		part:       part,
		cost:       cost,
		msgLatency: 40 * time.Microsecond,
		schedCost:  4 * time.Microsecond,
		lmService:  700 * time.Nanosecond,
	}
	for range c.Machines {
		s.lms = append(s.lms, newLockManager())
	}
	return s
}

// lockManager is a deterministic per-machine lock table: requests enqueue in
// sequence order and are granted FIFO.
type lockManager struct {
	mu    sync.Mutex
	locks map[lockKey]*lockQueue
	// service models the single lock-manager thread in virtual time.
	service sim.Resource
}

type lockKey struct {
	table memstore.TableID
	key   uint64
}

type lockQueue struct {
	holders []uint64 // sequence numbers waiting/holding, FIFO
}

func newLockManager() *lockManager {
	return &lockManager{locks: make(map[lockKey]*lockQueue)}
}

// enqueue registers seq for every local ref, FIFO. The sequencer calls this
// under its global critical section, so arrival order IS sequence order —
// the deterministic property that makes grant-in-queue-order deadlock-free.
func (lm *lockManager) enqueue(seq uint64, refs []lockKey) {
	lm.mu.Lock()
	for _, rk := range refs {
		q := lm.locks[rk]
		if q == nil {
			q = &lockQueue{}
			lm.locks[rk] = q
		}
		q.holders = append(q.holders, seq)
	}
	lm.mu.Unlock()
}

// granted reports whether seq holds all its locks (is at each queue head).
func (lm *lockManager) granted(seq uint64, refs []lockKey) bool {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	for _, rk := range refs {
		q := lm.locks[rk]
		if q == nil || len(q.holders) == 0 || q.holders[0] != seq {
			return false
		}
	}
	return true
}

// release drops seq's locks.
func (lm *lockManager) release(seq uint64, refs []lockKey) {
	lm.mu.Lock()
	for _, rk := range refs {
		q := lm.locks[rk]
		if q == nil {
			continue
		}
		for i, h := range q.holders {
			if h == seq {
				q.holders = append(q.holders[:i], q.holders[i+1:]...)
				break
			}
		}
		if len(q.holders) == 0 {
			delete(lm.locks, rk)
		}
	}
	lm.mu.Unlock()
}

// Worker is one Calvin worker thread on a machine.
type Worker struct {
	S    *System
	Node rdma.NodeID
	ID   int
	Clk  sim.Clock

	Stats Stats
}

// Stats counts outcomes.
type Stats struct {
	Committed uint64
}

// NewWorker creates a worker on node.
func (s *System) NewWorker(node rdma.NodeID, id int) *Worker {
	return &Worker{S: s, Node: node, ID: id}
}

// Ctx provides record access during execution (all locks held).
type Ctx struct {
	w      *Worker
	values map[Ref][]byte
	local  map[lockKey]uint64 // local record offsets
}

// Get returns a declared record's value.
func (c *Ctx) Get(table memstore.TableID, key uint64) ([]byte, error) {
	for r, v := range c.values {
		if r.Table == table && r.Key == key {
			return v, nil
		}
	}
	return nil, fmt.Errorf("calvin: undeclared access %d/%d", table, key)
}

// Put replaces a declared record's value (applied locally at the owning
// partition after the body runs).
func (c *Ctx) Put(table memstore.TableID, key uint64, value []byte) error {
	for r := range c.values {
		if r.Table == table && r.Key == key {
			if !r.Write {
				return fmt.Errorf("calvin: undeclared write %d/%d", table, key)
			}
			c.values[r] = append([]byte(nil), value...)
			return nil
		}
	}
	return fmt.Errorf("calvin: undeclared write %d/%d", table, key)
}

// Run executes one deterministic transaction with declared refs.
func (w *Worker) Run(refs []Ref, body func(c *Ctx) error) error {
	s := w.S
	cfg := s.c.Coord.Current()

	// Participants and per-machine lock keys.
	perNode := make(map[rdma.NodeID][]lockKey)
	nodeOf := make(map[lockKey]rdma.NodeID)
	for _, r := range refs {
		rk := lockKey{r.Table, r.Key}
		if _, dup := nodeOf[rk]; dup {
			continue
		}
		node := cfg.PrimaryOf(s.part(r.Table, r.Key))
		nodeOf[rk] = node
		perNode[node] = append(perNode[node], rk)
	}
	// Sequencer dissemination: one message per remote participant plus
	// scheduler CPU per participant.
	for node := range perNode {
		w.Clk.Advance(s.schedCost)
		if node != w.Node {
			w.Clk.Advance(s.msgLatency)
		}
	}
	// Global sequencing point: the sequence number is assigned and the
	// transaction enqueued at EVERY participant's lock manager atomically,
	// so queues are in global sequence order (Calvin's determinism). The
	// lock-manager service time is charged against each machine's single
	// lock-manager thread in virtual time.
	s.seqMu.Lock()
	s.seqNo++
	seq := s.seqNo
	for node, keys := range perNode {
		lm := s.lms[node]
		end := lm.service.Use(w.Clk.Now(), time.Duration(len(keys))*s.lmService)
		w.Clk.AdvanceTo(end)
		lm.enqueue(seq, keys)
	}
	s.seqMu.Unlock()
	// Wait for grants everywhere (deterministic order ⇒ no deadlock).
	for node, keys := range perNode {
		for !s.lms[node].granted(seq, keys) {
			w.Clk.Advance(500 * time.Nanosecond)
			sim.Spin(0)
		}
	}
	// Collect values: local reads directly; remote reads via an IPoIB
	// round trip per participant (Calvin pushes reads to peers).
	ctx := &Ctx{w: w, values: make(map[Ref][]byte), local: make(map[lockKey]uint64)}
	for _, r := range refs {
		rk := lockKey{r.Table, r.Key}
		node := nodeOf[rk]
		tbl := s.c.Machines[node].Store.Table(r.Table)
		off, ok := tbl.Lookup(r.Key)
		if !ok {
			s.releaseAll(seq, perNode)
			return fmt.Errorf("calvin: missing record %d/%d", r.Table, r.Key)
		}
		if node == w.Node {
			ctx.local[rk] = off
			w.Clk.Advance(s.cost.LocalAccess)
		} else {
			w.Clk.Advance(s.msgLatency) // read result shipped over IPoIB
		}
		img := s.c.Machines[node].Eng.ReadNonTx(off, tbl.RecBytes, nil)
		ctx.values[r] = memstore.GatherValue(img, tbl.Spec.ValueSize)
	}
	// Execute.
	if err := body(ctx); err != nil {
		s.releaseAll(seq, perNode)
		return err
	}
	// Apply writes at their partitions (remote writes ride messages).
	for _, r := range refs {
		if !r.Write {
			continue
		}
		rk := lockKey{r.Table, r.Key}
		node := nodeOf[rk]
		tbl := s.c.Machines[node].Store.Table(r.Table)
		off, ok := tbl.Lookup(r.Key)
		if !ok {
			continue
		}
		if node != w.Node {
			w.Clk.Advance(s.msgLatency)
		} else {
			w.Clk.Advance(s.cost.LocalAccess)
		}
		eng := s.c.Machines[node].Eng
		inc := eng.Load64NonTx(off + memstore.IncOff)
		cur := eng.Load64NonTx(off + memstore.SeqOff)
		img := memstore.BuildRecordImage(tbl.Spec.ValueSize, ctx.values[r], inc, cur+1)
		eng.WriteNonTx(off+8, img[8:])
	}
	s.releaseAll(seq, perNode)
	w.Stats.Committed++
	return nil
}

func (s *System) releaseAll(seq uint64, perNode map[rdma.NodeID][]lockKey) {
	for node, keys := range perNode {
		s.lms[node].release(seq, keys)
	}
}

// Insert adds a record deterministically (loader-style; Calvin handles
// inserts through its scheduler, modelled here as a locked single-record
// transaction).
func (w *Worker) Insert(table memstore.TableID, key uint64, value []byte) error {
	s := w.S
	cfg := s.c.Coord.Current()
	node := cfg.PrimaryOf(s.part(table, key))
	if node != w.Node {
		w.Clk.Advance(s.msgLatency)
	}
	w.Clk.Advance(s.schedCost + s.cost.LocalAccess)
	_, err := s.c.Machines[node].Store.Table(table).Insert(key, value)
	return err
}
