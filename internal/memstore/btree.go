package memstore

import "sync"

// BTree is the ordered store (§6.3): a B+-tree mapping uint64 keys to record
// offsets, used for tables that need range scans (TPC-C's NEW-ORDER "oldest
// order per district", ORDER-LINE scans for stock-level, customer-by-name).
//
// Substitution note: the paper uses DBX's HTM-protected B+-tree, reported
// comparable to state-of-the-art concurrent B+-trees. The simulated HTM
// engine only covers arena memory, so this tree lives on the Go heap under a
// readers-writer lock instead. The interface and the concurrency guarantees
// the transaction layer relies on (thread-safe point and range access to an
// ordered key->offset index) are identical; the index itself is never
// accessed remotely — ordered tables are always partitioned so scans are
// machine-local, as in the paper's TPC-C layout.
type BTree struct {
	mu   sync.RWMutex
	root btnode
	size int
}

const btOrder = 32 // max keys per node

type btnode interface {
	// insert returns (newRight, sepKey, grew) when the node split.
	insert(key, val uint64) (btnode, uint64, bool)
	get(key uint64) (uint64, bool)
	del(key uint64) bool
	// scan calls fn for keys in [lo, hi]; returns false to stop early.
	scan(lo, hi uint64, fn func(key, val uint64) bool) bool
	min() (uint64, uint64, bool)
}

type btleaf struct {
	keys []uint64
	vals []uint64
	next *btleaf
}

type btinner struct {
	keys []uint64 // len(children)-1 separators
	kids []btnode
}

// NewBTree returns an empty tree.
func NewBTree() *BTree {
	return &BTree{root: &btleaf{}}
}

// Len returns the number of entries.
func (t *BTree) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.size
}

// Put inserts or replaces key -> val.
func (t *BTree) Put(key, val uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	before := t.count(key)
	right, sep, grew := t.root.insert(key, val)
	if grew {
		t.root = &btinner{keys: []uint64{sep}, kids: []btnode{t.root, right}}
	}
	if before == 0 {
		t.size++
	}
}

func (t *BTree) count(key uint64) int {
	if _, ok := t.root.get(key); ok {
		return 1
	}
	return 0
}

// Get returns the value bound to key.
func (t *BTree) Get(key uint64) (uint64, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.root.get(key)
}

// Delete removes key, reporting whether it was present. Underflow is not
// rebalanced (nodes may become sparse); OLTP delete patterns (TPC-C delivery
// consuming NEW-ORDER rows in key order) leave empty leaves that scans skip,
// which is the standard lazy-delete trade-off.
func (t *BTree) Delete(key uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.root.del(key) {
		t.size--
		return true
	}
	return false
}

// Scan visits entries with keys in [lo, hi] in ascending order; fn returns
// false to stop.
func (t *BTree) Scan(lo, hi uint64, fn func(key, val uint64) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.root.scan(lo, hi, fn)
}

// Min returns the smallest entry.
func (t *BTree) Min() (key, val uint64, ok bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.root.min()
}

// MinGE returns the smallest entry with key >= lo (the "oldest NEW-ORDER"
// primitive in TPC-C delivery).
func (t *BTree) MinGE(lo uint64) (key, val uint64, ok bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.root.scan(lo, ^uint64(0), func(k, v uint64) bool {
		key, val, ok = k, v, true
		return false
	})
	return key, val, ok
}

// --- leaf ---

func (l *btleaf) find(key uint64) (int, bool) {
	lo, hi := 0, len(l.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if l.keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(l.keys) && l.keys[lo] == key
}

func (l *btleaf) insert(key, val uint64) (btnode, uint64, bool) {
	i, found := l.find(key)
	if found {
		l.vals[i] = val
		return nil, 0, false
	}
	l.keys = append(l.keys, 0)
	l.vals = append(l.vals, 0)
	copy(l.keys[i+1:], l.keys[i:])
	copy(l.vals[i+1:], l.vals[i:])
	l.keys[i] = key
	l.vals[i] = val
	if len(l.keys) <= btOrder {
		return nil, 0, false
	}
	mid := len(l.keys) / 2
	right := &btleaf{
		keys: append([]uint64(nil), l.keys[mid:]...),
		vals: append([]uint64(nil), l.vals[mid:]...),
		next: l.next,
	}
	l.keys = l.keys[:mid]
	l.vals = l.vals[:mid]
	l.next = right
	return right, right.keys[0], true
}

func (l *btleaf) get(key uint64) (uint64, bool) {
	i, found := l.find(key)
	if !found {
		return 0, false
	}
	return l.vals[i], true
}

func (l *btleaf) del(key uint64) bool {
	i, found := l.find(key)
	if !found {
		return false
	}
	l.keys = append(l.keys[:i], l.keys[i+1:]...)
	l.vals = append(l.vals[:i], l.vals[i+1:]...)
	return true
}

func (l *btleaf) scan(lo, hi uint64, fn func(key, val uint64) bool) bool {
	i, _ := l.find(lo)
	for n := l; n != nil; n = n.next {
		for ; i < len(n.keys); i++ {
			if n.keys[i] > hi {
				return false
			}
			if !fn(n.keys[i], n.vals[i]) {
				return false
			}
		}
		i = 0
	}
	return true
}

func (l *btleaf) min() (uint64, uint64, bool) {
	for n := l; n != nil; n = n.next {
		if len(n.keys) > 0 {
			return n.keys[0], n.vals[0], true
		}
	}
	return 0, 0, false
}

// --- inner ---

func (n *btinner) childFor(key uint64) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if n.keys[mid] <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func (n *btinner) insert(key, val uint64) (btnode, uint64, bool) {
	ci := n.childFor(key)
	right, sep, grew := n.kids[ci].insert(key, val)
	if !grew {
		return nil, 0, false
	}
	n.keys = append(n.keys, 0)
	copy(n.keys[ci+1:], n.keys[ci:])
	n.keys[ci] = sep
	n.kids = append(n.kids, nil)
	copy(n.kids[ci+2:], n.kids[ci+1:])
	n.kids[ci+1] = right
	if len(n.kids) <= btOrder {
		return nil, 0, false
	}
	mid := len(n.keys) / 2
	sepUp := n.keys[mid]
	rightNode := &btinner{
		keys: append([]uint64(nil), n.keys[mid+1:]...),
		kids: append([]btnode(nil), n.kids[mid+1:]...),
	}
	n.keys = n.keys[:mid]
	n.kids = n.kids[:mid+1]
	return rightNode, sepUp, true
}

func (n *btinner) get(key uint64) (uint64, bool) {
	return n.kids[n.childFor(key)].get(key)
}

func (n *btinner) del(key uint64) bool {
	return n.kids[n.childFor(key)].del(key)
}

func (n *btinner) scan(lo, hi uint64, fn func(key, val uint64) bool) bool {
	// Descend to the leaf containing lo; the leaf chain handles the rest.
	return n.kids[n.childFor(lo)].scan(lo, hi, fn)
}

func (n *btinner) min() (uint64, uint64, bool) {
	return n.kids[0].min()
}
