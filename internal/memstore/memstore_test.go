package memstore

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"

	"drtmr/internal/htm"
	"drtmr/internal/sim"
)

func newTestStore(size int) *Store {
	eng := htm.NewEngine(make([]byte, sim.AlignUp(size)), htm.Config{})
	return NewStore(eng, NewArena(eng, 0))
}

func TestRecordGeometry(t *testing.T) {
	cases := []struct {
		valueSize, lines int
	}{
		{0, 1}, {1, 1}, {40, 1}, {41, 2}, {102, 2}, {103, 3}, {164, 3}, {165, 4},
	}
	for _, c := range cases {
		if got := RecordLines(c.valueSize); got != c.lines {
			t.Errorf("RecordLines(%d) = %d, want %d", c.valueSize, got, c.lines)
		}
		if RecordBytes(c.valueSize) != c.lines*sim.CachelineSize {
			t.Errorf("RecordBytes(%d) mismatch", c.valueSize)
		}
	}
}

func TestRecordCodecRoundtrip(t *testing.T) {
	f := func(data []byte, inc, seq uint64) bool {
		if len(data) > 4096 {
			data = data[:4096]
		}
		rec := BuildRecordImage(len(data), data, inc, seq)
		if RecInc(rec) != inc || RecSeq(rec) != seq || RecLock(rec) != 0 {
			return false
		}
		if !VersionsConsistent(rec) {
			return false
		}
		return bytes.Equal(GatherValue(rec, len(data)), data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestVersionsDetectTornRecord(t *testing.T) {
	value := make([]byte, 150) // 3 cachelines
	rec := BuildRecordImage(len(value), value, 1, 4)
	if !VersionsConsistent(rec) {
		t.Fatal("fresh record should be consistent")
	}
	// Simulate a torn RDMA view: line 2 carries the next update's version.
	newRec := BuildRecordImage(len(value), value, 1, 6)
	copy(rec[2*sim.CachelineSize:], newRec[2*sim.CachelineSize:3*sim.CachelineSize])
	if VersionsConsistent(rec) {
		t.Fatal("torn record must be detected")
	}
}

func TestLockWordEncoding(t *testing.T) {
	for _, owner := range []uint32{0, 1, 5, 1 << 20} {
		w := LockWord(owner)
		if w == 0 {
			t.Fatalf("lock word for owner %d is zero (means free)", owner)
		}
		got, held := LockOwner(w)
		if !held || got != owner {
			t.Fatalf("LockOwner(LockWord(%d)) = %d,%v", owner, got, held)
		}
	}
	if _, held := LockOwner(0); held {
		t.Fatal("zero word must decode as free")
	}
}

func TestSeqParityHelpers(t *testing.T) {
	if !SeqIsCommittable(0) || !SeqIsCommittable(8) || SeqIsCommittable(3) {
		t.Fatal("parity check wrong")
	}
	if ClosestCommittable(3) != 4 || ClosestCommittable(4) != 4 || ClosestCommittable(5) != 6 {
		t.Fatal("ClosestCommittable wrong")
	}
}

func TestPropertySeqParityStateMachine(t *testing.T) {
	// Property (Table 4): starting committable, +1 (HTM update) makes a
	// record uncommittable, a further +1 (makeup after replication) makes
	// it committable again, and the value equals ClosestCommittable of
	// any point during the window.
	f := func(start uint64) bool {
		seq := start &^ 1 // committable
		inHTM := seq + 1
		if SeqIsCommittable(inHTM) {
			return false
		}
		final := inHTM + 1
		return SeqIsCommittable(final) &&
			ClosestCommittable(seq) == seq &&
			ClosestCommittable(inHTM) == final
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHashInsertLookupDelete(t *testing.T) {
	s := newTestStore(1 << 22)
	h := NewHashTable(s.eng, s.arena, 8) // tiny: forces chains
	const n = 200
	for i := uint64(0); i < n; i++ {
		if err := h.Insert(i, i*10+1); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if err := h.Insert(5, 1); err != ErrKeyExists {
		t.Fatalf("duplicate insert: %v", err)
	}
	for i := uint64(0); i < n; i++ {
		off, ok := h.Lookup(i)
		if !ok || off != i*10+1 {
			t.Fatalf("lookup %d: %d %v", i, off, ok)
		}
	}
	if _, ok := h.Lookup(n + 5); ok {
		t.Fatal("phantom key")
	}
	for i := uint64(0); i < n; i += 2 {
		off, err := h.Delete(i)
		if err != nil || off != i*10+1 {
			t.Fatalf("delete %d: %d %v", i, off, err)
		}
	}
	if _, err := h.Delete(0); err != ErrKeyNotFound {
		t.Fatalf("double delete: %v", err)
	}
	for i := uint64(0); i < n; i++ {
		_, ok := h.Lookup(i)
		if want := i%2 == 1; ok != want {
			t.Fatalf("post-delete lookup %d: %v", i, ok)
		}
	}
	// Slots freed by delete are reusable.
	for i := uint64(0); i < n; i += 2 {
		if err := h.Insert(i, i+7); err != nil {
			t.Fatalf("reinsert %d: %v", i, err)
		}
	}
}

func TestHashZeroKey(t *testing.T) {
	s := newTestStore(1 << 20)
	h := NewHashTable(s.eng, s.arena, 16)
	if err := h.Insert(0, 123); err != nil {
		t.Fatalf("key 0: %v", err)
	}
	off, ok := h.Lookup(0)
	if !ok || off != 123 {
		t.Fatalf("lookup 0: %d %v", off, ok)
	}
}

func TestHashConcurrent(t *testing.T) {
	s := newTestStore(1 << 22)
	h := NewHashTable(s.eng, s.arena, 64)
	var wg sync.WaitGroup
	const perWorker = 100
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			for i := uint64(0); i < perWorker; i++ {
				k := base*perWorker + i
				if err := h.Insert(k, k+1); err != nil {
					t.Errorf("insert %d: %v", k, err)
					return
				}
			}
		}(uint64(w))
	}
	wg.Wait()
	for k := uint64(0); k < 4*perWorker; k++ {
		off, ok := h.Lookup(k)
		if !ok || off != k+1 {
			t.Fatalf("lookup %d after concurrent insert: %d %v", k, off, ok)
		}
	}
}

func TestBucketRemoteParse(t *testing.T) {
	// A remote machine parses a fetched bucket image with the same
	// geometry helpers; verify against the local path.
	s := newTestStore(1 << 20)
	h := NewHashTable(s.eng, s.arena, 16)
	for i := uint64(0); i < 40; i++ {
		if err := h.Insert(i, 1000+i); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 40; i++ {
		off := BucketOffFor(h.Base(), h.NumBuckets(), i)
		var found bool
		var got uint64
		for off != 0 {
			img := s.eng.ReadNonTx(off, 64, nil)
			rec, next, ok := ParseBucket(img, i)
			if ok {
				got, found = rec, true
				break
			}
			off = next
		}
		if !found || got != 1000+i {
			t.Fatalf("remote-style parse of key %d failed: %d %v", i, got, found)
		}
	}
}

func TestBTreeBasics(t *testing.T) {
	bt := NewBTree()
	const n = 2000
	// Insert a permutation.
	rng := sim.NewRand(7)
	perm := make([]int, n)
	rng.Perm(perm)
	for _, k := range perm {
		bt.Put(uint64(k), uint64(k)*2)
	}
	if bt.Len() != n {
		t.Fatalf("len: %d", bt.Len())
	}
	for k := uint64(0); k < n; k++ {
		v, ok := bt.Get(k)
		if !ok || v != k*2 {
			t.Fatalf("get %d: %d %v", k, v, ok)
		}
	}
	// Overwrite.
	bt.Put(5, 999)
	if v, _ := bt.Get(5); v != 999 {
		t.Fatalf("overwrite: %d", v)
	}
	if bt.Len() != n {
		t.Fatalf("overwrite changed len: %d", bt.Len())
	}
	// Scan range.
	var got []uint64
	bt.Scan(100, 110, func(k, v uint64) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 11 || got[0] != 100 || got[10] != 110 {
		t.Fatalf("scan [100,110]: %v", got)
	}
	// Min / MinGE.
	if k, _, ok := bt.Min(); !ok || k != 0 {
		t.Fatalf("min: %d %v", k, ok)
	}
	if k, _, ok := bt.MinGE(1500); !ok || k != 1500 {
		t.Fatalf("minGE: %d %v", k, ok)
	}
	// Delete half.
	for k := uint64(0); k < n; k += 2 {
		if !bt.Delete(k) {
			t.Fatalf("delete %d", k)
		}
	}
	if bt.Delete(0) {
		t.Fatal("double delete")
	}
	for k := uint64(0); k < n; k++ {
		_, ok := bt.Get(k)
		if want := k%2 == 1; ok != want {
			t.Fatalf("post-delete get %d: %v", k, ok)
		}
	}
	if k, _, ok := bt.MinGE(100); !ok || k != 101 {
		t.Fatalf("minGE after delete: %d %v", k, ok)
	}
}

func TestBTreePropertyOrdered(t *testing.T) {
	f := func(keys []uint64) bool {
		bt := NewBTree()
		seen := make(map[uint64]bool)
		for _, k := range keys {
			bt.Put(k, k+1)
			seen[k] = true
		}
		if bt.Len() != len(seen) {
			return false
		}
		// Full scan must be sorted and complete.
		var prev uint64
		first := true
		count := 0
		bt.Scan(0, ^uint64(0), func(k, v uint64) bool {
			if !first && k <= prev {
				return false
			}
			if v != k+1 || !seen[k] {
				return false
			}
			prev, first = k, false
			count++
			return true
		})
		return count == len(seen)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTableInsertDeleteIncarnation(t *testing.T) {
	s := newTestStore(1 << 22)
	tbl := s.CreateTable(1, TableSpec{Name: "acct", ValueSize: 16, ExpectedRows: 64, Ordered: true})
	val := []byte("hello world 1234")
	off, err := tbl.Insert(42, val)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := tbl.Lookup(42); !ok || got != off {
		t.Fatalf("lookup: %d %v", got, ok)
	}
	if !bytes.Equal(tbl.ReadValueNonTx(off), val) {
		t.Fatal("value roundtrip")
	}
	img := s.eng.ReadNonTx(off, tbl.RecBytes, nil)
	inc1 := RecInc(img)
	if inc1 == 0 {
		t.Fatal("incarnation must start above 0")
	}
	if err := tbl.Delete(42); err != nil {
		t.Fatal(err)
	}
	if _, ok := tbl.Lookup(42); ok {
		t.Fatal("lookup after delete")
	}
	// Reinsert reuses the freed block with a strictly larger incarnation.
	off2, err := tbl.Insert(43, val)
	if err != nil {
		t.Fatal(err)
	}
	if off2 != off {
		t.Fatalf("free list should reuse block: %d vs %d", off2, off)
	}
	img2 := s.eng.ReadNonTx(off2, tbl.RecBytes, nil)
	if RecInc(img2) <= inc1 {
		t.Fatalf("incarnation did not advance: %d -> %d", inc1, RecInc(img2))
	}
}

func TestArenaReuse(t *testing.T) {
	s := newTestStore(1 << 16)
	a := s.arena
	o1 := a.Alloc(100)
	o2 := a.Alloc(100)
	if o1 == o2 {
		t.Fatal("distinct allocations collided")
	}
	if o1%sim.CachelineSize != 0 || o2%sim.CachelineSize != 0 {
		t.Fatal("allocations must be cacheline aligned")
	}
	a.Free(o1, 100)
	if got := a.Alloc(100); got != o1 {
		t.Fatalf("free list miss: %d want %d", got, o1)
	}
}

func TestArenaExhaustionPanics(t *testing.T) {
	s := newTestStore(1 << 12)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on exhaustion")
		}
	}()
	for i := 0; i < 1000; i++ {
		s.arena.Alloc(1024)
	}
}
