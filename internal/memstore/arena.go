// Package memstore is DrTM+R's memory store layer (§6.3): a general
// key-value interface over per-machine battery-backed memory, offered in two
// flavours — an RDMA-friendly unordered hash store used for remote-capable
// tables (from DrTM), and an ordered B+-tree store for local range scans
// (from DBX). Records carry the DrTM+R metadata layout of Fig 3.
package memstore

import (
	"fmt"
	"sync"

	"drtmr/internal/htm"
	"drtmr/internal/sim"
)

// Arena is a cacheline-granular allocator over one machine's registered
// memory region. Allocation is a bump pointer plus per-size-class free
// lists, which is all an OLTP store with fixed-size records needs.
//
// Offsets handed out are stable for the life of the machine — they are the
// RDMA addresses remote machines cache — so the arena never compacts.
type Arena struct {
	eng *htm.Engine

	mu    sync.Mutex
	next  uint64
	limit uint64
	free  map[int][]uint64 // size class (bytes) -> free offsets
}

// NewArena creates an allocator over eng's memory, starting at startOff
// (the region below is reserved by the caller for fixed infrastructure like
// heartbeat words and log rings).
func NewArena(eng *htm.Engine, startOff uint64) *Arena {
	start := uint64(sim.AlignUp(int(startOff)))
	if start == 0 {
		// Offset 0 is the null sentinel throughout the store (hash
		// chain terminators, unresolved record locations), so the
		// first cacheline is never handed out.
		start = sim.CachelineSize
	}
	return &Arena{
		eng:   eng,
		next:  start,
		limit: uint64(eng.Size()),
		free:  make(map[int][]uint64),
	}
}

// Alloc returns a cacheline-aligned offset for n bytes (rounded up to whole
// cachelines). It panics on exhaustion: the simulated NVRAM is sized by the
// experiment configuration, and running out is a setup bug, not a runtime
// condition to paper over.
func (a *Arena) Alloc(n int) uint64 {
	size := sim.AlignUp(n)
	a.mu.Lock()
	defer a.mu.Unlock()
	if list := a.free[size]; len(list) > 0 {
		off := list[len(list)-1]
		a.free[size] = list[:len(list)-1]
		return off
	}
	if a.next+uint64(size) > a.limit {
		panic(fmt.Sprintf("memstore: arena exhausted (need %d, used %d of %d)",
			size, a.next, a.limit))
	}
	off := a.next
	a.next += uint64(size)
	return off
}

// Zero clears n bytes at off non-transactionally (for freshly allocated
// blocks before they are published).
func (a *Arena) Zero(off uint64, n int) {
	mem := a.eng.Mem()
	for i := 0; i < n; i++ {
		mem[off+uint64(i)] = 0
	}
}

// Free returns a block to its size class.
func (a *Arena) Free(off uint64, n int) {
	size := sim.AlignUp(n)
	a.mu.Lock()
	a.free[size] = append(a.free[size], off)
	a.mu.Unlock()
}

// Used reports bytes handed out so far (high-water mark).
func (a *Arena) Used() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.next
}
