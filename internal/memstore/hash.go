package memstore

import (
	"encoding/binary"

	"drtmr/internal/htm"
	"drtmr/internal/sim"
)

// HashTable is the RDMA-friendly unordered store (from DrTM, §6.3). The
// whole structure lives in the machine's registered memory so that remote
// machines can traverse it with one-sided RDMA READs:
//
//   - The main bucket array is allocated contiguously at table creation, so
//     a remote machine can compute any bucket's RDMA address from the table
//     metadata alone (base + hash(key)*64).
//
//   - A bucket is exactly one cacheline — one RDMA READ fetches it
//     atomically — holding three (key, recordOffset) slots and a chain
//     pointer to an overflow bucket:
//
//     | reserved u64 | k0 u64 | o0 u64 | k1 u64 | o1 u64 | k2 u64 | o2 u64 | next u64 |
//
//   - Mutations (insert/delete) happen only on the host machine, inside an
//     HTM transaction (§4.3): strong atomicity makes them atomic against
//     concurrent local readers and remote RDMA bucket reads alike.
//
// Keys are offset by +1 internally so that 0 can mean "empty slot"; user key
// math.MaxUint64 is therefore not storable, which no workload uses.
// Hash slots store a *packed location*: the record offset in the low 40
// bits and the low 24 bits of the record's incarnation above it. A remote
// machine that resolves a key through the index can then detect — from the
// record image alone — that the binding it followed has been freed/reused
// in the window between the bucket read and the record read (§4.3's
// incarnation check, as in DrTM's hash table).
const (
	offLocBits = 40
	offLocMask = uint64(1)<<offLocBits - 1
	// IncLocMask is the incarnation part kept in a packed location.
	IncLocMask = uint64(1)<<24 - 1
)

// PackLoc packs (record offset, incarnation) into one slot word.
func PackLoc(off, inc uint64) uint64 {
	return off&offLocMask | (inc&IncLocMask)<<offLocBits
}

// SplitLoc unpacks a slot word into (offset, low 24 incarnation bits).
func SplitLoc(packed uint64) (off, inc24 uint64) {
	return packed & offLocMask, packed >> offLocBits & IncLocMask
}

const (
	// BucketSlots is the number of key/offset pairs per bucket.
	BucketSlots = 3
	bucketBytes = sim.CachelineSize

	bucketSlot0Off = 8 // after the reserved header word
	bucketNextOff  = 56
)

// HashTable is the host-side handle. Remote machines use only the exported
// geometry (Base, NumBuckets) plus the Parse* helpers on fetched images.
type HashTable struct {
	eng   *htm.Engine
	arena *Arena

	base       uint64
	numBuckets uint64
}

// NewHashTable allocates the main bucket array. numBuckets is rounded up to
// a power of two.
func NewHashTable(eng *htm.Engine, arena *Arena, numBuckets int) *HashTable {
	n := uint64(1)
	for n < uint64(numBuckets) {
		n <<= 1
	}
	base := arena.Alloc(int(n) * bucketBytes)
	arena.Zero(base, int(n)*bucketBytes)
	return &HashTable{eng: eng, arena: arena, base: base, numBuckets: n}
}

// Base returns the RDMA offset of the main bucket array.
func (h *HashTable) Base() uint64 { return h.base }

// NumBuckets returns the (power of two) main bucket count.
func (h *HashTable) NumBuckets() uint64 { return h.numBuckets }

// BucketOff computes the offset of key's main bucket — identical math on
// every machine, which is what lets a remote machine address the bucket
// without any communication.
func (h *HashTable) BucketOff(key uint64) uint64 {
	return BucketOffFor(h.base, h.numBuckets, key)
}

// BucketOffFor is BucketOff for remote callers that only have the geometry.
func BucketOffFor(base, numBuckets, key uint64) uint64 {
	return base + (hashKey(key+1)&(numBuckets-1))*bucketBytes
}

// hashKey is a 64-bit finalizer (splitmix64) — cheap and well distributed.
func hashKey(k uint64) uint64 {
	k ^= k >> 30
	k *= 0xbf58476d1ce4e5b9
	k ^= k >> 27
	k *= 0x94d049bb133111eb
	k ^= k >> 31
	return k
}

// ParseBucket scans a fetched 64-byte bucket image for key, returning the
// record offset if present and the overflow chain offset (0 = end).
func ParseBucket(img []byte, key uint64) (recOff uint64, next uint64, found bool) {
	ik := key + 1
	for s := 0; s < BucketSlots; s++ {
		so := bucketSlot0Off + s*16
		if binary.LittleEndian.Uint64(img[so:so+8]) == ik {
			return binary.LittleEndian.Uint64(img[so+8 : so+16]), 0, true
		}
	}
	return 0, binary.LittleEndian.Uint64(img[bucketNextOff : bucketNextOff+8]), false
}

// Lookup resolves key to its record offset on the local machine. The chain
// walk reads buckets non-transactionally (each bucket is one line, so each
// read is atomic, same as the remote RDMA path).
func (h *HashTable) Lookup(key uint64) (recOff uint64, ok bool) {
	var img [bucketBytes]byte
	off := h.BucketOff(key)
	for off != 0 {
		h.eng.ReadNonTx(off, bucketBytes, img[:])
		recOff, next, found := ParseBucket(img[:], key)
		if found {
			return recOff, true
		}
		off = next
	}
	return 0, false
}

// retryHTM runs fn in an HTM transaction with bounded retries, falling back
// to a slow path never — hash mutations touch at most two lines and always
// succeed eventually. Conflicts retry with scheduler yields.
func (h *HashTable) retryHTM(fn func(tx *htm.Txn) error) error {
	for {
		tx := h.eng.Begin()
		if err := fn(tx); err != nil {
			if _, ok := err.(*htm.AbortError); ok {
				sim.Spin(0)
				continue
			}
			tx.Abort(0xFF)
			return err
		}
		if err := tx.Commit(); err == nil {
			return nil
		}
		sim.Spin(0)
	}
}

// Insert binds key to recOff. Returns ErrKeyExists if the key is present.
// Structural growth (appending an overflow bucket) allocates from the arena
// inside the transaction; the allocation is leaked if the transaction
// retries, which is harmless (arena blocks are cheap) and keeps the
// fast path simple.
func (h *HashTable) Insert(key uint64, recOff uint64) error {
	ik := key + 1
	return h.retryHTM(func(tx *htm.Txn) error {
		off := h.BucketOff(key)
		for {
			img, err := tx.Read(off, bucketBytes, nil)
			if err != nil {
				return err
			}
			// Duplicate check + first free slot in this bucket.
			freeSlot := -1
			for s := 0; s < BucketSlots; s++ {
				so := bucketSlot0Off + s*16
				k := binary.LittleEndian.Uint64(img[so : so+8])
				if k == ik {
					return ErrKeyExists
				}
				if k == 0 && freeSlot < 0 {
					freeSlot = s
				}
			}
			next := binary.LittleEndian.Uint64(img[bucketNextOff : bucketNextOff+8])
			if freeSlot >= 0 && next == 0 {
				// Safe to use a free slot only in the chain's last
				// bucket... actually the key could exist further
				// down the chain only if next != 0, which we just
				// excluded, so claim the slot.
				return putSlot(tx, off, freeSlot, ik, recOff)
			}
			if next != 0 {
				// Remember a free slot? Simpler: walk on; insert
				// prefers chain tail after full duplicate check.
				if freeSlot >= 0 {
					// Check rest of chain for duplicates first.
					dup, err := h.chainHas(tx, next, ik)
					if err != nil {
						return err
					}
					if dup {
						return ErrKeyExists
					}
					return putSlot(tx, off, freeSlot, ik, recOff)
				}
				off = next
				continue
			}
			// Chain tail, bucket full: append an overflow bucket.
			nb := h.arena.Alloc(bucketBytes)
			h.arena.Zero(nb, bucketBytes)
			if err := putSlot(tx, nb, 0, ik, recOff); err != nil {
				return err
			}
			var nxt [8]byte
			binary.LittleEndian.PutUint64(nxt[:], nb)
			return tx.Write(off+bucketNextOff, nxt[:])
		}
	})
}

func (h *HashTable) chainHas(tx *htm.Txn, off uint64, ik uint64) (bool, error) {
	for off != 0 {
		img, err := tx.Read(off, bucketBytes, nil)
		if err != nil {
			return false, err
		}
		for s := 0; s < BucketSlots; s++ {
			so := bucketSlot0Off + s*16
			if binary.LittleEndian.Uint64(img[so:so+8]) == ik {
				return true, nil
			}
		}
		off = binary.LittleEndian.Uint64(img[bucketNextOff : bucketNextOff+8])
	}
	return false, nil
}

func putSlot(tx *htm.Txn, bucketOff uint64, slot int, ik, recOff uint64) error {
	var kv [16]byte
	binary.LittleEndian.PutUint64(kv[:8], ik)
	binary.LittleEndian.PutUint64(kv[8:], recOff)
	return tx.Write(bucketOff+uint64(bucketSlot0Off+slot*16), kv[:])
}

// Delete unbinds key, returning the record offset it mapped to.
func (h *HashTable) Delete(key uint64) (recOff uint64, err error) {
	ik := key + 1
	err = h.retryHTM(func(tx *htm.Txn) error {
		off := h.BucketOff(key)
		for off != 0 {
			img, rerr := tx.Read(off, bucketBytes, nil)
			if rerr != nil {
				return rerr
			}
			for s := 0; s < BucketSlots; s++ {
				so := bucketSlot0Off + s*16
				if binary.LittleEndian.Uint64(img[so:so+8]) == ik {
					recOff = binary.LittleEndian.Uint64(img[so+8 : so+16])
					var zero [16]byte
					return tx.Write(off+uint64(so), zero[:])
				}
			}
			off = binary.LittleEndian.Uint64(img[bucketNextOff : bucketNextOff+8])
		}
		return ErrKeyNotFound
	})
	return recOff, err
}
