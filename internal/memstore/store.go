package memstore

import (
	"errors"
	"fmt"
	"sync"

	"drtmr/internal/htm"
)

// Errors returned by the store layer.
var (
	ErrKeyExists   = errors.New("memstore: key already exists")
	ErrKeyNotFound = errors.New("memstore: key not found")
)

// TableID names a database table. All machines create the same tables with
// the same specs in the same order, which makes table geometry (bucket array
// base, record size) identical cluster-wide — the property that lets a
// machine compute RDMA addresses into any peer's store.
type TableID uint8

// TableSpec declares a table's shape.
type TableSpec struct {
	Name string
	// ValueSize is the fixed user-data size of every record.
	ValueSize int
	// ExpectedRows sizes the hash bucket array (~2 slots headroom/row).
	ExpectedRows int
	// Ordered additionally maintains a local B+-tree index for scans.
	Ordered bool
}

// Table is one typed record collection.
type Table struct {
	ID   TableID
	Spec TableSpec

	// RecBytes and RecLines are the record geometry for Spec.ValueSize.
	RecBytes int
	RecLines int

	store   *Store
	hash    *HashTable
	ordered *BTree // nil unless Spec.Ordered
}

// Store is one machine's memory store: the key-value layer under the
// transaction layer (Fig 1).
type Store struct {
	eng   *htm.Engine
	arena *Arena

	mu     sync.RWMutex
	tables map[TableID]*Table
}

// NewStore creates a store over the machine's HTM engine, allocating from
// arena.
func NewStore(eng *htm.Engine, arena *Arena) *Store {
	return &Store{eng: eng, arena: arena, tables: make(map[TableID]*Table)}
}

// Engine returns the machine's HTM engine (the transaction layer needs it
// for protocol operations on record offsets).
func (s *Store) Engine() *htm.Engine { return s.eng }

// Arena returns the machine's allocator.
func (s *Store) Arena() *Arena { return s.arena }

// CreateTable registers a table. Panics on duplicate IDs — table creation
// is static setup code.
func (s *Store) CreateTable(id TableID, spec TableSpec) *Table {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.tables[id]; dup {
		panic(fmt.Sprintf("memstore: duplicate table id %d (%s)", id, spec.Name))
	}
	buckets := spec.ExpectedRows/BucketSlots + 1
	if buckets < 16 {
		buckets = 16
	}
	t := &Table{
		ID:       id,
		Spec:     spec,
		RecBytes: RecordBytes(spec.ValueSize),
		RecLines: RecordLines(spec.ValueSize),
		store:    s,
		hash:     NewHashTable(s.eng, s.arena, buckets),
	}
	if spec.Ordered {
		t.ordered = NewBTree()
	}
	s.tables[id] = t
	return t
}

// Table returns a registered table.
func (s *Store) Table(id TableID) *Table {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tables[id]
}

// Hash exposes the table's hash index geometry for remote addressing.
func (t *Table) Hash() *HashTable { return t.hash }

// Ordered returns the local ordered index (nil for unordered tables).
func (t *Table) Ordered() *BTree { return t.ordered }

// Lookup resolves key to its record offset on this machine.
func (t *Table) Lookup(key uint64) (off uint64, ok bool) {
	packed, ok := t.hash.Lookup(key)
	if !ok {
		return 0, false
	}
	off, _ = SplitLoc(packed)
	return off, true
}

// LookupLoc resolves key to its packed (offset, incarnation) location, the
// form remote machines read out of bucket images.
func (t *Table) LookupLoc(key uint64) (packed uint64, ok bool) {
	return t.hash.Lookup(key)
}

// Insert allocates and initializes a record for key with the given value and
// publishes it in the indexes. The record starts unlocked, committable
// (even seqnum 0) and with its incarnation bumped past whatever previously
// lived in the block, so any stale cached (offset, incarnation) pair held by
// a remote machine is detectably dead (§4.3).
func (t *Table) Insert(key uint64, value []byte) (uint64, error) {
	return t.InsertWithSeq(key, value, 0)
}

// InsertWithSeq inserts a record whose initial sequence number is seq. The
// transaction layer inserts with seq=1 (odd: committed-but-unreplicated)
// when optimistic replication is on, and bumps it to 2 once the insert's
// log entries are durable (§5.1 applied to inserts).
func (t *Table) InsertWithSeq(key uint64, value []byte, seq uint64) (uint64, error) {
	if len(value) > t.Spec.ValueSize {
		return 0, fmt.Errorf("memstore: value size %d exceeds table %s's %d",
			len(value), t.Spec.Name, t.Spec.ValueSize)
	}
	off := t.store.arena.Alloc(t.RecBytes)
	mem := t.store.eng.Mem()
	prevInc := RecInc(mem[off : off+uint64(headerBytes)])
	img := BuildRecordImage(t.Spec.ValueSize, value, prevInc+1, seq)
	// The record is unreachable until the hash insert publishes it, so a
	// non-transactional bulk write is safe here.
	t.store.eng.WriteNonTx(off, img)
	if err := t.hash.Insert(key, PackLoc(off, prevInc+1)); err != nil {
		t.store.arena.Free(off, t.RecBytes)
		return 0, err
	}
	if t.ordered != nil {
		t.ordered.Put(key, off)
	}
	return off, nil
}

// Delete unbinds key, bumps the record's incarnation (invalidating cached
// locations and failing in-flight validations against it) and frees the
// block.
func (t *Table) Delete(key uint64) error {
	packed, err := t.hash.Delete(key)
	if err != nil {
		return err
	}
	off, _ := SplitLoc(packed)
	if t.ordered != nil {
		t.ordered.Delete(key)
	}
	// Bump incarnation under strong atomicity so concurrent transactions
	// that read the record abort/fail validation.
	t.store.eng.FAA64NonTx(off+IncOff, 1)
	t.store.arena.Free(off, t.RecBytes)
	return nil
}

// ReadValueNonTx gathers the record's user value bytes without any protocol
// protection — for tests, loading verification and recovery only.
func (t *Table) ReadValueNonTx(off uint64) []byte {
	img := t.store.eng.ReadNonTx(off, t.RecBytes, nil)
	return GatherValue(img, t.Spec.ValueSize)
}
