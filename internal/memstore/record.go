package memstore

import (
	"encoding/binary"

	"drtmr/internal/sim"
)

// Record layout (paper Fig 3). Every record starts at a fresh cacheline to
// avoid HTM false sharing (§4.2):
//
//	cacheline 0 : | lock u64 | incarnation u64 | seqnum u64 | 40 B data |
//	cacheline k : | version u16                             | 62 B data |
//
// The per-line version mirrors the low 16 bits of the sequence number and
// lets a one-sided RDMA READ detect a torn multi-line view (§4.3): RDMA
// WRITEs are atomic only within a cacheline, so a reader racing a writer can
// see some new lines and some old ones; mismatched versions expose that.
const (
	// Metadata offsets within a record.
	LockOff = 0
	IncOff  = 8
	SeqOff  = 16

	headerBytes    = 24
	line0Data      = sim.CachelineSize - headerBytes // 40
	versionBytes   = 2
	lineKData      = sim.CachelineSize - versionBytes // 62
	seqVersionMask = 0xFFFF
)

// RecordLines returns the number of cachelines a record with valueSize bytes
// of user data occupies.
func RecordLines(valueSize int) int {
	if valueSize <= line0Data {
		return 1
	}
	rest := valueSize - line0Data
	return 1 + (rest+lineKData-1)/lineKData
}

// RecordBytes returns the allocated size of a record.
func RecordBytes(valueSize int) int {
	return RecordLines(valueSize) * sim.CachelineSize
}

// Lock word encoding (§5.2): zero means free; a held lock encodes the owner
// machine so that survivors can passively release locks left dangling by a
// failed machine ("the worker thread will check whether the owner of the
// locked record is the member of the current configuration").
const lockHeldBit = 1

// LockWord builds the held-lock value for a machine.
func LockWord(owner uint32) uint64 {
	return uint64(owner)<<1 | lockHeldBit
}

// LockOwner decodes the owner machine from a held lock word.
func LockOwner(w uint64) (owner uint32, held bool) {
	return uint32(w >> 1), w&lockHeldBit != 0
}

// SeqIsCommittable reports whether a sequence number denotes a committable
// (fully replicated) record under the optimistic replication scheme (§5.1):
// even = committable, odd = committed locally but not yet replicated.
func SeqIsCommittable(seq uint64) bool { return seq&1 == 0 }

// ClosestCommittable returns the committable sequence number nearest above
// the given one: the value a record settles at once its in-flight update is
// fully replicated. Used as the read-validation target (Table 4):
// (SN_old + 1) &^ 1.
func ClosestCommittable(seq uint64) uint64 { return (seq + 1) &^ 1 }

// ScatterValue writes valueSize bytes of user data into a record image of
// recBytes length, skipping the header and per-line version slots.
// rec is the raw record bytes (starting at the record's first cacheline).
func ScatterValue(rec []byte, value []byte) {
	pos := headerBytes
	remaining := value
	n := copy(rec[pos:sim.CachelineSize], remaining)
	remaining = remaining[n:]
	line := 1
	for len(remaining) > 0 {
		base := line * sim.CachelineSize
		n = copy(rec[base+versionBytes:base+sim.CachelineSize], remaining)
		remaining = remaining[n:]
		line++
	}
}

// GatherValue extracts valueSize bytes of user data from a record image.
func GatherValue(rec []byte, valueSize int) []byte {
	out := make([]byte, 0, valueSize)
	take := valueSize
	n := line0Data
	if n > take {
		n = take
	}
	out = append(out, rec[headerBytes:headerBytes+n]...)
	take -= n
	line := 1
	for take > 0 {
		base := line * sim.CachelineSize
		n = lineKData
		if n > take {
			n = take
		}
		out = append(out, rec[base+versionBytes:base+versionBytes+n]...)
		take -= n
		line++
	}
	return out
}

// StampVersions writes seq's low 16 bits into every per-line version slot of
// a record image (lines 1..k; line 0 carries the full seqnum itself).
func StampVersions(rec []byte, seq uint64) {
	v := uint16(seq & seqVersionMask)
	for base := sim.CachelineSize; base < len(rec); base += sim.CachelineSize {
		binary.LittleEndian.PutUint16(rec[base:base+versionBytes], v)
	}
}

// VersionsConsistent checks that every per-line version of a record image
// matches the low 16 bits of the seqnum in its header — the §4.3 remote-read
// consistency check.
func VersionsConsistent(rec []byte) bool {
	seq := binary.LittleEndian.Uint64(rec[SeqOff : SeqOff+8])
	want := uint16(seq & seqVersionMask)
	for base := sim.CachelineSize; base < len(rec); base += sim.CachelineSize {
		if binary.LittleEndian.Uint16(rec[base:base+versionBytes]) != want {
			return false
		}
	}
	return true
}

// RecLock, RecInc, RecSeq decode header fields from a record image.
func RecLock(rec []byte) uint64 { return binary.LittleEndian.Uint64(rec[LockOff : LockOff+8]) }

// RecInc returns the incarnation field of a record image.
func RecInc(rec []byte) uint64 { return binary.LittleEndian.Uint64(rec[IncOff : IncOff+8]) }

// RecSeq returns the sequence number field of a record image.
func RecSeq(rec []byte) uint64 { return binary.LittleEndian.Uint64(rec[SeqOff : SeqOff+8]) }

// PutRecSeq stores a sequence number into a record image.
func PutRecSeq(rec []byte, seq uint64) {
	binary.LittleEndian.PutUint64(rec[SeqOff:SeqOff+8], seq)
}

// PutRecInc stores an incarnation into a record image.
func PutRecInc(rec []byte, inc uint64) {
	binary.LittleEndian.PutUint64(rec[IncOff:IncOff+8], inc)
}

// PutRecLock stores a lock word into a record image.
func PutRecLock(rec []byte, w uint64) {
	binary.LittleEndian.PutUint64(rec[LockOff:LockOff+8], w)
}

// BuildRecordImage assembles a full record image: header (lock=0, given
// incarnation and seq) plus scattered value and stamped versions. Used when
// constructing the payload of an RDMA WRITE-back (C.5) and by loading.
func BuildRecordImage(valueSize int, value []byte, inc, seq uint64) []byte {
	rec := make([]byte, RecordBytes(valueSize))
	PutRecInc(rec, inc)
	PutRecSeq(rec, seq)
	ScatterValue(rec, value)
	StampVersions(rec, seq)
	return rec
}
