package sim

import (
	"sync"
	"sync/atomic"
	"time"
)

// Virtual time.
//
// The simulator measures throughput in *virtual* time rather than wall-clock
// time: each simulated worker thread owns a Clock that is advanced by the
// modelled cost of every operation it performs (a local cache access, an HTM
// commit, an RDMA verb, a lock backoff), and shared hardware (a NIC) is a
// Resource — a single-server queue in virtual time. Throughput is committed
// transactions divided by elapsed virtual time.
//
// This is what makes the reproduction meaningful on an arbitrary host: the
// paper's 6 machines x 16 worker threads are goroutines multiplexed onto
// however many cores this process has, so wall-clock throughput would only
// measure the host, while virtual time measures the modelled cluster.
// Conflicts, aborts, lock waits and protocol interleavings still come from
// real concurrent execution of the protocol code; only *duration* is
// modelled. The recovery experiment (Fig 20) runs on wall-clock time
// instead, because lease expiry and failure detection are inherently
// real-time mechanisms.

// Clock is one worker thread's virtual clock. It is owned by a single
// goroutine; reads from other goroutines (for progress reports) go through
// Now, which is safe because the field is updated atomically.
type Clock struct {
	ns atomic.Int64
}

// Advance moves the clock forward by d.
//
//drtmr:hotpath
func (c *Clock) Advance(d time.Duration) {
	if d > 0 {
		c.ns.Add(int64(d))
	}
}

// AdvanceTo moves the clock forward to t (no-op if already past).
//
//drtmr:hotpath
func (c *Clock) AdvanceTo(t int64) {
	for {
		cur := c.ns.Load()
		if cur >= t {
			return
		}
		if c.ns.CompareAndSwap(cur, t) {
			return
		}
	}
}

// Now returns the current virtual time in nanoseconds.
//
//drtmr:hotpath
func (c *Clock) Now() int64 { return c.ns.Load() }

// WaitUntil advances the clock to t and reports how far it actually moved:
// the portion of a fabric round-trip that was NOT hidden behind other work
// this worker performed while the round-trip was in flight. This is the
// virtual-time overlap rule for asynchronous verbs: a completion waited on
// by a worker whose clock has already passed t costs nothing (the latency
// was fully overlapped and is charged at most once), while shared-resource
// queueing (Resource.Use) still accumulates per verb, so overlap can hide
// latency but can never compress wire bytes.
//
//drtmr:hotpath
func (c *Clock) WaitUntil(t int64) (stalled int64) {
	now := c.ns.Load()
	if t <= now {
		return 0
	}
	c.AdvanceTo(t)
	return t - now
}

// Reset zeroes the clock.
func (c *Clock) Reset() { c.ns.Store(0) }

// Resource is a shared hardware resource (a NIC's wire) modelled as a
// single-server FIFO queue in virtual time. Use reserves dur of service
// starting no earlier than the caller's current virtual time; when demand
// exceeds capacity the returned completion times run ahead of the callers'
// clocks, which stalls them — in virtual time — exactly like a saturated
// NIC.
//
// The queue is tracked as a BACKLOG (outstanding service time) drained at
// line rate as requester clocks advance, not as an absolute busy-until
// stamp. Worker clocks are not mutually synchronized, so an absolute stamp
// written by a fast-clock requester sits in every slower requester's future
// and Use would charge them the full clock skew as phantom queueing — a
// multi-millisecond latency-tail artifact no real NIC exhibits. With a
// backlog the two formulations are algebraically identical for any single
// monotone clock (backlog == max(0, busyUntil-now)), but queueing is always
// measured in the requester's own clock frame: durations transfer between
// clock domains; stamps do not.
type Resource struct {
	mu      sync.Mutex
	backlog int64 // outstanding service time still queued, in ns
	lastNow int64 // highest requester clock observed (drain frontier)
}

// Use reserves dur of service time for a caller whose clock reads now.
// Returns the virtual completion time; the caller should AdvanceTo it.
//
//drtmr:hotpath
func (r *Resource) Use(now int64, dur time.Duration) int64 {
	if dur <= 0 {
		return now
	}
	r.mu.Lock()
	if now > r.lastNow {
		// The server worked off backlog at line rate while the frontier
		// advanced from lastNow to now.
		if drained := now - r.lastNow; drained < r.backlog {
			r.backlog -= drained
		} else {
			r.backlog = 0
		}
		r.lastNow = now
	}
	end := now + r.backlog + int64(dur)
	r.backlog += int64(dur)
	r.mu.Unlock()
	return end
}

// BusyUntil reports the resource's current horizon (for utilization
// reporting): the drain frontier plus the work still queued behind it.
func (r *Resource) BusyUntil() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastNow + r.backlog
}
