// Package sim provides the low-level simulation primitives shared by the
// DrTM+R hardware substitutes: cacheline geometry, calibrated busy-wait
// latency injection, token-bucket bandwidth limiting for the simulated NIC,
// and deterministic seeded randomness for workloads and failure injection.
//
// The rest of the repository treats this package as "the hardware": the HTM
// engine and the RDMA verb layer both express their timing and granularity
// in terms of sim constants so that experiments can tune the simulated
// machine in one place.
package sim

import (
	"runtime"
	"sync/atomic"
	"time"
)

// CachelineSize is the conflict-detection and RDMA-atomicity granularity,
// matching the 64-byte cachelines of the paper's Xeon E5-2650 v3.
const CachelineSize = 64

// CachelineShift is log2(CachelineSize).
const CachelineShift = 6

// LineOf returns the cacheline index containing byte offset off.
func LineOf(off uintptr) uint64 { return uint64(off) >> CachelineShift }

// LinesSpanned returns how many cachelines the byte range [off, off+n)
// touches. n == 0 spans zero lines.
func LinesSpanned(off, n uintptr) int {
	if n == 0 {
		return 0
	}
	first := LineOf(off)
	last := LineOf(off + n - 1)
	return int(last-first) + 1
}

// AlignUp rounds n up to the next multiple of CachelineSize.
func AlignUp(n int) int {
	return (n + CachelineSize - 1) &^ (CachelineSize - 1)
}

// Latency models one injected hardware delay (an RDMA verb, a lock backoff).
// Durations are wall-clock; the default profile is scaled down from real
// InfiniBand latencies so that benchmarks finish quickly while preserving
// the local-vs-remote cost ratio the paper's results depend on.
type Latency time.Duration

// Spin waits for roughly d of wall-clock time, yielding to the scheduler on
// every iteration. Most latency modelling uses virtual time (see vtime.go);
// Spin remains for the wall-clock paths — lease heartbeats, recovery, and
// short waits for another goroutine to finish a cleanup — where yielding is
// the whole point on an oversubscribed host.
func Spin(d time.Duration) {
	if d <= 0 {
		runtime.Gosched()
		return
	}
	if d >= 100*time.Microsecond {
		time.Sleep(d) //drtmr:allow virtualtime Spin is the wall-clock delay primitive itself; callers pass virtual durations
		return
	}
	deadline := nanotime() + int64(d)
	for nanotime() < deadline {
		runtime.Gosched()
	}
}

//drtmr:allow virtualtime nanotime backs the spin-wait deadline, the one legitimate wall-clock read in sim
func nanotime() int64 { return time.Now().UnixNano() }

// RateLimiter is a token-bucket byte-rate limiter used to model NIC
// bandwidth. It is the mechanism behind the paper's observation that 3-way
// replication saturates the single 56Gbps NIC (Figs 11, 15, 16): every byte
// an RDMA verb moves is charged against the source NIC's bucket, and callers
// block (spin) when the bucket is empty.
//
// The zero value is an unlimited limiter.
type RateLimiter struct {
	bytesPerSec int64
	burst       int64
	// state packs the bucket: tokens and last refill time, guarded by CAS
	// so the hot path is lock-free.
	tokens   atomic.Int64
	lastNano atomic.Int64
}

// NewRateLimiter returns a limiter that admits bytesPerSec bytes per second
// with the given burst (bucket capacity). bytesPerSec <= 0 means unlimited.
func NewRateLimiter(bytesPerSec, burst int64) *RateLimiter {
	rl := &RateLimiter{bytesPerSec: bytesPerSec, burst: burst}
	if burst <= 0 {
		rl.burst = bytesPerSec / 100 // 10ms worth by default
		if rl.burst < 4096 {
			rl.burst = 4096
		}
	}
	rl.tokens.Store(rl.burst)
	rl.lastNano.Store(nanotime())
	return rl
}

// Unlimited reports whether this limiter never blocks.
func (rl *RateLimiter) Unlimited() bool { return rl == nil || rl.bytesPerSec <= 0 }

// Take charges n bytes against the bucket, blocking until capacity is
// available. Requests larger than the burst are consumed in burst-sized
// chunks (they can never fit in the bucket whole). Safe for concurrent use.
func (rl *RateLimiter) Take(n int64) {
	if rl.Unlimited() || n <= 0 {
		return
	}
	for n > rl.burst {
		rl.Take(rl.burst)
		n -= rl.burst
	}
	for {
		rl.refill()
		cur := rl.tokens.Load()
		if cur >= n {
			if rl.tokens.CompareAndSwap(cur, cur-n) {
				return
			}
			continue
		}
		// Not enough tokens: wait approximately long enough for the
		// deficit to refill, then retry.
		deficit := n - cur
		wait := time.Duration(deficit * int64(time.Second) / rl.bytesPerSec)
		if wait < 100*time.Nanosecond {
			wait = 100 * time.Nanosecond
		}
		if wait > 5*time.Millisecond {
			wait = 5 * time.Millisecond
		}
		Spin(wait)
	}
}

func (rl *RateLimiter) refill() {
	now := nanotime()
	last := rl.lastNano.Load()
	elapsed := now - last
	if elapsed <= 0 {
		return
	}
	add := elapsed * rl.bytesPerSec / int64(time.Second)
	if add == 0 {
		return
	}
	if !rl.lastNano.CompareAndSwap(last, now) {
		return // someone else refilled
	}
	for {
		cur := rl.tokens.Load()
		next := cur + add
		if next > rl.burst {
			next = rl.burst
		}
		if rl.tokens.CompareAndSwap(cur, next) {
			return
		}
	}
}
