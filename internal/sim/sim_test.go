package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestCachelineHelpers(t *testing.T) {
	if LineOf(0) != 0 || LineOf(63) != 0 || LineOf(64) != 1 {
		t.Fatal("LineOf")
	}
	if LinesSpanned(0, 0) != 0 {
		t.Fatal("zero-length span")
	}
	if LinesSpanned(0, 64) != 1 || LinesSpanned(63, 2) != 2 || LinesSpanned(0, 65) != 2 {
		t.Fatal("LinesSpanned")
	}
	if AlignUp(0) != 0 || AlignUp(1) != 64 || AlignUp(64) != 64 || AlignUp(65) != 128 {
		t.Fatal("AlignUp")
	}
}

func TestClock(t *testing.T) {
	var c Clock
	c.Advance(100 * time.Nanosecond)
	c.Advance(-5) // negative ignored
	if c.Now() != 100 {
		t.Fatalf("Now: %d", c.Now())
	}
	c.AdvanceTo(50) // backwards ignored
	if c.Now() != 100 {
		t.Fatalf("AdvanceTo backwards: %d", c.Now())
	}
	c.AdvanceTo(250)
	if c.Now() != 250 {
		t.Fatalf("AdvanceTo: %d", c.Now())
	}
	c.Reset()
	if c.Now() != 0 {
		t.Fatal("Reset")
	}
}

func TestResourceQueueing(t *testing.T) {
	var r Resource
	// Two back-to-back uses from the same instant serialize.
	end1 := r.Use(0, 100)
	end2 := r.Use(0, 100)
	if end1 != 100 || end2 != 200 {
		t.Fatalf("serialize: %d %d", end1, end2)
	}
	// A late arrival starts at its own time if the server is idle.
	end3 := r.Use(1000, 50)
	if end3 != 1050 {
		t.Fatalf("idle start: %d", end3)
	}
	if r.Use(0, 0) != 0 {
		t.Fatal("zero duration")
	}
}

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give the same stream")
		}
	}
	if NewRand(0).Uint64() == 0 {
		t.Fatal("zero seed must be remapped")
	}
}

func TestRandRanges(t *testing.T) {
	r := NewRand(3)
	f := func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if v := r.UniformInt(5, 10); v < 5 || v > 10 {
			t.Fatalf("UniformInt out of range: %d", v)
		}
		if v := r.NURand(255, 1, 100, 33); v < 1 || v > 100 {
			t.Fatalf("NURand out of range: %d", v)
		}
		if v := r.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %f", v)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRand(11)
	const n = 1000
	counts := make([]int, n)
	for i := 0; i < 50000; i++ {
		v := r.Zipf(n, 0.8)
		if v < 0 || v >= n {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	// The first decile must receive well over its uniform share.
	first := 0
	for i := 0; i < n/10; i++ {
		first += counts[i]
	}
	if float64(first)/50000 < 0.3 {
		t.Fatalf("Zipf not skewed: first decile %.2f", float64(first)/50000)
	}
}

func TestPerm(t *testing.T) {
	r := NewRand(5)
	out := make([]int, 20)
	r.Perm(out)
	seen := map[int]bool{}
	for _, v := range out {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("not a permutation: %v", out)
		}
		seen[v] = true
	}
}

func TestLastName(t *testing.T) {
	if LastName(0) != "BARBARBAR" {
		t.Fatalf("LastName(0) = %q", LastName(0))
	}
	if LastName(371) != "PRICALLYOUGHT" {
		t.Fatalf("LastName(371) = %q", LastName(371))
	}
}

func TestRateLimiter(t *testing.T) {
	rl := NewRateLimiter(1<<20, 4096)
	if rl.Unlimited() {
		t.Fatal("limited limiter reports unlimited")
	}
	var nilRL *RateLimiter
	if !nilRL.Unlimited() {
		t.Fatal("nil limiter must be unlimited")
	}
	start := time.Now()
	rl.Take(4096)  // burst
	rl.Take(16384) // must wait ~16ms at 1MiB/s
	if time.Since(start) < 5*time.Millisecond {
		t.Fatal("rate limiter did not block")
	}
}
