package sim

import "math"

// Rand is a small, fast, seedable PRNG (xorshift64*) used by workload
// generators and failure injection. It is deliberately not math/rand so that
// each worker thread owns an independent generator with zero locking, and so
// that experiment runs are reproducible from a single seed.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed (0 is remapped).
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a uniform value in [0, n). n must be > 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative pseudo-random int64.
func (r *Rand) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// UniformInt returns a uniform value in [lo, hi] inclusive, per the TPC-C
// random(x, y) definition.
func (r *Rand) UniformInt(lo, hi int) int {
	if hi < lo {
		lo, hi = hi, lo
	}
	return lo + r.Intn(hi-lo+1)
}

// NURand implements the TPC-C non-uniform random distribution
// NURand(A, x, y) = (((random(0,A) | random(x,y)) + C) % (y-x+1)) + x.
func (r *Rand) NURand(a, x, y, c int) int {
	return (((r.UniformInt(0, a) | r.UniformInt(x, y)) + c) % (y - x + 1)) + x
}

// Zipf draws from a Zipf-like distribution over [0, n): rank = n*u^(1/(1-theta)).
// theta in (0,1) skews toward low ranks; SmallBank uses this for its hot
// accounts ("a few accounts receive most of the requests").
func (r *Rand) Zipf(n int, theta float64) int {
	if n <= 1 {
		return 0
	}
	if theta <= 0 {
		return r.Intn(n)
	}
	if theta >= 1 {
		theta = 0.999
	}
	idx := int(float64(n) * math.Pow(r.Float64(), 1.0/(1.0-theta)))
	if idx >= n {
		idx = n - 1
	}
	return idx
}

// Perm fills out with a pseudo-random permutation of [0, len(out)).
func (r *Rand) Perm(out []int) {
	for i := range out {
		out[i] = i
	}
	for i := len(out) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
}

// LastNameSyllables are the TPC-C customer last-name syllables.
var LastNameSyllables = [10]string{
	"BAR", "OUGHT", "ABLE", "PRI", "PRES",
	"ESE", "ANTI", "CALLY", "ATION", "EING",
}

// LastName composes the TPC-C customer last name for a number in [0, 999].
func LastName(num int) string {
	return LastNameSyllables[(num/100)%10] +
		LastNameSyllables[(num/10)%10] +
		LastNameSyllables[num%10]
}
