package rdma

import (
	"time"

	"drtmr/internal/obs"
	"drtmr/internal/sim"
)

// Doorbell batching (§7 of the "Comprehensive Framework of RDMA-enabled
// Concurrency Control Protocols" survey; FaRM does the same for its lock and
// validate phases). Real NICs let a sender post many work requests to one or
// more QPs and ring the doorbell once: the verbs issue back-to-back, their
// round-trips overlap, and the sender blocks only until the LAST completion.
// A K-verb batch therefore costs roughly one base latency plus the per-NIC
// serialization of K wire messages — not K full round-trips.
//
// Batch models exactly that for the simulated fabric: verbs are posted
// without advancing the worker's virtual clock, and Execute charges
//
//	max(per-target NIC queueing) + one base latency (the slowest verb kind)
//
// while still routing every verb through the target machine's HTM engine
// individually, in issue order — per-cacheline atomicity, HCA-level CAS
// serialization and abort-on-conflict against running HTM transactions are
// identical to the synchronous QP verbs. Only the latency accounting and the
// overlap of round-trips change.
//
// The sequential mode (SetSequential) disables the overlap and charges every
// posted verb exactly like its synchronous QP counterpart — one full base
// latency each. It exists as an ablation/baseline knob so experiments can
// measure what doorbell batching buys.

// batchVerb discriminates posted verb kinds.
type batchVerb uint8

const (
	verbRead batchVerb = iota
	verbRead64
	verbWrite
	verbWrite64
	verbCAS
)

// Pending is the completion slot of one posted verb. Result fields are valid
// after Execute returns: Data for PostRead, Val for PostRead64, Prev/Swapped
// for PostCAS. Err is ErrNodeDead if the target died before execution.
type Pending struct {
	verb batchVerb
	qp   *QP
	off  uint64
	n    int    // PostRead length
	data []byte // PostWrite payload; must stay unmodified until Execute
	old  uint64 // PostCAS expected value
	arg  uint64 // PostCAS new value / PostWrite64 value

	Data    []byte
	Val     uint64
	Prev    uint64
	Swapped bool
	Err     error
}

// base is the verb's full round-trip latency under prof.
func (p *Pending) base(prof LatencyProfile) time.Duration {
	switch p.verb {
	case verbRead, verbRead64:
		return prof.Read
	case verbWrite, verbWrite64:
		return prof.Write
	case verbCAS:
		return prof.CAS
	}
	return 0
}

// wireBytes is the verb's payload size on the wire (headers added by charge).
func (p *Pending) wireBytes() int {
	switch p.verb {
	case verbRead:
		return p.n
	case verbWrite:
		return len(p.data)
	default:
		return 8
	}
}

// perform routes the verb through the target machine's HTM engine, exactly
// like the synchronous QP verb of the same kind: non-transactional access
// (aborts conflicting HTM transactions), per-cacheline atomicity, and the
// target NIC's atomic lock for CAS.
func (p *Pending) perform() {
	nic := p.qp.remote
	switch p.verb {
	case verbRead:
		nic.stats.Reads.Add(1)
		p.Data = nic.eng.ReadNonTx(p.off, p.n, p.Data)
	case verbRead64:
		nic.stats.Reads.Add(1)
		p.Val = nic.eng.Load64NonTx(p.off)
	case verbWrite:
		nic.stats.Writes.Add(1)
		nic.eng.WriteNonTx(p.off, p.data)
	case verbWrite64:
		nic.stats.Writes.Add(1)
		nic.eng.Store64NonTx(p.off, p.arg)
	case verbCAS:
		nic.stats.Atomics.Add(1)
		nic.atomicsMu.Lock()
		//drtmr:allow lockorder IBV_ATOMIC_HCA semantics: atomicsMu serializes RDMA atomics while the engine drains conflicting HTM regions; the spin is bounded by region length and no coroutine parks under it
		p.Prev, p.Swapped = nic.eng.CAS64NonTx(p.off, p.old, p.arg)
		nic.atomicsMu.Unlock()
	}
}

// Batch collects posted verbs (possibly to many QPs) for one doorbell.
// A Batch belongs to one worker thread; it is not safe for concurrent use.
type Batch struct {
	clk *sim.Clock
	ops []*Pending
	seq bool
	rec *obs.Recorder // nil = tracing off (the fast path)
}

// SetRecorder attaches a trace recorder: each executed doorbell emits one
// event spanning post → completion (virtual time) with its verb count and
// target node. nil detaches.
func (b *Batch) SetRecorder(r *obs.Recorder) { b.rec = r }

// recordDoorbell emits the doorbell trace event for the n verbs just
// executed; must run before Reset. Site is the single target node, or
// obs.SiteMulti when the batch fanned out to several.
func (b *Batch) recordDoorbell(n int, start, end int64) {
	site := obs.SiteMulti
	for i, p := range b.ops {
		t := uint16(p.qp.remote.node)
		if i == 0 {
			site = t
		} else if site != t {
			site = obs.SiteMulti
			break
		}
	}
	b.rec.Record(obs.EvDoorbell, 0, site, uint32(n), 0, start, end)
}

// NewBatch creates a batch charging its virtual time to clk.
func NewBatch(clk *sim.Clock) *Batch { return &Batch{clk: clk} }

// Batch creates a batch on this QP's owning worker clock (convenience for
// callers that only hold a QP).
func (qp *QP) Batch() *Batch { return NewBatch(qp.clk) }

// SetSequential switches the batch to sequential accounting: Execute charges
// each verb a full base latency, exactly like the synchronous QP verbs (the
// no-doorbell ablation baseline).
func (b *Batch) SetSequential(on bool) { b.seq = on }

// Len returns the number of posted, not-yet-executed verbs.
func (b *Batch) Len() int { return len(b.ops) }

// Reset forgets all posted verbs so the batch can be reused. Pending slots
// handed out earlier remain valid.
func (b *Batch) Reset() { b.ops = b.ops[:0] }

func (b *Batch) post(p *Pending) *Pending {
	b.ops = append(b.ops, p)
	return p
}

// PostRead posts a one-sided READ of n bytes at the remote offset.
func (b *Batch) PostRead(qp *QP, off uint64, n int) *Pending {
	return b.post(&Pending{verb: verbRead, qp: qp, off: off, n: n})
}

// PostRead64 posts a one-word READ (must not straddle a cacheline).
func (b *Batch) PostRead64(qp *QP, off uint64) *Pending {
	return b.post(&Pending{verb: verbRead64, qp: qp, off: off})
}

// PostWrite posts a one-sided WRITE. data must stay unmodified until Execute.
func (b *Batch) PostWrite(qp *QP, off uint64, data []byte) *Pending {
	return b.post(&Pending{verb: verbWrite, qp: qp, off: off, data: data})
}

// PostWrite64 posts a one-word WRITE.
func (b *Batch) PostWrite64(qp *QP, off uint64, v uint64) *Pending {
	return b.post(&Pending{verb: verbWrite64, qp: qp, off: off, arg: v})
}

// PostCAS posts an RDMA compare-and-swap (IBV_ATOMIC_HCA atomicity).
func (b *Batch) PostCAS(qp *QP, off uint64, old, new uint64) *Pending {
	return b.post(&Pending{verb: verbCAS, qp: qp, off: off, old: old, arg: new})
}

// Execute rings the doorbell: every posted verb runs against its target in
// issue order, and the worker's clock advances by max(per-target queueing)
// plus one base latency (the slowest posted verb kind). Per-verb outcomes
// land in the Pending slots; the returned error is the first per-verb error
// (callers that need to know WHICH verbs failed inspect the slots). An empty
// batch charges nothing. The batch is reset for reuse.
//
// Execute is ExecuteAsync followed by an immediate Wait.
func (b *Batch) Execute() error {
	return b.ExecuteAsync().Wait()
}

// ExecuteAsync rings the doorbell without blocking the worker: every posted
// verb runs against its target in issue order exactly as under Execute —
// memory effects, HTM strong-atomicity aborts, HCA CAS serialization and
// NIC byte/queueing accounting all happen here, at post time — and the
// returned Completion carries the doorbell's virtual completion time
// (max(per-target queueing) + one base latency, or the per-verb sum under
// SetSequential). The worker's clock is settled by Completion.Wait, so a
// coroutine scheduler can run other transactions during the round-trip.
// The batch is reset for reuse.
func (b *Batch) ExecuteAsync() *Completion {
	c := &Completion{clk: b.clk, end: b.clk.Now()}
	if len(b.ops) == 0 {
		return c
	}
	if b.seq {
		return b.executeSequentialAsync(c)
	}
	now := b.clk.Now()
	maxEnd := now
	var base time.Duration
	for _, p := range b.ops {
		if !p.qp.remote.alive.Load() {
			p.Err = ErrNodeDead
			if c.err == nil {
				c.err = ErrNodeDead
			}
			continue
		}
		if vb := p.base(p.qp.local.net.cfg.Profile); vb > base {
			base = vb
		}
		wire := int64(p.wireBytes()) + 64
		if bw := p.qp.local.net.cfg.NICBytesPerSec; bw > 0 {
			ser := time.Duration(wire * int64(time.Second) / bw)
			if end := p.qp.local.wire.Use(now, ser); end > maxEnd {
				maxEnd = end
			}
			if p.qp.remote != p.qp.local {
				if end := p.qp.remote.wire.Use(now, ser); end > maxEnd {
					maxEnd = end
				}
			}
		}
		p.qp.local.stats.BytesOut.Add(uint64(wire))
		p.qp.remote.stats.BytesIn.Add(uint64(wire))
		p.perform()
	}
	c.end = maxEnd + int64(base)
	if b.rec != nil {
		b.recordDoorbell(len(b.ops), now, c.end)
	}
	b.Reset()
	return c
}

// executeSequentialAsync is the ablation path: per-verb full round-trips —
// the exact accounting recurrence of the synchronous QP verbs, computed on
// a cursor instead of the live clock so the charge can still be deferred.
func (b *Batch) executeSequentialAsync(c *Completion) *Completion {
	t := b.clk.Now()
	for _, p := range b.ops {
		if !p.qp.remote.alive.Load() {
			p.Err = ErrNodeDead
			if c.err == nil {
				c.err = ErrNodeDead
			}
			continue
		}
		// Mirror charge() verb by verb: advance the cursor by the base
		// latency, then queue the wire bytes on both endpoints at that
		// instant.
		t += int64(p.base(p.qp.local.net.cfg.Profile))
		wire := int64(p.wireBytes()) + 64
		end := t
		if bw := p.qp.local.net.cfg.NICBytesPerSec; bw > 0 {
			ser := time.Duration(wire * int64(time.Second) / bw)
			if e := p.qp.local.wire.Use(t, ser); e > end {
				end = e
			}
			if p.qp.remote != p.qp.local {
				if e := p.qp.remote.wire.Use(t, ser); e > end {
					end = e
				}
			}
		}
		t = end
		p.qp.local.stats.BytesOut.Add(uint64(wire))
		p.qp.remote.stats.BytesIn.Add(uint64(wire))
		p.perform()
	}
	c.end = t
	if b.rec != nil {
		b.recordDoorbell(len(b.ops), b.clk.Now(), c.end)
	}
	b.Reset()
	return c
}
