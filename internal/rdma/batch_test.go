package rdma

import (
	"bytes"
	"testing"
	"time"

	"drtmr/internal/sim"
)

// TestBatchChargesMaxNotSum is the core doorbell-batching property: a K-verb
// batch fanned out to M nodes charges ONE base latency (the slowest verb
// kind), not K full round-trips.
func TestBatchChargesMaxNotSum(t *testing.T) {
	net, _ := newFabric(t, 4, Config{}) // no bandwidth limit: pure latency
	var clk sim.Clock
	qps := []*QP{net.NewQP(0, 1, &clk), net.NewQP(0, 2, &clk), net.NewQP(0, 3, &clk)}
	prof := net.Profile()

	b := NewBatch(&clk)
	for _, qp := range qps {
		b.PostRead(qp, 0, 24)
		b.PostRead64(qp, 64)
	}
	start := clk.Now()
	if err := b.Execute(); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Duration(clk.Now() - start)
	if elapsed < prof.Read {
		t.Fatalf("6-READ batch charged %v, want >= one Read base %v", elapsed, prof.Read)
	}
	if elapsed >= 2*prof.Read {
		t.Fatalf("6-READ batch to 3 nodes charged %v, want < 2x Read base %v (max, not sum)", elapsed, 2*prof.Read)
	}

	// A mixed batch costs the SLOWEST verb kind's base latency.
	b2 := NewBatch(&clk)
	b2.PostCAS(qps[0], 128, 0, 7)
	b2.PostRead64(qps[1], 128)
	start = clk.Now()
	if err := b2.Execute(); err != nil {
		t.Fatal(err)
	}
	elapsed = time.Duration(clk.Now() - start)
	if elapsed < prof.CAS {
		t.Fatalf("CAS+READ batch charged %v, want >= CAS base %v", elapsed, prof.CAS)
	}
	if elapsed >= prof.CAS+prof.Read {
		t.Fatalf("CAS+READ batch charged %v, want < CAS+Read sum %v", elapsed, prof.CAS+prof.Read)
	}
}

// TestBatchSequentialMatchesSyncVerbs: the ablation knob must reproduce the
// old per-verb accounting — K verbs cost K full base latencies.
func TestBatchSequentialMatchesSyncVerbs(t *testing.T) {
	net, _ := newFabric(t, 2, Config{})
	var clk sim.Clock
	qp := net.NewQP(0, 1, &clk)
	prof := net.Profile()

	b := NewBatch(&clk)
	b.SetSequential(true)
	const k = 6
	for i := 0; i < k; i++ {
		b.PostRead64(qp, uint64(i*64))
	}
	start := clk.Now()
	if err := b.Execute(); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Duration(clk.Now() - start)
	if elapsed < k*prof.Read {
		t.Fatalf("sequential %d-READ batch charged %v, want >= %v (sum of bases)", k, elapsed, k*prof.Read)
	}
}

// TestBatchBandwidthQueueingPerTarget: with a tiny NIC bandwidth, batching
// overlaps round-trips but NOT wire serialization — each endpoint NIC still
// queues every byte. Fanning the same verbs out over more targets shortens
// the max per-target queue.
func TestBatchBandwidthQueueingPerTarget(t *testing.T) {
	cfg := Config{NICBytesPerSec: 1 << 20} // 1 MiB/s
	payload := make([]byte, 4096)

	run := func(targets int) time.Duration {
		net, _ := newFabric(t, 4, cfg)
		var clk sim.Clock
		b := NewBatch(&clk)
		for i := 0; i < 8; i++ {
			qp := net.NewQP(0, NodeID(1+i%targets), &clk)
			b.PostWrite(qp, 0, payload)
		}
		start := clk.Now()
		if err := b.Execute(); err != nil {
			t.Fatal(err)
		}
		return time.Duration(clk.Now() - start)
	}

	one := run(1)
	three := run(3)
	// 8 x ~4KiB at 1 MiB/s ≈ 32ms: the sender NIC serializes all of it in
	// both cases, so fanning out cannot go below the sender's queue, but the
	// cost must never be summed per round-trip either.
	if one < 25*time.Millisecond {
		t.Fatalf("bandwidth not modelled in batch: %v", one)
	}
	if three > one {
		t.Fatalf("fan-out to 3 targets slower than 1 target: %v > %v", three, one)
	}
}

// TestBatchCASAbortsConflictingHTM: batched verbs keep strong atomicity —
// a batched CAS or WRITE aborts an HTM transaction reading that cacheline.
func TestBatchCASAbortsConflictingHTM(t *testing.T) {
	net, engs := newFabric(t, 2, Config{})
	var clk sim.Clock
	qp := net.NewQP(0, 1, &clk)

	tx := engs[1].Begin()
	if _, err := tx.Load64(512); err != nil {
		t.Fatal(err)
	}
	b := NewBatch(&clk)
	p := b.PostCAS(qp, 512, 0, 1)
	if err := b.Execute(); err != nil {
		t.Fatal(err)
	}
	if !p.Swapped || p.Prev != 0 {
		t.Fatalf("CAS result: prev=%d swapped=%v", p.Prev, p.Swapped)
	}
	if err := tx.Commit(); err == nil {
		t.Fatal("batched CAS must abort conflicting HTM txn")
	}

	tx2 := engs[1].Begin()
	if _, err := tx2.Load64(1024); err != nil {
		t.Fatal(err)
	}
	b2 := NewBatch(&clk)
	b2.PostWrite64(qp, 1024, 9)
	if err := b2.Execute(); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err == nil {
		t.Fatal("batched WRITE must abort conflicting HTM txn")
	}
}

// TestBatchReadDoesNotAbortHTMReader: read-read stays compatible.
func TestBatchReadDoesNotAbortHTMReader(t *testing.T) {
	net, engs := newFabric(t, 2, Config{})
	var clk sim.Clock
	qp := net.NewQP(0, 1, &clk)

	tx := engs[1].Begin()
	if _, err := tx.Load64(512); err != nil {
		t.Fatal(err)
	}
	b := NewBatch(&clk)
	b.PostRead(qp, 512, 8)
	b.PostRead64(qp, 512)
	if err := b.Execute(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("read-read should not conflict: %v", err)
	}
}

// TestBatchResults: per-verb completion slots carry the right data.
func TestBatchResults(t *testing.T) {
	net, engs := newFabric(t, 2, Config{})
	var clk sim.Clock
	qp := net.NewQP(0, 1, &clk)
	want := []byte("doorbell batching works!")
	engs[1].WriteNonTx(256, want)
	engs[1].Store64NonTx(512, 41)

	b := NewBatch(&clk)
	rd := b.PostRead(qp, 256, len(want))
	v := b.PostRead64(qp, 512)
	casOK := b.PostCAS(qp, 512, 41, 42)
	casFail := b.PostCAS(qp, 576, 99, 1)
	if b.Len() != 4 {
		t.Fatalf("Len=%d", b.Len())
	}
	if err := b.Execute(); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatal("Execute must reset the batch")
	}
	if !bytes.Equal(rd.Data, want) {
		t.Fatalf("READ data: %q", rd.Data)
	}
	if v.Val != 41 {
		t.Fatalf("READ64: %d", v.Val)
	}
	if !casOK.Swapped || casOK.Prev != 41 {
		t.Fatalf("CAS ok: %+v", casOK)
	}
	if casFail.Swapped || casFail.Prev != 0 {
		t.Fatalf("CAS fail: %+v", casFail)
	}
	if got := engs[1].Load64NonTx(512); got != 42 {
		t.Fatalf("CAS did not land: %d", got)
	}
}

// TestBatchDeadNodePerVerbError: a dead target fails only ITS verbs; verbs to
// live targets in the same doorbell still complete.
func TestBatchDeadNodePerVerbError(t *testing.T) {
	net, engs := newFabric(t, 3, Config{})
	var clk sim.Clock
	qpDead := net.NewQP(0, 1, &clk)
	qpLive := net.NewQP(0, 2, &clk)
	engs[2].Store64NonTx(64, 7)
	net.NIC(1).Kill()

	b := NewBatch(&clk)
	pd := b.PostRead64(qpDead, 0)
	pl := b.PostRead64(qpLive, 64)
	if err := b.Execute(); err != ErrNodeDead {
		t.Fatalf("Execute err = %v, want ErrNodeDead", err)
	}
	if pd.Err != ErrNodeDead {
		t.Fatalf("dead-target verb err = %v", pd.Err)
	}
	if pl.Err != nil || pl.Val != 7 {
		t.Fatalf("live-target verb: err=%v val=%d", pl.Err, pl.Val)
	}
}

// TestBatchEmptyChargesNothing: an empty doorbell (e.g. replicate() with all
// targets dead-node-skipped) must not advance the clock.
func TestBatchEmptyChargesNothing(t *testing.T) {
	var clk sim.Clock
	b := NewBatch(&clk)
	if err := b.Execute(); err != nil {
		t.Fatal(err)
	}
	if clk.Now() != 0 {
		t.Fatalf("empty batch advanced clock to %d", clk.Now())
	}
}
