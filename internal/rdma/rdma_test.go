package rdma

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"drtmr/internal/htm"
	"drtmr/internal/sim"
)

func newFabric(t *testing.T, nodes int, cfg Config) (*Network, []*htm.Engine) {
	t.Helper()
	net := NewNetwork(nodes, cfg)
	engs := make([]*htm.Engine, nodes)
	for i := range engs {
		engs[i] = htm.NewEngine(make([]byte, 1<<16), htm.Config{})
		net.Attach(NodeID(i), engs[i])
	}
	return net, engs
}

func TestReadWriteRemote(t *testing.T) {
	net, engs := newFabric(t, 2, Config{})
	var clk sim.Clock
	qp := net.NewQP(0, 1, &clk)
	data := []byte("the quick brown fox jumps over!!")
	if err := qp.Write(128, data); err != nil {
		t.Fatal(err)
	}
	got, err := qp.Read(128, len(data), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("roundtrip: %q", got)
	}
	// The write really landed in node 1's memory.
	if !bytes.Equal(engs[1].ReadNonTx(128, len(data), nil), data) {
		t.Fatal("data not in target memory")
	}
	if clk.Now() == 0 {
		t.Fatal("verbs must charge virtual time")
	}
}

func TestVirtualTimeCharging(t *testing.T) {
	net, _ := newFabric(t, 2, Config{})
	var clk sim.Clock
	qp := net.NewQP(0, 1, &clk)
	before := clk.Now()
	if _, err := qp.Read64(0); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Duration(clk.Now() - before)
	if elapsed < net.Profile().Read {
		t.Fatalf("READ charged %v, want >= %v", elapsed, net.Profile().Read)
	}
}

func TestBandwidthQueueing(t *testing.T) {
	// With a tiny NIC bandwidth, bulk writes must stretch virtual time by
	// ~bytes/bandwidth.
	cfg := Config{NICBytesPerSec: 1 << 20} // 1 MiB/s
	net, _ := newFabric(t, 2, cfg)
	var clk sim.Clock
	qp := net.NewQP(0, 1, &clk)
	payload := make([]byte, 4096)
	start := clk.Now()
	for i := 0; i < 16; i++ {
		if err := qp.Write(0, payload); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Duration(clk.Now() - start)
	// 16 * (4096+64) bytes at 1 MiB/s ≈ 63ms of virtual time.
	if elapsed < 50*time.Millisecond {
		t.Fatalf("bandwidth not modelled: %v", elapsed)
	}
}

func TestCASAtomicityAcrossQPs(t *testing.T) {
	net, engs := newFabric(t, 3, Config{})
	const off = 256
	const workers = 4
	const iters = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(src NodeID) {
			defer wg.Done()
			var clk sim.Clock
			qp := net.NewQP(src%3, 2, &clk)
			for i := 0; i < iters; i++ {
				for {
					cur, _ := qp.Read64(off)
					if _, ok, err := qp.CAS(off, cur, cur+1); err != nil {
						t.Error(err)
						return
					} else if ok {
						break
					}
				}
			}
		}(NodeID(w))
	}
	wg.Wait()
	if got := engs[2].Load64NonTx(off); got != workers*iters {
		t.Fatalf("CAS increments lost: %d want %d", got, workers*iters)
	}
}

func TestRDMAWriteAbortsConflictingHTM(t *testing.T) {
	net, engs := newFabric(t, 2, Config{})
	tx := engs[1].Begin()
	if _, err := tx.Load64(512); err != nil {
		t.Fatal(err)
	}
	var clk sim.Clock
	qp := net.NewQP(0, 1, &clk)
	if err := qp.Write64(512, 9); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err == nil {
		t.Fatal("RDMA WRITE must abort conflicting HTM txn (strong consistency)")
	}
}

func TestRDMAReadDoesNotAbortHTMReader(t *testing.T) {
	net, engs := newFabric(t, 2, Config{})
	tx := engs[1].Begin()
	if _, err := tx.Load64(512); err != nil {
		t.Fatal(err)
	}
	var clk sim.Clock
	qp := net.NewQP(0, 1, &clk)
	if _, err := qp.Read64(512); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("read-read should not conflict: %v", err)
	}
}

func TestMultiLineWriteIsTornPerLine(t *testing.T) {
	// The defining RDMA hazard (§4.3): a WRITE spanning lines is atomic
	// per line only. We can't easily force the interleaving, but we can
	// verify the implementation writes line by line by checking a
	// concurrent HTM read of 3 lines never commits a mixed view (HTM
	// aborts) while a plain racing byte inspection can see mixes.
	net, engs := newFabric(t, 2, Config{})
	var clk sim.Clock
	qp := net.NewQP(0, 1, &clk)
	buf0 := make([]byte, 192)
	buf1 := make([]byte, 192)
	for i := range buf1 {
		buf1[i] = 0xFF
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 300; i++ {
			if i%2 == 0 {
				qp.Write(0, buf1)
			} else {
				qp.Write(0, buf0)
			}
		}
	}()
	for i := 0; i < 300; i++ {
		tx := engs[1].Begin()
		b, err := tx.Read(0, 192, nil)
		if err != nil {
			continue
		}
		if tx.Commit() != nil {
			continue
		}
		first := b[0]
		for _, c := range b {
			if c != first {
				t.Fatal("committed HTM read saw torn RDMA write")
			}
		}
	}
	<-done
}

func TestSendRecv(t *testing.T) {
	net, _ := newFabric(t, 2, Config{})
	var clk sim.Clock
	qp := net.NewQP(0, 1, &clk)
	if err := qp.Send([]byte("insert k=5")); err != nil {
		t.Fatal(err)
	}
	msg, err := net.NIC(1).Recv(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if msg.From != 0 || string(msg.Payload) != "insert k=5" {
		t.Fatalf("msg: %+v", msg)
	}
	if _, ok := net.NIC(1).TryRecv(); ok {
		t.Fatal("queue should be empty")
	}
}

func TestDeadNodeFailsVerbs(t *testing.T) {
	net, _ := newFabric(t, 2, Config{})
	var clk sim.Clock
	qp := net.NewQP(0, 1, &clk)
	net.NIC(1).Kill()
	if _, err := qp.Read64(0); err != ErrNodeDead {
		t.Fatalf("read on dead node: %v", err)
	}
	if err := qp.Write64(0, 1); err != ErrNodeDead {
		t.Fatalf("write on dead node: %v", err)
	}
	if _, _, err := qp.CAS(0, 0, 1); err != ErrNodeDead {
		t.Fatalf("cas on dead node: %v", err)
	}
	if err := qp.Send(nil); err != ErrNodeDead {
		t.Fatalf("send to dead node: %v", err)
	}
	if _, err := net.NIC(1).Recv(time.Millisecond); err != ErrNodeDead {
		t.Fatalf("recv on dead node: %v", err)
	}
	net.NIC(1).Revive()
	if _, err := qp.Read64(0); err != nil {
		t.Fatalf("revived node: %v", err)
	}
}

func TestNICStats(t *testing.T) {
	net, _ := newFabric(t, 2, Config{})
	var clk sim.Clock
	qp := net.NewQP(0, 1, &clk)
	qp.Read64(0)
	qp.Write64(0, 1)
	qp.CAS(0, 1, 2)
	s := net.NIC(1).Snapshot()
	if s.Reads != 1 || s.Writes != 1 || s.Atomics != 1 {
		t.Fatalf("stats: %+v", s)
	}
	if s.BytesIn == 0 {
		t.Fatal("bytes not counted")
	}
}
