// Package rdma simulates the one-sided RDMA verb layer of a ConnectX-3
// InfiniBand fabric at the fidelity DrTM+R requires:
//
//   - One-sided READ / WRITE with per-cacheline (not per-message) atomicity
//     against the target CPU — a multi-line WRITE lands line by line, which
//     is exactly the torn-read hazard §4.3 defends against.
//   - Atomic verbs (CAS, FETCH_AND_ADD) with IBV_ATOMIC_HCA-level atomicity:
//     they serialize against other RDMA atomics at the target NIC but NOT
//     against the target CPU's own atomic instructions (§4.4 C.1, §6.2).
//   - Cache coherence with the target's HTM: every verb routes through the
//     target machine's htm.Engine as a non-transactional access and
//     therefore unconditionally aborts conflicting hardware transactions
//     (strong consistency, §2.1).
//   - Two-sided SEND/RECV messaging, used by DrTM+R only for inserts and
//     deletes (§4.3) and by the Calvin baseline for everything.
//   - A latency profile plus a per-NIC virtual-time bandwidth queue that
//     model verb cost and the 56Gbps NIC saturation the replication
//     experiments hinge on (Figs 11, 15, 16). All durations are charged to
//     the issuing worker's virtual clock (see internal/sim vtime), not to
//     wall-clock time.
//   - Doorbell batching (see batch.go): a Batch collects posted verbs to one
//     or more QPs and Execute charges max(per-target queueing) + one base
//     latency instead of the per-verb sum — wire bytes and HTM routing are
//     unchanged, only the overlap of round-trips is modelled.
//   - Asynchronous completions: ReadAsync / Batch.ExecuteAsync still execute
//     every verb against the target at post time (memory effects, HTM aborts
//     and NIC queueing are byte-for-byte those of the synchronous verbs) but
//     defer the requester's latency charge to a Completion, so a coroutine
//     scheduler can overlap round-trips of independent in-flight
//     transactions; Completion.Wait charges each round-trip at most once.
//
// Failure injection: a NIC can be killed (fail-stop). Verbs against a dead
// NIC return ErrNodeDead after a timeout; the machine's memory is preserved,
// matching the paper's battery-backed NVRAM failure model.
package rdma

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"drtmr/internal/htm"
	"drtmr/internal/obs"
	"drtmr/internal/sim"
)

// NodeID identifies a machine in the cluster.
type NodeID uint32

// GAddr is a global address in the partitioned global address space: a
// (machine, offset) pair.
type GAddr struct {
	Node NodeID
	Off  uint64
}

func (a GAddr) String() string { return fmt.Sprintf("%d:%#x", a.Node, a.Off) }

// ErrNodeDead is returned for verbs against a failed machine.
var ErrNodeDead = errors.New("rdma: target node is dead")

// ErrRecvTimeout is returned by Recv when no message arrives in time.
var ErrRecvTimeout = errors.New("rdma: recv timeout")

// LatencyProfile is the modelled cost of each verb, charged to the issuing
// worker's virtual clock. The defaults are ConnectX-3-class numbers: an RDMA
// verb costs ~10-20x a local cache access, an atomic verb is the most
// expensive one-sided op (the paper measures RDMA CAS at two orders of
// magnitude over a local CAS, §6.2), and two-sided messaging costs more than
// one-sided verbs (the reason DrTM+R avoids messages in the commit path,
// §4.4).
type LatencyProfile struct {
	Read  time.Duration // one-sided READ base latency
	Write time.Duration // one-sided WRITE base latency
	CAS   time.Duration // atomic verb latency
	Send  time.Duration // two-sided message latency (verbs path)
}

// DefaultProfile is the RDMA-capable InfiniBand (ConnectX-3 class) profile.
func DefaultProfile() LatencyProfile {
	return LatencyProfile{
		Read:  1500 * time.Nanosecond,
		Write: 1000 * time.Nanosecond,
		CAS:   2000 * time.Nanosecond,
		Send:  5000 * time.Nanosecond,
	}
}

// IPoIBProfile models IP-over-InfiniBand socket messaging (the transport the
// paper runs Calvin on): no one-sided verbs, kernel-stack latencies.
func IPoIBProfile() LatencyProfile {
	return LatencyProfile{
		Read:  40 * time.Microsecond, // emulated via request/response
		Write: 40 * time.Microsecond,
		CAS:   40 * time.Microsecond,
		Send:  40 * time.Microsecond,
	}
}

// Config configures the simulated fabric.
type Config struct {
	Profile LatencyProfile
	// NICBytesPerSec caps each NIC's aggregate bandwidth in virtual time
	// (0 = unlimited). 56Gbps full duplex is ~7e9 per direction; the
	// simulated NIC uses a single queue for both directions, matching the
	// paper's observation that one ConnectX-3 is the bottleneck.
	NICBytesPerSec int64
	// RecvQueueDepth is the per-NIC SEND/RECV queue depth.
	RecvQueueDepth int
}

// NICBandwidth56G is the default NIC capacity (bytes/second of virtual time).
const NICBandwidth56G = int64(7e9)

// Message is one two-sided SEND payload.
type Message struct {
	From    NodeID
	Payload []byte
}

// Network is the fabric connecting all NICs.
type Network struct {
	cfg  Config
	nics []*NIC
}

// NewNetwork creates a fabric for n machines. Memory is attached per node
// with Attach.
func NewNetwork(n int, cfg Config) *Network {
	if cfg.RecvQueueDepth <= 0 {
		cfg.RecvQueueDepth = 4096
	}
	if cfg.Profile == (LatencyProfile{}) {
		cfg.Profile = DefaultProfile()
	}
	net := &Network{cfg: cfg, nics: make([]*NIC, n)}
	for i := range net.nics {
		nic := &NIC{
			net:   net,
			node:  NodeID(i),
			inbox: make(chan Message, cfg.RecvQueueDepth),
		}
		nic.alive.Store(true)
		net.nics[i] = nic
	}
	return net
}

// Attach registers node's memory (its htm engine) with its NIC, making the
// region remotely accessible.
func (n *Network) Attach(node NodeID, eng *htm.Engine) {
	n.nics[node].eng = eng
}

// NIC returns the NIC of node.
func (n *Network) NIC(node NodeID) *NIC { return n.nics[node] }

// Nodes returns the number of machines on the fabric.
func (n *Network) Nodes() int { return len(n.nics) }

// Profile returns the active latency profile.
func (n *Network) Profile() LatencyProfile { return n.cfg.Profile }

// NIC is one machine's (simulated) RDMA-capable network card.
type NIC struct {
	net   *Network
	node  NodeID
	eng   *htm.Engine
	wire  sim.Resource // virtual-time bandwidth queue
	alive atomic.Bool

	// atomicsMu serializes RDMA atomic verbs targeting this NIC: the
	// IBV_ATOMIC_HCA atomicity level. Local CPU atomics do not take this
	// mutex — mixing them with RDMA atomics on the same word is unsafe,
	// exactly as on the paper's hardware.
	atomicsMu sync.Mutex

	inbox chan Message

	stats NICStats
}

// NICStats counts verb traffic for the experiment reports.
type NICStats struct {
	Reads, Writes, Atomics, Sends atomic.Uint64
	BytesOut, BytesIn             atomic.Uint64
}

// StatsSnapshot is a plain copy of the NIC counters.
type StatsSnapshot struct {
	Reads, Writes, Atomics, Sends uint64
	BytesOut, BytesIn             uint64
}

// Snapshot copies the counters.
func (nic *NIC) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		Reads:    nic.stats.Reads.Load(),
		Writes:   nic.stats.Writes.Load(),
		Atomics:  nic.stats.Atomics.Load(),
		Sends:    nic.stats.Sends.Load(),
		BytesOut: nic.stats.BytesOut.Load(),
		BytesIn:  nic.stats.BytesIn.Load(),
	}
}

// Node returns the NIC's machine ID.
func (nic *NIC) Node() NodeID { return nic.node }

// Alive reports whether the machine is serving.
func (nic *NIC) Alive() bool { return nic.alive.Load() }

// Kill fail-stops the machine: all verbs against it start failing. Memory
// is preserved (battery-backed NVRAM).
func (nic *NIC) Kill() { nic.alive.Store(false) }

// Revive brings a killed machine back (used to model a replacement instance
// taking over the NIC of a surviving machine).
func (nic *NIC) Revive() { nic.alive.Store(true) }

// charge advances the worker's virtual clock by the verb latency and queues
// the wire bytes on both endpoint NICs' bandwidth resources. Saturation
// shows up as NIC completion times running ahead of worker clocks.
func charge(clk *sim.Clock, src, dst *NIC, base time.Duration, bytes int) {
	clk.AdvanceTo(chargeAsync(clk, src, dst, base, bytes))
}

// chargeAsync computes the virtual completion time of one verb issued now
// WITHOUT advancing the worker's clock. The cost model is identical to
// charge — base round-trip latency, then wire serialization queued on both
// endpoint NICs at the post-latency instant — but the clock advance is
// deferred to Completion.Wait, so a worker that multiplexes coroutines can
// overlap the round-trip with other transactions' work and pay it at most
// once. NIC queueing (Resource.Use) is still booked per verb at post time:
// overlap hides latency, never wire bytes.
func chargeAsync(clk *sim.Clock, src, dst *NIC, base time.Duration, bytes int) int64 {
	t := clk.Now() + int64(base)
	end := t
	wire := int64(bytes) + 64 // 64B of headers per verb
	if bw := src.net.cfg.NICBytesPerSec; bw > 0 {
		ser := time.Duration(wire * int64(time.Second) / bw)
		if e := src.wire.Use(t, ser); e > end {
			end = e
		}
		if dst != src {
			if e := dst.wire.Use(t, ser); e > end {
				end = e
			}
		}
	}
	src.stats.BytesOut.Add(uint64(wire))
	dst.stats.BytesIn.Add(uint64(wire))
	return end
}

// Completion is the requester-side handle of asynchronously issued verbs —
// a single verb (ReadAsync) or a whole doorbell batch (Batch.ExecuteAsync).
// The verbs themselves have already executed against the target at post
// time: memory effects, HTM strong-atomicity aborts and NIC byte/queueing
// accounting are all done. Only the requester's latency charge is deferred;
// Wait settles it.
type Completion struct {
	clk *sim.Clock
	end int64
	err error
}

// End returns the virtual completion time of the slowest verb in the
// completion.
//
//drtmr:hotpath
func (c *Completion) End() int64 { return c.end }

// Err returns the first per-verb error without settling the latency charge.
//
//drtmr:hotpath
func (c *Completion) Err() error { return c.err }

// Wait advances the issuing worker's clock to max(now, completion time) and
// returns the first per-verb error. A worker that ran other coroutines'
// transactions while the verbs were in flight pays only the portion of the
// round-trip not already covered — overlapped round-trips are charged once.
// Wait is idempotent; waiting on a nil Completion is a no-op.
//
//drtmr:hotpath
func (c *Completion) Wait() error {
	if c == nil {
		return nil
	}
	c.clk.WaitUntil(c.end)
	return c.err
}

// QP is a queue pair: the issuing endpoint for verbs from one node to
// another (possibly itself: loopback QPs are how DrTM+R's fallback handler
// locks local records, §6.2).
type QP struct {
	local  *NIC
	remote *NIC
	clk    *sim.Clock
	rec    *obs.Recorder // nil = tracing off (the fast path)
}

// SetRecorder attaches a trace recorder: asynchronous verbs emit doorbell
// events (post → completion, virtual time). nil detaches.
func (qp *QP) SetRecorder(r *obs.Recorder) { qp.rec = r }

// NewQP opens a queue pair from src to dst, charging verb costs to clk
// (each simulated worker thread owns its QPs, as on real RDMA hardware).
func (n *Network) NewQP(src, dst NodeID, clk *sim.Clock) *QP {
	return &QP{local: n.nics[src], remote: n.nics[dst], clk: clk}
}

// Remote returns the target node of this QP.
func (qp *QP) Remote() NodeID { return qp.remote.node }

// Read performs a one-sided RDMA READ of n bytes at the remote offset,
// atomic per cacheline. buf is reused if large enough.
func (qp *QP) Read(off uint64, n int, buf []byte) ([]byte, error) {
	if !qp.remote.alive.Load() {
		return nil, ErrNodeDead
	}
	charge(qp.clk, qp.local, qp.remote, qp.local.net.cfg.Profile.Read, n)
	qp.remote.stats.Reads.Add(1)
	return qp.remote.eng.ReadNonTx(off, n, buf), nil
}

// ReadAsync issues the same one-sided READ as Read without blocking the
// worker: the read executes against the target immediately (in issue order,
// with the same per-cacheline atomicity and strong-atomicity HTM aborts),
// and the returned Completion carries the virtual completion time — call
// Wait to settle the latency charge. ReadAsync followed by an immediate
// Wait is accounting-identical to Read. On a dead target the data is nil
// and the Completion reports ErrNodeDead with nothing charged, matching
// Read's error path.
func (qp *QP) ReadAsync(off uint64, n int, buf []byte) ([]byte, *Completion) {
	if !qp.remote.alive.Load() {
		return nil, &Completion{clk: qp.clk, end: qp.clk.Now(), err: ErrNodeDead}
	}
	start := qp.clk.Now()
	end := chargeAsync(qp.clk, qp.local, qp.remote, qp.local.net.cfg.Profile.Read, n)
	qp.remote.stats.Reads.Add(1)
	if qp.rec != nil {
		qp.rec.Record(obs.EvDoorbell, 0, uint16(qp.remote.node), 1, 0, start, end)
	}
	return qp.remote.eng.ReadNonTx(off, n, buf), &Completion{clk: qp.clk, end: end}
}

// Write performs a one-sided RDMA WRITE, atomic per cacheline: a write
// spanning multiple lines lands line by line (§4.3, Fig 4).
func (qp *QP) Write(off uint64, data []byte) error {
	if !qp.remote.alive.Load() {
		return ErrNodeDead
	}
	charge(qp.clk, qp.local, qp.remote, qp.local.net.cfg.Profile.Write, len(data))
	qp.remote.stats.Writes.Add(1)
	qp.remote.eng.WriteNonTx(off, data)
	return nil
}

// Read64 reads one 8-byte word (must not straddle a cacheline).
func (qp *QP) Read64(off uint64) (uint64, error) {
	if !qp.remote.alive.Load() {
		return 0, ErrNodeDead
	}
	charge(qp.clk, qp.local, qp.remote, qp.local.net.cfg.Profile.Read, 8)
	qp.remote.stats.Reads.Add(1)
	return qp.remote.eng.Load64NonTx(off), nil
}

// Write64 writes one 8-byte word.
func (qp *QP) Write64(off uint64, v uint64) error {
	if !qp.remote.alive.Load() {
		return ErrNodeDead
	}
	charge(qp.clk, qp.local, qp.remote, qp.local.net.cfg.Profile.Write, 8)
	qp.remote.stats.Writes.Add(1)
	qp.remote.eng.Store64NonTx(off, v)
	return nil
}

// CAS performs an RDMA compare-and-swap with IBV_ATOMIC_HCA atomicity: it
// holds the target NIC's atomic lock, so it is atomic against other RDMA
// atomics but not against local CPU atomics.
func (qp *QP) CAS(off uint64, old, new uint64) (prev uint64, swapped bool, err error) {
	if !qp.remote.alive.Load() {
		return 0, false, ErrNodeDead
	}
	charge(qp.clk, qp.local, qp.remote, qp.local.net.cfg.Profile.CAS, 8)
	qp.remote.stats.Atomics.Add(1)
	qp.remote.atomicsMu.Lock()
	//drtmr:allow lockorder IBV_ATOMIC_HCA semantics: atomicsMu serializes RDMA atomics while the engine drains conflicting HTM regions; the spin is bounded by region length and no coroutine parks under it
	prev, swapped = qp.remote.eng.CAS64NonTx(off, old, new)
	qp.remote.atomicsMu.Unlock()
	return prev, swapped, nil
}

// FAA performs an RDMA fetch-and-add with the same atomicity as CAS.
func (qp *QP) FAA(off uint64, delta uint64) (prev uint64, err error) {
	if !qp.remote.alive.Load() {
		return 0, ErrNodeDead
	}
	charge(qp.clk, qp.local, qp.remote, qp.local.net.cfg.Profile.CAS, 8)
	qp.remote.stats.Atomics.Add(1)
	qp.remote.atomicsMu.Lock()
	//drtmr:allow lockorder IBV_ATOMIC_HCA semantics: same bounded serialization as CAS above
	prev = qp.remote.eng.FAA64NonTx(off, delta)
	qp.remote.atomicsMu.Unlock()
	return prev, nil
}

// Send delivers a two-sided message into the remote NIC's receive queue.
func (qp *QP) Send(payload []byte) error {
	if !qp.remote.alive.Load() {
		return ErrNodeDead
	}
	charge(qp.clk, qp.local, qp.remote, qp.local.net.cfg.Profile.Send, len(payload))
	qp.remote.stats.Sends.Add(1)
	msg := Message{From: qp.local.node, Payload: append([]byte(nil), payload...)}
	select {
	case qp.remote.inbox <- msg:
		return nil
	//drtmr:allow virtualtime queue-full timeout is a backstop against harness deadlock, not protocol time
	case <-time.After(time.Second):
		return fmt.Errorf("rdma: send to node %d: recv queue full", qp.remote.node)
	}
}

// Recv blocks for up to timeout waiting for a message on this node's
// receive queue. A dead node's Recv fails immediately (its poller threads
// are gone).
func (nic *NIC) Recv(timeout time.Duration) (Message, error) {
	if !nic.alive.Load() {
		return Message{}, ErrNodeDead
	}
	select {
	case m := <-nic.inbox:
		return m, nil
	//drtmr:allow virtualtime recv timeout is a backstop against harness deadlock, not protocol time
	case <-time.After(timeout):
		return Message{}, ErrRecvTimeout
	}
}

// TryRecv polls the receive queue without blocking.
func (nic *NIC) TryRecv() (Message, bool) {
	select {
	case m := <-nic.inbox:
		return m, true
	default:
		return Message{}, false
	}
}
