package drtmr_test

import (
	"encoding/binary"
	"errors"
	"sync"
	"testing"

	"drtmr"
)

const tblAcct drtmr.TableID = 1

func bal(v uint64) []byte {
	b := make([]byte, 16)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

func val(b []byte) uint64 { return binary.LittleEndian.Uint64(b[:8]) }

func openTestDB(t *testing.T, nodes, replicas int) *drtmr.DB {
	t.Helper()
	db, err := drtmr.Open(drtmr.Options{Nodes: nodes, Replicas: replicas, MemBytes: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	db.CreateTable(tblAcct, drtmr.TableSpec{Name: "acct", ValueSize: 16, ExpectedRows: 256})
	return db
}

func TestOpenValidation(t *testing.T) {
	if _, err := drtmr.Open(drtmr.Options{Nodes: 2, Replicas: 3}); err == nil {
		t.Fatal("3 replicas on 2 nodes must be rejected")
	}
	db, err := drtmr.Open(drtmr.Options{})
	if err != nil {
		t.Fatal(err)
	}
	db.Close()
}

func TestUpdateAndView(t *testing.T) {
	db := openTestDB(t, 3, 3)
	for k := uint64(0); k < 6; k++ {
		db.MustLoad(tblAcct, k, bal(100))
	}
	s := db.Session(0)
	if err := s.Update(func(tx *drtmr.Tx) error {
		a, err := tx.Read(tblAcct, 0) // local
		if err != nil {
			return err
		}
		b, err := tx.Read(tblAcct, 1) // remote
		if err != nil {
			return err
		}
		if err := tx.Write(tblAcct, 0, bal(val(a)-30)); err != nil {
			return err
		}
		return tx.Write(tblAcct, 1, bal(val(b)+30))
	}); err != nil {
		t.Fatal(err)
	}
	var got0, got1 uint64
	s2 := db.Session(2)
	if err := s2.View(func(tx *drtmr.Tx) error {
		a, err := tx.Read(tblAcct, 0)
		if err != nil {
			return err
		}
		b, err := tx.Read(tblAcct, 1)
		if err != nil {
			return err
		}
		got0, got1 = val(a), val(b)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got0 != 70 || got1 != 130 {
		t.Fatalf("transfer: %d %d", got0, got1)
	}
}

func TestNotFoundSurfaces(t *testing.T) {
	db := openTestDB(t, 2, 1)
	s := db.Session(0)
	err := s.View(func(tx *drtmr.Tx) error {
		_, err := tx.Read(tblAcct, 12345)
		return err
	})
	if !errors.Is(err, drtmr.ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestConcurrentSessionsConserve(t *testing.T) {
	const accounts = 12
	db := openTestDB(t, 3, 1)
	for k := uint64(0); k < accounts; k++ {
		db.MustLoad(tblAcct, k, bal(1000))
	}
	var wg sync.WaitGroup
	for n := 0; n < 3; n++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			s := db.Session(drtmr.NodeID(node))
			for i := 0; i < 80; i++ {
				from := uint64((node*7 + i) % accounts)
				to := uint64((node*3 + i*5) % accounts)
				if from == to {
					continue
				}
				if err := s.Update(func(tx *drtmr.Tx) error {
					a, err := tx.Read(tblAcct, from)
					if err != nil {
						return err
					}
					b, err := tx.Read(tblAcct, to)
					if err != nil {
						return err
					}
					if val(a) == 0 {
						return nil
					}
					if err := tx.Write(tblAcct, from, bal(val(a)-1)); err != nil {
						return err
					}
					return tx.Write(tblAcct, to, bal(val(b)+1))
				}); err != nil {
					t.Errorf("update: %v", err)
					return
				}
			}
		}(n)
	}
	wg.Wait()
	var total uint64
	s := db.Session(0)
	if err := s.View(func(tx *drtmr.Tx) error {
		total = 0
		for k := uint64(0); k < accounts; k++ {
			v, err := tx.Read(tblAcct, k)
			if err != nil {
				return err
			}
			total += val(v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if total != accounts*1000 {
		t.Fatalf("not conserved: %d", total)
	}
}

func TestInsertDeleteThroughAPI(t *testing.T) {
	db := openTestDB(t, 2, 1)
	s := db.Session(0)
	if err := s.Update(func(tx *drtmr.Tx) error {
		return tx.Insert(tblAcct, 7, bal(55)) // remote shard (7%2=1)
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.View(func(tx *drtmr.Tx) error {
		v, err := tx.Read(tblAcct, 7)
		if err != nil {
			return err
		}
		if val(v) != 55 {
			t.Errorf("insert value: %d", val(v))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Update(func(tx *drtmr.Tx) error {
		return tx.Delete(tblAcct, 7)
	}); err != nil {
		t.Fatal(err)
	}
	err := s.View(func(tx *drtmr.Tx) error {
		_, err := tx.Read(tblAcct, 7)
		return err
	})
	if !errors.Is(err, drtmr.ErrNotFound) {
		t.Fatalf("after delete: %v", err)
	}
}

// TestSurvivesMachineFailure exercises the whole availability story through
// the public API: kill a machine and keep transacting against its shard.
func TestSurvivesMachineFailure(t *testing.T) {
	db := openTestDB(t, 3, 3)
	for k := uint64(0); k < 6; k++ {
		db.MustLoad(tblAcct, k, bal(500))
	}
	db.Start()
	s := db.Session(0)
	// Write through once so the log pipeline is warm.
	if err := s.Update(func(tx *drtmr.Tx) error {
		v, err := tx.Read(tblAcct, 2) // shard 2 = machine 2
		if err != nil {
			return err
		}
		return tx.Write(tblAcct, 2, bal(val(v)+1))
	}); err != nil {
		t.Fatal(err)
	}
	db.Cluster().Kill(2)
	// Retry loop inside Update rides out detection + reconfiguration.
	if err := s.Update(func(tx *drtmr.Tx) error {
		v, err := tx.Read(tblAcct, 2)
		if err != nil {
			return err
		}
		return tx.Write(tblAcct, 2, bal(val(v)+1))
	}); err != nil {
		t.Fatal(err)
	}
	var got uint64
	if err := s.View(func(tx *drtmr.Tx) error {
		v, err := tx.Read(tblAcct, 2)
		if err != nil {
			return err
		}
		got = val(v)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != 502 {
		t.Fatalf("post-failure value: %d want 502", got)
	}
}
