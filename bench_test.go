package drtmr_test

// One benchmark per table/figure of the paper's evaluation (§7), backed by
// the experiment drivers in internal/bench/harness. These run the SMOKE
// scale so `go test -bench=.` finishes quickly; the full paper-scale sweeps
// are `go run ./cmd/drtmr-bench -fig all`.
//
// Reported custom metrics: txns/s is committed transactions per second of
// VIRTUAL time (the simulated cluster's time; see internal/sim), which is
// the paper's metric; new-order/s likewise for TPC-C.

import (
	"strings"
	"testing"

	"drtmr/internal/bench/harness"
	"drtmr/internal/bench/serveload"
)

// reportFirstRow surfaces the experiment's first row (the headline
// throughput row; sweep tables put their smallest configuration first) as
// custom metrics.
func reportFirstRow(b *testing.B, t harness.Table) {
	b.Helper()
	if len(t.Rows) == 0 || len(t.Rows[0].Values) == 0 {
		b.Fatal("empty experiment table")
	}
	first := t.Rows[0]
	for i, col := range t.Columns {
		if i < len(first.Values) {
			unit := strings.ReplaceAll(col, " ", "-") + "_txns/s"
			b.ReportMetric(first.Values[i], unit)
		}
	}
}

func runFig(b *testing.B, fn func(harness.Scale) harness.Table) {
	b.Helper()
	var t harness.Table
	for i := 0; i < b.N; i++ {
		t = fn(harness.Smoke)
	}
	reportFirstRow(b, t)
}

// BenchmarkFig10_TPCCScaleMachines reproduces Fig 10: TPC-C new-order
// throughput vs machine count for DrTM+R, DrTM+R/3, DrTM and Calvin.
func BenchmarkFig10_TPCCScaleMachines(b *testing.B) { runFig(b, harness.Fig10) }

// BenchmarkFig11_TPCCScaleThreads reproduces Fig 11: thread scaling on a
// fixed cluster; DrTM's big HTM regions stop scaling first.
func BenchmarkFig11_TPCCScaleThreads(b *testing.B) { runFig(b, harness.Fig11) }

// BenchmarkFig12_LogicalNodes reproduces Fig 12: logical-node scale-out.
func BenchmarkFig12_LogicalNodes(b *testing.B) { runFig(b, harness.Fig12) }

// BenchmarkFig13_SmallBankMachines reproduces Fig 13.
func BenchmarkFig13_SmallBankMachines(b *testing.B) { runFig(b, harness.Fig13) }

// BenchmarkFig14_SmallBankThreads reproduces Fig 14.
func BenchmarkFig14_SmallBankThreads(b *testing.B) { runFig(b, harness.Fig14) }

// BenchmarkFig15_SmallBankRepMachines reproduces Fig 15 (3-way replication,
// NIC-bound).
func BenchmarkFig15_SmallBankRepMachines(b *testing.B) { runFig(b, harness.Fig15) }

// BenchmarkFig16_SmallBankRepThreads reproduces Fig 16 (replication
// plateaus at the NIC as threads grow).
func BenchmarkFig16_SmallBankRepThreads(b *testing.B) { runFig(b, harness.Fig16) }

// BenchmarkFig17_CrossWarehouse reproduces Fig 17: throughput vs
// cross-warehouse access probability.
func BenchmarkFig17_CrossWarehouse(b *testing.B) { runFig(b, harness.Fig17) }

// BenchmarkFig18_HighContention reproduces Fig 18: one warehouse per
// machine.
func BenchmarkFig18_HighContention(b *testing.B) { runFig(b, harness.Fig18) }

// BenchmarkFig19_DataSize reproduces Fig 19: throughput vs warehouses.
func BenchmarkFig19_DataSize(b *testing.B) { runFig(b, harness.Fig19) }

// BenchmarkTable6_ReplicationImpact reproduces Table 6: replication's
// throughput/latency cost.
func BenchmarkTable6_ReplicationImpact(b *testing.B) { runFig(b, harness.Table6) }

// BenchmarkSiloComparison reproduces §7.2's per-machine Silo comparison.
func BenchmarkSiloComparison(b *testing.B) { runFig(b, harness.SiloComparison) }

// BenchmarkFigCoroutineOverlap sweeps coroutines/worker (ours, not in the
// paper): SmallBank throughput as each worker overlaps the RDMA round-trips
// of 1-8 in-flight transactions.
func BenchmarkFigCoroutineOverlap(b *testing.B) { runFig(b, harness.FigCoroutineOverlap) }

// BenchmarkFigProtocolMatrix runs the commit-protocol head-to-head (ours,
// not in the paper): DrTM+R's HTM pipeline vs the FaRM-style one-sided
// log-append protocol on replicated SmallBank, swept over remote probability
// and read-only share. Mixed units per column: throughput in txns/s, p99 in
// microseconds, read-only verbs per 100 transactions, and remote-CPU wakeup
// counts at pure read participants (must measure 0 for both protocols).
func BenchmarkFigProtocolMatrix(b *testing.B) {
	var t harness.Table
	for i := 0; i < b.N; i++ {
		t = harness.FigProtocolMatrix(harness.Smoke)
	}
	if len(t.Rows) == 0 || len(t.Rows[0].Values) == 0 {
		b.Fatal("empty experiment table")
	}
	first := t.Rows[0]
	for i, col := range t.Columns {
		if i >= len(first.Values) {
			break
		}
		unit := "_count"
		switch {
		case strings.HasSuffix(col, "tps"):
			unit = "_txns/s"
		case strings.HasSuffix(col, "p99us"):
			unit = "_us"
		case strings.Contains(col, "rov"):
			unit = "_verbs/100txn"
		}
		b.ReportMetric(first.Values[i], strings.ReplaceAll(col, " ", "-")+unit)
	}
	for _, r := range t.Rows {
		if r.Values[6] != 0 || r.Values[7] != 0 {
			b.Fatalf("row %s: nonzero read-only wakeups (drtmr=%g farm=%g)", r.XName, r.Values[6], r.Values[7])
		}
	}
}

// BenchmarkFigContentionTail sweeps hot-key skew with the contention manager
// on vs off (ours, not in the paper). The table mixes units — latency
// percentiles in microseconds and throughput in txns/s — so it reports the
// first row with per-column units instead of reportFirstRow's txns/s.
func BenchmarkFigContentionTail(b *testing.B) {
	var t harness.Table
	for i := 0; i < b.N; i++ {
		t = harness.FigContentionTail(harness.Smoke)
	}
	if len(t.Rows) == 0 || len(t.Rows[0].Values) == 0 {
		b.Fatal("empty experiment table")
	}
	first := t.Rows[0]
	for i, col := range t.Columns {
		if i >= len(first.Values) {
			break
		}
		unit := "_us"
		if strings.HasSuffix(col, "tps") {
			unit = "_txns/s"
		}
		b.ReportMetric(first.Values[i], strings.ReplaceAll(col, " ", "-")+unit)
	}
}

// BenchmarkFigServeOverload runs the network-serve overload sweep (ours, not
// in the paper): an open-loop client fleet over real TCP against the
// drtmr-serve front door, admission control on vs off. Unlike every other
// figure this one is wall time end to end. The table mixes units —
// accepted throughput in txns/s (wall), p99 in milliseconds, shed rate in
// percent — so it reports the first row with per-column units.
func BenchmarkFigServeOverload(b *testing.B) {
	var t harness.Table
	for i := 0; i < b.N; i++ {
		t = serveload.FigServeOverload(harness.Smoke)
	}
	if len(t.Rows) == 0 || len(t.Rows[0].Values) == 0 {
		b.Fatal("empty experiment table")
	}
	first := t.Rows[0]
	for i, col := range t.Columns {
		if i >= len(first.Values) {
			break
		}
		unit := "_ms"
		switch {
		case strings.HasSuffix(col, "tps"):
			unit = "_txns/s"
		case strings.HasSuffix(col, "shed%"):
			unit = "_%"
		}
		b.ReportMetric(first.Values[i], strings.ReplaceAll(col, " ", "-")+unit)
	}
	for _, n := range t.Notes {
		if strings.Contains(n, "DROPPED") {
			b.Fatalf("fleet accounting hole: %s", n)
		}
	}
}
