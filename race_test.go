//go:build race

package drtmr_test

// raceEnabled reports whether this test binary was built with the race
// detector; wall-clock experiments scale their windows to absorb its
// (roughly order-of-magnitude) slowdown.
const raceEnabled = true
