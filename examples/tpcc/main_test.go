package main

import (
	"strings"
	"testing"
)

// TestExampleSmoke runs a scaled-down version of the example end to end:
// it must execute the standard mix, keep every warehouse's YTD consistent
// with its districts, and produce the report.
func TestExampleSmoke(t *testing.T) {
	var out strings.Builder
	if err := run(&out, 3, 1, 40, 0.05); err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", out.String())
	if !strings.Contains(out.String(), "audit: warehouse/district YTD consistent") {
		t.Fatalf("YTD audit failed:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "standard-mix transactions") {
		t.Fatalf("report missing:\n%s", out.String())
	}
}

func TestRunMixCounts(t *testing.T) {
	r, err := runMix(3, 1, 30, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.total() != 90 {
		t.Fatalf("3 sessions x 30 txns should commit 90, got %d (counts %v)", r.total(), r.counts)
	}
	if r.inconsistent != 0 {
		t.Fatalf("%d warehouses failed the YTD audit", r.inconsistent)
	}
	if r.counts[0] == 0 {
		t.Fatal("standard mix produced no new-order transactions")
	}
}
