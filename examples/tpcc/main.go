// TPC-C example: the order-entry workload the paper's headline numbers come
// from, run on the public API across a replicated cluster, with the
// district/warehouse YTD consistency checks at the end.
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"drtmr"
	"drtmr/internal/bench/tpcc"
	"drtmr/internal/cluster"
	"drtmr/internal/sim"
)

func main() {
	nodes := flag.Int("nodes", 3, "machines")
	threads := flag.Int("threads", 2, "worker sessions per machine (one home warehouse each)")
	txns := flag.Int("txns", 300, "standard-mix transactions per session")
	cross := flag.Float64("cross", 0.01, "cross-warehouse probability for new-order")
	flag.Parse()

	wcfg := tpcc.DefaultConfig(*nodes, *threads)
	wcfg.RemoteNewOrderProb = *cross

	// The partitioner is machine-relative (ITEM replicates everywhere),
	// so build one engine per machine through the low-level API.
	db, err := drtmr.Open(drtmr.Options{
		Nodes:    *nodes,
		Replicas: 3,
		MemBytes: 128 << 20,
		// Placeholder partitioner; per-machine engines below override.
		Partitioner: wcfg.Partitioner(0),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	c := db.Cluster()
	for _, m := range c.Machines {
		tpcc.CreateTables(m.Store, wcfg)
	}
	initCfg := c.Coord.Current()
	for n := 0; n < *nodes; n++ {
		if err := tpcc.Load(c.Machines[n].Store, wcfg, n, uint64(n)+1); err != nil {
			log.Fatal(err)
		}
		for _, b := range initCfg.BackupsOf(cluster.ShardID(n)) {
			for _, w := range wcfg.WarehousesOf(n) {
				if err := tpcc.LoadWarehouse(c.Machines[b].Store, w, sim.NewRand(uint64(n)+uint64(b)*3)); err != nil {
					log.Fatal(err)
				}
			}
		}
	}
	db.Start()

	start := time.Now()
	var wg sync.WaitGroup
	var mu sync.Mutex
	var counts [5]uint64
	var virtualMax int64
	for n := 0; n < *nodes; n++ {
		for t := 0; t < *threads; t++ {
			wg.Add(1)
			go func(node, tid int) {
				defer wg.Done()
				sess := db.Session(drtmr.NodeID(node))
				home := wcfg.WarehousesOf(node)[tid%*threads]
				ex := tpcc.NewExecutor(sess.Worker(), tpcc.NewGen(wcfg, home, uint64(node*37+tid+5)))
				for i := 0; i < *txns; i++ {
					if _, err := ex.RunOne(); err != nil {
						log.Printf("txn: %v", err)
						return
					}
				}
				mu.Lock()
				for i := range counts {
					counts[i] += ex.Counts[i]
				}
				if v := sess.Worker().Clk.Now(); v > virtualMax {
					virtualMax = v
				}
				mu.Unlock()
			}(n, t)
		}
	}
	wg.Wait()

	total := counts[0] + counts[1] + counts[2] + counts[3] + counts[4]
	virtSec := float64(virtualMax) / 1e9
	fmt.Printf("ran %d standard-mix transactions in %v wall (%.1f ms simulated)\n",
		total, time.Since(start).Round(time.Millisecond), virtSec*1000)
	for i, name := range []string{"new-order", "payment", "order-status", "delivery", "stock-level"} {
		fmt.Printf("  %-14s %6d\n", name, counts[i])
	}
	fmt.Printf("new-order throughput: %.0f txns/s (virtual time)\n", float64(counts[0])/virtSec)

	// Consistency audit: warehouse YTD == sum of its districts' YTD.
	bad := 0
	for n := 0; n < *nodes; n++ {
		st := c.Machines[n].Store
		for _, w := range wcfg.WarehousesOf(n) {
			off, ok := st.Table(tpcc.TableWarehouse).Lookup(tpcc.WKey(w))
			if !ok {
				continue
			}
			wy := tpcc.WarehouseYTD(st.Table(tpcc.TableWarehouse).ReadValueNonTx(off))
			var dy uint64
			for d := 1; d <= tpcc.DistrictsPerWarehouse; d++ {
				doff, _ := st.Table(tpcc.TableDistrict).Lookup(tpcc.DKey(w, d))
				dy += tpcc.DistrictYTD(st.Table(tpcc.TableDistrict).ReadValueNonTx(doff))
			}
			if wy != dy {
				bad++
			}
		}
	}
	if bad == 0 {
		fmt.Println("audit: warehouse/district YTD consistent ✓")
	} else {
		fmt.Printf("audit: %d warehouses inconsistent ✗\n", bad)
	}
}
