// TPC-C example: the order-entry workload the paper's headline numbers come
// from, run on the public API across a replicated cluster, with the
// district/warehouse YTD consistency checks at the end.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sync"

	"drtmr"
	"drtmr/internal/bench/tpcc"
	"drtmr/internal/cluster"
	"drtmr/internal/sim"
)

func main() {
	nodes := flag.Int("nodes", 3, "machines")
	threads := flag.Int("threads", 2, "worker sessions per machine (one home warehouse each)")
	txns := flag.Int("txns", 300, "standard-mix transactions per session")
	cross := flag.Float64("cross", 0.01, "cross-warehouse probability for new-order")
	flag.Parse()

	if err := run(os.Stdout, *nodes, *threads, *txns, *cross); err != nil {
		log.Fatal(err)
	}
}

// runResult is what one example run produced, for the smoke test.
type runResult struct {
	counts        [5]uint64 // per standard-mix transaction type
	inconsistent  int       // warehouses failing the YTD audit
	virtualSecond float64
}

func (r runResult) total() uint64 {
	return r.counts[0] + r.counts[1] + r.counts[2] + r.counts[3] + r.counts[4]
}

// run executes the whole example — cluster bring-up, load, standard mix,
// consistency audit — writing the human-readable report to out.
func run(out io.Writer, nodes, threads, txns int, cross float64) error {
	r, err := runMix(nodes, threads, txns, cross)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "ran %d standard-mix transactions (%.1f ms simulated)\n",
		r.total(), r.virtualSecond*1000)
	for i, name := range []string{"new-order", "payment", "order-status", "delivery", "stock-level"} {
		fmt.Fprintf(out, "  %-14s %6d\n", name, r.counts[i])
	}
	fmt.Fprintf(out, "new-order throughput: %.0f txns/s (virtual time)\n",
		float64(r.counts[0])/r.virtualSecond)
	if r.inconsistent == 0 {
		fmt.Fprintln(out, "audit: warehouse/district YTD consistent ✓")
	} else {
		fmt.Fprintf(out, "audit: %d warehouses inconsistent ✗\n", r.inconsistent)
	}
	return nil
}

// runMix is the machine-readable core of the example.
func runMix(nodes, threads, txns int, cross float64) (runResult, error) {
	wcfg := tpcc.DefaultConfig(nodes, threads)
	wcfg.RemoteNewOrderProb = cross

	// The partitioner is machine-relative (ITEM replicates everywhere),
	// so build one engine per machine through the low-level API.
	db, err := drtmr.Open(drtmr.Options{
		Nodes:    nodes,
		Replicas: 3,
		MemBytes: 128 << 20,
		// Placeholder partitioner; per-machine engines below override.
		Partitioner: wcfg.Partitioner(0),
	})
	if err != nil {
		return runResult{}, err
	}
	defer db.Close()

	c := db.Cluster()
	for _, m := range c.Machines {
		tpcc.CreateTables(m.Store, wcfg)
	}
	initCfg := c.Coord.Current()
	for n := 0; n < nodes; n++ {
		if err := tpcc.Load(c.Machines[n].Store, wcfg, n, uint64(n)+1); err != nil {
			return runResult{}, err
		}
		for _, b := range initCfg.BackupsOf(cluster.ShardID(n)) {
			for _, w := range wcfg.WarehousesOf(n) {
				if err := tpcc.LoadWarehouse(c.Machines[b].Store, w, sim.NewRand(uint64(n)+uint64(b)*3)); err != nil {
					return runResult{}, err
				}
			}
		}
	}
	db.Start()

	var r runResult
	var wg sync.WaitGroup
	var mu sync.Mutex
	var virtualMax int64
	for n := 0; n < nodes; n++ {
		for t := 0; t < threads; t++ {
			wg.Add(1)
			go func(node, tid int) {
				defer wg.Done()
				sess := db.Session(drtmr.NodeID(node))
				home := wcfg.WarehousesOf(node)[tid%threads]
				ex := tpcc.NewExecutor(sess.Worker(), tpcc.NewGen(wcfg, home, uint64(node*37+tid+5)))
				for i := 0; i < txns; i++ {
					if _, err := ex.RunOne(); err != nil {
						log.Printf("txn: %v", err)
						return
					}
				}
				mu.Lock()
				for i := range r.counts {
					r.counts[i] += ex.Counts[i]
				}
				if v := sess.Worker().Clk.Now(); v > virtualMax {
					virtualMax = v
				}
				mu.Unlock()
			}(n, t)
		}
	}
	wg.Wait()
	r.virtualSecond = float64(virtualMax) / 1e9

	// Consistency audit: warehouse YTD == sum of its districts' YTD.
	for n := 0; n < nodes; n++ {
		st := c.Machines[n].Store
		for _, w := range wcfg.WarehousesOf(n) {
			off, ok := st.Table(tpcc.TableWarehouse).Lookup(tpcc.WKey(w))
			if !ok {
				continue
			}
			wy := tpcc.WarehouseYTD(st.Table(tpcc.TableWarehouse).ReadValueNonTx(off))
			var dy uint64
			for d := 1; d <= tpcc.DistrictsPerWarehouse; d++ {
				doff, _ := st.Table(tpcc.TableDistrict).Lookup(tpcc.DKey(w, d))
				dy += tpcc.DistrictYTD(st.Table(tpcc.TableDistrict).ReadValueNonTx(doff))
			}
			if wy != dy {
				r.inconsistent++
			}
		}
	}
	return r, nil
}
